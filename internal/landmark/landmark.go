// Package landmark implements the global offline index sketched as future
// work in §7.5 of the paper: PathEnum's only per-query cost that grows with
// the graph is the pair of BFS passes that seed the light-weight index
// ("building the index from scratch on very large graphs can take a long
// time... a promising approach is to build a global index in an offline
// preprocessing step to reduce the cost of constructing the query-dependent
// index").
//
// The oracle stores exact directed BFS distances between every vertex and a
// small set of high-degree landmark vertices. By the directed triangle
// inequality these yield LOWER bounds on any pairwise distance:
//
//	d(u,v) >= d(u,l) - d(v,l)   and   d(u,v) >= d(l,v) - d(l,u)
//
// plus two exact infinity certificates (if u cannot reach l but v can, then
// u cannot reach v; if l reaches u but not v, then u cannot reach v).
// Lower bounds cannot replace the exact labels the index needs, but they
// soundly prune the per-query BFS: a vertex whose distance-so-far plus
// lower-bound-to-target already exceeds k can never join the partition X,
// and — because every vertex on a shortest path to an X member is itself in
// X — not expanding it cannot corrupt any other label. The same bound
// answers infeasible queries (LB(s,t) > k) with no BFS at all.
//
// The oracle is tied to the exact graph version it was built on: edge
// insertions shrink true distances, so stale lower bounds would
// over-prune. That restriction is enforced, not advisory — Build captures
// the graph's (lineage, epoch) version and ValidFor rejects any other
// version with graph.ErrStaleEpoch, which the core executor checks before
// every oracle use. Rebuild after updates or fall back to the plain index.
package landmark

import (
	"fmt"
	"sort"

	"pathenum/internal/graph"
)

// Infinite marks an unreachable landmark distance.
const Infinite int32 = -1

// Oracle is the offline landmark distance index.
type Oracle struct {
	numVertices int
	ver         graph.Version
	landmarks   []graph.VertexID
	// toL[l][v] = d(v, landmark_l), fromL[l][v] = d(landmark_l, v);
	// Infinite when unreachable.
	toL   [][]int32
	fromL [][]int32
}

// DefaultLandmarks is the landmark count used when 0 is requested.
const DefaultLandmarks = 8

// Build constructs the oracle with the given number of landmarks, chosen
// as the highest-degree vertices (ties by id). Construction runs 2L full
// BFS passes: O(L * (|V| + |E|)).
func Build(g *graph.Graph, numLandmarks int) (*Oracle, error) {
	n := g.NumVertices()
	if n == 0 {
		return nil, fmt.Errorf("landmark: empty graph")
	}
	if numLandmarks <= 0 {
		numLandmarks = DefaultLandmarks
	}
	if numLandmarks > n {
		numLandmarks = n
	}

	ids := make([]graph.VertexID, n)
	for i := range ids {
		ids[i] = graph.VertexID(i)
	}
	sort.Slice(ids, func(i, j int) bool {
		di, dj := g.Degree(ids[i]), g.Degree(ids[j])
		if di != dj {
			return di > dj
		}
		return ids[i] < ids[j]
	})

	o := &Oracle{numVertices: n, ver: g.Version()}
	o.landmarks = append(o.landmarks, ids[:numLandmarks]...)
	o.toL = make([][]int32, numLandmarks)
	o.fromL = make([][]int32, numLandmarks)
	queue := make([]graph.VertexID, 0, n)
	for i, l := range o.landmarks {
		o.toL[i] = fullBFS(g, l, true, queue)
		o.fromL[i] = fullBFS(g, l, false, queue)
	}
	return o, nil
}

// fullBFS computes distances to (reverse=true) or from (reverse=false) the
// root over the whole graph.
func fullBFS(g *graph.Graph, root graph.VertexID, reverse bool, queue []graph.VertexID) []int32 {
	dist := make([]int32, g.NumVertices())
	for i := range dist {
		dist[i] = Infinite
	}
	dist[root] = 0
	queue = queue[:0]
	queue = append(queue, root)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		var nbrs []graph.VertexID
		if reverse {
			nbrs = g.InNeighbors(v)
		} else {
			nbrs = g.OutNeighbors(v)
		}
		for _, w := range nbrs {
			if dist[w] == Infinite {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// GraphVersion returns the (lineage, epoch) version of the graph the
// oracle was built on.
func (o *Oracle) GraphVersion() graph.Version { return o.ver }

// ValidFor implements core.GraphValidator: the oracle may only serve the
// exact graph version it was built on. An older or newer epoch of the
// same lineage reports graph.ErrStaleEpoch (match with errors.Is); an
// unrelated graph reports graph.ErrGraphMismatch.
func (o *Oracle) ValidFor(g *graph.Graph) error {
	return o.ver.ValidFor(g.Version())
}

// NumLandmarks returns the landmark count.
func (o *Oracle) NumLandmarks() int { return len(o.landmarks) }

// Landmarks returns the landmark vertex ids (descending degree order).
func (o *Oracle) Landmarks() []graph.VertexID {
	return append([]graph.VertexID(nil), o.landmarks...)
}

// LowerBound returns a lower bound on the directed distance d(u,v), or
// Infinite when the oracle proves v is unreachable from u. LowerBound(u,u)
// is 0. O(L).
func (o *Oracle) LowerBound(u, v graph.VertexID) int32 {
	if u == v {
		return 0
	}
	var best int32
	for i := range o.landmarks {
		du, dv := o.toL[i][u], o.toL[i][v] // distances TO the landmark
		switch {
		case du == Infinite && dv != Infinite:
			// u cannot reach l but v can: u -> v would reach l via v.
			return Infinite
		case du != Infinite && dv != Infinite:
			if d := du - dv; d > best {
				best = d
			}
		}
		fu, fv := o.fromL[i][u], o.fromL[i][v] // distances FROM the landmark
		switch {
		case fu != Infinite && fv == Infinite:
			// l reaches u but not v: u -> v would extend l's reach to v.
			return Infinite
		case fu != Infinite && fv != Infinite:
			if d := fv - fu; d > best {
				best = d
			}
		}
	}
	return best
}

// Reachable reports whether the oracle can prove v unreachable from u
// (false means "provably unreachable"; true means "possibly reachable").
func (o *Oracle) Reachable(u, v graph.VertexID) bool {
	return o.LowerBound(u, v) != Infinite
}

// MemoryBytes estimates the oracle's resident size.
func (o *Oracle) MemoryBytes() int64 {
	return int64(len(o.landmarks)) * int64(o.numVertices) * 8 // two int32 tables
}
