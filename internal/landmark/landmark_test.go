package landmark

import (
	"errors"
	"math/rand"
	"testing"

	"pathenum/internal/gen"
	"pathenum/internal/graph"
)

// bfsDist computes the exact directed distance for the oracle tests.
func bfsDist(g *graph.Graph, s, t graph.VertexID) int32 {
	if s == t {
		return 0
	}
	dist := make([]int32, g.NumVertices())
	for i := range dist {
		dist[i] = -1
	}
	dist[s] = 0
	queue := []graph.VertexID{s}
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, w := range g.OutNeighbors(v) {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				if w == t {
					return dist[w]
				}
				queue = append(queue, w)
			}
		}
	}
	return -1
}

func TestBuildValidation(t *testing.T) {
	empty, err := graph.NewGraph(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(empty, 4); err == nil {
		t.Fatal("empty graph: expected error")
	}
	g := gen.Cycle(5)
	o, err := Build(g, 100) // more landmarks than vertices
	if err != nil {
		t.Fatal(err)
	}
	if o.NumLandmarks() != 5 {
		t.Fatalf("NumLandmarks = %d, want clamped 5", o.NumLandmarks())
	}
	o2, err := Build(g, 0) // default
	if err != nil {
		t.Fatal(err)
	}
	if o2.NumLandmarks() != 5 {
		t.Fatalf("default landmarks = %d, want min(default, n) = 5", o2.NumLandmarks())
	}
}

func TestLandmarksAreHighDegree(t *testing.T) {
	g := gen.BarabasiAlbert(200, 4, 3)
	o, err := Build(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	lms := o.Landmarks()
	if len(lms) != 4 {
		t.Fatalf("got %d landmarks", len(lms))
	}
	minLandmark := 1 << 30
	for _, l := range lms {
		if d := g.Degree(l); d < minLandmark {
			minLandmark = d
		}
	}
	isLm := map[graph.VertexID]bool{}
	for _, l := range lms {
		isLm[l] = true
	}
	for v := graph.VertexID(0); v < 200; v++ {
		if !isLm[v] && g.Degree(v) > minLandmark {
			t.Fatalf("vertex %d (degree %d) beats landmark minimum %d", v, g.Degree(v), minLandmark)
		}
	}
}

// TestLowerBoundSound is the core soundness property: LowerBound never
// exceeds the true distance, and Infinite only appears for truly
// unreachable pairs.
func TestLowerBoundSound(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 15; trial++ {
		n := 10 + rng.Intn(40)
		g := gen.ErdosRenyi(n, n*2, rng.Int63())
		o, err := Build(g, 4)
		if err != nil {
			t.Fatal(err)
		}
		for u := graph.VertexID(0); u < graph.VertexID(n); u++ {
			for v := graph.VertexID(0); v < graph.VertexID(n); v++ {
				lb := o.LowerBound(u, v)
				actual := bfsDist(g, u, v)
				if actual < 0 {
					continue // unreachable: any bound (incl. Infinite) is fine
				}
				if lb == Infinite {
					t.Fatalf("trial %d: LB(%d,%d) = Infinite but d = %d", trial, u, v, actual)
				}
				if lb > actual {
					t.Fatalf("trial %d: LB(%d,%d) = %d > d = %d", trial, u, v, lb, actual)
				}
			}
		}
	}
}

// TestLowerBoundDetectsUnreachable: across disconnected components the
// infinity certificate must fire when a landmark lands in each component.
func TestLowerBoundDetectsUnreachable(t *testing.T) {
	// Two disjoint cycles 0-4 and 5-9.
	var edges []graph.Edge
	for i := 0; i < 5; i++ {
		edges = append(edges, graph.Edge{From: int32(i), To: int32((i + 1) % 5)})
		edges = append(edges, graph.Edge{From: int32(5 + i), To: int32(5 + (i+1)%5)})
	}
	g, err := graph.NewGraph(10, edges)
	if err != nil {
		t.Fatal(err)
	}
	o, err := Build(g, 10) // all vertices as landmarks
	if err != nil {
		t.Fatal(err)
	}
	if o.Reachable(0, 7) {
		t.Fatal("cross-component pair must be provably unreachable")
	}
	if !o.Reachable(0, 3) {
		t.Fatal("same-cycle pair must stay possibly reachable")
	}
}

func TestLowerBoundSelf(t *testing.T) {
	g := gen.Cycle(6)
	o, err := Build(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if lb := o.LowerBound(3, 3); lb != 0 {
		t.Fatalf("LB(v,v) = %d, want 0", lb)
	}
}

// TestLowerBoundTightOnCycle: on a directed cycle with every vertex a
// landmark, the bound is exact.
func TestLowerBoundTightOnCycle(t *testing.T) {
	n := 8
	g := gen.Cycle(n)
	o, err := Build(g, n)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			want := bfsDist(g, int32(u), int32(v))
			if got := o.LowerBound(int32(u), int32(v)); got != want {
				t.Fatalf("LB(%d,%d) = %d, want exact %d", u, v, got, want)
			}
		}
	}
}

func TestMemoryBytes(t *testing.T) {
	g := gen.Cycle(100)
	o, err := Build(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if o.MemoryBytes() != 4*100*8 {
		t.Fatalf("MemoryBytes = %d", o.MemoryBytes())
	}
}

// TestValidForEnforcesEpoch: the oracle pins the graph version it was
// built on — the regression the doc comment ("rebuild after edge
// insertions") used to leave unenforced.
func TestValidForEnforcesEpoch(t *testing.T) {
	d := graph.NewDynamic(gen.Cycle(12))
	snap0 := d.Snapshot()
	o, err := Build(snap0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := o.ValidFor(snap0); err != nil {
		t.Fatalf("oracle invalid for its own graph: %v", err)
	}
	if err := o.ValidFor(d.Snapshot()); err != nil {
		t.Fatalf("oracle invalid for a same-epoch snapshot: %v", err)
	}
	if o.GraphVersion() != snap0.Version() {
		t.Fatal("GraphVersion must echo the build graph's version")
	}
	if ok, ierr := d.Insert(0, 6); ierr != nil || !ok {
		t.Fatalf("Insert = %v, %v", ok, ierr)
	}
	if err := o.ValidFor(d.Snapshot()); !errors.Is(err, graph.ErrStaleEpoch) {
		t.Fatalf("stale oracle: got %v, want graph.ErrStaleEpoch", err)
	}
	if err := o.ValidFor(gen.Cycle(12)); !errors.Is(err, graph.ErrGraphMismatch) {
		t.Fatalf("unrelated graph: got %v, want graph.ErrGraphMismatch", err)
	}
}
