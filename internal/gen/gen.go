// Package gen provides deterministic synthetic graph generators and a
// dataset registry that emulates, at laptop scale, the 15 real-world graphs
// used in the PathEnum evaluation (§7.1, Table 2).
//
// The paper's datasets (SNAP / networkrepository) are not available offline,
// so each is substituted by a generator from the same structural family
// (power-law social/web graphs, dense biological/recommendation graphs,
// sparse citation-like graphs) scaled down in |V| while preserving the
// average degree. DESIGN.md §3 documents the substitution rationale.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"pathenum/internal/graph"
)

// ErdosRenyi generates a directed G(n, m) graph: m edges sampled uniformly
// at random (self-loops and duplicates are collapsed by graph.NewGraph, so
// the result may have slightly fewer than m edges).
func ErdosRenyi(n, m int, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		edges = append(edges, graph.Edge{
			From: int32(rng.Intn(n)),
			To:   int32(rng.Intn(n)),
		})
	}
	return mustGraph(n, edges)
}

// BarabasiAlbert generates a directed preferential-attachment graph: each
// new vertex adds outPerNode edges whose targets are chosen proportionally
// to current degree, producing the power-law degree distribution typical of
// the paper's social and web datasets. A fraction of the edges is reversed
// so that the graph contains cycles (real social/web graphs are far from
// acyclic, and HcPE workloads need paths in both directions).
func BarabasiAlbert(n, outPerNode int, seed int64) *graph.Graph {
	if n < 2 {
		return mustGraph(n, nil)
	}
	rng := rand.New(rand.NewSource(seed))
	if outPerNode < 1 {
		outPerNode = 1
	}
	edges := make([]graph.Edge, 0, n*outPerNode)
	// endpoints repeats each vertex once per incident edge; sampling a
	// uniform element of it is degree-proportional sampling.
	endpoints := make([]int32, 0, 2*n*outPerNode)
	endpoints = append(endpoints, 0, 1)
	edges = append(edges, graph.Edge{From: 1, To: 0})

	for v := 2; v < n; v++ {
		deg := outPerNode
		if deg > v {
			deg = v
		}
		for i := 0; i < deg; i++ {
			target := endpoints[rng.Intn(len(endpoints))]
			if int(target) == v {
				target = int32(rng.Intn(v))
			}
			e := graph.Edge{From: int32(v), To: target}
			if rng.Intn(4) == 0 { // 25% reversed: creates cycles
				e.From, e.To = e.To, e.From
			}
			edges = append(edges, e)
			endpoints = append(endpoints, int32(v), target)
		}
	}
	return mustGraph(n, edges)
}

// PowerLawConfig generates a directed graph whose out-degrees follow a
// discrete power law with the given exponent (alpha > 1), scaled so the
// average out-degree is approximately avgDeg. Targets are uniform. This is
// the configuration-model stand-in for heavy-tailed web graphs.
func PowerLawConfig(n int, avgDeg float64, alpha float64, seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	if alpha <= 1 {
		alpha = 2.1
	}
	// Sample raw degrees from Pareto, then scale to the requested average.
	raw := make([]float64, n)
	var sum float64
	for i := range raw {
		u := rng.Float64()
		if u < 1e-12 {
			u = 1e-12
		}
		raw[i] = math.Pow(u, -1/(alpha-1)) // Pareto(1, alpha-1)
		if raw[i] > float64(n) {
			raw[i] = float64(n)
		}
		sum += raw[i]
	}
	scale := avgDeg * float64(n) / sum
	edges := make([]graph.Edge, 0, int(avgDeg*float64(n))+n)
	for v := 0; v < n; v++ {
		d := int(raw[v]*scale + 0.5)
		for i := 0; i < d; i++ {
			edges = append(edges, graph.Edge{From: int32(v), To: int32(rng.Intn(n))})
		}
	}
	return mustGraph(n, edges)
}

// Layered generates a complete layered graph: `layers` layers of `width`
// vertices each, plus a source feeding layer 0 and a sink fed by the last
// layer, with every vertex of layer i connected to every vertex of layer
// i+1. Queries from source (vertex 0) to sink (vertex 1) have exactly
// width^layers paths of length layers+1: the worst-case walk/path explosion
// used to stress enumerators.
func Layered(width, layers int) *graph.Graph {
	n := 2 + width*layers
	at := func(layer, i int) int32 { return int32(2 + layer*width + i) }
	var edges []graph.Edge
	for i := 0; i < width; i++ {
		edges = append(edges, graph.Edge{From: 0, To: at(0, i)})
		edges = append(edges, graph.Edge{From: at(layers-1, i), To: 1})
	}
	for l := 0; l+1 < layers; l++ {
		for i := 0; i < width; i++ {
			for j := 0; j < width; j++ {
				edges = append(edges, graph.Edge{From: at(l, i), To: at(l+1, j)})
			}
		}
	}
	return mustGraph(n, edges)
}

// Grid generates a rows x cols directed grid with edges right and down,
// plus the reverse edges, giving a predictable sparse planar topology.
func Grid(rows, cols int) *graph.Graph {
	at := func(r, c int) int32 { return int32(r*cols + c) }
	var edges []graph.Edge
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, graph.Edge{From: at(r, c), To: at(r, c+1)})
				edges = append(edges, graph.Edge{From: at(r, c+1), To: at(r, c)})
			}
			if r+1 < rows {
				edges = append(edges, graph.Edge{From: at(r, c), To: at(r+1, c)})
				edges = append(edges, graph.Edge{From: at(r+1, c), To: at(r, c)})
			}
		}
	}
	return mustGraph(rows*cols, edges)
}

// Complete generates the complete directed graph on n vertices (every
// ordered pair except self-loops), the densest possible input.
func Complete(n int) *graph.Graph {
	var edges []graph.Edge
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				edges = append(edges, graph.Edge{From: int32(i), To: int32(j)})
			}
		}
	}
	return mustGraph(n, edges)
}

// Cycle generates a single directed cycle 0 -> 1 -> ... -> n-1 -> 0.
func Cycle(n int) *graph.Graph {
	var edges []graph.Edge
	for i := 0; i < n; i++ {
		edges = append(edges, graph.Edge{From: int32(i), To: int32((i + 1) % n)})
	}
	return mustGraph(n, edges)
}

func mustGraph(n int, edges []graph.Edge) *graph.Graph {
	g, err := graph.NewGraph(n, edges)
	if err != nil {
		panic(fmt.Sprintf("gen: internal generator bug: %v", err))
	}
	return g
}
