package gen

import (
	"fmt"
	"sort"

	"pathenum/internal/graph"
)

// Family classifies a dataset's structural family, which selects the
// generator used to emulate it.
type Family string

// Generator families. Social and Web map to preferential attachment /
// power-law configuration models, Dense to Erdős–Rényi with high average
// degree, Sparse to low-degree Erdős–Rényi.
const (
	FamilySocial Family = "social" // heavy-tailed, cyclic (BarabasiAlbert)
	FamilyWeb    Family = "web"    // heavy-tailed (PowerLawConfig)
	FamilyDense  Family = "dense"  // high davg (ErdosRenyi)
	FamilySparse Family = "sparse" // low davg (ErdosRenyi)
)

// Dataset describes one synthetic emulation of a paper dataset.
type Dataset struct {
	Name   string  // paper's short name (Table 2)
	PaperV string  // paper's |V|, for documentation
	PaperE string  // paper's |E|, for documentation
	Type   string  // paper's category column
	Family Family  // generator family used here
	N      int     // scaled vertex count
	AvgDeg float64 // preserved average degree
	Seed   int64
}

// Registry lists the 15 paper datasets (Table 2) in paper order, scaled
// down for laptop-scale reproduction. "tm" is the scalability graph and is
// the largest by a wide margin, mirroring its role in Figure 12.
var Registry = []Dataset{
	{Name: "up", PaperV: "4M", PaperE: "17M", Type: "Citation", Family: FamilySparse, N: 20000, AvgDeg: 8.8, Seed: 101},
	{Name: "db", PaperV: "4M", PaperE: "14M", Type: "Miscellaneous", Family: FamilySparse, N: 20000, AvgDeg: 6.5, Seed: 102},
	{Name: "gg", PaperV: "876K", PaperE: "5M", Type: "Web", Family: FamilyWeb, N: 9000, AvgDeg: 11.1, Seed: 103},
	{Name: "st", PaperV: "282K", PaperE: "2.3M", Type: "Web", Family: FamilyWeb, N: 6000, AvgDeg: 16.4, Seed: 104},
	{Name: "tw", PaperV: "465K", PaperE: "835K", Type: "Miscellaneous", Family: FamilySocial, N: 8000, AvgDeg: 3.6, Seed: 105},
	{Name: "bk", PaperV: "416K", PaperE: "3M", Type: "Web", Family: FamilyWeb, N: 6000, AvgDeg: 15.8, Seed: 106},
	{Name: "tr", PaperV: "139K", PaperE: "740K", Type: "Interaction", Family: FamilySocial, N: 5000, AvgDeg: 10.7, Seed: 107},
	{Name: "ep", PaperV: "75K", PaperE: "508K", Type: "Social", Family: FamilySocial, N: 4000, AvgDeg: 13.4, Seed: 108},
	{Name: "uk", PaperV: "121K", PaperE: "334K", Type: "Web", Family: FamilyWeb, N: 3000, AvgDeg: 5.5, Seed: 109},
	{Name: "wt", PaperV: "2M", PaperE: "5M", Type: "Miscellaneous", Family: FamilySocial, N: 12000, AvgDeg: 4.2, Seed: 110},
	{Name: "sl", PaperV: "82K", PaperE: "948K", Type: "Social", Family: FamilySocial, N: 4000, AvgDeg: 21.2, Seed: 111},
	{Name: "lj", PaperV: "5M", PaperE: "69M", Type: "Social", Family: FamilySocial, N: 15000, AvgDeg: 14.0, Seed: 112},
	{Name: "da", PaperV: "169K", PaperE: "17M", Type: "Recommendation", Family: FamilyDense, N: 2500, AvgDeg: 60.0, Seed: 113},
	{Name: "ye", PaperV: "6K", PaperE: "314K", Type: "Biological", Family: FamilyDense, N: 1200, AvgDeg: 52.0, Seed: 114},
	{Name: "tm", PaperV: "52M", PaperE: "1.96B", Type: "Miscellaneous", Family: FamilySocial, N: 120000, AvgDeg: 20.0, Seed: 115},
}

// Lookup returns the registry entry with the given name.
func Lookup(name string) (Dataset, error) {
	for _, d := range Registry {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("gen: unknown dataset %q (known: %v)", name, Names())
}

// Names returns the registry dataset names in paper order.
func Names() []string {
	out := make([]string, len(Registry))
	for i, d := range Registry {
		out[i] = d.Name
	}
	return out
}

// Build generates the synthetic graph for the dataset.
func (d Dataset) Build() *graph.Graph {
	switch d.Family {
	case FamilySocial:
		m := int(d.AvgDeg + 0.5)
		if m < 1 {
			m = 1
		}
		return BarabasiAlbert(d.N, m, d.Seed)
	case FamilyWeb:
		return PowerLawConfig(d.N, d.AvgDeg, 2.2, d.Seed)
	case FamilyDense, FamilySparse:
		return ErdosRenyi(d.N, int(float64(d.N)*d.AvgDeg), d.Seed)
	default:
		panic(fmt.Sprintf("gen: unknown family %q", d.Family))
	}
}

// Scale returns a copy of the dataset with vertex count multiplied by f
// (minimum 16 vertices), preserving the average degree. Benchmarks use this
// to shrink registry entries to testing.B-friendly sizes.
func (d Dataset) Scale(f float64) Dataset {
	d2 := d
	d2.N = int(float64(d.N) * f)
	if d2.N < 16 {
		d2.N = 16
	}
	return d2
}

// SortedByDensity returns registry names ordered by average degree
// ascending; useful for pretty experiment reports.
func SortedByDensity() []string {
	ds := make([]Dataset, len(Registry))
	copy(ds, Registry)
	sort.Slice(ds, func(i, j int) bool { return ds[i].AvgDeg < ds[j].AvgDeg })
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.Name
	}
	return out
}
