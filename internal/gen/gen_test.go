package gen

import (
	"testing"

	"pathenum/internal/graph"
)

func TestErdosRenyiDeterministic(t *testing.T) {
	a := ErdosRenyi(100, 500, 1)
	b := ErdosRenyi(100, 500, 1)
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("same seed, different edge count: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	ae, be := a.Edges(), b.Edges()
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("same seed, different edge %d: %v vs %v", i, ae[i], be[i])
		}
	}
	c := ErdosRenyi(100, 500, 2)
	if c.NumEdges() == a.NumEdges() {
		// Counts can coincide; require at least one differing edge.
		ce := c.Edges()
		same := true
		for i := range ae {
			if ae[i] != ce[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical graphs")
		}
	}
}

func TestErdosRenyiSize(t *testing.T) {
	g := ErdosRenyi(200, 1000, 3)
	if g.NumVertices() != 200 {
		t.Fatalf("NumVertices = %d, want 200", g.NumVertices())
	}
	// Dedup and self-loop removal shrink the count slightly but never grow it.
	if g.NumEdges() > 1000 || g.NumEdges() < 900 {
		t.Fatalf("NumEdges = %d, want ~1000", g.NumEdges())
	}
}

func TestBarabasiAlbertShape(t *testing.T) {
	g := BarabasiAlbert(500, 4, 7)
	if g.NumVertices() != 500 {
		t.Fatalf("NumVertices = %d", g.NumVertices())
	}
	if g.AvgDegree() < 2 || g.AvgDegree() > 5 {
		t.Fatalf("AvgDegree = %f, want ~4", g.AvgDegree())
	}
	// Preferential attachment must produce a heavy tail: the max degree
	// should far exceed the average.
	maxDeg := 0
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	if float64(maxDeg) < 4*g.AvgDegree() {
		t.Fatalf("max degree %d not heavy-tailed (avg %f)", maxDeg, g.AvgDegree())
	}
}

func TestBarabasiAlbertTiny(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3} {
		g := BarabasiAlbert(n, 3, 1)
		if g.NumVertices() != n {
			t.Fatalf("n=%d: NumVertices = %d", n, g.NumVertices())
		}
	}
}

func TestPowerLawConfigAvgDegree(t *testing.T) {
	g := PowerLawConfig(1000, 10, 2.2, 11)
	if g.NumVertices() != 1000 {
		t.Fatalf("NumVertices = %d", g.NumVertices())
	}
	if g.AvgDegree() < 6 || g.AvgDegree() > 12 {
		t.Fatalf("AvgDegree = %f, want ~10 (minus dedup losses)", g.AvgDegree())
	}
	// Degenerate alpha falls back to a sane default instead of exploding.
	g2 := PowerLawConfig(100, 5, 0.5, 11)
	if g2.NumVertices() != 100 {
		t.Fatal("alpha fallback failed")
	}
}

func TestLayeredPathCount(t *testing.T) {
	// width=3, layers=2: source->3 ->3 ->sink = 9 paths of length 3.
	g := Layered(3, 2)
	if g.NumVertices() != 2+3*2 {
		t.Fatalf("NumVertices = %d", g.NumVertices())
	}
	wantEdges := int64(3 + 3 + 3*3)
	if g.NumEdges() != wantEdges {
		t.Fatalf("NumEdges = %d, want %d", g.NumEdges(), wantEdges)
	}
	if len(g.OutNeighbors(0)) != 3 {
		t.Fatalf("source out-degree = %d", len(g.OutNeighbors(0)))
	}
	if len(g.InNeighbors(1)) != 3 {
		t.Fatalf("sink in-degree = %d", len(g.InNeighbors(1)))
	}
}

func TestGridShape(t *testing.T) {
	g := Grid(3, 4)
	if g.NumVertices() != 12 {
		t.Fatalf("NumVertices = %d", g.NumVertices())
	}
	// Horizontal: 3 rows x 3 gaps x 2 dirs; vertical: 2 gaps x 4 cols x 2.
	want := int64(3*3*2 + 2*4*2)
	if g.NumEdges() != want {
		t.Fatalf("NumEdges = %d, want %d", g.NumEdges(), want)
	}
}

func TestCompleteAndCycle(t *testing.T) {
	g := Complete(5)
	if g.NumEdges() != 20 {
		t.Fatalf("Complete(5) edges = %d, want 20", g.NumEdges())
	}
	c := Cycle(6)
	if c.NumEdges() != 6 {
		t.Fatalf("Cycle(6) edges = %d, want 6", c.NumEdges())
	}
	for v := int32(0); v < 6; v++ {
		if !c.HasEdge(v, (v+1)%6) {
			t.Fatalf("Cycle missing edge %d->%d", v, (v+1)%6)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	if len(Registry) != 15 {
		t.Fatalf("Registry has %d entries, want 15 (Table 2)", len(Registry))
	}
	seen := map[string]bool{}
	for _, d := range Registry {
		if seen[d.Name] {
			t.Fatalf("duplicate dataset %q", d.Name)
		}
		seen[d.Name] = true
		if d.N <= 0 || d.AvgDeg <= 0 {
			t.Fatalf("dataset %q has invalid size", d.Name)
		}
	}
	for _, name := range []string{"ep", "gg", "tm"} {
		if !seen[name] {
			t.Fatalf("registry missing key dataset %q", name)
		}
	}
}

func TestLookup(t *testing.T) {
	d, err := Lookup("ep")
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "ep" || d.Type != "Social" {
		t.Fatalf("Lookup(ep) = %+v", d)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Fatal("Lookup(nope): expected error")
	}
}

func TestDatasetBuild(t *testing.T) {
	// Build small-scaled versions of every dataset to exercise all families.
	for _, d := range Registry {
		small := d.Scale(0.05)
		g := small.Build()
		if g.NumVertices() != small.N {
			t.Fatalf("%s: NumVertices = %d, want %d", d.Name, g.NumVertices(), small.N)
		}
		if g.NumEdges() == 0 {
			t.Fatalf("%s: generated empty graph", d.Name)
		}
		// Degree must land within a loose factor of the target, after dedup.
		ratio := g.AvgDegree() / small.AvgDeg
		if ratio < 0.3 || ratio > 1.6 {
			t.Errorf("%s: AvgDegree = %.1f, target %.1f (ratio %.2f)", d.Name, g.AvgDegree(), small.AvgDeg, ratio)
		}
	}
}

func TestDatasetBuildDeterministic(t *testing.T) {
	d, _ := Lookup("ep")
	d = d.Scale(0.1)
	a, b := d.Build(), d.Build()
	if a.NumEdges() != b.NumEdges() {
		t.Fatalf("dataset build not deterministic: %d vs %d edges", a.NumEdges(), b.NumEdges())
	}
}

func TestScaleFloor(t *testing.T) {
	d := Dataset{Name: "x", Family: FamilySparse, N: 100, AvgDeg: 3, Seed: 1}
	if got := d.Scale(0.0001).N; got != 16 {
		t.Fatalf("Scale floor = %d, want 16", got)
	}
}

func TestSortedByDensity(t *testing.T) {
	names := SortedByDensity()
	if len(names) != len(Registry) {
		t.Fatalf("got %d names", len(names))
	}
	prev := -1.0
	for _, n := range names {
		d, err := Lookup(n)
		if err != nil {
			t.Fatal(err)
		}
		if d.AvgDeg < prev {
			t.Fatalf("not sorted: %s has avg %f after %f", n, d.AvgDeg, prev)
		}
		prev = d.AvgDeg
	}
}

var _ = graph.Edge{} // keep the import meaningful if tests shrink
