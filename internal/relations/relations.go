// Package relations implements the join-based model of §3.1: a HcPE query
// q(s,t,k) expressed as a chain join Q = R1 ⋈ R2 ⋈ ... ⋈ Rk over binary
// relations derived from the edge list, with the (t,t) padding tuple that
// preserves paths shorter than k (Theorem 3.1), plus the classical full
// reducer (Algorithm 2) that removes dangling tuples.
//
// PathEnum itself never materializes these relations — the light-weight
// index provides the same pruning power at lower cost (§4.2, Appendix B) —
// but they anchor the correctness argument, so this package exists to state
// and test the model: the index's edge set is property-tested against the
// full reducer's output, and the join evaluation against the walk oracle.
package relations

import (
	"fmt"

	"pathenum/internal/core"
	"pathenum/internal/graph"
)

// Relation is one join input: a set of directed tuples (v, v').
type Relation struct {
	Tuples []graph.Edge
}

// contains reports tuple membership (test helper; O(n)).
func (r Relation) contains(e graph.Edge) bool {
	for _, t := range r.Tuples {
		if t == e {
			return true
		}
	}
	return false
}

// BuildInitial constructs R1..Rk per the generation method of §3.1
// (lines 1-4 of Algorithm 2):
//
//	R1 = {(s,v) : e(s,v) in E}
//	Rk = {(v,t) : e(v,t) in E, v != s} ∪ {(t,t)}
//	Ri = {(v,v') : e(v,v') in E(G-{s}), v != t} ∪ {(t,t)}   for 1 < i < k
func BuildInitial(g *graph.Graph, q core.Query) ([]Relation, error) {
	if err := q.Validate(g); err != nil {
		return nil, err
	}
	k := q.K
	rs := make([]Relation, k)
	loop := graph.Edge{From: q.T, To: q.T}

	for _, v := range g.OutNeighbors(q.S) {
		rs[0].Tuples = append(rs[0].Tuples, graph.Edge{From: q.S, To: v})
	}
	if k == 1 {
		// Degenerate single-relation chain: R1 doubles as Rk without the
		// padding loop (a path of length exactly 1).
		kept := rs[0].Tuples[:0]
		for _, e := range rs[0].Tuples {
			if e.To == q.T {
				kept = append(kept, e)
			}
		}
		rs[0].Tuples = kept
		return rs, nil
	}

	for i := 1; i < k-1; i++ {
		for v := graph.VertexID(0); v < graph.VertexID(g.NumVertices()); v++ {
			if v == q.S || v == q.T {
				continue
			}
			for _, w := range g.OutNeighbors(v) {
				if w == q.S {
					continue
				}
				rs[i].Tuples = append(rs[i].Tuples, graph.Edge{From: v, To: w})
			}
		}
		rs[i].Tuples = append(rs[i].Tuples, loop)
	}
	for _, v := range g.InNeighbors(q.T) {
		if v != q.S {
			rs[k-1].Tuples = append(rs[k-1].Tuples, graph.Edge{From: v, To: q.T})
		}
	}
	rs[k-1].Tuples = append(rs[k-1].Tuples, loop)
	return rs, nil
}

// FullReduce removes dangling tuples (lines 5-12 of Algorithm 2): a forward
// semi-join sweep keeps only tuples whose source appears as a target of the
// previous relation, then a backward sweep symmetric to it. After the
// sweeps every remaining tuple participates in at least one join result
// (Proposition 4.2).
func FullReduce(rs []Relation) []Relation {
	out := make([]Relation, len(rs))
	for i := range rs {
		out[i].Tuples = append([]graph.Edge(nil), rs[i].Tuples...)
	}
	// Forward sweep: prune R_{i+1} by the targets of R_i.
	for i := 0; i+1 < len(out); i++ {
		c := make(map[graph.VertexID]bool, len(out[i].Tuples))
		for _, e := range out[i].Tuples {
			c[e.To] = true
		}
		kept := out[i+1].Tuples[:0]
		for _, e := range out[i+1].Tuples {
			if c[e.From] {
				kept = append(kept, e)
			}
		}
		out[i+1].Tuples = kept
	}
	// Backward sweep: prune R_i by the sources of R_{i+1}.
	for i := len(out) - 2; i >= 0; i-- {
		c := make(map[graph.VertexID]bool, len(out[i+1].Tuples))
		for _, e := range out[i+1].Tuples {
			c[e.From] = true
		}
		kept := out[i].Tuples[:0]
		for _, e := range out[i].Tuples {
			if c[e.To] {
				kept = append(kept, e)
			}
		}
		out[i].Tuples = kept
	}
	return out
}

// Build constructs the fully reduced relations for q on g.
func Build(g *graph.Graph, q core.Query) ([]Relation, error) {
	rs, err := BuildInitial(g, q)
	if err != nil {
		return nil, err
	}
	return FullReduce(rs), nil
}

// Evaluate materializes every tuple of the chain join Q (exponential; test
// oracle only). Each result has k+1 vertices.
func Evaluate(rs []Relation) [][]graph.VertexID {
	if len(rs) == 0 {
		return nil
	}
	adj := make([]map[graph.VertexID][]graph.VertexID, len(rs))
	for i, r := range rs {
		adj[i] = make(map[graph.VertexID][]graph.VertexID)
		for _, e := range r.Tuples {
			adj[i][e.From] = append(adj[i][e.From], e.To)
		}
	}
	var out [][]graph.VertexID
	tuple := make([]graph.VertexID, 0, len(rs)+1)
	var rec func(pos int)
	rec = func(pos int) {
		if pos == len(rs) {
			out = append(out, append([]graph.VertexID(nil), tuple...))
			return
		}
		last := tuple[len(tuple)-1]
		for _, w := range adj[pos][last] {
			tuple = append(tuple, w)
			rec(pos + 1)
			tuple = tuple[:len(tuple)-1]
		}
	}
	// All chains start at the sources of R1 (always s by construction).
	starts := map[graph.VertexID]bool{}
	for _, e := range rs[0].Tuples {
		starts[e.From] = true
	}
	for v := range starts {
		tuple = append(tuple[:0], v)
		rec(0)
	}
	return out
}

// TuplesToPaths eliminates tuples with duplicate vertices (except the t
// padding) and truncates the padding, yielding P(s,t,k,G) per Theorem 3.1.
func TuplesToPaths(tuples [][]graph.VertexID, t graph.VertexID) [][]graph.VertexID {
	var out [][]graph.VertexID
	for _, r := range tuples {
		seen := make(map[graph.VertexID]bool, len(r))
		valid := true
		var path []graph.VertexID
		for _, v := range r {
			if v == t {
				path = append(path, v)
				break
			}
			if seen[v] {
				valid = false
				break
			}
			seen[v] = true
			path = append(path, v)
		}
		if valid && len(path) > 0 && path[len(path)-1] == t {
			out = append(out, path)
		}
	}
	return out
}

// Sizes returns |R_i| per position, the cost-model inputs of Equation 1.
func Sizes(rs []Relation) []int {
	out := make([]int, len(rs))
	for i, r := range rs {
		out[i] = len(r.Tuples)
	}
	return out
}

// Validate checks structural invariants of a relation chain and returns a
// descriptive error on violation (used in failure-injection tests).
func Validate(rs []Relation, q core.Query) error {
	if len(rs) != q.K {
		return fmt.Errorf("relations: got %d relations, want k=%d", len(rs), q.K)
	}
	for _, e := range rs[0].Tuples {
		if e.From != q.S {
			return fmt.Errorf("relations: R1 tuple %v does not start at s", e)
		}
	}
	for _, e := range rs[len(rs)-1].Tuples {
		if e.To != q.T {
			return fmt.Errorf("relations: Rk tuple %v does not end at t", e)
		}
	}
	return nil
}
