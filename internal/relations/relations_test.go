package relations

import (
	"math/rand"
	"testing"

	"pathenum/internal/baseline"
	"pathenum/internal/core"
	"pathenum/internal/gen"
	"pathenum/internal/graph"
)

// paperGraph mirrors the Figure 1a fixture (s=0, t=1, v0..v7=2..9).
func paperGraph(t *testing.T) *graph.Graph {
	t.Helper()
	edges := []graph.Edge{
		{From: 0, To: 2}, {From: 0, To: 3}, {From: 0, To: 5},
		{From: 2, To: 3}, {From: 2, To: 8}, {From: 2, To: 1},
		{From: 3, To: 4}, {From: 3, To: 5},
		{From: 4, To: 2}, {From: 4, To: 1},
		{From: 5, To: 6},
		{From: 6, To: 7},
		{From: 7, To: 4}, {From: 7, To: 1},
		{From: 8, To: 2},
		{From: 1, To: 9},
	}
	g, err := graph.NewGraph(10, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildInitialShape(t *testing.T) {
	g := paperGraph(t)
	q := core.Query{S: 0, T: 1, K: 4}
	rs, err := BuildInitial(g, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 {
		t.Fatalf("got %d relations, want 4", len(rs))
	}
	if err := Validate(rs, q); err != nil {
		t.Fatal(err)
	}
	// R1 = the three out-edges of s (Figure 3a).
	if len(rs[0].Tuples) != 3 {
		t.Fatalf("|R1| = %d, want 3", len(rs[0].Tuples))
	}
	// R4 = in-edges of t except from s, plus the loop: v0, v2, v5, (t,t).
	if len(rs[3].Tuples) != 4 {
		t.Fatalf("|R4| = %d, want 4", len(rs[3].Tuples))
	}
	loop := graph.Edge{From: 1, To: 1}
	if !rs[1].contains(loop) || !rs[2].contains(loop) || !rs[3].contains(loop) {
		t.Fatal("interior relations must contain the (t,t) padding loop")
	}
	if rs[0].contains(loop) {
		t.Fatal("R1 must not contain the padding loop")
	}
	// Interior relations exclude edges incident to s and out-edges of t:
	for i := 1; i < 3; i++ {
		for _, e := range rs[i].Tuples {
			if e.From == q.S || e.To == q.S {
				t.Fatalf("R%d contains edge incident to s: %v", i+1, e)
			}
			if e.From == q.T && e != loop {
				t.Fatalf("R%d contains out-edge of t: %v", i+1, e)
			}
		}
	}
}

// TestFullReducerExample follows Example 4.1: (v4,v5) is pruned from R2 by
// the forward sweep, (v1,v3) from R3 by the backward sweep.
func TestFullReducerExample(t *testing.T) {
	g := paperGraph(t)
	q := core.Query{S: 0, T: 1, K: 4}
	initial, err := BuildInitial(g, q)
	if err != nil {
		t.Fatal(err)
	}
	reduced := FullReduce(initial)

	// v4=6, v5=7: (v4,v5) in R2 initially, gone after reduction.
	v4v5 := graph.Edge{From: 6, To: 7}
	if !initial[1].contains(v4v5) {
		t.Fatal("initial R2 must contain (v4,v5)")
	}
	if reduced[1].contains(v4v5) {
		t.Fatal("reduced R2 must not contain (v4,v5)")
	}
	// v1=3, v3=5: (v1,v3) in R3 initially, gone after reduction.
	v1v3 := graph.Edge{From: 3, To: 5}
	if !initial[2].contains(v1v3) {
		t.Fatal("initial R3 must contain (v1,v3)")
	}
	if reduced[2].contains(v1v3) {
		t.Fatal("reduced R3 must not contain (v1,v3)")
	}
	// The originals are untouched (FullReduce copies).
	if !initial[1].contains(v4v5) {
		t.Fatal("FullReduce mutated its input")
	}
}

// TestTheorem31: evaluating Q and eliminating duplicate-vertex tuples
// yields exactly P(s,t,k,G); the tuples themselves biject with walks.
func TestTheorem31(t *testing.T) {
	g := paperGraph(t)
	q := core.Query{S: 0, T: 1, K: 4}
	rs, err := Build(g, q)
	if err != nil {
		t.Fatal(err)
	}
	tuples := Evaluate(rs)
	walks := baseline.BruteWalks(g, q.S, q.T, q.K)
	if len(tuples) != len(walks) {
		t.Fatalf("|Q| = %d, walk count = %d (Lemma A.1/A.2)", len(tuples), len(walks))
	}
	paths := TuplesToPaths(tuples, q.T)
	want := baseline.BrutePaths(g, q.S, q.T, q.K)
	if !baseline.SamePathSet(paths, want) {
		t.Fatalf("join model produced %d paths, oracle %d", len(paths), len(want))
	}
}

// TestTheorem31Random repeats the theorem check on random graphs, also
// verifying that the full reducer does not change the join result.
func TestTheorem31Random(t *testing.T) {
	rng := rand.New(rand.NewSource(7777))
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(8)
		g := gen.ErdosRenyi(n, n*3, rng.Int63())
		s := graph.VertexID(rng.Intn(n))
		tt := graph.VertexID(rng.Intn(n))
		if s == tt {
			continue
		}
		k := 1 + rng.Intn(4)
		q := core.Query{S: s, T: tt, K: k}
		initial, err := BuildInitial(g, q)
		if err != nil {
			t.Fatal(err)
		}
		reduced := FullReduce(initial)

		tInitial := Evaluate(initial)
		tReduced := Evaluate(reduced)
		if len(tInitial) != len(tReduced) {
			t.Fatalf("trial %d: reducer changed result count %d -> %d",
				trial, len(tInitial), len(tReduced))
		}
		walks := baseline.BruteWalks(g, s, tt, k)
		if len(tReduced) != len(walks) {
			t.Fatalf("trial %d %v: |Q| = %d, walks = %d", trial, q, len(tReduced), len(walks))
		}
		paths := TuplesToPaths(tReduced, tt)
		want := baseline.BrutePaths(g, s, tt, k)
		if !baseline.SamePathSet(paths, want) {
			t.Fatalf("trial %d %v: %d paths, oracle %d", trial, q, len(paths), len(want))
		}
	}
}

// TestProposition42: after full reduction, every tuple of every relation
// appears in at least one join result.
func TestProposition42(t *testing.T) {
	rng := rand.New(rand.NewSource(888))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(6)
		g := gen.ErdosRenyi(n, n*3, rng.Int63())
		s := graph.VertexID(rng.Intn(n))
		tt := graph.VertexID(rng.Intn(n))
		if s == tt {
			continue
		}
		k := 2 + rng.Intn(3)
		q := core.Query{S: s, T: tt, K: k}
		rs, err := Build(g, q)
		if err != nil {
			t.Fatal(err)
		}
		results := Evaluate(rs)
		used := make([]map[graph.Edge]bool, k)
		for i := range used {
			used[i] = map[graph.Edge]bool{}
		}
		for _, r := range results {
			for i := 0; i+1 < len(r); i++ {
				used[i][graph.Edge{From: r[i], To: r[i+1]}] = true
			}
		}
		for i, rel := range rs {
			for _, e := range rel.Tuples {
				if !used[i][e] {
					t.Fatalf("trial %d: dangling tuple %v in R%d after full reduction", trial, e, i+1)
				}
			}
		}
	}
}

// TestIndexEquivalence is the Appendix-B property: for every source vertex
// v that survives the full reducer in R_{i+1}, the index neighbor list
// It(v, k-i-1) equals the reduced relation's neighbor list R_{i+1}(v), and
// every reduced tuple appears in the index. (The index may additionally
// keep sources the reducer drops — vertices whose distances fit C_i but
// that no walk visits at position i exactly, e.g. for parity reasons; the
// appendix proof is per surviving source, which is what "competitive
// pruning power" means.)
func TestIndexEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(999))
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(8)
		g := gen.ErdosRenyi(n, n*3, rng.Int63())
		s := graph.VertexID(rng.Intn(n))
		tt := graph.VertexID(rng.Intn(n))
		if s == tt {
			continue
		}
		k := 2 + rng.Intn(3)
		q := core.Query{S: s, T: tt, K: k}

		rs, err := Build(g, q)
		if err != nil {
			t.Fatal(err)
		}
		ix, err := core.BuildIndex(g, q)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < k; i++ {
			// Group the reduced relation by source.
			bySource := map[graph.VertexID]map[graph.VertexID]bool{}
			for _, e := range rs[i].Tuples {
				if bySource[e.From] == nil {
					bySource[e.From] = map[graph.VertexID]bool{}
				}
				bySource[e.From][e.To] = true
			}
			for v, wantNbrs := range bySource {
				if !ix.InX(v) {
					t.Fatalf("trial %d level %d: reduced source %d not in X", trial, i, v)
				}
				got := ix.OutUpTo(v, k-i-1)
				if len(got) != len(wantNbrs) {
					t.Fatalf("trial %d level %d source %d: It has %d neighbors, relation %d",
						trial, i, v, len(got), len(wantNbrs))
				}
				for _, w := range got {
					if !wantNbrs[w] {
						t.Fatalf("trial %d level %d source %d: index neighbor %d missing from relation",
							trial, i, v, w)
					}
				}
			}
		}
	}
}

func TestBuildValidation(t *testing.T) {
	g := paperGraph(t)
	if _, err := BuildInitial(g, core.Query{S: 0, T: 0, K: 3}); err == nil {
		t.Error("s == t: expected error")
	}
	if _, err := Build(g, core.Query{S: 0, T: 1, K: 0}); err == nil {
		t.Error("k = 0: expected error")
	}
}

func TestKOne(t *testing.T) {
	g := paperGraph(t)
	// v0=2 has a direct edge to t=1.
	rs, err := Build(g, core.Query{S: 2, T: 1, K: 1})
	if err != nil {
		t.Fatal(err)
	}
	tuples := Evaluate(rs)
	if len(tuples) != 1 {
		t.Fatalf("k=1: got %d tuples, want 1", len(tuples))
	}
	paths := TuplesToPaths(tuples, 1)
	if len(paths) != 1 || len(paths[0]) != 2 {
		t.Fatalf("k=1: paths = %v", paths)
	}
}

func TestSizes(t *testing.T) {
	g := paperGraph(t)
	rs, err := BuildInitial(g, core.Query{S: 0, T: 1, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	sz := Sizes(rs)
	if len(sz) != 4 || sz[0] != 3 {
		t.Fatalf("Sizes = %v", sz)
	}
}
