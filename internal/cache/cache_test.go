package cache

import (
	"sync"
	"testing"

	"pathenum/internal/core"
	"pathenum/internal/gen"
	"pathenum/internal/graph"
)

func fwdFrontier(t *testing.T, g *graph.Graph, origin graph.VertexID, bound int) *core.Frontier {
	t.Helper()
	f, err := core.NewForwardFrontier(g, origin, bound, nil, core.PredicateNone)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestGetPutHitMiss(t *testing.T) {
	g := gen.BarabasiAlbert(40, 2, 1)
	c := New(4)
	key := Key{Origin: 3, Forward: true}

	if c.Get(key, 4, g.Version()) != nil {
		t.Fatal("empty cache must miss")
	}
	f := fwdFrontier(t, g, 3, 4)
	c.Put(f)
	if got := c.Get(key, 4, g.Version()); got != f {
		t.Fatal("expected the deposited frontier")
	}
	// bound >= k reuse: a smaller k is served, a larger k misses.
	if got := c.Get(key, 2, g.Version()); got != f {
		t.Fatal("k below the bound must hit")
	}
	if c.Get(key, 5, g.Version()) != nil {
		t.Fatal("k above the bound must miss")
	}
	// A wider labeling replaces the narrow one under the same key.
	wide := fwdFrontier(t, g, 3, 6)
	c.Put(wide)
	if got := c.Get(key, 5, g.Version()); got != wide {
		t.Fatal("expected the widened frontier")
	}
	// A narrower same-version deposit must not clobber the wide one.
	c.Put(f)
	if got := c.Get(key, 5, g.Version()); got != wide {
		t.Fatal("narrow re-deposit clobbered the wide frontier")
	}
	// Direction and predicate token are part of the key.
	if c.Get(Key{Origin: 3, Forward: false}, 2, g.Version()) != nil {
		t.Fatal("backward lookup must not see a forward frontier")
	}
	if c.Get(Key{Origin: 3, Forward: true, Pred: 9}, 2, g.Version()) != nil {
		t.Fatal("predicate lookup must not see an unfiltered frontier")
	}

	st := c.Stats()
	if st.Hits != 4 || st.Entries != 1 || st.Bytes != wide.MemoryBytes() {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLazyEpochInvalidation(t *testing.T) {
	d := graph.NewDynamic(gen.BarabasiAlbert(40, 2, 2))
	snap0 := d.Snapshot()
	c := New(4)
	c.Put(fwdFrontier(t, snap0, 1, 4))
	c.Put(fwdFrontier(t, snap0, 2, 4))

	if ok, err := d.Insert(1, 30); err != nil || !ok {
		// Edge may exist in the generated graph; find another.
		if ok2, err2 := d.Insert(1, 31); err2 != nil || !ok2 {
			t.Fatalf("could not insert a fresh edge: %v %v / %v %v", ok, err, ok2, err2)
		}
	}
	snap1 := d.Snapshot()

	// The bump costs nothing until touched: both entries still resident.
	if got := c.Len(); got != 2 {
		t.Fatalf("entries after epoch bump = %d, want 2 (lazy invalidation)", got)
	}
	// Touching one entry with the new version invalidates exactly it.
	if c.Get(Key{Origin: 1, Forward: true}, 4, snap1.Version()) != nil {
		t.Fatal("stale entry served")
	}
	st := c.Stats()
	if st.Invalidations != 1 || st.Entries != 1 {
		t.Fatalf("stats after stale touch = %+v", st)
	}
	// The old version still hits the untouched entry (same-epoch readers
	// may drain while a writer advances).
	if c.Get(Key{Origin: 2, Forward: true}, 4, snap0.Version()) == nil {
		t.Fatal("same-version entry must still hit for old-version readers")
	}
	// Depositing the rebuilt frontier replaces the stale epoch.
	c.Put(fwdFrontier(t, snap1, 2, 4))
	if c.Get(Key{Origin: 2, Forward: true}, 4, snap1.Version()) == nil {
		t.Fatal("refreshed entry must hit")
	}
}

// TestPinnedOldReadersDoNotClobberNewEntries: an in-flight batch pinned
// to a pre-update graph view must neither delete nor overwrite entries
// already refreshed for the current epoch.
func TestPinnedOldReadersDoNotClobberNewEntries(t *testing.T) {
	d := graph.NewDynamic(gen.BarabasiAlbert(40, 2, 6))
	snap0 := d.Snapshot()
	stale := fwdFrontier(t, snap0, 5, 4)
	if ok, err := d.Insert(5, 35); err != nil || !ok {
		if ok2, err2 := d.Insert(5, 36); err2 != nil || !ok2 {
			t.Fatalf("could not insert a fresh edge: %v %v / %v %v", ok, err, ok2, err2)
		}
	}
	snap1 := d.Snapshot()
	fresh := fwdFrontier(t, snap1, 5, 4)

	c := New(4)
	c.Put(fresh)
	key := Key{Origin: 5, Forward: true}

	// A pinned epoch-0 reader misses the epoch-1 entry without removing it.
	if c.Get(key, 4, snap0.Version()) != nil {
		t.Fatal("old-epoch reader must not be served a newer frontier")
	}
	if st := c.Stats(); st.Invalidations != 0 || st.Entries != 1 {
		t.Fatalf("old-epoch reader removed the fresh entry: %+v", st)
	}
	// Its late deposit must not clobber the fresh entry either.
	c.Put(stale)
	if got := c.Get(key, 4, snap1.Version()); got != fresh {
		t.Fatal("stale deposit replaced the fresh entry")
	}
	// The reverse order still upgrades: a fresh deposit replaces a stale
	// entry.
	c2 := New(4)
	c2.Put(stale)
	c2.Put(fresh)
	if got := c2.Get(key, 4, snap1.Version()); got != fresh {
		t.Fatal("fresh deposit did not replace the stale entry")
	}
}

func TestCapacityEviction(t *testing.T) {
	g := gen.BarabasiAlbert(40, 2, 3)
	c := New(2)
	c.Put(fwdFrontier(t, g, 0, 3))
	c.Put(fwdFrontier(t, g, 1, 3))
	// Touch origin 0 so origin 1 is the LRU victim.
	if c.Get(Key{Origin: 0, Forward: true}, 3, g.Version()) == nil {
		t.Fatal("expected hit")
	}
	c.Put(fwdFrontier(t, g, 2, 3))
	if c.Get(Key{Origin: 1, Forward: true}, 3, g.Version()) != nil {
		t.Fatal("LRU entry must have been evicted")
	}
	if c.Get(Key{Origin: 0, Forward: true}, 3, g.Version()) == nil {
		t.Fatal("recently used entry must survive eviction")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Capacity != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Bytes != 2*4*int64(g.NumVertices()) {
		t.Fatalf("bytes = %d", st.Bytes)
	}
}

// TestConcurrentAccess hammers Get/Put/Stats from many goroutines; run
// under -race it pins the locking discipline.
func TestConcurrentAccess(t *testing.T) {
	g := gen.BarabasiAlbert(60, 2, 4)
	c := New(8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				origin := graph.VertexID((w*7 + i) % 16)
				key := Key{Origin: origin, Forward: true}
				if c.Get(key, 3, g.Version()) == nil {
					f, err := core.NewForwardFrontier(g, origin, 3, nil, core.PredicateNone)
					if err != nil {
						t.Error(err)
						return
					}
					c.Put(f)
				}
				_ = c.Stats()
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 8 {
		t.Fatalf("capacity exceeded: %d", c.Len())
	}
}
