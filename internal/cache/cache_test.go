package cache

import (
	"math/rand"
	"sync"
	"testing"

	"pathenum/internal/core"
	"pathenum/internal/gen"
	"pathenum/internal/graph"
	"pathenum/internal/mem"
)

func fwdFrontier(t *testing.T, g *graph.Graph, origin graph.VertexID, bound int) *core.Frontier {
	t.Helper()
	f, err := core.NewForwardFrontier(g, origin, bound, nil, core.PredicateNone)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestGetPutHitMiss(t *testing.T) {
	g := gen.BarabasiAlbert(40, 2, 1)
	c := New(4)
	key := Key{Origin: 3, Forward: true}

	if c.Get(key, 4, g.Version()) != nil {
		t.Fatal("empty cache must miss")
	}
	f := fwdFrontier(t, g, 3, 4)
	c.Put(f)
	if got := c.Get(key, 4, g.Version()); got != f {
		t.Fatal("expected the deposited frontier")
	}
	// bound >= k reuse: a smaller k is served, a larger k misses.
	if got := c.Get(key, 2, g.Version()); got != f {
		t.Fatal("k below the bound must hit")
	}
	if c.Get(key, 5, g.Version()) != nil {
		t.Fatal("k above the bound must miss")
	}
	// A wider labeling replaces the narrow one under the same key.
	wide := fwdFrontier(t, g, 3, 6)
	c.Put(wide)
	if got := c.Get(key, 5, g.Version()); got != wide {
		t.Fatal("expected the widened frontier")
	}
	// A narrower same-version deposit must not clobber the wide one.
	c.Put(f)
	if got := c.Get(key, 5, g.Version()); got != wide {
		t.Fatal("narrow re-deposit clobbered the wide frontier")
	}
	// Direction and predicate token are part of the key.
	if c.Get(Key{Origin: 3, Forward: false}, 2, g.Version()) != nil {
		t.Fatal("backward lookup must not see a forward frontier")
	}
	if c.Get(Key{Origin: 3, Forward: true, Pred: 9}, 2, g.Version()) != nil {
		t.Fatal("predicate lookup must not see an unfiltered frontier")
	}

	st := c.Stats()
	if st.Hits != 4 || st.Entries != 1 || st.Bytes != wide.MemoryBytes() {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLazyEpochInvalidation(t *testing.T) {
	d := graph.NewDynamic(gen.BarabasiAlbert(40, 2, 2))
	snap0 := d.Snapshot()
	c := New(4)
	c.Put(fwdFrontier(t, snap0, 1, 4))
	c.Put(fwdFrontier(t, snap0, 2, 4))

	if ok, err := d.Insert(1, 30); err != nil || !ok {
		// Edge may exist in the generated graph; find another.
		if ok2, err2 := d.Insert(1, 31); err2 != nil || !ok2 {
			t.Fatalf("could not insert a fresh edge: %v %v / %v %v", ok, err, ok2, err2)
		}
	}
	snap1 := d.Snapshot()

	// The bump costs nothing until touched: both entries still resident.
	if got := c.Len(); got != 2 {
		t.Fatalf("entries after epoch bump = %d, want 2 (lazy invalidation)", got)
	}
	// Touching one entry with the new version invalidates exactly it.
	if c.Get(Key{Origin: 1, Forward: true}, 4, snap1.Version()) != nil {
		t.Fatal("stale entry served")
	}
	st := c.Stats()
	if st.Invalidations != 1 || st.Entries != 1 {
		t.Fatalf("stats after stale touch = %+v", st)
	}
	// The old version still hits the untouched entry (same-epoch readers
	// may drain while a writer advances).
	if c.Get(Key{Origin: 2, Forward: true}, 4, snap0.Version()) == nil {
		t.Fatal("same-version entry must still hit for old-version readers")
	}
	// Depositing the rebuilt frontier replaces the stale epoch.
	c.Put(fwdFrontier(t, snap1, 2, 4))
	if c.Get(Key{Origin: 2, Forward: true}, 4, snap1.Version()) == nil {
		t.Fatal("refreshed entry must hit")
	}
}

// TestPinnedOldReadersDoNotClobberNewEntries: an in-flight batch pinned
// to a pre-update graph view must neither delete nor overwrite entries
// already refreshed for the current epoch.
func TestPinnedOldReadersDoNotClobberNewEntries(t *testing.T) {
	d := graph.NewDynamic(gen.BarabasiAlbert(40, 2, 6))
	snap0 := d.Snapshot()
	stale := fwdFrontier(t, snap0, 5, 4)
	if ok, err := d.Insert(5, 35); err != nil || !ok {
		if ok2, err2 := d.Insert(5, 36); err2 != nil || !ok2 {
			t.Fatalf("could not insert a fresh edge: %v %v / %v %v", ok, err, ok2, err2)
		}
	}
	snap1 := d.Snapshot()
	fresh := fwdFrontier(t, snap1, 5, 4)

	c := New(4)
	c.Put(fresh)
	key := Key{Origin: 5, Forward: true}

	// A pinned epoch-0 reader misses the epoch-1 entry without removing it.
	if c.Get(key, 4, snap0.Version()) != nil {
		t.Fatal("old-epoch reader must not be served a newer frontier")
	}
	if st := c.Stats(); st.Invalidations != 0 || st.Entries != 1 {
		t.Fatalf("old-epoch reader removed the fresh entry: %+v", st)
	}
	// Its late deposit must not clobber the fresh entry either.
	c.Put(stale)
	if got := c.Get(key, 4, snap1.Version()); got != fresh {
		t.Fatal("stale deposit replaced the fresh entry")
	}
	// The reverse order still upgrades: a fresh deposit replaces a stale
	// entry.
	c2 := New(4)
	c2.Put(stale)
	c2.Put(fresh)
	if got := c2.Get(key, 4, snap1.Version()); got != fresh {
		t.Fatal("fresh deposit did not replace the stale entry")
	}
}

func TestCapacityEviction(t *testing.T) {
	g := gen.BarabasiAlbert(40, 2, 3)
	c := New(2)
	c.Put(fwdFrontier(t, g, 0, 3))
	c.Put(fwdFrontier(t, g, 1, 3))
	// Touch origin 0 so origin 1 is the LRU victim.
	if c.Get(Key{Origin: 0, Forward: true}, 3, g.Version()) == nil {
		t.Fatal("expected hit")
	}
	c.Put(fwdFrontier(t, g, 2, 3))
	if c.Get(Key{Origin: 1, Forward: true}, 3, g.Version()) != nil {
		t.Fatal("LRU entry must have been evicted")
	}
	if c.Get(Key{Origin: 0, Forward: true}, 3, g.Version()) == nil {
		t.Fatal("recently used entry must survive eviction")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Capacity != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Bytes != 2*4*int64(g.NumVertices()) {
		t.Fatalf("bytes = %d", st.Bytes)
	}
}

// TestConcurrentAccess hammers Get/Put/Stats from many goroutines; run
// under -race it pins the locking discipline.
func TestConcurrentAccess(t *testing.T) {
	g := gen.BarabasiAlbert(60, 2, 4)
	c := New(8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				origin := graph.VertexID((w*7 + i) % 16)
				key := Key{Origin: origin, Forward: true}
				if c.Get(key, 3, g.Version()) == nil {
					f, err := core.NewForwardFrontier(g, origin, 3, nil, core.PredicateNone)
					if err != nil {
						t.Error(err)
						return
					}
					c.Put(f)
				}
				_ = c.Stats()
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 8 {
		t.Fatalf("capacity exceeded: %d", c.Len())
	}
}

// residentSum walks the LRU and totals the labeling bytes actually
// resident — the ground truth Stats.Bytes must track.
func residentSum(c *FrontierCache) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var sum int64
	for el := c.lru.Front(); el != nil; el = el.Next() {
		sum += el.Value.(*entry).f.MemoryBytes()
	}
	return sum
}

func TestByteBoundEviction(t *testing.T) {
	g := gen.BarabasiAlbert(40, 2, 5)
	per := int64(4 * g.NumVertices())
	// Room for two entries, generous entry capacity: bytes must evict.
	c := NewBudgeted(16, 2*per, nil)
	c.Put(fwdFrontier(t, g, 0, 3))
	c.Put(fwdFrontier(t, g, 1, 3))
	if !c.Put(fwdFrontier(t, g, 2, 3)) {
		t.Fatal("fitting deposit refused")
	}
	st := c.Stats()
	if st.Entries != 2 || st.Bytes != 2*per || st.Evictions != 1 {
		t.Fatalf("stats after byte eviction = %+v", st)
	}
	if c.Get(Key{Origin: 0, Forward: true}, 3, g.Version()) != nil {
		t.Fatal("LRU entry must have been evicted on bytes")
	}

	// A deposit larger than the whole bound is refused, cache untouched.
	big := gen.BarabasiAlbert(400, 2, 5)
	if c.Put(fwdFrontier(t, big, 9, 3)) {
		t.Fatal("oversize deposit admitted")
	}
	st2 := c.Stats()
	if st2.Rejected != 1 || st2.Bytes != 2*per || st2.Entries != 2 {
		t.Fatalf("stats after oversize refusal = %+v", st2)
	}
	if got := residentSum(c); got != st2.Bytes {
		t.Fatalf("resident %d != stats %d", got, st2.Bytes)
	}
}

// TestReplacementRespectsBound pins the fix for the in-place replacement
// branch: growing an entry (wider bound, or a bigger graph under the
// same key) must stay under the byte bound by evicting others, and be
// refused — entry kept — when eviction cannot make room.
func TestReplacementRespectsBound(t *testing.T) {
	small := gen.BarabasiAlbert(40, 2, 5)
	big := gen.BarabasiAlbert(200, 2, 5)
	perSmall := int64(4 * small.NumVertices())
	perBig := int64(4 * big.NumVertices())

	// Bound fits both small entries, or one big one alone — not both.
	c := NewBudgeted(16, perSmall+perBig-1, nil)
	c.Put(fwdFrontier(t, small, 0, 3))
	c.Put(fwdFrontier(t, small, 1, 3))
	// Same key (origin 1), unrelated lineage, much larger: replacement
	// grows the entry, so the other entry must be evicted to fit.
	if !c.Put(fwdFrontier(t, big, 1, 3)) {
		t.Fatal("growing replacement refused despite evictable room")
	}
	st := c.Stats()
	if st.Bytes > c.MaxBytes() {
		t.Fatalf("bytes %d exceed bound %d after replacement", st.Bytes, st.MaxBytes)
	}
	if st.Entries != 1 || st.Evictions != 1 {
		t.Fatalf("stats after growing replacement = %+v", st)
	}
	if got := residentSum(c); got != st.Bytes {
		t.Fatalf("resident %d != stats %d", got, st.Bytes)
	}

	// A replacement that cannot fit even alone is refused and the
	// existing entry survives.
	c2 := NewBudgeted(16, perSmall, nil)
	c2.Put(fwdFrontier(t, small, 1, 3))
	if c2.Put(fwdFrontier(t, big, 1, 3)) {
		t.Fatal("unfittable replacement admitted")
	}
	st2 := c2.Stats()
	if st2.Rejected != 1 || st2.Entries != 1 || st2.Bytes != perSmall {
		t.Fatalf("stats after refused replacement = %+v", st2)
	}
	if c2.Get(Key{Origin: 1, Forward: true}, 3, small.Version()) == nil {
		t.Fatal("existing entry lost on refused replacement")
	}
}

// TestSharedBudgetChargeRelease wires the cache to an engine-wide ledger
// and checks every resident byte is charged to mem.ClassCache and given
// back on eviction, replacement shrink, and invalidation.
func TestSharedBudgetChargeRelease(t *testing.T) {
	d := graph.NewDynamic(gen.BarabasiAlbert(40, 2, 7))
	snap0 := d.Snapshot()
	per := snap0.NumVertices()
	b := mem.New(int64(3 * 4 * per))
	c := NewBudgeted(16, 0, b) // no local bound: the ledger is the bound

	c.Put(fwdFrontier(t, snap0, 0, 3))
	c.Put(fwdFrontier(t, snap0, 1, 3))
	c.Put(fwdFrontier(t, snap0, 2, 3))
	if got := b.ClassBytes(mem.ClassCache); got != c.Stats().Bytes {
		t.Fatalf("ledger %d != cache bytes %d", got, c.Stats().Bytes)
	}
	// The ledger is full: a fourth deposit evicts the cache's LRU entry.
	if !c.Put(fwdFrontier(t, snap0, 3, 3)) {
		t.Fatal("deposit refused despite evictable entries")
	}
	st := c.Stats()
	if st.Entries != 3 || st.Evictions != 1 {
		t.Fatalf("stats after ledger-driven eviction = %+v", st)
	}
	if b.Used() != st.Bytes {
		t.Fatalf("ledger used %d != cache bytes %d", b.Used(), st.Bytes)
	}

	// Starve the ledger from another class: the deposit fails even after
	// the cache drains itself trying to make room — residency yields to
	// the pressuring class and the ledger stays exact.
	b.Must(mem.ClassBuild, b.Limit())
	if c.Put(fwdFrontier(t, snap0, 9, 3)) {
		t.Fatal("deposit admitted with no ledger headroom")
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 || b.ClassBytes(mem.ClassCache) != 0 {
		t.Fatalf("starved refusal left residency: %+v ledger=%d", st, b.ClassBytes(mem.ClassCache))
	}
	b.Release(mem.ClassBuild, b.Limit())
	c.Put(fwdFrontier(t, snap0, 0, 3))
	c.Put(fwdFrontier(t, snap0, 1, 3))

	// Invalidation returns bytes too.
	if ok, err := d.Insert(0, 30); err != nil || !ok {
		if ok2, err2 := d.Insert(0, 31); err2 != nil || !ok2 {
			t.Fatalf("could not insert a fresh edge: %v %v / %v %v", ok, err, ok2, err2)
		}
	}
	snap1 := d.Snapshot()
	before := b.ClassBytes(mem.ClassCache)
	if c.Get(Key{Origin: 1, Forward: true}, 3, snap1.Version()) != nil {
		t.Fatal("stale entry served")
	}
	if got := b.ClassBytes(mem.ClassCache); got != before-int64(4*per) {
		t.Fatalf("invalidation did not release ledger bytes: %d -> %d", before, got)
	}
	if got := residentSum(c); got != b.ClassBytes(mem.ClassCache) {
		t.Fatalf("resident %d != ledger %d", got, b.ClassBytes(mem.ClassCache))
	}
}

// TestBytesInvariantRandomized is the byte-accounting property test:
// across randomized Put/Get interleavings — hits, misses, capacity and
// byte evictions, lazy invalidations, in-place replacements in both
// directions (grow and shrink), stale deposits, refusals — Stats.Bytes
// must equal the sum of MemoryBytes over the entries actually resident,
// never exceed the byte bound, and match the shared ledger.
func TestBytesInvariantRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	small := gen.BarabasiAlbert(30, 2, 11)
	big := gen.BarabasiAlbert(90, 2, 12)
	huge := gen.BarabasiAlbert(400, 2, 14) // over the byte bound alone: forces refusals
	d := graph.NewDynamic(gen.BarabasiAlbert(50, 2, 13))
	snaps := []*graph.Graph{d.Snapshot()}

	b := mem.New(int64(4 * 90 * 6))
	c := NewBudgeted(5, int64(4*90*4), b)

	graphs := func() *graph.Graph {
		switch rng.Intn(8) {
		case 0, 1:
			return small
		case 2, 3:
			return big
		case 4:
			return huge
		default:
			return snaps[rng.Intn(len(snaps))]
		}
	}
	check := func(op string, i int) {
		st := c.Stats()
		if got := residentSum(c); got != st.Bytes {
			t.Fatalf("op %d (%s): resident %d != Stats.Bytes %d", i, op, got, st.Bytes)
		}
		if st.MaxBytes > 0 && st.Bytes > st.MaxBytes {
			t.Fatalf("op %d (%s): bytes %d exceed bound %d", i, op, st.Bytes, st.MaxBytes)
		}
		if got := b.ClassBytes(mem.ClassCache); got != st.Bytes {
			t.Fatalf("op %d (%s): ledger %d != Stats.Bytes %d", i, op, got, st.Bytes)
		}
		if st.Entries > c.Capacity() {
			t.Fatalf("op %d (%s): %d entries over capacity %d", i, op, st.Entries, st.Capacity)
		}
	}
	for i := 0; i < 4000; i++ {
		g := graphs()
		origin := graph.VertexID(rng.Intn(12))
		k := 2 + rng.Intn(4)
		switch rng.Intn(5) {
		case 0, 1: // deposit (insert, replacement, or stale refusal)
			f, err := core.NewForwardFrontier(g, origin, k, nil, core.PredicateNone)
			if err != nil {
				t.Fatal(err)
			}
			c.Put(f)
			check("put", i)
		case 2, 3: // lookup (hit, miss, or lazy invalidation)
			c.Get(Key{Origin: origin, Forward: true}, k, g.Version())
			check("get", i)
		default: // advance the dynamic graph's epoch now and then
			if len(snaps) < 6 {
				from := graph.VertexID(rng.Intn(40))
				to := graph.VertexID(rng.Intn(40))
				if ok, err := d.Insert(from, to); err == nil && ok {
					snaps = append(snaps, d.Snapshot())
				}
			}
		}
	}
	if st := c.Stats(); st.Evictions == 0 || st.Invalidations == 0 || st.Rejected == 0 {
		t.Fatalf("property run did not exercise all paths: %+v", st)
	}
}

// TestConcurrentReplacementStats races Put-with-replacement (alternating
// lineages under one key force genuine in-place swaps with nonzero
// deltas) against Stats and Get readers; under -race it pins the locking
// around the replacement byte accounting.
func TestConcurrentReplacementStats(t *testing.T) {
	a := gen.BarabasiAlbert(40, 2, 21)
	bg := gen.BarabasiAlbert(120, 2, 22)
	b := mem.New(4 * 120 * 8)
	c := NewBudgeted(4, 4*120*4, b)

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				g := a
				if (w+i)%2 == 0 {
					g = bg
				}
				origin := graph.VertexID(i % 3)
				f, err := core.NewForwardFrontier(g, origin, 3, nil, core.PredicateNone)
				if err != nil {
					t.Error(err)
					return
				}
				c.Put(f)
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 600; i++ {
				st := c.Stats()
				if st.MaxBytes > 0 && st.Bytes > st.MaxBytes {
					t.Errorf("bytes %d exceed bound %d", st.Bytes, st.MaxBytes)
					return
				}
				c.Get(Key{Origin: graph.VertexID(i % 3), Forward: true}, 3, a.Version())
			}
		}()
	}
	wg.Wait()
	st := c.Stats()
	if got := residentSum(c); got != st.Bytes {
		t.Fatalf("resident %d != Stats.Bytes %d after race", got, st.Bytes)
	}
	if got := b.ClassBytes(mem.ClassCache); got != st.Bytes {
		t.Fatalf("ledger %d != Stats.Bytes %d after race", got, st.Bytes)
	}
}
