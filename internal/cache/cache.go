// Package cache provides the engine's cross-batch frontier cache: a
// size-bounded, concurrency-safe LRU of core.Frontier labelings keyed by
// (endpoint, direction, predicate identity), validated by graph version.
//
// PathEnum's per-query index rebuild is what makes it real-time, but a
// repeat hub — a popular account queried in every fraud batch, the
// dynamic e-commerce scenario of §7.2 — pays the same BFS labeling on
// every call. The batch subsystem (internal/batch) removes that
// redundancy within one batch; this cache removes it *across* batches and
// across single queries: a frontier built once is served to every later
// query with the same endpoint, direction, compatible bound (bound >= k —
// frontier labels are a sound relaxation, see core.Frontier) and the same
// predicate identity (core.PredicateToken).
//
// Caching across calls is only safe because every frontier carries the
// graph.Version it was built on: lookups validate the cached version
// against the caller's graph and remove entries that no longer match
// (counted as invalidations). Invalidation is lazy — a Dynamic.Insert
// epoch bump costs nothing until a stale entry is actually touched; there
// is no global sweep. Even a cache bug cannot corrupt results: the core
// executor re-validates every frontier against the execution graph and
// fails the query with graph.ErrStaleEpoch instead of using stale labels.
package cache

import (
	"container/list"
	"sync"

	"pathenum/internal/core"
	"pathenum/internal/graph"
)

// DefaultCapacity is the entry bound used when New is given 0. Each entry
// holds one O(|V|) labeling (4 bytes per vertex), so the worst-case
// resident size is DefaultCapacity * 4 * |V| bytes; services on very
// large graphs should size the cache explicitly.
const DefaultCapacity = 64

// Key identifies a cached frontier up to graph version: the BFS origin,
// the direction, and the identity of the edge predicate it was built
// under (core.PredicateNone for unfiltered frontiers). The graph version
// is deliberately not part of the key — one entry per key exists at a
// time, and lookups validate its version lazily, so an epoch bump
// invalidates exactly the entries that are touched again.
type Key struct {
	Origin  graph.VertexID
	Forward bool
	Pred    core.PredicateToken
}

// keyOf derives the cache key a frontier self-describes.
func keyOf(f *core.Frontier) Key {
	return Key{Origin: f.Origin(), Forward: f.IsForward(), Pred: f.PredToken()}
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Hits / Misses count Get outcomes. A Get that finds a stale or
	// too-small entry is a miss.
	Hits   uint64
	Misses uint64
	// Evictions counts entries dropped by the capacity bound.
	Evictions uint64
	// Invalidations counts entries removed because their graph version no
	// longer matched the caller's (lazy epoch invalidation).
	Invalidations uint64
	// Entries and Capacity describe the current occupancy.
	Entries  int
	Capacity int
	// Bytes is the resident size of all cached labelings.
	Bytes int64
}

// entry is one LRU node.
type entry struct {
	key Key
	f   *core.Frontier
}

// FrontierCache is the invalidation-aware LRU. The zero value is not
// usable; create one with New. All methods are safe for concurrent use.
type FrontierCache struct {
	mu       sync.Mutex
	capacity int
	lru      *list.List // front = most recently used; values are *entry
	byKey    map[Key]*list.Element
	bytes    int64

	hits, misses, evictions, invalidations uint64
}

// New creates a cache bounded to capacity entries (0 = DefaultCapacity).
func New(capacity int) *FrontierCache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &FrontierCache{
		capacity: capacity,
		lru:      list.New(),
		byKey:    make(map[Key]*list.Element, capacity),
	}
}

// Capacity returns the entry bound.
func (c *FrontierCache) Capacity() int { return c.capacity }

// Get returns a cached frontier for key that can serve hop bound k on a
// graph at version ver, or nil. An entry whose version does not match ver
// is removed on the spot (lazy invalidation); an entry with a bound < k
// stays — a later Put with a larger bound will replace it — but reports a
// miss, since the caller must build the larger labeling.
func (c *FrontierCache) Get(key Key, k int, ver graph.Version) *core.Frontier {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil
	}
	ent := el.Value.(*entry)
	if ev := ent.f.GraphVersion(); ev.ValidFor(ver) != nil {
		// A reader pinned to an older epoch (an in-flight batch that
		// captured its view before an UpdateGraph) must not delete an
		// entry newer than itself — current-epoch readers still want it.
		// Only entries at or below the caller's epoch (or of an
		// unrelated lineage) are truly dead.
		if ev.SameLineage(ver) && ev.Epoch() > ver.Epoch() {
			c.misses++
			return nil
		}
		c.removeLocked(el)
		c.invalidations++
		c.misses++
		return nil
	}
	if ent.f.Bound() < k {
		c.misses++
		return nil
	}
	c.lru.MoveToFront(el)
	c.hits++
	return ent.f
}

// Put deposits f, keyed by its own (origin, direction, predicate
// identity). Within one lineage the higher epoch always wins — a deposit
// from an in-flight batch pinned to a pre-update view must not clobber a
// fresh entry — and at equal versions the wider labeling is kept (it
// serves a superset of queries). An unrelated lineage replaces the entry
// outright (epochs are incomparable; the depositor is the more recent
// user). Inserting beyond capacity evicts from the least-recently-used
// end. Nil frontiers are ignored.
func (c *FrontierCache) Put(f *core.Frontier) {
	if f == nil {
		return
	}
	key := keyOf(f)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		ent := el.Value.(*entry)
		have, dep := ent.f.GraphVersion(), f.GraphVersion()
		if have == dep && ent.f.Bound() >= f.Bound() {
			c.lru.MoveToFront(el)
			return
		}
		if have.SameLineage(dep) && have.Epoch() > dep.Epoch() {
			return // stale deposit; keep the newer entry untouched
		}
		c.bytes += f.MemoryBytes() - ent.f.MemoryBytes()
		ent.f = f
		c.lru.MoveToFront(el)
		return
	}
	c.byKey[key] = c.lru.PushFront(&entry{key: key, f: f})
	c.bytes += f.MemoryBytes()
	for c.lru.Len() > c.capacity {
		c.removeLocked(c.lru.Back())
		c.evictions++
	}
}

// removeLocked unlinks an element; the caller holds c.mu and attributes
// the removal to the right counter.
func (c *FrontierCache) removeLocked(el *list.Element) {
	ent := c.lru.Remove(el).(*entry)
	delete(c.byKey, ent.key)
	c.bytes -= ent.f.MemoryBytes()
}

// Len returns the current entry count.
func (c *FrontierCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Stats snapshots the counters.
func (c *FrontierCache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
		Entries:       c.lru.Len(),
		Capacity:      c.capacity,
		Bytes:         c.bytes,
	}
}
