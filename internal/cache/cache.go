// Package cache provides the engine's cross-batch frontier cache: a
// size- and byte-bounded, concurrency-safe LRU of core.Frontier labelings
// keyed by (endpoint, direction, predicate identity), validated by graph
// version.
//
// PathEnum's per-query index rebuild is what makes it real-time, but a
// repeat hub — a popular account queried in every fraud batch, the
// dynamic e-commerce scenario of §7.2 — pays the same BFS labeling on
// every call. The batch subsystem (internal/batch) removes that
// redundancy within one batch; this cache removes it *across* batches and
// across single queries: a frontier built once is served to every later
// query with the same endpoint, direction, compatible bound (bound >= k —
// frontier labels are a sound relaxation, see core.Frontier) and the same
// predicate identity (core.PredicateToken).
//
// Residency is bounded in bytes, not just entries. Every entry is an
// O(|V|) labeling (core.Frontier.MemoryBytes), so an entry-count bound
// alone scales residency with the graph: 64 entries on a 10M-vertex graph
// is ~2.5 GB. A cache built with NewBudgeted evicts from the LRU end
// until a deposit fits its byte bound — in-place replacements included —
// and *refuses* a deposit that cannot fit even in an otherwise empty
// cache (Stats.Rejected) instead of holding an oversize entry. When
// wired to a shared mem.Budget, resident bytes are additionally charged
// to the engine-wide ledger (mem.ClassCache), so the cache competes with
// session scratch and join build sides for one configured limit and a
// deposit is refused when the engine as a whole is out of headroom.
//
// Caching across calls is only safe because every frontier carries the
// graph.Version it was built on: lookups validate the cached version
// against the caller's graph and remove entries that no longer match
// (counted as invalidations). Invalidation is lazy — a Dynamic.Insert
// epoch bump costs nothing until a stale entry is actually touched; there
// is no global sweep. Even a cache bug cannot corrupt results: the core
// executor re-validates every frontier against the execution graph and
// fails the query with graph.ErrStaleEpoch instead of using stale labels.
package cache

import (
	"container/list"
	"sync"

	"pathenum/internal/core"
	"pathenum/internal/graph"
	"pathenum/internal/mem"
)

// DefaultCapacity is the entry bound used when New is given 0. The entry
// count is a secondary bound: each entry holds one O(|V|) labeling
// (4 bytes per vertex), so services on large graphs should bound the
// cache in bytes (NewBudgeted, or EngineConfig.MemoryBudgetBytes at the
// engine level) rather than relying on the entry count alone.
const DefaultCapacity = 64

// Key identifies a cached frontier up to graph version: the BFS origin,
// the direction, and the identity of the edge predicate it was built
// under (core.PredicateNone for unfiltered frontiers). The graph version
// is deliberately not part of the key — one entry per key exists at a
// time, and lookups validate its version lazily, so an epoch bump
// invalidates exactly the entries that are touched again.
type Key struct {
	Origin  graph.VertexID
	Forward bool
	Pred    core.PredicateToken
}

// keyOf derives the cache key a frontier self-describes.
func keyOf(f *core.Frontier) Key {
	return Key{Origin: f.Origin(), Forward: f.IsForward(), Pred: f.PredToken()}
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Hits / Misses count Get outcomes. A Get that finds a stale or
	// too-small entry is a miss.
	Hits   uint64
	Misses uint64
	// Evictions counts entries dropped by the capacity or byte bound
	// (including entries evicted to make room for an in-place
	// replacement that grew).
	Evictions uint64
	// Invalidations counts entries removed because their graph version no
	// longer matched the caller's (lazy epoch invalidation).
	Invalidations uint64
	// Rejected counts deposits refused outright: frontiers that would not
	// fit the byte bound (or the shared budget) even after evicting
	// every other entry.
	Rejected uint64
	// Entries and Capacity describe the current occupancy.
	Entries  int
	Capacity int
	// Bytes is the resident size of all cached labelings; MaxBytes the
	// byte bound (0 = unbounded in bytes).
	Bytes    int64
	MaxBytes int64
}

// entry is one LRU node.
type entry struct {
	key Key
	f   *core.Frontier
}

// FrontierCache is the invalidation-aware LRU. The zero value is not
// usable; create one with New or NewBudgeted. All methods are safe for
// concurrent use.
type FrontierCache struct {
	mu       sync.Mutex
	capacity int
	maxBytes int64       // 0 = no byte bound
	budget   *mem.Budget // nil = no shared ledger
	lru      *list.List  // front = most recently used; values are *entry
	byKey    map[Key]*list.Element
	bytes    int64

	hits, misses, evictions, invalidations, rejected uint64
}

// New creates a cache bounded to capacity entries (0 = DefaultCapacity)
// with no byte bound.
func New(capacity int) *FrontierCache {
	return NewBudgeted(capacity, 0, nil)
}

// NewBudgeted creates a cache bounded to capacity entries (0 =
// DefaultCapacity) and, when maxBytes > 0, to maxBytes resident labeling
// bytes — deposits evict from the LRU end until they fit, and a deposit
// larger than the bound itself is refused (Stats.Rejected). A non-nil
// budget additionally charges resident bytes to the shared engine ledger
// under mem.ClassCache: deposits the ledger cannot absorb evict here
// first and are refused if eviction cannot free enough.
func NewBudgeted(capacity int, maxBytes int64, budget *mem.Budget) *FrontierCache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if maxBytes < 0 {
		maxBytes = 0
	}
	return &FrontierCache{
		capacity: capacity,
		maxBytes: maxBytes,
		budget:   budget,
		lru:      list.New(),
		byKey:    make(map[Key]*list.Element, capacity),
	}
}

// Capacity returns the entry bound.
func (c *FrontierCache) Capacity() int { return c.capacity }

// MaxBytes returns the byte bound (0 = unbounded in bytes).
func (c *FrontierCache) MaxBytes() int64 { return c.maxBytes }

// Get returns a cached frontier for key that can serve hop bound k on a
// graph at version ver, or nil. An entry whose version does not match ver
// is removed on the spot (lazy invalidation); an entry with a bound < k
// stays — a later Put with a larger bound will replace it — but reports a
// miss, since the caller must build the larger labeling.
func (c *FrontierCache) Get(key Key, k int, ver graph.Version) *core.Frontier {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return nil
	}
	ent := el.Value.(*entry)
	if ev := ent.f.GraphVersion(); ev.ValidFor(ver) != nil {
		// A reader pinned to an older epoch (an in-flight batch that
		// captured its view before an UpdateGraph) must not delete an
		// entry newer than itself — current-epoch readers still want it.
		// Only entries at or below the caller's epoch (or of an
		// unrelated lineage) are truly dead.
		if ev.SameLineage(ver) && ev.Epoch() > ver.Epoch() {
			c.misses++
			return nil
		}
		c.removeLocked(el)
		c.invalidations++
		c.misses++
		return nil
	}
	if ent.f.Bound() < k {
		c.misses++
		return nil
	}
	c.lru.MoveToFront(el)
	c.hits++
	return ent.f
}

// Put deposits f, keyed by its own (origin, direction, predicate
// identity), and reports whether it is resident afterwards. Within one
// lineage the higher epoch always wins — a deposit from an in-flight
// batch pinned to a pre-update view must not clobber a fresh entry — and
// at equal versions the wider labeling is kept (it serves a superset of
// queries). An unrelated lineage replaces the entry outright (epochs are
// incomparable; the depositor is the more recent user).
//
// Admission is bounded in entries and bytes: inserting beyond capacity
// evicts from the least-recently-used end, and a deposit — including an
// in-place replacement that grows the entry — evicts LRU entries until
// the byte bound and the shared budget can absorb it. A deposit that
// does not fit even then is refused (false, Stats.Rejected) and the
// cache is left as it was. Nil frontiers are ignored.
func (c *FrontierCache) Put(f *core.Frontier) bool {
	if f == nil {
		return false
	}
	key := keyOf(f)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		ent := el.Value.(*entry)
		have, dep := ent.f.GraphVersion(), f.GraphVersion()
		if have == dep && ent.f.Bound() >= f.Bound() {
			c.lru.MoveToFront(el)
			return true
		}
		if have.SameLineage(dep) && have.Epoch() > dep.Epoch() {
			return false // stale deposit; keep the newer entry untouched
		}
		// In-place replacement: the byte bound must hold afterwards, so
		// a growth delta is admitted like a fresh deposit — evicting
		// other entries as needed — before the swap. A refusal keeps the
		// existing entry (narrower or stale, both handled lazily by Get).
		delta := f.MemoryBytes() - ent.f.MemoryBytes()
		if delta > 0 {
			if !c.ensureRoomLocked(delta, el) {
				c.rejected++
				return false
			}
		} else if delta < 0 {
			c.budget.Release(mem.ClassCache, -delta)
		}
		c.bytes += delta
		ent.f = f
		c.lru.MoveToFront(el)
		return true
	}
	need := f.MemoryBytes()
	if !c.ensureRoomLocked(need, nil) {
		c.rejected++
		return false
	}
	c.bytes += need
	c.byKey[key] = c.lru.PushFront(&entry{key: key, f: f})
	for c.lru.Len() > c.capacity {
		c.removeLocked(c.lru.Back())
		c.evictions++
	}
	return true
}

// ensureRoomLocked makes room for need more resident bytes under the byte
// bound and the shared budget, evicting from the LRU end (never keep,
// the entry being replaced). It reports false — with the budget left
// unreserved — when eviction cannot free enough; on true the need bytes
// are reserved on the budget and accounted to the caller.
func (c *FrontierCache) ensureRoomLocked(need int64, keep *list.Element) bool {
	if c.maxBytes > 0 && need > c.maxBytes {
		return false // can never fit: refuse without draining the cache
	}
	for {
		if c.maxBytes <= 0 || c.bytes+need <= c.maxBytes {
			if c.budget.TryReserve(mem.ClassCache, need) {
				return true
			}
		}
		el := c.lru.Back()
		if el != nil && el == keep {
			el = el.Prev()
		}
		if el == nil {
			return false
		}
		c.removeLocked(el)
		c.evictions++
	}
}

// removeLocked unlinks an element, returning its bytes to the local count
// and the shared budget; the caller holds c.mu and attributes the removal
// to the right counter.
func (c *FrontierCache) removeLocked(el *list.Element) {
	ent := c.lru.Remove(el).(*entry)
	delete(c.byKey, ent.key)
	bytes := ent.f.MemoryBytes()
	c.bytes -= bytes
	c.budget.Release(mem.ClassCache, bytes)
}

// Len returns the current entry count.
func (c *FrontierCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// Stats snapshots the counters.
func (c *FrontierCache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Invalidations: c.invalidations,
		Rejected:      c.rejected,
		Entries:       c.lru.Len(),
		Capacity:      c.capacity,
		Bytes:         c.bytes,
		MaxBytes:      c.maxBytes,
	}
}
