package baseline

import (
	"errors"
	"math/rand"
	"testing"

	"pathenum/internal/core"
	"pathenum/internal/gen"
	"pathenum/internal/graph"
)

func hpiCollect(t *testing.T, h *HPI, g *graph.Graph, q core.Query) [][]graph.VertexID {
	t.Helper()
	if err := h.Prepare(g, q); err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	var out [][]graph.VertexID
	done, err := h.Enumerate(core.RunControl{Emit: func(p []graph.VertexID) bool {
		out = append(out, append([]graph.VertexID(nil), p...))
		return true
	}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("unexpected early stop")
	}
	return out
}

// TestHPIMatchesBruteForce sweeps hot-set sizes from zero (pure query-time
// DFS) to the whole vertex set (pure index assembly): every configuration
// must enumerate exactly P(s,t,k,G).
func TestHPIMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	for trial := 0; trial < 25; trial++ {
		n := 5 + rng.Intn(9)
		g := gen.ErdosRenyi(n, n*3, rng.Int63())
		kmax := 2 + rng.Intn(3)
		for _, hotCount := range []int{0, 1, n / 2, n} {
			h, err := NewHPI(g, HPIConfig{KMax: kmax, HotCount: hotCount})
			if err != nil {
				t.Fatalf("trial %d hot=%d: %v", trial, hotCount, err)
			}
			for probe := 0; probe < 4; probe++ {
				s := graph.VertexID(rng.Intn(n))
				tt := graph.VertexID(rng.Intn(n))
				if s == tt {
					continue
				}
				k := 1 + rng.Intn(kmax)
				q := core.Query{S: s, T: tt, K: k}
				got := hpiCollect(t, h, g, q)
				want := BrutePaths(g, s, tt, k)
				if !SamePathSet(got, want) {
					t.Fatalf("trial %d hot=%d %v: HPI %d paths, oracle %d",
						trial, hotCount, q, len(got), len(want))
				}
			}
		}
	}
}

// TestHPIHotEndpoints pins the corner cases: s hot, t hot, both hot.
func TestHPIHotEndpoints(t *testing.T) {
	g := gen.BarabasiAlbert(60, 4, 41)
	h, err := NewHPI(g, HPIConfig{KMax: 4, HotCount: 6})
	if err != nil {
		t.Fatal(err)
	}
	hotList := h.hotList
	if len(hotList) < 2 {
		t.Fatal("need at least two hot vertices")
	}
	cold := graph.VertexID(-1)
	for v := graph.VertexID(0); v < 60; v++ {
		if !h.hot[v] {
			cold = v
			break
		}
	}
	cases := []core.Query{
		{S: hotList[0], T: hotList[1], K: 4}, // hot -> hot
		{S: hotList[0], T: cold, K: 4},       // hot -> cold
		{S: cold, T: hotList[0], K: 4},       // cold -> hot
	}
	for _, q := range cases {
		got := hpiCollect(t, h, g, q)
		want := BrutePaths(g, q.S, q.T, q.K)
		if !SamePathSet(got, want) {
			t.Fatalf("%v: HPI %d paths, oracle %d", q, len(got), len(want))
		}
	}
}

func TestHPIValidation(t *testing.T) {
	g := gen.Cycle(6)
	if _, err := NewHPI(g, HPIConfig{KMax: 0, HotCount: 2}); err == nil {
		t.Error("KMax 0: expected error")
	}
	if _, err := NewHPI(g, HPIConfig{KMax: 3, HotCount: -1}); err == nil {
		t.Error("negative HotCount: expected error")
	}
	h, err := NewHPI(g, HPIConfig{KMax: 3, HotCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Prepare(g, core.Query{S: 0, T: 0, K: 2}); err == nil {
		t.Error("s == t: expected error")
	}
	if err := h.Prepare(g, core.Query{S: 0, T: 1, K: 9}); err == nil {
		t.Error("k > KMax: expected error")
	}
	other := gen.Cycle(7)
	if err := h.Prepare(other, core.Query{S: 0, T: 1, K: 2}); err == nil {
		t.Error("different graph: expected error")
	}
}

// TestHPIIndexBlowup: a dense graph with a tiny cap must fail with the
// dedicated error — the paper's memory criticism made executable.
func TestHPIIndexBlowup(t *testing.T) {
	g := gen.Complete(12)
	_, err := NewHPI(g, HPIConfig{KMax: 6, HotCount: 4, MaxStoredPaths: 10})
	if !errors.Is(err, ErrHPIIndexTooLarge) {
		t.Fatalf("err = %v, want ErrHPIIndexTooLarge", err)
	}
}

// TestHPIIndexGrowsWithK quantifies the exponential growth of the offline
// index with the hop budget.
func TestHPIIndexGrowsWithK(t *testing.T) {
	g := gen.BarabasiAlbert(200, 5, 13)
	var prev int64 = -1
	for _, kmax := range []int{2, 3, 4} {
		h, err := NewHPI(g, HPIConfig{KMax: kmax, HotCount: 20, MaxStoredPaths: 1 << 40})
		if err != nil {
			t.Fatal(err)
		}
		if h.StoredSegments() < prev {
			t.Fatalf("KMax=%d: stored %d < previous %d", kmax, h.StoredSegments(), prev)
		}
		prev = h.StoredSegments()
		if h.MemoryBytes() <= 0 {
			t.Fatal("MemoryBytes must be positive")
		}
	}
}

func TestHPILimitAndStop(t *testing.T) {
	g := gen.Layered(6, 3) // 216 paths
	h, err := NewHPI(g, HPIConfig{KMax: 4, HotCount: 5})
	if err != nil {
		t.Fatal(err)
	}
	q := core.Query{S: 0, T: 1, K: 4}
	if err := h.Prepare(g, q); err != nil {
		t.Fatal(err)
	}
	var ctr core.Counters
	done, err := h.Enumerate(core.RunControl{Limit: 9}, &ctr)
	if err != nil {
		t.Fatal(err)
	}
	if done || ctr.Results != 9 {
		t.Fatalf("limit run: done=%v results=%d", done, ctr.Results)
	}
}
