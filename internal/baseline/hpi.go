package baseline

import (
	"fmt"

	"pathenum/internal/core"
	"pathenum/internal/graph"
)

// HPI reimplements the hot-point index approach of Qiu et al. (VLDB'18),
// which §2.2 discusses as the indexing alternative to PathEnum: an OFFLINE
// index stores, for every ordered pair of high-degree ("hot") vertices, all
// simple paths between them whose interior vertices are all cold. A query
// then stitches three kinds of segments — s to its first hot vertex, hot to
// hot from the index, and last hot vertex to t — because every simple path
// decomposes uniquely at its hot vertices.
//
// The paper's criticism reproduces directly: the number of cold-interior
// paths between hot pairs grows exponentially with the hop budget, so Build
// enforces a storage cap and reports when the index blows up. Unlike
// PathEnum's per-query index, this one serves all queries with K <= KMax
// but must be rebuilt when the graph changes.
type HPI struct {
	g        *graph.Graph
	kmax     int
	hot      []bool
	hotList  []graph.VertexID
	segments map[[2]graph.VertexID][][]graph.VertexID
	stored   int64

	q core.Query
}

// HPIConfig bounds the offline index.
type HPIConfig struct {
	// KMax is the largest supported hop constraint (segment length cap).
	KMax int
	// HotCount is the number of highest-degree vertices treated as hot.
	HotCount int
	// MaxStoredPaths caps the total indexed segments (0 = 1e6). Build
	// fails beyond it, reproducing the paper's memory-blowup criticism.
	MaxStoredPaths int64
}

// ErrHPIIndexTooLarge reports that the hot-pair path count exceeded the cap.
var ErrHPIIndexTooLarge = fmt.Errorf("baseline: HPI index exceeds the storage cap")

// NewHPI builds the offline hot-point index.
func NewHPI(g *graph.Graph, cfg HPIConfig) (*HPI, error) {
	if cfg.KMax < 1 {
		return nil, fmt.Errorf("baseline: HPI KMax %d must be >= 1", cfg.KMax)
	}
	if cfg.HotCount < 0 {
		return nil, fmt.Errorf("baseline: negative HotCount")
	}
	if cfg.MaxStoredPaths <= 0 {
		cfg.MaxStoredPaths = 1e6
	}
	h := &HPI{
		g:        g,
		kmax:     cfg.KMax,
		hot:      make([]bool, g.NumVertices()),
		segments: map[[2]graph.VertexID][][]graph.VertexID{},
	}
	// Hot = top HotCount vertices by total degree (ties by id).
	type dv struct {
		d int
		v graph.VertexID
	}
	all := make([]dv, g.NumVertices())
	for v := range all {
		all[v] = dv{d: g.Degree(graph.VertexID(v)), v: graph.VertexID(v)}
	}
	for i := 0; i < cfg.HotCount && i < len(all); i++ {
		// Selection without full sort: simple partial selection is fine at
		// baseline scale.
		best := i
		for j := i + 1; j < len(all); j++ {
			if all[j].d > all[best].d || (all[j].d == all[best].d && all[j].v < all[best].v) {
				best = j
			}
		}
		all[i], all[best] = all[best], all[i]
		h.hot[all[i].v] = true
		h.hotList = append(h.hotList, all[i].v)
	}

	// Enumerate cold-interior segments from every hot vertex.
	path := make([]graph.VertexID, 0, cfg.KMax+1)
	onPath := make([]bool, g.NumVertices())
	var dfs func(u graph.VertexID) error
	var root graph.VertexID
	dfs = func(u graph.VertexID) error {
		for _, w := range g.OutNeighbors(u) {
			if onPath[w] {
				continue
			}
			if h.hot[w] {
				if w != root {
					key := [2]graph.VertexID{root, w}
					seg := append(append([]graph.VertexID(nil), path...), w)
					h.segments[key] = append(h.segments[key], seg)
					h.stored++
					if h.stored > cfg.MaxStoredPaths {
						return ErrHPIIndexTooLarge
					}
				}
				continue
			}
			if len(path)-1 == cfg.KMax-1 {
				continue // cold extension would exceed the segment budget
			}
			path = append(path, w)
			onPath[w] = true
			err := dfs(w)
			onPath[w] = false
			path = path[:len(path)-1]
			if err != nil {
				return err
			}
		}
		return nil
	}
	for _, u := range h.hotList {
		root = u
		path = append(path[:0], u)
		onPath[u] = true
		err := dfs(u)
		onPath[u] = false
		if err != nil {
			return nil, err
		}
	}
	return h, nil
}

// Name implements the harness naming convention.
func (h *HPI) Name() string { return "HPI" }

// StoredSegments returns the number of indexed hot-pair paths.
func (h *HPI) StoredSegments() int64 { return h.stored }

// MemoryBytes estimates the index size, the metric behind the paper's
// "large amount of memory" remark.
func (h *HPI) MemoryBytes() int64 {
	var b int64
	for _, segs := range h.segments {
		for _, s := range segs {
			b += int64(len(s)) * 4
		}
	}
	return b
}

// Prepare validates the query against the offline index.
func (h *HPI) Prepare(g *graph.Graph, q core.Query) error {
	if err := q.Validate(g); err != nil {
		return err
	}
	if g != h.g {
		return fmt.Errorf("baseline: HPI was built for a different graph")
	}
	if q.K > h.kmax {
		return fmt.Errorf("baseline: query k=%d exceeds HPI KMax=%d", q.K, h.kmax)
	}
	h.q = q
	return nil
}

// Enumerate assembles paths from index segments plus query-time cold
// segments around s and t.
func (h *HPI) Enumerate(ctl core.RunControl, ctr *core.Counters) (bool, error) {
	if ctr == nil {
		ctr = &core.Counters{}
	}
	a := &hpiAssembler{
		h:      h,
		ctl:    ctl,
		ctr:    ctr,
		onPath: make([]bool, h.g.NumVertices()),
		path:   make([]graph.VertexID, 0, h.q.K+1),
	}
	a.run()
	return !a.stopped, nil
}

type hpiAssembler struct {
	h       *HPI
	ctl     core.RunControl
	ctr     *core.Counters
	onPath  []bool
	path    []graph.VertexID
	ticker  uint32
	stopped bool
}

func (a *hpiAssembler) emit() {
	a.ctr.Results++
	if a.ctl.Emit != nil && !a.ctl.Emit(a.path) {
		a.stopped = true
	}
	if a.ctl.Limit > 0 && a.ctr.Results >= a.ctl.Limit {
		a.stopped = true
	}
}

func (a *hpiAssembler) tick() bool {
	a.ticker++
	if a.ticker%1024 == 0 && a.ctl.ShouldStop != nil && a.ctl.ShouldStop() {
		a.stopped = true
	}
	return a.stopped
}

func (a *hpiAssembler) run() {
	h, q := a.h, a.h.q
	a.path = append(a.path, q.S)
	a.onPath[q.S] = true
	if h.hot[q.S] {
		a.assemble(q.S)
	} else {
		a.startSegment(q.S)
	}
	a.onPath[q.S] = false
}

// startSegment extends over cold vertices from s until a hot vertex or t.
func (a *hpiAssembler) startSegment(v graph.VertexID) {
	h, q := a.h, a.h.q
	if a.tick() {
		return
	}
	nbrs := h.g.OutNeighbors(v)
	a.ctr.EdgesAccessed += uint64(len(nbrs))
	for _, w := range nbrs {
		if a.onPath[w] {
			continue
		}
		if w == q.T {
			if len(a.path)-1 >= q.K {
				continue // no budget for the closing edge
			}
			a.path = append(a.path, w)
			a.emit()
			a.path = a.path[:len(a.path)-1]
			if a.stopped {
				return
			}
			continue
		}
		if len(a.path)-1 >= q.K-1 && !h.hot[w] {
			continue // a cold extension beyond w cannot reach t in budget
		}
		if len(a.path)-1 >= q.K {
			continue
		}
		a.path = append(a.path, w)
		a.onPath[w] = true
		if h.hot[w] {
			a.assemble(w)
		} else {
			a.startSegment(w)
		}
		a.onPath[w] = false
		a.path = a.path[:len(a.path)-1]
		if a.stopped {
			return
		}
	}
}

// assemble continues from a hot vertex: finish with a cold segment to t,
// or append an indexed hot-pair segment.
func (a *hpiAssembler) assemble(u graph.VertexID) {
	h, q := a.h, a.h.q
	if u == q.T {
		a.emit()
		return
	}
	if a.tick() {
		return
	}
	// (a) cold segment u -> t from the live graph — but only when t is
	// cold: a cold-interior path between two hot vertices is already an
	// indexed segment, and walking it here would double-count.
	if !h.hot[q.T] {
		a.endSegment(u)
		if a.stopped {
			return
		}
	}
	// (b) indexed segments u -> v for every hot v.
	budget := q.K - (len(a.path) - 1)
	for _, v := range h.hotList {
		segs := h.segments[[2]graph.VertexID{u, v}]
		for _, seg := range segs {
			segLen := len(seg) - 1
			if segLen > budget {
				continue
			}
			// Disjointness: interior and endpoint unused; interior must
			// also avoid s and t (the offline index cannot know them).
			ok := true
			for _, x := range seg[1:] {
				if a.onPath[x] || (x != seg[len(seg)-1] && (x == q.S || x == q.T)) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			mark := len(a.path)
			for _, x := range seg[1:] {
				a.path = append(a.path, x)
				a.onPath[x] = true
			}
			a.assemble(v)
			for _, x := range seg[1:] {
				a.onPath[x] = false
			}
			a.path = a.path[:mark]
			if a.stopped {
				return
			}
		}
	}
}

// endSegment extends over cold vertices from hot vertex u toward t.
func (a *hpiAssembler) endSegment(v graph.VertexID) {
	h, q := a.h, a.h.q
	if a.tick() {
		return
	}
	nbrs := h.g.OutNeighbors(v)
	a.ctr.EdgesAccessed += uint64(len(nbrs))
	for _, w := range nbrs {
		if a.onPath[w] {
			continue
		}
		if w == q.T {
			if len(a.path)-1 >= q.K {
				continue // no budget for the closing edge
			}
			a.path = append(a.path, w)
			a.emit()
			a.path = a.path[:len(a.path)-1]
			if a.stopped {
				return
			}
			continue
		}
		if h.hot[w] {
			continue // hot interiors belong to indexed segments
		}
		if len(a.path)-1 >= q.K-1 {
			continue
		}
		a.path = append(a.path, w)
		a.onPath[w] = true
		a.endSegment(w)
		a.onPath[w] = false
		a.path = a.path[:len(a.path)-1]
		if a.stopped {
			return
		}
	}
}
