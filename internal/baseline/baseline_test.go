package baseline

import (
	"math/rand"
	"testing"

	"pathenum/internal/core"
	"pathenum/internal/gen"
	"pathenum/internal/graph"
)

// runner is the shared two-phase shape of every baseline.
type runner interface {
	Name() string
	Prepare(g *graph.Graph, q core.Query) error
	Enumerate(ctl core.RunControl, ctr *core.Counters) (bool, error)
}

func allBaselines() []runner {
	return []runner{&GenericDFS{}, &BCDFS{}, &BCJoin{}, &TDFS{}, &Yen{}}
}

func collect(t *testing.T, r runner, g *graph.Graph, q core.Query) [][]graph.VertexID {
	t.Helper()
	if err := r.Prepare(g, q); err != nil {
		t.Fatalf("%s: Prepare: %v", r.Name(), err)
	}
	var out [][]graph.VertexID
	done, err := r.Enumerate(core.RunControl{Emit: func(p []graph.VertexID) bool {
		out = append(out, append([]graph.VertexID(nil), p...))
		return true
	}}, nil)
	if err != nil {
		t.Fatalf("%s: Enumerate: %v", r.Name(), err)
	}
	if !done {
		t.Fatalf("%s: unexpected early stop", r.Name())
	}
	return out
}

// paperGraph mirrors the Figure 1a fixture used by the core tests.
func paperGraph(t *testing.T) *graph.Graph {
	t.Helper()
	edges := []graph.Edge{
		{From: 0, To: 2}, {From: 0, To: 3}, {From: 0, To: 5},
		{From: 2, To: 3}, {From: 2, To: 8}, {From: 2, To: 1},
		{From: 3, To: 4}, {From: 3, To: 5},
		{From: 4, To: 2}, {From: 4, To: 1},
		{From: 5, To: 6},
		{From: 6, To: 7},
		{From: 7, To: 4}, {From: 7, To: 1},
		{From: 8, To: 2},
		{From: 1, To: 9},
	}
	g, err := graph.NewGraph(10, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBaselinesPaperExample(t *testing.T) {
	g := paperGraph(t)
	q := core.Query{S: 0, T: 1, K: 4}
	want := BrutePaths(g, q.S, q.T, q.K)
	if len(want) != 5 {
		t.Fatalf("oracle found %d paths, want 5", len(want))
	}
	for _, r := range allBaselines() {
		got := collect(t, r, g, q)
		if !SamePathSet(got, want) {
			t.Errorf("%s: %d paths, oracle %d", r.Name(), len(got), len(want))
		}
	}
}

// TestBaselinesMatchBruteForce is the cross-algorithm correctness sweep:
// every baseline enumerates exactly P(s,t,k,G) on randomized graphs.
func TestBaselinesMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 25; trial++ {
		n := 5 + rng.Intn(10)
		g := gen.ErdosRenyi(n, n*3, rng.Int63())
		s := graph.VertexID(rng.Intn(n))
		tt := graph.VertexID(rng.Intn(n))
		if s == tt {
			continue
		}
		k := 1 + rng.Intn(4)
		q := core.Query{S: s, T: tt, K: k}
		want := BrutePaths(g, s, tt, k)
		for _, r := range allBaselines() {
			got := collect(t, r, g, q)
			if !SamePathSet(got, want) {
				t.Fatalf("trial %d %s %v: %d paths, oracle %d",
					trial, r.Name(), q, len(got), len(want))
			}
		}
	}
}

// TestBaselinesAgreeWithCore: baselines and the index algorithms agree on
// inputs too big for the brute-force oracle's comfort.
func TestBaselinesAgreeWithCore(t *testing.T) {
	rng := rand.New(rand.NewSource(4096))
	g := gen.BarabasiAlbert(120, 4, 11)
	for trial := 0; trial < 10; trial++ {
		s := graph.VertexID(rng.Intn(120))
		tt := graph.VertexID(rng.Intn(120))
		if s == tt {
			continue
		}
		q := core.Query{S: s, T: tt, K: 4}
		wantN, err := core.Count(g, q)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range allBaselines() {
			if err := r.Prepare(g, q); err != nil {
				t.Fatal(err)
			}
			var ctr core.Counters
			if _, err := r.Enumerate(core.RunControl{}, &ctr); err != nil {
				t.Fatal(err)
			}
			if ctr.Results != wantN {
				t.Fatalf("trial %d %s: %d results, core %d", trial, r.Name(), ctr.Results, wantN)
			}
		}
	}
}

func TestBaselinesValidation(t *testing.T) {
	g := paperGraph(t)
	bad := core.Query{S: 0, T: 0, K: 3}
	for _, r := range allBaselines() {
		if err := r.Prepare(g, bad); err == nil {
			t.Errorf("%s: expected validation error for s==t", r.Name())
		}
	}
}

func TestBaselinesUnreachable(t *testing.T) {
	g, err := graph.NewGraph(4, []graph.Edge{{From: 0, To: 1}, {From: 2, To: 3}})
	if err != nil {
		t.Fatal(err)
	}
	q := core.Query{S: 0, T: 3, K: 6}
	for _, r := range allBaselines() {
		got := collect(t, r, g, q)
		if len(got) != 0 {
			t.Errorf("%s: found %d paths across disconnected components", r.Name(), len(got))
		}
	}
}

func TestBaselinesLimit(t *testing.T) {
	g := gen.Layered(4, 3) // 64 paths
	q := core.Query{S: 0, T: 1, K: 4}
	for _, r := range allBaselines() {
		if err := r.Prepare(g, q); err != nil {
			t.Fatal(err)
		}
		var ctr core.Counters
		done, err := r.Enumerate(core.RunControl{Limit: 5}, &ctr)
		if err != nil {
			t.Fatal(err)
		}
		if done || ctr.Results != 5 {
			t.Errorf("%s: limit run done=%v results=%d", r.Name(), done, ctr.Results)
		}
	}
}

func TestBaselinesShouldStop(t *testing.T) {
	// Wide enough that every algorithm crosses its periodic stop check
	// (every 1024 expansions) long before finishing.
	g := gen.Layered(16, 4) // 65536 paths
	q := core.Query{S: 0, T: 1, K: 5}
	for _, r := range allBaselines() {
		if err := r.Prepare(g, q); err != nil {
			t.Fatal(err)
		}
		var ctr core.Counters
		done, err := r.Enumerate(core.RunControl{ShouldStop: func() bool { return true }}, &ctr)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			t.Errorf("%s: ShouldStop run must stop early", r.Name())
		}
		if ctr.Results >= 65536 {
			t.Errorf("%s: stopped run still enumerated everything", r.Name())
		}
	}
}

// TestTDFSNoInvalidPartials: by construction every T-DFS branch leads to a
// result.
func TestTDFSNoInvalidPartials(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 15; trial++ {
		n := 6 + rng.Intn(10)
		g := gen.ErdosRenyi(n, n*3, rng.Int63())
		s := graph.VertexID(rng.Intn(n))
		tt := graph.VertexID(rng.Intn(n))
		if s == tt {
			continue
		}
		q := core.Query{S: s, T: tt, K: 2 + rng.Intn(3)}
		r := &TDFS{}
		if err := r.Prepare(g, q); err != nil {
			t.Fatal(err)
		}
		var ctr core.Counters
		if _, err := r.Enumerate(core.RunControl{}, &ctr); err != nil {
			t.Fatal(err)
		}
		if ctr.InvalidPartials != 0 {
			t.Fatalf("trial %d: T-DFS generated %d invalid partials", trial, ctr.InvalidPartials)
		}
	}
}

// TestBCDFSPrunesAtLeastAsWellAsGeneric: barriers only remove work, never
// results, and the barrier search should not expand more edges than the
// static-bound search.
func TestBCDFSEdgeAccessesBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 15; trial++ {
		n := 8 + rng.Intn(12)
		g := gen.ErdosRenyi(n, n*4, rng.Int63())
		s := graph.VertexID(rng.Intn(n))
		tt := graph.VertexID(rng.Intn(n))
		if s == tt {
			continue
		}
		q := core.Query{S: s, T: tt, K: 2 + rng.Intn(4)}

		gdfs, bc := &GenericDFS{}, &BCDFS{}
		var gCtr, bCtr core.Counters
		if err := gdfs.Prepare(g, q); err != nil {
			t.Fatal(err)
		}
		if _, err := gdfs.Enumerate(core.RunControl{}, &gCtr); err != nil {
			t.Fatal(err)
		}
		if err := bc.Prepare(g, q); err != nil {
			t.Fatal(err)
		}
		if _, err := bc.Enumerate(core.RunControl{}, &bCtr); err != nil {
			t.Fatal(err)
		}
		if bCtr.Results != gCtr.Results {
			t.Fatalf("trial %d: BC-DFS %d results, generic %d", trial, bCtr.Results, gCtr.Results)
		}
		if bCtr.EdgesAccessed > gCtr.EdgesAccessed {
			t.Fatalf("trial %d: BC-DFS accessed %d edges > generic %d",
				trial, bCtr.EdgesAccessed, gCtr.EdgesAccessed)
		}
	}
}

// TestYenAscendingLength: Yen must emit paths in nondecreasing length.
func TestYenAscendingLength(t *testing.T) {
	g := gen.BarabasiAlbert(40, 3, 5)
	y := &Yen{}
	q := core.Query{S: 0, T: 1, K: 5}
	if err := y.Prepare(g, q); err != nil {
		t.Fatal(err)
	}
	prev := 0
	if _, err := y.Enumerate(core.RunControl{Emit: func(p []graph.VertexID) bool {
		if len(p)-1 < prev {
			t.Fatalf("length decreased: %d after %d", len(p)-1, prev)
		}
		prev = len(p) - 1
		return true
	}}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBruteHelpers(t *testing.T) {
	g := paperGraph(t)
	paths := BrutePaths(g, 0, 1, 4)
	walks := BruteWalks(g, 0, 1, 4)
	if len(paths) != 5 || len(walks) != 6 {
		t.Fatalf("paths=%d walks=%d, want 5 and 6", len(paths), len(walks))
	}
	if !SamePathSet(paths, paths) {
		t.Fatal("SamePathSet must be reflexive")
	}
	if SamePathSet(paths, walks) {
		t.Fatal("paths and walks must differ")
	}
	// CanonicalizePaths is idempotent and sorted.
	c := CanonicalizePaths(append([][]graph.VertexID(nil), walks...))
	for i := 1; i < len(c); i++ {
		if lessPath(c[i], c[i-1]) {
			t.Fatal("canonicalized paths not sorted")
		}
	}
}
