// Package baseline implements every comparison algorithm of the paper's
// evaluation — BC-DFS and BC-JOIN (Peng et al., VLDB'19), the
// polynomial-delay T-DFS (Rizzi et al.), the generic DFS framework
// (Algorithm 1) and a Yen's-algorithm Top-K stand-in — plus brute-force
// reference enumerators used as correctness oracles throughout the test
// suite.
package baseline

import (
	"sort"

	"pathenum/internal/graph"
)

// BrutePaths enumerates P(s,t,k,G) — all simple paths from s to t with at
// most k edges — by unpruned backtracking over the raw graph. Exponential;
// use only as a test oracle on small graphs. Paths are returned as copies.
func BrutePaths(g *graph.Graph, s, t graph.VertexID, k int) [][]graph.VertexID {
	var out [][]graph.VertexID
	onPath := make([]bool, g.NumVertices())
	path := make([]graph.VertexID, 0, k+1)
	path = append(path, s)
	onPath[s] = true
	var rec func()
	rec = func() {
		v := path[len(path)-1]
		if v == t {
			out = append(out, append([]graph.VertexID(nil), path...))
			return
		}
		if len(path)-1 == k {
			return
		}
		for _, w := range g.OutNeighbors(v) {
			if onPath[w] {
				continue
			}
			path = append(path, w)
			onPath[w] = true
			rec()
			onPath[w] = false
			path = path[:len(path)-1]
		}
	}
	rec()
	return out
}

// BruteWalks enumerates W(s,t,k,G) — all walks from s to t of length at
// most k whose interior vertices avoid s and t (Definition 2.1). Used to
// validate the join model (Theorem 3.1) and the full-fledged estimator,
// whose counts are exactly |W|.
func BruteWalks(g *graph.Graph, s, t graph.VertexID, k int) [][]graph.VertexID {
	var out [][]graph.VertexID
	walk := make([]graph.VertexID, 0, k+1)
	walk = append(walk, s)
	var rec func()
	rec = func() {
		v := walk[len(walk)-1]
		if v == t {
			out = append(out, append([]graph.VertexID(nil), walk...))
			return
		}
		if len(walk)-1 == k {
			return
		}
		for _, w := range g.OutNeighbors(v) {
			if w == s { // interior vertices exclude s (Definition 2.1)
				continue
			}
			walk = append(walk, w)
			rec()
			walk = walk[:len(walk)-1]
		}
	}
	rec()
	return out
}

// CanonicalizePaths sorts a path set lexicographically so two enumerations
// can be compared irrespective of emission order.
func CanonicalizePaths(paths [][]graph.VertexID) [][]graph.VertexID {
	sort.Slice(paths, func(i, j int) bool { return lessPath(paths[i], paths[j]) })
	return paths
}

func lessPath(a, b []graph.VertexID) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// SamePathSet reports whether two path sets are equal up to ordering.
func SamePathSet(a, b [][]graph.VertexID) bool {
	if len(a) != len(b) {
		return false
	}
	a = CanonicalizePaths(append([][]graph.VertexID(nil), a...))
	b = CanonicalizePaths(append([][]graph.VertexID(nil), b...))
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}
