package baseline

import (
	"container/heap"
	"encoding/binary"

	"pathenum/internal/core"
	"pathenum/internal/graph"
)

// Yen adapts Top-K shortest path enumeration (Yen's algorithm on the
// unweighted graph) to HcPE, the strategy §2.3 describes for the KRE/KPJ
// family: enumerate loopless paths in ascending length order and terminate
// once the next shortest path exceeds k. Correct but wasteful — the length
// ordering is unnecessary for HcPE and every spur recomputation costs a
// BFS.
type Yen struct {
	g *graph.Graph
	q core.Query
}

// Name implements the harness naming convention.
func (a *Yen) Name() string { return "TOP-K" }

// Prepare validates the query.
func (a *Yen) Prepare(g *graph.Graph, q core.Query) error {
	if err := q.Validate(g); err != nil {
		return err
	}
	a.g, a.q = g, q
	return nil
}

type yenItem struct {
	length int
	key    string
	path   []graph.VertexID
}

type yenHeap []yenItem

func (h yenHeap) Len() int { return len(h) }
func (h yenHeap) Less(i, j int) bool {
	if h[i].length != h[j].length {
		return h[i].length < h[j].length
	}
	return h[i].key < h[j].key
}
func (h yenHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *yenHeap) Push(x interface{}) { *h = append(*h, x.(yenItem)) }
func (h *yenHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

func pathKey(p []graph.VertexID) string {
	buf := make([]byte, 4*len(p))
	for i, v := range p {
		binary.LittleEndian.PutUint32(buf[4*i:], uint32(v))
	}
	return string(buf)
}

// Enumerate runs Yen's algorithm until the next shortest loopless path
// exceeds k edges.
func (a *Yen) Enumerate(ctl core.RunControl, ctr *core.Counters) (bool, error) {
	if ctr == nil {
		ctr = &core.Counters{}
	}
	g, q := a.g, a.q
	n := g.NumVertices()
	blockedNode := make([]bool, n)
	type edge struct{ from, to graph.VertexID }
	blockedEdge := make(map[edge]bool)

	// shortest returns a BFS shortest path from src to q.T respecting the
	// current blocks, or nil.
	parent := make([]int32, n)
	shortest := func(src graph.VertexID) []graph.VertexID {
		for i := range parent {
			parent[i] = -2 // unvisited
		}
		parent[src] = -1
		queue := []graph.VertexID{src}
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			if v == q.T {
				var rev []graph.VertexID
				for u := v; ; u = graph.VertexID(parent[u]) {
					rev = append(rev, u)
					if parent[u] == -1 {
						break
					}
				}
				for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
					rev[i], rev[j] = rev[j], rev[i]
				}
				return rev
			}
			for _, w := range g.OutNeighbors(v) {
				ctr.EdgesAccessed++
				if parent[w] != -2 || blockedNode[w] || blockedEdge[edge{v, w}] {
					continue
				}
				parent[w] = int32(v)
				queue = append(queue, w)
			}
		}
		return nil
	}

	first := shortest(q.S)
	if first == nil || len(first)-1 > q.K {
		return true, nil
	}

	emit := func(p []graph.VertexID) bool {
		ctr.Results++
		if ctl.Emit != nil && !ctl.Emit(p) {
			return false
		}
		return ctl.Limit == 0 || ctr.Results < ctl.Limit
	}

	var accepted [][]graph.VertexID
	seen := map[string]bool{pathKey(first): true}
	cands := &yenHeap{}
	current := first
	for {
		if len(current)-1 > q.K {
			return true, nil
		}
		if !emit(current) {
			return false, nil
		}
		accepted = append(accepted, current)
		if ctl.ShouldStop != nil && ctl.ShouldStop() {
			return false, nil
		}

		// Generate spur candidates from the just-accepted path.
		for j := 0; j < len(current)-1; j++ {
			spur := current[j]
			root := current[:j+1]
			// Block edges used by accepted paths sharing this root.
			var blocked []edge
			for _, p := range accepted {
				if len(p) > j+1 && samePrefix(p, root) {
					e := edge{p[j], p[j+1]}
					if !blockedEdge[e] {
						blockedEdge[e] = true
						blocked = append(blocked, e)
					}
				}
			}
			// Block root vertices except the spur node.
			for _, v := range root[:j] {
				blockedNode[v] = true
			}
			sp := shortest(spur)
			if sp != nil {
				total := make([]graph.VertexID, 0, len(root)+len(sp)-1)
				total = append(total, root...)
				total = append(total, sp[1:]...)
				if len(total)-1 <= q.K {
					key := pathKey(total)
					if !seen[key] {
						seen[key] = true
						heap.Push(cands, yenItem{length: len(total) - 1, key: key, path: total})
					}
				}
			}
			for _, v := range root[:j] {
				blockedNode[v] = false
			}
			for _, e := range blocked {
				delete(blockedEdge, e)
			}
		}
		if cands.Len() == 0 {
			return true, nil
		}
		current = heap.Pop(cands).(yenItem).path
	}
}

func samePrefix(p, root []graph.VertexID) bool {
	for i, v := range root {
		if p[i] != v {
			return false
		}
	}
	return true
}
