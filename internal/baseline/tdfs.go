package baseline

import (
	"pathenum/internal/core"
	"pathenum/internal/graph"
)

// TDFS reimplements the polynomial-delay algorithm of Rizzi et al. (§2.2):
// before extending a partial result M by v', it certifies that a path from
// v' to t avoiding every vertex of M exists within the remaining budget, by
// running a fresh reverse BFS on G - M at every search node. Every search
// branch therefore leads to at least one result (zero invalid partials),
// but each step costs O(|V| + |E|) — the pruning overhead the paper's
// introduction calls out.
type TDFS struct {
	g *graph.Graph
	q core.Query
}

// Name implements the harness naming convention.
func (a *TDFS) Name() string { return "T-DFS" }

// Prepare validates the query; T-DFS has no offline phase beyond that.
func (a *TDFS) Prepare(g *graph.Graph, q core.Query) error {
	if err := q.Validate(g); err != nil {
		return err
	}
	a.g, a.q = g, q
	return nil
}

// Enumerate runs the certified search.
func (a *TDFS) Enumerate(ctl core.RunControl, ctr *core.Counters) (bool, error) {
	if ctr == nil {
		ctr = &core.Counters{}
	}
	s := &tdfsSearcher{
		g:      a.g,
		q:      a.q,
		ctl:    ctl,
		ctr:    ctr,
		onPath: make([]bool, a.g.NumVertices()),
		dist:   make([]int32, a.g.NumVertices()),
		path:   make([]graph.VertexID, 0, a.q.K+1),
	}
	s.path = append(s.path, a.q.S)
	s.onPath[a.q.S] = true
	s.search()
	return !s.stopped, nil
}

type tdfsSearcher struct {
	g       *graph.Graph
	q       core.Query
	ctl     core.RunControl
	ctr     *core.Counters
	onPath  []bool
	dist    []int32
	queue   []graph.VertexID
	path    []graph.VertexID
	stopped bool
}

// certifiedDist recomputes S(v,t | G - (M - {last})) for all vertices: a
// reverse BFS from t that never expands into vertices currently on the
// path (the last path vertex is where the search stands, so paths may
// start there). Each invocation is O(|V| + |E|).
func (s *tdfsSearcher) certifiedDist(bound int32) {
	for i := range s.dist {
		s.dist[i] = -1
	}
	s.dist[s.q.T] = 0
	s.queue = s.queue[:0]
	s.queue = append(s.queue, s.q.T)
	for head := 0; head < len(s.queue); head++ {
		v := s.queue[head]
		d := s.dist[v]
		if d >= bound {
			break
		}
		for _, w := range s.g.InNeighbors(v) {
			s.ctr.EdgesAccessed++
			if s.dist[w] >= 0 || s.onPath[w] {
				continue
			}
			s.dist[w] = d + 1
			s.queue = append(s.queue, w)
		}
	}
}

func (s *tdfsSearcher) search() {
	v := s.path[len(s.path)-1]
	if v == s.q.T {
		s.ctr.Results++
		if s.ctl.Emit != nil && !s.ctl.Emit(s.path) {
			s.stopped = true
		}
		if s.ctl.Limit > 0 && s.ctr.Results >= s.ctl.Limit {
			s.stopped = true
		}
		return
	}
	if s.ctl.ShouldStop != nil && s.ctl.ShouldStop() {
		s.stopped = true
		return
	}
	budget := int32(s.q.K - (len(s.path) - 1)) // edges remaining
	// Certify reachability of t from each candidate avoiding M.
	s.certifiedDist(budget - 1)
	nbrs := s.g.OutNeighbors(v)
	s.ctr.EdgesAccessed += uint64(len(nbrs))
	// dist is shared across recursion levels and overwritten by deeper
	// calls, so snapshot the admissible candidates first.
	var admissible []graph.VertexID
	for _, w := range nbrs {
		if s.onPath[w] || s.dist[w] < 0 || s.dist[w] > budget-1 {
			continue
		}
		admissible = append(admissible, w)
	}
	for _, w := range admissible {
		s.path = append(s.path, w)
		s.onPath[w] = true
		s.search()
		s.onPath[w] = false
		s.path = s.path[:len(s.path)-1]
		if s.stopped {
			return
		}
	}
}
