package baseline

import (
	"pathenum/internal/core"
	"pathenum/internal/graph"
)

// BCJoin reimplements the join-oriented baseline of Peng et al. (Appendix
// D): it splits every result at the fixed middle position mid = ceil(k/2),
// materializes the simple half-paths on both sides with distance-pruned
// searches on the raw graph, and hash-joins them on the middle vertex.
// Results shorter than mid hops are emitted directly during the first
// phase. Unlike IDX-JOIN there is no per-query index and no cost-based cut
// selection — the split position is fixed.
type BCJoin struct {
	g     *graph.Graph
	q     core.Query
	distT []int32 // S(v,t|G)
	distS []int32 // S(s,v|G)
}

// Name implements the harness naming convention.
func (a *BCJoin) Name() string { return "BC-JOIN" }

// Prepare computes the forward/backward distances used for pruning.
func (a *BCJoin) Prepare(g *graph.Graph, q core.Query) error {
	if err := q.Validate(g); err != nil {
		return err
	}
	a.g, a.q = g, q
	n := g.NumVertices()
	if a.distT == nil || len(a.distT) != n {
		a.distT = make([]int32, n)
		a.distS = make([]int32, n)
	}
	reverseBFS(g, q.T, q.K, a.distT)
	forwardBFS(g, q.S, q.K, a.distS)
	return nil
}

// forwardBFS computes S(s,v|G) bounded at depth k.
func forwardBFS(g *graph.Graph, s graph.VertexID, k int, dist []int32) {
	for i := range dist {
		dist[i] = -1
	}
	dist[s] = 0
	queue := make([]graph.VertexID, 0, 64)
	queue = append(queue, s)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		d := dist[v]
		if int(d) >= k {
			break
		}
		for _, w := range g.OutNeighbors(v) {
			if dist[w] < 0 {
				dist[w] = d + 1
				queue = append(queue, w)
			}
		}
	}
}

// Enumerate materializes both halves and joins them.
func (a *BCJoin) Enumerate(ctl core.RunControl, ctr *core.Counters) (bool, error) {
	if ctr == nil {
		ctr = &core.Counters{}
	}
	q, g, k := a.q, a.g, a.q.K
	if a.distT[q.S] < 0 || int(a.distT[q.S]) > k {
		return true, nil
	}
	mid := (k + 1) / 2

	stop := func() bool { return ctl.ShouldStop != nil && ctl.ShouldStop() }
	emit := func(p []graph.VertexID) bool {
		ctr.Results++
		if ctl.Emit != nil && !ctl.Emit(p) {
			return false
		}
		return ctl.Limit == 0 || ctr.Results < ctl.Limit
	}

	// Phase 1: simple paths from s of length exactly mid (not through t),
	// pruned by distT; paths reaching t in < mid hops are final results.
	var left []graph.VertexID // flat tuples, stride mid+1
	onPath := make([]bool, g.NumVertices())
	path := make([]graph.VertexID, 0, k+1)
	path = append(path, q.S)
	onPath[q.S] = true
	completed := true
	var ticker uint32
	var walkLeft func()
	walkLeft = func() {
		if !completed {
			return
		}
		v := path[len(path)-1]
		if v == q.T {
			if !emit(path) {
				completed = false
			}
			return
		}
		if len(path)-1 == mid {
			left = append(left, path...)
			return
		}
		ticker++
		if ticker%1024 == 0 && stop() {
			completed = false
			return
		}
		nbrs := g.OutNeighbors(v)
		ctr.EdgesAccessed += uint64(len(nbrs))
		budget := int32(k - (len(path) - 1))
		for _, w := range nbrs {
			if onPath[w] || a.distT[w] < 0 || a.distT[w] > budget-1 {
				continue
			}
			path = append(path, w)
			onPath[w] = true
			walkLeft()
			onPath[w] = false
			path = path[:len(path)-1]
			if !completed {
				return
			}
		}
	}
	walkLeft()
	if !completed {
		return false, nil
	}

	// Phase 2: for each distinct middle vertex, simple paths to t of
	// length <= k-mid avoiding s.
	type rng struct{ lo, hi int }
	groups := make(map[graph.VertexID]rng)
	var right []graph.VertexID // variable-length tuples: length prefix + body
	lStride := mid + 1
	for i := 0; i+lStride <= len(left); i += lStride {
		v := left[i+mid]
		if _, ok := groups[v]; ok {
			continue
		}
		lo := len(right)
		clear(onPath)
		onPath[q.S] = true // interior vertices avoid s
		path = path[:0]
		path = append(path, v)
		onPath[v] = true
		var walkRight func()
		walkRight = func() {
			if !completed {
				return
			}
			u := path[len(path)-1]
			if u == q.T {
				// Store as length-prefixed tuple.
				right = append(right, graph.VertexID(len(path)))
				right = append(right, path...)
				return
			}
			if len(path)-1 == k-mid {
				return
			}
			ticker++
			if ticker%1024 == 0 && stop() {
				completed = false
				return
			}
			nbrs := g.OutNeighbors(u)
			ctr.EdgesAccessed += uint64(len(nbrs))
			budget := int32(k - mid - (len(path) - 1))
			for _, w := range nbrs {
				if onPath[w] || a.distT[w] < 0 || a.distT[w] > budget-1 {
					continue
				}
				path = append(path, w)
				onPath[w] = true
				walkRight()
				onPath[w] = false
				path = path[:len(path)-1]
				if !completed {
					return
				}
			}
		}
		walkRight()
		if !completed {
			return false, nil
		}
		groups[v] = rng{lo: lo, hi: len(right)}
	}

	// Phase 3: join on the middle vertex with a disjointness check.
	seen := make([]int32, g.NumVertices())
	epoch := int32(0)
	joined := make([]graph.VertexID, 0, k+1)
	for i := 0; i+lStride <= len(left); i += lStride {
		la := left[i : i+lStride]
		grp := groups[la[mid]]
		for j := grp.lo; j < grp.hi; {
			n := int(right[j])
			rb := right[j+1 : j+1+n]
			j += 1 + n
			epoch++
			ok := true
			for _, v := range la {
				seen[v] = epoch
			}
			for _, v := range rb[1:] { // rb[0] == la[mid]
				if seen[v] == epoch {
					ok = false
					break
				}
				seen[v] = epoch
			}
			if ok {
				joined = joined[:0]
				joined = append(joined, la...)
				joined = append(joined, rb[1:]...)
				if !emit(joined) {
					return false, nil
				}
			}
			if epoch%1024 == 0 && stop() {
				return false, nil
			}
		}
	}
	return true, nil
}
