package baseline

import (
	"pathenum/internal/core"
	"pathenum/internal/graph"
)

// BCDFS reimplements the barrier-based polynomial-delay search of Peng et
// al. (VLDB'19), the paper's strongest competitor (§2.2, Appendix D).
//
// Every vertex carries a barrier: the minimum remaining budget needed for
// the search to possibly reach t from it given the vertices currently on
// the stack. Barriers start at the static distance S(v,t|G). When the
// subtree rooted at a partial result ending in v produces no result under
// remaining budget b, the barrier of v is raised to b+1: re-entering v with
// the same or less budget under the same stack prefix is pointless. Raises
// are scoped to the stack frame that observed the failure — when that frame
// pops, its raises are rolled back, because the failure was conditional on
// the frame's vertex blocking part of the graph.
type BCDFS struct {
	g    *graph.Graph
	q    core.Query
	dist []int32
	bar  []int32
}

// Name implements the harness naming convention.
func (a *BCDFS) Name() string { return "BC-DFS" }

// Prepare computes the static distances and resets all barriers.
func (a *BCDFS) Prepare(g *graph.Graph, q core.Query) error {
	if err := q.Validate(g); err != nil {
		return err
	}
	a.g, a.q = g, q
	n := g.NumVertices()
	if a.dist == nil || len(a.dist) != n {
		a.dist = make([]int32, n)
		a.bar = make([]int32, n)
	}
	reverseBFS(g, q.T, q.K, a.dist)
	for i, d := range a.dist {
		if d < 0 {
			a.bar[i] = int32(q.K) + 1 // unreachable: permanently blocked
		} else {
			a.bar[i] = d
		}
	}
	return nil
}

// Enumerate runs the barrier search.
func (a *BCDFS) Enumerate(ctl core.RunControl, ctr *core.Counters) (bool, error) {
	if ctr == nil {
		ctr = &core.Counters{}
	}
	if a.dist[a.q.S] < 0 || int(a.dist[a.q.S]) > a.q.K {
		return true, nil
	}
	s := &bcSearcher{
		g:      a.g,
		q:      a.q,
		bar:    a.bar,
		ctl:    ctl,
		ctr:    ctr,
		onPath: make([]bool, a.g.NumVertices()),
		path:   make([]graph.VertexID, 0, a.q.K+1),
	}
	s.path = append(s.path, a.q.S)
	s.onPath[a.q.S] = true
	s.search(int32(a.q.K))
	return !s.stopped, nil
}

type barRaise struct {
	v   graph.VertexID
	old int32
}

type bcSearcher struct {
	g       *graph.Graph
	q       core.Query
	bar     []int32
	ctl     core.RunControl
	ctr     *core.Counters
	onPath  []bool
	path    []graph.VertexID
	ticker  uint32
	stopped bool
}

// search expands the last path vertex with remaining budget (edges left)
// and returns the number of results found in the subtree.
func (s *bcSearcher) search(budget int32) uint64 {
	v := s.path[len(s.path)-1]
	if v == s.q.T {
		s.ctr.Results++
		if s.ctl.Emit != nil && !s.ctl.Emit(s.path) {
			s.stopped = true
		}
		if s.ctl.Limit > 0 && s.ctr.Results >= s.ctl.Limit {
			s.stopped = true
		}
		return 1
	}
	s.ticker++
	if s.ticker%1024 == 0 && s.ctl.ShouldStop != nil && s.ctl.ShouldStop() {
		s.stopped = true
		return 0
	}
	nbrs := s.g.OutNeighbors(v)
	s.ctr.EdgesAccessed += uint64(len(nbrs))
	var found uint64
	var raises []barRaise // rolled back when this frame pops
	for _, w := range nbrs {
		if s.onPath[w] || s.bar[w] > budget-1 {
			continue
		}
		s.path = append(s.path, w)
		s.onPath[w] = true
		sub := s.search(budget - 1)
		s.onPath[w] = false
		s.path = s.path[:len(s.path)-1]
		if sub == 0 {
			s.ctr.InvalidPartials++
			if !s.stopped {
				// The subtree of w failed with budget-1: raise the barrier.
				// The raise is valid only while the current stack prefix
				// (including v) survives, so record it for rollback.
				if s.bar[w] < budget {
					raises = append(raises, barRaise{v: w, old: s.bar[w]})
					s.bar[w] = budget
				}
			}
		}
		found += sub
		if s.stopped {
			break
		}
	}
	// Roll back barrier raises scoped to this frame.
	for i := len(raises) - 1; i >= 0; i-- {
		s.bar[raises[i].v] = raises[i].old
	}
	return found
}
