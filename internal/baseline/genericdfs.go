package baseline

import (
	"pathenum/internal/core"
	"pathenum/internal/graph"
)

// reverseBFS computes S(v,t|G) for every vertex by BFS along in-edges,
// bounded at depth k. Unreached vertices get -1.
func reverseBFS(g *graph.Graph, t graph.VertexID, k int, dist []int32) {
	for i := range dist {
		dist[i] = -1
	}
	dist[t] = 0
	queue := make([]graph.VertexID, 0, 64)
	queue = append(queue, t)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		d := dist[v]
		if int(d) >= k {
			break
		}
		for _, w := range g.InNeighbors(v) {
			if dist[w] < 0 {
				dist[w] = d + 1
				queue = append(queue, w)
			}
		}
	}
}

// GenericDFS is the generic depth-first framework of Algorithm 1: a single
// reverse BFS initializes the static lower bounds B(v) = S(v,t|G), and the
// backtracking search extends a partial result M by v' whenever v' is not
// on M and L(M) + 1 + B(v') <= k. Unlike the index algorithms it scans the
// full neighbor list of every expanded vertex.
type GenericDFS struct {
	g    *graph.Graph
	q    core.Query
	dist []int32
}

// Name implements the harness naming convention.
func (a *GenericDFS) Name() string { return "DFS-BASE" }

// Prepare runs the per-query preprocessing (the reverse BFS).
func (a *GenericDFS) Prepare(g *graph.Graph, q core.Query) error {
	if err := q.Validate(g); err != nil {
		return err
	}
	a.g, a.q = g, q
	if a.dist == nil || len(a.dist) != g.NumVertices() {
		a.dist = make([]int32, g.NumVertices())
	}
	reverseBFS(g, q.T, q.K, a.dist)
	return nil
}

// Enumerate runs the backtracking search. It returns true when the search
// completed without hitting a stop condition.
func (a *GenericDFS) Enumerate(ctl core.RunControl, ctr *core.Counters) (bool, error) {
	if ctr == nil {
		ctr = &core.Counters{}
	}
	if a.dist[a.q.S] < 0 || int(a.dist[a.q.S]) > a.q.K {
		return true, nil
	}
	s := &genericSearcher{
		g:      a.g,
		q:      a.q,
		dist:   a.dist,
		ctl:    ctl,
		ctr:    ctr,
		onPath: make([]bool, a.g.NumVertices()),
		path:   make([]graph.VertexID, 0, a.q.K+1),
	}
	s.path = append(s.path, a.q.S)
	s.onPath[a.q.S] = true
	s.search()
	return !s.stopped, nil
}

type genericSearcher struct {
	g       *graph.Graph
	q       core.Query
	dist    []int32
	ctl     core.RunControl
	ctr     *core.Counters
	onPath  []bool
	path    []graph.VertexID
	ticker  uint32
	stopped bool
}

func (s *genericSearcher) search() uint64 {
	v := s.path[len(s.path)-1]
	if v == s.q.T {
		s.ctr.Results++
		if s.ctl.Emit != nil && !s.ctl.Emit(s.path) {
			s.stopped = true
		}
		if s.ctl.Limit > 0 && s.ctr.Results >= s.ctl.Limit {
			s.stopped = true
		}
		return 1
	}
	s.ticker++
	if s.ticker%1024 == 0 && s.ctl.ShouldStop != nil && s.ctl.ShouldStop() {
		s.stopped = true
		return 0
	}
	nbrs := s.g.OutNeighbors(v)
	s.ctr.EdgesAccessed += uint64(len(nbrs))
	budget := int32(s.q.K - (len(s.path) - 1))
	var found uint64
	for _, w := range nbrs {
		if s.onPath[w] || s.dist[w] < 0 || s.dist[w] > budget-1 {
			continue
		}
		s.path = append(s.path, w)
		s.onPath[w] = true
		sub := s.search()
		s.onPath[w] = false
		s.path = s.path[:len(s.path)-1]
		if sub == 0 {
			s.ctr.InvalidPartials++
		}
		found += sub
		if s.stopped {
			break
		}
	}
	return found
}
