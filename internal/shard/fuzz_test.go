package shard

import (
	"context"
	"iter"
	"testing"

	"pathenum"
	"pathenum/internal/gen"
)

// FuzzShardAgreement is the differential oracle for the sharded engine:
// for P ∈ {1,2,4}, every routed class (intra-shard, cross-shard, with
// and without an insert landing mid-stream) must produce exactly the
// single-engine path set. Paths are compared as sets — the sharded
// engine emits in phase order, not the single enumerator's order.
func FuzzShardAgreement(f *testing.F) {
	f.Add(int64(1), uint8(0), uint16(3), uint16(90), uint8(4), false)
	f.Add(int64(2), uint8(1), uint16(10), uint16(55), uint8(5), false)
	f.Add(int64(3), uint8(2), uint16(7), uint16(31), uint8(3), true)
	f.Add(int64(4), uint8(1), uint16(0), uint16(99), uint8(6), true)
	f.Fuzz(func(t *testing.T, seed int64, pSel uint8, sRaw, tRaw uint16, kRaw uint8, withInsert bool) {
		p := []int{1, 2, 4}[int(pSel)%3]
		g := gen.BarabasiAlbert(120, 3, seed)
		n := g.NumVertices()
		q := pathenum.Query{
			S: pathenum.VertexID(int(sRaw) % n),
			T: pathenum.VertexID(int(tRaw) % n),
			K: 1 + int(kRaw)%5,
		}
		if q.S == q.T {
			t.Skip()
		}
		e, err := New(g, p, Config{Engine: pathenum.EngineConfig{Workers: 2}})
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		req := pathenum.Request{S: q.S, T: q.T, K: q.K}

		set := func(seq iter.Seq2[pathenum.Path, error]) map[string]struct{} {
			out := make(map[string]struct{})
			for path, serr := range seq {
				if serr != nil {
					t.Fatal(serr)
				}
				key := pathKey(path)
				if _, dup := out[key]; dup {
					t.Fatalf("duplicate path %s", key)
				}
				out[key] = struct{}{}
			}
			return out
		}
		equal := func(label string, want, got map[string]struct{}) {
			if len(want) != len(got) {
				t.Fatalf("%s: single %d paths, sharded %d", label, len(want), len(got))
			}
			for k := range want {
				if _, ok := got[k]; !ok {
					t.Fatalf("%s: sharded missing %s", label, k)
				}
			}
		}

		pre := set(pathenum.Stream(ctx, g, req))
		if !withInsert {
			equal("steady", pre, set(e.Stream(ctx, req)))
			return
		}

		// Insert mid-stream: the first pull pins the capture, so the
		// drained set must equal the pre-insert single-engine set even
		// though the write lands while the stream is open.
		u := pathenum.VertexID(int(mix32(uint32(seed))) % n)
		v := pathenum.VertexID(int(mix32(uint32(seed)+1)) % n)
		if u == v || e.Graph().HasEdge(u, v) {
			t.Skip()
		}
		next, stop := iter.Pull2(e.Stream(ctx, req))
		got := make(map[string]struct{})
		path, serr, ok := next()
		if ok {
			if serr != nil {
				t.Fatal(serr)
			}
			got[pathKey(path)] = struct{}{}
		}
		if added, ierr := e.Insert(u, v); ierr != nil || !added {
			t.Fatalf("insert: added=%v err=%v", added, ierr)
		}
		for {
			path, serr, more := next()
			if !more {
				break
			}
			if serr != nil {
				t.Fatal(serr)
			}
			key := pathKey(path)
			if _, dup := got[key]; dup {
				t.Fatalf("duplicate path %s", key)
			}
			got[key] = struct{}{}
		}
		stop()
		equal("mid-insert capture", pre, got)

		// After the write publishes, both images agree again.
		post := set(pathenum.Stream(ctx, e.Graph(), req))
		equal("post-insert", post, set(e.Stream(ctx, req)))
	})
}
