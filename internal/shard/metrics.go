package shard

import (
	"fmt"
	"sync/atomic"

	"pathenum"
	"pathenum/internal/obs"
)

// shardMetrics is the pathenum_shard_* family on the registry the
// constituent engines share: routing counters per shard and per ordered
// shard pair, the cross-shard ratio, the remainder-fallback count, and
// scrape-time gauges over the cut structures. The constituent engines'
// own series (pathenum_requests_total, stage histograms, ...) aggregate
// across shards on the same registry, so one scrape covers the whole
// sharded engine.
type shardMetrics struct {
	intra        []*obs.Counter
	cross        [][]*obs.Counter
	fallbackRuns *obs.Counter

	nIntra atomic.Uint64
	nCross atomic.Uint64
}

func newShardMetrics(reg *pathenum.MetricsRegistry, e *Engine) *shardMetrics {
	m := &shardMetrics{
		intra: make([]*obs.Counter, e.p),
		cross: make([][]*obs.Counter, e.p),
	}
	sg := reg.Gauge("pathenum_shard_count", "Number of shards in the partitioned engine.")
	sg.Set(int64(e.p))
	m.fallbackRuns = reg.Counter("pathenum_shard_fallback_total",
		"Remainder phases routed through filtered full-image execution.")
	reg.GaugeFunc("pathenum_shard_cross_ratio",
		"Fraction of routed queries whose endpoints span two shards.",
		func() float64 {
			c, i := m.nCross.Load(), m.nIntra.Load()
			if c+i == 0 {
				return 0
			}
			return float64(c) / float64(c+i)
		})
	for a := 0; a < e.p; a++ {
		shard := fmt.Sprintf("%d", a)
		m.intra[a] = reg.Counter(
			obs.L("pathenum_shard_queries_total", "shard", shard),
			"Queries routed to a shard (intra-shard endpoints).")
		m.cross[a] = make([]*obs.Counter, e.p)
		sub := e.subs[a]
		reg.GaugeFunc(obs.L("pathenum_shard_graph_edges", "shard", shard),
			"Internal (co-owned) edges per shard sub-graph.",
			func() float64 { return float64(sub.Graph().NumEdges()) })
		for b := 0; b < e.p; b++ {
			if a == b {
				continue
			}
			pair := fmt.Sprintf("%d->%d", a, b)
			m.cross[a][b] = reg.Counter(
				obs.L("pathenum_shard_cross_queries_total", "pair", pair),
				"Cross-shard queries per ordered shard pair.")
			aa, bb := a, b
			reg.GaugeFunc(obs.L("pathenum_shard_cut_edges", "pair", pair),
				"Boundary (cut) edges per ordered shard pair.",
				func() float64 {
					e.mu.RLock()
					defer e.mu.RUnlock()
					return float64(e.cutCount[aa][bb])
				})
			reg.GaugeFunc(obs.L("pathenum_shard_boundary_vertices", "pair", pair),
				"Distinct boundary target vertices per ordered shard pair.",
				func() float64 {
					e.mu.RLock()
					defer e.mu.RUnlock()
					return float64(len(e.boundary[aa][bb]))
				})
		}
	}
	return m
}

// observe counts one classified query.
func (m *shardMetrics) observe(r route) {
	switch r.kind {
	case routeIntra:
		m.intra[r.a].Inc()
		m.nIntra.Add(1)
	case routeCross:
		m.cross[r.a][r.b].Inc()
		m.nCross.Add(1)
	case routeSingle:
		m.fallbackRuns.Inc()
	}
}
