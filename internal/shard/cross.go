// The cross-shard enumerator: the partition boundary treated as the join
// cut. For s owned by shard A and t by shard B, every simple path from s
// to t decomposes at its FIRST cut edge — the prefix before it uses only
// A-internal edges. The class this enumerator covers exactly is the
// single-crossing shape A⁺B⁺ (a prefix inside G_A, one cut edge A→B, a
// suffix inside G_B): prefixes enumerate in G_A against the boundary
// vertices and materialize as the build side, suffixes enumerate lazily
// in G_B per boundary vertex as the probe side, and each joined path is
// emitted before the probe advances — the same build/bucket/lazy-probe
// shape as core's tuple-at-a-time join (EnumerateJoinSide), indexed by
// boundary vertex instead of hop position. Because shard vertex sets are
// disjoint, a joined A⁺B⁺ path is simple by construction: no seam
// validation pass is needed. Paths of any other owner shape (a third
// shard, re-entering A, multiple crossings) are the remainder class the
// engine routes through filtered full-image execution.
package shard

import (
	"context"
	"time"

	"pathenum/internal/core"
	"pathenum/internal/graph"
)

// crossJoin is one boundary-join execution. Emit receives each joined
// path s..t in a reused buffer (copy to retain) and returns false to stop
// the run.
type crossJoin struct {
	gA, gB *graph.Graph
	cuts   []graph.Edge // A→B cut edges
	s, t   graph.VertexID
	k      int
	pred   core.EdgePredicate
	emit   func(path []graph.VertexID) bool

	ctx      context.Context
	deadline time.Time // zero = none

	// Results, filled by run.
	counters core.Counters
	stats    core.JoinStats
	stopped  bool // emit returned false, ctx done, or deadline hit

	tick uint64
}

// leftTuple is one materialized prefix: s..u plus the cut edge's target
// boundary vertex v (verts ends with v), hops edges long.
type leftTuple struct {
	verts []graph.VertexID
	hops  int
}

// shouldStop amortizes the context/deadline check over expansion events,
// mirroring the core enumerators' event-counter polling.
func (cj *crossJoin) shouldStop() bool {
	if cj.stopped {
		return true
	}
	cj.tick++
	if cj.tick&255 == 0 {
		if cj.ctx != nil && cj.ctx.Err() != nil {
			cj.stopped = true
		} else if !cj.deadline.IsZero() && time.Now().After(cj.deadline) {
			cj.stopped = true
		}
	}
	return cj.stopped
}

// run executes the boundary join. Sequential and goroutine-free: the
// consumer's goroutine drives both sides, so an abandoned run leaks
// nothing by construction.
func (cj *crossJoin) run() {
	if cj.k < 1 || len(cj.cuts) == 0 {
		return
	}
	buildStart := time.Now()
	defer func() {
		if cj.stats.ProbeTime == 0 && cj.stats.BuildTime == 0 {
			cj.stats.BuildTime = time.Since(buildStart)
		}
	}()

	// distB: minimum hops v→t inside G_B, bounded by the suffix budget.
	distB := cj.bwdBFS(cj.gB, cj.t, cj.k-1)

	// Admissible cut edges u→v: v reaches t in G_B within budget and the
	// predicate admits the edge. seed[u] is the cheapest single-crossing
	// completion from u: 1 (the cut edge) + min distB over u's targets.
	cutAdj := make(map[graph.VertexID][]graph.VertexID)
	seed := make(map[graph.VertexID]int)
	for _, e := range cj.cuts {
		d := distB[e.To]
		if d < 0 || 1+int(d) > cj.k {
			continue
		}
		if cj.pred != nil && !cj.pred(e.From, e.To) {
			continue
		}
		cutAdj[e.From] = append(cutAdj[e.From], e.To)
		if c, ok := seed[e.From]; !ok || 1+int(d) < c {
			seed[e.From] = 1 + int(d)
		}
	}
	if len(cutAdj) == 0 {
		return
	}

	// lb[x]: minimum hops x→t through a single crossing — a multi-source
	// backward bucket BFS over G_A from the seeded cut sources. Prunes the
	// prefix DFS exactly like the per-query index's backward labeling.
	lb := cj.crossingBound(seed)
	if lb[cj.s] < 0 || int(lb[cj.s]) > cj.k {
		return
	}

	// Build side: DFS from s over G_A, recording one tuple per admissible
	// (prefix, cut edge) pair, bucketed by boundary vertex in first-
	// appearance order — the probe visits boundary vertices in the order
	// the build discovered them, so early tuples join early.
	n := cj.gA.NumVertices()
	var (
		tuples  []leftTuple
		buckets = make(map[graph.VertexID][]int32)
		order   []graph.VertexID
	)
	onPath := make([]bool, n)
	path := make([]graph.VertexID, 1, cj.k+1)
	path[0] = cj.s
	onPath[cj.s] = true
	var build func(u graph.VertexID, depth int)
	build = func(u graph.VertexID, depth int) {
		if cj.shouldStop() {
			return
		}
		for _, v := range cutAdj[u] {
			// Per-target feasibility: this tuple joins some suffix iff
			// depth + 1 + distB[v] <= k.
			if depth+1+int(distB[v]) > cj.k {
				continue
			}
			verts := make([]graph.VertexID, depth+2)
			copy(verts, path)
			verts[depth+1] = v
			if _, seen := buckets[v]; !seen {
				order = append(order, v)
			}
			buckets[v] = append(buckets[v], int32(len(tuples)))
			tuples = append(tuples, leftTuple{verts: verts, hops: depth + 1})
			cj.stats.PartialBytes += int64(len(verts)) * 4
		}
		for _, w := range cj.gA.OutNeighbors(u) {
			cj.counters.EdgesAccessed++
			if onPath[w] || lb[w] < 0 || depth+1+int(lb[w]) > cj.k {
				continue
			}
			if cj.pred != nil && !cj.pred(u, w) {
				continue
			}
			onPath[w] = true
			path = append(path, w)
			build(w, depth+1)
			path = path[:len(path)-1]
			onPath[w] = false
		}
	}
	build(cj.s, 0)
	cj.stats.BuildLeft = true
	cj.stats.BuildTuples = int64(len(tuples))
	cj.stats.LeftTuples = int64(len(tuples))
	cj.stats.BuildTime = time.Since(buildStart)
	if cj.stopped || len(tuples) == 0 {
		return
	}

	// Probe side: per boundary vertex, a lazy DFS in G_B toward t pruned
	// by distB; every completed suffix immediately joins its bucket's
	// feasible tuples and each joined path is emitted before the probe
	// advances — first-path latency is one prefix plus one suffix, not a
	// materialized half side.
	probeStart := time.Now()
	defer func() { cj.stats.ProbeTime = time.Since(probeStart) }()
	onPathB := make([]bool, n)
	suffix := make([]graph.VertexID, 0, cj.k+1)
	out := make([]graph.VertexID, 0, cj.k+1)
	for _, v := range order {
		idxs := buckets[v]
		minHops := tuples[idxs[0]].hops
		for _, i := range idxs[1:] {
			if h := tuples[i].hops; h < minHops {
				minHops = h
			}
		}
		budget := cj.k - minHops // max suffix edges any tuple at v affords
		suffix = append(suffix[:0], v)
		onPathB[v] = true
		var probe func(w graph.VertexID, r int)
		probe = func(w graph.VertexID, r int) {
			if cj.shouldStop() {
				return
			}
			if w == cj.t {
				// A simple path visits t only at its end, so the walk never
				// expands past t: emit the joins and return.
				cj.stats.ProbeWalks++
				for _, i := range idxs {
					if tuples[i].hops+r > cj.k {
						continue
					}
					out = append(out[:0], tuples[i].verts...)
					out = append(out, suffix[1:]...)
					cj.counters.Results++
					if !cj.emit(out) {
						cj.stopped = true
						return
					}
				}
				return
			}
			for _, w2 := range cj.gB.OutNeighbors(w) {
				cj.counters.EdgesAccessed++
				if onPathB[w2] {
					continue
				}
				if d := distB[w2]; d < 0 || r+1+int(d) > budget {
					continue
				}
				if cj.pred != nil && !cj.pred(w, w2) {
					continue
				}
				onPathB[w2] = true
				suffix = append(suffix, w2)
				probe(w2, r+1)
				suffix = suffix[:len(suffix)-1]
				onPathB[w2] = false
				if cj.stopped {
					return
				}
			}
		}
		probe(v, 0)
		onPathB[v] = false
		if cj.stopped {
			return
		}
	}
	cj.stats.RightTuples = cj.stats.ProbeWalks
}

// bwdBFS is a predicate-aware backward BFS from origin over g, bounded at
// maxDepth: dist[v] is the minimum edges v→origin, -1 when unreachable
// within the bound.
func (cj *crossJoin) bwdBFS(g *graph.Graph, origin graph.VertexID, maxDepth int) []int32 {
	dist := make([]int32, g.NumVertices())
	for i := range dist {
		dist[i] = -1
	}
	dist[origin] = 0
	if maxDepth < 1 {
		return dist
	}
	frontier := []graph.VertexID{origin}
	for d := int32(1); len(frontier) > 0 && d <= int32(maxDepth); d++ {
		var next []graph.VertexID
		for _, u := range frontier {
			for _, w := range g.InNeighbors(u) {
				cj.counters.EdgesAccessed++
				if dist[w] >= 0 {
					continue
				}
				if cj.pred != nil && !cj.pred(w, u) {
					continue
				}
				dist[w] = d
				next = append(next, w)
			}
		}
		frontier = next
	}
	return dist
}

// crossingBound runs the multi-source backward bucket BFS over G_A: each
// cut source u starts at its seed cost (cut edge + cheapest suffix), and
// levels settle in ascending order so lb[x] is the exact minimum hops
// x→t using one crossing.
func (cj *crossJoin) crossingBound(seed map[graph.VertexID]int) []int32 {
	lb := make([]int32, cj.gA.NumVertices())
	for i := range lb {
		lb[i] = -1
	}
	buckets := make([][]graph.VertexID, cj.k+1)
	push := func(u graph.VertexID, c int) {
		if c > cj.k {
			return
		}
		if lb[u] >= 0 && int(lb[u]) <= c {
			return
		}
		lb[u] = int32(c)
		buckets[c] = append(buckets[c], u)
	}
	for u, c := range seed {
		push(u, c)
	}
	for c := 0; c <= cj.k; c++ {
		for i := 0; i < len(buckets[c]); i++ { // push may grow later buckets only
			u := buckets[c][i]
			if int(lb[u]) != c {
				continue // settled at a smaller level
			}
			for _, w := range cj.gA.InNeighbors(u) {
				cj.counters.EdgesAccessed++
				if cj.pred != nil && !cj.pred(w, u) {
					continue
				}
				push(w, c+1)
			}
		}
	}
	return lb
}
