// Package shard partitions a graph into P edge-cut shards and executes
// hop-constrained s-t path queries against the partitioned image: queries
// whose endpoints are co-resident delegate to that shard's untouched
// engine spine, and cross-shard queries enumerate each side within its
// shard sub-graph and join at the partition boundary — the boundary is a
// cut of the hop automaton exactly like the join optimizer's cut position
// (Algorithm 6), which is what makes the seam a streaming hash join
// rather than a new algorithm. See DESIGN.md §13.
package shard

import (
	"fmt"
	"sort"

	"pathenum/internal/graph"
)

// Strategy selects the vertex-ownership rule of a partition.
type Strategy int

const (
	// Hash assigns owner(v) = mix(v) mod P — uniform, stateless, and the
	// rule genpath's -partition workload mode reproduces.
	Hash Strategy = iota
	// DegreeAware starts from Hash and then pulls each hub's out-neighbors
	// into the hub's shard (highest-degree hubs claim first), keeping hub
	// out-edges co-resident so the heaviest adjacency lists stay internal
	// instead of scattering across the boundary.
	DegreeAware
)

// DefaultHubFrac is the fraction of highest-degree vertices DegreeAware
// treats as hubs when Config.HubFrac is 0.
const DefaultHubFrac = 0.01

// mix32 is a splitmix-style avalanche over the vertex id, so consecutive
// ids — dense loader output — spread across shards instead of striping.
func mix32(v uint32) uint32 {
	v ^= v >> 16
	v *= 0x7feb352d
	v ^= v >> 15
	v *= 0x846ca68b
	v ^= v >> 16
	return v
}

// HashOwner returns the Hash-strategy ownership function for p shards.
// genpath's -partition mode uses it to label queries intra/cross without
// building a partition.
func HashOwner(p int) func(graph.VertexID) int {
	return func(v graph.VertexID) int { return int(mix32(uint32(v)) % uint32(p)) }
}

// Partition is the edge-cut split of one graph: P sub-graphs holding the
// internal edges (both endpoints co-owned), and the cut edges recorded per
// ordered shard pair. Sub-graphs keep the global vertex id space — no id
// remapping, so paths from different shards concatenate directly; the
// O(P·V) offset overhead that buys is a documented limit of the
// single-process stepping stone.
type Partition struct {
	// P is the shard count.
	P int
	// Owners maps each vertex to its owning shard.
	Owners []int32
	// Subs are the per-shard sub-graphs over the global id space.
	Subs []*graph.Graph
	// Cuts[a][b] are the cut edges from shard a into shard b (a != b).
	Cuts [][][]graph.Edge
}

// Owner returns v's owning shard.
func (p *Partition) Owner(v graph.VertexID) int { return int(p.Owners[v]) }

// CutEdges returns the total number of boundary edges.
func (p *Partition) CutEdges() int {
	n := 0
	for a := range p.Cuts {
		for b := range p.Cuts[a] {
			n += len(p.Cuts[a][b])
		}
	}
	return n
}

// NewPartition splits g into p edge-cut shards. hubFrac applies to the
// DegreeAware strategy only (0 = DefaultHubFrac).
func NewPartition(g *graph.Graph, p int, strategy Strategy, hubFrac float64) (*Partition, error) {
	if g == nil {
		return nil, fmt.Errorf("shard: partition needs a graph")
	}
	if p < 1 {
		return nil, fmt.Errorf("shard: shard count %d must be >= 1", p)
	}
	n := g.NumVertices()
	owners := make([]int32, n)
	own := HashOwner(p)
	for v := 0; v < n; v++ {
		owners[v] = int32(own(graph.VertexID(v)))
	}
	if strategy == DegreeAware && p > 1 {
		degreeAwareOwners(g, owners, hubFrac)
	}

	internal := make([][]graph.Edge, p)
	cuts := make([][][]graph.Edge, p)
	for a := 0; a < p; a++ {
		cuts[a] = make([][]graph.Edge, p)
	}
	for _, e := range g.Edges() {
		a, b := owners[e.From], owners[e.To]
		if a == b {
			internal[a] = append(internal[a], e)
		} else {
			cuts[a][b] = append(cuts[a][b], e)
		}
	}
	subs := make([]*graph.Graph, p)
	for i := 0; i < p; i++ {
		sub, err := graph.NewGraph(n, internal[i])
		if err != nil {
			return nil, fmt.Errorf("shard: sub-graph %d: %w", i, err)
		}
		subs[i] = sub
	}
	return &Partition{P: p, Owners: owners, Subs: subs, Cuts: cuts}, nil
}

// degreeAwareOwners mutates the hash owners in place: the top hubFrac
// vertices by total degree become hubs (keeping their hash owner), and
// each hub claims its not-yet-claimed non-hub out-neighbors into its
// shard, highest-degree hub first — so the densest out-adjacency lists
// become internal edges. Deterministic: degree ties break on vertex id.
func degreeAwareOwners(g *graph.Graph, owners []int32, hubFrac float64) {
	if hubFrac <= 0 || hubFrac >= 1 {
		hubFrac = DefaultHubFrac
	}
	n := g.NumVertices()
	nHubs := int(hubFrac * float64(n))
	if nHubs < 1 {
		nHubs = 1
	}
	order := make([]int, n)
	for v := range order {
		order[v] = v
	}
	sort.Slice(order, func(i, j int) bool {
		di, dj := g.Degree(graph.VertexID(order[i])), g.Degree(graph.VertexID(order[j]))
		if di != dj {
			return di > dj
		}
		return order[i] < order[j]
	})
	isHub := make([]bool, n)
	for _, v := range order[:nHubs] {
		isHub[v] = true
	}
	claimed := make([]bool, n)
	for _, h := range order[:nHubs] {
		for _, w := range g.OutNeighbors(graph.VertexID(h)) {
			if isHub[w] || claimed[w] {
				continue
			}
			claimed[w] = true
			owners[w] = owners[h]
		}
	}
}
