package shard

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"pathenum"
	"pathenum/internal/gen"
	"pathenum/internal/graph"
)

func testGraph(seed int64) *pathenum.Graph {
	return gen.BarabasiAlbert(220, 4, seed)
}

func pathKey(p []graph.VertexID) string { return fmt.Sprint(p) }

// collect drains a stream into a path-set keyed by vertex sequence.
func collect(t *testing.T, seq func(func(pathenum.Path, error) bool)) map[string]struct{} {
	t.Helper()
	set := make(map[string]struct{})
	for p, err := range seq {
		if err != nil {
			t.Fatal(err)
		}
		key := pathKey(p)
		if _, dup := set[key]; dup {
			t.Fatalf("duplicate path %s", key)
		}
		set[key] = struct{}{}
	}
	return set
}

func singleSet(t *testing.T, g *pathenum.Graph, req pathenum.Request) map[string]struct{} {
	t.Helper()
	return collect(t, pathenum.Stream(context.Background(), g, req))
}

func diffSets(t *testing.T, label string, want, got map[string]struct{}) {
	t.Helper()
	if len(want) != len(got) {
		t.Errorf("%s: single engine %d paths, sharded %d", label, len(want), len(got))
	}
	for k := range want {
		if _, ok := got[k]; !ok {
			t.Errorf("%s: sharded missing path %s", label, k)
		}
	}
	for k := range got {
		if _, ok := want[k]; !ok {
			t.Errorf("%s: sharded invented path %s", label, k)
		}
	}
}

// pickQueries finds one intra-shard and one cross-shard query with a
// non-trivial answer set on g.
func pickQueries(t *testing.T, e *Engine, g *pathenum.Graph, k int, seed int64) (intra, cross pathenum.Query) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := g.NumVertices()
	var haveIntra, haveCross bool
	if e.Shards() == 1 {
		haveCross = true // P=1 has no cross class; callers reuse the intra query
	}
	for tries := 0; tries < 20000 && !(haveIntra && haveCross); tries++ {
		s := pathenum.VertexID(rng.Intn(n))
		tt := pathenum.VertexID(rng.Intn(n))
		if s == tt {
			continue
		}
		q := pathenum.Query{S: s, T: tt, K: k}
		same := e.Owner(s) == e.Owner(tt)
		if (same && haveIntra) || (!same && haveCross) {
			continue
		}
		c, err := pathenum.Count(g, q)
		if err != nil || c == 0 {
			continue
		}
		if same {
			intra, haveIntra = q, true
		} else {
			cross, haveCross = q, true
		}
	}
	if !haveIntra || !haveCross {
		t.Fatalf("no intra/cross query pair found (intra=%v cross=%v)", haveIntra, haveCross)
	}
	if e.Shards() == 1 {
		cross = intra
	}
	return intra, cross
}

func newShardEngine(t *testing.T, g *pathenum.Graph, p int) *Engine {
	t.Helper()
	e, err := New(g, p, Config{Engine: pathenum.EngineConfig{Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// The core differential: the sharded engine's path set must equal the
// single-image set for intra and cross routes at every P.
func TestShardAgreementStream(t *testing.T) {
	g := testGraph(11)
	ctx := context.Background()
	for _, p := range []int{1, 2, 4} {
		e := newShardEngine(t, g, p)
		intra, cross := pickQueries(t, e, g, 4, 31)
		for _, q := range []pathenum.Query{intra, cross} {
			req := pathenum.Request{S: q.S, T: q.T, K: q.K}
			want := singleSet(t, g, req)
			got := collect(t, e.Stream(ctx, req))
			diffSets(t, fmt.Sprintf("P=%d q=%v", p, q), want, got)
		}
	}
}

func TestShardExecuteAgreement(t *testing.T) {
	g := testGraph(13)
	for _, p := range []int{2, 4} {
		e := newShardEngine(t, g, p)
		intra, cross := pickQueries(t, e, g, 4, 37)
		for _, q := range []pathenum.Query{intra, cross} {
			res, err := e.Execute(q)
			if err != nil {
				t.Fatal(err)
			}
			want, err := pathenum.Count(g, q)
			if err != nil {
				t.Fatal(err)
			}
			if res.Counters.Results != want {
				t.Fatalf("P=%d q=%v: Execute counted %d, want %d", p, q, res.Counters.Results, want)
			}
			if !res.Completed {
				t.Fatalf("P=%d q=%v: unlimited run not Completed", p, q)
			}
		}
	}
}

func TestShardLimit(t *testing.T) {
	g := testGraph(17)
	e := newShardEngine(t, g, 3)
	_, cross := pickQueries(t, e, g, 5, 41)
	full, err := pathenum.Count(g, cross)
	if err != nil {
		t.Fatal(err)
	}
	if full < 3 {
		t.Skipf("query too small for limit test (%d paths)", full)
	}
	var res *pathenum.Result
	req := pathenum.Request{S: cross.S, T: cross.T, K: cross.K, Limit: 2,
		OnResult: func(r *pathenum.Result) { res = r }}
	n := 0
	for p, serr := range e.Stream(context.Background(), req) {
		if serr != nil {
			t.Fatal(serr)
		}
		if len(p) == 0 {
			t.Fatal("empty path")
		}
		n++
	}
	if n != 2 {
		t.Fatalf("limit 2 yielded %d paths", n)
	}
	if res == nil || res.Completed {
		t.Fatalf("limited run must report Completed=false, got %+v", res)
	}
	if res.Counters.Results != 2 {
		t.Fatalf("limited run counted %d", res.Counters.Results)
	}
}

func TestShardPredicateAgreement(t *testing.T) {
	g := testGraph(19)
	e := newShardEngine(t, g, 2)
	_, cross := pickQueries(t, e, g, 4, 43)
	pred := func(from, to pathenum.VertexID) bool { return (uint32(from)+uint32(to))%7 != 0 }
	req := pathenum.Request{S: cross.S, T: cross.T, K: cross.K, Predicate: pred}
	want := singleSet(t, g, req)
	got := collect(t, e.Stream(context.Background(), req))
	diffSets(t, "predicate", want, got)
}

// Insert must route to the owning structures, advance the composite
// epoch, and keep the differential after the mutation.
func TestShardInsertRouting(t *testing.T) {
	g := testGraph(23)
	e := newShardEngine(t, g, 3)
	n := g.NumVertices()
	rng := rand.New(rand.NewSource(47))

	find := func(sameShard bool) (pathenum.VertexID, pathenum.VertexID) {
		for {
			u := pathenum.VertexID(rng.Intn(n))
			v := pathenum.VertexID(rng.Intn(n))
			if u == v || e.Graph().HasEdge(u, v) {
				continue
			}
			if (e.Owner(u) == e.Owner(v)) == sameShard {
				return u, v
			}
		}
	}

	epoch0 := e.Epoch()
	u, v := find(true)
	owner := e.Owner(u)
	subEdges := e.subs[owner].Graph().NumEdges()
	if added, err := e.Insert(u, v); err != nil || !added {
		t.Fatalf("co-owned insert: added=%v err=%v", added, err)
	}
	if got := e.subs[owner].Graph().NumEdges(); got != subEdges+1 {
		t.Fatalf("co-owned insert not applied to shard %d: %d edges, want %d", owner, got, subEdges+1)
	}
	if e.Epoch() != epoch0+1 {
		t.Fatalf("composite epoch %d, want %d", e.Epoch(), epoch0+1)
	}

	cutBefore := e.CutEdges()
	cu, cv := find(false)
	if added, err := e.Insert(cu, cv); err != nil || !added {
		t.Fatalf("cut insert: added=%v err=%v", added, err)
	}
	if e.CutEdges() != cutBefore+1 {
		t.Fatalf("cut insert not recorded: %d cut edges, want %d", e.CutEdges(), cutBefore+1)
	}
	if added, err := e.Insert(cu, cv); err != nil || added {
		t.Fatalf("duplicate insert: added=%v err=%v", added, err)
	}

	// The mutated image must still agree with a single engine over it.
	intra, cross := pickQueries(t, e, e.Graph(), 4, 53)
	for _, q := range []pathenum.Query{intra, cross} {
		req := pathenum.Request{S: q.S, T: q.T, K: q.K}
		want := singleSet(t, e.Graph(), req)
		got := collect(t, e.Stream(context.Background(), req))
		diffSets(t, fmt.Sprintf("post-insert q=%v", q), want, got)
	}
}

func TestShardExecuteBatchAgreement(t *testing.T) {
	g := testGraph(29)
	e := newShardEngine(t, g, 4)
	rng := rand.New(rand.NewSource(59))
	n := g.NumVertices()
	var qs []pathenum.Query
	for len(qs) < 24 {
		s := pathenum.VertexID(rng.Intn(n))
		tt := pathenum.VertexID(rng.Intn(n))
		if s == tt {
			continue
		}
		qs = append(qs, pathenum.Query{S: s, T: tt, K: 4})
	}
	qs = append(qs, pathenum.Query{S: qs[0].S, T: qs[0].S, K: 4}) // invalid: s == t
	results, errs, stats := e.ExecuteBatch(context.Background(), qs, pathenum.Options{})
	if stats == nil || stats.Queries != len(qs) {
		t.Fatalf("stats %+v", stats)
	}
	if errs[len(qs)-1] == nil {
		t.Fatal("invalid query must error")
	}
	if stats.Invalid != 1 {
		t.Fatalf("stats.Invalid = %d, want 1", stats.Invalid)
	}
	for i, q := range qs[:len(qs)-1] {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		want, err := pathenum.Count(g, q)
		if err != nil {
			t.Fatal(err)
		}
		if results[i] == nil || results[i].Counters.Results != want {
			t.Fatalf("query %d (%v): got %+v, want %d paths", i, q, results[i], want)
		}
	}
}

func TestShardStreamBatch(t *testing.T) {
	g := testGraph(31)
	e := newShardEngine(t, g, 2)
	intra, cross := pickQueries(t, e, g, 4, 61)
	qs := []pathenum.Query{intra, cross, intra}
	seen := make(map[int]bool)
	var stats *pathenum.BatchStats
	for item := range e.StreamBatch(context.Background(), qs, pathenum.Options{}) {
		if item.Index == -1 {
			stats = item.Stats
			continue
		}
		if item.Err != nil {
			t.Fatalf("item %d: %v", item.Index, item.Err)
		}
		if seen[item.Index] {
			t.Fatalf("item %d delivered twice", item.Index)
		}
		seen[item.Index] = true
		want, err := pathenum.Count(g, qs[item.Index])
		if err != nil {
			t.Fatal(err)
		}
		if item.Result.Counters.Results != want {
			t.Fatalf("item %d: %d paths, want %d", item.Index, item.Result.Counters.Results, want)
		}
	}
	if len(seen) != len(qs) {
		t.Fatalf("delivered %d items, want %d", len(seen), len(qs))
	}
	if stats == nil || stats.Queries != len(qs) {
		t.Fatalf("missing/short stats item: %+v", stats)
	}
}

func TestShardMetricsExported(t *testing.T) {
	g := testGraph(37)
	reg := pathenum.NewMetricsRegistry()
	e, err := New(g, 2, Config{Engine: pathenum.EngineConfig{Workers: 2, Metrics: reg}})
	if err != nil {
		t.Fatal(err)
	}
	intra, cross := pickQueries(t, e, g, 4, 67)
	for _, q := range []pathenum.Query{intra, cross} {
		if _, err := e.Execute(q); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	if snap["pathenum_shard_count"] != 2 {
		t.Fatalf("pathenum_shard_count = %v", snap["pathenum_shard_count"])
	}
	var intraTotal, crossTotal float64
	for k, v := range snap {
		switch {
		case len(k) > len("pathenum_shard_queries_total") && k[:len("pathenum_shard_queries_total")] == "pathenum_shard_queries_total":
			intraTotal += v
		case len(k) > len("pathenum_shard_cross_queries_total") && k[:len("pathenum_shard_cross_queries_total")] == "pathenum_shard_cross_queries_total":
			crossTotal += v
		}
	}
	if intraTotal < 1 || crossTotal < 1 {
		t.Fatalf("routing counters not observed: intra=%v cross=%v", intraTotal, crossTotal)
	}
	if r := snap["pathenum_shard_cross_ratio"]; r <= 0 || r >= 1 {
		t.Fatalf("pathenum_shard_cross_ratio = %v, want in (0,1)", r)
	}
	// Full-image gauges must describe the full graph, not a sub-graph.
	if snap["pathenum_graph_edges"] != float64(g.NumEdges()) {
		t.Fatalf("pathenum_graph_edges = %v, want %d", snap["pathenum_graph_edges"], g.NumEdges())
	}
}

// Abandoning a cross-shard stream mid-iteration — including one whose
// remainder phase runs buffered — must leave no goroutine behind.
func TestShardStreamAbandonNoLeak(t *testing.T) {
	g := testGraph(41)
	e := newShardEngine(t, g, 2)
	_, cross := pickQueries(t, e, g, 5, 71)
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		req := pathenum.Request{S: cross.S, T: cross.T, K: cross.K, Buffer: 8}
		for p, err := range e.Stream(context.Background(), req) {
			if err != nil {
				t.Fatal(err)
			}
			_ = p
			break // abandon after the first path
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if now := runtime.NumGoroutine(); now <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
