package shard

import (
	"testing"

	"pathenum/internal/gen"
	"pathenum/internal/graph"
)

func TestPartitionValidation(t *testing.T) {
	if _, err := NewPartition(nil, 2, Hash, 0); err == nil {
		t.Fatal("nil graph: expected error")
	}
	g := gen.BarabasiAlbert(50, 3, 1)
	if _, err := NewPartition(g, 0, Hash, 0); err == nil {
		t.Fatal("p=0: expected error")
	}
}

// Every edge of the input must land exactly once: in its owner's
// sub-graph when co-owned, in exactly one ordered cut list otherwise.
func TestPartitionEdgeCoverage(t *testing.T) {
	g := gen.BarabasiAlbert(200, 4, 7)
	for _, p := range []int{1, 2, 4} {
		part, err := NewPartition(g, p, Hash, 0)
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for i, sub := range part.Subs {
			total += sub.NumEdges()
			for _, e := range sub.Edges() {
				if part.Owner(e.From) != i || part.Owner(e.To) != i {
					t.Fatalf("P=%d: sub %d holds non-co-owned edge %v", p, i, e)
				}
				if !g.HasEdge(e.From, e.To) {
					t.Fatalf("P=%d: sub %d invented edge %v", p, i, e)
				}
			}
		}
		for a := range part.Cuts {
			for b := range part.Cuts[a] {
				total += int64(len(part.Cuts[a][b]))
				for _, e := range part.Cuts[a][b] {
					if part.Owner(e.From) != a || part.Owner(e.To) != b {
						t.Fatalf("P=%d: cut[%d][%d] misfiled edge %v", p, a, b, e)
					}
					if !g.HasEdge(e.From, e.To) {
						t.Fatalf("P=%d: cut invented edge %v", p, e)
					}
				}
			}
		}
		if total != g.NumEdges() {
			t.Fatalf("P=%d: partition covers %d edges, graph has %d", p, total, g.NumEdges())
		}
		if p == 1 && part.CutEdges() != 0 {
			t.Fatalf("P=1 must have no cut edges, got %d", part.CutEdges())
		}
	}
}

// DegreeAware must pull the top hub's unclaimed non-hub out-neighbors
// into the hub's shard, shrinking (or matching) the Hash cut.
func TestPartitionDegreeAware(t *testing.T) {
	// A star graph: vertex 0 fans out to everyone. Under Hash its
	// out-edges scatter; DegreeAware must co-locate them.
	n := 64
	var edges []graph.Edge
	for v := 1; v < n; v++ {
		edges = append(edges, graph.Edge{From: 0, To: graph.VertexID(v)})
	}
	g, err := graph.NewGraph(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	hash, err := NewPartition(g, 4, Hash, 0)
	if err != nil {
		t.Fatal(err)
	}
	// hubFrac small enough that only vertex 0 (degree n-1) is a hub —
	// a larger fraction would promote leaves to hubs, exempting them
	// from being claimed.
	da, err := NewPartition(g, 4, DegreeAware, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if da.CutEdges() > hash.CutEdges() {
		t.Fatalf("DegreeAware cut %d exceeds Hash cut %d", da.CutEdges(), hash.CutEdges())
	}
	// With hubFrac small enough only vertex 0 (degree n-1) is a hub, so
	// every leaf is claimed into shard Owner(0) and the cut is empty.
	if da.CutEdges() != 0 {
		t.Fatalf("star hub not co-located: %d cut edges remain", da.CutEdges())
	}
	for v := 1; v < n; v++ {
		if da.Owner(graph.VertexID(v)) != da.Owner(0) {
			t.Fatalf("leaf %d owned by %d, hub by %d", v, da.Owner(graph.VertexID(v)), da.Owner(0))
		}
	}
}
