package shard

import (
	"context"
	"fmt"
	"iter"
	"sync"
	"sync/atomic"
	"time"

	"pathenum"
	"pathenum/internal/core"
	"pathenum/internal/graph"
)

// Config configures a sharded engine.
type Config struct {
	// Strategy selects vertex ownership (default Hash).
	Strategy Strategy
	// HubFrac is the DegreeAware hub fraction (0 = DefaultHubFrac).
	HubFrac float64
	// Engine is the per-constituent engine configuration. The metrics
	// registry is shared across every constituent (one scrape covers the
	// whole sharded engine); SnapshotEvery is forced to 1 so the
	// per-shard images and the full image publish in lockstep — phase
	// consistency of a routed query depends on it. Oracle, when set, must
	// match the full graph and serves the full-image constituent only;
	// with OracleLandmarks each shard builds its own oracle in the
	// background. MemoryBudgetBytes names the budget for the whole
	// sharded engine: at shards > 1 it is split evenly across the P
	// sub-engines plus the full-image fallback, each constituent flooring
	// its share at its own mandatory session scratch.
	Engine pathenum.EngineConfig
}

// Engine executes hop-constrained s-t path queries over an edge-cut
// partitioned graph behind the same surface as pathenum.Engine — Stream,
// Execute/ExecuteWith, ExecuteBatch/StreamBatch, Insert/Flush — so the
// HTTP layer serves either through one interface.
//
// Routing: a query whose endpoints are co-owned by shard A and provably
// confined there (A has no out-cut or no in-cut edges) delegates to shard
// A's untouched engine spine — at P=1 every query takes this path, so the
// sharding layer's overhead is one classification. A cross-shard query
// (s in A, t in B) runs the boundary join for the single-crossing class
// A⁺B⁺ (see crossJoin) and, unless the cut structure proves the class
// exhaustive, a remainder phase: full-image enumeration filtered to the
// owner shapes the join did not cover — paths crossing two or more
// boundaries fall back to single-image execution, the documented limit.
// Both phases of a routed query run on graphs captured under one read
// lock, and Insert updates every constituent under the matching write
// lock, so a query never sees the shards at mixed epochs.
//
// Versioning: the full-image constituent applies every insert, so its
// epoch is the composite mutation count across shards — Epoch() reports
// it, and version-enforced structures (frontiers, oracles) keep their
// ErrStaleEpoch semantics per constituent engine.
type Engine struct {
	p          int
	subWorkers int
	owners     []int32
	subs       []*pathenum.Engine
	// fallback serves the full image: the remainder phases, constrained
	// requests, and the write-path dedup verdict. At P=1 it IS subs[0] —
	// no duplicate image.
	fallback *pathenum.Engine
	reg      *pathenum.MetricsRegistry
	m        *shardMetrics

	// mu guards the cut structures and spans constituent writes: Insert
	// holds it exclusively across the fallback + sub-engine updates, and
	// capture reads all constituent graphs under RLock, so a captured
	// view is mutually consistent.
	mu       sync.RWMutex
	cuts     [][][]graph.Edge
	cutCount [][]int
	boundary [][]map[graph.VertexID]struct{}

	// Phased (two-phase) executions run engine-less on captured graphs;
	// these gauges track them so PoolStats covers every in-flight query.
	inFlight atomic.Int64
	inShards atomic.Int64
}

// New builds a sharded engine: g is split into shards edge-cut
// sub-graphs (plus, at shards > 1, a full-image constituent for the
// remainder/constrained/write paths), each behind its own pathenum.Engine
// with per-shard worker pools sharing one metrics registry.
func New(g *pathenum.Graph, shards int, cfg Config) (*Engine, error) {
	part, err := NewPartition(g, shards, cfg.Strategy, cfg.HubFrac)
	if err != nil {
		return nil, err
	}
	ecfg := cfg.Engine
	reg := ecfg.Metrics
	if reg == nil {
		reg = pathenum.NewMetricsRegistry()
	}
	ecfg.Metrics = reg
	// Lockstep publishing: a routed query's phases assume the sub-images
	// and the full image describe the same edge set.
	ecfg.SnapshotEvery = 1
	// A memory budget configured for the sharded engine bounds the whole
	// process, so it is split evenly across the constituents that
	// actually hold memory: the P sub-engines plus the full-image
	// fallback (at shards == 1 the single engine IS the fallback and
	// keeps the whole budget). Each constituent floors its share at its
	// own session-scratch requirement, so a pathologically small budget
	// still constructs — with caches and join builds starved, not broken.
	if shards > 1 && ecfg.MemoryBudgetBytes > 0 {
		ecfg.MemoryBudgetBytes /= int64(shards + 1)
	}
	subWorkers := ecfg.Workers
	if subWorkers <= 0 {
		subWorkers = 4
	}

	e := &Engine{
		p:          shards,
		subWorkers: subWorkers,
		owners:     part.Owners,
		reg:        reg,
		cuts:       part.Cuts,
	}
	if shards == 1 {
		eng, err := pathenum.NewEngine(g, ecfg)
		if err != nil {
			return nil, err
		}
		e.subs = []*pathenum.Engine{eng}
		e.fallback = eng
	} else {
		// The full-image constituent registers first so the shared
		// registry's graph gauges (vertices/edges/epoch) describe the
		// full image, not a sub-graph — func-gauge registration keeps the
		// first closure.
		fb, err := pathenum.NewEngine(g, ecfg)
		if err != nil {
			return nil, err
		}
		e.fallback = fb
		subCfg := ecfg
		// A full-graph oracle is version-bound to the full image; the
		// sub-engines build their own (OracleLandmarks) or run unpruned.
		subCfg.Oracle = nil
		subCfg.Options.Oracle = nil
		e.subs = make([]*pathenum.Engine, shards)
		for i, sub := range part.Subs {
			eng, err := pathenum.NewEngine(sub, subCfg)
			if err != nil {
				return nil, fmt.Errorf("shard %d: %w", i, err)
			}
			e.subs[i] = eng
		}
	}
	e.cutCount = make([][]int, shards)
	e.boundary = make([][]map[graph.VertexID]struct{}, shards)
	for a := 0; a < shards; a++ {
		e.cutCount[a] = make([]int, shards)
		e.boundary[a] = make([]map[graph.VertexID]struct{}, shards)
		for b := 0; b < shards; b++ {
			e.boundary[a][b] = make(map[graph.VertexID]struct{})
			for _, edge := range e.cuts[a][b] {
				e.boundary[a][b][edge.To] = struct{}{}
			}
			e.cutCount[a][b] = len(e.cuts[a][b])
		}
	}
	e.m = newShardMetrics(reg, e)
	return e, nil
}

// Shards returns the shard count P.
func (e *Engine) Shards() int { return e.p }

// Owner returns v's owning shard.
func (e *Engine) Owner(v pathenum.VertexID) int { return int(e.owners[v]) }

// CutEdges returns the current number of boundary edges.
func (e *Engine) CutEdges() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	n := 0
	for a := range e.cutCount {
		for _, c := range e.cutCount[a] {
			n += c
		}
	}
	return n
}

// Graph returns the full serving image.
func (e *Engine) Graph() *pathenum.Graph { return e.fallback.Graph() }

// Epoch returns the composite epoch: the full-image constituent applies
// every insert, so its epoch counts all mutations across shards.
func (e *Engine) Epoch() uint64 { return e.fallback.Epoch() }

// ShardEpochs returns each shard constituent's own epoch.
func (e *Engine) ShardEpochs() []uint64 {
	out := make([]uint64, e.p)
	for i, s := range e.subs {
		out[i] = s.Epoch()
	}
	return out
}

// PendingWrites reports insertions not yet published (always 0: the
// sharded engine forces lockstep publishing).
func (e *Engine) PendingWrites() int { return e.fallback.PendingWrites() }

// Metrics returns the registry shared by every constituent.
func (e *Engine) Metrics() *pathenum.MetricsRegistry { return e.reg }

// OracleLag reports the longest degraded window across constituents.
func (e *Engine) OracleLag() time.Duration {
	lag := e.fallback.OracleLag()
	for _, s := range e.subs {
		if l := s.OracleLag(); l > lag {
			lag = l
		}
	}
	return lag
}

// PoolStats aggregates worker-pool occupancy across the per-shard pools
// plus the phased executions the sharding layer runs itself.
func (e *Engine) PoolStats() pathenum.PoolStats {
	ps := pathenum.PoolStats{Workers: e.subWorkers * e.p}
	for _, s := range e.subs {
		sp := s.PoolStats()
		ps.InFlightQueries += sp.InFlightQueries
		ps.InFlightShards += sp.InFlightShards
	}
	if e.fallback != e.subs[0] {
		fp := e.fallback.PoolStats()
		ps.InFlightQueries += fp.InFlightQueries
		ps.InFlightShards += fp.InFlightShards
	}
	ps.InFlightQueries += int(e.inFlight.Load())
	ps.InFlightShards += int(e.inShards.Load())
	return ps
}

// totalWorkers is the fan-out bound for the sharding layer's own
// dispatch loops.
func (e *Engine) totalWorkers() int { return e.subWorkers * e.p }

// track mirrors pathenum.Engine.track for phased executions.
func (e *Engine) track(parallelism int) func() {
	e.inFlight.Add(1)
	var shards int64
	if parallelism > 1 {
		shards = int64(parallelism)
		e.inShards.Add(shards)
	}
	return func() {
		e.inFlight.Add(-1)
		if shards != 0 {
			e.inShards.Add(-shards)
		}
	}
}

// Insert routes the edge to its owning structure: the full image always
// applies it (and its dedup verdict gates the rest), a co-owned edge also
// lands in the owner's sub-engine, and a cut edge appends to the ordered
// pair's cut list and boundary set. The whole update holds the engine
// write lock, so captures see every constituent at the same edge set.
func (e *Engine) Insert(from, to pathenum.VertexID) (bool, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	added, err := e.fallback.Insert(from, to)
	if err != nil || !added {
		return added, err
	}
	a, b := int(e.owners[from]), int(e.owners[to])
	if a == b {
		if e.subs[a] != e.fallback {
			if _, serr := e.subs[a].Insert(from, to); serr != nil {
				return true, fmt.Errorf("shard %d insert: %w", a, serr)
			}
		}
		return true, nil
	}
	e.cuts[a][b] = append(e.cuts[a][b], graph.Edge{From: from, To: to})
	e.cutCount[a][b]++
	e.boundary[a][b][to] = struct{}{}
	return true, nil
}

// Flush forwards to every constituent (a no-op under lockstep
// publishing, kept for surface parity).
func (e *Engine) Flush() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.fallback.Flush(); err != nil {
		return err
	}
	for _, s := range e.subs {
		if s == e.fallback {
			continue
		}
		if err := s.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// routeKind classifies a query's execution path.
type routeKind int

const (
	routeIntra  routeKind = iota // endpoints co-owned
	routeCross                   // endpoints in different shards
	routeSingle                  // constrained: full-image engine wholesale
)

type route struct {
	kind routeKind
	a, b int
	// fallbackNeeded reports that the shard-local phase is not provably
	// exhaustive and a filtered full-image remainder phase must run.
	fallbackNeeded bool
}

// view is one consistent capture of the partitioned image: all
// constituent graphs plus the cut structures, taken under one read lock
// opposite Insert's write lock.
type view struct {
	full     *pathenum.Graph
	subs     []*pathenum.Graph
	cuts     [][][]graph.Edge
	cutCount [][]int
}

func (e *Engine) capture() *view {
	e.mu.RLock()
	defer e.mu.RUnlock()
	v := &view{
		full:     e.fallback.Graph(),
		subs:     make([]*pathenum.Graph, e.p),
		cuts:     make([][][]graph.Edge, e.p),
		cutCount: make([][]int, e.p),
	}
	for i, s := range e.subs {
		v.subs[i] = s.Graph()
	}
	for a := 0; a < e.p; a++ {
		v.cuts[a] = make([][]graph.Edge, e.p)
		copy(v.cuts[a], e.cuts[a])
		v.cutCount[a] = make([]int, e.p)
		copy(v.cutCount[a], e.cutCount[a])
	}
	return v
}

// classify validates q against the full image and routes it. The
// remainder-emptiness proofs: an intra-A path can only leave A through an
// out-cut edge and return through an in-cut edge, so either count being
// zero confines it; a cross A→B path has owner shape A⁺B⁺ whenever every
// A out-cut edge lands in B (the path cannot reach a third shard first)
// and B has no out-cut edges (once in B it stays).
func (e *Engine) classify(v *view, q core.Query, constrained bool) (route, error) {
	if err := q.Validate(v.full); err != nil {
		return route{}, err
	}
	if constrained {
		return route{kind: routeSingle}, nil
	}
	a, b := int(e.owners[q.S]), int(e.owners[q.T])
	if a == b {
		out, in := 0, 0
		for x := 0; x < e.p; x++ {
			out += v.cutCount[a][x]
			in += v.cutCount[x][a]
		}
		return route{kind: routeIntra, a: a, b: a, fallbackNeeded: out > 0 && in > 0}, nil
	}
	outOnlyToB := true
	for x := 0; x < e.p; x++ {
		if x != b && v.cutCount[a][x] > 0 {
			outOnlyToB = false
			break
		}
	}
	bOut := 0
	for x := 0; x < e.p; x++ {
		bOut += v.cutCount[b][x]
	}
	return route{kind: routeCross, a: a, b: b, fallbackNeeded: !(outOnlyToB && bOut == 0)}, nil
}

// optionsOf lowers a Request to executor options (Emit stays nil).
func optionsOf(req pathenum.Request) pathenum.Options {
	return pathenum.Options{
		Method:         req.Method,
		Tau:            req.Tau,
		Limit:          req.Limit,
		Timeout:        req.Timeout,
		Predicate:      req.Predicate,
		PredicateToken: req.PredicateToken,
		Oracle:         req.Oracle,
		Parallelism:    req.Parallelism,
	}
}

// requestFrom raises (q, opts) to the streaming surface (Emit handled by
// the caller).
func requestFrom(q core.Query, opts pathenum.Options) pathenum.Request {
	return pathenum.Request{
		S: q.S, T: q.T, K: q.K,
		Method:         opts.Method,
		Tau:            opts.Tau,
		Limit:          opts.Limit,
		Timeout:        opts.Timeout,
		Predicate:      opts.Predicate,
		PredicateToken: opts.PredicateToken,
		Oracle:         opts.Oracle,
		Parallelism:    opts.Parallelism,
	}
}

// oracleFor returns o unless it is version-aware and stale for g.
func oracleFor(o pathenum.DistanceOracle, g *pathenum.Graph) pathenum.DistanceOracle {
	if o == nil {
		return nil
	}
	if v, ok := o.(core.GraphValidator); ok && v.ValidFor(g) != nil {
		return nil
	}
	return o
}

// Stream executes req against the partitioned image with the same
// iteration contract as pathenum.Engine.Stream: fresh paths or one
// terminal error, OnResult fired exactly once after the run settles,
// the view captured at the first pull.
func (e *Engine) Stream(ctx context.Context, req pathenum.Request) iter.Seq2[pathenum.Path, error] {
	return func(yield func(pathenum.Path, error) bool) {
		v := e.capture()
		constrained := req.Accumulate != nil || req.Sequence != nil
		r, err := e.classify(v, req.Query(), constrained)
		if err != nil {
			yield(nil, err)
			return
		}
		e.m.observe(r)
		for p, serr := range e.streamRouted(ctx, v, r, req) {
			if !yield(p, serr) {
				return
			}
		}
	}
}

// streamRouted dispatches a classified request: wholesale delegation for
// the single-engine routes, the two-phase runner otherwise.
func (e *Engine) streamRouted(ctx context.Context, v *view, r route, req pathenum.Request) iter.Seq2[pathenum.Path, error] {
	switch {
	case r.kind == routeSingle:
		return e.fallback.Stream(ctx, req)
	case r.kind == routeIntra && !r.fallbackNeeded:
		// The untouched engine spine: pooled sessions, frontier cache,
		// shard-local oracle. At P=1 this is every query.
		return e.subs[r.a].Stream(ctx, req)
	default:
		return func(yield func(pathenum.Path, error) bool) {
			e.runPhased(ctx, v, r, req, yield)
		}
	}
}

// runPhased executes a routed query in two phases against the captured
// view: the shard-local phase (sub-image enumeration for intra, the
// boundary join for cross), then — when the cut structure does not prove
// the first phase exhaustive — the filtered full-image remainder. Both
// phases run engine-less on the captured graphs, so a concurrent Insert
// cannot desynchronize them; Limit, Timeout and Completed span the
// phases as one run, and the combined Result reaches req.OnResult once.
func (e *Engine) runPhased(ctx context.Context, v *view, r route, req pathenum.Request, yield func(pathenum.Path, error) bool) {
	merged := e.fallback.MergeOptions(optionsOf(req))
	merged.Emit = nil
	defer e.track(merged.Parallelism)()
	start := time.Now()
	var deadline time.Time
	if merged.Timeout > 0 {
		deadline = start.Add(merged.Timeout)
	}

	combined := &core.Result{Query: req.Query(), Completed: true}
	var emitted uint64
	stopped := false
	if req.OnResult != nil {
		defer func() { req.OnResult(combined) }()
	}
	defer func() {
		combined.Counters.Results = emitted
		if stopped || ctx.Err() != nil {
			combined.Completed = false
		}
	}()

	deliver := func(p pathenum.Path) bool {
		if combined.Timings.FirstPath == 0 {
			combined.Timings.FirstPath = time.Since(start)
		}
		emitted++
		if !yield(p, nil) {
			stopped = true
			return false
		}
		if merged.Limit > 0 && emitted >= merged.Limit {
			stopped = true
			return false
		}
		return true
	}
	remaining := func() (time.Duration, bool) {
		if deadline.IsZero() {
			return 0, true
		}
		d := time.Until(deadline)
		return d, d > 0
	}
	mergeRes := func(pr *pathenum.Result) {
		if pr == nil {
			return
		}
		combined.Counters.EdgesAccessed += pr.Counters.EdgesAccessed
		combined.Counters.InvalidPartials += pr.Counters.InvalidPartials
		combined.Timings.BFS += pr.Timings.BFS
		combined.Timings.Build += pr.Timings.Build
		combined.Timings.Optimize += pr.Timings.Optimize
		combined.Timings.Enumerate += pr.Timings.Enumerate
		combined.IndexEdges += pr.IndexEdges
		combined.IndexVertices += pr.IndexVertices
		combined.IndexBytes += pr.IndexBytes
		if !pr.Completed {
			combined.Completed = false
		}
	}

	switch r.kind {
	case routeIntra:
		// Phase A: all paths confined to the owner's sub-image. Every
		// emitted path is delivered, so the outer limit passes through.
		d, ok := remaining()
		if !ok {
			combined.Completed = false
			return
		}
		phaseReq := requestFrom(req.Query(), merged)
		phaseReq.Oracle = nil // merged oracle is version-bound to the full image
		phaseReq.Timeout = d
		phaseReq.Buffer = req.Buffer
		var pres *pathenum.Result
		phaseReq.OnResult = func(r *pathenum.Result) { pres = r }
		for p, serr := range pathenum.Stream(ctx, v.subs[r.a], phaseReq) {
			if serr != nil {
				combined.Completed = false
				yield(nil, serr)
				return
			}
			if !deliver(p) {
				break
			}
		}
		if pres != nil {
			combined.Plan = pres.Plan
			mergeRes(pres)
		}
	case routeCross:
		// Phase A: the boundary join over the single-crossing class.
		cj := &crossJoin{
			gA: v.subs[r.a], gB: v.subs[r.b], cuts: v.cuts[r.a][r.b],
			s: req.S, t: req.T, k: req.K,
			pred: merged.Predicate, ctx: ctx, deadline: deadline,
			emit: func(p []graph.VertexID) bool {
				cp := make(pathenum.Path, len(p))
				copy(cp, p)
				return deliver(cp)
			},
		}
		cj.run()
		combined.Plan.Method = core.MethodJoin
		combined.JoinStats = cj.stats
		combined.Counters.EdgesAccessed += cj.counters.EdgesAccessed
		combined.Timings.Enumerate += cj.stats.BuildTime + cj.stats.ProbeTime
		if cj.stopped && !stopped {
			combined.Completed = false // ctx or deadline ended the join early
			return
		}
	}
	if stopped || !r.fallbackNeeded {
		return
	}

	// Phase B: the remainder — full-image enumeration filtered to the
	// owner shapes phase A did not cover. Unlimited inside (the filter
	// drops covered shapes before they count); the outer limit stops the
	// stream through deliver.
	d, ok := remaining()
	if !ok {
		combined.Completed = false
		return
	}
	e.m.fallbackRuns.Inc()
	fullReq := requestFrom(req.Query(), merged)
	fullReq.Limit = 0
	fullReq.Timeout = d
	fullReq.Buffer = req.Buffer
	fullReq.Oracle = oracleFor(merged.Oracle, v.full)
	if fullReq.Oracle == nil {
		fullReq.Oracle = oracleFor(e.fallback.Oracle(), v.full)
	}
	var fres *pathenum.Result
	fullReq.OnResult = func(r *pathenum.Result) { fres = r }
	keep := e.remainderFilter(r)
	for p, serr := range pathenum.Stream(ctx, v.full, fullReq) {
		if serr != nil {
			combined.Completed = false
			yield(nil, serr)
			return
		}
		if !keep(p) {
			continue
		}
		if !deliver(p) {
			break
		}
	}
	mergeRes(fres)
}

// remainderFilter returns the phase-B admission predicate: keep exactly
// the paths whose owner shape phase A did not enumerate. Intra-A covered
// A⁺ (every vertex owned by A); cross A→B covered A⁺B⁺ (a single
// ownership transition on a cut edge). Disjoint by construction, so the
// two phases emit every path exactly once.
func (e *Engine) remainderFilter(r route) func(pathenum.Path) bool {
	if r.kind == routeIntra {
		a := int32(r.a)
		return func(p pathenum.Path) bool {
			for _, x := range p {
				if e.owners[x] != a {
					return true
				}
			}
			return false
		}
	}
	a, b := int32(r.a), int32(r.b)
	return func(p pathenum.Path) bool {
		i := 0
		for i < len(p) && e.owners[p[i]] == a {
			i++
		}
		for _, x := range p[i:] {
			if e.owners[x] != b {
				return true
			}
		}
		return false
	}
}

// Execute runs one query with the constituent defaults.
func (e *Engine) Execute(q pathenum.Query) (*pathenum.Result, error) {
	return e.ExecuteWith(context.Background(), q, pathenum.Options{})
}

// ExecuteWith is the callback twin of Stream: confined intra queries
// delegate straight to the owner shard's ExecuteWith (pooled session,
// reused emit buffer — the untouched spine), everything else consumes
// the phased stream, feeding opts.Emit with the fresh path copies the
// stream yields.
func (e *Engine) ExecuteWith(ctx context.Context, q pathenum.Query, opts pathenum.Options) (*pathenum.Result, error) {
	v := e.capture()
	r, err := e.classify(v, q, false)
	if err != nil {
		return nil, err
	}
	e.m.observe(r)
	if r.kind == routeIntra && !r.fallbackNeeded {
		return e.subs[r.a].ExecuteWith(ctx, q, opts)
	}
	req := requestFrom(q, opts)
	var res *pathenum.Result
	req.OnResult = func(r *pathenum.Result) { res = r }
	emit := opts.Emit
	for p, serr := range e.streamRouted(ctx, v, r, req) {
		if serr != nil {
			return nil, serr
		}
		if emit != nil && !emit(p) {
			break
		}
	}
	return res, nil
}

// ExecuteAll runs the queries across the shard pools in input order.
func (e *Engine) ExecuteAll(queries []pathenum.Query) ([]*pathenum.Result, []error) {
	return e.ExecuteAllContext(context.Background(), queries, pathenum.Options{})
}

// ExecuteAllContext mirrors pathenum.Engine.ExecuteAllContext: an
// independent fan-out bounded by the aggregate worker count, fail-fast
// on ctx.
func (e *Engine) ExecuteAllContext(ctx context.Context, queries []pathenum.Query, opts pathenum.Options) ([]*pathenum.Result, []error) {
	results := make([]*pathenum.Result, len(queries))
	errs := make([]error, len(queries))
	var wg sync.WaitGroup
	sem := make(chan struct{}, e.totalWorkers())
dispatch:
	for i, q := range queries {
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			for j := i; j < len(queries); j++ {
				errs[j] = ctx.Err()
			}
			break dispatch
		}
		wg.Add(1)
		go func(i int, q pathenum.Query) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i], errs[i] = e.ExecuteWith(ctx, q, opts)
		}(i, q)
	}
	wg.Wait()
	return results, errs
}

// ExecuteBatch routes a batch by shard: queries confined to one shard
// run through that shard's shared-computation batch subsystem (dedup,
// shared frontiers) as one sub-batch, concurrently across shards; the
// boundary-involved remainder fans out through the phased path. The
// merged stats sum the per-shard planner reports, with routed singles
// accounted as naive singletons.
func (e *Engine) ExecuteBatch(ctx context.Context, queries []pathenum.Query, opts pathenum.Options) ([]*pathenum.Result, []error, *pathenum.BatchStats) {
	start := time.Now()
	results := make([]*pathenum.Result, len(queries))
	errs := make([]error, len(queries))
	stats := &pathenum.BatchStats{Queries: len(queries)}
	v := e.capture()
	perShard := make(map[int][]int)
	var singles []int
	for i, q := range queries {
		r, err := e.classify(v, q, false)
		if err != nil {
			errs[i] = err
			stats.Invalid++
			continue
		}
		e.m.observe(r)
		if r.kind == routeIntra && !r.fallbackNeeded {
			perShard[r.a] = append(perShard[r.a], i)
		} else {
			singles = append(singles, i)
		}
	}

	var (
		wg sync.WaitGroup
		sm sync.Mutex // guards stats merging
	)
	for s, idxs := range perShard {
		wg.Add(1)
		go func(s int, idxs []int) {
			defer wg.Done()
			qs := make([]pathenum.Query, len(idxs))
			for j, i := range idxs {
				qs[j] = queries[i]
			}
			res, es, st := e.subs[s].ExecuteBatch(ctx, qs, opts)
			for j, i := range idxs {
				results[i], errs[i] = res[j], es[j]
			}
			if st != nil {
				sm.Lock()
				addBatchStats(stats, st)
				sm.Unlock()
			}
		}(s, idxs)
	}
	sem := make(chan struct{}, e.totalWorkers())
	for _, i := range singles {
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			errs[i] = ctx.Err()
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i], errs[i] = e.ExecuteWith(ctx, queries[i], opts)
		}(i)
	}
	wg.Wait()
	stats.Unique += len(singles)
	stats.Groups += len(singles)
	stats.Singletons += len(singles)
	stats.BFSPassesNaive += 2 * len(singles)
	stats.BFSPasses += 2 * len(singles)
	stats.BFSPassesRun += 2 * len(singles)
	stats.Elapsed = time.Since(start)
	return results, errs, stats
}

// addBatchStats folds one shard sub-batch's planner report into the
// merged stats (Queries/Invalid/Elapsed are batch-level and excluded).
func addBatchStats(dst, src *pathenum.BatchStats) {
	dst.Unique += src.Unique
	dst.Deduped += src.Deduped
	dst.Groups += src.Groups
	dst.SharedSourceGroups += src.SharedSourceGroups
	dst.SharedTargetGroups += src.SharedTargetGroups
	dst.Singletons += src.Singletons
	dst.BFSPassesNaive += src.BFSPassesNaive
	dst.BFSPasses += src.BFSPasses
	dst.BFSPassesSaved += src.BFSPassesSaved
	dst.BFSPassesRun += src.BFSPassesRun
	dst.FrontierCacheHits += src.FrontierCacheHits
	dst.FrontierCacheMisses += src.FrontierCacheMisses
	dst.SharedFrontiers += src.SharedFrontiers
	dst.TwoSidedFrontiers += src.TwoSidedFrontiers
	dst.SharedBFS += src.SharedBFS
}

// StreamBatch delivers per-query results in completion order with the
// BatchItem contract of pathenum.Engine.StreamBatch. Routing is
// per-query (each item takes its classified path); cross-shard batches
// do not yet share computation across the boundary, so the trailing
// stats item reports the batch shape only.
func (e *Engine) StreamBatch(ctx context.Context, queries []pathenum.Query, opts pathenum.Options) iter.Seq[pathenum.BatchItem] {
	return func(yield func(pathenum.BatchItem) bool) {
		start := time.Now()
		ctx, cancel := context.WithCancel(ctx)
		defer cancel()
		type settled struct {
			i   int
			res *pathenum.Result
			err error
		}
		// Full-size buffer: workers never block on a slow consumer, and
		// the abandon path can drain without deadlock.
		ch := make(chan settled, len(queries))
		go func() {
			defer close(ch)
			var wg sync.WaitGroup
			sem := make(chan struct{}, e.totalWorkers())
		dispatch:
			for i, q := range queries {
				select {
				case sem <- struct{}{}:
				case <-ctx.Done():
					for j := i; j < len(queries); j++ {
						ch <- settled{i: j, err: ctx.Err()}
					}
					break dispatch
				}
				wg.Add(1)
				go func(i int, q pathenum.Query) {
					defer wg.Done()
					defer func() { <-sem }()
					res, err := e.ExecuteWith(ctx, q, opts)
					ch <- settled{i: i, res: res, err: err}
				}(i, q)
			}
			wg.Wait()
		}()
		defer func() {
			cancel()
			for range ch { //nolint:revive // drain until the dispatcher exits
			}
		}()
		for s := range ch {
			if !yield(pathenum.BatchItem{Index: s.i, Result: s.res, Err: s.err}) {
				return
			}
		}
		yield(pathenum.BatchItem{Index: -1, Stats: &pathenum.BatchStats{
			Queries: len(queries),
			Unique:  len(queries),
			Elapsed: time.Since(start),
		}})
	}
}
