package core

import (
	"testing"
	"testing/quick"

	"pathenum/internal/gen"
	"pathenum/internal/graph"
)

// Adversarial-topology tests: graph shapes that stress specific paths of
// the index and enumerators.

// TestCompleteGraph: densest input; the number of s-t paths of length
// <= k in K_n is sum over L=1..k of P(n-2, L-1) arrangements.
func TestCompleteGraph(t *testing.T) {
	n := 7
	g := gen.Complete(n)
	// Count via brute force once, then check every method agrees.
	for k := 1; k <= 4; k++ {
		q := Query{S: 0, T: 1, K: k}
		want := uint64(len(brutePathsLocal(g, 0, 1, k)))
		// Closed form: sum_{L=1}^{k} product_{i=0}^{L-2} (n-2-i).
		var expect uint64 = 0
		for L := 1; L <= k; L++ {
			term := uint64(1)
			for i := 0; i < L-1; i++ {
				term *= uint64(n - 2 - i)
			}
			expect += term
		}
		if want != expect {
			t.Fatalf("k=%d: brute %d != closed form %d", k, want, expect)
		}
		for _, m := range []Method{MethodDFS, MethodJoin, MethodAuto} {
			res, err := Run(g, q, Options{Method: m})
			if err != nil {
				t.Fatal(err)
			}
			if res.Counters.Results != want {
				t.Fatalf("k=%d %v: %d, want %d", k, m, res.Counters.Results, want)
			}
		}
	}
}

// TestStarGraph: s at the hub; every leaf at distance 1, but leaves have
// no outgoing edges, so only the direct s->t edge survives.
func TestStarGraph(t *testing.T) {
	n := 50
	var edges []graph.Edge
	for i := 1; i < n; i++ {
		edges = append(edges, graph.Edge{From: 0, To: int32(i)})
	}
	g, err := graph.NewGraph(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	count, err := Count(g, Query{S: 0, T: 7, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if count != 1 {
		t.Fatalf("star: %d paths, want 1", count)
	}
	// Leaf to leaf: unreachable.
	count, err = Count(g, Query{S: 3, T: 7, K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if count != 0 {
		t.Fatalf("leaf-to-leaf: %d paths, want 0", count)
	}
}

// TestBipartiteParity: on a directed bipartite graph every s-t walk has a
// fixed length parity; the index must not hallucinate odd-length paths.
func TestBipartiteParity(t *testing.T) {
	// Layers A = {0..4}, B = {5..9}; edges A->B and B->A.
	var edges []graph.Edge
	for a := 0; a < 5; a++ {
		for b := 5; b < 10; b++ {
			edges = append(edges, graph.Edge{From: int32(a), To: int32(b)})
			edges = append(edges, graph.Edge{From: int32(b), To: int32(a)})
		}
	}
	g, err := graph.NewGraph(10, edges)
	if err != nil {
		t.Fatal(err)
	}
	// s and t both in A: all paths have even length.
	ix := mustIndex(t, g, Query{S: 0, T: 1, K: 5})
	EnumerateDFS(ix, RunControl{Emit: func(p []graph.VertexID) bool {
		if (len(p)-1)%2 != 0 {
			t.Fatalf("odd-length path in bipartite graph: %v", p)
		}
		return true
	}}, nil)
	// Cross sides: all odd.
	ix2 := mustIndex(t, g, Query{S: 0, T: 7, K: 5})
	EnumerateDFS(ix2, RunControl{Emit: func(p []graph.VertexID) bool {
		if (len(p)-1)%2 != 1 {
			t.Fatalf("even-length cross path: %v", p)
		}
		return true
	}}, nil)
}

// TestLongCycle: a single directed n-cycle has exactly one s-t path, of
// length dist(s,t), visible only when k is large enough.
func TestLongCycle(t *testing.T) {
	n := 40
	g := gen.Cycle(n)
	for _, tc := range []struct {
		t    graph.VertexID
		k    int
		want uint64
	}{
		{10, 9, 0},
		{10, 10, 1},
		{10, 39, 1},
		{39, 38, 0},
		{39, 39, 1},
	} {
		count, err := Count(g, Query{S: 0, T: tc.t, K: tc.k})
		if err != nil {
			t.Fatal(err)
		}
		if count != tc.want {
			t.Fatalf("cycle q(0,%d,%d): %d paths, want %d", tc.t, tc.k, count, tc.want)
		}
	}
}

// TestGridCounts: 2x2 directed grid with both directions; cross-corner
// paths are easy to enumerate by hand.
func TestGridCounts(t *testing.T) {
	g := gen.Grid(2, 2)
	// Vertices: 0 1 / 2 3. Paths 0->3 with k=2: 0,1,3 and 0,2,3.
	count, err := Count(g, Query{S: 0, T: 3, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("grid k=2: %d, want 2", count)
	}
	// k=4 adds no simple path (any longer route revisits a vertex in 2x2).
	count, err = Count(g, Query{S: 0, T: 3, K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("grid k=4: %d, want 2", count)
	}
}

// TestQuickMethodsAgree drives testing/quick over random seeds: DFS, JOIN
// and the planner agree on path counts everywhere.
func TestQuickMethodsAgree(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.ErdosRenyi(24, 70, seed)
		q := Query{S: 0, T: 12, K: 4}
		a, err := Run(g, q, Options{Method: MethodDFS})
		if err != nil {
			return false
		}
		b, err := Run(g, q, Options{Method: MethodJoin})
		if err != nil {
			return false
		}
		c, err := Run(g, q, Options{Method: MethodAuto})
		if err != nil {
			return false
		}
		return a.Counters.Results == b.Counters.Results &&
			b.Counters.Results == c.Counters.Results
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEstimatorBounds: walk count always >= path count; estimate is
// symmetric across the two DPs.
func TestQuickEstimatorBounds(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.ErdosRenyi(18, 54, seed)
		q := Query{S: 1, T: 9, K: 4}
		ix, err := BuildIndex(g, q)
		if err != nil {
			return false
		}
		est := FullEstimate(ix)
		var ctr Counters
		EnumerateDFS(ix, RunControl{}, &ctr)
		if est.Walks < ctr.Results {
			return false
		}
		return est.SumFromS[q.K] == est.SumToT[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickIndexSubsetOfGraph: every index edge is a graph edge (or the
// padding loop), under random inputs.
func TestQuickIndexSubsetOfGraph(t *testing.T) {
	f := func(seed int64) bool {
		g := gen.ErdosRenyi(20, 60, seed)
		q := Query{S: 2, T: 15, K: 4}
		ix, err := BuildIndex(g, q)
		if err != nil || ix.Empty() {
			return err == nil
		}
		ok := true
		for i := 0; i <= q.K && ok; i++ {
			ix.ForEachLevel(i, func(v graph.VertexID) {
				for _, w := range ix.OutUpTo(v, q.K) {
					if v == q.T && w == q.T {
						continue // padding loop
					}
					if !g.HasEdge(v, w) {
						ok = false
					}
				}
			})
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestIsolatedEndpoints: queries touching isolated vertices return zero
// results without error.
func TestIsolatedEndpoints(t *testing.T) {
	g, err := graph.NewGraph(5, []graph.Edge{{From: 0, To: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []Query{{S: 4, T: 0, K: 3}, {S: 0, T: 4, K: 3}, {S: 3, T: 4, K: 3}} {
		count, err := Count(g, q)
		if err != nil {
			t.Fatalf("%v: %v", q, err)
		}
		if count != 0 {
			t.Fatalf("%v: %d paths from/to isolated vertex", q, count)
		}
	}
}
