package core

import (
	"fmt"

	"pathenum/internal/graph"
)

// DistanceOracle abstracts the global offline index of §7.5 (future work):
// a source of lower bounds on directed distances. LowerBound(u,v) must
// never exceed the true distance d(u,v) in the graph the queries run on,
// and may return a negative value to certify that v is unreachable from u.
// internal/landmark provides the landmark-based implementation.
type DistanceOracle interface {
	LowerBound(u, v graph.VertexID) int32
}

// GraphValidator is implemented by derived structures tied to one graph
// version — the landmark oracle does. ValidFor returns nil when the
// structure may serve g, and an error (graph.ErrStaleEpoch for an older
// epoch of the same lineage) otherwise. Execution checks it before every
// oracle use: edge insertions shrink true distances, so a stale oracle's
// "lower bounds" would silently prune vertices that now belong to the
// index. Oracles that do not implement GraphValidator are trusted as-is;
// keeping them in sync with the graph stays the caller's responsibility.
type GraphValidator interface {
	ValidFor(g *graph.Graph) error
}

// validateOracle rejects a version-aware oracle that no longer matches g.
func validateOracle(oracle DistanceOracle, g *graph.Graph) error {
	if v, ok := oracle.(GraphValidator); ok {
		if err := v.ValidFor(g); err != nil {
			return fmt.Errorf("core: distance oracle unusable: %w", err)
		}
	}
	return nil
}

// runPruned is the oracle-accelerated variant of bfsScratch.run: both
// searches skip expanding any vertex whose distance-so-far plus the
// oracle's lower bound to the remaining endpoint already exceeds k.
//
// Soundness: such a vertex is provably outside the partition X, and any
// vertex on a shortest path from s (or to t) of an X member is itself in X
// (the triangle inequality argument in the landmark package doc), so
// pruning it cannot change the label of any vertex the index keeps. The
// resulting index is identical to the unpruned one; the tests verify this
// property on randomized inputs.
func (b *bfsScratch) runPruned(g *graph.Graph, q Query, pred EdgePredicate, oracle DistanceOracle) {
	b.runForward(g, q, pred, oracle)
	b.runBackward(g, q, pred, oracle)
}

// BuildIndexOracle constructs the light-weight index with oracle-pruned
// BFS passes. The oracle must have been built on g (or on a subgraph view
// whose distances are no smaller) — version-aware oracles (GraphValidator)
// are checked and a stale one is rejected with graph.ErrStaleEpoch; with a
// nil oracle this is BuildIndex.
func BuildIndexOracle(g *graph.Graph, q Query, oracle DistanceOracle) (*Index, error) {
	if err := q.Validate(g); err != nil {
		return nil, err
	}
	if err := validateOracle(oracle, g); err != nil {
		return nil, err
	}
	if oracle != nil {
		// Infeasibility certificate: no BFS at all (§7.5's response-time
		// motivation).
		if lb := oracle.LowerBound(q.S, q.T); lb < 0 || int(lb) > q.K {
			ix := &Index{g: g, q: q, k: q.K, empty: true}
			ix.cSize = make([]int64, q.K+1)
			ix.sumIt = make([]uint64, q.K)
			return ix, nil
		}
	}
	scratch := newBFSScratch(g.NumVertices())
	scratch.runPruned(g, q, nil, oracle)
	return buildIndexFrom(g, q, scratch, nil), nil
}
