package core

import (
	"context"
	"errors"
	"testing"

	"pathenum/internal/gen"
	"pathenum/internal/graph"
)

// staleCheckOracle is a DistanceOracle pinned to one graph version via
// core.GraphValidator, mimicking the landmark oracle's enforcement without
// importing it.
type staleCheckOracle struct {
	ver graph.Version
}

func (o *staleCheckOracle) LowerBound(u, v graph.VertexID) int32 { return 0 }
func (o *staleCheckOracle) ValidFor(g *graph.Graph) error        { return o.ver.ValidFor(g.Version()) }

// mustInsert bumps d's epoch by inserting some edge not yet present.
func mustInsert(t *testing.T, d *graph.Dynamic) {
	t.Helper()
	n := graph.VertexID(d.NumVertices())
	for from := graph.VertexID(0); from < n; from++ {
		for to := graph.VertexID(0); to < n; to++ {
			if ok, err := d.Insert(from, to); err != nil {
				t.Fatal(err)
			} else if ok {
				return
			}
		}
	}
	t.Fatal("graph is complete; nothing to insert")
}

// TestStaleFrontierRejected: a frontier built on an earlier snapshot of a
// Dynamic lineage must be rejected with graph.ErrStaleEpoch once the graph
// advances — the inserted edge could create paths the stale labeling
// prunes.
func TestStaleFrontierRejected(t *testing.T) {
	d := graph.NewDynamic(gen.BarabasiAlbert(30, 2, 4))
	snap0 := d.Snapshot()
	q := Query{S: 0, T: 9, K: 4}

	fwd, err := NewForwardFrontier(snap0, q.S, q.K, nil, PredicateNone)
	if err != nil {
		t.Fatal(err)
	}
	// Same-epoch snapshots are interchangeable: a second materialization
	// of the identical state must accept the frontier.
	if _, err := NewSession(d.Snapshot(), nil).RunShared(context.Background(), q, Options{}, fwd, nil); err != nil {
		t.Fatalf("same-epoch snapshot rejected the frontier: %v", err)
	}

	mustInsert(t, d)
	snap1 := d.Snapshot()
	_, err = NewSession(snap1, nil).RunShared(context.Background(), q, Options{}, fwd, nil)
	if !errors.Is(err, graph.ErrStaleEpoch) {
		t.Fatalf("stale frontier: got %v, want graph.ErrStaleEpoch", err)
	}
	// Rebuilt on the current snapshot it works again.
	fwd1, err := NewForwardFrontier(snap1, q.S, q.K, nil, PredicateNone)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSession(snap1, nil).RunShared(context.Background(), q, Options{}, fwd1, nil); err != nil {
		t.Fatalf("fresh frontier rejected: %v", err)
	}
}

// TestStaleOracleRejected: the executor must refuse to consult a
// version-aware oracle built on an earlier epoch — enforcing what used to
// be only a doc comment ("rebuild after edge insertions") — for both the
// session pipeline and BuildIndexOracle.
func TestStaleOracleRejected(t *testing.T) {
	d := graph.NewDynamic(gen.BarabasiAlbert(30, 2, 5))
	snap0 := d.Snapshot()
	oracle := &staleCheckOracle{ver: snap0.Version()}
	q := Query{S: 0, T: 9, K: 4}

	if _, err := Run(snap0, q, Options{Oracle: oracle}); err != nil {
		t.Fatalf("current oracle rejected: %v", err)
	}
	if _, err := BuildIndexOracle(snap0, q, oracle); err != nil {
		t.Fatalf("current oracle rejected by BuildIndexOracle: %v", err)
	}

	mustInsert(t, d)
	snap1 := d.Snapshot()
	if _, err := Run(snap1, q, Options{Oracle: oracle}); !errors.Is(err, graph.ErrStaleEpoch) {
		t.Fatalf("stale oracle via Run: got %v, want graph.ErrStaleEpoch", err)
	}
	if _, err := NewSession(snap1, oracle).RunContext(context.Background(), q, Options{}); !errors.Is(err, graph.ErrStaleEpoch) {
		t.Fatalf("stale session oracle: got %v, want graph.ErrStaleEpoch", err)
	}
	if _, err := BuildIndexOracle(snap1, q, oracle); !errors.Is(err, graph.ErrStaleEpoch) {
		t.Fatalf("stale oracle via BuildIndexOracle: got %v, want graph.ErrStaleEpoch", err)
	}
}
