package core

import (
	"fmt"

	"pathenum/internal/graph"
)

// JoinStats reports the materialization footprint of one Algorithm-6 run,
// feeding the partial-result memory numbers of Table 7.
type JoinStats struct {
	LeftTuples   int64 // |Ra| = results of Q[0:cut]
	RightTuples  int64 // |Rb| = results of Q[cut:k]
	PartialBytes int64 // bytes materialized for Ra plus Rb
}

// joinSearcher materializes one side of the cut with the index DFS of
// Algorithm 6 (procedure Search): it collects *walks* — no duplicate-vertex
// check — of a fixed vertex count; path validity is checked at join time,
// as §6.3 prescribes.
type joinSearcher struct {
	ix       *Index
	tuples   []graph.VertexID // flat storage, stride = tupleLen
	tupleLen int
	startPos int // absolute position of the first tuple vertex in Q
	buf      []graph.VertexID
	ctr      *Counters
	ctl      *RunControl
	ticker   uint32
	stopped  bool
}

func (js *joinSearcher) search() {
	depth := len(js.buf)
	if depth == js.tupleLen {
		js.tuples = append(js.tuples, js.buf...)
		return
	}
	js.ticker++
	if js.ticker%stopCheckInterval == 0 && js.ctl.ShouldStop != nil && js.ctl.ShouldStop() {
		js.stopped = true
		return
	}
	v := js.buf[depth-1]
	// Budget: k - i - L(M) - 1 where i is the sub-query start position.
	budget := js.ix.k - js.startPos - (depth - 1) - 1
	nbrs := js.ix.OutUpTo(v, budget)
	js.ctr.EdgesAccessed += uint64(len(nbrs))
	for _, w := range nbrs {
		js.buf = append(js.buf, w)
		js.search()
		js.buf = js.buf[:depth]
		if js.stopped {
			return
		}
	}
}

// EnumerateJoin runs the join on the index (Algorithm 6) with the given cut
// position in [1, k-1]: it materializes Ra = Q[0:cut] and Rb = Q[cut:k]
// with depth-first searches on the index, hash-joins them on the cut vertex
// and emits every joined tuple that is a valid simple path. It returns true
// when the run completed (no stop/limit) and fills stats when non-nil.
func EnumerateJoin(ix *Index, cut int, ctl RunControl, ctr *Counters, stats *JoinStats) (bool, error) {
	if ctr == nil {
		ctr = &Counters{}
	}
	if ix.Empty() {
		return true, nil
	}
	k := ix.k
	if cut < 1 || cut >= k {
		return false, fmt.Errorf("core: join cut %d out of range [1,%d]", cut, k-1)
	}

	// Phase 1: Ra = walks from s spanning positions 0..cut.
	left := &joinSearcher{
		ix:       ix,
		tupleLen: cut + 1,
		startPos: 0,
		buf:      make([]graph.VertexID, 0, cut+1),
		ctr:      ctr,
		ctl:      &ctl,
	}
	left.buf = append(left.buf, ix.q.S)
	left.search()
	if left.stopped {
		return false, nil
	}
	nLeft := int64(len(left.tuples) / (cut + 1))

	// Phase 2: C = distinct cut vertices of Ra; Rb = walks spanning
	// positions cut..k grouped by their first vertex.
	type rng struct{ lo, hi int64 }
	groups := make(map[graph.VertexID]rng)
	right := &joinSearcher{
		ix:       ix,
		tupleLen: k - cut + 1,
		startPos: cut,
		buf:      make([]graph.VertexID, 0, k-cut+1),
		ctr:      ctr,
		ctl:      &ctl,
	}
	stride := int64(cut + 1)
	rStride := int64(k - cut + 1)
	for i := int64(0); i < nLeft; i++ {
		v := left.tuples[i*stride+int64(cut)]
		if _, done := groups[v]; done {
			continue
		}
		lo := int64(len(right.tuples)) / rStride
		right.buf = right.buf[:0]
		right.buf = append(right.buf, v)
		right.search()
		if right.stopped {
			return false, nil
		}
		hi := int64(len(right.tuples)) / rStride
		groups[v] = rng{lo: lo, hi: hi}
	}
	nRight := int64(len(right.tuples)) / rStride
	if stats != nil {
		stats.LeftTuples = nLeft
		stats.RightTuples = nRight
		stats.PartialBytes = int64(len(left.tuples)+len(right.tuples)) * 4
	}

	// Phase 3: hash join on the cut vertex; validate and emit.
	joined := make([]graph.VertexID, 0, k+1)
	seen := make([]int32, ix.g.NumVertices())
	epoch := int32(0)
	for i := int64(0); i < nLeft; i++ {
		la := left.tuples[i*stride : (i+1)*stride]
		g := groups[la[cut]]
		for j := g.lo; j < g.hi; j++ {
			rb := right.tuples[j*rStride : (j+1)*rStride]
			joined = joined[:0]
			joined = append(joined, la...)
			joined = append(joined, rb[1:]...) // rb[0] == la[cut]
			epoch++
			if path, ok := validatePath(joined, ix.q.T, seen, epoch); ok {
				ctr.Results++
				if ctl.Emit != nil && !ctl.Emit(path) {
					return false, nil
				}
				if ctl.Limit > 0 && ctr.Results >= ctl.Limit {
					return false, nil
				}
			}
			if ctl.ShouldStop != nil {
				if epoch%stopCheckInterval == 0 && ctl.ShouldStop() {
					return false, nil
				}
			}
		}
	}
	return true, nil
}

// validatePath checks whether the padded-walk tuple r (k+1 vertices ending
// in t-padding) is a simple path, and returns the truncated path if so.
// Interior occurrences of s cannot arise (the index has no edges into s),
// so only duplicate detection up to the first t is required (Theorem 3.1).
func validatePath(r []graph.VertexID, t graph.VertexID, seen []int32, epoch int32) ([]graph.VertexID, bool) {
	for i, v := range r {
		if v == t {
			return r[:i+1], true
		}
		if seen[v] == epoch {
			return nil, false
		}
		seen[v] = epoch
	}
	// Index construction guarantees position k is t; defensive fallback.
	return nil, false
}
