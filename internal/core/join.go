package core

import (
	"fmt"
	"time"

	"pathenum/internal/graph"
)

// JoinStats reports the footprint of one Algorithm-6 run, feeding the
// partial-result memory numbers of Table 7. The join is tuple-at-a-time:
// only the build side is materialized (into hash buckets keyed by the cut
// vertex), while the probe side is generated lazily one walk at a time, so
// the memory bound is the build side plus a single in-flight probe walk.
type JoinStats struct {
	// LeftTuples / RightTuples count the walks of Ra = Q[0:cut] and
	// Rb = Q[cut:k] the run generated. The build side's count is
	// materialized; the probe side's walks existed one at a time (see
	// ProbeWalks) — on a stopped run the probe count measures how far the
	// lazy generator got, not a materialized set.
	LeftTuples  int64
	RightTuples int64
	// PartialBytes is the bytes actually materialized: the build side's
	// flat tuple storage and bucket indices plus the single in-flight
	// probe walk buffer.
	PartialBytes int64
	// BuildLeft reports which side was hashed: true means Ra was
	// materialized and Rb probed lazily, false the reverse.
	BuildLeft bool
	// BuildTuples is the number of walks materialized into the hash side.
	BuildTuples int64
	// ProbeWalks is the number of probe-side walks fully generated. A run
	// stopped after n emitted paths keeps it near n — the lazy probe DFS
	// expands no further half-side walks once stopped.
	ProbeWalks int64
	// BuildTime / ProbeTime split the enumeration phase at the join's
	// natural seam: materializing + bucketing the build side vs the lazy
	// probe (which, under a stream, includes consumer time between
	// pulls). Filled on every exit path, early stops included; the
	// observability layer exports them as the join_build / join_probe
	// stage histograms.
	BuildTime time.Duration
	ProbeTime time.Duration
}

// BuildSide selects which half of the cut EnumerateJoinSide materializes
// into hash buckets; the other half is probed tuple-at-a-time.
type BuildSide int

const (
	// BuildAuto materializes the smaller half per the Algorithm-5
	// estimator (|Q[0:cut]| vs |Q[cut:k]| at the cut).
	BuildAuto BuildSide = iota
	// BuildLeft materializes Ra = Q[0:cut] and probes Q[cut:k].
	BuildLeft
	// BuildRight materializes Rb = Q[cut:k] and probes Q[0:cut].
	BuildRight
)

// String implements fmt.Stringer.
func (s BuildSide) String() string {
	switch s {
	case BuildAuto:
		return "auto"
	case BuildLeft:
		return "left"
	case BuildRight:
		return "right"
	default:
		return fmt.Sprintf("BuildSide(%d)", int(s))
	}
}

// joinSearcher materializes one side of the cut with the index DFS of
// Algorithm 6 (procedure Search): it collects *walks* — no duplicate-vertex
// check — of a fixed vertex count; path validity is checked at join time,
// as §6.3 prescribes. The streaming join uses it only for the build side.
type joinSearcher struct {
	ix       *Index
	tuples   []graph.VertexID // flat storage, stride = tupleLen
	tupleLen int
	startPos int // absolute position of the first tuple vertex in Q
	buf      []graph.VertexID
	ctr      *Counters
	ctl      *RunControl
	ticker   uint32
	stopped  bool
}

func (js *joinSearcher) search() {
	depth := len(js.buf)
	if depth == js.tupleLen {
		js.tuples = append(js.tuples, js.buf...)
		return
	}
	js.ticker++
	if js.ticker%stopCheckInterval == 0 && js.ctl.ShouldStop != nil && js.ctl.ShouldStop() {
		js.stopped = true
		return
	}
	v := js.buf[depth-1]
	// Budget: k - i - L(M) - 1 where i is the sub-query start position.
	budget := js.ix.k - js.startPos - (depth - 1) - 1
	nbrs := js.ix.OutUpTo(v, budget)
	js.ctr.EdgesAccessed += uint64(len(nbrs))
	for _, w := range nbrs {
		js.buf = append(js.buf, w)
		js.search()
		js.buf = js.buf[:depth]
		if js.stopped {
			return
		}
	}
}

// joinEnumerator is the tuple-at-a-time join of Algorithm 6: the build
// side is materialized once into hash buckets keyed by the cut vertex,
// then the probe side's index DFS runs lazily — each completed probe walk
// is joined against its bucket, validated and emitted immediately, before
// the DFS advances. Under an unbuffered stream the Emit inside emitJoined
// is the consumer's yield, so the probe recursion suspends mid-walk
// between pulls and stops dead when the consumer leaves.
type joinEnumerator struct {
	ix  *Index
	cut int
	ctl *RunControl
	ctr *Counters

	buildLeft bool
	buildLen  int              // vertices per build tuple
	tuples    []graph.VertexID // build-side walks, flat, stride buildLen
	buckets   map[graph.VertexID][]int32
	order     []graph.VertexID // distinct cut vertices of Ra, probe order

	probeLen   int
	probeBuf   []graph.VertexID
	joined     []graph.VertexID
	seen       []int32
	vepoch     int32
	ticker     uint32
	probeWalks int64
	stopped    bool

	// buildTime/probeTime are stamped by the entry points around the two
	// phases (per run, not per tuple — the hot loops stay clock-free) and
	// copied out by fill.
	buildTime time.Duration
	probeTime time.Duration
}

// EnumerateJoin runs the tuple-at-a-time join on the index (Algorithm 6)
// with the given cut position in [1, k-1], materializing the smaller half
// per the Algorithm-5 estimator. Resolving that side runs FullEstimate —
// an O(k * |E(index)|) DP — so callers that already hold an Estimate (or
// sit in a timed loop) should pass Estimate.BuildSideAt's answer to
// EnumerateJoinSide instead, as the executor does via Plan.Build.
func EnumerateJoin(ix *Index, cut int, ctl RunControl, ctr *Counters, stats *JoinStats) (bool, error) {
	return EnumerateJoinSide(ix, cut, BuildAuto, ctl, ctr, stats)
}

// EnumerateJoinSide runs the join with an explicit build side: the chosen
// half is materialized with depth-first searches on the index and hashed
// on the cut vertex; the other half is generated lazily, one walk at a
// time, each joined walk validated (simple-path check, Theorem 3.1) and
// emitted before the probe advances — the first result is delivered after
// building only one side, and the memory bound is that side plus a single
// in-flight probe walk. Results and Counters.Results are identical for
// either side and match the materialize-then-probe formulation (only the
// emission order differs). It returns true when the run completed (no
// stop/limit) and fills stats — also on early stops — when non-nil.
func EnumerateJoinSide(ix *Index, cut int, side BuildSide, ctl RunControl, ctr *Counters, stats *JoinStats) (bool, error) {
	return enumerateJoinSideSeen(ix, cut, side, nil, ctl, ctr, stats)
}

// enumerateJoinSideSeen is EnumerateJoinSide with a caller-owned path
// validation buffer: seen must be zeroed and at least |V| long (the
// enumerator's epoch counter restarts at zero each run, so any zeroed
// slice is clean). A nil seen allocates a throwaway one — that is the
// public entry point's behavior; pooled sessions pass their own so the
// hot path stops paying a per-run O(|V|) make.
func enumerateJoinSideSeen(ix *Index, cut int, side BuildSide, seen []int32, ctl RunControl, ctr *Counters, stats *JoinStats) (bool, error) {
	if ctr == nil {
		ctr = &Counters{}
	}
	if ix.Empty() {
		return true, nil
	}
	k := ix.k
	if cut < 1 || cut >= k {
		return false, fmt.Errorf("core: join cut %d out of range [1,%d]", cut, k-1)
	}
	if side == BuildAuto {
		side = FullEstimate(ix).BuildSideAt(cut)
	}
	if seen == nil {
		seen = make([]int32, ix.g.NumVertices())
	}
	je := &joinEnumerator{
		ix:        ix,
		cut:       cut,
		ctl:       &ctl,
		ctr:       ctr,
		buildLeft: side == BuildLeft,
		buckets:   make(map[graph.VertexID][]int32),
		seen:      seen,
		joined:    make([]graph.VertexID, 0, k+1),
	}
	if je.buildLeft {
		je.buildLen, je.probeLen = cut+1, k-cut+1
	} else {
		je.buildLen, je.probeLen = k-cut+1, cut+1
	}
	je.probeBuf = make([]graph.VertexID, 0, je.probeLen)
	if stats != nil {
		defer je.fill(stats)
	}
	buildStart := time.Now()
	ok := je.build()
	je.buildTime = time.Since(buildStart)
	if !ok {
		return false, nil
	}
	probeStart := time.Now()
	je.probe()
	je.probeTime = time.Since(probeStart)
	return !je.stopped, nil
}

// build materializes the hash side and buckets it by cut vertex. Reports
// false when a stop hook fired mid-build.
func (je *joinEnumerator) build() bool {
	js := &joinSearcher{
		ix:       je.ix,
		tupleLen: je.buildLen,
		buf:      make([]graph.VertexID, 0, je.buildLen),
		ctr:      je.ctr,
		ctl:      je.ctl,
	}
	if je.buildLeft {
		// Ra = walks from s spanning positions 0..cut, bucketed by their
		// cut vertex; first-appearance order keeps the probe deterministic.
		js.startPos = 0
		js.buf = append(js.buf, je.ix.q.S)
		js.search()
		je.tuples = js.tuples
		if js.stopped {
			je.stopped = true
			return false
		}
		for i := 0; i*je.buildLen < len(je.tuples); i++ {
			v := je.tuples[i*je.buildLen+je.cut]
			if _, ok := je.buckets[v]; !ok {
				je.order = append(je.order, v)
			}
			je.buckets[v] = append(je.buckets[v], int32(i))
		}
		return true
	}
	// Rb = walks spanning positions cut..k, one search per possible cut
	// vertex. Distance bounds (C_cut membership) are necessary but not
	// sufficient for a vertex to appear at the cut — padding lives only at
	// t, so the left half needs a genuine length-cut walk — hence the
	// exact-position reachability filter, which also keeps |Rb| within the
	// delta_W bound of Proposition 6.1.
	js.startPos = je.cut
	for _, p := range je.ix.exactReachPositions(je.cut) {
		v := je.ix.verts[p]
		lo := int32(len(js.tuples) / je.buildLen)
		js.buf = js.buf[:0]
		js.buf = append(js.buf, v)
		js.search()
		if js.stopped {
			je.tuples = js.tuples
			je.stopped = true
			return false
		}
		hi := int32(len(js.tuples) / je.buildLen)
		if hi > lo {
			idx := make([]int32, 0, hi-lo)
			for i := lo; i < hi; i++ {
				idx = append(idx, i)
			}
			je.buckets[v] = idx
		}
	}
	je.tuples = js.tuples
	return true
}

// probe drives the lazy side. Build-left probes the right half with one
// DFS per distinct cut vertex of Ra; build-right probes the left half with
// a single DFS from s.
func (je *joinEnumerator) probe() {
	if je.buildLeft {
		for _, v := range je.order {
			je.probeBuf = append(je.probeBuf[:0], v)
			je.probeFrom(je.cut)
			if je.stopped {
				return
			}
		}
		return
	}
	je.probeBuf = append(je.probeBuf[:0], je.ix.q.S)
	je.probeFrom(0)
}

// probeFrom extends the in-flight probe walk one vertex at a time
// (startPos is the absolute query position of probeBuf[0]); a complete
// walk is joined and emitted before the DFS advances, so a consumer that
// stops pulling suspends the recursion mid-walk and a stop unwinds it
// without expanding further half-side walks.
func (je *joinEnumerator) probeFrom(startPos int) {
	depth := len(je.probeBuf)
	if depth == je.probeLen {
		je.probeWalks++
		je.emitJoined()
		return
	}
	je.ticker++
	if je.ticker%stopCheckInterval == 0 && je.ctl.ShouldStop != nil && je.ctl.ShouldStop() {
		je.stopped = true
		return
	}
	v := je.probeBuf[depth-1]
	budget := je.ix.k - startPos - (depth - 1) - 1
	nbrs := je.ix.OutUpTo(v, budget)
	je.ctr.EdgesAccessed += uint64(len(nbrs))
	for _, w := range nbrs {
		je.probeBuf = append(je.probeBuf, w)
		je.probeFrom(startPos)
		je.probeBuf = je.probeBuf[:depth]
		if je.stopped {
			return
		}
	}
}

// emitJoined hash-joins the completed probe walk against its bucket,
// validating and emitting every simple path immediately.
func (je *joinEnumerator) emitJoined() {
	var bucket []int32
	if je.buildLeft {
		bucket = je.buckets[je.probeBuf[0]]
	} else {
		bucket = je.buckets[je.probeBuf[len(je.probeBuf)-1]]
		if bucket == nil {
			return // no right walk starts at this left walk's cut vertex
		}
	}
	for _, i := range bucket {
		bt := je.tuples[int(i)*je.buildLen : (int(i)+1)*je.buildLen]
		je.joined = je.joined[:0]
		if je.buildLeft {
			je.joined = append(je.joined, bt...)
			je.joined = append(je.joined, je.probeBuf[1:]...) // probeBuf[0] == bt[cut]
		} else {
			je.joined = append(je.joined, je.probeBuf...)
			je.joined = append(je.joined, bt[1:]...) // bt[0] == probeBuf[cut]
		}
		je.vepoch++
		if path, ok := validatePath(je.joined, je.ix.q.T, je.seen, je.vepoch); ok {
			je.ctr.Results++
			if je.ctl.Emit != nil && !je.ctl.Emit(path) {
				je.stopped = true
				return
			}
			if je.ctl.Limit > 0 && je.ctr.Results >= je.ctl.Limit {
				je.stopped = true
				return
			}
		}
		if je.ctl.ShouldStop != nil && je.vepoch%stopCheckInterval == 0 && je.ctl.ShouldStop() {
			je.stopped = true
			return
		}
	}
}

// fill snapshots the run's footprint into stats (all exit paths).
func (je *joinEnumerator) fill(stats *JoinStats) {
	nBuild := int64(0)
	if je.buildLen > 0 {
		nBuild = int64(len(je.tuples)) / int64(je.buildLen)
	}
	stats.BuildLeft = je.buildLeft
	stats.BuildTuples = nBuild
	stats.ProbeWalks = je.probeWalks
	if je.buildLeft {
		stats.LeftTuples, stats.RightTuples = nBuild, je.probeWalks
	} else {
		stats.LeftTuples, stats.RightTuples = je.probeWalks, nBuild
	}
	stats.PartialBytes = int64(len(je.tuples))*4 + nBuild*4 + int64(cap(je.probeBuf))*4
	stats.BuildTime = je.buildTime
	stats.ProbeTime = je.probeTime
}

// exactReachPositions returns the dense positions of the vertices
// reachable from s in exactly cut index steps — the possible cut vertices
// of a left half-tuple. O(cut * |E(index)|) boolean DP mirroring the left
// searcher's budgets (step i admits neighbors w with w.t <= k-i).
func (ix *Index) exactReachPositions(cut int) []int32 {
	m := len(ix.verts)
	cur := make([]bool, m)
	next := make([]bool, m)
	cur[ix.pos[ix.q.S]] = true
	for step := 1; step <= cut; step++ {
		for i := range next {
			next[i] = false
		}
		for p := 0; p < m; p++ {
			if !cur[p] {
				continue
			}
			for _, w := range ix.outUpToPos(int32(p), ix.k-step) {
				next[ix.pos[w]] = true
			}
		}
		cur, next = next, cur
	}
	var out []int32
	for p := 0; p < m; p++ {
		if cur[p] {
			out = append(out, int32(p))
		}
	}
	return out
}

// validatePath checks whether the padded-walk tuple r (k+1 vertices ending
// in t-padding) is a simple path, and returns the truncated path if so.
// Interior occurrences of s cannot arise (the index has no edges into s),
// so only duplicate detection up to the first t is required (Theorem 3.1).
func validatePath(r []graph.VertexID, t graph.VertexID, seen []int32, epoch int32) ([]graph.VertexID, bool) {
	for i, v := range r {
		if v == t {
			return r[:i+1], true
		}
		if seen[v] == epoch {
			return nil, false
		}
		seen[v] = epoch
	}
	// Index construction guarantees position k is t; defensive fallback.
	return nil, false
}
