package core

import "pathenum/internal/graph"

// distUnreachable marks vertices the bounded BFS never assigned.
const distUnreachable int32 = -1

// bfsScratch holds the reusable buffers for the two bounded breadth-first
// searches that seed index construction (line 1 of Algorithm 3). Reusing the
// buffers across queries keeps per-query allocation at O(1) beyond the index
// itself.
type bfsScratch struct {
	distS []int32 // v.s = S(s, v | G - {t}); -1 if unassigned
	distT []int32 // v.t = S(v, t | G - {s}); -1 if unassigned
	queue []graph.VertexID
}

func newBFSScratch(n int) *bfsScratch {
	return &bfsScratch{
		distS: make([]int32, n),
		distT: make([]int32, n),
	}
}

// EdgePredicate restricts a query to edges it returns true for (the
// predicate constraint of Appendix E). A nil predicate admits every edge.
type EdgePredicate func(from, to graph.VertexID) bool

// run computes both distance labelings for query q, bounded at depth q.K
// (vertices farther than k from s or t cannot join the index).
//
// The forward search from s never expands t, so distS[v] = S(s,v | G-{t})
// for v != t, while distS[t] itself is the true s->t distance (t is
// assigned when first reached, which is what the partition X needs).
// Symmetrically the backward search from t along reversed edges never
// expands s.
//
// A non-nil pred restricts both searches to edges satisfying it, which is
// how predicate constraints integrate without materializing the filtered
// subgraph (Appendix E).
func (b *bfsScratch) run(g *graph.Graph, q Query, pred EdgePredicate) {
	b.runForward(g, q, pred, nil)
	b.runBackward(g, q, pred, nil)
}

// runForward fills distS only: a bounded BFS from q.S along out-edges that
// never expands q.T. A non-nil oracle prunes expansion of any vertex whose
// distance-so-far plus the oracle's lower bound to q.T already exceeds k
// (the goal-directed pruning of §7.5; see runPruned for the soundness
// argument). The batch subsystem calls the halves separately when one side
// of the labeling comes from a shared Frontier.
func (b *bfsScratch) runForward(g *graph.Graph, q Query, pred EdgePredicate, oracle DistanceOracle) {
	for i := range b.distS {
		b.distS[i] = distUnreachable
	}
	bound := int32(q.K)
	b.queue = b.queue[:0]
	b.queue = append(b.queue, q.S)
	b.distS[q.S] = 0
	for head := 0; head < len(b.queue); head++ {
		v := b.queue[head]
		d := b.distS[v]
		if d >= bound {
			break // BFS visits in distance order; all remaining are at bound
		}
		if oracle != nil {
			if lb := oracle.LowerBound(v, q.T); lb < 0 || d+lb > bound {
				continue // v cannot be in X; skip expansion, keep its label
			}
		}
		for _, w := range g.OutNeighbors(v) {
			if b.distS[w] != distUnreachable {
				continue
			}
			if pred != nil && !pred(v, w) {
				continue
			}
			b.distS[w] = d + 1
			if w != q.T {
				b.queue = append(b.queue, w)
			}
		}
	}
}

// runBackward fills distT only: a bounded BFS from q.T along in-edges that
// never expands q.S, with the symmetric oracle pruning toward q.S.
func (b *bfsScratch) runBackward(g *graph.Graph, q Query, pred EdgePredicate, oracle DistanceOracle) {
	for i := range b.distT {
		b.distT[i] = distUnreachable
	}
	bound := int32(q.K)
	b.queue = b.queue[:0]
	b.queue = append(b.queue, q.T)
	b.distT[q.T] = 0
	for head := 0; head < len(b.queue); head++ {
		v := b.queue[head]
		d := b.distT[v]
		if d >= bound {
			break
		}
		if oracle != nil {
			if lb := oracle.LowerBound(q.S, v); lb < 0 || d+lb > bound {
				continue
			}
		}
		for _, w := range g.InNeighbors(v) {
			if b.distT[w] != distUnreachable {
				continue
			}
			if pred != nil && !pred(w, v) {
				continue
			}
			b.distT[w] = d + 1
			if w != q.S {
				b.queue = append(b.queue, w)
			}
		}
	}
}
