package core

import (
	"math/rand"
	"testing"

	"pathenum/internal/gen"
	"pathenum/internal/graph"
)

// Vertex names for the paper's running-example graph (Figure 1a).
const (
	vS  = graph.VertexID(0)
	vT  = graph.VertexID(1)
	vV0 = graph.VertexID(2)
	vV1 = graph.VertexID(3)
	vV2 = graph.VertexID(4)
	vV3 = graph.VertexID(5)
	vV4 = graph.VertexID(6)
	vV5 = graph.VertexID(7)
	vV6 = graph.VertexID(8)
	vV7 = graph.VertexID(9)
)

// paperGraph reconstructs Figure 1a: the edges are read off the initial
// relations of Figure 3a. v7 only hangs off t, so it is reachable from
// neither side within any budget and must be excluded from the index.
func paperGraph(t *testing.T) *graph.Graph {
	t.Helper()
	edges := []graph.Edge{
		{From: vS, To: vV0}, {From: vS, To: vV1}, {From: vS, To: vV3},
		{From: vV0, To: vV1}, {From: vV0, To: vV6}, {From: vV0, To: vT},
		{From: vV1, To: vV2}, {From: vV1, To: vV3},
		{From: vV2, To: vV0}, {From: vV2, To: vT},
		{From: vV3, To: vV4},
		{From: vV4, To: vV5},
		{From: vV5, To: vV2}, {From: vV5, To: vT},
		{From: vV6, To: vV0},
		{From: vT, To: vV7},
	}
	g, err := graph.NewGraph(10, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func paperQuery() Query { return Query{S: vS, T: vT, K: 4} }

func mustIndex(t *testing.T, g *graph.Graph, q Query) *Index {
	t.Helper()
	ix, err := BuildIndex(g, q)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestIndexDistanceLabels(t *testing.T) {
	g := paperGraph(t)
	ix := mustIndex(t, g, paperQuery())

	wantS := map[graph.VertexID]int32{
		vS: 0, vV0: 1, vV1: 1, vV3: 1, vV2: 2, vV4: 2, vV6: 2, vV5: 3, vT: 2,
	}
	wantT := map[graph.VertexID]int32{
		vT: 0, vV0: 1, vV2: 1, vV5: 1, vV1: 2, vV4: 2, vV6: 2, vV3: 3, vS: 2,
	}
	for v, want := range wantS {
		if got := ix.DistS(v); got != want {
			t.Errorf("DistS(%d) = %d, want %d", v, got, want)
		}
	}
	for v, want := range wantT {
		if got := ix.DistT(v); got != want {
			t.Errorf("DistT(%d) = %d, want %d", v, got, want)
		}
	}
	if ix.InX(vV7) {
		t.Error("v7 must be excluded from X")
	}
	if ix.NumIndexed() != 9 {
		t.Errorf("NumIndexed = %d, want 9", ix.NumIndexed())
	}
}

// TestIndexPartitionExample checks Example 4.4: X[2,2] = {v4, v6}.
func TestIndexPartitionExample(t *testing.T) {
	g := paperGraph(t)
	ix := mustIndex(t, g, paperQuery())
	var cell []graph.VertexID
	for v := graph.VertexID(0); v < 10; v++ {
		if ix.InX(v) && ix.DistS(v) == 2 && ix.DistT(v) == 2 {
			cell = append(cell, v)
		}
	}
	if len(cell) != 2 || cell[0] != vV4 || cell[1] != vV6 {
		t.Fatalf("X[2,2] = %v, want [v4 v6] = [%d %d]", cell, vV4, vV6)
	}
}

// TestIndexNeighborExample checks Example 4.4: v0's indexed neighbors are
// {t, v1, v6} sorted ascending by distance to t, and It(v0, 2) returns all
// three.
func TestIndexNeighborExample(t *testing.T) {
	g := paperGraph(t)
	ix := mustIndex(t, g, paperQuery())
	nbrs := ix.OutUpTo(vV0, 2)
	if len(nbrs) != 3 || nbrs[0] != vT {
		t.Fatalf("It(v0,2) = %v, want [t v1 v6] (t first)", nbrs)
	}
	rest := map[graph.VertexID]bool{nbrs[1]: true, nbrs[2]: true}
	if !rest[vV1] || !rest[vV6] {
		t.Fatalf("It(v0,2) = %v, want {t, v1, v6}", nbrs)
	}
	// With budget 0 only t qualifies.
	if got := ix.OutUpTo(vV0, 0); len(got) != 1 || got[0] != vT {
		t.Fatalf("It(v0,0) = %v, want [t]", got)
	}
	// Negative budget yields nothing.
	if got := ix.OutUpTo(vV0, -1); len(got) != 0 {
		t.Fatalf("It(v0,-1) = %v, want empty", got)
	}
}

func TestIndexTSelfLoopOnly(t *testing.T) {
	g := paperGraph(t)
	ix := mustIndex(t, g, paperQuery())
	nbrs := ix.OutUpTo(vT, 4)
	if len(nbrs) != 1 || nbrs[0] != vT {
		t.Fatalf("It(t,k) = %v, want [t] (padding loop only)", nbrs)
	}
	// s has no in-edges in the index.
	if got := ix.InUpTo(vS, 4); len(got) != 0 {
		t.Fatalf("Is(s,k) = %v, want empty", got)
	}
}

func TestIndexLevelSizes(t *testing.T) {
	g := paperGraph(t)
	ix := mustIndex(t, g, paperQuery())
	// C_0 = {v.s <= 0, v.t <= 4} = {s}.
	if got := ix.LevelSize(0); got != 1 {
		t.Errorf("LevelSize(0) = %d, want 1", got)
	}
	// C_4 = {v.s <= 4, v.t <= 0} = {t}.
	if got := ix.LevelSize(4); got != 1 {
		t.Errorf("LevelSize(4) = %d, want 1", got)
	}
	// Every level size is bounded by |X|.
	for i := 0; i <= 4; i++ {
		if ix.LevelSize(i) > int64(ix.NumIndexed()) {
			t.Errorf("LevelSize(%d) = %d > |X|", i, ix.LevelSize(i))
		}
	}
	if ix.LevelSize(-1) != 0 || ix.LevelSize(5) != 0 {
		t.Error("out-of-range levels must be empty")
	}
	// ForEachLevel agrees with LevelSize.
	for i := 0; i <= 4; i++ {
		n := 0
		ix.ForEachLevel(i, func(graph.VertexID) { n++ })
		if int64(n) != ix.LevelSize(i) {
			t.Errorf("ForEachLevel(%d) visited %d, want %d", i, n, ix.LevelSize(i))
		}
	}
}

// TestIndexMembershipProposition43 checks Proposition 4.3 on random graphs:
// every vertex of every result path at position i satisfies v.s <= i and
// v.t <= k-i, hence belongs to X; and conversely the index only stores
// vertices/edges compatible with the distance bounds.
func TestIndexMembershipProposition43(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		n := 6 + rng.Intn(12)
		g := gen.ErdosRenyi(n, n*3, rng.Int63())
		s := graph.VertexID(rng.Intn(n))
		tt := graph.VertexID(rng.Intn(n))
		if s == tt {
			continue
		}
		k := 2 + rng.Intn(4)
		q := Query{S: s, T: tt, K: k}
		ix := mustIndex(t, g, q)
		paths := brutePathsLocal(g, s, tt, k)
		if len(paths) > 0 && ix.Empty() {
			t.Fatalf("trial %d: index empty but %d paths exist", trial, len(paths))
		}
		for _, p := range paths {
			for i, v := range p {
				if !ix.InX(v) {
					t.Fatalf("trial %d: path vertex %d not in X", trial, v)
				}
				if int(ix.DistS(v)) > i || int(ix.DistT(v)) > k-i {
					t.Fatalf("trial %d: vertex %d at position %d violates Prop 4.3", trial, v, i)
				}
			}
		}
	}
}

// TestIndexForwardReverseMirror verifies the forward and reverse adjacency
// encode the same edge set on random graphs.
func TestIndexForwardReverseMirror(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(15)
		g := gen.ErdosRenyi(n, n*3, rng.Int63())
		s := graph.VertexID(rng.Intn(n))
		tt := graph.VertexID((int(s) + 1 + rng.Intn(n-1)) % n)
		k := 2 + rng.Intn(4)
		ix := mustIndex(t, g, Query{S: s, T: tt, K: k})
		if ix.Empty() {
			continue
		}
		type edge struct{ from, to graph.VertexID }
		fwd := map[edge]bool{}
		rev := map[edge]bool{}
		for _, v := range ix.verts {
			for _, w := range ix.OutUpTo(v, k) {
				fwd[edge{v, w}] = true
			}
			for _, w := range ix.InUpTo(v, k) {
				rev[edge{w, v}] = true
			}
		}
		if len(fwd) != len(rev) {
			t.Fatalf("trial %d: forward %d edges, reverse %d", trial, len(fwd), len(rev))
		}
		for e := range fwd {
			if !rev[e] {
				t.Fatalf("trial %d: edge %v in forward but not reverse", trial, e)
			}
		}
	}
}

// TestIndexNeighborsSortedByDistance checks the counting-sort invariant on
// random graphs: It lists ascend by w.t, Is lists ascend by w.s.
func TestIndexNeighborsSortedByDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 20; trial++ {
		n := 8 + rng.Intn(20)
		g := gen.ErdosRenyi(n, n*4, rng.Int63())
		s := graph.VertexID(0)
		tt := graph.VertexID(n - 1)
		k := 3 + rng.Intn(3)
		ix := mustIndex(t, g, Query{S: s, T: tt, K: k})
		if ix.Empty() {
			continue
		}
		for _, v := range ix.verts {
			out := ix.OutUpTo(v, k)
			for i := 1; i < len(out); i++ {
				if ix.DistT(out[i-1]) > ix.DistT(out[i]) {
					t.Fatalf("It(%d) not sorted by w.t: %v", v, out)
				}
			}
			in := ix.InUpTo(v, k)
			for i := 1; i < len(in); i++ {
				if ix.DistS(in[i-1]) > ix.DistS(in[i]) {
					t.Fatalf("Is(%d) not sorted by w.s: %v", v, in)
				}
			}
		}
	}
}

// TestIndexBudgetSlices cross-checks It(v,b) against a filter of the full
// neighbor list for every budget.
func TestIndexBudgetSlices(t *testing.T) {
	g := paperGraph(t)
	ix := mustIndex(t, g, paperQuery())
	for _, v := range ix.verts {
		full := ix.OutUpTo(v, 4)
		for b := -1; b <= 5; b++ {
			got := ix.OutUpTo(v, b)
			want := 0
			for _, w := range full {
				if b >= 0 && int(ix.DistT(w)) <= b {
					want++
				}
			}
			if len(got) != want {
				t.Fatalf("It(%d,%d): got %d neighbors, want %d", v, b, len(got), want)
			}
		}
	}
}

func TestIndexEmptyWhenUnreachable(t *testing.T) {
	// Two disjoint edges: no s-t path whatsoever.
	g, err := graph.NewGraph(4, []graph.Edge{{From: 0, To: 1}, {From: 2, To: 3}})
	if err != nil {
		t.Fatal(err)
	}
	ix := mustIndex(t, g, Query{S: 0, T: 3, K: 5})
	if !ix.Empty() {
		t.Fatal("index must be empty for unreachable target")
	}
	if ix.Edges() != 0 || ix.OutUpTo(0, 5) != nil {
		t.Fatal("empty index must expose no edges")
	}
}

func TestIndexEmptyWhenTooFar(t *testing.T) {
	// Path of length 4 but k=3.
	var edges []graph.Edge
	for i := 0; i < 4; i++ {
		edges = append(edges, graph.Edge{From: int32(i), To: int32(i + 1)})
	}
	g, err := graph.NewGraph(5, edges)
	if err != nil {
		t.Fatal(err)
	}
	ix := mustIndex(t, g, Query{S: 0, T: 4, K: 3})
	if !ix.Empty() {
		t.Fatal("index must be empty when dist(s,t) > k")
	}
}

func TestBuildIndexValidation(t *testing.T) {
	g := paperGraph(t)
	if _, err := BuildIndex(g, Query{S: 0, T: 0, K: 3}); err == nil {
		t.Error("s == t: expected error")
	}
	if _, err := BuildIndex(g, Query{S: 0, T: 1, K: 0}); err == nil {
		t.Error("k = 0: expected error")
	}
	if _, err := BuildIndex(g, Query{S: 0, T: 99, K: 3}); err == nil {
		t.Error("out-of-range t: expected error")
	}
}

func TestIndexMemoryBytesPositive(t *testing.T) {
	g := paperGraph(t)
	ix := mustIndex(t, g, paperQuery())
	if ix.MemoryBytes() <= 0 {
		t.Fatal("MemoryBytes must be positive for a non-empty index")
	}
	if ix.Edges() <= 0 {
		t.Fatal("Edges must be positive for the paper graph")
	}
}

// brutePathsLocal avoids importing internal/baseline from core tests
// (baseline imports core in its own tests; keep the dependency one-way).
func brutePathsLocal(g *graph.Graph, s, t graph.VertexID, k int) [][]graph.VertexID {
	var out [][]graph.VertexID
	onPath := make([]bool, g.NumVertices())
	path := []graph.VertexID{s}
	onPath[s] = true
	var rec func()
	rec = func() {
		v := path[len(path)-1]
		if v == t {
			out = append(out, append([]graph.VertexID(nil), path...))
			return
		}
		if len(path)-1 == k {
			return
		}
		for _, w := range g.OutNeighbors(v) {
			if onPath[w] {
				continue
			}
			path = append(path, w)
			onPath[w] = true
			rec()
			onPath[w] = false
			path = path[:len(path)-1]
		}
	}
	rec()
	return out
}

// bruteWalksLocal mirrors baseline.BruteWalks for estimator tests.
func bruteWalksLocal(g *graph.Graph, s, t graph.VertexID, k int) int {
	count := 0
	walk := []graph.VertexID{s}
	var rec func()
	rec = func() {
		v := walk[len(walk)-1]
		if v == t {
			count++
			return
		}
		if len(walk)-1 == k {
			return
		}
		for _, w := range g.OutNeighbors(v) {
			if w == s {
				continue
			}
			walk = append(walk, w)
			rec()
			walk = walk[:len(walk)-1]
		}
	}
	rec()
	return count
}
