package core

import "pathenum/internal/graph"

// Counters collects the enumeration-cost metrics the paper reports in
// Figure 6 and §7.2.
type Counters struct {
	// Results is the number of paths emitted.
	Results uint64
	// InvalidPartials counts partial results whose subtree produced no
	// result ("#Invalid" in Figure 6).
	InvalidPartials uint64
	// EdgesAccessed counts neighbor-list entries scanned ("#Edges").
	EdgesAccessed uint64
}

// RunControl bounds an enumeration run. The zero value runs to completion.
type RunControl struct {
	// Emit receives each result path (s..t). The slice is reused between
	// calls; copy it to retain. Returning false stops the enumeration.
	// A nil Emit counts results without materializing them.
	Emit func(path []graph.VertexID) bool
	// Limit stops the run after this many results when positive.
	Limit uint64
	// ShouldStop is polled periodically (roughly every 1024 expansions) so
	// callers can enforce deadlines; a nil func never stops.
	ShouldStop func() bool
}

// stopCheckInterval balances deadline responsiveness against polling cost.
const stopCheckInterval = 1024

// dfsSearcher is the state of one Algorithm-4 run.
type dfsSearcher struct {
	ix      *Index
	ctl     RunControl
	ctr     *Counters
	path    []graph.VertexID
	onPath  []bool // indexed by vertex id
	ticker  uint32
	stopped bool
}

// EnumerateDFS runs the depth-first search on the index (Algorithm 4) and
// returns true if the enumeration ran to completion (no stop/limit hit).
// Counters, when non-nil, accumulate cost metrics.
func EnumerateDFS(ix *Index, ctl RunControl, ctr *Counters) bool {
	if ctr == nil {
		ctr = &Counters{}
	}
	if ix.Empty() {
		return true
	}
	s := &dfsSearcher{
		ix:     ix,
		ctl:    ctl,
		ctr:    ctr,
		path:   make([]graph.VertexID, 0, ix.k+1),
		onPath: make([]bool, ix.g.NumVertices()),
	}
	s.path = append(s.path, ix.q.S)
	s.onPath[ix.q.S] = true
	s.search()
	return !s.stopped
}

// search expands the last vertex of the current partial result M and
// returns the number of results found in its subtree (used to detect
// invalid partial results).
func (s *dfsSearcher) search() uint64 {
	ix := s.ix
	v := s.path[len(s.path)-1]
	if v == ix.q.T {
		s.ctr.Results++
		if s.ctl.Emit != nil && !s.ctl.Emit(s.path) {
			s.stopped = true
		}
		if s.ctl.Limit > 0 && s.ctr.Results >= s.ctl.Limit {
			s.stopped = true
		}
		return 1
	}
	s.ticker++
	if s.ticker%stopCheckInterval == 0 && s.ctl.ShouldStop != nil && s.ctl.ShouldStop() {
		s.stopped = true
		return 0
	}
	budget := ix.k - (len(s.path) - 1) - 1 // k - L(M) - 1
	nbrs := ix.OutUpTo(v, budget)
	s.ctr.EdgesAccessed += uint64(len(nbrs))
	var found uint64
	for _, w := range nbrs {
		if s.onPath[w] {
			continue
		}
		s.path = append(s.path, w)
		s.onPath[w] = true
		sub := s.search()
		s.onPath[w] = false
		s.path = s.path[:len(s.path)-1]
		if sub == 0 {
			s.ctr.InvalidPartials++
		}
		found += sub
		if s.stopped {
			break
		}
	}
	return found
}
