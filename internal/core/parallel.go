package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pathenum/internal/graph"
)

// This file implements intra-query parallel enumeration: one heavy query's
// work fanned across shard goroutines and merged back into a single
// Emit/Limit-observing delivery. Both enumeration methods expose the same
// natural partition point — the probe walks of the tuple-at-a-time join
// (one independent DFS per probe start) and the first-hop subtrees of the
// index DFS — so a shard is simply a contiguous-by-round-robin slice of
// those start positions, running with its own Counters and visited
// scratch against the shared read-only Index (and, for the join, the
// shared build side).
//
// The merge, not the shards, owns the consumer-facing semantics:
// RunControl.Emit is called only from the merging goroutine (the
// consumer's own goroutine under an unbuffered stream, so backpressure
// and mid-iteration abandonment behave exactly like the sequential path),
// and RunControl.Limit is enforced at the merge point so "stop after n
// results" means n results total, not n per shard. Shards deliver in
// chunks whose target size doubles from 1 — the first chunk is a single
// path, preserving time-to-first-path, while steady-state drain amortizes
// the channel hand-off across parallelChunkMax paths.
//
// Ownership contract: unlike the sequential enumerators' reused Emit
// slice, every path a parallel entry point hands to Emit is a fresh slice
// owned by the callee (a shard's buffer cannot be recycled under the
// consumer's feet once it crosses the merge channel). The sequential
// fallbacks taken when no fan-out is possible wrap Emit to keep that
// contract, so callers may rely on it whenever they requested
// parallelism.

// parallelChunkMax bounds the per-shard emission chunk. Doubling from 1
// up to this cap keeps the first delivery immediate while making the
// per-path channel cost negligible on heavy drains.
const parallelChunkMax = 256

// mergeStopPollInterval is how many merged chunks pass between
// ShouldStop polls at the merge point. Shards poll their own amortized
// hook, so this only bounds how long a cancelled run keeps *delivering*
// already-produced paths.
const mergeStopPollInterval = 8

// copyPath returns a fresh copy of p.
func copyPath(p []graph.VertexID) []graph.VertexID {
	return append(make([]graph.VertexID, 0, len(p)), p...)
}

// ownedEmit wraps ctl so a sequential fallback keeps the parallel entry
// points' ownership contract: every path handed to Emit is a fresh slice.
func ownedEmit(ctl RunControl) RunControl {
	if ctl.Emit == nil {
		return ctl
	}
	emit := ctl.Emit
	ctl.Emit = func(p []graph.VertexID) bool { return emit(copyPath(p)) }
	return ctl
}

// runShards fans run across nShards goroutines and merges their
// deliveries under ctl's contract. Each shard receives its index, a
// shard-local RunControl (Emit delivering into the merge, ShouldStop
// folding the caller's hook with the merge's stop signal, Limit zero —
// the merge enforces it) and a shard-local Counters; it must report
// whether it ran to completion. runShards returns true only when every
// shard completed and the merge itself did not stop (limit, consumer
// stop or cancellation), and it never returns before every shard
// goroutine has exited — abandoning consumers cannot leak goroutines.
//
// Counter aggregation: EdgesAccessed and InvalidPartials are summed from
// the shard-local counters exactly once each. Results is owned by
// whoever observed the deliveries — the merge loop when Emit is set, an
// atomic delivery counter clamped to Limit in counting-with-limit mode,
// and the shard-local sums when free-running — so on completed runs it
// equals the sequential count exactly.
func runShards(nShards int, ctl RunControl, ctr *Counters, run func(shard int, sctl RunControl, sctr *Counters) bool) bool {
	done := make(chan struct{})
	var stopOnce sync.Once
	stop := func() { stopOnce.Do(func() { close(done) }) }
	defer stop()

	// stopper is the shard-side ShouldStop: the merge's stop signal or the
	// caller's hook (newStopper closures are goroutine-safe).
	stopper := func() bool {
		select {
		case <-done:
			return true
		default:
		}
		return ctl.ShouldStop != nil && ctl.ShouldStop()
	}

	counters := make([]Counters, nShards)
	completed := make([]bool, nShards)
	var wg sync.WaitGroup

	if ctl.Emit == nil {
		// Counting modes: no paths cross goroutines. With a Limit, a shared
		// atomic assigns each result a delivery number; numbers past the
		// limit are refused shard-side (the shard stops) and clamped out of
		// the aggregate, so Results is exact — never limit+nShards-1.
		var delivered atomic.Uint64
		limit := ctl.Limit
		for i := 0; i < nShards; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				sctl := RunControl{ShouldStop: stopper}
				if limit > 0 {
					sctl.Emit = func([]graph.VertexID) bool {
						n := delivered.Add(1)
						if n >= limit {
							stop()
							return false
						}
						return true
					}
				}
				completed[i] = run(i, sctl, &counters[i])
			}(i)
		}
		wg.Wait()
		all := true
		for i := range counters {
			ctr.EdgesAccessed += counters[i].EdgesAccessed
			ctr.InvalidPartials += counters[i].InvalidPartials
			if limit == 0 {
				ctr.Results += counters[i].Results
			}
			all = all && completed[i]
		}
		if limit > 0 {
			n := delivered.Load()
			if n > limit {
				n = limit
			}
			ctr.Results += n
		}
		return all
	}

	// Delivery mode: shards push chunks of owned paths over an unbuffered
	// channel; the merge loop (the caller's goroutine) emits them one by
	// one, so under an unbuffered stream the consumer's backpressure
	// reaches straight through to the shards — at most one in-flight chunk
	// per shard runs ahead of the consumer.
	ch := make(chan [][]graph.VertexID)
	for i := 0; i < nShards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			target := 1
			buf := make([][]graph.VertexID, 0, 1)
			flush := func() bool {
				if len(buf) == 0 {
					return true
				}
				select {
				case ch <- buf:
				case <-done:
					return false
				}
				if target < parallelChunkMax {
					target *= 2
				}
				buf = make([][]graph.VertexID, 0, target)
				return true
			}
			sctl := RunControl{
				ShouldStop: stopper,
				Emit: func(p []graph.VertexID) bool {
					buf = append(buf, copyPath(p))
					if len(buf) < target {
						return true
					}
					return flush()
				},
			}
			completed[i] = run(i, sctl, &counters[i])
			flush() // deliver the partial tail chunk (dropped if stopping)
		}(i)
	}
	go func() {
		wg.Wait()
		close(ch)
	}()

	stopped := false
	chunks := 0
	for chunk := range ch {
		if stopped {
			continue // draining: shards are unwinding, discard the surplus
		}
		for _, p := range chunk {
			ctr.Results++
			if !ctl.Emit(p) {
				stopped = true
			} else if ctl.Limit > 0 && ctr.Results >= ctl.Limit {
				stopped = true
			}
			if stopped {
				stop()
				break
			}
		}
		chunks++
		if !stopped && chunks%mergeStopPollInterval == 0 && ctl.ShouldStop != nil && ctl.ShouldStop() {
			stopped = true
			stop()
		}
	}
	// The channel is closed: every shard has exited and its counters and
	// completion flag are settled (the close orders the reads).
	all := !stopped
	for i := range counters {
		ctr.EdgesAccessed += counters[i].EdgesAccessed
		ctr.InvalidPartials += counters[i].InvalidPartials
		all = all && completed[i]
	}
	return all
}

// EnumerateDFSParallel is EnumerateDFS fanned across up to parallelism
// goroutines: the first-hop neighbor set of s partitions the search into
// independent subtrees (s appears in no other position — the index has no
// edges into s — so shards share nothing but the read-only index), dealt
// round-robin so heavy and light subtrees spread across shards. Emit and
// Limit are enforced at the fan-in merge (see runShards); on completed
// runs Results, EdgesAccessed and InvalidPartials equal the sequential
// run exactly. When parallelism or the root set admits no fan-out it
// falls back to the sequential search. Every path handed to Emit is a
// fresh slice owned by the callee, fallback included.
func EnumerateDFSParallel(ix *Index, parallelism int, ctl RunControl, ctr *Counters) bool {
	if ctr == nil {
		ctr = &Counters{}
	}
	if ix.Empty() {
		return true
	}
	roots := ix.OutUpTo(ix.q.S, ix.k-1)
	shards := parallelism
	if shards > len(roots) {
		shards = len(roots)
	}
	if shards <= 1 {
		return EnumerateDFS(ix, ownedEmit(ctl), ctr)
	}
	// The root scan happens once, here, not per shard.
	ctr.EdgesAccessed += uint64(len(roots))
	return runShards(shards, ctl, ctr, func(i int, sctl RunControl, sctr *Counters) bool {
		ds := &dfsSearcher{
			ix:     ix,
			ctl:    sctl,
			ctr:    sctr,
			path:   make([]graph.VertexID, 0, ix.k+1),
			onPath: make([]bool, ix.g.NumVertices()),
		}
		ds.path = append(ds.path, ix.q.S)
		ds.onPath[ix.q.S] = true
		for j := i; j < len(roots); j += shards {
			w := roots[j]
			ds.path = append(ds.path, w)
			ds.onPath[w] = true
			sub := ds.search()
			ds.onPath[w] = false
			ds.path = ds.path[:1]
			if sub == 0 {
				sctr.InvalidPartials++
			}
			if ds.stopped {
				return false
			}
		}
		return true
	})
}

// EnumerateJoinSideParallel is EnumerateJoinSide with the probe side
// fanned across up to parallelism goroutines. The build side is
// materialized once, sequentially, on the calling goroutine — after
// build() its tuples and buckets are read-only and shared by every probe
// shard — then the probe start positions (the distinct cut vertices of Ra
// when building left, the first-hop neighbors of s when building right)
// are dealt round-robin, each shard probing with its own walk buffer,
// validation scratch and Counters. Emit/Limit follow the merge contract
// of runShards; stats, when non-nil, are filled on every exit path with
// the build footprint counted exactly once and each shard's probe-local
// stats summed exactly once, however early any shard stopped. Paths
// handed to Emit are fresh slices owned by the callee, fallback included.
func EnumerateJoinSideParallel(ix *Index, cut int, side BuildSide, parallelism int, ctl RunControl, ctr *Counters, stats *JoinStats) (bool, error) {
	if ctr == nil {
		ctr = &Counters{}
	}
	if ix.Empty() {
		return true, nil
	}
	k := ix.k
	if cut < 1 || cut >= k {
		return false, fmt.Errorf("core: join cut %d out of range [1,%d]", cut, k-1)
	}
	if side == BuildAuto {
		side = FullEstimate(ix).BuildSideAt(cut)
	}
	buildCtl := RunControl{ShouldStop: ctl.ShouldStop}
	je := &joinEnumerator{
		ix:        ix,
		cut:       cut,
		ctl:       &buildCtl,
		ctr:       ctr,
		buildLeft: side == BuildLeft,
		buckets:   make(map[graph.VertexID][]int32),
		seen:      make([]int32, ix.g.NumVertices()),
		joined:    make([]graph.VertexID, 0, k+1),
	}
	if je.buildLeft {
		je.buildLen, je.probeLen = cut+1, k-cut+1
	} else {
		je.buildLen, je.probeLen = k-cut+1, cut+1
	}
	je.probeBuf = make([]graph.VertexID, 0, je.probeLen)
	buildStart := time.Now()
	ok := je.build()
	je.buildTime = time.Since(buildStart)
	if !ok {
		if stats != nil {
			je.fill(stats)
		}
		return false, nil
	}

	var roots []graph.VertexID
	if je.buildLeft {
		roots = je.order
	} else {
		roots = ix.OutUpTo(ix.q.S, k-1)
	}
	shards := parallelism
	if shards > len(roots) {
		shards = len(roots)
	}
	if shards <= 1 {
		// No fan-out possible: probe sequentially on the enumerator already
		// built, keeping the parallel ownership contract.
		seqCtl := ownedEmit(ctl)
		je.ctl = &seqCtl
		probeStart := time.Now()
		je.probe()
		je.probeTime = time.Since(probeStart)
		if stats != nil {
			je.fill(stats)
		}
		return !je.stopped, nil
	}
	if !je.buildLeft {
		// Pre-expanding s replaces the root level of the sequential probe
		// DFS; account its scan once, as probeFrom would have.
		ctr.EdgesAccessed += uint64(len(roots))
	}
	probers := make([]*joinEnumerator, shards)
	probeStart := time.Now()
	completedRun := runShards(shards, ctl, ctr, func(i int, sctl RunControl, sctr *Counters) bool {
		p := &joinEnumerator{
			ix:        ix,
			cut:       cut,
			ctl:       &sctl,
			ctr:       sctr,
			buildLeft: je.buildLeft,
			buildLen:  je.buildLen,
			tuples:    je.tuples,
			buckets:   je.buckets,
			probeLen:  je.probeLen,
			seen:      make([]int32, ix.g.NumVertices()),
			joined:    make([]graph.VertexID, 0, k+1),
			probeBuf:  make([]graph.VertexID, 0, je.probeLen),
		}
		probers[i] = p
		for j := i; j < len(roots); j += shards {
			w := roots[j]
			if p.buildLeft {
				p.probeBuf = append(p.probeBuf[:0], w)
				p.probeFrom(cut)
			} else {
				p.probeBuf = append(p.probeBuf[:0], ix.q.S, w)
				p.probeFrom(0)
			}
			if p.stopped {
				return false
			}
		}
		return true
	})
	je.probeTime = time.Since(probeStart)
	if stats != nil {
		fillParallelJoinStats(stats, je, probers)
	}
	return completedRun, nil
}

// fillParallelJoinStats aggregates the fan-out's footprint: the shared
// build side belongs to the build enumerator and is counted exactly once
// (shards reference, never copy, its tuples and buckets), and each
// shard's probe-local stats — walks generated, in-flight walk buffer —
// are summed exactly once regardless of how early the shard stopped.
func fillParallelJoinStats(stats *JoinStats, build *joinEnumerator, probers []*joinEnumerator) {
	nBuild := int64(0)
	if build.buildLen > 0 {
		nBuild = int64(len(build.tuples)) / int64(build.buildLen)
	}
	stats.BuildLeft = build.buildLeft
	stats.BuildTuples = nBuild
	var walks, probeBytes int64
	for _, p := range probers {
		if p == nil {
			continue
		}
		walks += p.probeWalks
		probeBytes += int64(cap(p.probeBuf)) * 4
	}
	stats.ProbeWalks = walks
	if build.buildLeft {
		stats.LeftTuples, stats.RightTuples = nBuild, walks
	} else {
		stats.LeftTuples, stats.RightTuples = walks, nBuild
	}
	stats.PartialBytes = int64(len(build.tuples))*4 + nBuild*4 + probeBytes
	stats.BuildTime = build.buildTime
	stats.ProbeTime = build.probeTime
}
