package core

import (
	"context"
	"math"
	"time"

	"pathenum/internal/graph"
	"pathenum/internal/mem"
)

// executor owns the build → optimize → enumerate pipeline behind every
// query entry point: core.Run/RunContext, Session.Run/RunContext and (via
// sessions) the public Engine. Buffer reuse is pluggable — a long-lived
// executor amortizes the O(|V|) BFS labelings, position map and visited
// bitmap across queries, while one-shot runs simply use a throwaway
// executor and pay the allocations once.
//
// An executor is NOT safe for concurrent use; Session inherits that
// restriction and the Engine keeps one per worker.
type executor struct {
	g       *graph.Graph
	scratch *bfsScratch
	pos     []int32
	onPath  []bool  // allocated lazily by the first DFS enumeration
	seen    []int32 // allocated lazily by the first join: path validation epochs
	oracle  DistanceOracle
	budget  *mem.Budget // nil = unbudgeted; admits join build sides
}

func newExecutor(g *graph.Graph, oracle DistanceOracle) *executor {
	n := g.NumVertices()
	return &executor{
		g:       g,
		scratch: newBFSScratch(n),
		pos:     make([]int32, n),
		oracle:  oracle,
	}
}

// SessionScratchBytes returns the worst-case resident size of one
// session's pooled per-query scratch on an n-vertex graph: the two BFS
// labelings, the BFS queue, the index position map, the DFS visited
// bitmap and the join validation epochs (4+4+4+4+1+4 = 21 bytes per
// vertex; the O(k) path buffers are noise against that). The engine
// charges this per pooled session under mem.ClassScratch — the scratch
// is not optional, so it is accounted with Budget.Must and the effective
// budget is floored at the scratch requirement.
func SessionScratchBytes(n int) int64 { return int64(n) * 21 }

// execute runs one query through the full pipeline: oracle feasibility
// check, index construction (Algorithm 3), plan selection (§6) and
// enumeration (Algorithm 4 or 6).
//
// Cancellation is observed at three points: a context already done on
// entry returns its error before any work; a context done after the index
// build returns the partial Result (Completed=false) without enumerating;
// and during enumeration the amortized RunControl.ShouldStop hook stops
// the run within ~stopCheckInterval expansion events. opts.Timeout flows
// only through the hook — the build phase is O(|E|) bounded and was never
// deadline-checked.
func (e *executor) execute(ctx context.Context, q Query, opts Options) (*Result, error) {
	return e.executeShared(ctx, q, opts, nil, nil)
}

// executeShared is execute with optionally precomputed distance labelings:
// a non-nil fwd replaces the forward BFS from q.S and a non-nil bwd the
// backward BFS from q.T. This is the batch subsystem's entry point — a
// shared-source group passes one forward Frontier to every member, so each
// member pays a single per-query BFS pass instead of two. Frontier labels
// are a sound relaxation of the per-query ones (see the Frontier doc);
// Result.Timings.BFS covers only the per-query passes actually run, and
// index statistics may report a slightly larger (superset) index.
func (e *executor) executeShared(ctx context.Context, q Query, opts Options, fwd, bwd *Frontier) (*Result, error) {
	if err := q.Validate(e.g); err != nil {
		return nil, err
	}
	if fwd != nil {
		if err := fwd.compatible(e.g, q, true, opts.Predicate, opts.PredicateToken); err != nil {
			return nil, err
		}
	}
	if bwd != nil {
		if err := bwd.compatible(e.g, q, false, opts.Predicate, opts.PredicateToken); err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res := &Result{Query: q}
	shouldStop := newStopper(ctx, opts.Timeout)
	oracle := opts.Oracle
	if oracle == nil {
		oracle = e.oracle
	}
	// A version-aware oracle built before a Dynamic.Insert must be
	// rejected, not consulted: its lower bounds no longer hold and would
	// silently over-prune the index (graph.ErrStaleEpoch under errors.Is).
	if err := validateOracle(oracle, e.g); err != nil {
		return nil, err
	}

	// Phase 1: index construction, with the BFS timed separately for the
	// Figure 12/17 breakdowns. The oracle answers provably infeasible
	// queries with no BFS at all (§7.5's response-time motivation).
	start := time.Now()
	if oracle != nil {
		if lb := oracle.LowerBound(q.S, q.T); lb < 0 || int(lb) > q.K {
			res.Completed = true
			res.Timings.Build = time.Since(start)
			res.Plan = Plan{Method: MethodDFS}
			return res, nil
		}
	}
	distS, distT := e.scratch.distS, e.scratch.distT
	if fwd != nil {
		distS = fwd.dist
	} else {
		e.scratch.runForward(e.g, q, opts.Predicate, oracle)
	}
	if bwd != nil {
		distT = bwd.dist
	} else {
		e.scratch.runBackward(e.g, q, opts.Predicate, oracle)
	}
	res.Timings.BFS = time.Since(start)
	ix := buildIndexFromDists(e.g, q, distS, distT, opts.Predicate, e.pos)
	res.Timings.Build = time.Since(start)
	res.IndexEdges = ix.Edges()
	res.IndexVertices = ix.NumIndexed()
	res.IndexBytes = ix.MemoryBytes()
	if ctx.Err() != nil {
		// Cancelled during the build: hand back what exists, enumerate
		// nothing. Work already started reports a partial Result rather
		// than an error, matching mid-enumeration cancellation.
		res.Plan = Plan{Method: MethodDFS}
		return res, nil
	}

	// Phase 2: plan selection (§6), then memory admission: a join plan
	// whose predicted build side (the Algorithm-5 estimate the planner
	// already computed) does not fit the remaining budget is demoted to
	// DFS *before* materializing anything. Path sets are pinned equal —
	// DFS and join enumerate the same set — so the fallback degrades cost,
	// never correctness. An admitted build side holds its reservation
	// (mem.ClassBuild) for the duration of the enumeration.
	optStart := time.Now()
	res.Plan = selectPlan(ix, opts)
	res.Timings.Optimize = time.Since(optStart)
	if res.Plan.Method == MethodJoin && e.budget != nil && res.Plan.Full != nil {
		need := predictedBuildBytes(res.Plan.Full, res.Plan.Cut, res.Plan.Build)
		if e.budget.TryReserve(mem.ClassBuild, need) {
			defer e.budget.Release(mem.ClassBuild, need)
		} else {
			res.Plan.Method = MethodDFS
			res.MemFallback = true
		}
	}

	// Phase 3: enumeration, fanned across shard goroutines when the
	// caller requested intra-query parallelism (the fan-out covers only
	// this phase; phases 1-2 and the join's build side stay sequential).
	ctl := RunControl{Emit: opts.Emit, Limit: opts.Limit, ShouldStop: shouldStop}
	par := opts.Parallelism
	enumStart := time.Now()
	switch res.Plan.Method {
	case MethodJoin:
		// The plan resolved the build side from the estimate it already
		// computed; the probe side streams through ctl.Emit tuple-at-a-time,
		// so a pull consumer (Session.Stream) gets its first joined path
		// after building only the smaller half.
		var done bool
		var err error
		if par > 1 {
			done, err = EnumerateJoinSideParallel(ix, res.Plan.Cut, res.Plan.Build, par, ctl, &res.Counters, &res.JoinStats)
		} else {
			// Sequential joins validate through the session's pooled seen
			// buffer instead of a per-run O(|V|) make (cleared here: the
			// enumerator's epoch counter restarts at zero every run).
			if e.seen == nil {
				e.seen = make([]int32, e.g.NumVertices())
			} else {
				clear(e.seen)
			}
			done, err = enumerateJoinSideSeen(ix, res.Plan.Cut, res.Plan.Build, e.seen, ctl, &res.Counters, &res.JoinStats)
		}
		if err != nil {
			return nil, err
		}
		res.Completed = done
	default:
		if par > 1 {
			res.Completed = EnumerateDFSParallel(ix, par, ctl, &res.Counters)
		} else {
			res.Completed = e.enumerateDFS(ix, ctl, &res.Counters)
		}
	}
	res.Timings.Enumerate = time.Since(enumStart)
	return res, nil
}

// newStopper builds the RunControl.ShouldStop hook for one run, folding the
// context's cancellation/deadline and the optional Options.Timeout into a
// single check. It returns nil when the run is unbounded, so enumerators
// skip the poll entirely. The enumerators invoke the hook on an amortized
// event counter (every stopCheckInterval expansions), which keeps the
// time.Now/ctx.Err cost off the per-node hot path.
func newStopper(ctx context.Context, timeout time.Duration) func() bool {
	var deadline time.Time
	if timeout > 0 {
		deadline = time.Now().Add(timeout)
	}
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}
	done := ctx.Done()
	if deadline.IsZero() && done == nil {
		return nil
	}
	return func() bool {
		if done != nil && ctx.Err() != nil {
			return true
		}
		return !deadline.IsZero() && time.Now().After(deadline)
	}
}

// selectPlan applies the method override or runs the two-phase optimizer.
func selectPlan(ix *Index, opts Options) Plan {
	switch opts.Method {
	case MethodDFS:
		return Plan{Method: MethodDFS, Preliminary: PreliminaryEstimate(ix)}
	case MethodJoin:
		est := FullEstimate(ix)
		plan := Plan{Method: MethodJoin, Cut: est.Cut, Full: est, Preliminary: PreliminaryEstimate(ix)}
		if est.Cut == 0 {
			plan.Method = MethodDFS // k < 2 leaves no interior cut
		} else {
			plan.Build = est.BuildSideAt(est.Cut)
		}
		return plan
	default:
		return ChoosePlan(ix, opts.Tau)
	}
}

// predictedBuildBytes converts the estimator's tuple count at the cut
// into the bytes EnumerateJoinSide would materialize for that side: the
// flat walk storage (buildLen vertices per tuple) plus one bucket index
// per tuple, 4 bytes each — the same shape JoinStats.PartialBytes reports
// after the fact. Saturates instead of overflowing on pathological
// estimates (which then only admit under an unlimited budget).
func predictedBuildBytes(est *Estimate, cut int, side BuildSide) int64 {
	k := len(est.SumFromS) - 1
	if side == BuildAuto {
		side = est.BuildSideAt(cut)
	}
	tuples := est.SumFromS[cut]
	buildLen := cut + 1
	if side == BuildRight {
		tuples = est.SumToT[cut]
		buildLen = k - cut + 1
	}
	per := uint64(buildLen+1) * 4
	if per == 0 || tuples > math.MaxInt64/per {
		return math.MaxInt64
	}
	return int64(tuples * per)
}

// enumerateDFS is EnumerateDFS with the executor's reusable visited bitmap.
// The bitmap is clean on entry and restored to clean on exit (the search
// unsets every bit it sets; early stops sweep the residual path).
func (e *executor) enumerateDFS(ix *Index, ctl RunControl, ctr *Counters) bool {
	if ix.Empty() {
		return true
	}
	if e.onPath == nil {
		e.onPath = make([]bool, e.g.NumVertices())
	}
	ds := &dfsSearcher{
		ix:     ix,
		ctl:    ctl,
		ctr:    ctr,
		path:   make([]graph.VertexID, 0, ix.k+1),
		onPath: e.onPath,
	}
	ds.path = append(ds.path, ix.q.S)
	ds.onPath[ix.q.S] = true
	ds.search()
	ds.onPath[ix.q.S] = false
	// On early stop the recursion may leave bits set; sweep the path.
	for _, v := range ds.path {
		ds.onPath[v] = false
	}
	return !ds.stopped
}

// buildIndexFromDists is buildIndexFrom with caller-owned distance arrays
// and pos buffer, so repeated builds avoid the O(|V|) allocations and the
// batch subsystem can substitute shared Frontier labelings for either
// side. The index borrows the pos buffer: it is valid until the next build
// that reuses it. The distance arrays are only read.
func buildIndexFromDists(g *graph.Graph, q Query, distS, distT []int32, pred EdgePredicate, pos []int32) *Index {
	n := g.NumVertices()
	k := q.K
	k32 := int32(k)

	ix := &Index{g: g, q: q, k: k, pred: pred}
	ix.pos = pos
	for i := range ix.pos {
		ix.pos[i] = -1
	}

	inX := func(v graph.VertexID) bool {
		ds, dt := distS[v], distT[v]
		return ds >= 0 && dt >= 0 && ds+dt <= k32
	}
	// The partition X (lines 2-4). If either endpoint is outside X there is
	// no s-t path of length <= k and the index stays empty.
	if !inX(q.S) || !inX(q.T) {
		ix.empty = true
		ix.cSize = make([]int64, k+1)
		ix.sumIt = make([]uint64, k)
		return ix
	}
	for v := 0; v < n; v++ {
		if inX(graph.VertexID(v)) {
			ix.pos[v] = int32(len(ix.verts))
			ix.verts = append(ix.verts, graph.VertexID(v))
		}
	}
	m := len(ix.verts)
	ix.vs = make([]int32, m)
	ix.vt = make([]int32, m)
	for p, v := range ix.verts {
		ix.vs[p] = distS[v]
		ix.vt[p] = distT[v]
	}
	ix.buildForward(distT)
	ix.buildReverse(distS)
	ix.collectStats()
	return ix
}
