package core

import (
	"context"
	"math/rand"
	"sort"
	"testing"

	"pathenum/internal/automaton"
	"pathenum/internal/gen"
	"pathenum/internal/graph"
)

// weightOf assigns a deterministic pseudo-weight to an edge so tests can
// share the same function between the engine and the oracle.
func weightOf(u, v graph.VertexID) float64 {
	return float64((int(u)*31+int(v)*17)%5) + 1 // 1..5
}

// labelOf assigns a deterministic label in [0, numLabels).
func labelOf(numLabels int) func(u, v graph.VertexID) automaton.Label {
	return func(u, v graph.VertexID) automaton.Label {
		return automaton.Label((int(u)*7 + int(v)*13) % numLabels)
	}
}

func constrainedPaths(t *testing.T, g *graph.Graph, q Query, cons Constraints) [][]graph.VertexID {
	t.Helper()
	var out [][]graph.VertexID
	res, err := RunConstrained(g, q, cons, RunControl{Emit: func(p []graph.VertexID) bool {
		out = append(out, append([]graph.VertexID(nil), p...))
		return true
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("constrained run must complete")
	}
	return out
}

func TestPredicateConstraint(t *testing.T) {
	g := paperGraph(t)
	q := paperQuery()
	// Forbid the edge (v0, t): kills the length-2 path and one length-4.
	pred := func(u, v graph.VertexID) bool { return !(u == vV0 && v == vT) }
	got := constrainedPaths(t, g, q, Constraints{Predicate: pred})
	want := 0
	for _, p := range brutePathsLocal(g, q.S, q.T, q.K) {
		ok := true
		for i := 0; i+1 < len(p); i++ {
			if !pred(p[i], p[i+1]) {
				ok = false
				break
			}
		}
		if ok {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("predicate run found %d paths, oracle %d", len(got), want)
	}
	for _, p := range got {
		for i := 0; i+1 < len(p); i++ {
			if !pred(p[i], p[i+1]) {
				t.Fatalf("path %v uses forbidden edge", p)
			}
		}
	}
}

func TestPredicateConstraintRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5150))
	for trial := 0; trial < 25; trial++ {
		n := 6 + rng.Intn(10)
		g := gen.ErdosRenyi(n, n*4, rng.Int63())
		s := graph.VertexID(rng.Intn(n))
		tt := graph.VertexID(rng.Intn(n))
		if s == tt {
			continue
		}
		q := Query{S: s, T: tt, K: 2 + rng.Intn(3)}
		// Keep edges whose endpoint sum is not divisible by 3.
		pred := func(u, v graph.VertexID) bool { return (u+v)%3 != 0 }
		got := constrainedPaths(t, g, q, Constraints{Predicate: pred})
		var want [][]graph.VertexID
		for _, p := range brutePathsLocal(g, s, tt, q.K) {
			ok := true
			for i := 0; i+1 < len(p); i++ {
				if !pred(p[i], p[i+1]) {
					ok = false
					break
				}
			}
			if ok {
				want = append(want, p)
			}
		}
		if !samePaths(got, want) {
			t.Fatalf("trial %d: predicate run %d paths, oracle %d", trial, len(got), len(want))
		}
	}
}

func TestAccumulativeConstraint(t *testing.T) {
	rng := rand.New(rand.NewSource(6001))
	for trial := 0; trial < 25; trial++ {
		n := 6 + rng.Intn(10)
		g := gen.ErdosRenyi(n, n*4, rng.Int63())
		s := graph.VertexID(rng.Intn(n))
		tt := graph.VertexID(rng.Intn(n))
		if s == tt {
			continue
		}
		q := Query{S: s, T: tt, K: 2 + rng.Intn(3)}
		threshold := 6.0
		acc := &Accumulator{
			Value:    weightOf,
			Combine:  func(a, b float64) float64 { return a + b },
			Identity: 0,
			Accept:   func(total float64) bool { return total >= threshold },
		}
		got := constrainedPaths(t, g, q, Constraints{Accumulate: acc})
		var want [][]graph.VertexID
		for _, p := range brutePathsLocal(g, s, tt, q.K) {
			total := 0.0
			for i := 0; i+1 < len(p); i++ {
				total += weightOf(p[i], p[i+1])
			}
			if total >= threshold {
				want = append(want, p)
			}
		}
		if !samePaths(got, want) {
			t.Fatalf("trial %d: accumulative run %d paths, oracle %d", trial, len(got), len(want))
		}
	}
}

// TestAccumulativePruning: with nonnegative weights and a below-threshold
// constraint, monotone pruning must not change results.
func TestAccumulativePruning(t *testing.T) {
	g := gen.BarabasiAlbert(50, 4, 9)
	q := Query{S: 0, T: 1, K: 4}
	limit := 9.0
	mk := func(prune func(float64, int) bool) *Accumulator {
		return &Accumulator{
			Value:    weightOf,
			Combine:  func(a, b float64) float64 { return a + b },
			Identity: 0,
			Accept:   func(total float64) bool { return total <= limit },
			Prune:    prune,
		}
	}
	plain := constrainedPaths(t, g, q, Constraints{Accumulate: mk(nil)})
	pruned := constrainedPaths(t, g, q, Constraints{Accumulate: mk(
		func(partial float64, _ int) bool { return partial > limit },
	)})
	if !samePaths(plain, pruned) {
		t.Fatalf("pruning changed results: %d vs %d", len(plain), len(pruned))
	}
}

func TestSequenceConstraint(t *testing.T) {
	rng := rand.New(rand.NewSource(8080))
	const numLabels = 3
	lbl := labelOf(numLabels)
	for trial := 0; trial < 20; trial++ {
		n := 6 + rng.Intn(10)
		g := gen.ErdosRenyi(n, n*4, rng.Int63())
		s := graph.VertexID(rng.Intn(n))
		tt := graph.VertexID(rng.Intn(n))
		if s == tt {
			continue
		}
		q := Query{S: s, T: tt, K: 2 + rng.Intn(3)}
		dfa, err := automaton.AtLeastCount(numLabels, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		got := constrainedPaths(t, g, q, Constraints{Sequence: &SequenceConstraint{
			Automaton: dfa,
			Label:     lbl,
		}})
		var want [][]graph.VertexID
		for _, p := range brutePathsLocal(g, s, tt, q.K) {
			var seq []automaton.Label
			for i := 0; i+1 < len(p); i++ {
				seq = append(seq, lbl(p[i], p[i+1]))
			}
			if dfa.Accepts(seq) {
				want = append(want, p)
			}
		}
		if !samePaths(got, want) {
			t.Fatalf("trial %d: sequence run %d paths, oracle %d", trial, len(got), len(want))
		}
	}
}

func TestSequenceExactPattern(t *testing.T) {
	// Line graph 0->1->2->3 with labels 0,1,2 in order; only the full
	// sequence 0,1,2 is accepted.
	g, err := graph.NewGraph(4, []graph.Edge{{From: 0, To: 1}, {From: 1, To: 2}, {From: 2, To: 3}})
	if err != nil {
		t.Fatal(err)
	}
	lbl := func(u, v graph.VertexID) automaton.Label { return automaton.Label(u) }
	dfa, err := automaton.ExactSequence(3, []automaton.Label{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	got := constrainedPaths(t, g, Query{S: 0, T: 3, K: 5}, Constraints{Sequence: &SequenceConstraint{
		Automaton: dfa, Label: lbl,
	}})
	if len(got) != 1 || len(got[0]) != 4 {
		t.Fatalf("got %v, want the single labeled path", got)
	}
	// A shorter hop constraint cannot reach t at all.
	got = constrainedPaths(t, g, Query{S: 0, T: 3, K: 2}, Constraints{Sequence: &SequenceConstraint{
		Automaton: dfa, Label: lbl,
	}})
	if len(got) != 0 {
		t.Fatalf("k=2: got %v, want none", got)
	}
}

func TestCombinedConstraints(t *testing.T) {
	g := gen.BarabasiAlbert(60, 4, 77)
	q := Query{S: 0, T: 2, K: 4}
	const numLabels = 2
	lbl := labelOf(numLabels)
	dfa, err := automaton.AtLeastCount(numLabels, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	pred := func(u, v graph.VertexID) bool { return (u+2*v)%5 != 0 }
	acc := &Accumulator{
		Value:    weightOf,
		Combine:  func(a, b float64) float64 { return a + b },
		Identity: 0,
		Accept:   func(total float64) bool { return total >= 4 },
	}
	got := constrainedPaths(t, g, q, Constraints{
		Predicate:  pred,
		Accumulate: acc,
		Sequence:   &SequenceConstraint{Automaton: dfa, Label: lbl},
	})
	var want [][]graph.VertexID
	for _, p := range brutePathsLocal(g, q.S, q.T, q.K) {
		ok := true
		total := 0.0
		var seq []automaton.Label
		for i := 0; i+1 < len(p); i++ {
			if !pred(p[i], p[i+1]) {
				ok = false
				break
			}
			total += weightOf(p[i], p[i+1])
			seq = append(seq, lbl(p[i], p[i+1]))
		}
		if ok && total >= 4 && dfa.Accepts(seq) {
			want = append(want, p)
		}
	}
	if !samePaths(got, want) {
		t.Fatalf("combined run %d paths, oracle %d", len(got), len(want))
	}
}

func TestConstraintsValidation(t *testing.T) {
	g := paperGraph(t)
	q := paperQuery()
	if _, err := RunConstrained(g, q, Constraints{Accumulate: &Accumulator{}}, RunControl{}); err == nil {
		t.Error("incomplete accumulator: expected error")
	}
	if _, err := RunConstrained(g, q, Constraints{Sequence: &SequenceConstraint{}}, RunControl{}); err == nil {
		t.Error("incomplete sequence constraint: expected error")
	}
	if _, err := RunConstrained(g, Query{S: 0, T: 0, K: 2}, Constraints{}, RunControl{}); err == nil {
		t.Error("invalid query: expected error")
	}
}

func TestConstrainedNoConstraintsEqualsPlain(t *testing.T) {
	g := paperGraph(t)
	got := constrainedPaths(t, g, paperQuery(), Constraints{})
	want := brutePathsLocal(g, vS, vT, 4)
	if !samePaths(got, want) {
		t.Fatalf("unconstrained RunConstrained differs: %d vs %d", len(got), len(want))
	}
}

func TestConstrainedLimit(t *testing.T) {
	g := gen.Layered(4, 3)
	res, err := RunConstrained(g, Query{S: 0, T: 1, K: 4}, Constraints{}, RunControl{Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed || res.Counters.Results != 3 {
		t.Fatalf("limit: completed=%v results=%d", res.Completed, res.Counters.Results)
	}
}

func TestRunWithPredicateOption(t *testing.T) {
	// Options.Predicate must filter both enumeration methods identically.
	g := gen.BarabasiAlbert(80, 4, 13)
	q := Query{S: 0, T: 1, K: 4}
	pred := func(u, v graph.VertexID) bool { return (u+v)%4 != 0 }
	var counts []uint64
	for _, m := range []Method{MethodDFS, MethodJoin} {
		res, err := Run(g, q, Options{Method: m, Predicate: pred})
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, res.Counters.Results)
	}
	if counts[0] != counts[1] {
		t.Fatalf("methods disagree under predicate: %v", counts)
	}
	want := 0
	for _, p := range brutePathsLocal(g, q.S, q.T, q.K) {
		ok := true
		for i := 0; i+1 < len(p); i++ {
			if !pred(p[i], p[i+1]) {
				ok = false
				break
			}
		}
		if ok {
			want++
		}
	}
	if counts[0] != uint64(want) {
		t.Fatalf("predicate Run found %d, oracle %d", counts[0], want)
	}
}

// evalPathConstraints replays cons over a complete path — the whole-tuple
// post-filter that join-based constrained evaluation would need (see the
// RunConstrained note).
func evalPathConstraints(cons Constraints, p []graph.VertexID) bool {
	var acc float64
	if a := cons.Accumulate; a != nil {
		acc = a.Identity
	}
	var state automaton.State
	if s := cons.Sequence; s != nil {
		state = s.Automaton.Start()
	}
	for i := 0; i+1 < len(p); i++ {
		from, to := p[i], p[i+1]
		if a := cons.Accumulate; a != nil {
			acc = a.Combine(acc, a.Value(from, to))
		}
		if s := cons.Sequence; s != nil {
			state = s.Automaton.Step(state, s.Label(from, to))
			if state == automaton.Invalid {
				return false
			}
		}
	}
	if a := cons.Accumulate; a != nil && !a.Accept(acc) {
		return false
	}
	if s := cons.Sequence; s != nil && !s.Automaton.Accepting(state) {
		return false
	}
	return true
}

// TestConstraintsJoinPostFilterEquivalence is the regression test behind
// the RunConstrained note: per-tuple validation under the streaming
// constrained pipeline (StreamConstrained's DFS) must yield exactly the
// same result set as whole-tuple post-filtering over the streaming join,
// for predicate + accumulative + label-sequence constraints, across every
// cut position and both build sides.
func TestConstraintsJoinPostFilterEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	trials := 0
	for trials < 30 {
		n := 6 + rng.Intn(10)
		g := gen.ErdosRenyi(n, n*4, rng.Int63())
		s := graph.VertexID(rng.Intn(n))
		tt := graph.VertexID(rng.Intn(n))
		if s == tt {
			continue
		}
		trials++
		k := 2 + rng.Intn(3)
		q := Query{S: s, T: tt, K: k}
		pred := func(from, to graph.VertexID) bool { return (int(from)+int(to))%7 != 0 }
		dfa, err := automaton.AtLeastCount(2, 1, 1)
		if err != nil {
			t.Fatal(err)
		}
		cons := Constraints{
			Predicate: pred,
			Accumulate: &Accumulator{
				Value:    func(from, to graph.VertexID) float64 { return float64((int(from) + 2*int(to)) % 4) },
				Combine:  func(a, b float64) float64 { return a + b },
				Identity: 0,
				Accept:   func(total float64) bool { return int(total)%2 == 0 },
			},
			Sequence: &SequenceConstraint{
				Automaton: dfa,
				Label:     func(from, to graph.VertexID) automaton.Label { return automaton.Label((int(from) + int(to)) % 2) },
			},
		}

		// Per-tuple validation, streamed (the shipping pipeline).
		want := streamPaths(t, StreamConstrained(context.Background(), g, q, cons, Options{}, StreamConfig{}))

		// Whole-tuple post-filter over the streaming join on the
		// predicate-filtered index.
		ix, err := BuildIndexFiltered(g, q, pred)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 1; cut < k; cut++ {
			for _, side := range []BuildSide{BuildLeft, BuildRight} {
				var got []string
				done, err := EnumerateJoinSide(ix, cut, side, RunControl{Emit: func(p []graph.VertexID) bool {
					if evalPathConstraints(cons, p) {
						got = append(got, pathKey(p))
					}
					return true
				}}, nil, nil)
				if err != nil || !done {
					t.Fatalf("trial %d cut %d side %v: done=%v err=%v", trials, cut, side, done, err)
				}
				sort.Strings(got)
				if len(got) != len(want) {
					t.Fatalf("trial %d cut %d side %v: post-filtered join %d paths, constrained DFS %d (q=%v)",
						trials, cut, side, len(got), len(want), q)
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("trial %d cut %d side %v: path %d: join %q, DFS %q (q=%v)",
							trials, cut, side, i, got[i], want[i], q)
					}
				}
			}
		}
	}
}
