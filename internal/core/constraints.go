package core

import (
	"errors"

	"pathenum/internal/automaton"
	"pathenum/internal/graph"
)

// Accumulator defines the accumulative-value constraint of Appendix E
// (Algorithm 7): a commutative, associative binary operation folds per-edge
// values along the path, and a path is a result only if the total passes
// Accept.
type Accumulator struct {
	// Value returns alpha(e) for the edge (from, to).
	Value func(from, to graph.VertexID) float64
	// Combine is the binary operation ⊕; it must be commutative and
	// associative (e.g. sum, product, max).
	Combine func(a, b float64) float64
	// Identity is the initial accumulator value (0 for sum, 1 for product).
	Identity float64
	// Accept decides whether a completed path's total qualifies.
	Accept func(total float64) bool
	// Prune, when non-nil, lets the search drop a partial result early:
	// it receives the partial total and remaining hop budget and returns
	// true when no extension can qualify (only sound for monotone
	// constraints, as §E cautions for negative weights).
	Prune func(partial float64, remainingHops int) bool
}

// SequenceConstraint defines the label-sequence constraint of Appendix E
// (Algorithm 8): edge labels drive a DFA; a path qualifies when the DFA
// ends in an accepting state.
type SequenceConstraint struct {
	// Automaton is the constraint DFA.
	Automaton *automaton.DFA
	// Label returns the action label of the edge (from, to).
	Label func(from, to graph.VertexID) automaton.Label
}

// Constraints bundles the Appendix-E extensions applied to a query.
// Zero-value fields are inactive.
type Constraints struct {
	// Predicate filters edges during index construction; combined with the
	// hop constraint it affects both enumeration methods.
	Predicate EdgePredicate
	// Accumulate applies an accumulative-value constraint.
	Accumulate *Accumulator
	// Sequence applies a label-sequence constraint.
	Sequence *SequenceConstraint
}

// Errors returned by the constrained runner.
var (
	ErrBadAccumulator = errors.New("core: accumulator needs Value, Combine and Accept")
	ErrBadSequence    = errors.New("core: sequence constraint needs Automaton and Label")
)

func (c *Constraints) validate() error {
	if c.Accumulate != nil {
		a := c.Accumulate
		if a.Value == nil || a.Combine == nil || a.Accept == nil {
			return ErrBadAccumulator
		}
	}
	if c.Sequence != nil {
		s := c.Sequence
		if s.Automaton == nil || s.Label == nil {
			return ErrBadSequence
		}
	}
	return nil
}

// constrainedSearcher extends the index DFS with per-depth accumulator
// values and automaton states (Algorithms 7 and 8 share the recursion).
type constrainedSearcher struct {
	ix      *Index
	cons    *Constraints
	ctl     RunControl
	ctr     *Counters
	path    []graph.VertexID
	accs    []float64         // accs[d] = accumulated value at depth d
	states  []automaton.State // states[d] = automaton state at depth d
	onPath  []bool
	ticker  uint32
	stopped bool
}

// EnumerateConstrainedDFS runs the constrained depth-first search on the
// index. The hop constraint and predicate are enforced structurally by the
// index; the accumulator and automaton are carried through the recursion
// and checked at emission (plus optional monotone pruning).
func EnumerateConstrainedDFS(ix *Index, cons Constraints, ctl RunControl, ctr *Counters) (bool, error) {
	if err := cons.validate(); err != nil {
		return false, err
	}
	if ctr == nil {
		ctr = &Counters{}
	}
	if ix.Empty() {
		return true, nil
	}
	s := &constrainedSearcher{
		ix:     ix,
		cons:   &cons,
		ctl:    ctl,
		ctr:    ctr,
		path:   make([]graph.VertexID, 0, ix.k+1),
		onPath: make([]bool, ix.g.NumVertices()),
	}
	if cons.Accumulate != nil {
		s.accs = make([]float64, 1, ix.k+1)
		s.accs[0] = cons.Accumulate.Identity
	}
	if cons.Sequence != nil {
		s.states = make([]automaton.State, 1, ix.k+1)
		s.states[0] = cons.Sequence.Automaton.Start()
	}
	s.path = append(s.path, ix.q.S)
	s.onPath[ix.q.S] = true
	s.search()
	return !s.stopped, nil
}

func (s *constrainedSearcher) qualifies() bool {
	d := len(s.path) - 1
	if a := s.cons.Accumulate; a != nil && !a.Accept(s.accs[d]) {
		return false
	}
	if q := s.cons.Sequence; q != nil && !q.Automaton.Accepting(s.states[d]) {
		return false
	}
	return true
}

func (s *constrainedSearcher) search() {
	ix := s.ix
	v := s.path[len(s.path)-1]
	if v == ix.q.T {
		if s.qualifies() {
			s.ctr.Results++
			if s.ctl.Emit != nil && !s.ctl.Emit(s.path) {
				s.stopped = true
			}
			if s.ctl.Limit > 0 && s.ctr.Results >= s.ctl.Limit {
				s.stopped = true
			}
		}
		return
	}
	s.ticker++
	if s.ticker%stopCheckInterval == 0 && s.ctl.ShouldStop != nil && s.ctl.ShouldStop() {
		s.stopped = true
		return
	}
	depth := len(s.path) - 1
	budget := ix.k - depth - 1
	nbrs := ix.OutUpTo(v, budget)
	s.ctr.EdgesAccessed += uint64(len(nbrs))
	for _, w := range nbrs {
		if s.onPath[w] {
			continue
		}
		if a := s.cons.Accumulate; a != nil {
			next := a.Combine(s.accs[depth], a.Value(v, w))
			if a.Prune != nil && a.Prune(next, budget) {
				continue
			}
			s.accs = append(s.accs[:depth+1], next)
		}
		if q := s.cons.Sequence; q != nil {
			next := q.Automaton.Step(s.states[depth], q.Label(v, w))
			if next == automaton.Invalid {
				continue // Algorithm 8 line 9: invalid action, skip
			}
			s.states = append(s.states[:depth+1], next)
		}
		s.path = append(s.path, w)
		s.onPath[w] = true
		s.search()
		s.onPath[w] = false
		s.path = s.path[:len(s.path)-1]
		if s.stopped {
			return
		}
	}
}

// RunConstrained executes a constrained query end to end: predicate-filtered
// index construction followed by the constrained DFS. Join-based evaluation
// is intentionally not offered here even though the join now streams
// tuple-at-a-time: Appendix E notes the DFS terminates invalid branches
// earlier, and the accumulative/sequence constraints would still have to
// post-filter each joined tuple whole (half-side walks carry no automaton
// state for the other half). The two formulations are equivalent — the
// per-tuple validation this DFS performs yields exactly the whole-tuple
// post-filter over the streaming join's output, pinned by
// TestConstraintsJoinPostFilterEquivalence across cuts and build sides.
func RunConstrained(g *graph.Graph, q Query, cons Constraints, ctl RunControl) (*Result, error) {
	if err := q.Validate(g); err != nil {
		return nil, err
	}
	if err := cons.validate(); err != nil {
		return nil, err
	}
	res := &Result{Query: q}
	ix, err := BuildIndexFiltered(g, q, cons.Predicate)
	if err != nil {
		return nil, err
	}
	res.IndexEdges = ix.Edges()
	res.IndexVertices = ix.NumIndexed()
	res.IndexBytes = ix.MemoryBytes()
	res.Plan = Plan{Method: MethodDFS, Preliminary: PreliminaryEstimate(ix)}
	done, err := EnumerateConstrainedDFS(ix, cons, ctl, &res.Counters)
	if err != nil {
		return nil, err
	}
	res.Completed = done
	return res, nil
}
