package core

import (
	"context"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"pathenum/internal/gen"
	"pathenum/internal/graph"
)

// collectPaths runs fn with an Emit that materializes every path as a
// string, returning the sorted set.
func collectPaths(t *testing.T, run func(Options) (*Result, error)) []string {
	t.Helper()
	var out []string
	res, err := run(Options{Emit: func(p []graph.VertexID) bool {
		var sb strings.Builder
		for i, v := range p {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(itoa(int(v)))
		}
		out = append(out, sb.String())
		return true
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("run must complete")
	}
	sort.Strings(out)
	return out
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestRunSharedMatchesRun: executing with a shared frontier on either (or
// both) sides must emit exactly the path set of the per-query pipeline,
// even though frontier labels are a relaxation (full-graph BFS, larger
// bound) of the per-query ones. This is the correctness contract the
// batch subsystem rests on.
func TestRunSharedMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	ctx := context.Background()
	for trial := 0; trial < 40; trial++ {
		n := 10 + rng.Intn(40)
		g := gen.BarabasiAlbert(n, 3, rng.Int63())
		s := graph.VertexID(rng.Intn(n))
		tt := graph.VertexID(rng.Intn(n))
		if s == tt {
			continue
		}
		k := 2 + rng.Intn(4)
		q := Query{S: s, T: tt, K: k}
		bound := k + rng.Intn(3) // frontiers may be built to a larger bound

		fwd, err := NewForwardFrontier(g, s, bound, nil, PredicateNone)
		if err != nil {
			t.Fatal(err)
		}
		bwd, err := NewBackwardFrontier(g, tt, bound, nil, PredicateNone)
		if err != nil {
			t.Fatal(err)
		}

		sess := NewSession(g, nil)
		want := collectPaths(t, func(o Options) (*Result, error) { return Run(g, q, o) })
		for name, pair := range map[string][2]*Frontier{
			"fwd":  {fwd, nil},
			"bwd":  {nil, bwd},
			"both": {fwd, bwd},
		} {
			got := collectPaths(t, func(o Options) (*Result, error) {
				return sess.RunShared(ctx, q, o, pair[0], pair[1])
			})
			if !equalStrings(want, got) {
				t.Fatalf("trial %d %v (%s): shared paths %v != per-query %v", trial, q, name, got, want)
			}
		}
	}
}

// TestRunSharedPredicate: a predicate-constrained query must agree with the
// per-query pipeline when the shared frontier was built under the same
// predicate.
func TestRunSharedPredicate(t *testing.T) {
	rng := rand.New(rand.NewSource(909))
	ctx := context.Background()
	for trial := 0; trial < 20; trial++ {
		n := 12 + rng.Intn(30)
		g := gen.BarabasiAlbert(n, 3, rng.Int63())
		s := graph.VertexID(rng.Intn(n))
		tt := graph.VertexID(rng.Intn(n))
		if s == tt {
			continue
		}
		q := Query{S: s, T: tt, K: 3 + rng.Intn(3)}
		// Drop edges whose endpoint sum is divisible by 5: deterministic,
		// stateless, safe for concurrent calls.
		pred := func(from, to graph.VertexID) bool { return (int(from)+int(to))%5 != 0 }

		fwd, err := NewForwardFrontier(g, s, q.K, pred, 7)
		if err != nil {
			t.Fatal(err)
		}
		sess := NewSession(g, nil)
		want := collectPaths(t, func(o Options) (*Result, error) {
			o.Predicate = pred
			return Run(g, q, o)
		})
		got := collectPaths(t, func(o Options) (*Result, error) {
			o.Predicate = pred
			o.PredicateToken = 7
			return sess.RunShared(ctx, q, o, fwd, nil)
		})
		if !equalStrings(want, got) {
			t.Fatalf("trial %d %v: predicate shared paths %v != per-query %v", trial, q, got, want)
		}
	}
}

// TestFrontierValidation: mismatched frontiers must be rejected, not
// silently produce wrong indexes.
func TestFrontierValidation(t *testing.T) {
	g := gen.BarabasiAlbert(20, 2, 1)
	other := gen.BarabasiAlbert(20, 2, 2)
	ctx := context.Background()
	sess := NewSession(g, nil)
	q := Query{S: 0, T: 5, K: 4}

	fwd, err := NewForwardFrontier(g, 0, 4, nil, PredicateNone)
	if err != nil {
		t.Fatal(err)
	}
	bwd, err := NewBackwardFrontier(g, 5, 4, nil, PredicateNone)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name     string
		fwd, bwd *Frontier
		q        Query
	}{
		{"wrong origin fwd", mustFwd(t, g, 1, 4), nil, q},
		{"wrong origin bwd", nil, mustBwd(t, g, 6, 4), q},
		{"direction swap", bwd, nil, q},
		{"bound too small", mustFwd(t, g, 0, 2), nil, q},
		{"wrong graph", mustFwd(t, other, 0, 4), nil, q},
	}
	for _, tc := range cases {
		if _, err := sess.RunShared(ctx, tc.q, Options{}, tc.fwd, tc.bwd); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	// Predicate identity is declared by token (see PredicateToken):
	// frontier built with a predicate but query without, the reverse,
	// distinct tokens, and an opaque (token-less) predicate are all
	// rejected; only the matching token is accepted.
	predA := func(from, to graph.VertexID) bool { return from < to }
	predB := func(from, to graph.VertexID) bool { return from > to }
	fwdPred, err := NewForwardFrontier(g, 0, 4, predA, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewForwardFrontier(g, 0, 4, predA, PredicateNone); err == nil {
		t.Error("opaque predicate (no token) frontier construction: expected error")
	}
	if _, err := NewForwardFrontier(g, 0, 4, nil, 3); err == nil {
		t.Error("token without predicate: expected error")
	}
	if _, err := sess.RunShared(ctx, q, Options{}, fwdPred, nil); err == nil {
		t.Error("frontier predicate vs nil query predicate: expected error")
	}
	if _, err := sess.RunShared(ctx, q, Options{Predicate: predA, PredicateToken: 1}, fwd, nil); err == nil {
		t.Error("nil frontier predicate vs query predicate: expected error")
	}
	if _, err := sess.RunShared(ctx, q, Options{Predicate: predB, PredicateToken: 2}, fwdPred, nil); err == nil {
		t.Error("different predicate tokens: expected error")
	}
	if _, err := sess.RunShared(ctx, q, Options{Predicate: predA}, fwdPred, nil); err == nil {
		t.Error("opaque query predicate (no token): expected error")
	}
	if _, err := sess.RunShared(ctx, q, Options{Predicate: predA, PredicateToken: 1}, fwdPred, nil); err != nil {
		t.Fatalf("matching predicate token rejected: %v", err)
	}
	// Sanity: the matching pair is accepted.
	if _, err := sess.RunShared(ctx, q, Options{}, fwd, bwd); err != nil {
		t.Fatalf("valid frontiers rejected: %v", err)
	}

	if _, err := NewForwardFrontier(g, -1, 4, nil, PredicateNone); err == nil {
		t.Error("negative origin: expected error")
	}
	if _, err := NewBackwardFrontier(g, 0, 0, nil, PredicateNone); err == nil {
		t.Error("zero bound: expected error")
	}
}

func mustFwd(t *testing.T, g *graph.Graph, s graph.VertexID, bound int) *Frontier {
	t.Helper()
	f, err := NewForwardFrontier(g, s, bound, nil, PredicateNone)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func mustBwd(t *testing.T, g *graph.Graph, v graph.VertexID, bound int) *Frontier {
	t.Helper()
	f, err := NewBackwardFrontier(g, v, bound, nil, PredicateNone)
	if err != nil {
		t.Fatal(err)
	}
	return f
}
