// Package core implements the paper's primary contribution: the PathEnum
// query engine for hop-constrained s-t path enumeration (HcPE).
//
// For a query q(s,t,k) on a directed graph G, PathEnum (1) builds a
// query-dependent light-weight index from the distances of every vertex to s
// and t (§4.2, Algorithm 3), (2) estimates the search-space size with a
// preliminary estimator (Equation 5), and (3) either runs a depth-first
// search directly on the index (§5, Algorithm 4) or invokes a full-fledged
// cardinality estimator (Algorithm 5) to pick between the DFS and a bushy
// join plan that splits the query at an optimized cut position (§6,
// Algorithm 6).
package core

import (
	"errors"
	"fmt"

	"pathenum/internal/graph"
)

// Query is a HcPE query q(s,t,k): enumerate all simple paths from S to T
// with at most K edges.
type Query struct {
	S graph.VertexID
	T graph.VertexID
	K int
}

// Validation errors returned by Query.Validate.
var (
	ErrSameEndpoints = errors.New("core: source and target must be distinct")
	ErrHopConstraint = errors.New("core: hop constraint must be >= 1")
	ErrVertexRange   = errors.New("core: query endpoint out of range")
)

// Validate checks the query against g.
func (q Query) Validate(g *graph.Graph) error {
	n := graph.VertexID(g.NumVertices())
	if q.S < 0 || q.S >= n || q.T < 0 || q.T >= n {
		return fmt.Errorf("%w: s=%d t=%d n=%d", ErrVertexRange, q.S, q.T, n)
	}
	if q.S == q.T {
		return fmt.Errorf("%w: s=t=%d", ErrSameEndpoints, q.S)
	}
	if q.K < 1 {
		return fmt.Errorf("%w: k=%d", ErrHopConstraint, q.K)
	}
	return nil
}

// String implements fmt.Stringer.
func (q Query) String() string { return fmt.Sprintf("q(%d,%d,%d)", q.S, q.T, q.K) }
