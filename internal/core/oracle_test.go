package core

import (
	"math/rand"
	"testing"

	"pathenum/internal/gen"
	"pathenum/internal/graph"
	"pathenum/internal/landmark"
)

// TestOracleIndexIdentical is the central property of the §7.5 extension:
// the oracle-pruned index is exactly the plain index — same partition, same
// edges, same enumeration results.
func TestOracleIndexIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 40; trial++ {
		n := 8 + rng.Intn(40)
		g := gen.ErdosRenyi(n, n*3, rng.Int63())
		oracle, err := landmark.Build(g, 4)
		if err != nil {
			t.Fatal(err)
		}
		s := graph.VertexID(rng.Intn(n))
		tt := graph.VertexID(rng.Intn(n))
		if s == tt {
			continue
		}
		q := Query{S: s, T: tt, K: 2 + rng.Intn(4)}

		plain := mustIndex(t, g, q)
		pruned, err := BuildIndexOracle(g, q, oracle)
		if err != nil {
			t.Fatal(err)
		}
		if plain.Empty() != pruned.Empty() {
			t.Fatalf("trial %d %v: empty mismatch: plain=%v pruned=%v",
				trial, q, plain.Empty(), pruned.Empty())
		}
		if plain.Empty() {
			continue
		}
		if plain.NumIndexed() != pruned.NumIndexed() {
			t.Fatalf("trial %d %v: |X| %d vs %d", trial, q, plain.NumIndexed(), pruned.NumIndexed())
		}
		if plain.Edges() != pruned.Edges() {
			t.Fatalf("trial %d %v: edges %d vs %d", trial, q, plain.Edges(), pruned.Edges())
		}
		for v := graph.VertexID(0); v < graph.VertexID(n); v++ {
			if plain.InX(v) != pruned.InX(v) {
				t.Fatalf("trial %d %v: InX(%d) differs", trial, q, v)
			}
			if plain.InX(v) && (plain.DistS(v) != pruned.DistS(v) || plain.DistT(v) != pruned.DistT(v)) {
				t.Fatalf("trial %d %v: labels of %d differ", trial, q, v)
			}
		}
		var a, b Counters
		EnumerateDFS(plain, RunControl{}, &a)
		EnumerateDFS(pruned, RunControl{}, &b)
		if a.Results != b.Results {
			t.Fatalf("trial %d %v: results %d vs %d", trial, q, a.Results, b.Results)
		}
	}
}

// TestOracleInfeasibleShortcut: a provably out-of-range query must produce
// an empty index with no BFS.
func TestOracleInfeasibleShortcut(t *testing.T) {
	// Long directed path: dist(0, n-1) = n-1.
	n := 30
	var edges []graph.Edge
	for i := 0; i+1 < n; i++ {
		edges = append(edges, graph.Edge{From: int32(i), To: int32(i + 1)})
	}
	g, err := graph.NewGraph(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := landmark.Build(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := BuildIndexOracle(g, Query{S: 0, T: int32(n - 1), K: 5}, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if !ix.Empty() {
		t.Fatal("index must be empty for an infeasible query")
	}
	// Unreachable pair (reverse direction on a one-way path).
	ix2, err := BuildIndexOracle(g, Query{S: int32(n - 1), T: 0, K: 5}, oracle)
	if err != nil {
		t.Fatal(err)
	}
	if !ix2.Empty() {
		t.Fatal("index must be empty for an unreachable target")
	}
}

// TestRunWithOracleOption: the end-to-end driver with an oracle agrees
// with the plain run.
func TestRunWithOracleOption(t *testing.T) {
	g := gen.BarabasiAlbert(150, 4, 12)
	oracle, err := landmark.Build(g, 6)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		s := graph.VertexID(rng.Intn(150))
		tt := graph.VertexID(rng.Intn(150))
		if s == tt {
			continue
		}
		q := Query{S: s, T: tt, K: 4}
		plain, err := Run(g, q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		pruned, err := Run(g, q, Options{Oracle: oracle})
		if err != nil {
			t.Fatal(err)
		}
		if plain.Counters.Results != pruned.Counters.Results {
			t.Fatalf("trial %d %v: %d vs %d results",
				trial, q, plain.Counters.Results, pruned.Counters.Results)
		}
	}
}

func TestBuildIndexOracleValidation(t *testing.T) {
	g := gen.Cycle(5)
	oracle, err := landmark.Build(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildIndexOracle(g, Query{S: 1, T: 1, K: 3}, oracle); err == nil {
		t.Fatal("s == t: expected error")
	}
	// Nil oracle degrades to the plain build.
	ix, err := BuildIndexOracle(g, Query{S: 0, T: 2, K: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Empty() {
		t.Fatal("cycle query must be feasible")
	}
}
