package core

import (
	"time"

	"pathenum/internal/graph"
)

// Index is the query-dependent light-weight index of §4.2 (Algorithm 3).
//
// For a query q(s,t,k) it stores, for every vertex v with
// S(s,v|G-{t}) + S(v,t|G-{s}) <= k (the partition X):
//
//   - the distance labels v.s and v.t;
//   - the out-neighbors w of v that can still reach t within budget
//     (v.s + w.t + 1 <= k), sorted ascending by w.t, with per-vertex prefix
//     offsets so It(v,b) — "neighbors w with w.t <= b" — is an O(1) slice;
//   - the mirrored in-neighbor lists sorted by w.s for Is(v,b), used by the
//     backward dynamic program of the join-order optimizer (Algorithm 5).
//
// Following the relation construction of §3.1, edges into s and out of t
// are excluded, and t carries the single padding self-loop (t,t) so that
// paths shorter than k survive the chain join (property 3 of §3.1).
// Appendix B proves this edge set equals the full-reducer output of
// Algorithm 2; the tests verify that equivalence.
type Index struct {
	g    *graph.Graph
	q    Query
	k    int
	pred EdgePredicate // optional edge filter (Appendix E); nil = all edges

	empty bool // s or t fell outside X: the query has no results

	verts []graph.VertexID // vertices of X in ascending id order
	pos   []int32          // vertex -> dense position in verts, -1 if not in X
	vs    []int32          // per dense position: v.s
	vt    []int32          // per dense position: v.t

	fwdNbrs []graph.VertexID
	fwdBase []int64 // len(verts)+1
	fwdOff  []int32 // len(verts)*(k+2) prefix counts keyed by w.t

	revNbrs []graph.VertexID
	revBase []int64
	revOff  []int32 // prefix counts keyed by w.s

	cSize []int64  // |C_i| for i = 0..k
	sumIt []uint64 // sum over C_i of |It(v, k-i-1)| for i = 0..k-1 (Eq. 5 stats)

	edges int64 // index edges excluding the (t,t) padding loop
}

// BuildIndex constructs the light-weight index for q on g (Algorithm 3).
// Construction is O(|E| + |V|) time: two bounded BFS passes, one partition
// pass and two counting-sort adjacency passes.
func BuildIndex(g *graph.Graph, q Query) (*Index, error) {
	if err := q.Validate(g); err != nil {
		return nil, err
	}
	n := g.NumVertices()
	scratch := newBFSScratch(n)
	scratch.run(g, q, nil)
	return buildIndexFrom(g, q, scratch, nil), nil
}

// IndexBuildTimings reports the phases of one index construction: the
// distance-labeling BFS (line 1 of Algorithm 3) and the total build.
type IndexBuildTimings struct {
	BFS   time.Duration
	Total time.Duration
}

// BuildIndexTimed builds the index while timing the BFS phase separately,
// feeding the per-technique breakdowns of Figures 12 and 17.
func BuildIndexTimed(g *graph.Graph, q Query) (*Index, IndexBuildTimings, error) {
	if err := q.Validate(g); err != nil {
		return nil, IndexBuildTimings{}, err
	}
	start := time.Now()
	scratch := newBFSScratch(g.NumVertices())
	scratch.run(g, q, nil)
	bfs := time.Since(start)
	ix := buildIndexFrom(g, q, scratch, nil)
	return ix, IndexBuildTimings{BFS: bfs, Total: time.Since(start)}, nil
}

// BuildIndexFiltered constructs the index for q on the subgraph of edges
// satisfying pred, implementing the predicate-constraint extension of
// Appendix E without materializing the subgraph: the BFS labelings and both
// adjacency passes consult the predicate directly.
func BuildIndexFiltered(g *graph.Graph, q Query, pred EdgePredicate) (*Index, error) {
	if err := q.Validate(g); err != nil {
		return nil, err
	}
	scratch := newBFSScratch(g.NumVertices())
	scratch.run(g, q, pred)
	return buildIndexFrom(g, q, scratch, pred), nil
}

// buildIndexFrom assembles the index from completed BFS labelings. Split
// out so the harness can time the BFS phase separately (Figure 12/17).
// The assembly itself lives in buildIndexFromDists (executor.go);
// one-shot callers pay a fresh position buffer here.
func buildIndexFrom(g *graph.Graph, q Query, scratch *bfsScratch, pred EdgePredicate) *Index {
	return buildIndexFromDists(g, q, scratch.distS, scratch.distT, pred, make([]int32, g.NumVertices()))
}

// buildForward fills the neighbor lists sorted by w.t (lines 5-11).
func (ix *Index) buildForward(distT []int32) {
	g, q, k := ix.g, ix.q, ix.k
	m := len(ix.verts)
	k32 := int32(k)

	keep := func(p int, v, w graph.VertexID) bool {
		if w == q.S { // no edges into s (relation property 2)
			return false
		}
		if ix.pred != nil && !ix.pred(v, w) {
			return false
		}
		wt := distT[w]
		return wt >= 0 && ix.vs[p]+wt+1 <= k32
	}

	ix.fwdBase = make([]int64, m+1)
	for p, v := range ix.verts {
		if v == q.T {
			ix.fwdBase[p+1] = ix.fwdBase[p] + 1 // the (t,t) loop only
			continue
		}
		cnt := int64(0)
		for _, w := range g.OutNeighbors(v) {
			if keep(p, v, w) {
				cnt++
			}
		}
		ix.fwdBase[p+1] = ix.fwdBase[p] + cnt
	}
	total := ix.fwdBase[m]
	ix.fwdNbrs = make([]graph.VertexID, total)
	ix.fwdOff = make([]int32, m*(k+2))
	ix.edges = total - 1 // exclude the (t,t) loop

	var buckets [][]graph.VertexID // per-distance buckets for counting sort
	for p, v := range ix.verts {
		off := ix.fwdOff[p*(k+2) : (p+1)*(k+2)]
		base := ix.fwdBase[p]
		if v == q.T {
			ix.fwdNbrs[base] = q.T
			for d := 1; d <= k+1; d++ {
				off[d] = 1 // t.t = 0, so every non-empty budget sees the loop
			}
			continue
		}
		if buckets == nil {
			buckets = make([][]graph.VertexID, k+1)
		}
		for d := range buckets {
			buckets[d] = buckets[d][:0]
		}
		for _, w := range g.OutNeighbors(v) {
			if keep(p, v, w) {
				buckets[distT[w]] = append(buckets[distT[w]], w)
			}
		}
		cursor := base
		for d := 0; d <= k; d++ {
			for _, w := range buckets[d] {
				ix.fwdNbrs[cursor] = w
				cursor++
			}
			off[d+1] = int32(cursor - base)
		}
	}
}

// buildReverse fills the mirrored in-neighbor lists sorted by w.s. The edge
// set is identical to the forward one: this is only a second access path.
func (ix *Index) buildReverse(distS []int32) {
	g, q, k := ix.g, ix.q, ix.k
	m := len(ix.verts)
	k32 := int32(k)

	keep := func(p int, v, w graph.VertexID) bool {
		// w -> v must be a forward index edge: w in X - {t}, v != s,
		// w.s + v.t + 1 <= k.
		if w == q.T {
			return false
		}
		wp := ix.pos[w]
		if wp < 0 {
			return false
		}
		if ix.pred != nil && !ix.pred(w, v) {
			return false
		}
		return ix.vs[wp]+ix.vt[p]+1 <= k32
	}

	ix.revBase = make([]int64, m+1)
	for p, v := range ix.verts {
		cnt := int64(0)
		if v != q.S {
			for _, w := range g.InNeighbors(v) {
				if keep(p, v, w) {
					cnt++
				}
			}
			if v == q.T {
				cnt++ // the (t,t) loop
			}
		}
		ix.revBase[p+1] = ix.revBase[p] + cnt
	}
	ix.revNbrs = make([]graph.VertexID, ix.revBase[m])
	ix.revOff = make([]int32, m*(k+2))

	var buckets [][]graph.VertexID
	for p, v := range ix.verts {
		off := ix.revOff[p*(k+2) : (p+1)*(k+2)]
		base := ix.revBase[p]
		if v == q.S {
			continue // no in-edges; off stays all zero
		}
		if buckets == nil {
			buckets = make([][]graph.VertexID, k+1)
		}
		for d := range buckets {
			buckets[d] = buckets[d][:0]
		}
		for _, w := range g.InNeighbors(v) {
			if keep(p, v, w) {
				buckets[distS[w]] = append(buckets[distS[w]], w)
			}
		}
		if v == q.T {
			// t.s is the s->t distance; the loop joins t's own bucket.
			buckets[ix.vs[p]] = append(buckets[ix.vs[p]], q.T)
		}
		cursor := base
		for d := 0; d <= k; d++ {
			for _, w := range buckets[d] {
				ix.revNbrs[cursor] = w
				cursor++
			}
			off[d+1] = int32(cursor - base)
		}
	}
}

// collectStats gathers |C_i| and the Equation-5 neighbor sums.
func (ix *Index) collectStats() {
	k := ix.k
	ix.cSize = make([]int64, k+1)
	ix.sumIt = make([]uint64, k)
	for p := range ix.verts {
		lo, hi := int(ix.vs[p]), k-int(ix.vt[p])
		for i := lo; i <= hi; i++ {
			ix.cSize[i]++
			if i < k {
				ix.sumIt[i] += uint64(len(ix.outUpToPos(int32(p), k-i-1)))
			}
		}
	}
}

// Empty reports whether the index proves the query has no results.
func (ix *Index) Empty() bool { return ix.empty }

// K returns the query's hop constraint.
func (ix *Index) K() int { return ix.k }

// Query returns the query the index was built for.
func (ix *Index) Query() Query { return ix.q }

// Graph returns the underlying graph.
func (ix *Index) Graph() *graph.Graph { return ix.g }

// NumIndexed returns |X|, the number of indexed vertices.
func (ix *Index) NumIndexed() int { return len(ix.verts) }

// Edges returns the number of index edges (excluding the padding loop),
// the "index size" metric of Figure 10.
func (ix *Index) Edges() int64 {
	if ix.empty {
		return 0
	}
	return ix.edges
}

// InX reports whether v belongs to the partition X.
func (ix *Index) InX(v graph.VertexID) bool { return !ix.empty && ix.pos[v] >= 0 }

// DistS returns v.s, or -1 if v is outside X.
func (ix *Index) DistS(v graph.VertexID) int32 {
	if ix.empty || ix.pos[v] < 0 {
		return -1
	}
	return ix.vs[ix.pos[v]]
}

// DistT returns v.t, or -1 if v is outside X.
func (ix *Index) DistT(v graph.VertexID) int32 {
	if ix.empty || ix.pos[v] < 0 {
		return -1
	}
	return ix.vt[ix.pos[v]]
}

// OutUpTo implements It(v, b): the out-neighbors w of v in the index with
// w.t <= b, sorted ascending by w.t. The slice aliases index storage. O(1).
func (ix *Index) OutUpTo(v graph.VertexID, b int) []graph.VertexID {
	if ix.empty {
		return nil
	}
	p := ix.pos[v]
	if p < 0 {
		return nil
	}
	return ix.outUpToPos(p, b)
}

func (ix *Index) outUpToPos(p int32, b int) []graph.VertexID {
	if b < 0 {
		return nil
	}
	if b > ix.k {
		b = ix.k
	}
	base := ix.fwdBase[p]
	end := ix.fwdOff[int(p)*(ix.k+2)+b+1]
	return ix.fwdNbrs[base : base+int64(end)]
}

// InUpTo implements Is(v, b): the in-neighbors w of v in the index with
// w.s <= b, sorted ascending by w.s. The slice aliases index storage. O(1).
func (ix *Index) InUpTo(v graph.VertexID, b int) []graph.VertexID {
	if ix.empty {
		return nil
	}
	p := ix.pos[v]
	if p < 0 {
		return nil
	}
	return ix.inUpToPos(p, b)
}

func (ix *Index) inUpToPos(p int32, b int) []graph.VertexID {
	if b < 0 {
		return nil
	}
	if b > ix.k {
		b = ix.k
	}
	base := ix.revBase[p]
	end := ix.revOff[int(p)*(ix.k+2)+b+1]
	return ix.revNbrs[base : base+int64(end)]
}

// LevelSize returns |C_i| = |I(i)|, the number of vertices that can appear
// at position i of a result (Proposition 4.3).
func (ix *Index) LevelSize(i int) int64 {
	if i < 0 || i > ix.k {
		return 0
	}
	return ix.cSize[i]
}

// ForEachLevel calls fn for every vertex of C_i.
func (ix *Index) ForEachLevel(i int, fn func(v graph.VertexID)) {
	if ix.empty || i < 0 || i > ix.k {
		return
	}
	i32 := int32(i)
	ki32 := int32(ix.k - i)
	for p, v := range ix.verts {
		if ix.vs[p] <= i32 && ix.vt[p] <= ki32 {
			fn(v)
		}
	}
}

// MemoryBytes estimates the resident size of the index (Table 7).
func (ix *Index) MemoryBytes() int64 {
	b := int64(len(ix.pos))*4 + int64(len(ix.verts))*4
	b += int64(len(ix.vs))*4 + int64(len(ix.vt))*4
	b += int64(len(ix.fwdNbrs))*4 + int64(len(ix.fwdBase))*8 + int64(len(ix.fwdOff))*4
	b += int64(len(ix.revNbrs))*4 + int64(len(ix.revBase))*8 + int64(len(ix.revOff))*4
	b += int64(len(ix.cSize))*8 + int64(len(ix.sumIt))*8
	return b
}
