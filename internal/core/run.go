package core

import (
	"context"
	"time"

	"pathenum/internal/graph"
)

// Options configures one PathEnum query execution.
type Options struct {
	// Method selects the algorithm; MethodAuto enables the optimizer.
	Method Method
	// Tau overrides the preliminary-estimate threshold (0 = DefaultTau).
	Tau float64
	// Limit stops enumeration after this many results when positive.
	Limit uint64
	// Timeout bounds the whole run when positive.
	Timeout time.Duration
	// Emit receives each result path; the slice is reused — copy to
	// retain. Returning false stops the run. Nil counts only.
	Emit func(path []graph.VertexID) bool
	// Predicate restricts the query to edges satisfying it (Appendix E);
	// nil admits all edges.
	Predicate EdgePredicate
	// PredicateToken declares Predicate's identity for frontier sharing
	// and the engine's frontier cache (see core.PredicateToken). Leave it
	// zero for a nil Predicate. A non-nil Predicate with a zero token is
	// opaque: executed correctly, but excluded from sharing and caching.
	PredicateToken PredicateToken
	// Oracle, when non-nil, prunes index construction with global
	// distance lower bounds (§7.5 future work; see internal/landmark).
	// It must have been built on the same graph version; version-aware
	// oracles are checked per run and rejected with graph.ErrStaleEpoch.
	Oracle DistanceOracle
	// Parallelism fans the enumeration phase of this one query across up
	// to this many goroutines (0 or 1 = sequential): the join's probe
	// walks and the DFS's first-hop subtrees shard across workers while
	// index construction, plan selection and the build side stay
	// sequential. Emit is then called only from the run's own goroutine
	// with merge-enforced Limit semantics, and every emitted path is a
	// fresh slice owned by the callee (unlike the sequential reused
	// buffer). Completed runs report identical Counters; the engine caps
	// the value at its worker count, and the constrained DFS ignores it.
	Parallelism int
}

// Timings breaks the query time into the phases reported by Figures 7, 12
// and 17.
type Timings struct {
	BFS       time.Duration // distance labeling (included in Build)
	Build     time.Duration // full index construction, BFS included
	Optimize  time.Duration // estimator + plan selection
	Enumerate time.Duration // result enumeration
	// FirstPath is the time from stream start (StreamConfig.Began when
	// set, else the first pull) to the first delivered path. Streamed
	// runs only; zero when no path was delivered or the run was not a
	// stream.
	FirstPath time.Duration
}

// Total returns the full query time.
func (t Timings) Total() time.Duration { return t.Build + t.Optimize + t.Enumerate }

// Result reports the outcome of one query execution. JoinStats is
// meaningful for join-planned runs (Plan.Method == MethodJoin): it
// records the build/probe footprint of the tuple-at-a-time join,
// including runs stopped early — ProbeWalks then shows how far the lazy
// probe got.
type Result struct {
	Query     Query
	Plan      Plan
	Counters  Counters
	JoinStats JoinStats
	Timings   Timings
	// Completed is false when the run stopped early (limit, timeout or
	// emit cancellation).
	Completed bool
	// IndexEdges / IndexVertices / IndexBytes describe the built index.
	IndexEdges    int64
	IndexVertices int
	IndexBytes    int64
	// MemFallback reports that a join-planned run was demoted to DFS
	// because the estimator predicted a build side exceeding the
	// session's remaining memory budget. Path sets are unaffected — DFS
	// and join enumerate the same set — only the cost profile changes.
	MemFallback bool
}

// Run executes q on g per opts: build index, plan, enumerate. This is the
// engine behind the public API and every experiment harness. It is a
// one-shot wrapper over the shared executor pipeline; services answering a
// query stream should hold a Session (or the public Engine) instead to
// amortize the per-query buffer allocations.
func Run(g *graph.Graph, q Query, opts Options) (*Result, error) {
	return RunContext(context.Background(), g, q, opts)
}

// RunContext is Run observing ctx: cancellation or a context deadline stops
// the enumeration early (Result.Completed reports false), checked on an
// amortized event counter alongside opts.Timeout.
func RunContext(ctx context.Context, g *graph.Graph, q Query, opts Options) (*Result, error) {
	return newExecutor(g, nil).execute(ctx, q, opts)
}

// Count returns the number of hop-constrained s-t paths, running the full
// optimizer with no limits. Convenience wrapper used widely in tests.
func Count(g *graph.Graph, q Query) (uint64, error) {
	res, err := Run(g, q, Options{})
	if err != nil {
		return 0, err
	}
	return res.Counters.Results, nil
}
