package core

import (
	"time"

	"pathenum/internal/graph"
)

// Options configures one PathEnum query execution.
type Options struct {
	// Method selects the algorithm; MethodAuto enables the optimizer.
	Method Method
	// Tau overrides the preliminary-estimate threshold (0 = DefaultTau).
	Tau float64
	// Limit stops enumeration after this many results when positive.
	Limit uint64
	// Timeout bounds the whole run when positive.
	Timeout time.Duration
	// Emit receives each result path; the slice is reused — copy to
	// retain. Returning false stops the run. Nil counts only.
	Emit func(path []graph.VertexID) bool
	// Predicate restricts the query to edges satisfying it (Appendix E);
	// nil admits all edges.
	Predicate EdgePredicate
	// Oracle, when non-nil, prunes index construction with global
	// distance lower bounds (§7.5 future work; see internal/landmark).
	// It must have been built on the same graph.
	Oracle DistanceOracle
}

// Timings breaks the query time into the phases reported by Figures 7, 12
// and 17.
type Timings struct {
	BFS       time.Duration // distance labeling (included in Build)
	Build     time.Duration // full index construction, BFS included
	Optimize  time.Duration // estimator + plan selection
	Enumerate time.Duration // result enumeration
}

// Total returns the full query time.
func (t Timings) Total() time.Duration { return t.Build + t.Optimize + t.Enumerate }

// Result reports the outcome of one query execution.
type Result struct {
	Query     Query
	Plan      Plan
	Counters  Counters
	JoinStats JoinStats
	Timings   Timings
	// Completed is false when the run stopped early (limit, timeout or
	// emit cancellation).
	Completed bool
	// IndexEdges / IndexVertices / IndexBytes describe the built index.
	IndexEdges    int64
	IndexVertices int
	IndexBytes    int64
}

// Run executes q on g per opts: build index, plan, enumerate. This is the
// engine behind the public API and every experiment harness.
func Run(g *graph.Graph, q Query, opts Options) (*Result, error) {
	if err := q.Validate(g); err != nil {
		return nil, err
	}
	res := &Result{Query: q}

	var deadline time.Time
	if opts.Timeout > 0 {
		deadline = time.Now().Add(opts.Timeout)
	}
	shouldStop := func() bool { return false }
	if !deadline.IsZero() {
		shouldStop = func() bool { return time.Now().After(deadline) }
	}

	// Phase 1: index construction (Algorithm 3), with the BFS timed
	// separately for the Figure 12/17 breakdowns.
	start := time.Now()
	scratch := newBFSScratch(g.NumVertices())
	scratch.runPruned(g, q, opts.Predicate, opts.Oracle)
	res.Timings.BFS = time.Since(start)
	ix := buildIndexFrom(g, q, scratch, opts.Predicate)
	res.Timings.Build = time.Since(start)
	res.IndexEdges = ix.Edges()
	res.IndexVertices = ix.NumIndexed()
	res.IndexBytes = ix.MemoryBytes()

	// Phase 2: plan selection (§6).
	optStart := time.Now()
	var plan Plan
	switch opts.Method {
	case MethodDFS:
		plan = Plan{Method: MethodDFS, Preliminary: PreliminaryEstimate(ix)}
	case MethodJoin:
		est := FullEstimate(ix)
		plan = Plan{Method: MethodJoin, Cut: est.Cut, Full: est, Preliminary: PreliminaryEstimate(ix)}
		if est.Cut == 0 {
			plan.Method = MethodDFS // k < 2 leaves no interior cut
		}
	default:
		plan = ChoosePlan(ix, opts.Tau)
	}
	res.Plan = plan
	res.Timings.Optimize = time.Since(optStart)

	// Phase 3: enumeration.
	ctl := RunControl{Emit: opts.Emit, Limit: opts.Limit, ShouldStop: shouldStop}
	enumStart := time.Now()
	switch plan.Method {
	case MethodJoin:
		done, err := EnumerateJoin(ix, plan.Cut, ctl, &res.Counters, &res.JoinStats)
		if err != nil {
			return nil, err
		}
		res.Completed = done
	default:
		res.Completed = EnumerateDFS(ix, ctl, &res.Counters)
	}
	res.Timings.Enumerate = time.Since(enumStart)
	return res, nil
}

// Count returns the number of hop-constrained s-t paths, running the full
// optimizer with no limits. Convenience wrapper used widely in tests.
func Count(g *graph.Graph, q Query) (uint64, error) {
	res, err := Run(g, q, Options{})
	if err != nil {
		return 0, err
	}
	return res.Counters.Results, nil
}
