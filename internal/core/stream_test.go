package core

import (
	"context"
	"errors"
	"iter"
	"math/rand"
	"runtime"
	"sort"
	"testing"
	"time"

	"pathenum/internal/gen"
	"pathenum/internal/graph"
)

// layeredGraph builds s -> (width full layers) -> t, which has width^depth
// simple paths of length depth+1 — a large result set with a cheap index,
// the shape where incremental delivery matters.
func layeredGraph(t *testing.T, width, depth int) (*graph.Graph, Query) {
	t.Helper()
	n := 2 + width*depth
	var edges []graph.Edge
	layer := func(l, i int) graph.VertexID { return graph.VertexID(1 + l*width + i) }
	for i := 0; i < width; i++ {
		edges = append(edges, graph.Edge{From: 0, To: layer(0, i)})
		edges = append(edges, graph.Edge{From: layer(depth-1, i), To: graph.VertexID(n - 1)})
	}
	for l := 0; l+1 < depth; l++ {
		for i := 0; i < width; i++ {
			for j := 0; j < width; j++ {
				edges = append(edges, graph.Edge{From: layer(l, i), To: layer(l+1, j)})
			}
		}
	}
	g, err := graph.NewGraph(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g, Query{S: 0, T: graph.VertexID(n - 1), K: depth + 1}
}

// streamPaths drains a stream into sorted strings, failing on any error.
func streamPaths(t *testing.T, seq iter.Seq2[[]graph.VertexID, error]) []string {
	t.Helper()
	var out []string
	for p, err := range seq {
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, pathKey(p))
	}
	sort.Strings(out)
	return out
}

func pathKey(p []graph.VertexID) string {
	var sb []byte
	for i, v := range p {
		if i > 0 {
			sb = append(sb, ',')
		}
		sb = append(sb, itoa(int(v))...)
	}
	return string(sb)
}

// TestStreamMatchesRun: the streamed path set equals the Emit-callback
// path set on random graphs, for both delivery modes.
func TestStreamMatchesRun(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	trials := 0
	for trials < 20 {
		n := 12 + rng.Intn(40)
		g := gen.BarabasiAlbert(n, 3, rng.Int63())
		q := Query{S: graph.VertexID(rng.Intn(n)), T: graph.VertexID(rng.Intn(n)), K: 2 + rng.Intn(4)}
		if q.S == q.T {
			continue
		}
		trials++
		want := collectPaths(t, func(opts Options) (*Result, error) { return Run(g, q, opts) })
		sess := NewSession(g, nil)
		got := streamPaths(t, sess.Stream(context.Background(), q, Options{}))
		if len(got) != len(want) {
			t.Fatalf("%v: stream %d paths, run %d", q, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%v: path %d: stream %q, run %q", q, i, got[i], want[i])
			}
		}
		buffered := streamPaths(t, sess.StreamWith(context.Background(), q, Options{}, StreamConfig{Buffer: 3}))
		if len(buffered) != len(want) {
			t.Fatalf("%v: buffered stream %d paths, want %d", q, len(buffered), len(want))
		}
	}
}

// TestStreamFirstPathBeforeCompletion is the real-time acceptance check:
// a blocked consumer pulling one path at a time observes the first path
// while enumeration is still suspended mid-run — OnResult has not fired.
func TestStreamFirstPathBeforeCompletion(t *testing.T) {
	g, q := layeredGraph(t, 4, 4) // 256 paths
	done := false
	sess := NewSession(g, nil)
	seq := sess.StreamWith(context.Background(), q, Options{}, StreamConfig{
		OnResult: func(res *Result) { done = true },
	})
	next, stop := iter.Pull2(seq)
	defer stop()
	p, err, ok := next()
	if !ok || err != nil {
		t.Fatalf("first pull: ok=%v err=%v", ok, err)
	}
	if len(p) != q.K+1 {
		t.Fatalf("first path %v: len %d, want %d", p, len(p), q.K+1)
	}
	if done {
		t.Fatal("enumeration reported complete after a single unbuffered pull of a 256-path query")
	}
	count := 1
	for {
		_, err, ok := next()
		if !ok {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		count++
	}
	if count != 256 {
		t.Fatalf("streamed %d paths, want 256", count)
	}
	if !done {
		t.Fatal("OnResult must fire once the stream is drained")
	}
}

// TestStreamYieldsOwnedCopies: unlike Emit's reused buffer, yielded paths
// must stay valid after the iteration advances.
func TestStreamYieldsOwnedCopies(t *testing.T) {
	g, q := layeredGraph(t, 3, 3)
	sess := NewSession(g, nil)
	var kept [][]graph.VertexID
	for p, err := range sess.Stream(context.Background(), q, Options{}) {
		if err != nil {
			t.Fatal(err)
		}
		kept = append(kept, p)
	}
	seen := make(map[string]bool, len(kept))
	for _, p := range kept {
		if p[0] != q.S || p[len(p)-1] != q.T {
			t.Fatalf("retained path %v corrupted (endpoints)", p)
		}
		seen[pathKey(p)] = true
	}
	if len(seen) != len(kept) {
		t.Fatalf("retained paths collapsed: %d unique of %d (buffer reuse leaked)", len(seen), len(kept))
	}
}

// TestStreamEarlyBreak: leaving the loop stops enumeration immediately;
// OnResult reports the partial run and the session is immediately
// reusable, in both delivery modes.
func TestStreamEarlyBreak(t *testing.T) {
	g, q := layeredGraph(t, 4, 4)
	sess := NewSession(g, nil)
	for _, buffer := range []int{0, 2} {
		var res *Result
		got := 0
		for p, err := range sess.StreamWith(context.Background(), q, Options{}, StreamConfig{
			Buffer:   buffer,
			OnResult: func(r *Result) { res = r },
		}) {
			if err != nil {
				t.Fatal(err)
			}
			if p == nil {
				t.Fatal("nil path without error")
			}
			got++
			if got == 3 {
				break
			}
		}
		if got != 3 {
			t.Fatalf("buffer=%d: consumed %d paths, want 3", buffer, got)
		}
		// The unbuffered mode has settled OnResult synchronously; the
		// buffered producer settles before the iterator returns too (the
		// stream drains the producer on exit), so res is safe to read.
		if res == nil {
			t.Fatalf("buffer=%d: OnResult did not fire on early break", buffer)
		}
		if res.Completed {
			t.Fatalf("buffer=%d: Completed=true on an abandoned stream", buffer)
		}
		// Session must be immediately reusable for a full run.
		n, err := Count(g, q)
		if err != nil {
			t.Fatal(err)
		}
		res2, err := sess.Run(q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res2.Counters.Results != n {
			t.Fatalf("buffer=%d: session reuse after abandoned stream: %d results, want %d", buffer, res2.Counters.Results, n)
		}
	}
}

// TestStreamLimit: Options.Limit bounds the stream like any other run.
func TestStreamLimit(t *testing.T) {
	g, q := layeredGraph(t, 4, 3)
	sess := NewSession(g, nil)
	got := 0
	for _, err := range sess.Stream(context.Background(), q, Options{Limit: 7}) {
		if err != nil {
			t.Fatal(err)
		}
		got++
	}
	if got != 7 {
		t.Fatalf("streamed %d paths, want limit 7", got)
	}
}

// TestStreamError: a terminal error is yielded once and ends the stream.
func TestStreamError(t *testing.T) {
	g, _ := layeredGraph(t, 2, 2)
	sess := NewSession(g, nil)
	for _, buffer := range []int{0, 2} {
		iterations, errs := 0, 0
		for p, err := range sess.StreamWith(context.Background(), Query{S: 1, T: 1, K: 3}, Options{}, StreamConfig{Buffer: buffer}) {
			iterations++
			if err == nil {
				t.Fatalf("buffer=%d: yielded path %v for an invalid query", buffer, p)
			}
			if !errors.Is(err, ErrSameEndpoints) {
				t.Fatalf("buffer=%d: err = %v, want ErrSameEndpoints", buffer, err)
			}
			errs++
		}
		if iterations != 1 || errs != 1 {
			t.Fatalf("buffer=%d: %d iterations, %d errors; want exactly one error", buffer, iterations, errs)
		}
	}
}

// TestStreamContextCancelled: a context cancelled before the first pull
// surfaces its error; one cancelled mid-stream ends the stream early with
// a partial (Completed == false) result and no error, mirroring
// RunContext.
func TestStreamContextCancelled(t *testing.T) {
	g, q := layeredGraph(t, 4, 4)
	sess := NewSession(g, nil)

	pre, cancel := context.WithCancel(context.Background())
	cancel()
	sawErr := false
	for _, err := range sess.Stream(pre, q, Options{}) {
		if err == nil {
			t.Fatal("pre-cancelled stream yielded a path")
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		sawErr = true
	}
	if !sawErr {
		t.Fatal("pre-cancelled stream must yield the context error")
	}

	// Cancellation is observed on an amortized expansion counter (roughly
	// every 1024 expansions), so use a query heavy enough that the check
	// fires long before the result set is exhausted.
	bigG, bigQ := layeredGraph(t, 6, 5) // 7776 paths
	bigSess := NewSession(bigG, nil)
	mid, cancelMid := context.WithCancel(context.Background())
	defer cancelMid()
	var res *Result
	got := 0
	for _, err := range bigSess.StreamWith(mid, bigQ, Options{}, StreamConfig{OnResult: func(r *Result) { res = r }}) {
		if err != nil {
			t.Fatalf("mid-stream cancellation must not yield an error, got %v", err)
		}
		got++
		if got == 2 {
			cancelMid()
		}
	}
	if got >= 7776 {
		t.Fatalf("cancelled stream delivered all %d paths", got)
	}
	if res == nil || res.Completed {
		t.Fatalf("cancelled stream: res=%+v, want partial result", res)
	}
}

// TestStreamSharedFrontiers: streaming over precomputed frontiers yields
// the same path set (the RunShared soundness contract, streamed), and a
// stale frontier fails the stream with ErrStaleEpoch.
func TestStreamSharedFrontiers(t *testing.T) {
	g, q := layeredGraph(t, 3, 3)
	fwd, err := NewForwardFrontier(g, q.S, q.K, nil, PredicateNone)
	if err != nil {
		t.Fatal(err)
	}
	bwd, err := NewBackwardFrontier(g, q.T, q.K, nil, PredicateNone)
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(g, nil)
	want := streamPaths(t, sess.Stream(context.Background(), q, Options{}))
	got := streamPaths(t, sess.StreamWith(context.Background(), q, Options{}, StreamConfig{Fwd: fwd, Bwd: bwd}))
	if len(got) != len(want) {
		t.Fatalf("shared stream %d paths, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("path %d: shared %q, plain %q", i, got[i], want[i])
		}
	}

	// Stale side: rebuild the graph through a Dynamic so the epoch moves.
	dyn := graph.NewDynamic(g)
	snap0 := dyn.Snapshot()
	f0, err := NewForwardFrontier(snap0, q.S, q.K, nil, PredicateNone)
	if err != nil {
		t.Fatal(err)
	}
	added, err := dyn.Insert(q.T, q.S) // t -> s does not exist in the layered DAG
	if err != nil {
		t.Fatal(err)
	}
	if !added {
		t.Fatal("insert must apply (and bump the epoch)")
	}
	snap1 := dyn.Snapshot()
	stale := NewSession(snap1, nil)
	sawStale := false
	for _, serr := range stale.StreamWith(context.Background(), q, Options{}, StreamConfig{Fwd: f0}) {
		if serr == nil {
			t.Fatal("stale frontier streamed a path")
		}
		if !errors.Is(serr, graph.ErrStaleEpoch) {
			t.Fatalf("err = %v, want ErrStaleEpoch", serr)
		}
		sawStale = true
	}
	if !sawStale {
		t.Fatal("stale frontier must fail the stream")
	}
}

// TestStreamJoinEarlyTermination: cancelling a join-planned stream after
// the first few paths stops the probe-side DFS promptly — JoinStats must
// show no further half-side walks were expanded — in both delivery modes.
func TestStreamJoinEarlyTermination(t *testing.T) {
	g, q := layeredGraph(t, 6, 5) // 7776 paths; probe side has 216 walks
	for _, buffer := range []int{0, 3} {
		sess := NewSession(g, nil)
		var res *Result
		got := 0
		for p, err := range sess.StreamWith(context.Background(), q, Options{Method: MethodJoin}, StreamConfig{
			Buffer:   buffer,
			OnResult: func(r *Result) { res = r },
		}) {
			if err != nil {
				t.Fatalf("buffer=%d: %v", buffer, err)
			}
			if len(p) == 0 {
				t.Fatalf("buffer=%d: empty path", buffer)
			}
			got++
			if got == 3 {
				break
			}
		}
		if res == nil {
			t.Fatalf("buffer=%d: OnResult must settle before the iterator returns", buffer)
		}
		if res.Plan.Method != MethodJoin {
			t.Fatalf("buffer=%d: plan %v, want MethodJoin", buffer, res.Plan.Method)
		}
		if res.Completed {
			t.Fatalf("buffer=%d: Completed=true on an abandoned stream", buffer)
		}
		// Promptness: an abandoned consumer stops the lazy probe within the
		// few walks its pulls (plus any producer run-ahead) could demand —
		// nowhere near the 216-walk probe side a materializing join would
		// have built up front.
		if maxWalks := int64(got + buffer + 2); res.JoinStats.ProbeWalks > maxWalks {
			t.Fatalf("buffer=%d: ProbeWalks=%d after %d consumed paths, want <= %d",
				buffer, res.JoinStats.ProbeWalks, got, maxWalks)
		}
		if res.JoinStats.BuildTuples == 0 {
			t.Fatalf("buffer=%d: build side empty on a join-planned run", buffer)
		}
	}
}

// TestStreamJoinBufferedNoGoroutineLeak: abandoning buffered join-planned
// streams repeatedly must wind every producer goroutine down — the
// iterator's drain-on-exit contract, now exercised with a probe DFS
// suspended mid-walk at abandonment.
func TestStreamJoinBufferedNoGoroutineLeak(t *testing.T) {
	g, q := layeredGraph(t, 6, 5)
	sess := NewSession(g, nil)
	before := runtime.NumGoroutine()
	for i := 0; i < 8; i++ {
		n := 0
		for _, err := range sess.StreamWith(context.Background(), q, Options{Method: MethodJoin}, StreamConfig{Buffer: 4}) {
			if err != nil {
				t.Fatal(err)
			}
			n++
			if n == 2 {
				break
			}
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("%d goroutines after abandoned buffered join streams, was %d", now, before)
	}
}

// TestStreamConstrained: the constrained stream matches RunConstrained on
// an accumulative constraint, both modes.
func TestStreamConstrained(t *testing.T) {
	g, q := layeredGraph(t, 3, 3)
	cons := Constraints{
		Accumulate: &Accumulator{
			Value:    func(from, to graph.VertexID) float64 { return 1 },
			Combine:  func(a, b float64) float64 { return a + b },
			Identity: 0,
			Accept:   func(total float64) bool { return total <= float64(q.K) },
		},
	}
	var want []string
	res, err := RunConstrained(g, q, cons, RunControl{Emit: func(p []graph.VertexID) bool {
		want = append(want, pathKey(p))
		return true
	}})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(want)
	for _, buffer := range []int{0, 2} {
		var done *Result
		got := streamPaths(t, StreamConstrained(context.Background(), g, q, cons, Options{}, StreamConfig{
			Buffer:   buffer,
			OnResult: func(r *Result) { done = r },
		}))
		if len(got) != len(want) {
			t.Fatalf("buffer=%d: constrained stream %d paths, want %d", buffer, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("buffer=%d: path %d: %q vs %q", buffer, i, got[i], want[i])
			}
		}
		if done == nil || done.Counters.Results != res.Counters.Results {
			t.Fatalf("buffer=%d: OnResult=%+v, want %d results", buffer, done, res.Counters.Results)
		}
	}
}
