package core

import (
	"math/rand"
	"testing"

	"pathenum/internal/gen"
	"pathenum/internal/graph"
)

func collectJoin(t *testing.T, ix *Index, cut int) [][]graph.VertexID {
	t.Helper()
	var out [][]graph.VertexID
	done, err := EnumerateJoin(ix, cut, RunControl{Emit: func(p []graph.VertexID) bool {
		out = append(out, append([]graph.VertexID(nil), p...))
		return true
	}}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("EnumerateJoin stopped unexpectedly")
	}
	return out
}

// TestJoinPaperExampleAllCuts: Algorithm 6 must produce the same 5 paths as
// the oracle for every interior cut position.
func TestJoinPaperExampleAllCuts(t *testing.T) {
	g := paperGraph(t)
	ix := mustIndex(t, g, paperQuery())
	want := brutePathsLocal(g, vS, vT, 4)
	for cut := 1; cut <= 3; cut++ {
		got := collectJoin(t, ix, cut)
		if !samePaths(got, want) {
			t.Fatalf("cut %d: join %d paths, oracle %d", cut, len(got), len(want))
		}
	}
}

// TestJoinMatchesBruteForce mirrors the DFS property test for the join
// algorithm across random graphs and cut positions (Proposition C.2).
func TestJoinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	for trial := 0; trial < 50; trial++ {
		n := 5 + rng.Intn(10)
		g := gen.ErdosRenyi(n, n*3, rng.Int63())
		s := graph.VertexID(rng.Intn(n))
		tt := graph.VertexID(rng.Intn(n))
		if s == tt {
			continue
		}
		k := 2 + rng.Intn(4)
		ix := mustIndex(t, g, Query{S: s, T: tt, K: k})
		want := brutePathsLocal(g, s, tt, k)
		cut := 1 + rng.Intn(k-1)
		got := collectJoin(t, ix, cut)
		if !samePaths(got, want) {
			t.Fatalf("trial %d (n=%d s=%d t=%d k=%d cut=%d): join %d paths, oracle %d",
				trial, n, s, tt, k, cut, len(got), len(want))
		}
	}
}

func TestJoinInvalidCut(t *testing.T) {
	g := paperGraph(t)
	ix := mustIndex(t, g, paperQuery())
	for _, cut := range []int{0, 4, -1, 99} {
		if _, err := EnumerateJoin(ix, cut, RunControl{}, nil, nil); err == nil {
			t.Errorf("cut %d: expected error", cut)
		}
	}
}

func TestJoinEmptyIndex(t *testing.T) {
	g, err := graph.NewGraph(3, []graph.Edge{{From: 0, To: 1}})
	if err != nil {
		t.Fatal(err)
	}
	ix := mustIndex(t, g, Query{S: 0, T: 2, K: 4})
	var ctr Counters
	done, err := EnumerateJoin(ix, 2, RunControl{}, &ctr, nil)
	if err != nil || !done {
		t.Fatalf("empty index join: done=%v err=%v", done, err)
	}
	if ctr.Results != 0 {
		t.Fatalf("Results = %d, want 0", ctr.Results)
	}
}

// TestJoinStatsProposition61: every materialized half-tuple appears in a
// padded walk, so |Ra| and |Rb| are bounded by delta_W (Proposition 6.1 and
// the §6.4 space analysis).
func TestJoinStatsProposition61(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 30; trial++ {
		n := 6 + rng.Intn(8)
		g := gen.ErdosRenyi(n, n*3, rng.Int63())
		s := graph.VertexID(rng.Intn(n))
		tt := graph.VertexID(rng.Intn(n))
		if s == tt {
			continue
		}
		k := 2 + rng.Intn(3)
		ix := mustIndex(t, g, Query{S: s, T: tt, K: k})
		walks := uint64(bruteWalksLocal(g, s, tt, k))
		var stats JoinStats
		cut := 1 + rng.Intn(k-1)
		if _, err := EnumerateJoin(ix, cut, RunControl{}, nil, &stats); err != nil {
			t.Fatal(err)
		}
		if uint64(stats.LeftTuples) > walks {
			t.Fatalf("trial %d: |Ra|=%d > delta_W=%d", trial, stats.LeftTuples, walks)
		}
		// Rb is grouped per distinct cut vertex, each group bounded by the
		// walks through that vertex; the total is bounded by delta_W too.
		if uint64(stats.RightTuples) > walks {
			t.Fatalf("trial %d: |Rb|=%d > delta_W=%d", trial, stats.RightTuples, walks)
		}
		if stats.PartialBytes < 0 {
			t.Fatalf("negative PartialBytes")
		}
	}
}

func TestJoinLimitAndCancel(t *testing.T) {
	g := gen.Layered(4, 3) // 64 paths, k = 4
	ix := mustIndex(t, g, Query{S: 0, T: 1, K: 4})
	var ctr Counters
	done, err := EnumerateJoin(ix, 2, RunControl{Limit: 7}, &ctr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if done || ctr.Results != 7 {
		t.Fatalf("limit run: done=%v results=%d", done, ctr.Results)
	}
	count := 0
	done, err = EnumerateJoin(ix, 2, RunControl{Emit: func([]graph.VertexID) bool {
		count++
		return false
	}}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if done || count != 1 {
		t.Fatalf("cancel run: done=%v count=%d", done, count)
	}
}

func TestJoinShouldStop(t *testing.T) {
	g := gen.Layered(8, 4)
	ix := mustIndex(t, g, Query{S: 0, T: 1, K: 5})
	done, err := EnumerateJoin(ix, 2, RunControl{ShouldStop: func() bool { return true }}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if done {
		t.Fatal("ShouldStop join must stop early")
	}
}

// TestJoinDFSAgree: both index algorithms agree on larger pseudo-random
// inputs where brute force is still feasible.
func TestJoinDFSAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(321))
	for trial := 0; trial < 15; trial++ {
		g := gen.BarabasiAlbert(80, 4, rng.Int63())
		s := graph.VertexID(rng.Intn(80))
		tt := graph.VertexID(rng.Intn(80))
		if s == tt {
			continue
		}
		k := 3 + rng.Intn(3)
		ix := mustIndex(t, g, Query{S: s, T: tt, K: k})
		var dfsCtr Counters
		EnumerateDFS(ix, RunControl{}, &dfsCtr)
		for cut := 1; cut < k; cut++ {
			var joinCtr Counters
			if _, err := EnumerateJoin(ix, cut, RunControl{}, &joinCtr, nil); err != nil {
				t.Fatal(err)
			}
			if joinCtr.Results != dfsCtr.Results {
				t.Fatalf("trial %d cut %d: join %d results, DFS %d",
					trial, cut, joinCtr.Results, dfsCtr.Results)
			}
		}
	}
}

// TestJoinBuildSidesAgree: both explicit build sides produce the oracle
// path set and identical counts for every interior cut, and the stats
// describe the side actually hashed.
func TestJoinBuildSidesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(555))
	for trial := 0; trial < 40; trial++ {
		n := 5 + rng.Intn(10)
		g := gen.ErdosRenyi(n, n*3, rng.Int63())
		s := graph.VertexID(rng.Intn(n))
		tt := graph.VertexID(rng.Intn(n))
		if s == tt {
			continue
		}
		k := 2 + rng.Intn(4)
		ix := mustIndex(t, g, Query{S: s, T: tt, K: k})
		want := brutePathsLocal(g, s, tt, k)
		for cut := 1; cut < k; cut++ {
			for _, side := range []BuildSide{BuildLeft, BuildRight} {
				var ctr Counters
				var stats JoinStats
				var got [][]graph.VertexID
				done, err := EnumerateJoinSide(ix, cut, side, RunControl{Emit: func(p []graph.VertexID) bool {
					got = append(got, append([]graph.VertexID(nil), p...))
					return true
				}}, &ctr, &stats)
				if err != nil || !done {
					t.Fatalf("trial %d cut %d side %v: done=%v err=%v", trial, cut, side, done, err)
				}
				if !samePaths(got, want) {
					t.Fatalf("trial %d cut %d side %v: %d paths, oracle %d", trial, cut, side, len(got), len(want))
				}
				if ctr.Results != uint64(len(want)) {
					t.Fatalf("trial %d cut %d side %v: Results=%d, want %d", trial, cut, side, ctr.Results, len(want))
				}
				if !ix.Empty() {
					if stats.BuildLeft != (side == BuildLeft) {
						t.Fatalf("trial %d cut %d side %v: stats.BuildLeft=%v", trial, cut, side, stats.BuildLeft)
					}
					// On a completed run the probe count is the probe side's
					// tuple count and the build count the hashed side's.
					build, probe := stats.LeftTuples, stats.RightTuples
					if !stats.BuildLeft {
						build, probe = stats.RightTuples, stats.LeftTuples
					}
					if stats.BuildTuples != build || stats.ProbeWalks != probe {
						t.Fatalf("trial %d cut %d side %v: stats inconsistent: %+v", trial, cut, side, stats)
					}
				}
			}
		}
	}
}

// TestJoinFirstEmitBeforeProbeExhaustion is the tuple-at-a-time contract
// at the core level: stopping at the first emitted path leaves the probe
// side essentially unexpanded — one in-flight walk, not a materialized
// half side — for either build side.
func TestJoinFirstEmitBeforeProbeExhaustion(t *testing.T) {
	g := gen.Layered(6, 4) // 1296 paths, k = 5
	ix := mustIndex(t, g, Query{S: 0, T: 1, K: 5})
	for _, side := range []BuildSide{BuildLeft, BuildRight} {
		var stats JoinStats
		count := 0
		done, err := EnumerateJoinSide(ix, 2, side, RunControl{Emit: func([]graph.VertexID) bool {
			count++
			return false
		}}, nil, &stats)
		if err != nil {
			t.Fatal(err)
		}
		if done || count != 1 {
			t.Fatalf("side %v: done=%v count=%d", side, done, count)
		}
		if stats.ProbeWalks != 1 {
			t.Fatalf("side %v: ProbeWalks=%d after one emitted path, want 1 (lazy probe)", side, stats.ProbeWalks)
		}
		if stats.BuildTuples == 0 {
			t.Fatalf("side %v: build side empty on a path-producing query", side)
		}
	}
}

func TestValidatePath(t *testing.T) {
	seen := make([]int32, 10)
	cases := []struct {
		r    []graph.VertexID
		tVtx graph.VertexID
		ok   bool
		n    int
	}{
		{[]graph.VertexID{0, 2, 1, 1, 1}, 1, true, 3},
		{[]graph.VertexID{0, 2, 2, 1, 1}, 1, false, 0}, // duplicate v2
		{[]graph.VertexID{0, 1, 1, 1, 1}, 1, true, 2},  // direct edge
		{[]graph.VertexID{0, 2, 3, 4, 1}, 1, true, 5},
		{[]graph.VertexID{0, 2, 3, 4, 5}, 1, false, 0}, // never reaches t
	}
	for i, c := range cases {
		path, ok := validatePath(c.r, c.tVtx, seen, int32(i+1))
		if ok != c.ok {
			t.Errorf("case %d: ok = %v, want %v", i, ok, c.ok)
			continue
		}
		if ok && len(path) != c.n {
			t.Errorf("case %d: path len %d, want %d", i, len(path), c.n)
		}
	}
}
