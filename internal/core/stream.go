package core

import (
	"context"
	"iter"
	"time"

	"pathenum/internal/graph"
)

// This file implements the pull-based streaming face of the executor
// pipeline. The push-mode enumerators (Algorithm 4 DFS, Algorithm 6 join)
// deliver results through an Emit callback; a stream inverts that into a
// consumer-driven iterator, so the first paths of a heavy query reach the
// caller while enumeration is still running — the real-time delivery the
// paper's title promises, composed with contexts and backpressure instead
// of trapped inside a callback.
//
// Both enumerators are genuinely incremental behind that Emit: the DFS
// emits as it walks, and the join (EnumerateJoinSide) materializes only
// its build side before probing tuple-at-a-time — so a join-planned
// stream's first path costs one half-side build, not a full
// materialize-then-probe pass, and in unbuffered mode the consumer's
// backpressure suspends the probe DFS mid-walk between pulls.
//
// Two delivery modes share one contract:
//
//   - Unbuffered (StreamConfig.Buffer == 0): the enumeration runs inside
//     the consumer's goroutine and is *suspended* at every yield —
//     range-over-func turns Emit into a coroutine hand-off. Between
//     iterations no enumeration work happens, so a consumer that stops
//     pulling stops the query (perfect backpressure), and breaking out of
//     the loop terminates enumeration immediately via Emit's stop path.
//   - Buffered (Buffer > 0): the enumeration runs in a producer goroutine
//     feeding a channel of capacity Buffer, so it can run at most Buffer
//     paths ahead of the consumer — bounded pipelining for consumers with
//     per-item latency (an NDJSON flush, a network write). Abandoning the
//     loop cancels the producer and the stream does not return until it
//     has fully stopped, so session buffers are never shared.
//
// In both modes every yielded path is a fresh copy owned by the consumer
// (unlike Emit's reused slice): streamed paths outlive the enumeration
// step that produced them by design.
type StreamConfig struct {
	// Fwd / Bwd optionally substitute precomputed distance labelings for
	// either BFS pass, with Session.RunShared's compatibility contract.
	Fwd, Bwd *Frontier
	// Buffer selects the delivery mode: 0 streams synchronously with the
	// enumeration suspended between pulls; > 0 lets a producer goroutine
	// run up to Buffer paths ahead.
	Buffer int
	// OnResult, when non-nil, receives the final Result exactly once,
	// after enumeration finishes and before the stream ends — including
	// runs stopped early by the consumer, a limit or cancellation
	// (Result.Completed reports false then). In buffered mode it is
	// called from the producer goroutine.
	OnResult func(*Result)
	// Began optionally anchors Result.Timings.FirstPath: when set, the
	// first-path latency is measured from this instant (a caller's
	// request-entry timestamp) instead of the stream's first pull.
	Began time.Time
	// Observer, when non-nil, receives the settled run for latency
	// accounting — a persistent hook (no per-stream closure) fired once
	// with the Result, exactly where OnResult fires. Implementations
	// must be safe for concurrent use; buffered streams invoke it from
	// the producer goroutine.
	Observer RunObserver
}

// RunObserver is the metrics seam of a stream: ObserveStream receives
// the final Result (never nil), the first-path latency and the
// end-to-end stream duration, both measured from StreamConfig.Began
// (or the first pull when Began is zero). firstPath is 0 when no path
// was delivered.
type RunObserver interface {
	ObserveStream(res *Result, firstPath, total time.Duration)
}

// Stream returns a lazy path stream for q: nothing runs until the first
// pull. Each iteration yields one result path (a fresh slice owned by the
// consumer) or a terminal error (invalid query, incompatible frontier,
// stale oracle); after an error the stream ends. Context cancellation and
// deadlines mirror RunContext: cancellation mid-run stops the enumeration
// early without an error — the partial delivery is the answer, and
// OnResult reports Completed == false — while a context already done
// before the run starts surfaces its error as the terminal yield (no
// work happens). Options.Emit and Options.Limit keep their meaning
// except that Emit is replaced by the yield (a configured Emit is
// ignored).
//
// The session's buffers are in use until the iteration ends; like every
// other Session entry point, only one run may be active at a time.
func (s *Session) Stream(ctx context.Context, q Query, opts Options) iter.Seq2[[]graph.VertexID, error] {
	return s.StreamWith(ctx, q, opts, StreamConfig{})
}

// StreamWith is Stream with explicit stream configuration: shared
// frontiers for either BFS side, the buffered delivery mode and the
// final-Result hook. See StreamConfig.
func (s *Session) StreamWith(ctx context.Context, q Query, opts Options, sc StreamConfig) iter.Seq2[[]graph.VertexID, error] {
	run := func(ctx context.Context, emit func([]graph.VertexID) bool) (*Result, error) {
		opts.Emit = emit
		return s.ex.executeShared(ctx, q, opts, sc.Fwd, sc.Bwd)
	}
	// A parallel run already hands over fresh slices (the parallel
	// ownership contract), so the stream skips its defensive per-path
	// copy — the merge-side copy is the only one paid.
	return makeStream(ctx, sc, run, opts.Parallelism > 1)
}

// StreamConstrained is the streaming face of RunConstrained: the
// constrained index DFS (Appendix E) delivered as a pull iterator. Options
// supplies the per-request knobs shared with the unconstrained pipeline —
// Limit, Timeout and the edge Predicate (which joins cons.Predicate if
// that is nil); Method, Tau and Oracle do not apply to the constrained
// DFS and are ignored, as is Emit (the yield replaces it).
func StreamConstrained(ctx context.Context, g *graph.Graph, q Query, cons Constraints, opts Options, sc StreamConfig) iter.Seq2[[]graph.VertexID, error] {
	if cons.Predicate == nil {
		cons.Predicate = opts.Predicate
	}
	run := func(ctx context.Context, emit func([]graph.VertexID) bool) (*Result, error) {
		ctl := RunControl{
			Emit:       emit,
			Limit:      opts.Limit,
			ShouldStop: newStopper(ctx, opts.Timeout),
		}
		return RunConstrained(g, q, cons, ctl)
	}
	return makeStream(ctx, sc, run, false)
}

// streamState is the per-stream mutable state shared between the emit
// closure and the stream body — one struct so the closure capture costs a
// single heap cell. firstNs needs no atomic: emit and the post-run stamp
// always execute on the same goroutine (the consumer's in unbuffered
// mode, the producer's in buffered mode).
type streamState struct {
	abandoned bool
	began     time.Time
	firstNs   int64
}

// noteFirst stamps the first-path latency on the first emit.
func (st *streamState) noteFirst() {
	if st.firstNs == 0 {
		st.firstNs = int64(time.Since(st.began))
	}
}

// settle attaches the stream-level timing to the finished run's Result
// and fires the observer and OnResult hooks.
func (st *streamState) settle(res *Result, obs RunObserver, onResult func(*Result)) {
	if res != nil {
		res.Timings.FirstPath = time.Duration(st.firstNs)
		if obs != nil {
			obs.ObserveStream(res, res.Timings.FirstPath, time.Since(st.began))
		}
	}
	if onResult != nil {
		onResult(res)
	}
}

// makeStream builds the iterator over any push-mode runner. run must
// execute the query, delivering each path to emit (reused-slice Emit
// semantics, unless owned declares the runner already hands over fresh
// slices — the parallel enumerators' contract) and honoring emit's false
// return as an immediate stop; it observes the context it is passed,
// which in buffered mode is a child of the caller's that the stream
// cancels when the consumer leaves early.
func makeStream(ctx context.Context, sc StreamConfig, run func(context.Context, func([]graph.VertexID) bool) (*Result, error), owned bool) iter.Seq2[[]graph.VertexID, error] {
	if sc.Buffer > 0 {
		return bufferedStream(ctx, sc, run, owned)
	}
	// Hoisted so the returned closure captures three scalars, not the
	// whole StreamConfig (with its frontier pointers).
	onResult, observer, began := sc.OnResult, sc.Observer, sc.Began
	return func(yield func([]graph.VertexID, error) bool) {
		st := streamState{began: began}
		if st.began.IsZero() {
			st.began = time.Now()
		}
		res, err := run(ctx, func(p []graph.VertexID) bool {
			st.noteFirst()
			if !owned {
				p = append([]graph.VertexID(nil), p...)
			}
			if !yield(p, nil) {
				st.abandoned = true
				return false
			}
			return true
		})
		if err != nil {
			if !st.abandoned {
				yield(nil, err)
			}
			return
		}
		st.settle(res, observer, onResult)
	}
}

// streamItem is one delivery slot of the buffered mode: a path or a
// terminal error, never both.
type streamItem struct {
	path []graph.VertexID
	err  error
}

// bufferedStream runs the enumeration in a producer goroutine at most
// `buffer` paths ahead of the consumer. The iterator never returns while
// the producer is live: leaving the loop early cancels the producer's
// context and drains until it has exited, so the caller may safely reuse
// the session (or return it to a pool) as soon as the range ends.
func bufferedStream(ctx context.Context, sc StreamConfig, run func(context.Context, func([]graph.VertexID) bool) (*Result, error), owned bool) iter.Seq2[[]graph.VertexID, error] {
	onResult, observer, began, buffer := sc.OnResult, sc.Observer, sc.Began, sc.Buffer
	return func(yield func([]graph.VertexID, error) bool) {
		pctx, cancel := context.WithCancel(ctx)
		ch := make(chan streamItem, buffer)
		st := streamState{began: began}
		if st.began.IsZero() {
			st.began = time.Now()
		}
		go func() {
			defer close(ch)
			res, err := run(pctx, func(p []graph.VertexID) bool {
				st.noteFirst()
				if !owned {
					p = append([]graph.VertexID(nil), p...)
				}
				select {
				case ch <- streamItem{path: p}:
					return true
				case <-pctx.Done():
					return false
				}
			})
			if err != nil {
				select {
				case ch <- streamItem{err: err}:
				case <-pctx.Done():
				}
				return
			}
			st.settle(res, observer, onResult)
		}()
		// Whatever path exits the loop, stop the producer and wait for the
		// channel to close before returning the iteration.
		defer func() {
			cancel()
			for range ch { //nolint:revive // drain until the producer exits
			}
		}()
		for it := range ch {
			if !yield(it.path, it.err) || it.err != nil {
				return
			}
		}
	}
}
