package core

import (
	"math/rand"
	"testing"
	"time"

	"pathenum/internal/gen"
	"pathenum/internal/graph"
)

func TestRunPaperExample(t *testing.T) {
	g := paperGraph(t)
	for _, m := range []Method{MethodAuto, MethodDFS, MethodJoin} {
		res, err := Run(g, paperQuery(), Options{Method: m})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if res.Counters.Results != 5 {
			t.Fatalf("%v: Results = %d, want 5", m, res.Counters.Results)
		}
		if !res.Completed {
			t.Fatalf("%v: run must complete", m)
		}
		if res.IndexVertices != 9 {
			t.Fatalf("%v: IndexVertices = %d, want 9", m, res.IndexVertices)
		}
	}
}

// TestRunMethodsAgreeRandom: all three methods count identically on random
// inputs; this exercises the planner on top of the two enumerators.
func TestRunMethodsAgreeRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		n := 10 + rng.Intn(40)
		g := gen.BarabasiAlbert(n, 3, rng.Int63())
		s := graph.VertexID(rng.Intn(n))
		tt := graph.VertexID(rng.Intn(n))
		if s == tt {
			continue
		}
		q := Query{S: s, T: tt, K: 2 + rng.Intn(4)}
		var counts [3]uint64
		for i, m := range []Method{MethodAuto, MethodDFS, MethodJoin} {
			res, err := Run(g, q, Options{Method: m})
			if err != nil {
				t.Fatal(err)
			}
			counts[i] = res.Counters.Results
		}
		if counts[0] != counts[1] || counts[1] != counts[2] {
			t.Fatalf("trial %d %v: counts %v differ", trial, q, counts)
		}
	}
}

func TestRunValidation(t *testing.T) {
	g := paperGraph(t)
	if _, err := Run(g, Query{S: 0, T: 0, K: 3}, Options{}); err == nil {
		t.Error("s == t: expected error")
	}
	if _, err := Run(g, Query{S: 0, T: 1, K: -1}, Options{}); err == nil {
		t.Error("negative k: expected error")
	}
	if _, err := Run(g, Query{S: -3, T: 1, K: 3}, Options{}); err == nil {
		t.Error("negative s: expected error")
	}
}

func TestRunLimit(t *testing.T) {
	g := gen.Layered(5, 3) // 125 results
	res, err := Run(g, Query{S: 0, T: 1, K: 4}, Options{Limit: 30, Method: MethodDFS})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed || res.Counters.Results != 30 {
		t.Fatalf("limit run: completed=%v results=%d", res.Completed, res.Counters.Results)
	}
}

func TestRunTimeout(t *testing.T) {
	// A wide layered graph gives an enormous result set; a tiny timeout
	// must stop the run early yet report partial results.
	g := gen.Layered(24, 5) // 24^5 ~ 8M paths
	res, err := Run(g, Query{S: 0, T: 1, K: 6}, Options{Timeout: 10 * time.Millisecond, Method: MethodDFS})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("timeout run must not complete")
	}
	if res.Counters.Results == 0 {
		t.Fatal("timeout run should still find some results")
	}
}

func TestRunEmitReceivesPaths(t *testing.T) {
	g := paperGraph(t)
	var lengths []int
	_, err := Run(g, paperQuery(), Options{Emit: func(p []graph.VertexID) bool {
		lengths = append(lengths, len(p))
		return true
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(lengths) != 5 {
		t.Fatalf("emit saw %d paths, want 5", len(lengths))
	}
}

func TestRunTimingsPopulated(t *testing.T) {
	g := gen.BarabasiAlbert(500, 5, 3)
	res, err := Run(g, Query{S: 0, T: 1, K: 5}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Timings.Build <= 0 {
		t.Error("Build timing must be positive")
	}
	if res.Timings.BFS > res.Timings.Build {
		t.Error("BFS is a sub-phase of Build")
	}
	if res.Timings.Total() < res.Timings.Build {
		t.Error("Total must include Build")
	}
}

func TestRunForcedJoinOnKOne(t *testing.T) {
	// k=1 leaves no interior cut: MethodJoin must fall back to DFS and
	// still answer correctly.
	g := paperGraph(t)
	res, err := Run(g, Query{S: vV0, T: vT, K: 1}, Options{Method: MethodJoin})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Method != MethodDFS {
		t.Fatalf("plan method = %v, want DFS fallback", res.Plan.Method)
	}
	if res.Counters.Results != 1 {
		t.Fatalf("Results = %d, want 1", res.Counters.Results)
	}
}

func TestCount(t *testing.T) {
	g := paperGraph(t)
	n, err := Count(g, paperQuery())
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("Count = %d, want 5", n)
	}
	if _, err := Count(g, Query{S: 0, T: 0, K: 2}); err == nil {
		t.Fatal("Count with invalid query: expected error")
	}
}

func TestChoosePlanThreshold(t *testing.T) {
	g := gen.Layered(6, 4) // 1296 walks
	ix := mustIndex(t, g, Query{S: 0, T: 1, K: 5})
	// Huge tau: preliminary path, no full estimate.
	cheap := ChoosePlan(ix, 1e12)
	if cheap.Method != MethodDFS || cheap.Full != nil {
		t.Fatalf("high tau: plan %+v, want DFS without full estimate", cheap)
	}
	// Tiny tau: full estimator must run.
	expensive := ChoosePlan(ix, 1)
	if expensive.Full == nil {
		t.Fatal("low tau: full estimate must be computed")
	}
	// Zero tau falls back to the default.
	def := ChoosePlan(ix, 0)
	if def.Preliminary <= 0 {
		t.Fatal("default tau plan must carry the preliminary estimate")
	}
}

func TestMethodString(t *testing.T) {
	cases := map[Method]string{
		MethodAuto: "PathEnum",
		MethodDFS:  "IDX-DFS",
		MethodJoin: "IDX-JOIN",
		Method(42): "Method(42)",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(m), got, want)
		}
	}
}

func TestQueryString(t *testing.T) {
	q := Query{S: 1, T: 2, K: 6}
	if got := q.String(); got != "q(1,2,6)" {
		t.Fatalf("String() = %q", got)
	}
}
