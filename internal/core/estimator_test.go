package core

import (
	"math"
	"math/rand"
	"testing"

	"pathenum/internal/gen"
	"pathenum/internal/graph"
)

// TestFullEstimateExactWalkCount: the full-fledged estimator computes the
// exact number of walks delta_W = |W(s,t,k,G)| (§6.4: the method
// "calculates the number of walks from s to t").
func TestFullEstimateExactWalkCount(t *testing.T) {
	g := paperGraph(t)
	ix := mustIndex(t, g, paperQuery())
	est := FullEstimate(ix)
	want := bruteWalksLocal(g, vS, vT, 4)
	if want != 6 {
		t.Fatalf("oracle walk count = %d, expected 6 on the paper example", want)
	}
	if est.Walks != uint64(want) {
		t.Fatalf("Walks = %d, want %d", est.Walks, want)
	}
}

func TestFullEstimateExactWalkCountRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 50; trial++ {
		n := 5 + rng.Intn(10)
		g := gen.ErdosRenyi(n, n*3, rng.Int63())
		s := graph.VertexID(rng.Intn(n))
		tt := graph.VertexID(rng.Intn(n))
		if s == tt {
			continue
		}
		k := 1 + rng.Intn(5)
		ix := mustIndex(t, g, Query{S: s, T: tt, K: k})
		est := FullEstimate(ix)
		want := bruteWalksLocal(g, s, tt, k)
		if est.Walks != uint64(want) {
			t.Fatalf("trial %d (n=%d s=%d t=%d k=%d): Walks = %d, oracle %d",
				trial, n, s, tt, k, est.Walks, want)
		}
	}
}

// TestFullEstimateSymmetry: the forward and backward dynamic programs must
// agree on the total tuple count: |Q| = sum c^0_k = sum c^k_k-weighted...
// i.e. SumFromS[k] == SumToT[0].
func TestFullEstimateSymmetry(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	for trial := 0; trial < 40; trial++ {
		n := 5 + rng.Intn(12)
		g := gen.BarabasiAlbert(n, 3, rng.Int63())
		s := graph.VertexID(rng.Intn(n))
		tt := graph.VertexID(rng.Intn(n))
		if s == tt {
			continue
		}
		k := 2 + rng.Intn(4)
		ix := mustIndex(t, g, Query{S: s, T: tt, K: k})
		est := FullEstimate(ix)
		if est.SumFromS[k] != est.SumToT[0] {
			t.Fatalf("trial %d: SumFromS[k]=%d != SumToT[0]=%d",
				trial, est.SumFromS[k], est.SumToT[0])
		}
	}
}

// TestEstimateUpperBoundsPaths: delta_P <= delta_W always.
func TestEstimateUpperBoundsPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(10)
		g := gen.ErdosRenyi(n, n*4, rng.Int63())
		s := graph.VertexID(rng.Intn(n))
		tt := graph.VertexID(rng.Intn(n))
		if s == tt {
			continue
		}
		k := 2 + rng.Intn(4)
		ix := mustIndex(t, g, Query{S: s, T: tt, K: k})
		est := FullEstimate(ix)
		paths := uint64(len(brutePathsLocal(g, s, tt, k)))
		if est.Walks < paths {
			t.Fatalf("trial %d: walks %d < paths %d", trial, est.Walks, paths)
		}
	}
}

func TestFullEstimateEmptyIndex(t *testing.T) {
	g, err := graph.NewGraph(3, []graph.Edge{{From: 0, To: 1}})
	if err != nil {
		t.Fatal(err)
	}
	ix := mustIndex(t, g, Query{S: 0, T: 2, K: 3})
	est := FullEstimate(ix)
	if est.Walks != 0 || est.TDFS != 0 {
		t.Fatalf("empty index: Walks=%d TDFS=%d, want 0", est.Walks, est.TDFS)
	}
}

// TestFullEstimateCutMinimizes: the cut position is the interior argmin of
// |Q[0:i]| + |Q[i:k]|.
func TestFullEstimateCutMinimizes(t *testing.T) {
	g := gen.Layered(4, 3)
	ix := mustIndex(t, g, Query{S: 0, T: 1, K: 4})
	est := FullEstimate(ix)
	if est.Cut < 1 || est.Cut > 3 {
		t.Fatalf("Cut = %d, want interior position", est.Cut)
	}
	best := est.SumFromS[est.Cut] + est.SumToT[est.Cut]
	for i := 1; i < 4; i++ {
		if c := est.SumFromS[i] + est.SumToT[i]; c < best {
			t.Fatalf("cut %d has cost %d < chosen %d (cost %d)", i, c, est.Cut, best)
		}
	}
}

// TestFullEstimateKOne: no interior cut exists; TJoin must be maximal so
// the planner always picks DFS.
func TestFullEstimateKOne(t *testing.T) {
	g := paperGraph(t)
	ix := mustIndex(t, g, Query{S: vV0, T: vT, K: 1})
	est := FullEstimate(ix)
	if est.Cut != 0 {
		t.Fatalf("Cut = %d, want 0 for k=1", est.Cut)
	}
	if est.TJoin != math.MaxUint64 {
		t.Fatalf("TJoin = %d, want MaxUint64", est.TJoin)
	}
	if est.Walks != 1 {
		t.Fatalf("Walks = %d, want 1 (the direct edge)", est.Walks)
	}
}

func TestSatAdd(t *testing.T) {
	cases := []struct{ a, b, want uint64 }{
		{1, 2, 3},
		{0, 0, 0},
		{math.MaxUint64, 1, math.MaxUint64},
		{math.MaxUint64 - 1, 1, math.MaxUint64},
		{math.MaxUint64, math.MaxUint64, math.MaxUint64},
	}
	for _, c := range cases {
		if got := satAdd(c.a, c.b); got != c.want {
			t.Errorf("satAdd(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestPreliminaryEstimatePositive(t *testing.T) {
	g := paperGraph(t)
	ix := mustIndex(t, g, paperQuery())
	est := PreliminaryEstimate(ix)
	if est <= 0 {
		t.Fatalf("PreliminaryEstimate = %f, want > 0 (paths exist)", est)
	}
	if math.IsInf(est, 0) || math.IsNaN(est) {
		t.Fatalf("PreliminaryEstimate = %f, want finite", est)
	}
}

func TestPreliminaryEstimateEmpty(t *testing.T) {
	g, err := graph.NewGraph(3, []graph.Edge{{From: 0, To: 1}})
	if err != nil {
		t.Fatal(err)
	}
	ix := mustIndex(t, g, Query{S: 0, T: 2, K: 3})
	if est := PreliminaryEstimate(ix); est != 0 {
		t.Fatalf("PreliminaryEstimate = %f, want 0 for empty index", est)
	}
}

// TestPreliminaryTracksSearchSpace: the preliminary estimate must grow with
// the real search space across layered graphs of increasing width.
func TestPreliminaryTracksSearchSpace(t *testing.T) {
	prev := 0.0
	for _, width := range []int{2, 4, 8} {
		g := gen.Layered(width, 3)
		ix := mustIndex(t, g, Query{S: 0, T: 1, K: 4})
		est := PreliminaryEstimate(ix)
		if est <= prev {
			t.Fatalf("width %d: estimate %f not increasing (prev %f)", width, est, prev)
		}
		prev = est
	}
}

// TestEstimateLayeredExact: on a layered graph the DP counts are fully
// predictable: width^layers walks, all simple.
func TestEstimateLayeredExact(t *testing.T) {
	g := gen.Layered(3, 3) // 27 paths, length 4
	ix := mustIndex(t, g, Query{S: 0, T: 1, K: 4})
	est := FullEstimate(ix)
	if est.Walks != 27 {
		t.Fatalf("Walks = %d, want 27", est.Walks)
	}
	// TDFS = sum of level sizes of the DP: 3 + 9 + 27 + 27(padded) ... at
	// least it must be >= walks.
	if est.TDFS < est.Walks {
		t.Fatalf("TDFS = %d < Walks = %d", est.TDFS, est.Walks)
	}
}

func TestEstimatePositionAccessors(t *testing.T) {
	g := paperGraph(t)
	ix := mustIndex(t, g, paperQuery())
	est := FullEstimate(ix)
	sPos := ix.pos[vS]
	tPos := ix.pos[vT]
	if got := est.WalksToPosition(0, sPos); got != 1 {
		t.Fatalf("c^0_0(s) = %d, want 1", got)
	}
	if got := est.WalksFromPosition(4, tPos); got != 1 {
		t.Fatalf("c^k_k(t) = %d, want 1", got)
	}
	if got := est.WalksFromPosition(0, sPos); got != est.Walks {
		t.Fatalf("c^0_k(s) = %d, want Walks = %d", got, est.Walks)
	}
}
