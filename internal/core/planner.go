package core

import "fmt"

// Method identifies which enumeration algorithm evaluates a query.
type Method int

// Enumeration methods. MethodAuto lets the two-phase optimizer decide
// (§3.2, §6.1); the others force a specific algorithm, which the
// experiments use to study IDX-DFS and IDX-JOIN in isolation.
const (
	MethodAuto Method = iota
	MethodDFS
	MethodJoin
)

// String implements fmt.Stringer.
func (m Method) String() string {
	switch m {
	case MethodAuto:
		return "PathEnum"
	case MethodDFS:
		return "IDX-DFS"
	case MethodJoin:
		return "IDX-JOIN"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// DefaultTau is the preliminary-estimate threshold below which the
// optimizer skips join-order optimization and runs IDX-DFS directly. The
// paper calibrates tau = 1e5 by pre-executing random queries (§6.2).
const DefaultTau = 1e5

// Plan records the optimizer's decision for one query.
type Plan struct {
	// Method is the chosen algorithm: MethodDFS or MethodJoin.
	Method Method
	// Cut is the join cut position i*; meaningful when Method is MethodJoin.
	Cut int
	// Build is the resolved hash side of the tuple-at-a-time join — the
	// smaller estimated half at Cut (BuildLeft or BuildRight); meaningful
	// when Method is MethodJoin.
	Build BuildSide
	// Preliminary is the Equation-5 estimate that gated the decision.
	Preliminary float64
	// Full holds the full-fledged estimate, or nil when the preliminary
	// phase short-circuited to IDX-DFS.
	Full *Estimate
}

// ChoosePlan implements the two-phase query optimizer: if the preliminary
// estimate is at most tau the query is cheap and IDX-DFS runs directly;
// otherwise the full-fledged estimator prices the left-deep plan against
// the best bushy plan and the cheaper one wins (§6.1-6.3).
func ChoosePlan(ix *Index, tau float64) Plan {
	if tau <= 0 {
		tau = DefaultTau
	}
	prelim := PreliminaryEstimate(ix)
	if prelim <= tau {
		return Plan{Method: MethodDFS, Preliminary: prelim}
	}
	est := FullEstimate(ix)
	plan := Plan{Preliminary: prelim, Full: est, Cut: est.Cut}
	if est.TDFS <= est.TJoin || est.Cut == 0 {
		plan.Method = MethodDFS
	} else {
		plan.Method = MethodJoin
		plan.Build = est.BuildSideAt(est.Cut)
	}
	return plan
}
