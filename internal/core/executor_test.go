package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"pathenum/internal/gen"
	"pathenum/internal/graph"
)

// TestRunContextMatchesRun: the context variant with a background context
// is exactly Run.
func TestRunContextMatchesRun(t *testing.T) {
	g := gen.BarabasiAlbert(200, 4, 5)
	q := Query{S: 0, T: 9, K: 4}
	want, err := Run(g, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunContext(context.Background(), g, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.Counters.Results != want.Counters.Results || got.IndexEdges != want.IndexEdges {
		t.Fatalf("RunContext %+v, Run %+v", got.Counters, want.Counters)
	}
}

// TestRunContextCancelMidRun: cancelling the context mid-enumeration stops
// a heavy query long before natural completion and reports Completed=false.
// The cancel fires deterministically from the Emit callback (which keeps
// returning true, so only the context can stop the run).
func TestRunContextCancelMidRun(t *testing.T) {
	g := gen.Layered(24, 5) // 24^5 ~ 8M paths
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var emitted uint64
	res, err := RunContext(ctx, g, Query{S: 0, T: 1, K: 6}, Options{
		Method: MethodDFS,
		Emit: func([]graph.VertexID) bool {
			emitted++
			if emitted == 100 {
				cancel()
			}
			return true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("cancelled run must not complete")
	}
	// The amortized check fires within stopCheckInterval expansions, so the
	// run must stop far short of the 8M results.
	if res.Counters.Results < 100 || res.Counters.Results > 1_000_000 {
		t.Fatalf("cancelled run saw %d results", res.Counters.Results)
	}
}

// TestRunContextPreCancelled: an already-cancelled context is rejected at
// entry, before any BFS or index build.
func TestRunContextPreCancelled(t *testing.T) {
	g := gen.Layered(24, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, g, Query{S: 0, T: 1, K: 6}, Options{Method: MethodDFS})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled run: err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("pre-cancelled run must not produce a result: %+v", res)
	}
}

// TestRunContextDeadline: a context deadline behaves like Options.Timeout.
func TestRunContextDeadline(t *testing.T) {
	g := gen.Layered(24, 5)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	res, err := RunContext(ctx, g, Query{S: 0, T: 1, K: 6}, Options{Method: MethodDFS})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("deadline run must not complete")
	}
	if res.Counters.Results == 0 {
		t.Fatal("deadline run should still find some results")
	}
}

// TestSessionRunContextCancel: the session path observes the context too,
// and the session remains usable after a cancelled run.
func TestSessionRunContextCancel(t *testing.T) {
	g := gen.Layered(24, 5)
	sess := NewSession(g, nil)
	ctx, cancel := context.WithCancel(context.Background())
	var emitted uint64
	res, err := sess.RunContext(ctx, Query{S: 0, T: 1, K: 6}, Options{
		Method: MethodDFS,
		Emit: func([]graph.VertexID) bool {
			emitted++
			if emitted == 100 {
				cancel()
			}
			return true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("cancelled session run must not complete")
	}
	// An already-dead context is rejected at entry on the session path too.
	if _, err := sess.RunContext(ctx, Query{S: 0, T: 1, K: 6}, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled session run: err = %v, want context.Canceled", err)
	}
	// The visited bitmap must be swept and the next run must answer fully.
	res2, err := sess.RunContext(context.Background(), Query{S: 0, T: 1, K: 3}, Options{Method: MethodDFS})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Completed {
		t.Fatal("fresh run after cancellation must complete")
	}
}

// TestNewStopper: the stopper is nil exactly when the run is unbounded, so
// enumeration skips the poll entirely.
func TestNewStopper(t *testing.T) {
	if s := newStopper(context.Background(), 0); s != nil {
		t.Fatal("unbounded run must have a nil stopper")
	}
	if s := newStopper(context.Background(), time.Hour); s == nil || s() {
		t.Fatal("timeout-bounded stopper must exist and not fire early")
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := newStopper(ctx, 0)
	if s == nil || s() {
		t.Fatal("cancellable stopper must exist and not fire before cancel")
	}
	cancel()
	if !s() {
		t.Fatal("stopper must fire after cancel")
	}
	// The tighter of context deadline and Options.Timeout wins.
	dctx, dcancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer dcancel()
	time.Sleep(time.Millisecond)
	if s := newStopper(dctx, time.Hour); s == nil || !s() {
		t.Fatal("expired context deadline must fire despite a long timeout")
	}
}
