package core
