package core

import (
	"context"

	"pathenum/internal/graph"
	"pathenum/internal/mem"
)

// Session amortizes per-query allocations across repeated queries on the
// same graph: the O(|V|) BFS labelings, the index position map and the
// visited bitmap are allocated once and reused. This targets the paper's
// online scenario, where a service answers a stream of queries against one
// in-memory graph and garbage-collector pressure matters (DESIGN.md notes
// GC overhead as the main Go-specific risk).
//
// A Session is a thin handle on the shared executor pipeline — the same
// pipeline core.Run uses with throwaway buffers — so the two can never
// diverge semantically.
//
// A Session is NOT safe for concurrent use; create one per worker (the
// public Engine does). The Index produced by one Run is invalidated by the
// next Run on the same session.
type Session struct {
	ex *executor
}

// NewSession creates a session over g. The oracle is optional and applies
// to every run that does not override it via Options.Oracle.
func NewSession(g *graph.Graph, oracle DistanceOracle) *Session {
	return &Session{ex: newExecutor(g, oracle)}
}

// NewSessionBudget is NewSession wired to a shared engine byte budget:
// every join-planned run admits its predicted build side against the
// budget (mem.ClassBuild) before materializing and degrades to the
// pinned-equal DFS plan when it does not fit (Result.MemFallback). The
// session's own pooled O(|V|) scratch is NOT charged here — the owner
// accounts it once per pooled session via SessionScratchBytes, since the
// scratch exists whether or not any query runs. A nil budget behaves
// exactly like NewSession.
func NewSessionBudget(g *graph.Graph, oracle DistanceOracle, b *mem.Budget) *Session {
	s := NewSession(g, oracle)
	s.ex.budget = b
	return s
}

// Graph returns the session's graph.
func (s *Session) Graph() *graph.Graph { return s.ex.g }

// Run executes one query, reusing the session's buffers. Semantics match
// core.Run; the returned Result does not retain references to session
// buffers and stays valid after subsequent runs.
func (s *Session) Run(q Query, opts Options) (*Result, error) {
	return s.ex.execute(context.Background(), q, opts)
}

// RunContext is Run observing ctx: cancellation or a context deadline stops
// the enumeration early (Result.Completed reports false), checked on an
// amortized event counter alongside opts.Timeout.
func (s *Session) RunContext(ctx context.Context, q Query, opts Options) (*Result, error) {
	return s.ex.execute(ctx, q, opts)
}

// RunShared is RunContext with precomputed distance labelings substituted
// for either BFS pass: a non-nil fwd must be a forward Frontier from q.S,
// a non-nil bwd a backward Frontier from q.T, both built on the session's
// graph version with bound >= q.K and the predicate identified by
// opts.PredicateToken. Mismatched frontiers return an error — a frontier
// from an older epoch of the graph's lineage reports graph.ErrStaleEpoch
// under errors.Is. A nil side is computed per query as usual. This is the
// shared-computation entry point of the batch subsystem (internal/batch)
// and of the engine's frontier cache: each shared side replaces one
// per-query BFS pass. Results are identical to RunContext's — frontier
// labels relax the per-query ones soundly (see Frontier).
func (s *Session) RunShared(ctx context.Context, q Query, opts Options, fwd, bwd *Frontier) (*Result, error) {
	return s.ex.executeShared(ctx, q, opts, fwd, bwd)
}
