package core

import (
	"time"

	"pathenum/internal/graph"
)

// Session amortizes per-query allocations across repeated queries on the
// same graph: the O(|V|) BFS labelings and the visited bitmap are allocated
// once and reused. This targets the paper's online scenario, where a
// service answers a stream of queries against one in-memory graph and
// garbage-collector pressure matters (DESIGN.md notes GC overhead as the
// main Go-specific risk).
//
// A Session is NOT safe for concurrent use; create one per worker (the
// public Engine does). The Index produced by one Run is invalidated by the
// next Run on the same session.
type Session struct {
	g       *graph.Graph
	scratch *bfsScratch
	pos     []int32
	onPath  []bool
	oracle  DistanceOracle
}

// NewSession creates a session over g. The oracle is optional.
func NewSession(g *graph.Graph, oracle DistanceOracle) *Session {
	n := g.NumVertices()
	return &Session{
		g:       g,
		scratch: newBFSScratch(n),
		pos:     make([]int32, n),
		onPath:  make([]bool, n),
		oracle:  oracle,
	}
}

// Graph returns the session's graph.
func (s *Session) Graph() *graph.Graph { return s.g }

// Run executes one query, reusing the session's buffers. Semantics match
// core.Run; the returned Result does not retain references to session
// buffers and stays valid after subsequent runs.
func (s *Session) Run(q Query, opts Options) (*Result, error) {
	if err := q.Validate(s.g); err != nil {
		return nil, err
	}
	res := &Result{Query: q}

	var deadline time.Time
	if opts.Timeout > 0 {
		deadline = time.Now().Add(opts.Timeout)
	}
	shouldStop := func() bool { return false }
	if !deadline.IsZero() {
		shouldStop = func() bool { return time.Now().After(deadline) }
	}
	oracle := opts.Oracle
	if oracle == nil {
		oracle = s.oracle
	}

	start := time.Now()
	if oracle != nil {
		if lb := oracle.LowerBound(q.S, q.T); lb < 0 || int(lb) > q.K {
			// Infeasible: report an empty completed run with no BFS.
			res.Completed = true
			res.Timings.Build = time.Since(start)
			res.Plan = Plan{Method: MethodDFS}
			return res, nil
		}
	}
	s.scratch.runPruned(s.g, q, opts.Predicate, oracle)
	res.Timings.BFS = time.Since(start)
	ix := buildIndexFromScratchPos(s.g, q, s.scratch, opts.Predicate, s.pos)
	res.Timings.Build = time.Since(start)
	res.IndexEdges = ix.Edges()
	res.IndexVertices = ix.NumIndexed()
	res.IndexBytes = ix.MemoryBytes()

	optStart := time.Now()
	var plan Plan
	switch opts.Method {
	case MethodDFS:
		plan = Plan{Method: MethodDFS, Preliminary: PreliminaryEstimate(ix)}
	case MethodJoin:
		est := FullEstimate(ix)
		plan = Plan{Method: MethodJoin, Cut: est.Cut, Full: est, Preliminary: PreliminaryEstimate(ix)}
		if est.Cut == 0 {
			plan.Method = MethodDFS
		}
	default:
		plan = ChoosePlan(ix, opts.Tau)
	}
	res.Plan = plan
	res.Timings.Optimize = time.Since(optStart)

	ctl := RunControl{Emit: opts.Emit, Limit: opts.Limit, ShouldStop: shouldStop}
	enumStart := time.Now()
	switch plan.Method {
	case MethodJoin:
		done, err := EnumerateJoin(ix, plan.Cut, ctl, &res.Counters, &res.JoinStats)
		if err != nil {
			return nil, err
		}
		res.Completed = done
	default:
		res.Completed = s.enumerateDFSReusing(ix, ctl, &res.Counters)
	}
	res.Timings.Enumerate = time.Since(enumStart)
	return res, nil
}

// enumerateDFSReusing is EnumerateDFS with the session's visited bitmap.
// The bitmap is clean on entry and restored to clean on exit (the search
// unsets every bit it sets).
func (s *Session) enumerateDFSReusing(ix *Index, ctl RunControl, ctr *Counters) bool {
	if ix.Empty() {
		return true
	}
	ds := &dfsSearcher{
		ix:     ix,
		ctl:    ctl,
		ctr:    ctr,
		path:   make([]graph.VertexID, 0, ix.k+1),
		onPath: s.onPath,
	}
	ds.path = append(ds.path, ix.q.S)
	ds.onPath[ix.q.S] = true
	ds.search()
	ds.onPath[ix.q.S] = false
	// On early stop the recursion may leave bits set; sweep the path.
	for _, v := range ds.path {
		ds.onPath[v] = false
	}
	return !ds.stopped
}

// buildIndexFromScratchPos is buildIndexFrom with a caller-owned pos
// buffer, so repeated builds avoid the O(|V|) allocation. The index
// borrows the buffer: it is valid until the next build that reuses it.
func buildIndexFromScratchPos(g *graph.Graph, q Query, scratch *bfsScratch, pred EdgePredicate, pos []int32) *Index {
	n := g.NumVertices()
	k := q.K
	k32 := int32(k)
	distS, distT := scratch.distS, scratch.distT

	ix := &Index{g: g, q: q, k: k, pred: pred}
	ix.pos = pos
	for i := range ix.pos {
		ix.pos[i] = -1
	}

	inX := func(v graph.VertexID) bool {
		ds, dt := distS[v], distT[v]
		return ds >= 0 && dt >= 0 && ds+dt <= k32
	}
	if !inX(q.S) || !inX(q.T) {
		ix.empty = true
		ix.cSize = make([]int64, k+1)
		ix.sumIt = make([]uint64, k)
		return ix
	}
	for v := 0; v < n; v++ {
		if inX(graph.VertexID(v)) {
			ix.pos[v] = int32(len(ix.verts))
			ix.verts = append(ix.verts, graph.VertexID(v))
		}
	}
	m := len(ix.verts)
	ix.vs = make([]int32, m)
	ix.vt = make([]int32, m)
	for p, v := range ix.verts {
		ix.vs[p] = distS[v]
		ix.vt[p] = distT[v]
	}
	ix.buildForward(distT)
	ix.buildReverse(distS)
	ix.collectStats()
	return ix
}
