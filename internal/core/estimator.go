package core

import "math"

// PreliminaryEstimate implements Equation 5: a rough O(k^2) estimate of the
// search-space size computed from per-level statistics collected during
// index construction. gamma_j is the average fan-out of a level-j vertex
// under the remaining budget; the estimate is the sum over levels of the
// product of fan-outs.
func PreliminaryEstimate(ix *Index) float64 {
	if ix.Empty() {
		return 0
	}
	k := ix.k
	est := 0.0
	product := 1.0
	for j := 0; j < k; j++ {
		size := float64(ix.cSize[j])
		if size == 0 {
			return est
		}
		gamma := float64(ix.sumIt[j]) / size
		product *= gamma
		est += product
		if math.IsInf(est, 0) {
			return math.MaxFloat64
		}
	}
	return est
}

// Estimate is the output of the full-fledged cardinality estimator
// (Algorithm 5). All counts are padded-walk counts under the join model of
// §3.1 and saturate at MaxUint64 instead of overflowing.
type Estimate struct {
	k int

	// fromS[i][p] = c^0_i(v): number of Q[0:i] tuples ending at the vertex
	// with dense position p (walks of length i from s, with (t,t) padding).
	fromS [][]uint64
	// toT[i][p] = c^i_k(v): number of Q[i:k] tuples starting at p.
	toT [][]uint64

	// SumFromS[i] = |Q[0:i]|, SumToT[i] = |Q[i:k]| (Equation 6).
	SumFromS []uint64
	SumToT   []uint64

	// Walks is the total padded-walk count |Q| = delta_W.
	Walks uint64

	// Cut is the optimal cut position i* in [1, k-1] minimizing
	// |Q[0:i]| + |Q[i:k]| (line 11). Zero when k < 2.
	Cut int

	// TDFS and TJoin are the cost-model totals (§6.3) for the left-deep
	// plan (Algorithm 4) and the bushy plan at Cut (Algorithm 6).
	TDFS  uint64
	TJoin uint64
}

func satAdd(a, b uint64) uint64 {
	c := a + b
	if c < a {
		return math.MaxUint64
	}
	return c
}

// FullEstimate runs the full-fledged estimator: two dynamic programs over
// the index levels, one backward from t (lines 1-5 of Algorithm 5) and one
// forward from s (lines 6-10), then selects the cut position (line 11).
// Time O(k * |E(index)|), space O(k * |X|).
func FullEstimate(ix *Index) *Estimate {
	k := ix.k
	est := &Estimate{
		k:        k,
		SumFromS: make([]uint64, k+1),
		SumToT:   make([]uint64, k+1),
	}
	if ix.Empty() {
		return est
	}
	m := len(ix.verts)
	est.fromS = make([][]uint64, k+1)
	est.toT = make([][]uint64, k+1)
	for i := 0; i <= k; i++ {
		est.fromS[i] = make([]uint64, m)
		est.toT[i] = make([]uint64, m)
	}

	inC := func(p int32, i int) bool {
		return int(ix.vs[p]) <= i && int(ix.vt[p]) <= k-i
	}

	// Backward DP: c^k_k(t) = 1; c^i_k(v) = sum over w in It(v, k-i-1)
	// restricted to C_{i+1} of c^{i+1}_k(w).
	tPos := ix.pos[ix.q.T]
	est.toT[k][tPos] = 1
	est.SumToT[k] = 1
	for i := k - 1; i >= 0; i-- {
		row, next := est.toT[i], est.toT[i+1]
		var levelSum uint64
		for p := int32(0); p < int32(m); p++ {
			if !inC(p, i) {
				continue
			}
			var c uint64
			for _, w := range ix.outUpToPos(p, k-i-1) {
				wp := ix.pos[w]
				if int(ix.vs[wp]) <= i+1 { // w in C_{i+1}; w.t bound holds via It
					c = satAdd(c, next[wp])
				}
			}
			row[p] = c
			levelSum = satAdd(levelSum, c)
		}
		est.SumToT[i] = levelSum
	}

	// Forward DP: c^0_0(s) = 1; c^0_i(v) = sum over w in Is(v, i-1)
	// restricted to C_{i-1} of c^0_{i-1}(w).
	sPos := ix.pos[ix.q.S]
	est.fromS[0][sPos] = 1
	est.SumFromS[0] = 1
	for i := 1; i <= k; i++ {
		row, prev := est.fromS[i], est.fromS[i-1]
		var levelSum uint64
		for p := int32(0); p < int32(m); p++ {
			if !inC(p, i) {
				continue
			}
			var c uint64
			for _, w := range ix.inUpToPos(p, i-1) {
				wp := ix.pos[w]
				if int(ix.vt[wp]) <= k-(i-1) { // w in C_{i-1}; w.s bound via Is
					c = satAdd(c, prev[wp])
				}
			}
			row[p] = c
			levelSum = satAdd(levelSum, c)
		}
		est.SumFromS[i] = levelSum
	}

	est.Walks = est.SumFromS[k]

	// T_DFS: the left-deep plan materializes every prefix level (§6.3).
	for i := 1; i <= k; i++ {
		est.TDFS = satAdd(est.TDFS, est.SumFromS[i])
	}

	// Cut position i* minimizing |Q[0:i]| + |Q[i:k]| over interior cuts.
	if k >= 2 {
		best := uint64(math.MaxUint64)
		for i := 1; i < k; i++ {
			c := satAdd(est.SumFromS[i], est.SumToT[i])
			if c < best {
				best = c
				est.Cut = i
			}
		}
		// T_JOIN = |Q| + sum_{1<=i<=i*} |Q[0:i]| + sum_{i*<=i<=k} |Q[i*:k]|
		// evaluated with the per-level sums of the two DPs (§6.3).
		est.TJoin = est.Walks
		for i := 1; i <= est.Cut; i++ {
			est.TJoin = satAdd(est.TJoin, est.SumFromS[i])
		}
		for i := est.Cut; i <= k; i++ {
			est.TJoin = satAdd(est.TJoin, est.SumToT[i])
		}
	} else {
		est.TJoin = math.MaxUint64 // no interior cut exists
	}
	return est
}

// BuildSideAt returns the hash-side choice of the tuple-at-a-time join
// at the given interior cut: the smaller estimated half (BuildLeft on
// ties). BuildSideAt(e.Cut) is the planner's choice at the optimal cut.
func (e *Estimate) BuildSideAt(cut int) BuildSide {
	if cut < 1 || cut >= e.k || e.SumFromS[cut] <= e.SumToT[cut] {
		return BuildLeft
	}
	return BuildRight
}

// WalksFromPosition returns c^i_k(v) for external consumers (tests).
func (e *Estimate) WalksFromPosition(i int, p int32) uint64 {
	if e.toT == nil {
		return 0
	}
	return e.toT[i][p]
}

// WalksToPosition returns c^0_i(v) for external consumers (tests).
func (e *Estimate) WalksToPosition(i int, p int32) uint64 {
	if e.fromS == nil {
		return 0
	}
	return e.fromS[i][p]
}
