package core

import (
	"math/rand"
	"sort"
	"testing"

	"pathenum/internal/gen"
	"pathenum/internal/graph"
)

func collectDFS(t *testing.T, ix *Index) [][]graph.VertexID {
	t.Helper()
	var out [][]graph.VertexID
	done := EnumerateDFS(ix, RunControl{Emit: func(p []graph.VertexID) bool {
		out = append(out, append([]graph.VertexID(nil), p...))
		return true
	}}, nil)
	if !done {
		t.Fatal("EnumerateDFS stopped unexpectedly")
	}
	return out
}

func sortPaths(paths [][]graph.VertexID) {
	sort.Slice(paths, func(i, j int) bool {
		a, b := paths[i], paths[j]
		for x := 0; x < len(a) && x < len(b); x++ {
			if a[x] != b[x] {
				return a[x] < b[x]
			}
		}
		return len(a) < len(b)
	})
}

func samePaths(a, b [][]graph.VertexID) bool {
	if len(a) != len(b) {
		return false
	}
	sortPaths(a)
	sortPaths(b)
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestDFSPaperExample: q(s,t,4) on Figure 1a has exactly 5 simple paths.
func TestDFSPaperExample(t *testing.T) {
	g := paperGraph(t)
	ix := mustIndex(t, g, paperQuery())
	got := collectDFS(t, ix)
	want := brutePathsLocal(g, vS, vT, 4)
	if len(want) != 5 {
		t.Fatalf("oracle found %d paths, expected 5 from the paper example", len(want))
	}
	if !samePaths(got, want) {
		t.Fatalf("DFS paths %v != oracle %v", got, want)
	}
}

// TestDFSMatchesBruteForce is the central correctness property: IDX-DFS
// enumerates exactly P(s,t,k,G) on randomized graphs (Proposition C.1).
func TestDFSMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		n := 5 + rng.Intn(12)
		g := gen.ErdosRenyi(n, n*3, rng.Int63())
		s := graph.VertexID(rng.Intn(n))
		tt := graph.VertexID(rng.Intn(n))
		if s == tt {
			continue
		}
		k := 1 + rng.Intn(5)
		ix := mustIndex(t, g, Query{S: s, T: tt, K: k})
		got := collectDFS(t, ix)
		want := brutePathsLocal(g, s, tt, k)
		if !samePaths(got, want) {
			t.Fatalf("trial %d (n=%d s=%d t=%d k=%d): DFS %d paths, oracle %d",
				trial, n, s, tt, k, len(got), len(want))
		}
	}
}

func TestDFSEmptyIndex(t *testing.T) {
	g, err := graph.NewGraph(3, []graph.Edge{{From: 0, To: 1}})
	if err != nil {
		t.Fatal(err)
	}
	ix := mustIndex(t, g, Query{S: 0, T: 2, K: 4})
	var ctr Counters
	if !EnumerateDFS(ix, RunControl{}, &ctr) {
		t.Fatal("empty-index run must complete")
	}
	if ctr.Results != 0 {
		t.Fatalf("Results = %d, want 0", ctr.Results)
	}
}

func TestDFSLimit(t *testing.T) {
	g := gen.Layered(4, 3) // 64 paths source->sink
	ix := mustIndex(t, g, Query{S: 0, T: 1, K: 4})
	var ctr Counters
	done := EnumerateDFS(ix, RunControl{Limit: 10}, &ctr)
	if done {
		t.Fatal("run with limit must report early stop")
	}
	if ctr.Results != 10 {
		t.Fatalf("Results = %d, want 10", ctr.Results)
	}
}

func TestDFSEmitCancel(t *testing.T) {
	g := gen.Layered(4, 3)
	ix := mustIndex(t, g, Query{S: 0, T: 1, K: 4})
	count := 0
	done := EnumerateDFS(ix, RunControl{Emit: func([]graph.VertexID) bool {
		count++
		return count < 5
	}}, nil)
	if done {
		t.Fatal("cancelled run must report early stop")
	}
	if count != 5 {
		t.Fatalf("emit called %d times, want 5", count)
	}
}

func TestDFSShouldStop(t *testing.T) {
	// Large layered graph; stop immediately via ShouldStop.
	g := gen.Layered(8, 4) // 4096 paths
	ix := mustIndex(t, g, Query{S: 0, T: 1, K: 5})
	var ctr Counters
	done := EnumerateDFS(ix, RunControl{ShouldStop: func() bool { return true }}, &ctr)
	if done {
		t.Fatal("ShouldStop run must report early stop")
	}
	full := collectCount(ix)
	if ctr.Results >= full {
		t.Fatalf("stopped run found %d of %d results", ctr.Results, full)
	}
}

func collectCount(ix *Index) uint64 {
	var ctr Counters
	EnumerateDFS(ix, RunControl{}, &ctr)
	return ctr.Results
}

func TestDFSCountersPaperExample(t *testing.T) {
	g := paperGraph(t)
	ix := mustIndex(t, g, paperQuery())
	var ctr Counters
	EnumerateDFS(ix, RunControl{}, &ctr)
	if ctr.Results != 5 {
		t.Fatalf("Results = %d, want 5", ctr.Results)
	}
	if ctr.EdgesAccessed == 0 {
		t.Fatal("EdgesAccessed must be positive")
	}
	// The only invalid partial on this graph is the branch through v6:
	// (s,v0,v6) -> (s,v0,v6,v0 is on path) dead end, plus any budget dead
	// ends. Just require it is small but positive.
	if ctr.InvalidPartials == 0 {
		t.Fatal("expected at least one invalid partial (the v6 branch)")
	}
}

// TestDFSLayeredCounts: a width^layers layered graph has exactly
// width^layers paths and zero invalid partials (every branch succeeds),
// which is the "delta_P close to delta_W" regime of §5.2.
func TestDFSLayeredCounts(t *testing.T) {
	g := gen.Layered(5, 3)
	ix := mustIndex(t, g, Query{S: 0, T: 1, K: 4})
	var ctr Counters
	EnumerateDFS(ix, RunControl{}, &ctr)
	if ctr.Results != 125 {
		t.Fatalf("Results = %d, want 125", ctr.Results)
	}
	if ctr.InvalidPartials != 0 {
		t.Fatalf("InvalidPartials = %d, want 0 on a layered graph", ctr.InvalidPartials)
	}
}

// TestDFSKEqualsOne: the minimal hop constraint enumerates only the direct
// edge.
func TestDFSKEqualsOne(t *testing.T) {
	g := paperGraph(t)
	ix := mustIndex(t, g, Query{S: vS, T: vT, K: 1})
	got := collectDFS(t, ix)
	if len(got) != 0 {
		t.Fatalf("no direct s->t edge, got %d paths", len(got))
	}
	ix2 := mustIndex(t, g, Query{S: vV0, T: vT, K: 1})
	got2 := collectDFS(t, ix2)
	if len(got2) != 1 || len(got2[0]) != 2 {
		t.Fatalf("v0->t direct: got %v", got2)
	}
}

// TestDFSPathLengthBound: every emitted path obeys the hop constraint and
// endpoints.
func TestDFSPathLengthBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := gen.BarabasiAlbert(60, 4, 17)
	for trial := 0; trial < 20; trial++ {
		s := graph.VertexID(rng.Intn(60))
		tt := graph.VertexID(rng.Intn(60))
		if s == tt {
			continue
		}
		k := 2 + rng.Intn(4)
		ix := mustIndex(t, g, Query{S: s, T: tt, K: k})
		EnumerateDFS(ix, RunControl{Emit: func(p []graph.VertexID) bool {
			if len(p)-1 > k {
				t.Fatalf("path %v exceeds k=%d", p, k)
			}
			if p[0] != s || p[len(p)-1] != tt {
				t.Fatalf("path %v has wrong endpoints", p)
			}
			seen := map[graph.VertexID]bool{}
			for _, v := range p {
				if seen[v] {
					t.Fatalf("path %v revisits %d", p, v)
				}
				seen[v] = true
			}
			for i := 0; i+1 < len(p); i++ {
				if !g.HasEdge(p[i], p[i+1]) {
					t.Fatalf("path %v uses missing edge %d->%d", p, p[i], p[i+1])
				}
			}
			return true
		}}, nil)
	}
}
