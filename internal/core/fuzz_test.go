package core

import (
	"context"
	"sort"
	"testing"

	"pathenum/internal/gen"
	"pathenum/internal/graph"
)

// sortedKeys renders paths as sorted strings for order-insensitive set
// comparison.
func sortedKeys(paths [][]graph.VertexID) []string {
	out := make([]string, len(paths))
	for i, p := range paths {
		out[i] = pathKey(p)
	}
	sort.Strings(out)
	return out
}

func sameKeySets(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FuzzEnumerationAgreement drives native fuzzing over the full pipeline:
// a fuzz-chosen random graph and query must give identical results through
// IDX-DFS, IDX-JOIN and the optimizer, all matching the brute-force oracle,
// and the full estimator must count walks exactly. The join is exercised
// differentially: for every cut position and both build sides, the push
// mode (EnumerateJoinSide's Emit) and the pull mode (the same enumerator
// behind a stream) must deliver the same path *set* — order-insensitive —
// and the same Counters.Results as the DFS, and a join-planned
// Session.Stream must match too. Run with
// `go test -fuzz=FuzzEnumerationAgreement ./internal/core` for open-ended
// fuzzing; the seed corpus runs in normal test mode.
func FuzzEnumerationAgreement(f *testing.F) {
	f.Add(int64(1), uint8(10), uint8(30), uint8(0), uint8(5), uint8(3))
	f.Add(int64(2), uint8(6), uint8(18), uint8(1), uint8(2), uint8(4))
	f.Add(int64(3), uint8(15), uint8(60), uint8(3), uint8(9), uint8(5))
	f.Add(int64(4), uint8(4), uint8(4), uint8(0), uint8(3), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, mRaw, sRaw, tRaw, kRaw uint8) {
		n := 2 + int(nRaw)%14 // 2..15 vertices
		m := int(mRaw) % 64
		g := gen.ErdosRenyi(n, m, seed)
		s := graph.VertexID(int(sRaw) % n)
		tt := graph.VertexID(int(tRaw) % n)
		if s == tt {
			return
		}
		k := 1 + int(kRaw)%5
		q := Query{S: s, T: tt, K: k}

		want := brutePathsLocal(g, s, tt, k)
		wantKeys := sortedKeys(want)
		ix, err := BuildIndex(g, q)
		if err != nil {
			t.Fatal(err)
		}
		var dfs Counters
		var dfsPaths [][]graph.VertexID
		EnumerateDFS(ix, RunControl{Emit: func(p []graph.VertexID) bool {
			dfsPaths = append(dfsPaths, append([]graph.VertexID(nil), p...))
			return true
		}}, &dfs)
		if dfs.Results != uint64(len(want)) {
			t.Fatalf("DFS %d results, oracle %d (q=%v)", dfs.Results, len(want), q)
		}
		dfsKeys := sortedKeys(dfsPaths)
		if !sameKeySets(dfsKeys, wantKeys) {
			t.Fatalf("DFS path set diverges from oracle (q=%v)", q)
		}
		if k >= 2 {
			for cut := 1; cut < k; cut++ {
				// Push mode, both build sides.
				for _, side := range []BuildSide{BuildLeft, BuildRight} {
					var join Counters
					var joinPaths [][]graph.VertexID
					if _, err := EnumerateJoinSide(ix, cut, side, RunControl{Emit: func(p []graph.VertexID) bool {
						joinPaths = append(joinPaths, append([]graph.VertexID(nil), p...))
						return true
					}}, &join, nil); err != nil {
						t.Fatal(err)
					}
					if join.Results != dfs.Results {
						t.Fatalf("join(cut=%d,side=%v) %d results, DFS %d (q=%v)", cut, side, join.Results, dfs.Results, q)
					}
					if !sameKeySets(sortedKeys(joinPaths), dfsKeys) {
						t.Fatalf("join(cut=%d,side=%v) path set diverges from DFS (q=%v)", cut, side, q)
					}
				}
				// Pull mode: the same tuple-at-a-time enumerator behind a
				// stream, with the estimator-resolved build side.
				var pullCtr Counters
				var pullKeys []string
				seq := makeStream(context.Background(), StreamConfig{}, func(_ context.Context, emit func([]graph.VertexID) bool) (*Result, error) {
					done, err := EnumerateJoin(ix, cut, RunControl{Emit: emit}, &pullCtr, nil)
					if err != nil {
						return nil, err
					}
					return &Result{Completed: done}, nil
				}, false)
				for p, serr := range seq {
					if serr != nil {
						t.Fatal(serr)
					}
					pullKeys = append(pullKeys, pathKey(p))
				}
				sort.Strings(pullKeys)
				if pullCtr.Results != dfs.Results {
					t.Fatalf("streamed join(cut=%d) %d results, DFS %d (q=%v)", cut, pullCtr.Results, dfs.Results, q)
				}
				if !sameKeySets(pullKeys, dfsKeys) {
					t.Fatalf("streamed join(cut=%d) path set diverges from DFS (q=%v)", cut, q)
				}
			}
			// The join-planned session stream (the public wiring) agrees too.
			sess := NewSession(g, nil)
			var planned *Result
			var sessKeys []string
			for p, serr := range sess.StreamWith(context.Background(), q, Options{Method: MethodJoin}, StreamConfig{
				OnResult: func(r *Result) { planned = r },
			}) {
				if serr != nil {
					t.Fatal(serr)
				}
				sessKeys = append(sessKeys, pathKey(p))
			}
			sort.Strings(sessKeys)
			if !sameKeySets(sessKeys, dfsKeys) {
				t.Fatalf("join-planned stream path set diverges from DFS (q=%v)", q)
			}
			if planned == nil || planned.Counters.Results != dfs.Results {
				t.Fatalf("join-planned stream result %+v, want %d results (q=%v)", planned, dfs.Results, q)
			}
		}
		// Parallel enumeration must agree with the sequential path at
		// several fan-out levels: the sharded DFS, the sharded join (every
		// cut, both build sides) and a parallel session stream all deliver
		// the same path set and the same Counters.Results. Paths are
		// appended without copying on purpose — the parallel entry points
		// guarantee owned emissions, so any contract violation corrupts the
		// set comparison here.
		for _, par := range []int{1, 2, 4} {
			var pctr Counters
			var pPaths [][]graph.VertexID
			EnumerateDFSParallel(ix, par, RunControl{Emit: func(p []graph.VertexID) bool {
				pPaths = append(pPaths, p)
				return true
			}}, &pctr)
			if pctr.Results != dfs.Results {
				t.Fatalf("parallel(%d) DFS %d results, sequential %d (q=%v)", par, pctr.Results, dfs.Results, q)
			}
			if pctr.EdgesAccessed != dfs.EdgesAccessed || pctr.InvalidPartials != dfs.InvalidPartials {
				t.Fatalf("parallel(%d) DFS counters %+v, sequential %+v (q=%v)", par, pctr, dfs, q)
			}
			if !sameKeySets(sortedKeys(pPaths), dfsKeys) {
				t.Fatalf("parallel(%d) DFS path set diverges (q=%v)", par, q)
			}
			if k >= 2 {
				for cut := 1; cut < k; cut++ {
					for _, side := range []BuildSide{BuildLeft, BuildRight} {
						var jctr Counters
						var jPaths [][]graph.VertexID
						var jstats JoinStats
						if _, err := EnumerateJoinSideParallel(ix, cut, side, par, RunControl{Emit: func(p []graph.VertexID) bool {
							jPaths = append(jPaths, p)
							return true
						}}, &jctr, &jstats); err != nil {
							t.Fatal(err)
						}
						if jctr.Results != dfs.Results {
							t.Fatalf("parallel(%d) join(cut=%d,side=%v) %d results, DFS %d (q=%v)", par, cut, side, jctr.Results, dfs.Results, q)
						}
						if !sameKeySets(sortedKeys(jPaths), dfsKeys) {
							t.Fatalf("parallel(%d) join(cut=%d,side=%v) path set diverges (q=%v)", par, cut, side, q)
						}
					}
				}
				var planned *Result
				var sessKeys []string
				for p, serr := range NewSession(g, nil).StreamWith(context.Background(), q, Options{Parallelism: par}, StreamConfig{
					OnResult: func(r *Result) { planned = r },
				}) {
					if serr != nil {
						t.Fatal(serr)
					}
					sessKeys = append(sessKeys, pathKey(p))
				}
				sort.Strings(sessKeys)
				if !sameKeySets(sessKeys, dfsKeys) {
					t.Fatalf("parallel(%d) session stream path set diverges (q=%v)", par, q)
				}
				if planned == nil || planned.Counters.Results != dfs.Results {
					t.Fatalf("parallel(%d) session stream result %+v, want %d results (q=%v)", par, planned, dfs.Results, q)
				}
			}
		}
		res, err := Run(g, q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Counters.Results != dfs.Results {
			t.Fatalf("planner %d results, DFS %d (q=%v)", res.Counters.Results, dfs.Results, q)
		}
		est := FullEstimate(ix)
		if walks := bruteWalksLocal(g, s, tt, k); est.Walks != uint64(walks) {
			t.Fatalf("estimator %d walks, oracle %d (q=%v)", est.Walks, walks, q)
		}
	})
}
