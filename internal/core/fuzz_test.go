package core

import (
	"testing"

	"pathenum/internal/gen"
	"pathenum/internal/graph"
)

// FuzzEnumerationAgreement drives native fuzzing over the full pipeline:
// a fuzz-chosen random graph and query must give identical results through
// IDX-DFS, IDX-JOIN and the optimizer, all matching the brute-force oracle,
// and the full estimator must count walks exactly. Run with
// `go test -fuzz=FuzzEnumerationAgreement ./internal/core` for open-ended
// fuzzing; the seed corpus runs in normal test mode.
func FuzzEnumerationAgreement(f *testing.F) {
	f.Add(int64(1), uint8(10), uint8(30), uint8(0), uint8(5), uint8(3))
	f.Add(int64(2), uint8(6), uint8(18), uint8(1), uint8(2), uint8(4))
	f.Add(int64(3), uint8(15), uint8(60), uint8(3), uint8(9), uint8(5))
	f.Add(int64(4), uint8(4), uint8(4), uint8(0), uint8(3), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, nRaw, mRaw, sRaw, tRaw, kRaw uint8) {
		n := 2 + int(nRaw)%14 // 2..15 vertices
		m := int(mRaw) % 64
		g := gen.ErdosRenyi(n, m, seed)
		s := graph.VertexID(int(sRaw) % n)
		tt := graph.VertexID(int(tRaw) % n)
		if s == tt {
			return
		}
		k := 1 + int(kRaw)%5
		q := Query{S: s, T: tt, K: k}

		want := brutePathsLocal(g, s, tt, k)
		ix, err := BuildIndex(g, q)
		if err != nil {
			t.Fatal(err)
		}
		var dfs Counters
		EnumerateDFS(ix, RunControl{}, &dfs)
		if dfs.Results != uint64(len(want)) {
			t.Fatalf("DFS %d results, oracle %d (q=%v)", dfs.Results, len(want), q)
		}
		if k >= 2 {
			for cut := 1; cut < k; cut++ {
				var join Counters
				if _, err := EnumerateJoin(ix, cut, RunControl{}, &join, nil); err != nil {
					t.Fatal(err)
				}
				if join.Results != dfs.Results {
					t.Fatalf("join(cut=%d) %d results, DFS %d (q=%v)", cut, join.Results, dfs.Results, q)
				}
			}
		}
		res, err := Run(g, q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Counters.Results != dfs.Results {
			t.Fatalf("planner %d results, DFS %d (q=%v)", res.Counters.Results, dfs.Results, q)
		}
		est := FullEstimate(ix)
		if walks := bruteWalksLocal(g, s, tt, k); est.Walks != uint64(walks) {
			t.Fatalf("estimator %d walks, oracle %d (q=%v)", est.Walks, walks, q)
		}
	})
}
