package core

import (
	"fmt"
	"reflect"

	"pathenum/internal/graph"
)

// Frontier is a precomputed bounded BFS distance labeling from one
// endpoint, shareable across every query of a batch group that has that
// endpoint in common. It is the index-construction entry point the batch
// subsystem (internal/batch) builds on: a shared-source group computes one
// forward frontier from s and reuses it for every member's index build,
// paying one BFS pass instead of |group|.
//
// Relaxation vs the per-query labeling. A per-query forward BFS computes
// S(s,v | G-{t}) — the opposite endpoint is never expanded — and stops at
// depth q.K. A shared frontier cannot exclude a per-query endpoint or use a
// per-query bound, so it runs in the full graph to depth max K of the
// group. Both differences only *lower* labels (G-{t} distances are >= G
// distances) or label extra vertices (depth k..maxK), so the partition X
// built from a frontier is a superset of the exact one and every exact
// index edge survives. That is sound: completeness only needs X to cover
// the exact partition, and neither enumerator can emit an invalid result
// from extra index entries — the DFS (Algorithm 4) checks simplicity and
// the hop budget on the path itself, and the join (Algorithm 6) validates
// every joined tuple with validatePath. The extra entries cost only wasted
// exploration, which the batch planner trades against the saved BFS
// passes. TestRunSharedMatchesRun cross-checks the emitted path sets.
//
// A Frontier is immutable after construction and safe for concurrent use
// by any number of readers.
type Frontier struct {
	g       *graph.Graph
	origin  graph.VertexID
	bound   int
	forward bool
	pred    EdgePredicate
	dist    []int32
}

// NewForwardFrontier runs one bounded BFS from s along out-edges in the
// full graph (no excluded endpoint) and returns the labeling, valid for any
// query with source s and K <= bound. A non-nil pred restricts the search
// to edges satisfying it; queries sharing the frontier must carry the same
// predicate.
func NewForwardFrontier(g *graph.Graph, s graph.VertexID, bound int, pred EdgePredicate) (*Frontier, error) {
	if err := checkFrontierArgs(g, s, bound); err != nil {
		return nil, err
	}
	f := &Frontier{g: g, origin: s, bound: bound, forward: true, pred: pred, dist: make([]int32, g.NumVertices())}
	frontierBFS(f.dist, bound, s, func(v graph.VertexID, visit func(graph.VertexID)) {
		for _, w := range g.OutNeighbors(v) {
			if pred == nil || pred(v, w) {
				visit(w)
			}
		}
	})
	return f, nil
}

// NewBackwardFrontier is the mirrored construction: one bounded BFS from t
// along in-edges, valid for any query with target t and K <= bound.
func NewBackwardFrontier(g *graph.Graph, t graph.VertexID, bound int, pred EdgePredicate) (*Frontier, error) {
	if err := checkFrontierArgs(g, t, bound); err != nil {
		return nil, err
	}
	f := &Frontier{g: g, origin: t, bound: bound, forward: false, pred: pred, dist: make([]int32, g.NumVertices())}
	frontierBFS(f.dist, bound, t, func(v graph.VertexID, visit func(graph.VertexID)) {
		for _, w := range g.InNeighbors(v) {
			if pred == nil || pred(w, v) {
				visit(w)
			}
		}
	})
	return f, nil
}

func checkFrontierArgs(g *graph.Graph, origin graph.VertexID, bound int) error {
	if origin < 0 || origin >= graph.VertexID(g.NumVertices()) {
		return fmt.Errorf("core: frontier origin %d out of range [0,%d)", origin, g.NumVertices())
	}
	if bound < 1 {
		return fmt.Errorf("core: frontier bound %d must be >= 1", bound)
	}
	return nil
}

// frontierBFS is the direction-agnostic bounded BFS behind both frontier
// constructors: neighbors abstracts the edge direction.
func frontierBFS(dist []int32, bound int, origin graph.VertexID, neighbors func(v graph.VertexID, visit func(graph.VertexID))) {
	for i := range dist {
		dist[i] = distUnreachable
	}
	queue := make([]graph.VertexID, 0, 64)
	queue = append(queue, origin)
	dist[origin] = 0
	b32 := int32(bound)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		d := dist[v]
		if d >= b32 {
			break
		}
		neighbors(v, func(w graph.VertexID) {
			if dist[w] == distUnreachable {
				dist[w] = d + 1
				queue = append(queue, w)
			}
		})
	}
}

// Origin returns the endpoint the frontier was grown from.
func (f *Frontier) Origin() graph.VertexID { return f.origin }

// Bound returns the BFS depth bound; queries with K <= Bound may share it.
func (f *Frontier) Bound() int { return f.bound }

// IsForward reports the direction: true for distances *from* the origin
// along out-edges, false for distances *to* the origin along in-edges.
func (f *Frontier) IsForward() bool { return f.forward }

// Dist returns the labeled distance of v, or -1 if v was not reached
// within the bound.
func (f *Frontier) Dist(v graph.VertexID) int32 { return f.dist[v] }

// compatible reports whether the frontier can serve query q on g for the
// given direction, with a descriptive error when it cannot.
//
// The predicate check is best-effort: a nil/non-nil mismatch and two
// distinct predicate functions are rejected, but two closures of the same
// function capturing different state share a code pointer and cannot be
// told apart — behavioral consistency there stays the caller's
// responsibility.
func (f *Frontier) compatible(g *graph.Graph, q Query, forward bool, pred EdgePredicate) error {
	if f.g != g {
		return fmt.Errorf("core: frontier was built on a different graph")
	}
	if f.forward != forward {
		return fmt.Errorf("core: frontier direction mismatch (forward=%v, need forward=%v)", f.forward, forward)
	}
	want := q.S
	if !forward {
		want = q.T
	}
	if f.origin != want {
		return fmt.Errorf("core: frontier origin %d does not match query endpoint %d", f.origin, want)
	}
	if q.K > f.bound {
		return fmt.Errorf("core: frontier bound %d too small for k=%d", f.bound, q.K)
	}
	if (f.pred == nil) != (pred == nil) {
		return fmt.Errorf("core: frontier predicate mismatch (frontier has predicate: %v, query has predicate: %v)", f.pred != nil, pred != nil)
	}
	if f.pred != nil && reflect.ValueOf(f.pred).Pointer() != reflect.ValueOf(pred).Pointer() {
		return fmt.Errorf("core: frontier was built under a different edge predicate")
	}
	return nil
}
