package core

import (
	"fmt"

	"pathenum/internal/graph"
)

// PredicateToken is the explicit identity of an EdgePredicate for frontier
// sharing and caching. Go function values cannot be compared for
// behavioral equality (two closures over different state share a code
// pointer), so the identity is declared by the caller instead of guessed:
// every distinct predicate behavior gets a distinct non-zero token, and
// behaviorally identical predicates reuse one token. The token is part of
// the frontier-compatibility contract and of the engine's frontier-cache
// key.
//
// PredicateNone (the zero token) means "no predicate" and is the only
// token valid alongside a nil EdgePredicate. A non-nil predicate with a
// zero token is an *opaque* predicate: frontiers cannot be built for it,
// and the batch scheduler and engine cache both fall back to unshared
// per-query execution — correct, just without reuse.
type PredicateToken uint64

// PredicateNone identifies the nil predicate.
const PredicateNone PredicateToken = 0

// Frontier is a precomputed bounded BFS distance labeling from one
// endpoint, shareable across every query of a batch group that has that
// endpoint in common — and, via the engine's frontier cache, across
// batches. It is the index-construction entry point the batch subsystem
// (internal/batch) builds on: a shared-source group computes one forward
// frontier from s and reuses it for every member's index build, paying one
// BFS pass instead of |group|.
//
// Relaxation vs the per-query labeling. A per-query forward BFS computes
// S(s,v | G-{t}) — the opposite endpoint is never expanded — and stops at
// depth q.K. A shared frontier cannot exclude a per-query endpoint or use a
// per-query bound, so it runs in the full graph to depth bound >= k. Both
// differences only *lower* labels (G-{t} distances are >= G distances) or
// label extra vertices (depth k..bound), so the partition X built from a
// frontier is a superset of the exact one and every exact index edge
// survives. That is sound: completeness only needs X to cover the exact
// partition, and neither enumerator can emit an invalid result from extra
// index entries — the DFS (Algorithm 4) checks simplicity and the hop
// budget on the path itself, and the join (Algorithm 6) validates every
// joined tuple with validatePath. The extra entries cost only wasted
// exploration, which the batch planner trades against the saved BFS
// passes. TestRunSharedMatchesRun cross-checks the emitted path sets.
//
// A Frontier captures the graph's (lineage, epoch) version at construction
// and is validated against the execution graph on every use: a frontier
// built before a Dynamic.Insert is rejected with graph.ErrStaleEpoch
// rather than silently labeling a mutated graph. A Frontier is immutable
// after construction and safe for concurrent use by any number of readers.
type Frontier struct {
	ver     graph.Version
	origin  graph.VertexID
	bound   int
	forward bool
	predTok PredicateToken
	hasPred bool
	dist    []int32
}

// NewForwardFrontier runs one bounded BFS from s along out-edges in the
// full graph (no excluded endpoint) and returns the labeling, valid for any
// query with source s and K <= bound on a graph of the same version. A
// non-nil pred restricts the search to edges satisfying it and must be
// identified by a non-zero token; queries sharing the frontier must carry
// the same predicate token (see PredicateToken).
func NewForwardFrontier(g *graph.Graph, s graph.VertexID, bound int, pred EdgePredicate, tok PredicateToken) (*Frontier, error) {
	if err := checkFrontierArgs(g, s, bound, pred, tok); err != nil {
		return nil, err
	}
	f := &Frontier{ver: g.Version(), origin: s, bound: bound, forward: true, predTok: tok, hasPred: pred != nil, dist: make([]int32, g.NumVertices())}
	frontierBFS(f.dist, bound, s, func(v graph.VertexID, visit func(graph.VertexID)) {
		for _, w := range g.OutNeighbors(v) {
			if pred == nil || pred(v, w) {
				visit(w)
			}
		}
	})
	return f, nil
}

// NewBackwardFrontier is the mirrored construction: one bounded BFS from t
// along in-edges, valid for any query with target t and K <= bound.
func NewBackwardFrontier(g *graph.Graph, t graph.VertexID, bound int, pred EdgePredicate, tok PredicateToken) (*Frontier, error) {
	if err := checkFrontierArgs(g, t, bound, pred, tok); err != nil {
		return nil, err
	}
	f := &Frontier{ver: g.Version(), origin: t, bound: bound, forward: false, predTok: tok, hasPred: pred != nil, dist: make([]int32, g.NumVertices())}
	frontierBFS(f.dist, bound, t, func(v graph.VertexID, visit func(graph.VertexID)) {
		for _, w := range g.InNeighbors(v) {
			if pred == nil || pred(w, v) {
				visit(w)
			}
		}
	})
	return f, nil
}

func checkFrontierArgs(g *graph.Graph, origin graph.VertexID, bound int, pred EdgePredicate, tok PredicateToken) error {
	if origin < 0 || origin >= graph.VertexID(g.NumVertices()) {
		return fmt.Errorf("core: frontier origin %d out of range [0,%d)", origin, g.NumVertices())
	}
	if bound < 1 {
		return fmt.Errorf("core: frontier bound %d must be >= 1", bound)
	}
	if pred == nil && tok != PredicateNone {
		return fmt.Errorf("core: predicate token %d without a predicate", tok)
	}
	if pred != nil && tok == PredicateNone {
		return fmt.Errorf("core: frontier predicate needs a non-zero PredicateToken (opaque predicates cannot be shared)")
	}
	return nil
}

// frontierBFS is the direction-agnostic bounded BFS behind both frontier
// constructors: neighbors abstracts the edge direction.
func frontierBFS(dist []int32, bound int, origin graph.VertexID, neighbors func(v graph.VertexID, visit func(graph.VertexID))) {
	for i := range dist {
		dist[i] = distUnreachable
	}
	queue := make([]graph.VertexID, 0, 64)
	queue = append(queue, origin)
	dist[origin] = 0
	b32 := int32(bound)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		d := dist[v]
		if d >= b32 {
			break
		}
		neighbors(v, func(w graph.VertexID) {
			if dist[w] == distUnreachable {
				dist[w] = d + 1
				queue = append(queue, w)
			}
		})
	}
}

// Origin returns the endpoint the frontier was grown from.
func (f *Frontier) Origin() graph.VertexID { return f.origin }

// Bound returns the BFS depth bound; queries with K <= Bound may share it.
func (f *Frontier) Bound() int { return f.bound }

// IsForward reports the direction: true for distances *from* the origin
// along out-edges, false for distances *to* the origin along in-edges.
func (f *Frontier) IsForward() bool { return f.forward }

// PredToken returns the identity token of the predicate the frontier was
// built under (PredicateNone for an unfiltered frontier).
func (f *Frontier) PredToken() PredicateToken { return f.predTok }

// GraphVersion returns the (lineage, epoch) version of the graph the
// frontier was built on; it is the frontier's validity domain.
func (f *Frontier) GraphVersion() graph.Version { return f.ver }

// Epoch returns the graph epoch the frontier was built at.
func (f *Frontier) Epoch() uint64 { return f.ver.Epoch() }

// MemoryBytes reports the resident size of the labeling, the unit the
// frontier cache budgets by.
func (f *Frontier) MemoryBytes() int64 { return int64(len(f.dist)) * 4 }

// Dist returns the labeled distance of v, or -1 if v was not reached
// within the bound.
func (f *Frontier) Dist(v graph.VertexID) int32 { return f.dist[v] }

// compatible reports whether the frontier can serve query q on g for the
// given direction, with a descriptive error when it cannot. Version
// mismatches within one lineage surface graph.ErrStaleEpoch (match with
// errors.Is), the signal callers use to choose between rebuilding and
// failing; predicate identity is compared by token (see PredicateToken) —
// there is no reflection-based function comparison.
func (f *Frontier) compatible(g *graph.Graph, q Query, forward bool, pred EdgePredicate, tok PredicateToken) error {
	if err := f.ver.ValidFor(g.Version()); err != nil {
		return fmt.Errorf("core: frontier unusable: %w", err)
	}
	if f.forward != forward {
		return fmt.Errorf("core: frontier direction mismatch (forward=%v, need forward=%v)", f.forward, forward)
	}
	want := q.S
	if !forward {
		want = q.T
	}
	if f.origin != want {
		return fmt.Errorf("core: frontier origin %d does not match query endpoint %d", f.origin, want)
	}
	if q.K > f.bound {
		return fmt.Errorf("core: frontier bound %d too small for k=%d", f.bound, q.K)
	}
	if f.hasPred != (pred != nil) {
		return fmt.Errorf("core: frontier predicate mismatch (frontier has predicate: %v, query has predicate: %v)", f.hasPred, pred != nil)
	}
	if pred != nil && tok == PredicateNone {
		return fmt.Errorf("core: query predicate needs a non-zero PredicateToken to use a shared frontier")
	}
	if f.predTok != tok {
		return fmt.Errorf("core: frontier was built under a different edge predicate (token %d, query token %d)", f.predTok, tok)
	}
	return nil
}
