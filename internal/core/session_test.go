package core

import (
	"math/rand"
	"testing"

	"pathenum/internal/gen"
	"pathenum/internal/graph"
	"pathenum/internal/landmark"
)

// TestSessionMatchesRun: the buffer-reusing session produces the same
// results as the one-shot driver across a query stream.
func TestSessionMatchesRun(t *testing.T) {
	g := gen.BarabasiAlbert(200, 4, 5)
	sess := NewSession(g, nil)
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 40; trial++ {
		s := graph.VertexID(rng.Intn(200))
		tt := graph.VertexID(rng.Intn(200))
		if s == tt {
			continue
		}
		q := Query{S: s, T: tt, K: 2 + rng.Intn(4)}
		want, err := Run(g, q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got, err := sess.Run(q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got.Counters.Results != want.Counters.Results {
			t.Fatalf("trial %d %v: session %d, run %d",
				trial, q, got.Counters.Results, want.Counters.Results)
		}
		if got.IndexEdges != want.IndexEdges || got.IndexVertices != want.IndexVertices {
			t.Fatalf("trial %d %v: index stats differ", trial, q)
		}
	}
}

// TestSessionBitmapClean: after every run (including early-stopped ones),
// the shared visited bitmap must be fully cleared.
func TestSessionBitmapClean(t *testing.T) {
	g := gen.Layered(6, 4)
	sess := NewSession(g, nil)
	q := Query{S: 0, T: 1, K: 5}
	// Early stop mid-enumeration leaves path bits to sweep.
	if _, err := sess.Run(q, Options{Limit: 3, Method: MethodDFS}); err != nil {
		t.Fatal(err)
	}
	for v, set := range sess.ex.onPath {
		if set {
			t.Fatalf("onPath[%d] leaked after early stop", v)
		}
	}
	// Next query on the same session still answers correctly.
	res, err := sess.Run(q, Options{Method: MethodDFS})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Results != 1296 {
		t.Fatalf("post-stop run: %d results, want 1296", res.Counters.Results)
	}
}

// TestSessionWithOracle: session-level oracle short-circuits infeasible
// queries and agrees elsewhere.
func TestSessionWithOracle(t *testing.T) {
	n := 30
	var edges []graph.Edge
	for i := 0; i+1 < n; i++ {
		edges = append(edges, graph.Edge{From: int32(i), To: int32(i + 1)})
	}
	g, err := graph.NewGraph(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := landmark.Build(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	sess := NewSession(g, oracle)
	// Infeasible: dist = 29 > k.
	res, err := sess.Run(Query{S: 0, T: int32(n - 1), K: 5}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Results != 0 || !res.Completed {
		t.Fatalf("infeasible run: %+v", res)
	}
	// Feasible nearby query.
	res, err = sess.Run(Query{S: 0, T: 4, K: 5}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Results != 1 {
		t.Fatalf("line query: %d results, want 1", res.Counters.Results)
	}
}

func TestSessionValidation(t *testing.T) {
	g := gen.Cycle(5)
	sess := NewSession(g, nil)
	if _, err := sess.Run(Query{S: 1, T: 1, K: 3}, Options{}); err == nil {
		t.Fatal("s == t: expected error")
	}
	if sess.Graph() != g {
		t.Fatal("Graph accessor mismatch")
	}
}

// TestSessionJoinMethod: the join path also works through a session.
func TestSessionJoinMethod(t *testing.T) {
	g := gen.Layered(4, 3)
	sess := NewSession(g, nil)
	res, err := sess.Run(Query{S: 0, T: 1, K: 4}, Options{Method: MethodJoin})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Results != 64 {
		t.Fatalf("join via session: %d results, want 64", res.Counters.Results)
	}
}

// BenchmarkSessionVsRun quantifies the allocation savings of buffer reuse.
func BenchmarkSessionVsRun(b *testing.B) {
	g := gen.BarabasiAlbert(5000, 6, 77)
	q := Query{S: 0, T: 9, K: 4}
	b.Run("Run", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := Run(g, q, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Session", func(b *testing.B) {
		sess := NewSession(g, nil)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sess.Run(q, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
