package core

import (
	"context"
	"math/rand"
	"testing"

	"pathenum/internal/gen"
	"pathenum/internal/graph"
)

// TestParallelDFSMatchesSequential: the sharded DFS delivers the same
// path set and, on completed runs, identical Counters at every fan-out
// level — including levels far above the root count (forced fallback).
func TestParallelDFSMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	trials := 0
	for trials < 25 {
		n := 8 + rng.Intn(30)
		g := gen.BarabasiAlbert(n, 3, rng.Int63())
		q := Query{S: graph.VertexID(rng.Intn(n)), T: graph.VertexID(rng.Intn(n)), K: 2 + rng.Intn(4)}
		if q.S == q.T {
			continue
		}
		trials++
		ix, err := BuildIndex(g, q)
		if err != nil {
			t.Fatal(err)
		}
		var seq Counters
		var seqPaths [][]graph.VertexID
		EnumerateDFS(ix, RunControl{Emit: func(p []graph.VertexID) bool {
			seqPaths = append(seqPaths, append([]graph.VertexID(nil), p...))
			return true
		}}, &seq)
		seqKeys := sortedKeys(seqPaths)
		for _, par := range []int{2, 3, 8, 64} {
			var ctr Counters
			var paths [][]graph.VertexID
			done := EnumerateDFSParallel(ix, par, RunControl{Emit: func(p []graph.VertexID) bool {
				paths = append(paths, p) // owned-emission contract
				return true
			}}, &ctr)
			if !done {
				t.Fatalf("parallel(%d) DFS not completed (q=%v)", par, q)
			}
			if ctr != seq {
				t.Fatalf("parallel(%d) DFS counters %+v, sequential %+v (q=%v)", par, ctr, seq, q)
			}
			if !sameKeySets(sortedKeys(paths), seqKeys) {
				t.Fatalf("parallel(%d) DFS path set diverges (q=%v)", par, q)
			}
		}
	}
}

// TestParallelJoinMatchesSequential: the sharded join agrees with the
// sequential join on paths, Results and the partition-invariant JoinStats
// (BuildTuples, ProbeWalks) for every cut, both build sides.
func TestParallelJoinMatchesSequential(t *testing.T) {
	g, q := layeredGraph(t, 4, 4)
	ix, err := BuildIndex(g, q)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < q.K; cut++ {
		for _, side := range []BuildSide{BuildLeft, BuildRight} {
			var seq Counters
			var seqStats JoinStats
			var seqPaths [][]graph.VertexID
			if _, err := EnumerateJoinSide(ix, cut, side, RunControl{Emit: func(p []graph.VertexID) bool {
				seqPaths = append(seqPaths, append([]graph.VertexID(nil), p...))
				return true
			}}, &seq, &seqStats); err != nil {
				t.Fatal(err)
			}
			seqKeys := sortedKeys(seqPaths)
			for _, par := range []int{2, 4} {
				var ctr Counters
				var stats JoinStats
				var paths [][]graph.VertexID
				done, err := EnumerateJoinSideParallel(ix, cut, side, par, RunControl{Emit: func(p []graph.VertexID) bool {
					paths = append(paths, p)
					return true
				}}, &ctr, &stats)
				if err != nil {
					t.Fatal(err)
				}
				if !done {
					t.Fatalf("parallel(%d) join(cut=%d,%v) not completed", par, cut, side)
				}
				if ctr != seq {
					t.Fatalf("parallel(%d) join(cut=%d,%v) counters %+v, sequential %+v", par, cut, side, ctr, seq)
				}
				if !sameKeySets(sortedKeys(paths), seqKeys) {
					t.Fatalf("parallel(%d) join(cut=%d,%v) path set diverges", par, cut, side)
				}
				if stats.BuildTuples != seqStats.BuildTuples || stats.ProbeWalks != seqStats.ProbeWalks {
					t.Fatalf("parallel(%d) join(cut=%d,%v) stats %+v, sequential %+v", par, cut, side, stats, seqStats)
				}
				if stats.BuildLeft != seqStats.BuildLeft || stats.LeftTuples != seqStats.LeftTuples || stats.RightTuples != seqStats.RightTuples {
					t.Fatalf("parallel(%d) join(cut=%d,%v) tuple stats %+v, sequential %+v", par, cut, side, stats, seqStats)
				}
			}
		}
	}
}

// TestParallelJoinStatsAggregatedOnce pins the aggregation contract of
// fillParallelJoinStats: the shared build side is counted exactly once —
// never once per shard — and each shard's probe-local footprint is summed
// exactly once, including when the run stops early at the merge-enforced
// limit. A double-counting regression (each shard folding the shared
// tuples into PartialBytes) would roughly multiply the build component by
// the shard count; the equality below would catch it.
func TestParallelJoinStatsAggregatedOnce(t *testing.T) {
	g, q := layeredGraph(t, 4, 4)
	ix, err := BuildIndex(g, q)
	if err != nil {
		t.Fatal(err)
	}
	const cut = 2
	const par = 2 // layer width 4 distinct cut vertices -> exactly 2 shards
	probeLen := q.K - cut + 1

	var seqStats JoinStats
	if _, err := EnumerateJoinSide(ix, cut, BuildLeft, RunControl{}, nil, &seqStats); err != nil {
		t.Fatal(err)
	}
	// The sequential footprint is build bytes plus one in-flight probe
	// buffer; peeling that buffer off isolates the build component.
	buildBytes := seqStats.PartialBytes - int64(probeLen)*4

	// Completed parallel run: build once + one probe buffer per shard.
	var stats JoinStats
	if _, err := EnumerateJoinSideParallel(ix, cut, BuildLeft, par, RunControl{}, nil, &stats); err != nil {
		t.Fatal(err)
	}
	wantBytes := buildBytes + int64(par*probeLen)*4
	if stats.PartialBytes != wantBytes {
		t.Fatalf("completed run: PartialBytes = %d, want %d (build %d once + %d probe buffers)", stats.PartialBytes, wantBytes, buildBytes, par)
	}
	if stats.ProbeWalks != seqStats.ProbeWalks {
		t.Fatalf("completed run: ProbeWalks = %d, sequential %d", stats.ProbeWalks, seqStats.ProbeWalks)
	}

	// Early-stopped parallel run (merge-enforced limit): the build side
	// still appears exactly once and shard walks sum without double count.
	var got int
	var stopped JoinStats
	done, err := EnumerateJoinSideParallel(ix, cut, BuildLeft, par, RunControl{
		Emit:  func([]graph.VertexID) bool { got++; return true },
		Limit: 3,
	}, nil, &stopped)
	if err != nil {
		t.Fatal(err)
	}
	if done || got != 3 {
		t.Fatalf("limited run: done=%v delivered=%d, want stopped after 3", done, got)
	}
	if stopped.BuildTuples != seqStats.BuildTuples {
		t.Fatalf("limited run: BuildTuples = %d, want %d (build counted once)", stopped.BuildTuples, seqStats.BuildTuples)
	}
	if stopped.PartialBytes != wantBytes {
		t.Fatalf("limited run: PartialBytes = %d, want %d", stopped.PartialBytes, wantBytes)
	}
	if stopped.ProbeWalks < 1 || stopped.ProbeWalks > seqStats.ProbeWalks {
		t.Fatalf("limited run: ProbeWalks = %d, want within [1,%d]", stopped.ProbeWalks, seqStats.ProbeWalks)
	}
}

// TestParallelLimitAtMergePoint: Limit means n results total across all
// shards — exact in both delivery mode (Emit set) and counting mode
// (Emit nil), never limit-per-shard and never limit+shards-1.
func TestParallelLimitAtMergePoint(t *testing.T) {
	g, q := layeredGraph(t, 5, 4) // 625 paths
	ix, err := BuildIndex(g, q)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 4, 8} {
		var got int
		var ctr Counters
		done := EnumerateDFSParallel(ix, par, RunControl{
			Emit:  func([]graph.VertexID) bool { got++; return true },
			Limit: 7,
		}, &ctr)
		if done || got != 7 || ctr.Results != 7 {
			t.Fatalf("parallel(%d) delivery mode: done=%v got=%d results=%d, want exactly 7", par, done, got, ctr.Results)
		}
		var cctr Counters
		done = EnumerateDFSParallel(ix, par, RunControl{Limit: 7}, &cctr)
		if done || cctr.Results != 7 {
			t.Fatalf("parallel(%d) counting mode: done=%v results=%d, want exactly 7", par, done, cctr.Results)
		}
	}
	// Counting mode without a limit free-runs and sums shard results.
	var free Counters
	if done := EnumerateDFSParallel(ix, 4, RunControl{}, &free); !done || free.Results != 625 {
		t.Fatalf("free-running count: done=%v results=%d, want 625", done, free.Results)
	}
}

// TestParallelStreamCancel: cancelling the consumer's context mid-stream
// ends a parallel stream early without an error, with OnResult reporting
// Completed == false — the sequential stream's cancellation contract.
func TestParallelStreamCancel(t *testing.T) {
	g, q := layeredGraph(t, 6, 6) // ~46k paths
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var res *Result
	got := 0
	for _, err := range NewSession(g, nil).StreamWith(ctx, q, Options{Parallelism: 4}, StreamConfig{
		OnResult: func(r *Result) { res = r },
	}) {
		if err != nil {
			t.Fatal(err)
		}
		got++
		if got == 10 {
			cancel()
		}
	}
	if got >= 46656 {
		t.Fatalf("cancelled stream delivered the full result set (%d paths)", got)
	}
	if res == nil || res.Completed {
		t.Fatalf("cancelled stream result %+v, want Completed=false", res)
	}
}

// TestParallelFallbackSingleRoot: when s has a single first hop there is
// nothing to fan out; the parallel entry point must fall back without
// perturbing counters (in particular, not double-counting the root scan)
// while still honoring the owned-emission contract.
func TestParallelFallbackSingleRoot(t *testing.T) {
	// s -> a -> {b,c} -> t: one root, 2 paths of length 3.
	g, err := graph.NewGraph(5, []graph.Edge{
		{From: 0, To: 1}, {From: 1, To: 2}, {From: 1, To: 3}, {From: 2, To: 4}, {From: 3, To: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{S: 0, T: 4, K: 3}
	ix, err := BuildIndex(g, q)
	if err != nil {
		t.Fatal(err)
	}
	var seq Counters
	EnumerateDFS(ix, RunControl{}, &seq)
	var ctr Counters
	var paths [][]graph.VertexID
	if done := EnumerateDFSParallel(ix, 4, RunControl{Emit: func(p []graph.VertexID) bool {
		paths = append(paths, p) // must stay valid: fallback wraps Emit with a copy
		return true
	}}, &ctr); !done {
		t.Fatal("fallback run not completed")
	}
	if ctr != seq {
		t.Fatalf("fallback counters %+v, sequential %+v", ctr, seq)
	}
	want := sortedKeys([][]graph.VertexID{{0, 1, 2, 4}, {0, 1, 3, 4}})
	if !sameKeySets(sortedKeys(paths), want) {
		t.Fatalf("fallback paths %v, want %v", paths, want)
	}
}
