// Package mem provides the engine's byte-budget accountant: one shared
// pool of bytes that every allocation class — frontier-cache entries,
// per-session scratch, join build sides — charges against, so resident
// memory is bounded by configuration instead of by traffic shape.
//
// The budget is a passive ledger, not an allocator: subsystems reserve
// before materializing and release when they let go, and a failed
// reservation means "degrade gracefully" (the cache refuses the deposit,
// the join falls back to the pinned-equal DFS plan) rather than "error".
// A nil *Budget is the unlimited ledger: every method is safe on it,
// reservations always succeed and nothing is counted, so unbudgeted
// engines pay no atomics on the hot path beyond a nil check.
package mem

import (
	"math"
	"sync/atomic"
)

// Class partitions the budget's usage accounting by subsystem, feeding
// the pathenum_mem_{cache,scratch,build}_bytes gauges. Classes share the
// single limit — they are reporting dimensions, not sub-budgets.
type Class int

const (
	// ClassCache is frontier-cache resident labelings.
	ClassCache Class = iota
	// ClassScratch is pooled per-session O(|V|) scratch (BFS labelings,
	// position map, visited bitmap, join validation epochs).
	ClassScratch
	// ClassBuild is join build sides admitted against the estimator's
	// predicted footprint for the duration of their run.
	ClassBuild
	numClasses
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case ClassCache:
		return "cache"
	case ClassScratch:
		return "scratch"
	case ClassBuild:
		return "build"
	default:
		return "unknown"
	}
}

// Budget is a concurrency-safe byte ledger with a hard limit. Create one
// with New; the zero value behaves like an unlimited budget with a zero
// limit and is not intended for use — prefer a nil *Budget for "no
// budget", which all methods accept.
type Budget struct {
	limit int64
	used  atomic.Int64
	class [numClasses]atomic.Int64
}

// New creates a budget limited to limit bytes. A non-positive limit
// returns nil — the unlimited budget every method accepts.
func New(limit int64) *Budget {
	if limit <= 0 {
		return nil
	}
	return &Budget{limit: limit}
}

// Limit returns the byte limit (0 for the nil/unlimited budget).
func (b *Budget) Limit() int64 {
	if b == nil {
		return 0
	}
	return b.limit
}

// Used returns the bytes currently reserved across all classes.
func (b *Budget) Used() int64 {
	if b == nil {
		return 0
	}
	return b.used.Load()
}

// ClassBytes returns the bytes currently reserved under c.
func (b *Budget) ClassBytes(c Class) int64 {
	if b == nil || c < 0 || c >= numClasses {
		return 0
	}
	return b.class[c].Load()
}

// Remaining returns the unreserved headroom (MaxInt64 when unlimited).
// Must-reservations can push usage past the limit, in which case
// Remaining is 0, never negative.
func (b *Budget) Remaining() int64 {
	if b == nil {
		return math.MaxInt64
	}
	if r := b.limit - b.used.Load(); r > 0 {
		return r
	}
	return 0
}

// TryReserve charges n bytes to class c if the limit allows, reporting
// whether the reservation was made. Non-positive n succeeds without
// charging. The caller owns a successful reservation and must Release
// the same amount when the bytes are freed.
func (b *Budget) TryReserve(c Class, n int64) bool {
	if b == nil || n <= 0 {
		return true
	}
	for {
		used := b.used.Load()
		if used+n > b.limit || used+n < used {
			return false
		}
		if b.used.CompareAndSwap(used, used+n) {
			b.class[c].Add(n)
			return true
		}
	}
}

// Must charges n bytes to class c unconditionally — for allocations the
// engine cannot decline, like the per-worker session scratch that must
// exist to serve any query at all. Usage may exceed the limit afterwards;
// the engine keeps that from happening in practice by flooring the
// configured limit at the scratch requirement.
func (b *Budget) Must(c Class, n int64) {
	if b == nil || n <= 0 {
		return
	}
	b.used.Add(n)
	b.class[c].Add(n)
}

// Release returns n bytes previously charged to class c.
func (b *Budget) Release(c Class, n int64) {
	if b == nil || n <= 0 {
		return
	}
	b.used.Add(-n)
	b.class[c].Add(-n)
}
