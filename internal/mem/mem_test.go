package mem

import (
	"math"
	"sync"
	"testing"
)

func TestNilBudgetIsUnlimited(t *testing.T) {
	var b *Budget
	if !b.TryReserve(ClassCache, 1<<40) {
		t.Fatal("nil budget refused a reservation")
	}
	b.Must(ClassScratch, 123)
	b.Release(ClassBuild, 456)
	if b.Used() != 0 || b.Limit() != 0 || b.ClassBytes(ClassCache) != 0 {
		t.Fatal("nil budget counted something")
	}
	if b.Remaining() != math.MaxInt64 {
		t.Fatalf("nil Remaining = %d", b.Remaining())
	}
}

func TestNewNonPositiveIsNil(t *testing.T) {
	if New(0) != nil || New(-5) != nil {
		t.Fatal("non-positive limit should return the nil (unlimited) budget")
	}
}

func TestReserveReleaseAccounting(t *testing.T) {
	b := New(100)
	if !b.TryReserve(ClassCache, 60) {
		t.Fatal("60/100 refused")
	}
	if b.TryReserve(ClassBuild, 50) {
		t.Fatal("110/100 admitted")
	}
	if !b.TryReserve(ClassBuild, 40) {
		t.Fatal("100/100 refused")
	}
	if got := b.Used(); got != 100 {
		t.Fatalf("Used = %d, want 100", got)
	}
	if b.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0", b.Remaining())
	}
	b.Release(ClassCache, 60)
	if b.ClassBytes(ClassCache) != 0 || b.ClassBytes(ClassBuild) != 40 {
		t.Fatalf("class bytes cache=%d build=%d", b.ClassBytes(ClassCache), b.ClassBytes(ClassBuild))
	}
	if b.Remaining() != 60 {
		t.Fatalf("Remaining = %d, want 60", b.Remaining())
	}
}

func TestMustExceedsLimit(t *testing.T) {
	b := New(10)
	b.Must(ClassScratch, 25)
	if b.Used() != 25 {
		t.Fatalf("Used = %d, want 25", b.Used())
	}
	if b.Remaining() != 0 {
		t.Fatalf("Remaining = %d, want 0 (clamped)", b.Remaining())
	}
	if b.TryReserve(ClassCache, 1) {
		t.Fatal("reservation admitted while over limit")
	}
}

// TestBudgetConcurrent hammers reserve/release from many goroutines and
// checks the ledger balances and never over-admits.
func TestBudgetConcurrent(t *testing.T) {
	const limit = 1000
	b := New(limit)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if b.TryReserve(ClassBuild, 7) {
					if u := b.Used(); u > limit {
						t.Errorf("used %d exceeds limit", u)
					}
					b.Release(ClassBuild, 7)
				}
			}
		}()
	}
	wg.Wait()
	if b.Used() != 0 || b.ClassBytes(ClassBuild) != 0 {
		t.Fatalf("ledger unbalanced: used=%d build=%d", b.Used(), b.ClassBytes(ClassBuild))
	}
}
