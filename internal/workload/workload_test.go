package workload

import (
	"errors"
	"testing"

	"pathenum/internal/gen"
	"pathenum/internal/graph"
)

func lineGraph(t *testing.T, n int) *graph.Graph {
	t.Helper()
	var edges []graph.Edge
	for i := 0; i+1 < n; i++ {
		edges = append(edges, graph.Edge{From: int32(i), To: int32(i + 1)})
	}
	g, err := graph.NewGraph(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func bfsDist(g *graph.Graph, s, t graph.VertexID) int {
	if s == t {
		return 0
	}
	dist := make([]int, g.NumVertices())
	for i := range dist {
		dist[i] = -1
	}
	dist[s] = 0
	queue := []graph.VertexID{s}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, w := range g.OutNeighbors(v) {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				if w == t {
					return dist[w]
				}
				queue = append(queue, w)
			}
		}
	}
	return -1
}

func TestSplitSizes(t *testing.T) {
	g := gen.BarabasiAlbert(200, 4, 1)
	high, low := Split(g, 0.10)
	if len(high) != 20 {
		t.Fatalf("|V'| = %d, want 20", len(high))
	}
	if len(high)+len(low) != 200 {
		t.Fatalf("split loses vertices: %d + %d", len(high), len(low))
	}
	// Every high vertex has degree >= every low vertex.
	minHigh := 1 << 30
	for _, v := range high {
		if d := g.Degree(v); d < minHigh {
			minHigh = d
		}
	}
	for _, v := range low {
		if g.Degree(v) > minHigh {
			t.Fatalf("low vertex %d has degree %d > min high degree %d", v, g.Degree(v), minHigh)
		}
	}
}

func TestSplitAtLeastOneHigh(t *testing.T) {
	g := lineGraph(t, 5)
	high, _ := Split(g, 0.001)
	if len(high) != 1 {
		t.Fatalf("|V'| = %d, want 1 (floor)", len(high))
	}
}

func TestGenerateRespectsDistanceBound(t *testing.T) {
	g := gen.BarabasiAlbert(300, 5, 2)
	qs, err := Generate(g, Options{Setting: HighHigh, Count: 50, MaxDist: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 50 {
		t.Fatalf("got %d queries", len(qs))
	}
	for _, q := range qs {
		if q.S == q.T {
			t.Fatalf("query with s == t: %v", q)
		}
		d := bfsDist(g, q.S, q.T)
		if d < 0 || d > 3 {
			t.Fatalf("query %v has dist %d, want <= 3", q, d)
		}
	}
}

func TestGenerateSettingsUsePools(t *testing.T) {
	g := gen.BarabasiAlbert(300, 5, 3)
	high, _ := Split(g, 0.10)
	inHigh := make(map[graph.VertexID]bool, len(high))
	for _, v := range high {
		inHigh[v] = true
	}
	cases := []struct {
		setting      Setting
		sHigh, tHigh bool
	}{
		{HighHigh, true, true},
		{HighLow, true, false},
		{LowHigh, false, true},
		{LowLow, false, false},
	}
	for _, tc := range cases {
		qs, err := Generate(g, Options{Setting: tc.setting, Count: 10, Seed: 11})
		if err != nil {
			t.Fatalf("%v: %v", tc.setting, err)
		}
		for _, q := range qs {
			if inHigh[q.S] != tc.sHigh {
				t.Fatalf("%v: s=%d in V'=%v, want %v", tc.setting, q.S, inHigh[q.S], tc.sHigh)
			}
			if inHigh[q.T] != tc.tHigh {
				t.Fatalf("%v: t=%d in V'=%v, want %v", tc.setting, q.T, inHigh[q.T], tc.tHigh)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g := gen.BarabasiAlbert(200, 4, 4)
	a, err := Generate(g, Options{Setting: HighHigh, Count: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(g, Options{Setting: HighHigh, Count: 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("query %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestGenerateUnreachable(t *testing.T) {
	// Two disconnected cliques: HighLow queries across them cannot satisfy
	// the distance bound if pools split across components... use a graph
	// with no edges at all so no pair is within distance 3.
	g, err := graph.NewGraph(20, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Generate(g, Options{Setting: LowLow, Count: 5, Seed: 1, MaxTries: 500})
	if !errors.Is(err, ErrNoQueries) {
		t.Fatalf("err = %v, want ErrNoQueries", err)
	}
}

func TestGenerateValidation(t *testing.T) {
	g := lineGraph(t, 10)
	if _, err := Generate(g, Options{Count: 0}); err == nil {
		t.Error("Count=0: expected error")
	}
	if _, err := Generate(g, Options{Count: 1, Setting: Setting(99)}); err == nil {
		t.Error("bad setting: expected error")
	}
	tiny := lineGraph(t, 1)
	if _, err := Generate(tiny, Options{Count: 1}); err == nil {
		t.Error("tiny graph: expected error")
	}
}

func TestSettingString(t *testing.T) {
	for _, tc := range []struct {
		s    Setting
		want string
	}{
		{HighHigh, "V'xV'"}, {HighLow, "V'xV''"}, {LowHigh, "V''xV'"}, {LowLow, "V''xV''"}, {Setting(9), "Setting(9)"},
	} {
		if got := tc.s.String(); got != tc.want {
			t.Errorf("%d.String() = %q, want %q", int(tc.s), got, tc.want)
		}
	}
}

func TestBoundedBFSAgainstReference(t *testing.T) {
	g := gen.ErdosRenyi(100, 300, 9)
	b := newBoundedBFS(g)
	for s := int32(0); s < 20; s++ {
		for tt := int32(0); tt < 20; tt++ {
			want := bfsDist(g, s, tt)
			for _, bound := range []int{1, 2, 3, 5} {
				got := b.within(s, tt, bound)
				wantWithin := want >= 0 && want <= bound
				if got != wantWithin {
					t.Fatalf("within(%d,%d,%d) = %v, want %v (dist %d)", s, tt, bound, got, wantWithin, want)
				}
			}
		}
	}
}
