package workload

import (
	"fmt"
	"math/rand"

	"pathenum/internal/graph"
)

// BatchQuery is one query of a generated batch set; unlike Query it
// carries its hop constraint, since batch files are consumed directly by
// the batch subsystem rather than swept over k.
type BatchQuery struct {
	S, T graph.VertexID
	K    int
}

// BatchOptions configures shared-endpoint batch generation — the workload
// the shared-computation batch subsystem (internal/batch) exists for:
// clusters of queries with a common source or target, optionally salted
// with exact duplicates.
type BatchOptions struct {
	// Count is the total number of queries (duplicates included).
	Count int
	// K is the hop constraint assigned to every query.
	K int
	// GroupSize is the number of queries per shared-endpoint cluster
	// (default 8). The last cluster may be short.
	GroupSize int
	// SharedTargetFrac is the fraction of clusters sharing a target
	// instead of a source (default 0.5).
	SharedTargetFrac float64
	// DupFrac replaces this fraction of the batch with exact duplicates
	// of earlier queries (default 0 = none), exercising the planner's
	// dedup path.
	DupFrac float64
	// MaxDist bounds dist(hub, partner) so queries are non-trivial,
	// following §7.1 (default 3).
	MaxDist int
	// TwoSided switches to hub-to-hub generation: a grid of GroupSize
	// source hubs crossed with enough target hubs to reach Count, so every
	// query shares its source with one cluster AND its target with
	// another. This is the workload the two-sided planner exists for —
	// Count queries touch only GroupSize + Count/GroupSize distinct
	// endpoints.
	TwoSided bool
	// TopFrac selects the high-degree hub pool as in Split (default 0.10).
	TopFrac float64
	// Seed drives sampling.
	Seed int64
	// MaxTries bounds sampling attempts (default 200*Count).
	MaxTries int
}

// GenerateBatch samples a shared-endpoint query batch per opts. Hubs are
// drawn from the high-degree set V' (their BFS frontiers are the expensive
// ones worth sharing); partners are arbitrary vertices within MaxDist of
// the hub in the query direction. Every returned query is valid (s != t)
// and feasible (dist(s,t) <= MaxDist <= K when MaxDist <= K).
func GenerateBatch(g *graph.Graph, opts BatchOptions) ([]BatchQuery, error) {
	if opts.Count <= 0 {
		return nil, fmt.Errorf("workload: non-positive batch count %d", opts.Count)
	}
	if opts.K < 1 {
		return nil, fmt.Errorf("workload: batch k %d must be >= 1", opts.K)
	}
	if g.NumVertices() < 2 {
		return nil, fmt.Errorf("workload: graph too small (%d vertices)", g.NumVertices())
	}
	if opts.GroupSize <= 0 {
		opts.GroupSize = 8
	}
	if opts.SharedTargetFrac < 0 || opts.SharedTargetFrac > 1 {
		return nil, fmt.Errorf("workload: SharedTargetFrac %v out of [0,1]", opts.SharedTargetFrac)
	}
	if opts.DupFrac < 0 || opts.DupFrac >= 1 {
		if opts.DupFrac != 0 {
			return nil, fmt.Errorf("workload: DupFrac %v out of [0,1)", opts.DupFrac)
		}
	}
	if opts.MaxDist <= 0 {
		opts.MaxDist = 3
	}
	if opts.TopFrac <= 0 || opts.TopFrac >= 1 {
		opts.TopFrac = 0.10
	}
	if opts.MaxTries <= 0 {
		opts.MaxTries = 200 * opts.Count
	}

	hubs, _ := Split(g, opts.TopFrac)
	rng := rand.New(rand.NewSource(opts.Seed))
	dist := newBoundedBFS(g)
	n := g.NumVertices()

	fresh := opts.Count - int(opts.DupFrac*float64(opts.Count))
	if opts.TwoSided {
		return generateTwoSided(g, opts, hubs, rng, dist, fresh)
	}
	queries := make([]BatchQuery, 0, opts.Count)
	tries := 0
	for len(queries) < fresh && tries < opts.MaxTries {
		hub := hubs[rng.Intn(len(hubs))]
		sharedTarget := rng.Float64() < opts.SharedTargetFrac
		// One cluster: GroupSize distinct partners of the hub.
		seen := map[graph.VertexID]bool{hub: true}
		for got := 0; got < opts.GroupSize && len(queries) < fresh && tries < opts.MaxTries; tries++ {
			partner := graph.VertexID(rng.Intn(n))
			if seen[partner] {
				continue
			}
			var q BatchQuery
			if sharedTarget {
				// partner -> hub: the cluster shares its target.
				if !dist.within(partner, hub, opts.MaxDist) {
					continue
				}
				q = BatchQuery{S: partner, T: hub, K: opts.K}
			} else {
				if !dist.within(hub, partner, opts.MaxDist) {
					continue
				}
				q = BatchQuery{S: hub, T: partner, K: opts.K}
			}
			seen[partner] = true
			queries = append(queries, q)
			got++
		}
	}
	if len(queries) < fresh {
		return queries, fmt.Errorf("%w: got %d of %d", ErrNoQueries, len(queries), fresh)
	}
	// Salt with exact duplicates of earlier queries.
	for len(queries) < opts.Count {
		queries = append(queries, queries[rng.Intn(len(queries))])
	}
	return queries, nil
}

// generateTwoSided emits a hub-to-hub grid: GroupSize distinct source
// hubs crossed with ceil(fresh/GroupSize) distinct target hubs, each
// target reachable within MaxDist from every chosen source. Queries are
// emitted row-major (source-major) and truncated to fresh, then salted
// with duplicates like the one-sided path. The resulting batch has every
// query in both a shared-source and a shared-target cluster, which is
// the worst case for one-sided grouping and the reason the planner's
// bipartite pass exists.
func generateTwoSided(g *graph.Graph, opts BatchOptions, hubs []graph.VertexID, rng *rand.Rand, dist *boundedBFS, fresh int) ([]BatchQuery, error) {
	nSrc := opts.GroupSize
	if nSrc > fresh {
		nSrc = fresh
	}
	nTgt := (fresh + nSrc - 1) / nSrc
	if len(hubs) < nSrc+nTgt {
		return nil, fmt.Errorf("workload: hub pool %d too small for a %dx%d two-sided grid", len(hubs), nSrc, nTgt)
	}

	tries := 0
	srcs := make([]graph.VertexID, 0, nSrc)
	taken := make(map[graph.VertexID]bool)
	for len(srcs) < nSrc && tries < opts.MaxTries {
		tries++
		h := hubs[rng.Intn(len(hubs))]
		if taken[h] {
			continue
		}
		taken[h] = true
		srcs = append(srcs, h)
	}
	tgts := make([]graph.VertexID, 0, nTgt)
	for len(tgts) < nTgt && tries < opts.MaxTries {
		tries++
		h := hubs[rng.Intn(len(hubs))]
		if taken[h] {
			continue
		}
		ok := true
		for _, s := range srcs {
			if !dist.within(s, h, opts.MaxDist) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		taken[h] = true
		tgts = append(tgts, h)
	}
	if len(srcs) < nSrc || len(tgts) < nTgt {
		return nil, fmt.Errorf("%w: two-sided grid %dx%d incomplete (%d sources, %d targets)",
			ErrNoQueries, nSrc, nTgt, len(srcs), len(tgts))
	}

	queries := make([]BatchQuery, 0, opts.Count)
	for _, s := range srcs {
		for _, t := range tgts {
			if len(queries) == fresh {
				break
			}
			queries = append(queries, BatchQuery{S: s, T: t, K: opts.K})
		}
	}
	for len(queries) < opts.Count {
		queries = append(queries, queries[rng.Intn(len(queries))])
	}
	return queries, nil
}
