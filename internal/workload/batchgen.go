package workload

import (
	"fmt"
	"math/rand"

	"pathenum/internal/graph"
)

// BatchQuery is one query of a generated batch set; unlike Query it
// carries its hop constraint, since batch files are consumed directly by
// the batch subsystem rather than swept over k.
type BatchQuery struct {
	S, T graph.VertexID
	K    int
}

// BatchOptions configures shared-endpoint batch generation — the workload
// the shared-computation batch subsystem (internal/batch) exists for:
// clusters of queries with a common source or target, optionally salted
// with exact duplicates.
type BatchOptions struct {
	// Count is the total number of queries (duplicates included).
	Count int
	// K is the hop constraint assigned to every query.
	K int
	// GroupSize is the number of queries per shared-endpoint cluster
	// (default 8). The last cluster may be short.
	GroupSize int
	// SharedTargetFrac is the fraction of clusters sharing a target
	// instead of a source (default 0.5).
	SharedTargetFrac float64
	// DupFrac replaces this fraction of the batch with exact duplicates
	// of earlier queries (default 0 = none), exercising the planner's
	// dedup path.
	DupFrac float64
	// MaxDist bounds dist(hub, partner) so queries are non-trivial,
	// following §7.1 (default 3).
	MaxDist int
	// TopFrac selects the high-degree hub pool as in Split (default 0.10).
	TopFrac float64
	// Seed drives sampling.
	Seed int64
	// MaxTries bounds sampling attempts (default 200*Count).
	MaxTries int
}

// GenerateBatch samples a shared-endpoint query batch per opts. Hubs are
// drawn from the high-degree set V' (their BFS frontiers are the expensive
// ones worth sharing); partners are arbitrary vertices within MaxDist of
// the hub in the query direction. Every returned query is valid (s != t)
// and feasible (dist(s,t) <= MaxDist <= K when MaxDist <= K).
func GenerateBatch(g *graph.Graph, opts BatchOptions) ([]BatchQuery, error) {
	if opts.Count <= 0 {
		return nil, fmt.Errorf("workload: non-positive batch count %d", opts.Count)
	}
	if opts.K < 1 {
		return nil, fmt.Errorf("workload: batch k %d must be >= 1", opts.K)
	}
	if g.NumVertices() < 2 {
		return nil, fmt.Errorf("workload: graph too small (%d vertices)", g.NumVertices())
	}
	if opts.GroupSize <= 0 {
		opts.GroupSize = 8
	}
	if opts.SharedTargetFrac < 0 || opts.SharedTargetFrac > 1 {
		return nil, fmt.Errorf("workload: SharedTargetFrac %v out of [0,1]", opts.SharedTargetFrac)
	}
	if opts.DupFrac < 0 || opts.DupFrac >= 1 {
		if opts.DupFrac != 0 {
			return nil, fmt.Errorf("workload: DupFrac %v out of [0,1)", opts.DupFrac)
		}
	}
	if opts.MaxDist <= 0 {
		opts.MaxDist = 3
	}
	if opts.TopFrac <= 0 || opts.TopFrac >= 1 {
		opts.TopFrac = 0.10
	}
	if opts.MaxTries <= 0 {
		opts.MaxTries = 200 * opts.Count
	}

	hubs, _ := Split(g, opts.TopFrac)
	rng := rand.New(rand.NewSource(opts.Seed))
	dist := newBoundedBFS(g)
	n := g.NumVertices()

	fresh := opts.Count - int(opts.DupFrac*float64(opts.Count))
	queries := make([]BatchQuery, 0, opts.Count)
	tries := 0
	for len(queries) < fresh && tries < opts.MaxTries {
		hub := hubs[rng.Intn(len(hubs))]
		sharedTarget := rng.Float64() < opts.SharedTargetFrac
		// One cluster: GroupSize distinct partners of the hub.
		seen := map[graph.VertexID]bool{hub: true}
		for got := 0; got < opts.GroupSize && len(queries) < fresh && tries < opts.MaxTries; tries++ {
			partner := graph.VertexID(rng.Intn(n))
			if seen[partner] {
				continue
			}
			var q BatchQuery
			if sharedTarget {
				// partner -> hub: the cluster shares its target.
				if !dist.within(partner, hub, opts.MaxDist) {
					continue
				}
				q = BatchQuery{S: partner, T: hub, K: opts.K}
			} else {
				if !dist.within(hub, partner, opts.MaxDist) {
					continue
				}
				q = BatchQuery{S: hub, T: partner, K: opts.K}
			}
			seen[partner] = true
			queries = append(queries, q)
			got++
		}
	}
	if len(queries) < fresh {
		return queries, fmt.Errorf("%w: got %d of %d", ErrNoQueries, len(queries), fresh)
	}
	// Salt with exact duplicates of earlier queries.
	for len(queries) < opts.Count {
		queries = append(queries, queries[rng.Intn(len(queries))])
	}
	return queries, nil
}
