package workload

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// MixClass is one weighted request class of a load mix.
type MixClass struct {
	Name   string
	Weight float64
}

// Mix is a weighted set of request classes sampled by inverse-CDF
// lookup: Pick(u) maps a uniform u in [0,1) to a class name with
// probability proportional to its weight. Weights need not sum to 1 —
// "query=60,stream=25,batch=10,insert=5" and "query=12,stream=5,..."
// describe the same distribution.
type Mix struct {
	classes []MixClass
	cdf     []float64 // cumulative, normalized; cdf[len-1] == 1
}

// NewMix builds a mix from weighted classes. Weights must be
// non-negative with a positive sum; zero-weight classes are kept (they
// appear in Classes but are never picked).
func NewMix(classes []MixClass) (*Mix, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("workload: empty mix")
	}
	var sum float64
	seen := make(map[string]bool, len(classes))
	for _, c := range classes {
		if c.Name == "" {
			return nil, fmt.Errorf("workload: mix class with empty name")
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("workload: duplicate mix class %q", c.Name)
		}
		seen[c.Name] = true
		if c.Weight < 0 {
			return nil, fmt.Errorf("workload: negative weight %v for mix class %q", c.Weight, c.Name)
		}
		sum += c.Weight
	}
	if sum <= 0 {
		return nil, fmt.Errorf("workload: mix weights sum to zero")
	}
	m := &Mix{classes: classes, cdf: make([]float64, len(classes))}
	var cum float64
	for i, c := range classes {
		cum += c.Weight / sum
		m.cdf[i] = cum
	}
	m.cdf[len(m.cdf)-1] = 1 // absorb rounding
	return m, nil
}

// ParseMix parses "name=weight,name=weight,..." (e.g.
// "query=60,stream=25,batch=10,insert=5"). Class order is preserved.
func ParseMix(spec string) (*Mix, error) {
	parts := strings.Split(spec, ",")
	classes := make([]MixClass, 0, len(parts))
	for _, part := range parts {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, weight, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("workload: mix term %q is not name=weight", part)
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(weight), 64)
		if err != nil {
			return nil, fmt.Errorf("workload: mix weight in %q: %v", part, err)
		}
		classes = append(classes, MixClass{Name: strings.TrimSpace(name), Weight: w})
	}
	return NewMix(classes)
}

// Pick returns the class name for uniform u in [0,1). Out-of-range u is
// clamped, so Pick(rng.Float64()) is always safe.
func (m *Mix) Pick(u float64) string {
	i := sort.SearchFloat64s(m.cdf, u)
	// SearchFloat64s finds the first cdf >= u; u exactly on a boundary
	// belongs to the next class (intervals are half-open [lo, hi)).
	for i < len(m.cdf)-1 && m.cdf[i] == u {
		i++
	}
	if i >= len(m.classes) {
		i = len(m.classes) - 1
	}
	return m.classes[i].Name
}

// Classes returns the mix's classes in declaration order.
func (m *Mix) Classes() []MixClass { return m.classes }

// String renders the mix back to its spec form with normalized
// percentages.
func (m *Mix) String() string {
	var b strings.Builder
	prev := 0.0
	for i, c := range m.classes {
		if i > 0 {
			b.WriteByte(',')
		}
		frac := m.cdf[i] - prev
		prev = m.cdf[i]
		fmt.Fprintf(&b, "%s=%.3g", c.Name, frac)
	}
	return b.String()
}
