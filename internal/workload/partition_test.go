package workload

import (
	"errors"
	"testing"

	"pathenum/internal/gen"
	"pathenum/internal/graph"
	"pathenum/internal/shard"
)

// The workload generator's hashed ownership must stay bit-identical to
// the shard engine's, or -partition files stop reproducing the engine's
// routing mix.
func TestHashOwnerMatchesShard(t *testing.T) {
	for _, p := range []int{2, 3, 4, 8} {
		ours, theirs := hashOwner(p), shard.HashOwner(p)
		for v := 0; v < 10000; v++ {
			if ours(graph.VertexID(v)) != theirs(graph.VertexID(v)) {
				t.Fatalf("P=%d: owner(%d) diverges: workload %d, shard %d",
					p, v, ours(graph.VertexID(v)), theirs(graph.VertexID(v)))
			}
		}
	}
}

func TestGeneratePartitionedMix(t *testing.T) {
	g := gen.BarabasiAlbert(400, 5, 3)
	for _, tc := range []struct {
		shards    int
		crossFrac float64
	}{
		{2, 0.5}, {4, 0.25}, {4, 1}, {1, 0}, {3, 0},
	} {
		opts := PartitionOptions{Count: 64, K: 4, Shards: tc.shards, CrossFrac: tc.crossFrac, Seed: 9}
		qs, err := GeneratePartitioned(g, opts)
		if err != nil {
			t.Fatalf("P=%d cross=%v: %v", tc.shards, tc.crossFrac, err)
		}
		if len(qs) != opts.Count {
			t.Fatalf("P=%d: got %d queries, want %d", tc.shards, len(qs), opts.Count)
		}
		owner := hashOwner(tc.shards)
		cross := 0
		for _, q := range qs {
			if q.S == q.T {
				t.Fatalf("P=%d: degenerate query %v", tc.shards, q)
			}
			if q.K != opts.K {
				t.Fatalf("P=%d: query k %d, want %d", tc.shards, q.K, opts.K)
			}
			if owner(q.S) != owner(q.T) {
				cross++
			}
		}
		want := int(tc.crossFrac * float64(opts.Count))
		if cross != want {
			t.Fatalf("P=%d crossFrac=%v: %d cross queries, want %d", tc.shards, tc.crossFrac, cross, want)
		}
	}
}

func TestGeneratePartitionedValidation(t *testing.T) {
	g := gen.BarabasiAlbert(50, 3, 1)
	for _, opts := range []PartitionOptions{
		{Count: 0, K: 4, Shards: 2},
		{Count: 8, K: 0, Shards: 2},
		{Count: 8, K: 4, Shards: 0},
		{Count: 8, K: 4, Shards: 2, CrossFrac: 1.5},
		{Count: 8, K: 4, Shards: 1, CrossFrac: 0.5},
	} {
		if _, err := GeneratePartitioned(g, opts); err == nil {
			t.Fatalf("opts %+v: expected error", opts)
		}
	}
	// Unsatisfiable quotas surface ErrNoQueries, not a silent short set.
	two := gen.Grid(2, 2)
	_, err := GeneratePartitioned(two, PartitionOptions{Count: 1000, K: 4, Shards: 4, CrossFrac: 1, MaxTries: 500})
	if !errors.Is(err, ErrNoQueries) {
		t.Fatalf("unsatisfiable quota: got %v, want ErrNoQueries", err)
	}
}
