package workload

import (
	"testing"

	"pathenum/internal/gen"
	"pathenum/internal/graph"
)

func TestGenerateBatchStructure(t *testing.T) {
	g := gen.BarabasiAlbert(300, 4, 13)
	queries, err := GenerateBatch(g, BatchOptions{Count: 48, K: 5, GroupSize: 6, DupFrac: 0.25, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(queries) != 48 {
		t.Fatalf("got %d queries, want 48", len(queries))
	}
	srcCount := make(map[graph.VertexID]int)
	tgtCount := make(map[graph.VertexID]int)
	dups := make(map[BatchQuery]int)
	for _, q := range queries {
		if q.S == q.T {
			t.Fatalf("degenerate query %+v", q)
		}
		if q.K != 5 {
			t.Fatalf("query %+v: k != 5", q)
		}
		srcCount[q.S]++
		tgtCount[q.T]++
		dups[q]++
	}
	// The batch must contain sharing worth planning for: at least one
	// endpoint hosting a cluster, and injected exact duplicates.
	maxShared := 0
	for _, c := range srcCount {
		if c > maxShared {
			maxShared = c
		}
	}
	for _, c := range tgtCount {
		if c > maxShared {
			maxShared = c
		}
	}
	if maxShared < 2 {
		t.Fatal("no shared-endpoint cluster generated")
	}
	duplicated := 0
	for _, c := range dups {
		duplicated += c - 1
	}
	if duplicated == 0 {
		t.Fatal("DupFrac=0.25 produced no duplicates")
	}
}

func TestGenerateBatchFeasible(t *testing.T) {
	g := gen.BarabasiAlbert(200, 4, 29)
	queries, err := GenerateBatch(g, BatchOptions{Count: 24, K: 4, MaxDist: 3, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	b := newBoundedBFS(g)
	for _, q := range queries {
		if !b.within(q.S, q.T, 3) {
			t.Fatalf("query %+v: dist > MaxDist", q)
		}
	}
}

func TestGenerateBatchValidation(t *testing.T) {
	g := gen.BarabasiAlbert(50, 3, 1)
	cases := []BatchOptions{
		{Count: 0, K: 4},
		{Count: 8, K: 0},
		{Count: 8, K: 4, DupFrac: 1.5},
		{Count: 8, K: 4, SharedTargetFrac: 2},
	}
	for i, opts := range cases {
		if _, err := GenerateBatch(g, opts); err == nil {
			t.Errorf("case %d (%+v): expected error", i, opts)
		}
	}
	tiny := lineGraph(t, 1)
	if _, err := GenerateBatch(tiny, BatchOptions{Count: 4, K: 3}); err == nil {
		t.Error("tiny graph: expected error")
	}
}
