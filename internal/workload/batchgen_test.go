package workload

import (
	"testing"

	"pathenum/internal/gen"
	"pathenum/internal/graph"
)

func TestGenerateBatchStructure(t *testing.T) {
	g := gen.BarabasiAlbert(300, 4, 13)
	queries, err := GenerateBatch(g, BatchOptions{Count: 48, K: 5, GroupSize: 6, DupFrac: 0.25, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(queries) != 48 {
		t.Fatalf("got %d queries, want 48", len(queries))
	}
	srcCount := make(map[graph.VertexID]int)
	tgtCount := make(map[graph.VertexID]int)
	dups := make(map[BatchQuery]int)
	for _, q := range queries {
		if q.S == q.T {
			t.Fatalf("degenerate query %+v", q)
		}
		if q.K != 5 {
			t.Fatalf("query %+v: k != 5", q)
		}
		srcCount[q.S]++
		tgtCount[q.T]++
		dups[q]++
	}
	// The batch must contain sharing worth planning for: at least one
	// endpoint hosting a cluster, and injected exact duplicates.
	maxShared := 0
	for _, c := range srcCount {
		if c > maxShared {
			maxShared = c
		}
	}
	for _, c := range tgtCount {
		if c > maxShared {
			maxShared = c
		}
	}
	if maxShared < 2 {
		t.Fatal("no shared-endpoint cluster generated")
	}
	duplicated := 0
	for _, c := range dups {
		duplicated += c - 1
	}
	if duplicated == 0 {
		t.Fatal("DupFrac=0.25 produced no duplicates")
	}
}

func TestGenerateBatchTwoSided(t *testing.T) {
	g := gen.BarabasiAlbert(400, 5, 17)
	queries, err := GenerateBatch(g, BatchOptions{Count: 64, K: 6, GroupSize: 8, TwoSided: true, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(queries) != 64 {
		t.Fatalf("got %d queries, want 64", len(queries))
	}
	srcs := make(map[graph.VertexID]int)
	tgts := make(map[graph.VertexID]int)
	b := newBoundedBFS(g)
	for _, q := range queries {
		if q.S == q.T {
			t.Fatalf("degenerate query %+v", q)
		}
		if !b.within(q.S, q.T, 3) {
			t.Fatalf("query %+v: dist > default MaxDist", q)
		}
		srcs[q.S]++
		tgts[q.T]++
	}
	// An 8x8 grid: 8 distinct sources each used 8 times, 8 distinct
	// targets each used 8 times — every query shares both endpoints.
	if len(srcs) != 8 || len(tgts) != 8 {
		t.Fatalf("got %d sources x %d targets, want 8x8", len(srcs), len(tgts))
	}
	for v, c := range srcs {
		if c != 8 {
			t.Errorf("source %d used %d times, want 8", v, c)
		}
	}
	for v, c := range tgts {
		if c != 8 {
			t.Errorf("target %d used %d times, want 8", v, c)
		}
	}

	// DupFrac composes: a salted grid still only touches the grid hubs.
	salted, err := GenerateBatch(g, BatchOptions{Count: 64, K: 6, GroupSize: 8, TwoSided: true, DupFrac: 0.25, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	uniq := make(map[BatchQuery]bool)
	for _, q := range salted {
		uniq[q] = true
	}
	if len(salted) != 64 || len(uniq) >= 64 {
		t.Fatalf("DupFrac=0.25: %d queries, %d unique — expected duplicates", len(salted), len(uniq))
	}
	for q := range uniq {
		if srcs[q.S] == 0 && tgts[q.S] == 0 {
			// Sources may differ across seeds of the two calls only if the
			// rng stream diverged; same seed + same opts prefix keeps it.
			t.Fatalf("salted query %+v uses a non-grid source", q)
		}
	}
}

func TestGenerateBatchFeasible(t *testing.T) {
	g := gen.BarabasiAlbert(200, 4, 29)
	queries, err := GenerateBatch(g, BatchOptions{Count: 24, K: 4, MaxDist: 3, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	b := newBoundedBFS(g)
	for _, q := range queries {
		if !b.within(q.S, q.T, 3) {
			t.Fatalf("query %+v: dist > MaxDist", q)
		}
	}
}

func TestGenerateBatchValidation(t *testing.T) {
	g := gen.BarabasiAlbert(50, 3, 1)
	cases := []BatchOptions{
		{Count: 0, K: 4},
		{Count: 8, K: 0},
		{Count: 8, K: 4, DupFrac: 1.5},
		{Count: 8, K: 4, SharedTargetFrac: 2},
	}
	for i, opts := range cases {
		if _, err := GenerateBatch(g, opts); err == nil {
			t.Errorf("case %d (%+v): expected error", i, opts)
		}
	}
	tiny := lineGraph(t, 1)
	if _, err := GenerateBatch(tiny, BatchOptions{Count: 4, K: 3}); err == nil {
		t.Error("tiny graph: expected error")
	}
}
