package workload

import (
	"math/rand"
	"testing"
)

func TestParseMix(t *testing.T) {
	m, err := ParseMix("query=60, stream=25,batch=10,insert=5")
	if err != nil {
		t.Fatal(err)
	}
	cs := m.Classes()
	if len(cs) != 4 || cs[0].Name != "query" || cs[3].Name != "insert" {
		t.Fatalf("classes = %+v", cs)
	}
	// Boundary semantics: [0, .60) query, [.60, .85) stream, ...
	for _, tc := range []struct {
		u    float64
		want string
	}{
		{0, "query"}, {0.599, "query"}, {0.6, "stream"}, {0.849, "stream"},
		{0.85, "batch"}, {0.949, "batch"}, {0.95, "insert"}, {0.999, "insert"}, {1.0, "insert"},
	} {
		if got := m.Pick(tc.u); got != tc.want {
			t.Errorf("Pick(%v) = %q, want %q", tc.u, got, tc.want)
		}
	}
}

func TestParseMixErrors(t *testing.T) {
	for _, spec := range []string{
		"", "query", "query=x", "query=-1", "query=0,insert=0", "query=1,query=2",
	} {
		if _, err := ParseMix(spec); err == nil {
			t.Errorf("ParseMix(%q) should fail", spec)
		}
	}
}

func TestMixZeroWeightNeverPicked(t *testing.T) {
	m, err := ParseMix("query=1,stream=0,insert=3")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		if got := m.Pick(rng.Float64()); got == "stream" {
			t.Fatal("picked a zero-weight class")
		}
	}
}

// TestMixDistribution: empirical frequencies track the weights within
// a loose tolerance — the CDF sampling is statistically sound, not just
// boundary-correct.
func TestMixDistribution(t *testing.T) {
	m, err := ParseMix("a=6,b=3,c=1")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	const n = 100000
	counts := map[string]int{}
	for i := 0; i < n; i++ {
		counts[m.Pick(rng.Float64())]++
	}
	for name, want := range map[string]float64{"a": 0.6, "b": 0.3, "c": 0.1} {
		got := float64(counts[name]) / n
		if got < want-0.02 || got > want+0.02 {
			t.Errorf("class %s frequency = %.3f, want ~%.1f", name, got, want)
		}
	}
}
