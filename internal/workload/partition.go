package workload

import (
	"fmt"
	"math/rand"

	"pathenum/internal/graph"
)

// PartitionOptions configures partition-aware query generation — the
// workload the sharded engine (internal/shard) is benchmarked with:
// query sets with a controlled intra/cross-shard mix under the same
// hashed vertex ownership the engine's Hash strategy uses, so a file
// generated here reproduces its routing mix on any engine with the same
// shard count.
type PartitionOptions struct {
	// Count is the number of queries.
	Count int
	// K is the hop constraint assigned to every query.
	K int
	// Shards is the shard count P whose ownership classifies endpoints.
	Shards int
	// Owner maps a vertex to its shard (default: the engine's hashed
	// ownership for Shards, shard.HashOwner).
	Owner func(graph.VertexID) int
	// CrossFrac is the fraction of queries whose endpoints land in
	// different shards (default 0.5). With Shards == 1 every query is
	// intra and CrossFrac must be 0.
	CrossFrac float64
	// MaxDist bounds dist(s, t) so queries are non-trivial (default 3).
	MaxDist int
	// Seed drives sampling.
	Seed int64
	// MaxTries bounds sampling attempts (default 200*Count).
	MaxTries int
}

// GeneratePartitioned samples Count queries with the requested
// intra/cross-shard mix: each query's endpoints are classified by the
// ownership function, and sampling retries until the per-class quotas
// fill. Every query is valid (s != t) and feasible
// (dist(s,t) <= MaxDist).
func GeneratePartitioned(g *graph.Graph, opts PartitionOptions) ([]BatchQuery, error) {
	if opts.Count <= 0 {
		return nil, fmt.Errorf("workload: non-positive partition count %d", opts.Count)
	}
	if opts.K < 1 {
		return nil, fmt.Errorf("workload: partition k %d must be >= 1", opts.K)
	}
	if opts.Shards < 1 {
		return nil, fmt.Errorf("workload: shard count %d must be >= 1", opts.Shards)
	}
	if opts.CrossFrac < 0 || opts.CrossFrac > 1 {
		return nil, fmt.Errorf("workload: CrossFrac %v out of [0,1]", opts.CrossFrac)
	}
	if opts.Shards == 1 && opts.CrossFrac > 0 {
		return nil, fmt.Errorf("workload: CrossFrac %v impossible with one shard", opts.CrossFrac)
	}
	if g.NumVertices() < 2 {
		return nil, fmt.Errorf("workload: graph too small (%d vertices)", g.NumVertices())
	}
	if opts.MaxDist <= 0 {
		opts.MaxDist = 3
	}
	if opts.MaxTries <= 0 {
		opts.MaxTries = 200 * opts.Count
	}
	owner := opts.Owner
	if owner == nil {
		owner = hashOwner(opts.Shards)
	}

	wantCross := int(opts.CrossFrac * float64(opts.Count))
	wantIntra := opts.Count - wantCross
	rng := rand.New(rand.NewSource(opts.Seed))
	dist := newBoundedBFS(g)
	n := g.NumVertices()

	queries := make([]BatchQuery, 0, opts.Count)
	gotIntra, gotCross := 0, 0
	for tries := 0; gotIntra+gotCross < opts.Count && tries < opts.MaxTries; tries++ {
		s := graph.VertexID(rng.Intn(n))
		t := graph.VertexID(rng.Intn(n))
		if s == t {
			continue
		}
		cross := owner(s) != owner(t)
		if cross && gotCross >= wantCross {
			continue
		}
		if !cross && gotIntra >= wantIntra {
			continue
		}
		if !dist.within(s, t, opts.MaxDist) {
			continue
		}
		queries = append(queries, BatchQuery{S: s, T: t, K: opts.K})
		if cross {
			gotCross++
		} else {
			gotIntra++
		}
	}
	if len(queries) < opts.Count {
		return queries, fmt.Errorf("%w: got %d of %d (%d intra, %d cross)",
			ErrNoQueries, len(queries), opts.Count, gotIntra, gotCross)
	}
	// Shuffle so the intra/cross classes interleave instead of arriving
	// in quota-fill order.
	rng.Shuffle(len(queries), func(i, j int) { queries[i], queries[j] = queries[j], queries[i] })
	return queries, nil
}

// hashOwner mirrors the shard engine's Hash ownership (shard.HashOwner)
// without importing internal/shard — workload sits below it in the
// package graph. The mixer must stay bit-identical to shard.mix32.
func hashOwner(p int) func(graph.VertexID) int {
	return func(v graph.VertexID) int {
		x := uint32(v)
		x ^= x >> 16
		x *= 0x7feb352d
		x ^= x >> 15
		x *= 0x846ca68b
		x ^= x >> 16
		return int(x % uint32(p))
	}
}
