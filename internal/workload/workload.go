// Package workload generates HcPE query sets following the paper's
// methodology (§7.1): vertices are split by degree into a high-degree set V'
// (top 10%) and the remainder V”, queries draw s and t from one of the four
// {V',V”}x{V',V”} settings, and every query is guaranteed to have
// dist(s,t) <= 3 so that enumeration is non-trivial.
package workload

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"

	"pathenum/internal/graph"
)

// Setting selects which degree classes s and t are drawn from.
type Setting int

// The four query settings of §7.1. The paper reports HighHigh by default
// because queries between high-degree endpoints have the largest search
// spaces.
const (
	HighHigh Setting = iota // s in V', t in V'
	HighLow                 // s in V', t in V''
	LowHigh                 // s in V'', t in V'
	LowLow                  // s in V'', t in V''
)

// String implements fmt.Stringer.
func (s Setting) String() string {
	switch s {
	case HighHigh:
		return "V'xV'"
	case HighLow:
		return "V'xV''"
	case LowHigh:
		return "V''xV'"
	case LowLow:
		return "V''xV''"
	default:
		return fmt.Sprintf("Setting(%d)", int(s))
	}
}

// Query is a source/target pair; the hop constraint k is supplied at
// execution time so one query set serves all k sweeps.
type Query struct {
	S, T graph.VertexID
}

// Options configures query generation.
type Options struct {
	Setting  Setting
	Count    int     // number of queries to generate
	MaxDist  int     // required upper bound on dist(s,t); paper uses 3
	TopFrac  float64 // fraction of vertices in V'; paper uses 0.10
	Seed     int64
	MaxTries int // sampling attempts before giving up (default 200*Count)
}

// ErrNoQueries is returned when sampling cannot find enough (s,t) pairs
// within MaxDist, e.g. on graphs with tiny reachable neighborhoods.
var ErrNoQueries = errors.New("workload: could not sample enough queries within distance bound")

// Split partitions vertex ids into (V', V”) by total degree: V' is the
// topFrac fraction with the largest degrees (at least one vertex).
func Split(g *graph.Graph, topFrac float64) (high, low []graph.VertexID) {
	n := g.NumVertices()
	ids := make([]graph.VertexID, n)
	for i := range ids {
		ids[i] = graph.VertexID(i)
	}
	sort.Slice(ids, func(i, j int) bool {
		di, dj := g.Degree(ids[i]), g.Degree(ids[j])
		if di != dj {
			return di > dj
		}
		return ids[i] < ids[j] // deterministic tie-break
	})
	cut := int(float64(n) * topFrac)
	if cut < 1 && n > 0 {
		cut = 1
	}
	return ids[:cut], ids[cut:]
}

// Generate samples a query set per Options. Each returned query satisfies
// s != t and dist(s,t) <= MaxDist in g.
func Generate(g *graph.Graph, opts Options) ([]Query, error) {
	if opts.Count <= 0 {
		return nil, fmt.Errorf("workload: non-positive count %d", opts.Count)
	}
	if g.NumVertices() < 2 {
		return nil, fmt.Errorf("workload: graph too small (%d vertices)", g.NumVertices())
	}
	if opts.TopFrac <= 0 || opts.TopFrac >= 1 {
		opts.TopFrac = 0.10
	}
	if opts.MaxDist <= 0 {
		opts.MaxDist = 3
	}
	if opts.MaxTries <= 0 {
		opts.MaxTries = 200 * opts.Count
	}
	high, low := Split(g, opts.TopFrac)
	var sPool, tPool []graph.VertexID
	switch opts.Setting {
	case HighHigh:
		sPool, tPool = high, high
	case HighLow:
		sPool, tPool = high, low
	case LowHigh:
		sPool, tPool = low, high
	case LowLow:
		sPool, tPool = low, low
	default:
		return nil, fmt.Errorf("workload: unknown setting %d", int(opts.Setting))
	}
	if len(sPool) == 0 || len(tPool) == 0 {
		return nil, fmt.Errorf("workload: empty vertex pool for setting %v", opts.Setting)
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	dist := newBoundedBFS(g)
	queries := make([]Query, 0, opts.Count)
	for tries := 0; len(queries) < opts.Count && tries < opts.MaxTries; tries++ {
		s := sPool[rng.Intn(len(sPool))]
		t := tPool[rng.Intn(len(tPool))]
		if s == t {
			continue
		}
		if dist.within(s, t, opts.MaxDist) {
			queries = append(queries, Query{S: s, T: t})
		}
	}
	if len(queries) < opts.Count {
		return queries, fmt.Errorf("%w: got %d of %d", ErrNoQueries, len(queries), opts.Count)
	}
	return queries, nil
}

// boundedBFS answers "is dist(s,t) <= bound" queries with reusable buffers.
type boundedBFS struct {
	g     *graph.Graph
	seen  []int32 // epoch stamps
	epoch int32
	queue []graph.VertexID
}

func newBoundedBFS(g *graph.Graph) *boundedBFS {
	return &boundedBFS{g: g, seen: make([]int32, g.NumVertices())}
}

func (b *boundedBFS) within(s, t graph.VertexID, bound int) bool {
	if s == t {
		return true
	}
	b.epoch++
	b.queue = b.queue[:0]
	b.queue = append(b.queue, s)
	b.seen[s] = b.epoch
	head := 0
	for depth := 1; depth <= bound; depth++ {
		tail := len(b.queue)
		if head == tail {
			return false
		}
		for ; head < tail; head++ {
			for _, w := range b.g.OutNeighbors(b.queue[head]) {
				if w == t {
					return true
				}
				if b.seen[w] != b.epoch {
					b.seen[w] = b.epoch
					b.queue = append(b.queue, w)
				}
			}
		}
	}
	return false
}
