package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucketing scheme: geometric (log-bucketed) bounds with
// histSubOctaves buckets per doubling, starting at histBase. Four
// sub-buckets per octave bound the relative quantile error at
// 2^(1/4)-1 ≈ 19% — enough to tell a 200µs first path from a 2ms one at
// p999 — while keeping the whole histogram at ~1 KiB of atomics, cheap
// enough to hand one to every request class and pipeline stage.
//
// The range spans 1µs .. ~54s; anything slower lands in the overflow
// (+Inf) bucket, anything faster in bucket 0. Observing is two atomic
// adds plus an integer bucket lookup — no locks, no floating point, no
// allocation.
const (
	histSubOctaves = 4
	histOctaves    = 26
	histBuckets    = histSubOctaves*histOctaves + 1 // +1 overflow (+Inf)
)

// histBase is the upper bound of bucket 0.
const histBase = time.Microsecond

// histBounds are the inclusive upper bounds of the finite buckets,
// shared by all histograms (the scheme is fixed).
var histBounds = func() []time.Duration {
	b := make([]time.Duration, histBuckets-1)
	for i := range b {
		b[i] = time.Duration(float64(histBase) * math.Pow(2, float64(i)/histSubOctaves))
	}
	return b
}()

// histBoundsNs is histBounds as raw nanoseconds, the form bucketIndex
// scans — a fixed array so the lookup needs no bounds checks on the slice
// header and stays resident in L1.
var histBoundsNs = func() [histBuckets - 1]int64 {
	var b [histBuckets - 1]int64
	for i := range b {
		b[i] = int64(histBounds[i])
	}
	return b
}()

// Histogram is a fixed-scheme latency histogram with lock-free updates
// and percentile extraction. Create one through Registry.Histogram.
// The observation count is not stored separately: it is the sum of the
// bucket counters, computed on demand (105 loads — scrape-time cost, not
// observe-time cost). That keeps Observe at two atomic adds and makes
// the exposition's "+Inf cumulative == _count" invariant true by
// construction.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	sumNs   atomic.Int64
	maxNs   atomic.Int64
}

func newHistogram() *Histogram { return &Histogram{} }

// NewHistogram creates a standalone histogram outside any registry —
// for tools (e.g. load drivers) that want the recording scheme without
// the exposition.
func NewHistogram() *Histogram { return newHistogram() }

// bucketIndex maps a duration to the smallest bucket whose inclusive
// upper bound admits it (exact bounds land in their own bucket). Integer
// only: the binary exponent gives a starting bucket that is provably at
// or below the answer — histBase = 1000ns < 2^10, so bound[4(e-10)] =
// 1000·2^(e-10) < 2^e ≤ ns — and at most ~5 table entries separate it
// from the answer (bounds double every histSubOctaves entries).
func bucketIndex(ns int64) int {
	if ns <= int64(histBase) {
		return 0
	}
	idx := (bits.Len64(uint64(ns)) - 1 - 10) * histSubOctaves
	if idx < 0 {
		idx = 0
	} else if idx > histBuckets-1 {
		idx = histBuckets - 1 // past the finite range: overflow for sure
	}
	for idx < histBuckets-1 && histBoundsNs[idx] < ns {
		idx++
	}
	return idx
}

// Observe records one duration. Safe for concurrent use; atomics only.
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketIndex(ns)].Add(1)
	h.sumNs.Add(ns)
	for {
		cur := h.maxNs.Load()
		if ns <= cur || h.maxNs.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// CountSum returns the observation count and the total observed time.
func (h *Histogram) CountSum() (uint64, time.Duration) {
	return h.Count(), time.Duration(h.sumNs.Load())
}

// Max returns the largest observation (exact, not bucketed).
func (h *Histogram) Max() time.Duration { return time.Duration(h.maxNs.Load()) }

// Mean returns the average observation, 0 when empty.
func (h *Histogram) Mean() time.Duration {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumNs.Load() / int64(n))
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) of the
// observed distribution: the upper bound of the bucket holding the
// rank-⌈q·count⌉ observation, within the scheme's ~19% relative error.
// Returns 0 when the histogram is empty; observations past the finite
// range report the histogram's exact maximum.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.Count()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			if i == histBuckets-1 {
				return h.Max()
			}
			return histBounds[i]
		}
	}
	return h.Max()
}

// snapshot copies the bucket counts (one atomic load each; the copy is
// not a consistent cut, but counts are monotone so cumulative rendering
// stays valid). The returned count is the sum of the returned buckets,
// so _count always equals the +Inf cumulative exactly.
func (h *Histogram) snapshot() (buckets [histBuckets]uint64, count uint64, sumNs int64) {
	for i := range h.buckets {
		buckets[i] = h.buckets[i].Load()
		count += buckets[i]
	}
	return buckets, count, h.sumNs.Load()
}
