package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("x_total", "help")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	// Idempotent registration returns the same handle.
	if c2 := reg.Counter("x_total", "help"); c2 != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := reg.Gauge("y", "help")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestKindConflictPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("z_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind conflict")
		}
	}()
	reg.Gauge("z_total", "")
}

func TestLabelBuilder(t *testing.T) {
	if got := L("a_total", "op", "query", "code", "200"); got != `a_total{op="query",code="200"}` {
		t.Fatalf("L = %q", got)
	}
	if got := L("a_total"); got != "a_total" {
		t.Fatalf("L no labels = %q", got)
	}
	if got := L("a", "k", `v"with\stuff`); !strings.Contains(got, `\"`) || !strings.Contains(got, `\\`) {
		t.Fatalf("L did not escape: %q", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram()
	// 1000 observations uniform on 1..1000 ms.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if got := h.Count(); got != 1000 {
		t.Fatalf("count = %d", got)
	}
	// Quantile returns a bucket upper bound within the scheme's ~19%
	// relative error of the true quantile (from above).
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 500 * time.Millisecond},
		{0.95, 950 * time.Millisecond},
		{0.99, 990 * time.Millisecond},
		{0.999, 999 * time.Millisecond},
	} {
		got := h.Quantile(tc.q)
		if got < tc.want {
			t.Errorf("q%v = %v below true quantile %v", tc.q, got, tc.want)
		}
		if float64(got) > float64(tc.want)*1.2 {
			t.Errorf("q%v = %v more than 20%% above true quantile %v", tc.q, got, tc.want)
		}
	}
	if h.Max() != time.Second {
		t.Fatalf("max = %v, want 1s", h.Max())
	}
	if mean := h.Mean(); mean < 490*time.Millisecond || mean > 510*time.Millisecond {
		t.Fatalf("mean = %v, want ~500ms", mean)
	}
}

func TestHistogramEdges(t *testing.T) {
	h := newHistogram()
	if h.Quantile(0.99) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	h.Observe(0)                 // clamps into bucket 0
	h.Observe(-time.Second)      // negative clamps to 0
	h.Observe(500 * time.Second) // overflow bucket
	h.Observe(10 * time.Second)  // large but finite
	if got := h.Count(); got != 4 {
		t.Fatalf("count = %d", got)
	}
	// The overflow observation reports the exact max.
	if got := h.Quantile(1.0); got != 500*time.Second {
		t.Fatalf("q1.0 = %v, want exact max 500s", got)
	}
}

func TestBucketIndexMonotone(t *testing.T) {
	prev := -1
	for _, d := range []time.Duration{
		0, time.Nanosecond, time.Microsecond, 2 * time.Microsecond,
		10 * time.Microsecond, time.Millisecond, 10 * time.Millisecond,
		time.Second, 10 * time.Second, time.Minute, time.Hour,
	} {
		idx := bucketIndex(d.Nanoseconds())
		if idx < prev {
			t.Fatalf("bucketIndex(%v) = %d < previous %d", d, idx, prev)
		}
		if idx < 0 || idx >= histBuckets {
			t.Fatalf("bucketIndex(%v) = %d out of range", d, idx)
		}
		prev = idx
	}
	// Bounds are inclusive: an exact bound lands at its own bucket, the
	// next nanosecond in the next.
	for i, b := range histBounds {
		if got := bucketIndex(b.Nanoseconds()); got != i {
			t.Fatalf("bucketIndex(bound %d = %v) = %d", i, b, got)
		}
	}
}

func TestExpositionValidAndComplete(t *testing.T) {
	reg := NewRegistry()
	reg.Counter(L("req_total", "op", "query"), "requests").Add(3)
	reg.Counter(L("req_total", "op", "stream"), "requests").Add(5)
	reg.Gauge("pool_workers", "workers").Set(8)
	reg.GaugeFunc("epoch", "graph epoch", func() float64 { return 17 })
	reg.CounterFunc("cache_hits_total", "hits", func() float64 { return 9 })
	h := reg.Histogram(L("latency_seconds", "op", "query"), "latency")
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if err := ValidateExposition(buf.Bytes()); err != nil {
		t.Fatalf("invalid exposition: %v\n%s", err, text)
	}
	for _, want := range []string{
		"# TYPE req_total counter",
		`req_total{op="query"} 3`,
		`req_total{op="stream"} 5`,
		"pool_workers 8",
		"epoch 17",
		"cache_hits_total 9",
		"# TYPE latency_seconds histogram",
		`latency_seconds_bucket{op="query",le="+Inf"} 100`,
		`latency_seconds_count{op="query"} 100`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	for name, bad := range map[string]string{
		"malformed sample":  "# TYPE a counter\na{ 1\n",
		"no type":           "a_total 1\n",
		"bad value":         "# TYPE a counter\na not-a-number\n",
		"missing inf":       "# TYPE h histogram\nh_bucket{le=\"0.1\"} 1\nh_count 1\n",
		"count mismatch":    "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_count 3\n",
		"decreasing bucket": "# TYPE h histogram\nh_bucket{le=\"0.1\"} 5\nh_bucket{le=\"0.2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_count 5\n",
	} {
		if err := ValidateExposition([]byte(bad)); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestSnapshot(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total", "").Add(2)
	reg.Gauge("g", "").Set(-5)
	reg.GaugeFunc("f", "", func() float64 { return 1.5 })
	reg.Histogram("h_seconds", "").Observe(2 * time.Second)
	snap := reg.Snapshot()
	if snap["c_total"] != 2 || snap["g"] != -5 || snap["f"] != 1.5 {
		t.Fatalf("snapshot = %v", snap)
	}
	if snap["h_seconds_count"] != 1 || math.Abs(snap["h_seconds_sum"]-2) > 1e-9 {
		t.Fatalf("histogram snapshot = %v", snap)
	}
}

// TestConcurrentObserveAndScrape races updates against scrapes under
// -race: counters stay monotone across scrapes and every exposition is
// valid mid-flight.
func TestConcurrentObserveAndScrape(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("ops_total", "")
	h := reg.Histogram("lat_seconds", "")
	g := reg.Gauge("inflight", "")
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Add(1)
				h.Observe(time.Duration(seed*i%1000) * time.Microsecond)
				g.Add(-1)
			}
		}(w + 1)
	}
	var lastCount, lastTotal float64
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := reg.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		if err := ValidateExposition(buf.Bytes()); err != nil {
			t.Fatalf("scrape %d invalid: %v", i, err)
		}
		snap := reg.Snapshot()
		if snap["ops_total"] < lastTotal {
			t.Fatalf("counter went backwards: %v < %v", snap["ops_total"], lastTotal)
		}
		if snap["lat_seconds_count"] < lastCount {
			t.Fatalf("histogram count went backwards: %v < %v", snap["lat_seconds_count"], lastCount)
		}
		lastTotal, lastCount = snap["ops_total"], snap["lat_seconds_count"]
	}
	close(stop)
	wg.Wait()
}
