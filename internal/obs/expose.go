package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered series in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, each with
// its # HELP and # TYPE lines, series sorted within the family.
// Histograms render cumulative le buckets in seconds; empty buckets are
// skipped (the format permits sparse buckets) except the mandatory +Inf,
// so a histogram costs lines proportional to the spread it actually
// observed, not the 105-bucket scheme.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fams, byFam := r.snapshotOrdered()
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		}
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range byFam[f.name] {
			if s.hist != nil {
				writeHistogram(bw, s)
				continue
			}
			fmt.Fprintf(bw, "%s %s\n", s.name, formatValue(s.scalar()))
		}
	}
	return bw.Flush()
}

// writeHistogram renders one histogram series: sparse cumulative buckets,
// +Inf, then _sum (seconds) and _count. The +Inf bucket and _count are
// both the bucket-snapshot total, so the exposition is internally
// consistent even while observations race the scrape.
func writeHistogram(w io.Writer, s *series) {
	buckets, _, sumNs := s.hist.snapshot()
	var cum, total uint64
	for i := range buckets {
		total += buckets[i]
	}
	for i, n := range buckets[:histBuckets-1] {
		if n == 0 {
			continue // sparse: render only buckets that changed the cumulative count
		}
		cum += n
		fmt.Fprintf(w, "%s %d\n", seriesWithLE(s, formatValue(histBounds[i].Seconds())), cum)
	}
	fmt.Fprintf(w, "%s %d\n", seriesWithLE(s, "+Inf"), total)
	fmt.Fprintf(w, "%s_sum%s %s\n", s.family, labelSuffix(s), formatValue(float64(sumNs)/1e9))
	fmt.Fprintf(w, "%s_count%s %d\n", s.family, labelSuffix(s), total)
}

// seriesWithLE builds the _bucket series name with le merged into the
// label set.
func seriesWithLE(s *series, le string) string {
	if s.labels == "" {
		return fmt.Sprintf(`%s_bucket{le="%s"}`, s.family, le)
	}
	return fmt.Sprintf(`%s_bucket{%s,le="%s"}`, s.family, s.labels, le)
}

// labelSuffix renders the series' constant labels ("" when unlabeled).
func labelSuffix(s *series) string {
	if s.labels == "" {
		return ""
	}
	return "{" + s.labels + "}"
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// seriesLine matches one sample line: name, optional label body, value.
var seriesLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)

// ValidateExposition checks data against the text exposition format and
// the histogram invariants scrape pipelines rely on: every sample line
// parses, every family's TYPE appears before its samples, histogram
// cumulative buckets are non-decreasing in le order, the +Inf bucket is
// present and equals _count. It exists so tests (and the load driver) can
// assert /metrics output is consumable without vendoring a Prometheus
// parser; it returns the first violation found.
func ValidateExposition(data []byte) error {
	types := make(map[string]string)
	type histSeries struct {
		buckets map[float64]float64 // le -> cumulative
		hasInf  bool
		inf     float64
		count   float64
		hasCnt  bool
	}
	hists := make(map[string]*histSeries)
	get := func(key string) *histSeries {
		h, ok := hists[key]
		if !ok {
			h = &histSeries{buckets: make(map[float64]float64)}
			hists[key] = h
		}
		return h
	}
	lineNo := 0
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				return fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
			}
			switch parts[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return fmt.Errorf("line %d: unknown metric type %q", lineNo, parts[3])
			}
			if _, dup := types[parts[2]]; dup {
				return fmt.Errorf("line %d: duplicate TYPE for family %q", lineNo, parts[2])
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments are legal
		}
		m := seriesLine.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("line %d: malformed sample line %q", lineNo, line)
		}
		name, labels, valStr := m[1], m[2], m[3]
		val, err := parseValue(valStr)
		if err != nil {
			return fmt.Errorf("line %d: bad value %q: %v", lineNo, valStr, err)
		}
		fam, suffix := familyOf(name, types)
		if _, ok := types[fam]; !ok {
			return fmt.Errorf("line %d: sample %q before any TYPE for family %q", lineNo, name, fam)
		}
		if types[fam] != "histogram" {
			if suffix != "" {
				return fmt.Errorf("line %d: suffix %q on non-histogram family %q", lineNo, suffix, fam)
			}
			continue
		}
		base, le, hasLE, err := splitHistLabels(labels)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		key := fam + "|" + base
		switch suffix {
		case "_bucket":
			if !hasLE {
				return fmt.Errorf("line %d: histogram bucket without le label", lineNo)
			}
			h := get(key)
			if le == math.Inf(1) {
				h.hasInf, h.inf = true, val
			} else {
				h.buckets[le] = val
			}
		case "_count":
			h := get(key)
			h.hasCnt, h.count = true, val
		case "_sum":
			// any float is legal
		case "":
			return fmt.Errorf("line %d: bare sample %q for histogram family %q", lineNo, name, fam)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for key, h := range hists {
		if !h.hasInf {
			return fmt.Errorf("histogram %q: missing +Inf bucket", key)
		}
		if h.hasCnt && h.count != h.inf {
			return fmt.Errorf("histogram %q: _count %v != +Inf bucket %v", key, h.count, h.inf)
		}
		les := make([]float64, 0, len(h.buckets))
		for le := range h.buckets {
			les = append(les, le)
		}
		sort.Float64s(les)
		prev := 0.0
		for _, le := range les {
			if h.buckets[le] < prev {
				return fmt.Errorf("histogram %q: cumulative bucket le=%v decreases (%v < %v)", key, le, h.buckets[le], prev)
			}
			prev = h.buckets[le]
		}
		if h.inf < prev {
			return fmt.Errorf("histogram %q: +Inf bucket %v below last finite bucket %v", key, h.inf, prev)
		}
	}
	return nil
}

// familyOf strips a histogram suffix when the base family is typed as
// histogram, so "x_seconds_bucket" resolves to family "x_seconds".
func familyOf(name string, types map[string]string) (fam, suffix string) {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name && types[base] == "histogram" {
			return base, suf
		}
	}
	return name, ""
}

// splitHistLabels separates the le label from the rest of the label body,
// returning the base label string (a grouping key) and the parsed le.
func splitHistLabels(labels string) (base string, le float64, hasLE bool, err error) {
	if labels == "" {
		return "", 0, false, nil
	}
	body := strings.TrimSuffix(strings.TrimPrefix(labels, "{"), "}")
	var rest []string
	for _, part := range splitLabelPairs(body) {
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return "", 0, false, fmt.Errorf("malformed label pair %q", part)
		}
		v = strings.Trim(v, `"`)
		if k == "le" {
			f, perr := parseValue(v)
			if perr != nil {
				return "", 0, false, fmt.Errorf("bad le %q: %v", v, perr)
			}
			le, hasLE = f, true
			continue
		}
		rest = append(rest, part)
	}
	sort.Strings(rest)
	return strings.Join(rest, ","), le, hasLE, nil
}

// splitLabelPairs splits a label body at commas outside quotes.
func splitLabelPairs(body string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '"':
			if i == 0 || body[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, body[start:i])
				start = i + 1
			}
		}
	}
	if start < len(body) {
		out = append(out, body[start:])
	}
	return out
}

// parseValue parses a sample or le value, accepting the exposition
// spellings of infinity.
func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}
