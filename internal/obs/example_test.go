package obs_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"pathenum/internal/obs"
)

// ExampleRegistry_Handler shows the scrape path pathenumd exposes at
// GET /metrics: mount Registry.Handler and point a Prometheus scraper
// (or curl) at it. The engine's registry is pre-populated with the
// request/stage histograms; here a standalone registry stands in.
func ExampleRegistry_Handler() {
	reg := obs.NewRegistry()
	reqs := reg.Counter(obs.L("pathenum_http_requests_total", "handler", "query"),
		"HTTP requests served, by handler.")
	lat := reg.Histogram(obs.L("pathenum_request_duration_seconds", "op", "execute"),
		"End-to-end query latency.")

	// A request comes in...
	reqs.Inc()
	lat.Observe(250 * time.Microsecond)

	// ...and a scraper reads the exposition.
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "pathenum_http_requests_total") ||
			strings.HasPrefix(line, "pathenum_request_duration_seconds_count") {
			fmt.Println(line)
		}
	}
	// Output:
	// pathenum_http_requests_total{handler="query"} 1
	// pathenum_request_duration_seconds_count{op="execute"} 1
}
