// Package obs is the engine's production observability layer: a
// lock-cheap metrics registry of atomic counters, gauges and log-bucketed
// latency histograms, exported as Prometheus text exposition (see
// WritePrometheus) and as point-in-time snapshots for ad-hoc JSON stats.
//
// The design constraint is the enumerate hot path: PathEnum answers a
// query in hundreds of microseconds, so instrumentation must cost
// nanoseconds. Every update path — Counter.Add, Gauge.Set,
// Histogram.Observe — is a handful of atomic operations on pre-resolved
// handles; no locks, no maps, no allocation. The registry's mutex guards
// only metric *registration* and scrape-time iteration, both off the
// query path. Metrics whose truth lives elsewhere (cache counters, pool
// occupancy, the graph epoch) register as func metrics and are read at
// scrape time, so the owning subsystem pays nothing between scrapes.
//
// Series names follow the Prometheus data model: a family name plus an
// optional constant label set, built with L:
//
//	reqs := reg.Counter(obs.L("http_requests_total", "handler", "query"),
//	        "HTTP requests served.")
//	reqs.Inc()
package obs

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. All methods are safe for
// concurrent use and lock-free.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down. All methods are safe for
// concurrent use and lock-free.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// metricKind discriminates the exposition type of a family.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "untyped"
	}
}

// series is one registered time series: a family member with a fixed
// label set and exactly one backing store.
type series struct {
	name   string // full series name including labels
	family string
	labels string // label body without braces, "" when unlabeled

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64 // func metrics (scrape-time read)
}

// scalar returns the series' current value for snapshot/exposition;
// histograms are excluded (rendered separately).
func (s *series) scalar() float64 {
	switch {
	case s.counter != nil:
		return float64(s.counter.Value())
	case s.gauge != nil:
		return float64(s.gauge.Value())
	case s.fn != nil:
		return s.fn()
	default:
		return math.NaN()
	}
}

// family groups series sharing a name for HELP/TYPE rendering.
type family struct {
	name string
	kind metricKind
	help string
}

// Registry holds the metric series of one process (typically one engine
// plus its HTTP front end). Registration is idempotent: asking for an
// existing series returns the same handle, so independent subsystems can
// share a registry without coordination. A family's kind is fixed by its
// first registration; a conflicting re-registration panics (it is a
// programming error, like a duplicate flag).
//
// The zero value is not usable; create one with NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	series   map[string]*series
	ordered  []*series // registration order; sorted at scrape time
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		families: make(map[string]*family),
		series:   make(map[string]*series),
	}
}

// L builds a series name from a family name and label key/value pairs:
// L("x_total", "op", "query") == `x_total{op="query"}`. Keys are rendered
// in the order given; callers must use one consistent order per family so
// identical series resolve to identical names.
func L(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	if len(kv)%2 != 0 {
		panic("obs: L needs key/value pairs")
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// splitSeries separates a full series name into family and label body.
func splitSeries(name string) (fam, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i], strings.TrimSuffix(name[i+1:], "}")
	}
	return name, ""
}

// register resolves or creates the series under the family contract.
func (r *Registry) register(name, help string, kind metricKind, mk func(*series)) *series {
	fam, labels := splitSeries(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[fam]
	if !ok {
		f = &family{name: fam, kind: kind, help: help}
		r.families[fam] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: family %q registered as %v, re-registered as %v", fam, f.kind, kind))
	}
	if f.help == "" {
		f.help = help
	}
	if s, ok := r.series[name]; ok {
		return s
	}
	s := &series{name: name, family: fam, labels: labels}
	mk(s)
	r.series[name] = s
	r.ordered = append(r.ordered, s)
	return s
}

// Counter returns (creating if needed) the counter series name.
func (r *Registry) Counter(name, help string) *Counter {
	s := r.register(name, help, kindCounter, func(s *series) { s.counter = &Counter{} })
	if s.counter == nil {
		panic(fmt.Sprintf("obs: series %q exists as a func metric", name))
	}
	return s.counter
}

// Gauge returns (creating if needed) the gauge series name.
func (r *Registry) Gauge(name, help string) *Gauge {
	s := r.register(name, help, kindGauge, func(s *series) { s.gauge = &Gauge{} })
	if s.gauge == nil {
		panic(fmt.Sprintf("obs: series %q exists as a func metric", name))
	}
	return s.gauge
}

// Histogram returns (creating if needed) the latency histogram series
// name. See Histogram for the bucketing scheme.
func (r *Registry) Histogram(name, help string) *Histogram {
	s := r.register(name, help, kindHistogram, func(s *series) { s.hist = newHistogram() })
	return s.hist
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — for cumulative counts owned by another subsystem (e.g. the
// frontier cache's hit counter). fn must be safe for concurrent use and
// must be monotone for the exposition type to hold.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, kindCounter, func(s *series) { s.fn = fn })
}

// GaugeFunc registers a gauge read from fn at scrape time — for
// point-in-time values owned by another subsystem (pool occupancy, the
// graph epoch, resident bytes). fn must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, kindGauge, func(s *series) { s.fn = fn })
}

// Snapshot returns the current value of every scalar series (counters,
// gauges and func metrics) keyed by full series name; histograms
// contribute their count and sum as <name>_count and <name>_sum (sum in
// seconds). This is the backing read for ad-hoc JSON stats endpoints that
// predate the registry.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.Lock()
	ss := append([]*series(nil), r.ordered...)
	r.mu.Unlock()
	out := make(map[string]float64, len(ss))
	for _, s := range ss {
		if s.hist != nil {
			count, sum := s.hist.CountSum()
			out[s.name+"_count"] = float64(count)
			out[s.name+"_sum"] = sum.Seconds()
			continue
		}
		out[s.name] = s.scalar()
	}
	return out
}

// Handler returns an http.Handler serving the registry in Prometheus text
// exposition format — mount it at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// snapshotOrdered returns families and series sorted for deterministic
// exposition.
func (r *Registry) snapshotOrdered() ([]*family, map[string][]*series) {
	r.mu.Lock()
	defer r.mu.Unlock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	byFam := make(map[string][]*series, len(r.families))
	for _, s := range r.ordered {
		byFam[s.family] = append(byFam[s.family], s)
	}
	for _, ss := range byFam {
		sort.Slice(ss, func(i, j int) bool { return ss[i].name < ss[j].name })
	}
	return fams, byFam
}
