package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"pathenum"
	"pathenum/internal/gen"
	"pathenum/internal/obs"
	"pathenum/internal/shard"
)

func TestMetricsEndpointCoversStack(t *testing.T) {
	ts := testServer(t, nil)
	// Exercise every layer once so the series exist with data: a query
	// with paths, a stream, a batch, a write.
	postQuery(t, ts, `{"s":0,"t":3,"k":3,"paths":true}`)
	ndjsonLines(t, ts, "/paths", `{"s":0,"t":3,"k":3}`)
	postBatch(t, ts, `{"queries":[{"s":0,"t":3,"k":3},{"s":1,"t":3,"k":3}]}`)
	resp, err := http.Post(ts.URL+"/insert", "application/json",
		strings.NewReader(`{"edges":[{"from":1,"to":2}],"flush":true}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateExposition(body); err != nil {
		t.Fatalf("/metrics is not valid exposition: %v\n%s", err, body)
	}
	text := string(body)
	// The acceptance surface: request latency, first-path, stage
	// timings, cache, pool, epoch and write-path lag all present.
	for _, want := range []string{
		`pathenum_request_duration_seconds_count{op="execute"}`,
		`pathenum_request_duration_seconds_count{op="stream"}`,
		`pathenum_first_path_seconds_count{op="stream"}`,
		`pathenum_stage_duration_seconds_count{stage="bfs"}`,
		`pathenum_stage_duration_seconds_count{stage="enumerate"}`,
		"pathenum_frontier_cache_hits_total",
		"pathenum_frontier_cache_misses_total",
		"pathenum_pool_workers 2",
		"pathenum_pool_utilization",
		"pathenum_graph_epoch 1",
		"pathenum_inserts_total 1",
		"pathenum_insert_lag_seconds 0",
		"pathenum_snapshots_published_total 1",
		`pathenum_http_requests_total{handler="query",code="200"}`,
		`pathenum_http_request_duration_seconds_count{handler="paths"}`,
		"pathenum_http_inflight_requests",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestMetricsUnderConcurrency scrapes /metrics while streams, batches
// and writes are racing: every scrape must be valid exposition and the
// cumulative counters must be monotone scrape-over-scrape. Run with
// -race in CI.
func TestMetricsUnderConcurrency(t *testing.T) {
	g, err := pathenum.NewGraph(4, []pathenum.Edge{
		{From: 0, To: 1}, {From: 0, To: 2},
		{From: 1, To: 3}, {From: 2, To: 3},
		{From: 3, To: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	engine, err := pathenum.NewEngine(g, pathenum.EngineConfig{Workers: 2, SnapshotEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(engine, nil, Config{}).Handler())
	t.Cleanup(ts.Close)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	post := func(path, body string) {
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	workloads := []func(){
		func() { post("/query", `{"s":0,"t":3,"k":3,"paths":true}`) },
		func() { post("/paths", `{"s":0,"t":3,"k":3}`) },
		func() { post("/batch", `{"queries":[{"s":0,"t":3,"k":3},{"s":1,"t":3,"k":3}]}`) },
		func() { post("/insert", `{"edges":[{"from":1,"to":2},{"from":2,"to":1}]}`); post("/flush", `{}`) },
	}
	for _, work := range workloads {
		wg.Add(1)
		go func(work func()) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					work()
				}
			}
		}(work)
	}

	var lastRequests, lastPaths float64
	for i := 0; i < 25; i++ {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if err := obs.ValidateExposition(body); err != nil {
			t.Fatalf("scrape %d invalid: %v", i, err)
		}
		snap := engine.Metrics().Snapshot()
		total := snap[`pathenum_requests_total{op="execute"}`] + snap[`pathenum_requests_total{op="stream"}`] +
			snap[`pathenum_requests_total{op="batch"}`]
		if total < lastRequests {
			t.Fatalf("requests went backwards: %v < %v", total, lastRequests)
		}
		if snap["pathenum_paths_emitted_total"] < lastPaths {
			t.Fatalf("paths went backwards: %v < %v", snap["pathenum_paths_emitted_total"], lastPaths)
		}
		lastRequests, lastPaths = total, snap["pathenum_paths_emitted_total"]
	}
	close(stop)
	wg.Wait()
}

func TestReadyzLivenessSplit(t *testing.T) {
	ts := testServer(t, nil)
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("idle readyz = %d", resp.StatusCode)
	}
	var body struct {
		Ready         bool    `json:"ready"`
		Epoch         *uint64 `json:"epoch"`
		PendingWrites *int    `json:"pendingWrites"`
		Utilization   float64 `json:"utilization"`
		Workers       int     `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if !body.Ready || body.Epoch == nil || body.PendingWrites == nil || body.Workers != 2 {
		t.Fatalf("readyz body = %+v", body)
	}
}

// TestReadyzShedsWhenSaturated holds a stream open so the pool reports
// occupancy past a tiny shed threshold: /readyz must 503 with a reason
// while /healthz stays 200 — a saturated replica is alive, not ready.
func TestReadyzShedsWhenSaturated(t *testing.T) {
	g := gen.Layered(10, 5)
	engine, err := pathenum.NewEngine(g, pathenum.EngineConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(engine, nil, Config{ShedUtilization: 0.4}).Handler())
	t.Cleanup(ts.Close)

	// Open a stream and read one line; the query stays in flight
	// (utilization 0.5 with 2 workers) until the body is closed.
	resp, err := http.Post(ts.URL+"/paths", "application/json", strings.NewReader(`{"s":0,"t":1,"k":6}`))
	if err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatal(err)
	}

	ready, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var shed struct {
		Ready  bool   `json:"ready"`
		Reason string `json:"reason"`
	}
	if err := json.NewDecoder(ready.Body).Decode(&shed); err != nil {
		t.Fatal(err)
	}
	ready.Body.Close()
	if ready.StatusCode != http.StatusServiceUnavailable || shed.Ready || shed.Reason == "" {
		t.Fatalf("saturated readyz = %d %+v, want 503 with reason", ready.StatusCode, shed)
	}
	live, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	live.Body.Close()
	if live.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d while saturated, want 200", live.StatusCode)
	}

	resp.Body.Close()
	// The disconnect cancels the stream; readiness recovers.
	deadline := time.Now().Add(10 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz did not recover after the stream ended")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestInsertFlushEndpoint(t *testing.T) {
	g, err := pathenum.NewGraph(4, []pathenum.Edge{
		{From: 0, To: 1}, {From: 0, To: 2},
		{From: 1, To: 3}, {From: 2, To: 3},
		{From: 3, To: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	engine, err := pathenum.NewEngine(g, pathenum.EngineConfig{Workers: 2, SnapshotEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(engine, nil, Config{}).Handler())
	t.Cleanup(ts.Close)

	post := func(path, body string) (*http.Response, map[string]any) {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		var out map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&out)
		return resp, out
	}

	// 1->2 is new; 0->1 is a duplicate; buffered by SnapshotEvery.
	resp, out := post("/insert", `{"edges":[{"from":1,"to":2},{"from":0,"to":1}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert status = %d: %v", resp.StatusCode, out)
	}
	if out["applied"].(float64) != 1 || out["ignored"].(float64) != 1 || out["pending"].(float64) != 1 {
		t.Fatalf("insert response = %v", out)
	}
	// Unknown vertex is a clean 400 with nothing applied.
	resp, _ = post("/insert", `{"edges":[{"from":1,"to":99}]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown vertex insert = %d, want 400", resp.StatusCode)
	}
	// Flush publishes; the new edge becomes queryable (path 0-1-2).
	resp, out = post("/flush", `{}`)
	if resp.StatusCode != http.StatusOK || out["pending"].(float64) != 0 {
		t.Fatalf("flush = %d %v", resp.StatusCode, out)
	}
	_, qr := postQuery(t, ts, `{"s":0,"t":2,"k":2}`)
	if qr.Count != 2 { // 0->2 direct and 0->1->2
		t.Fatalf("post-insert count = %d, want 2", qr.Count)
	}
	// "flush":true publishes inline.
	resp, out = post("/insert", `{"edges":[{"from":2,"to":1}],"flush":true}`)
	if resp.StatusCode != http.StatusOK || out["pending"].(float64) != 0 {
		t.Fatalf("insert+flush = %d %v", resp.StatusCode, out)
	}
}

func TestAccessLogLines(t *testing.T) {
	g, err := pathenum.NewGraph(4, []pathenum.Edge{
		{From: 0, To: 1}, {From: 0, To: 2},
		{From: 1, To: 3}, {From: 2, To: 3},
		{From: 3, To: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	engine, err := pathenum.NewEngine(g, pathenum.EngineConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	ts := httptest.NewServer(New(engine, nil, Config{AccessLog: &buf}).Handler())
	t.Cleanup(ts.Close)

	postQuery(t, ts, `{"s":0,"t":3,"k":3,"paths":true}`)
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(`not json`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d access-log lines, want 2: %q", len(lines), buf.String())
	}
	var ok accessRecord
	if err := json.Unmarshal([]byte(lines[0]), &ok); err != nil {
		t.Fatalf("line 1 is not JSON: %v", err)
	}
	if ok.ID == "" || ok.Method != "POST" || ok.Path != "/query" || ok.Status != 200 {
		t.Fatalf("line 1 = %+v", ok)
	}
	if ok.Plan == "" || ok.Paths != 2 || ok.Millis < 0 {
		t.Fatalf("line 1 missing run annotations: %+v", ok)
	}
	var bad accessRecord
	if err := json.Unmarshal([]byte(lines[1]), &bad); err != nil {
		t.Fatalf("line 2 is not JSON: %v", err)
	}
	if bad.Status != 400 || bad.ID == ok.ID {
		t.Fatalf("line 2 = %+v", bad)
	}
}

// TestStatsMatchesRegistry pins the /stats back-compat contract: the
// JSON shape predates the registry but is now assembled from it, so the
// two views must agree.
func TestStatsMatchesRegistry(t *testing.T) {
	ts := testServer(t, nil)
	postQuery(t, ts, `{"s":0,"t":3,"k":3}`)
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Vertices      int        `json:"vertices"`
		Edges         int64      `json:"edges"`
		AvgDegree     float64    `json:"avgDegree"`
		Epoch         uint64     `json:"epoch"`
		FrontierCache cacheStats `json:"frontierCache"`
		Pool          poolStats  `json:"pool"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Vertices != 4 || stats.Edges != 5 || stats.AvgDegree != 1.25 {
		t.Fatalf("graph stats = %+v", stats)
	}
	if stats.Pool.Workers != 2 || stats.FrontierCache.Capacity <= 0 {
		t.Fatalf("pool/cache stats = %+v", stats)
	}
	if stats.FrontierCache.Misses == 0 {
		t.Fatal("cold query should have missed the frontier cache")
	}
}

// TestReadyzOracleRebuildNote: while a background oracle rebuild is in
// flight the replica stays ready (degraded capacity is not drained
// capacity) but /readyz carries the degraded note; once the rebuild
// lands the note disappears.
func TestReadyzOracleRebuildNote(t *testing.T) {
	g := gen.BarabasiAlbert(30000, 5, 121)
	engine, err := pathenum.NewEngine(g, pathenum.EngineConfig{Workers: 2, OracleLandmarks: 64})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(engine, nil, Config{}).Handler())
	t.Cleanup(ts.Close)

	getReady := func() (int, map[string]any) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	// Catch the degraded window: a publishing insert opens it, and the
	// 64-landmark build over 30k vertices keeps it open across an HTTP
	// round trip. Retry with fresh inserts in case a window closes early.
	caught := false
	for to := pathenum.VertexID(1); to <= 32 && !caught; to++ {
		if _, err := engine.Insert(0, to); err != nil {
			t.Fatal(err)
		}
		if engine.OracleLag() <= 0 {
			continue // rebuild already landed; open another window
		}
		code, body := getReady()
		if code != http.StatusOK {
			t.Fatalf("degraded readyz = %d, want 200 (degraded is not drained)", code)
		}
		if body["oracleDegraded"] != true {
			continue // window closed between the lag check and the GET
		}
		if lag, ok := body["oracleLagSeconds"].(float64); !ok || lag <= 0 {
			t.Fatalf("degraded readyz lag = %v, want > 0", body["oracleLagSeconds"])
		}
		caught = true
	}
	if !caught {
		t.Fatal("never observed a degraded readyz window across 32 inserts")
	}

	if err := engine.WaitOracle(context.Background()); err != nil {
		t.Fatal(err)
	}
	_, body := getReady()
	if _, present := body["oracleDegraded"]; present {
		t.Fatalf("readyz still carries the degraded note after rebuild: %v", body)
	}
}

// laggedEngine pins OracleLag so the shed threshold is testable without
// racing a real rebuild window.
type laggedEngine struct {
	*pathenum.Engine
	lag time.Duration
}

func (l *laggedEngine) OracleLag() time.Duration { return l.lag }

// TestReadyzShedsOnOracleLag: past Config.ShedOracleLag the replica
// stops reporting ready — a rebuild stuck that long is backpressure a
// load balancer should route around — and the shed counter ticks.
func TestReadyzShedsOnOracleLag(t *testing.T) {
	g := gen.BarabasiAlbert(60, 3, 5)
	engine, err := pathenum.NewEngine(g, pathenum.EngineConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	lagged := &laggedEngine{Engine: engine}
	ts := httptest.NewServer(New(lagged, nil, Config{ShedOracleLag: 100 * time.Millisecond}).Handler())
	t.Cleanup(ts.Close)

	getReady := func() (int, map[string]any) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	// Below the threshold: degraded note, still ready.
	lagged.lag = 50 * time.Millisecond
	code, body := getReady()
	if code != http.StatusOK || body["oracleDegraded"] != true {
		t.Fatalf("sub-threshold readyz = %d %v, want 200 with degraded note", code, body)
	}
	if engine.Metrics().Snapshot()["pathenum_oracle_lag_shed_total"] != 0 {
		t.Fatal("shed counter ticked below the threshold")
	}

	// Past the threshold: 503 with a reason, counter ticks.
	lagged.lag = 150 * time.Millisecond
	code, body = getReady()
	if code != http.StatusServiceUnavailable || body["ready"] != false {
		t.Fatalf("lagged readyz = %d %v, want 503 not-ready", code, body)
	}
	if reason, _ := body["reason"].(string); !strings.Contains(reason, "oracle rebuild lag") {
		t.Fatalf("lagged readyz reason = %v", body["reason"])
	}
	if got := engine.Metrics().Snapshot()["pathenum_oracle_lag_shed_total"]; got != 1 {
		t.Fatalf("pathenum_oracle_lag_shed_total = %v, want 1", got)
	}

	// Recovery: lag clears, the replica is ready again.
	lagged.lag = 0
	if code, _ = getReady(); code != http.StatusOK {
		t.Fatalf("recovered readyz = %d, want 200", code)
	}
}

// TestServerServesShardEngine pins the Engine interface: the HTTP layer
// must serve a sharded engine through the same mux, cross-shard queries
// included.
func TestServerServesShardEngine(t *testing.T) {
	g := gen.BarabasiAlbert(200, 4, 9)
	reg := pathenum.NewMetricsRegistry()
	eng, err := shard.New(g, 2, shard.Config{Engine: pathenum.EngineConfig{Workers: 2, Metrics: reg}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(eng, nil, Config{}).Handler())
	t.Cleanup(ts.Close)

	// Find one cross-shard pair with a non-empty answer.
	var q pathenum.Query
	found := false
	for s := 0; s < 200 && !found; s++ {
		for tt := 0; tt < 200 && !found; tt++ {
			if s == tt || eng.Owner(pathenum.VertexID(s)) == eng.Owner(pathenum.VertexID(tt)) {
				continue
			}
			cand := pathenum.Query{S: pathenum.VertexID(s), T: pathenum.VertexID(tt), K: 4}
			if c, cerr := pathenum.Count(g, cand); cerr == nil && c > 0 {
				q, found = cand, true
			}
		}
	}
	if !found {
		t.Fatal("no cross-shard query with results")
	}
	want, err := pathenum.Count(g, q)
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(ts.URL+"/query", "application/json",
		strings.NewReader(fmt.Sprintf(`{"s":%d,"t":%d,"k":%d}`, q.S, q.T, q.K)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr struct {
		Count     uint64 `json:"count"`
		Completed bool   `json:"completed"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || qr.Count != want || !qr.Completed {
		t.Fatalf("sharded /query = %d %+v, want %d paths", resp.StatusCode, qr, want)
	}

	// One scrape covers the shard layer too.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	mbody, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, series := range []string{"pathenum_shard_count", "pathenum_shard_cross_queries_total"} {
		if !bytes.Contains(mbody, []byte(series)) {
			t.Fatalf("/metrics missing %s", series)
		}
	}
}
