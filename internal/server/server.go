// Package server is the HTTP face of the engine, shared by the
// pathenumd daemon and in-process harnesses (the loadpath self-serve
// mode, httptest-based tests). It wires the query surfaces (/query,
// /paths, /batch), the engine write path (/insert, /flush), and the
// production observability layer: GET /metrics in Prometheus text
// exposition, a liveness/readiness split (/healthz, /readyz with
// load-shedding), a structured NDJSON access log, and GET /stats
// assembled from the engine's metrics registry.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"iter"
	"net/http"
	"strconv"
	"time"

	"pathenum"
)

// Engine is the query/write surface the HTTP layer serves. Both
// pathenum.Engine and the sharded shard.Engine implement it, so the
// daemon switches images with a constructor choice — no handler knows
// which one is behind the mux.
type Engine interface {
	Graph() *pathenum.Graph
	Epoch() uint64
	PendingWrites() int
	PoolStats() pathenum.PoolStats
	OracleLag() time.Duration
	Metrics() *pathenum.MetricsRegistry
	Insert(from, to pathenum.VertexID) (bool, error)
	Flush() error
	ExecuteWith(ctx context.Context, q pathenum.Query, opts pathenum.Options) (*pathenum.Result, error)
	ExecuteAllContext(ctx context.Context, queries []pathenum.Query, opts pathenum.Options) ([]*pathenum.Result, []error)
	ExecuteBatch(ctx context.Context, queries []pathenum.Query, opts pathenum.Options) ([]*pathenum.Result, []error, *pathenum.BatchStats)
	Stream(ctx context.Context, req pathenum.Request) iter.Seq2[pathenum.Path, error]
	StreamBatch(ctx context.Context, queries []pathenum.Query, opts pathenum.Options) iter.Seq[pathenum.BatchItem]
}

// queryRequest is the JSON body of POST /query.
type queryRequest struct {
	S        int64  `json:"s"`
	T        int64  `json:"t"`
	K        int    `json:"k"`
	Method   string `json:"method,omitempty"`   // auto | dfs | join
	Limit    uint64 `json:"limit,omitempty"`    // cap on enumerated results
	Paths    bool   `json:"paths,omitempty"`    // include path vertex lists
	Timeout  string `json:"timeout,omitempty"`  // e.g. "500ms"
	Parallel int    `json:"parallel,omitempty"` // intra-query fan-out (0 = sequential, capped at engine workers)
}

// queryResponse is the JSON reply.
type queryResponse struct {
	Count     uint64    `json:"count"`
	Completed bool      `json:"completed"`
	Plan      string    `json:"plan"`
	Cut       int       `json:"cut,omitempty"`
	Millis    float64   `json:"ms"`
	Paths     [][]int64 `json:"paths,omitempty"`
}

// Config tunes the HTTP layer; the zero value serves with the defaults.
type Config struct {
	// MaxPaths caps the materialized paths per /query response
	// (default 1000). Streaming endpoints are not capped.
	MaxPaths uint64
	// AccessLog, when non-nil, receives one JSON line per request:
	// request id, method, path, status, duration, and the handler
	// annotations (plan, path count). Writes are serialized.
	AccessLog io.Writer
	// ShedUtilization is the pool-utilization threshold at which
	// GET /readyz reports 503 so a load balancer drains traffic
	// (default 2.0 — in-flight demand at twice the worker count).
	// Negative disables shedding.
	ShedUtilization float64
	// ShedOracleLag is the oracle rebuild lag past which GET /readyz
	// sheds with 503: a replica serving unpruned for that long is
	// degraded enough to drain. Zero disables lag shedding (rebuild lag
	// stays informational in the /readyz body).
	ShedOracleLag time.Duration
}

// DefaultShedUtilization is the /readyz shedding threshold used when
// Config.ShedUtilization is 0.
const DefaultShedUtilization = 2.0

// Server wires the engine behind an HTTP API. All handlers are safe for
// concurrent use: query state is per request.
type Server struct {
	engine Engine
	// orig maps dense ids back to the input file's ids (nil = identity).
	orig    []int64
	toDense map[int64]pathenum.VertexID
	// maxPaths caps the number of materialized paths per response.
	maxPaths uint64
	shed     float64
	shedLag  time.Duration
	log      *accessLogger
	metrics  *httpMetrics
}

// New builds a server over engine — a pathenum.Engine or a sharded
// shard.Engine. orig maps dense vertex ids back to the input file's ids
// (nil = identity). The server registers its HTTP series on the
// engine's metrics registry, so one /metrics scrape covers both layers.
func New(engine Engine, orig []int64, cfg Config) *Server {
	s := &Server{engine: engine, orig: orig, maxPaths: cfg.MaxPaths,
		shed: cfg.ShedUtilization, shedLag: cfg.ShedOracleLag}
	if s.maxPaths == 0 {
		s.maxPaths = 1000
	}
	if s.shed == 0 {
		s.shed = DefaultShedUtilization
	}
	if cfg.AccessLog != nil {
		s.log = newAccessLogger(cfg.AccessLog)
	}
	s.metrics = newHTTPMetrics(engine.Metrics())
	if orig != nil {
		s.toDense = make(map[int64]pathenum.VertexID, len(orig))
		for dense, raw := range orig {
			s.toDense[raw] = pathenum.VertexID(dense)
		}
	}
	return s
}

func (s *Server) dense(raw int64) (pathenum.VertexID, bool) {
	if s.toDense == nil {
		n := int64(s.engine.Graph().NumVertices())
		if raw < 0 || raw >= n {
			return 0, false
		}
		return pathenum.VertexID(raw), true
	}
	v, ok := s.toDense[raw]
	return v, ok
}

func (s *Server) raw(dense pathenum.VertexID) int64 {
	if s.orig == nil {
		return int64(dense)
	}
	return s.orig[dense]
}

// rawPath maps a result path back to the input file's vertex ids.
func (s *Server) rawPath(p pathenum.Path) []int64 {
	out := make([]int64, len(p))
	for i, v := range p {
		out[i] = s.raw(v)
	}
	return out
}

// Handler builds the route table, each route wrapped in the
// access-log + HTTP-metrics middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	route := func(pattern, name string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.observe(name, h))
	}
	route("POST /query", "query", s.handleQuery)
	route("POST /paths", "paths", s.handlePaths)
	route("POST /batch", "batch", s.handleBatch)
	route("POST /insert", "insert", s.handleInsert)
	route("POST /flush", "flush", s.handleFlush)
	route("GET /healthz", "healthz", s.handleHealth)
	route("GET /readyz", "readyz", s.handleReady)
	route("GET /stats", "stats", s.handleStats)
	route("GET /metrics", "metrics", s.engine.Metrics().Handler().ServeHTTP)
	return mux
}

// ndjsonContentType marks the streaming responses: one JSON object per
// line, flushed as produced.
const ndjsonContentType = "application/x-ndjson"

// streamBuffer is how far enumeration may run ahead of the HTTP write on
// the streaming endpoints (Request.Buffer): enough to hide per-line
// encode/flush latency without buffering a result set.
const streamBuffer = 32

// handleHealth is the liveness probe: the process is up and the handler
// loop runs. Readiness (should this replica receive traffic?) is
// /readyz — a saturated or write-lagged server is alive but not ready.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

// handleReady is the readiness probe: 200 while the replica should
// receive traffic, 503 when the pool is saturated past the shedding
// threshold. The body carries the signals a load balancer (or operator)
// sheds on — epoch, pending writes, pool occupancy — in both states.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	ps := s.engine.PoolStats()
	util := ps.Utilization()
	body := map[string]any{
		"ready":           true,
		"epoch":           s.engine.Epoch(),
		"pendingWrites":   s.engine.PendingWrites(),
		"utilization":     util,
		"workers":         ps.Workers,
		"inFlightQueries": ps.InFlightQueries,
	}
	// A rebuild in flight means queries serve unpruned (correct, slower)
	// until the background worker lands a fresh oracle. By default that is
	// informational — degraded capacity is not drained capacity — but past
	// the configured ShedOracleLag the replica sheds: a rebuild stuck that
	// long is backpressure a load balancer should route around.
	lag := s.engine.OracleLag()
	if lag > 0 {
		body["oracleDegraded"] = true
		body["oracleLagSeconds"] = lag.Seconds()
	}
	if s.shed >= 0 && util >= s.shed {
		body["ready"] = false
		body["reason"] = fmt.Sprintf("pool saturated: utilization %.2f >= %.2f", util, s.shed)
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	if s.shedLag > 0 && lag >= s.shedLag {
		s.metrics.oracleShed.Inc()
		body["ready"] = false
		body["reason"] = fmt.Sprintf("oracle rebuild lag %s >= %s", lag, s.shedLag)
		writeJSON(w, http.StatusServiceUnavailable, body)
		return
	}
	writeJSON(w, http.StatusOK, body)
}

// cacheStats is the wire form of the engine's frontier-cache counters.
type cacheStats struct {
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Evictions     uint64 `json:"evictions"`
	Invalidations uint64 `json:"invalidations"`
	Entries       int    `json:"entries"`
	Capacity      int    `json:"capacity"`
	Bytes         int64  `json:"bytes"`
}

// memStats is the wire form of the engine's memory-budget ledger
// (pathenum_mem_* series). All-zero when the engine runs unbudgeted.
type memStats struct {
	BudgetBytes      int64  `json:"budgetBytes"`
	UsedBytes        int64  `json:"usedBytes"`
	CacheBytes       int64  `json:"cacheBytes"`
	ScratchBytes     int64  `json:"scratchBytes"`
	BuildBytes       int64  `json:"buildBytes"`
	JoinFallbacks    uint64 `json:"joinFallbacks"`
	DepositsRejected uint64 `json:"depositsRejected"`
}

// poolStats is the wire form of the engine's worker-pool occupancy: the
// utilization of the pool and the intra-query parallel shards in flight,
// so a parallel speedup is observable from the daemon, not just in
// benchmarks.
type poolStats struct {
	Workers         int     `json:"workers"`
	InFlightQueries int     `json:"inFlightQueries"`
	InFlightShards  int     `json:"inFlightShards"`
	Utilization     float64 `json:"utilization"`
}

// handleStats serves the pre-registry JSON stats shape, now assembled
// from the engine's metrics registry snapshot — one source of truth with
// GET /metrics. avgDegree is derived (edges/vertices) rather than
// registered; the response shape is unchanged for existing consumers.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	snap := s.engine.Metrics().Snapshot()
	vertices := snap["pathenum_graph_vertices"]
	edges := snap["pathenum_graph_edges"]
	avgDegree := 0.0
	if vertices > 0 {
		avgDegree = edges / vertices
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"vertices":  int(vertices),
		"edges":     int64(edges),
		"avgDegree": avgDegree,
		"epoch":     uint64(snap["pathenum_graph_epoch"]),
		"frontierCache": cacheStats{
			Hits:          uint64(snap["pathenum_frontier_cache_hits_total"]),
			Misses:        uint64(snap["pathenum_frontier_cache_misses_total"]),
			Evictions:     uint64(snap["pathenum_frontier_cache_evictions_total"]),
			Invalidations: uint64(snap["pathenum_frontier_cache_invalidations_total"]),
			Entries:       int(snap["pathenum_frontier_cache_entries"]),
			Capacity:      int(snap["pathenum_frontier_cache_capacity"]),
			Bytes:         int64(snap["pathenum_frontier_cache_bytes"]),
		},
		"mem": memStats{
			BudgetBytes:      int64(snap["pathenum_mem_budget_bytes"]),
			UsedBytes:        int64(snap["pathenum_mem_bytes"]),
			CacheBytes:       int64(snap["pathenum_mem_cache_bytes"]),
			ScratchBytes:     int64(snap["pathenum_mem_scratch_bytes"]),
			BuildBytes:       int64(snap["pathenum_mem_build_bytes"]),
			JoinFallbacks:    uint64(snap["pathenum_mem_join_fallbacks_total"]),
			DepositsRejected: uint64(snap["pathenum_mem_deposits_rejected_total"]),
		},
		"pool": poolStats{
			Workers:         int(snap["pathenum_pool_workers"]),
			InFlightQueries: int(snap["pathenum_pool_inflight_queries"]),
			InFlightShards:  int(snap["pathenum_pool_inflight_shards"]),
			Utilization:     snap["pathenum_pool_utilization"],
		},
	})
}

// insertRequest is the JSON body of POST /insert: edges in the input
// file's vertex ids, applied through the engine write path. Vertices
// must already exist (the graph's vertex set is fixed at load).
type insertRequest struct {
	Edges []insertEdge `json:"edges"`
	// Flush forces the applied edges into the serving snapshot even if
	// EngineConfig.SnapshotEvery would keep buffering them.
	Flush bool `json:"flush,omitempty"`
}

type insertEdge struct {
	From int64 `json:"from"`
	To   int64 `json:"to"`
}

// insertResponse reports what the write path did. Pending is the
// insertions applied but not yet published (SnapshotEvery
// amortization); Epoch identifies the serving graph after the call.
type insertResponse struct {
	Applied int    `json:"applied"`
	Ignored int    `json:"ignored"` // duplicates and self-loops
	Pending int    `json:"pending"`
	Epoch   uint64 `json:"epoch"`
}

// maxInsertEdges bounds one POST /insert body.
const maxInsertEdges = 10000

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	var req insertRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Edges) == 0 {
		httpError(w, http.StatusBadRequest, "insert needs at least one edge")
		return
	}
	if len(req.Edges) > maxInsertEdges {
		httpError(w, http.StatusBadRequest, "insert of %d edges exceeds limit %d", len(req.Edges), maxInsertEdges)
		return
	}
	// Resolve every endpoint before applying anything, so a bad edge is a
	// clean 400 instead of a half-applied batch.
	type densePair struct{ from, to pathenum.VertexID }
	resolved := make([]densePair, len(req.Edges))
	for i, e := range req.Edges {
		from, ok := s.dense(e.From)
		if !ok {
			httpError(w, http.StatusBadRequest, "edge %d: unknown source vertex %d", i, e.From)
			return
		}
		to, ok := s.dense(e.To)
		if !ok {
			httpError(w, http.StatusBadRequest, "edge %d: unknown target vertex %d", i, e.To)
			return
		}
		resolved[i] = densePair{from, to}
	}
	var resp insertResponse
	for _, e := range resolved {
		added, err := s.engine.Insert(e.from, e.to)
		if err != nil {
			httpError(w, http.StatusInternalServerError, "insert failed: %v", err)
			return
		}
		if added {
			resp.Applied++
		} else {
			resp.Ignored++
		}
	}
	if req.Flush {
		if err := s.engine.Flush(); err != nil {
			httpError(w, http.StatusInternalServerError, "flush failed: %v", err)
			return
		}
	}
	resp.Pending = s.engine.PendingWrites()
	resp.Epoch = s.engine.Epoch()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleFlush(w http.ResponseWriter, _ *http.Request) {
	if err := s.engine.Flush(); err != nil {
		httpError(w, http.StatusInternalServerError, "flush failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"pending": s.engine.PendingWrites(),
		"epoch":   s.engine.Epoch(),
	})
}

// parseOptions converts wire-level method/limit/timeout/parallel to
// per-call option overrides (zero fields inherit the engine defaults at
// execution time; parallel is capped at the engine's worker count by the
// merge).
func parseOptions(method string, limit uint64, timeout string, parallel int) (pathenum.Options, error) {
	if parallel < 0 {
		return pathenum.Options{}, fmt.Errorf("bad parallel %d: must be >= 0", parallel)
	}
	opts := pathenum.Options{Limit: limit, Parallelism: parallel}
	switch method {
	case "", "auto":
		opts.Method = pathenum.Auto
	case "dfs":
		opts.Method = pathenum.DFS
	case "join":
		opts.Method = pathenum.Join
	default:
		return pathenum.Options{}, fmt.Errorf("unknown method %q", method)
	}
	if timeout != "" {
		d, err := time.ParseDuration(timeout)
		if err != nil {
			return pathenum.Options{}, fmt.Errorf("bad timeout: %v", err)
		}
		opts.Timeout = d
	}
	return opts, nil
}

// resolveQuery maps wire-level (raw) endpoints to a dense query.
func (s *Server) resolveQuery(sRaw, tRaw int64, k int) (pathenum.Query, error) {
	src, ok := s.dense(sRaw)
	if !ok {
		return pathenum.Query{}, fmt.Errorf("unknown source vertex %d", sRaw)
	}
	dst, ok := s.dense(tRaw)
	if !ok {
		return pathenum.Query{}, fmt.Errorf("unknown target vertex %d", tRaw)
	}
	return pathenum.Query{S: src, T: dst, K: k}, nil
}

// parseQuery converts the wire request to a dense query plus per-call
// option overrides. Paths materialization is handled by the caller (it
// needs a response-local Emit closure).
func (s *Server) parseQuery(req queryRequest) (pathenum.Query, pathenum.Options, error) {
	q, err := s.resolveQuery(req.S, req.T, req.K)
	if err != nil {
		return pathenum.Query{}, pathenum.Options{}, err
	}
	opts, err := parseOptions(req.Method, req.Limit, req.Timeout, req.Parallel)
	if err != nil {
		return pathenum.Query{}, pathenum.Options{}, err
	}
	return q, opts, nil
}

// parallelOverride applies the ?parallel= URL query parameter over the
// body's JSON field — a curl-friendly way to A/B the fan-out without
// editing the request body.
func parallelOverride(r *http.Request, body int) (int, error) {
	raw := r.URL.Query().Get("parallel")
	if raw == "" {
		return body, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad parallel %q: must be an integer >= 0", raw)
	}
	return v, nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	q, opts, err := s.parseQuery(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if opts.Parallelism, err = parallelOverride(r, opts.Parallelism); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	var paths [][]int64
	if req.Paths {
		// Clamp the enumeration itself, not just the stored slice: once the
		// response cannot grow there is no point materializing further
		// results, so the run stops (and reports Completed=false) at the cap.
		pathCap := req.Limit
		if pathCap == 0 || pathCap > s.maxPaths {
			pathCap = s.maxPaths
		}
		opts.Limit = pathCap
		opts.Emit = func(p []pathenum.VertexID) bool {
			paths = append(paths, s.rawPath(p))
			return true
		}
	}

	// Running through the engine (rather than a bare Enumerate on the
	// engine's graph) buys session buffer reuse, the engine oracle and
	// cancellation when the client disconnects.
	start := time.Now()
	res, err := s.engine.ExecuteWith(r.Context(), q, opts)
	if err != nil {
		httpError(w, http.StatusBadRequest, "query failed: %v", err)
		return
	}
	annotate(r, res.Plan.Method.String(), res.Counters.Results)
	writeJSON(w, http.StatusOK, queryResponse{
		Count:     res.Counters.Results,
		Completed: res.Completed,
		Plan:      res.Plan.Method.String(),
		Cut:       res.Plan.Cut,
		Millis:    float64(time.Since(start)) / float64(time.Millisecond),
		Paths:     paths,
	})
}

// pathLine is one NDJSON line of POST /paths: a single result path in the
// input file's vertex ids.
type pathLine struct {
	Path []int64 `json:"path"`
}

// doneLine is the trailing NDJSON line of POST /paths: the run summary a
// buffered /query response would have carried.
type doneLine struct {
	Done      bool    `json:"done"`
	Count     uint64  `json:"count"`
	Completed bool    `json:"completed"`
	Plan      string  `json:"plan,omitempty"`
	Cut       int     `json:"cut,omitempty"`
	Millis    float64 `json:"ms"`
}

// handlePaths streams result paths as NDJSON with per-path flush: the
// first line reaches the client while enumeration is still running, and a
// client disconnect cancels the enumeration through the request context —
// the streaming face of /query. The body is the /query wire format (the
// "paths" flag is implied); the final line is a {"done":true,...} summary.
// Unlike /query, results are not capped at the server's maxPaths: delivery
// is incremental, so the client bounds the response with "limit" or by
// closing the connection.
func (s *Server) handlePaths(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	q, opts, err := s.parseQuery(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if opts.Parallelism, err = parallelOverride(r, opts.Parallelism); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	sreq := pathenum.NewRequest(q)
	sreq.Method = opts.Method
	sreq.Limit = opts.Limit
	sreq.Timeout = opts.Timeout
	sreq.Parallelism = opts.Parallelism
	sreq.Buffer = streamBuffer
	var sum *pathenum.Result
	sreq.OnResult = func(res *pathenum.Result) { sum = res }

	start := time.Now()
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	wrote := false
	for p, serr := range s.engine.Stream(r.Context(), sreq) {
		if serr != nil {
			// Terminal errors surface before any path: pre-stream they are
			// a clean 400; mid-stream (not reachable today) they become a
			// trailing error line on the already-committed response.
			if !wrote {
				httpError(w, http.StatusBadRequest, "query failed: %v", serr)
			} else {
				_ = enc.Encode(map[string]string{"error": serr.Error()})
			}
			return
		}
		if !wrote {
			w.Header().Set("Content-Type", ndjsonContentType)
			wrote = true
		}
		if err := enc.Encode(pathLine{Path: s.rawPath(p)}); err != nil {
			return // client went away; the context cancels the enumeration
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	if !wrote {
		w.Header().Set("Content-Type", ndjsonContentType)
	}
	line := doneLine{Done: true, Millis: float64(time.Since(start)) / float64(time.Millisecond)}
	if sum != nil {
		line.Count = sum.Counters.Results
		line.Completed = sum.Completed
		line.Plan = sum.Plan.Method.String()
		line.Cut = sum.Plan.Cut
		annotate(r, line.Plan, line.Count)
	}
	_ = enc.Encode(line)
	if flusher != nil {
		flusher.Flush()
	}
}

// batchRequest is the JSON body of POST /batch: a list of queries answered
// against the shared engine, plus batch-wide option overrides. Responses
// carry counts only (no path materialization). Naive opts out of the
// shared-computation batch subsystem and fans the queries out
// independently (the ExecuteAllContext baseline).
type batchRequest struct {
	Queries []queryRequest `json:"queries"`
	Method  string         `json:"method,omitempty"`
	Limit   uint64         `json:"limit,omitempty"`
	Timeout string         `json:"timeout,omitempty"`
	Naive   bool           `json:"naive,omitempty"`
	// Stream switches the response to NDJSON with per-query flush: one
	// {"index":i,...} line the moment each query's group completes
	// (completion order, not input order), closed by a {"done":true,...}
	// line carrying the batch stats. Client disconnect cancels the
	// remaining work fail-fast. Mutually exclusive with Naive — streaming
	// delivery is a property of the shared-computation scheduler.
	Stream bool `json:"stream,omitempty"`
}

// batchStats is the wire form of the batch subsystem's per-batch report.
// BFSPassesRun is the count actually executed after frontier-cache hits
// (0 on a fully warm repeat batch); Epoch identifies the graph version
// the batch ran on.
type batchStats struct {
	Queries        int     `json:"queries"`
	Invalid        int     `json:"invalid,omitempty"`
	Unique         int     `json:"unique"`
	Deduped        int     `json:"deduped"`
	Groups         int     `json:"groups"`
	SharedSource   int     `json:"sharedSource"`
	SharedTarget   int     `json:"sharedTarget"`
	Singletons     int     `json:"singletons"`
	BFSPasses      int     `json:"bfsPasses"`
	BFSPassesNaive int     `json:"bfsPassesNaive"`
	BFSPassesSaved int     `json:"bfsPassesSaved"`
	BFSPassesRun   int     `json:"bfsPassesRun"`
	SharedFront    int     `json:"sharedFrontiers"`
	TwoSidedFront  int     `json:"twoSidedFrontiers"`
	CacheHits      int     `json:"cacheHits"`
	CacheMisses    int     `json:"cacheMisses"`
	SharedBFSMs    float64 `json:"sharedBfsMs"`
	Epoch          uint64  `json:"epoch"`
}

// batchResult is one slot of the batch response; Error is set instead of
// the result fields when that query failed.
type batchResult struct {
	Count     uint64 `json:"count"`
	Completed bool   `json:"completed"`
	Plan      string `json:"plan,omitempty"`
	Error     string `json:"error,omitempty"`
}

// maxBatchQueries bounds one POST /batch body.
const maxBatchQueries = 10000

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Queries) == 0 {
		httpError(w, http.StatusBadRequest, "batch needs at least one query")
		return
	}
	if len(req.Queries) > maxBatchQueries {
		httpError(w, http.StatusBadRequest, "batch of %d exceeds limit %d", len(req.Queries), maxBatchQueries)
		return
	}
	opts, err := parseOptions(req.Method, req.Limit, req.Timeout, 0)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Stream && req.Naive {
		httpError(w, http.StatusBadRequest, "stream and naive are mutually exclusive")
		return
	}

	out := make([]batchResult, len(req.Queries))
	queries := make([]pathenum.Query, 0, len(req.Queries))
	slots := make([]int, 0, len(req.Queries))
	for i, qr := range req.Queries {
		// Options are batch-wide; reject per-query overrides loudly rather
		// than dropping them.
		if qr.Method != "" || qr.Limit != 0 || qr.Timeout != "" || qr.Paths || qr.Parallel != 0 {
			out[i].Error = "per-query method/limit/timeout/paths/parallel are not supported in /batch; set them batch-wide"
			continue
		}
		q, qerr := s.resolveQuery(qr.S, qr.T, qr.K)
		if qerr != nil {
			out[i].Error = qerr.Error()
			continue
		}
		queries = append(queries, q)
		slots = append(slots, i)
	}

	if req.Stream {
		s.streamBatch(w, r, opts, out, queries, slots)
		return
	}

	// The shared-computation batch subsystem is the default path: it
	// dedups identical queries and shares BFS frontiers across queries
	// with a common endpoint, reporting what it saved in the response
	// stats. "naive":true keeps the independent fan-out for comparison.
	start := time.Now()
	var (
		results []*pathenum.Result
		errs    []error
		stats   *pathenum.BatchStats
	)
	if req.Naive {
		results, errs = s.engine.ExecuteAllContext(r.Context(), queries, opts)
	} else {
		results, errs, stats = s.engine.ExecuteBatch(r.Context(), queries, opts)
	}
	var delivered uint64
	for j, i := range slots {
		if errs[j] != nil {
			out[i].Error = errs[j].Error()
			continue
		}
		out[i] = batchResult{
			Count:     results[j].Counters.Results,
			Completed: results[j].Completed,
			Plan:      results[j].Plan.Method.String(),
		}
		delivered += results[j].Counters.Results
	}
	annotate(r, "batch", delivered)
	resp := map[string]any{
		"results": out,
		"ms":      float64(time.Since(start)) / float64(time.Millisecond),
	}
	if stats != nil {
		resp["stats"] = s.toBatchStats(stats, len(req.Queries), len(req.Queries)-len(queries))
	}
	writeJSON(w, http.StatusOK, resp)
}

// toBatchStats converts the subsystem stats to the wire form. The planner
// only saw the queries that survived wire-level resolution; totalQueries
// and rejected reconcile the report with the client's batch (rejected
// slots count as invalid).
func (s *Server) toBatchStats(stats *pathenum.BatchStats, totalQueries, rejected int) batchStats {
	return batchStats{
		Queries:        totalQueries,
		Invalid:        stats.Invalid + rejected,
		Unique:         stats.Unique,
		Deduped:        stats.Deduped,
		Groups:         stats.Groups,
		SharedSource:   stats.SharedSourceGroups,
		SharedTarget:   stats.SharedTargetGroups,
		Singletons:     stats.Singletons,
		BFSPasses:      stats.BFSPasses,
		BFSPassesNaive: stats.BFSPassesNaive,
		BFSPassesSaved: stats.BFSPassesSaved,
		BFSPassesRun:   stats.BFSPassesRun,
		SharedFront:    stats.SharedFrontiers,
		TwoSidedFront:  stats.TwoSidedFrontiers,
		CacheHits:      stats.FrontierCacheHits,
		CacheMisses:    stats.FrontierCacheMisses,
		SharedBFSMs:    float64(stats.SharedBFS) / float64(time.Millisecond),
		Epoch:          s.engine.Epoch(),
	}
}

// batchLine is one NDJSON line of a streaming /batch response: the result
// (or error) of the query at the request's Index position, flushed as its
// group completes.
type batchLine struct {
	Index     int    `json:"index"`
	Count     uint64 `json:"count"`
	Completed bool   `json:"completed"`
	Plan      string `json:"plan,omitempty"`
	Error     string `json:"error,omitempty"`
}

// batchDoneLine closes a streaming /batch response.
type batchDoneLine struct {
	Done   bool        `json:"done"`
	Millis float64     `json:"ms"`
	Stats  *batchStats `json:"stats,omitempty"`
}

// streamBatch serves the NDJSON form of /batch: wire-rejected slots
// first, then one line per query in completion order via
// Engine.StreamBatch, then the done line with the batch stats. Write
// failures (client disconnect) abandon the stream, which cancels the
// remaining work through the request context with the scheduler's
// fail-fast semantics.
func (s *Server) streamBatch(w http.ResponseWriter, r *http.Request, opts pathenum.Options, out []batchResult, queries []pathenum.Query, slots []int) {
	w.Header().Set("Content-Type", ndjsonContentType)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	rejected := 0
	for i := range out {
		if out[i].Error == "" {
			continue
		}
		rejected++
		if err := enc.Encode(batchLine{Index: i, Error: out[i].Error}); err != nil {
			return
		}
		flush()
	}

	start := time.Now()
	var delivered uint64
	for item := range s.engine.StreamBatch(r.Context(), queries, opts) {
		if item.Index == -1 {
			done := batchDoneLine{Done: true, Millis: float64(time.Since(start)) / float64(time.Millisecond)}
			if item.Stats != nil {
				st := s.toBatchStats(item.Stats, len(out), rejected)
				done.Stats = &st
			}
			annotate(r, "batch", delivered)
			_ = enc.Encode(done)
			flush()
			return
		}
		line := batchLine{Index: slots[item.Index]}
		if item.Err != nil {
			line.Error = item.Err.Error()
		} else {
			line.Count = item.Result.Counters.Results
			line.Completed = item.Result.Completed
			line.Plan = item.Result.Plan.Method.String()
			delivered += line.Count
		}
		if err := enc.Encode(line); err != nil {
			return
		}
		flush()
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
