package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"

	"pathenum"
	"pathenum/internal/gen"
)

// parallelTestServer serves a denser random graph behind a 4-worker engine
// so the fan-out has real work to shard.
func parallelTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	g := gen.BarabasiAlbert(80, 3, 17)
	engine, err := pathenum.NewEngine(g, pathenum.EngineConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(engine, nil, Config{}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestQueryParallelAgrees: the "parallel" JSON field and the ?parallel=
// URL override both run the query through the sharded enumerators and
// report the same count as the sequential run.
func TestQueryParallelAgrees(t *testing.T) {
	ts := parallelTestServer(t)
	_, seq := postQuery(t, ts, `{"s":79,"t":0,"k":5}`)
	if seq.Count == 0 || !seq.Completed {
		t.Fatalf("sequential response = %+v", seq)
	}
	for _, body := range []string{
		`{"s":79,"t":0,"k":5,"parallel":2}`,
		`{"s":79,"t":0,"k":5,"parallel":4}`,
		`{"s":79,"t":0,"k":5,"parallel":64}`, // capped at engine workers
	} {
		resp, qr := postQuery(t, ts, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status = %d", body, resp.StatusCode)
		}
		if qr.Count != seq.Count || !qr.Completed {
			t.Fatalf("%s: response = %+v, want count %d", body, qr, seq.Count)
		}
	}
	// URL override wins over the body field.
	resp, err := http.Post(ts.URL+"/query?parallel=4", "application/json",
		strings.NewReader(`{"s":79,"t":0,"k":5}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var qr queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if qr.Count != seq.Count {
		t.Fatalf("?parallel=4 count = %d, want %d", qr.Count, seq.Count)
	}
}

// TestQueryParallelErrors: negative fan-out is rejected in both the body
// and the URL parameter.
func TestQueryParallelErrors(t *testing.T) {
	ts := testServer(t, nil)
	resp, _ := postQuery(t, ts, `{"s":0,"t":3,"k":3,"parallel":-1}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("parallel=-1 status = %d, want 400", resp.StatusCode)
	}
	resp2, err := http.Post(ts.URL+"/query?parallel=bogus", "application/json",
		strings.NewReader(`{"s":0,"t":3,"k":3}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("?parallel=bogus status = %d, want 400", resp2.StatusCode)
	}
}

// TestPathsParallelStream: /paths?parallel=N delivers the same path set
// as the sequential stream — merge-delivered, order-insensitive.
func TestPathsParallelStream(t *testing.T) {
	ts := parallelTestServer(t)
	collect := func(path, body string) []string {
		var keys []string
		for _, line := range ndjsonLines(t, ts, path, body) {
			if line["done"] == true {
				continue
			}
			raw, ok := line["path"].([]any)
			if !ok {
				t.Fatalf("path line = %v", line)
			}
			key := ""
			for _, v := range raw {
				key += "," + jsonNum(t, v)
			}
			keys = append(keys, key)
		}
		sort.Strings(keys)
		return keys
	}
	seq := collect("/paths", `{"s":79,"t":0,"k":4}`)
	if len(seq) == 0 {
		t.Fatal("sequential stream delivered no paths")
	}
	par := collect("/paths?parallel=4", `{"s":79,"t":0,"k":4}`)
	if len(par) != len(seq) {
		t.Fatalf("parallel stream %d paths, sequential %d", len(par), len(seq))
	}
	for i := range seq {
		if par[i] != seq[i] {
			t.Fatalf("path set diverges at %d: %q vs %q", i, par[i], seq[i])
		}
	}
}

// TestStatsPool: /stats exposes the worker-pool gauges (worker count,
// in-flight queries and parallel shards, utilization).
func TestStatsPool(t *testing.T) {
	ts := testServer(t, nil)
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Pool *poolStats `json:"pool"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Pool == nil || stats.Pool.Workers != 2 {
		t.Fatalf("pool = %+v, want 2 workers", stats.Pool)
	}
	if stats.Pool.InFlightQueries != 0 || stats.Pool.InFlightShards != 0 || stats.Pool.Utilization != 0 {
		t.Fatalf("idle pool = %+v, want zero gauges", stats.Pool)
	}
}

// TestBatchRejectsPerQueryParallel: /batch options are batch-wide; a
// per-query "parallel" is rejected loudly, like the other overrides.
func TestBatchRejectsPerQueryParallel(t *testing.T) {
	ts := testServer(t, nil)
	_, br := postBatch(t, ts, `{"queries":[{"s":0,"t":3,"k":3,"parallel":2},{"s":1,"t":3,"k":3}]}`)
	if br.Results[0].Error == "" || !strings.Contains(br.Results[0].Error, "parallel") {
		t.Fatalf("slot 0 = %+v, want per-query parallel rejection", br.Results[0])
	}
	if br.Results[1].Error != "" || br.Results[1].Count == 0 {
		t.Fatalf("slot 1 = %+v, want clean result", br.Results[1])
	}
}
