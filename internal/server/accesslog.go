package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pathenum/internal/obs"
)

// accessRecord is the per-request log line. Plan and Paths are handler
// annotations (set via annotate after the run settles); the middleware
// fills the rest.
type accessRecord struct {
	ID     string  `json:"id"`
	Method string  `json:"method"`
	Path   string  `json:"path"`
	Status int     `json:"status"`
	Millis float64 `json:"ms"`
	Plan   string  `json:"plan,omitempty"`
	Paths  uint64  `json:"paths,omitempty"`
}

// accessLogger serializes JSON-line writes to the configured sink.
type accessLogger struct {
	mu  sync.Mutex
	enc *json.Encoder
}

func newAccessLogger(w io.Writer) *accessLogger {
	return &accessLogger{enc: json.NewEncoder(w)}
}

func (l *accessLogger) write(rec *accessRecord) {
	l.mu.Lock()
	defer l.mu.Unlock()
	_ = l.enc.Encode(rec)
}

// recKey carries the request's accessRecord through the context so
// handlers can annotate it.
type recKey struct{}

// annotate attaches the settled run's plan and delivered path count to
// the request's access-log line. A no-op when logging is disabled.
func annotate(r *http.Request, plan string, paths uint64) {
	if rec, ok := r.Context().Value(recKey{}).(*accessRecord); ok {
		rec.Plan = plan
		rec.Paths = paths
	}
}

// httpMetrics holds the HTTP layer's series, registered on the engine's
// registry so one scrape covers both layers. Per-handler duration
// histograms are pre-resolved; the requests-by-status counter resolves
// per request (registration is idempotent and off the enumerate path).
type httpMetrics struct {
	reg      *obs.Registry
	inflight *obs.Gauge
	duration map[string]*obs.Histogram
	// oracleShed counts /readyz responses shed because the oracle
	// rebuild lag crossed Config.ShedOracleLag.
	oracleShed *obs.Counter
}

// handlerNames is the fixed label set of the HTTP series — one per
// route, resolved at registration so scrapes show every handler at 0
// before its first request.
var handlerNames = []string{"query", "paths", "batch", "insert", "flush", "healthz", "readyz", "stats", "metrics"}

func newHTTPMetrics(reg *obs.Registry) *httpMetrics {
	m := &httpMetrics{
		reg:      reg,
		inflight: reg.Gauge("pathenum_http_inflight_requests", "HTTP requests currently being served."),
		duration: make(map[string]*obs.Histogram, len(handlerNames)),
		oracleShed: reg.Counter("pathenum_oracle_lag_shed_total",
			"Readiness probes shed because oracle rebuild lag crossed the threshold."),
	}
	for _, h := range handlerNames {
		m.duration[h] = reg.Histogram(obs.L("pathenum_http_request_duration_seconds", "handler", h),
			"HTTP request latency, by handler.")
	}
	return m
}

func (m *httpMetrics) observe(handler string, status int, elapsed time.Duration) {
	m.duration[handler].Observe(elapsed)
	m.reg.Counter(obs.L("pathenum_http_requests_total", "handler", handler, "code", strconv.Itoa(status)),
		"HTTP requests served, by handler and status code.").Inc()
}

// statusRecorder captures the response status for the log line and the
// metrics, passing Flush through so the NDJSON endpoints keep their
// per-line delivery.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// reqSeq numbers requests process-wide for the access log.
var reqSeq atomic.Uint64

// observe wraps a handler in the access-log and HTTP-metrics
// middleware: request id, per-handler latency histogram,
// requests-by-status counter, in-flight gauge, and (when configured)
// one structured log line per request.
func (s *Server) observe(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.metrics.inflight.Add(1)
		defer s.metrics.inflight.Add(-1)
		rec := &accessRecord{Method: r.Method, Path: r.URL.Path}
		sw := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		if s.log != nil {
			rec.ID = "req-" + strconv.FormatUint(reqSeq.Add(1), 10)
			r = r.WithContext(context.WithValue(r.Context(), recKey{}, rec))
		}
		h(sw, r)
		elapsed := time.Since(start)
		s.metrics.observe(name, sw.status, elapsed)
		if s.log != nil {
			rec.Status = sw.status
			rec.Millis = float64(elapsed) / float64(time.Millisecond)
			s.log.write(rec)
		}
	}
}
