package server

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"pathenum"
	"pathenum/internal/gen"
)

// testServer serves the diamond graph 0 -> {1,2} -> 3 plus 3 -> 0.
func testServer(t *testing.T, orig []int64) *httptest.Server {
	t.Helper()
	g, err := pathenum.NewGraph(4, []pathenum.Edge{
		{From: 0, To: 1}, {From: 0, To: 2},
		{From: 1, To: 3}, {From: 2, To: 3},
		{From: 3, To: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	// CacheAdmitDegree 1: every vertex of the tiny test graph sits below
	// the default admission degree; these tests exercise cache serving,
	// not admission policy.
	engine, err := pathenum.NewEngine(g, pathenum.EngineConfig{Workers: 2, CacheAdmitDegree: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(engine, orig, Config{}).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postQuery(t *testing.T, ts *httptest.Server, body string) (*http.Response, queryResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var qr queryResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			t.Fatal(err)
		}
	}
	return resp, qr
}

func TestHealthz(t *testing.T) {
	ts := testServer(t, nil)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestStats(t *testing.T) {
	ts := testServer(t, nil)
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats["vertices"].(float64) != 4 || stats["edges"].(float64) != 5 {
		t.Fatalf("stats = %v", stats)
	}
}

func TestQueryBasic(t *testing.T) {
	ts := testServer(t, nil)
	resp, qr := postQuery(t, ts, `{"s":0,"t":3,"k":3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if qr.Count != 2 || !qr.Completed {
		t.Fatalf("response = %+v", qr)
	}
	if qr.Plan == "" || qr.Millis < 0 {
		t.Fatalf("missing plan/timing: %+v", qr)
	}
}

func TestQueryWithPaths(t *testing.T) {
	ts := testServer(t, nil)
	_, qr := postQuery(t, ts, `{"s":0,"t":3,"k":3,"paths":true}`)
	if len(qr.Paths) != 2 {
		t.Fatalf("paths = %v", qr.Paths)
	}
	for _, p := range qr.Paths {
		if p[0] != 0 || p[len(p)-1] != 3 {
			t.Fatalf("bad path %v", p)
		}
	}
}

func TestQueryMethods(t *testing.T) {
	ts := testServer(t, nil)
	for _, m := range []string{"auto", "dfs", "join"} {
		_, qr := postQuery(t, ts, `{"s":0,"t":3,"k":3,"method":"`+m+`"}`)
		if qr.Count != 2 {
			t.Fatalf("method %s: count = %d", m, qr.Count)
		}
	}
}

func TestQueryLimit(t *testing.T) {
	ts := testServer(t, nil)
	_, qr := postQuery(t, ts, `{"s":0,"t":3,"k":3,"limit":1}`)
	if qr.Count != 1 || qr.Completed {
		t.Fatalf("limit response = %+v", qr)
	}
}

func TestQueryErrors(t *testing.T) {
	ts := testServer(t, nil)
	cases := []string{
		`not json`,
		`{"s":0,"t":0,"k":3}`,              // s == t
		`{"s":0,"t":3,"k":0}`,              // k < 1
		`{"s":99,"t":3,"k":3}`,             // unknown vertex
		`{"s":0,"t":3,"k":3,"method":"x"}`, // bad method
		`{"s":0,"t":3,"k":3,"timeout":"zzz"}`,
	}
	for _, body := range cases {
		resp, _ := postQuery(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status = %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestQueryRemappedIDs(t *testing.T) {
	// Original ids 100,101,102,103 map to dense 0..3.
	ts := testServer(t, []int64{100, 101, 102, 103})
	resp, qr := postQuery(t, ts, `{"s":100,"t":103,"k":3,"paths":true}`)
	if resp.StatusCode != http.StatusOK || qr.Count != 2 {
		t.Fatalf("remapped query: status=%d %+v", resp.StatusCode, qr)
	}
	for _, p := range qr.Paths {
		if p[0] != 100 || p[len(p)-1] != 103 {
			t.Fatalf("paths must use original ids: %v", p)
		}
	}
	// Dense ids are not valid raw ids here.
	resp, _ = postQuery(t, ts, `{"s":0,"t":3,"k":3}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("dense id should 400, got %d", resp.StatusCode)
	}
}

func TestQueryConcurrent(t *testing.T) {
	ts := testServer(t, nil)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/query", "application/json",
				strings.NewReader(`{"s":0,"t":3,"k":3}`))
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var qr queryResponse
			if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
				errs <- err
				return
			}
			if qr.Count != 2 {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestQueryPathsCapStopsEnumeration: once the materialization cap is hit,
// the run itself stops (Options.Limit is set coherently), so the response
// reports exactly the cap and Completed=false instead of counting on.
func TestQueryPathsCapStopsEnumeration(t *testing.T) {
	g := gen.Layered(5, 3) // 125 paths 0 -> 1 within k=4
	engine, err := pathenum.NewEngine(g, pathenum.EngineConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(engine, nil, Config{MaxPaths: 3})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	resp, qr := postQuery(t, ts, `{"s":0,"t":1,"k":4,"paths":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if qr.Count != 3 || len(qr.Paths) != 3 || qr.Completed {
		t.Fatalf("capped paths response: %+v", qr)
	}
	// An explicit limit below the cap still wins.
	_, qr = postQuery(t, ts, `{"s":0,"t":1,"k":4,"paths":true,"limit":2}`)
	if qr.Count != 2 || len(qr.Paths) != 2 {
		t.Fatalf("explicit limit response: %+v", qr)
	}
}

// TestQueryContextCancellation: cancelling the request context of an
// in-flight POST /query (a client disconnect) stops enumeration before
// natural completion — the handler returns promptly with completed=false.
func TestQueryContextCancellation(t *testing.T) {
	g := gen.Layered(30, 5) // 30^5 ~ 24M paths: far beyond the cancel window
	engine, err := pathenum.NewEngine(g, pathenum.EngineConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(engine, nil, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	req := httptest.NewRequest(http.MethodPost, "/query",
		strings.NewReader(`{"s":0,"t":1,"k":6,"method":"dfs"}`)).WithContext(ctx)
	rec := httptest.NewRecorder()
	start := time.Now()
	srv.handleQuery(rec, req)
	elapsed := time.Since(start)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d body %s", rec.Code, rec.Body.String())
	}
	var qr queryResponse
	if err := json.NewDecoder(rec.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if qr.Completed {
		t.Fatal("cancelled request must not run to completion")
	}
	if elapsed > 30*time.Second {
		t.Fatalf("handler took %v after cancellation", elapsed)
	}
}

type testBatchResponse struct {
	Results []batchResult `json:"results"`
	Millis  float64       `json:"ms"`
	Stats   *batchStats   `json:"stats"`
}

func postBatch(t *testing.T, ts *httptest.Server, body string) (*http.Response, testBatchResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var br testBatchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
			t.Fatal(err)
		}
	}
	return resp, br
}

func TestBatchBasic(t *testing.T) {
	ts := testServer(t, nil)
	resp, br := postBatch(t, ts, `{"queries":[{"s":0,"t":3,"k":3},{"s":1,"t":3,"k":3},{"s":3,"t":1,"k":2}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(br.Results) != 3 {
		t.Fatalf("results = %v", br.Results)
	}
	wantCounts := []uint64{2, 1, 1} // 3->0->1 within 2 hops
	for i, want := range wantCounts {
		r := br.Results[i]
		if r.Error != "" || r.Count != want || !r.Completed {
			t.Fatalf("slot %d: %+v, want count %d", i, r, want)
		}
	}
}

// TestBatchStats: the default /batch path runs the shared-computation
// subsystem and reports its planning stats — duplicates folded, shared
// groups formed, BFS passes saved.
func TestBatchStats(t *testing.T) {
	ts := testServer(t, nil)
	// Two duplicates of (0,3,3) plus a third query sharing source 0.
	resp, br := postBatch(t, ts, `{"queries":[{"s":0,"t":3,"k":3},{"s":0,"t":3,"k":3},{"s":0,"t":1,"k":3}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if br.Stats == nil {
		t.Fatal("default batch must report stats")
	}
	if br.Stats.Queries != 3 || br.Stats.Deduped != 1 || br.Stats.Unique != 2 {
		t.Fatalf("stats = %+v, want Queries=3 Deduped=1 Unique=2", br.Stats)
	}
	if br.Stats.SharedSource != 1 || br.Stats.BFSPassesSaved < 1 {
		t.Fatalf("stats = %+v, want one shared-source group with saved passes", br.Stats)
	}
	// Duplicate slots both answer.
	if br.Results[0].Count != br.Results[1].Count || br.Results[0].Count == 0 {
		t.Fatalf("duplicate slots disagree: %+v", br.Results)
	}
}

// TestBatchStatsTwoSided: the wire stats surface the two-sided planner
// accounting — total shared specs and the subset shared across group
// boundaries.
func TestBatchStatsTwoSided(t *testing.T) {
	ts := testServer(t, nil)
	// Source 0 hosts a group; target 3 is additionally shared across the
	// group boundary by the singleton (1,3).
	resp, br := postBatch(t, ts, `{"queries":[{"s":0,"t":3,"k":3},{"s":0,"t":1,"k":3},{"s":1,"t":3,"k":3}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if br.Stats == nil {
		t.Fatal("default batch must report stats")
	}
	if br.Stats.SharedFront != 2 || br.Stats.TwoSidedFront != 1 {
		t.Fatalf("stats = %+v, want sharedFrontiers=2 twoSidedFrontiers=1 (hub side + cross-group target)", br.Stats)
	}
	if br.Stats.BFSPasses != 4 {
		t.Fatalf("stats = %+v, want bfsPasses=4 (2 shared + 2 solo)", br.Stats)
	}
}

// TestBatchNaiveFallback: "naive":true keeps the independent fan-out and
// omits the stats block.
func TestBatchNaiveFallback(t *testing.T) {
	ts := testServer(t, nil)
	resp, br := postBatch(t, ts, `{"queries":[{"s":0,"t":3,"k":3},{"s":1,"t":3,"k":3}],"naive":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if br.Stats != nil {
		t.Fatalf("naive batch must not report planner stats, got %+v", br.Stats)
	}
	if br.Results[0].Count != 2 || br.Results[1].Count != 1 {
		t.Fatalf("naive counts wrong: %+v", br.Results)
	}
}

// TestBatchPerQueryErrors: a bad query fills its slot without failing the
// batch.
func TestBatchPerQueryErrors(t *testing.T) {
	ts := testServer(t, nil)
	resp, br := postBatch(t, ts, `{"queries":[{"s":0,"t":3,"k":3},{"s":99,"t":3,"k":3},{"s":0,"t":0,"k":3}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if br.Results[0].Error != "" || br.Results[0].Count != 2 {
		t.Fatalf("valid slot: %+v", br.Results[0])
	}
	if br.Results[1].Error == "" {
		t.Fatal("unknown vertex must error its slot")
	}
	if br.Results[2].Error == "" {
		t.Fatal("s==t must error its slot")
	}
	// Stats reconcile with the request: all 3 slots counted, the two
	// rejected ones as invalid.
	if br.Stats == nil || br.Stats.Queries != 3 || br.Stats.Invalid != 2 {
		t.Fatalf("stats = %+v, want Queries=3 Invalid=2", br.Stats)
	}
}

// TestBatchRejectsPerQueryOptions: options are batch-wide; a per-query
// override errors its slot loudly instead of being silently dropped.
func TestBatchRejectsPerQueryOptions(t *testing.T) {
	ts := testServer(t, nil)
	_, br := postBatch(t, ts, `{"queries":[{"s":0,"t":3,"k":3,"limit":1},{"s":0,"t":3,"k":3}]}`)
	if br.Results[0].Error == "" {
		t.Fatal("per-query limit must error its slot")
	}
	if br.Results[1].Error != "" || br.Results[1].Count != 2 {
		t.Fatalf("clean slot must still run: %+v", br.Results[1])
	}
}

// TestBatchSharedOptions: batch-wide limit applies to every query.
func TestBatchSharedOptions(t *testing.T) {
	ts := testServer(t, nil)
	_, br := postBatch(t, ts, `{"queries":[{"s":0,"t":3,"k":3},{"s":0,"t":3,"k":3}],"limit":1,"method":"dfs"}`)
	for i, r := range br.Results {
		if r.Count != 1 || r.Completed {
			t.Fatalf("slot %d: %+v, want limited run", i, r)
		}
	}
}

func TestBatchErrors(t *testing.T) {
	ts := testServer(t, nil)
	for _, body := range []string{
		`not json`,
		`{"queries":[]}`,
		`{"queries":[{"s":0,"t":3,"k":3}],"method":"x"}`,
		`{"queries":[{"s":0,"t":3,"k":3}],"timeout":"zzz"}`,
	} {
		resp, _ := postBatch(t, ts, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status = %d, want 400", body, resp.StatusCode)
		}
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts := testServer(t, nil)
	resp, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("GET /query must not succeed")
	}
}

// TestStatsReportsEpochAndCache: /stats exposes the graph epoch and the
// frontier-cache counters services watch for hit-rate and invalidations.
func TestStatsReportsEpochAndCache(t *testing.T) {
	ts := testServer(t, nil)
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Epoch         *uint64     `json:"epoch"`
		FrontierCache *cacheStats `json:"frontierCache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Epoch == nil || *stats.Epoch != 0 {
		t.Fatalf("epoch = %v, want 0", stats.Epoch)
	}
	if stats.FrontierCache == nil || stats.FrontierCache.Capacity <= 0 {
		t.Fatalf("frontierCache = %+v", stats.FrontierCache)
	}
}

// TestBatchRepeatServedFromCache: the second POST of an identical batch is
// the repeat-hub scenario — the response stats must show every BFS side
// served from the frontier cache (bfsPassesRun == 0).
func TestBatchRepeatServedFromCache(t *testing.T) {
	ts := testServer(t, nil)
	body := `{"queries":[{"s":0,"t":3,"k":3},{"s":1,"t":3,"k":3},{"s":2,"t":3,"k":3}]}`
	_, cold := postBatch(t, ts, body)
	if cold.Stats == nil || cold.Stats.BFSPassesRun == 0 {
		t.Fatalf("cold stats = %+v, want BFS passes run", cold.Stats)
	}
	_, warm := postBatch(t, ts, body)
	if warm.Stats == nil {
		t.Fatal("warm batch must report stats")
	}
	if warm.Stats.BFSPassesRun != 0 || warm.Stats.CacheHits == 0 {
		t.Fatalf("warm stats = %+v, want bfsPassesRun=0 with cache hits", warm.Stats)
	}
	for i := range cold.Results {
		if warm.Results[i].Count != cold.Results[i].Count {
			t.Fatalf("slot %d: warm count %d != cold %d", i, warm.Results[i].Count, cold.Results[i].Count)
		}
	}
}

// --- streaming endpoints ---

// ndjsonLines posts body to path and returns the decoded NDJSON lines.
func ndjsonLines(t *testing.T, ts *httptest.Server, path, body string) []map[string]any {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ndjsonContentType {
		t.Fatalf("Content-Type = %q, want %q", ct, ndjsonContentType)
	}
	var lines []map[string]any
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var line map[string]any
		if err := dec.Decode(&line); err != nil {
			t.Fatal(err)
		}
		lines = append(lines, line)
	}
	return lines
}

// TestPathsStreamNDJSON: /paths streams one {"path":...} line per result
// plus a trailing {"done":true,...} summary, in the input file's raw ids.
func TestPathsStreamNDJSON(t *testing.T) {
	ts := testServer(t, []int64{10, 11, 12, 13})
	lines := ndjsonLines(t, ts, "/paths", `{"s":10,"t":13,"k":3}`)
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 2 paths + done: %v", len(lines), lines)
	}
	paths := map[string]bool{}
	for _, line := range lines[:2] {
		raw, ok := line["path"].([]any)
		if !ok {
			t.Fatalf("path line = %v", line)
		}
		key := ""
		for _, v := range raw {
			key += "," + strings.TrimSuffix(strings.TrimPrefix(jsonNum(t, v), " "), " ")
		}
		paths[key] = true
	}
	if !paths[",10,11,13"] || !paths[",10,12,13"] {
		t.Fatalf("paths = %v", paths)
	}
	done := lines[2]
	if done["done"] != true || done["count"].(float64) != 2 || done["completed"] != true {
		t.Fatalf("done line = %v", done)
	}
	if done["plan"] == "" || done["ms"].(float64) < 0 {
		t.Fatalf("done line missing plan/ms: %v", done)
	}
}

func jsonNum(t *testing.T, v any) string {
	t.Helper()
	f, ok := v.(float64)
	if !ok {
		t.Fatalf("not a number: %v", v)
	}
	return strconv.FormatInt(int64(f), 10)
}

// TestPathsStreamLimit: the wire limit bounds the stream (completed=false).
func TestPathsStreamLimit(t *testing.T) {
	ts := testServer(t, nil)
	lines := ndjsonLines(t, ts, "/paths", `{"s":0,"t":3,"k":3,"limit":1}`)
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 1 path + done", len(lines))
	}
	if lines[1]["done"] != true || lines[1]["completed"] != false {
		t.Fatalf("done line = %v", lines[1])
	}
}

// TestPathsStreamErrors: pre-stream failures are clean JSON 400s, not
// committed NDJSON responses.
func TestPathsStreamErrors(t *testing.T) {
	ts := testServer(t, nil)
	for _, body := range []string{
		`{"s":0,"t":3,"k":3`,   // malformed JSON
		`{"s":99,"t":3,"k":3}`, // unknown vertex
		`{"s":0,"t":0,"k":3}`,  // invalid query
	} {
		resp, err := http.Post(ts.URL+"/paths", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status = %d, want 400", body, resp.StatusCode)
		}
		var e map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("%s: non-JSON error body: %v", body, err)
		}
		resp.Body.Close()
		if e["error"] == "" {
			t.Fatalf("%s: empty error", body)
		}
	}
}

// TestPathsClientDisconnectCancels is the streaming edge case from the
// cancellation model: a client that walks away mid-NDJSON stream must
// cancel the enumeration through the request context — the handler
// returns long before the ~10M-path result set could have been streamed,
// and the server keeps serving.
func TestPathsClientDisconnectCancels(t *testing.T) {
	// s -> 10 wide, 7 deep -> t: 10^7 paths.
	width, depth := 10, 7
	n := 2 + width*depth
	var edges []pathenum.Edge
	layer := func(l, i int) pathenum.VertexID { return pathenum.VertexID(1 + l*width + i) }
	for i := 0; i < width; i++ {
		edges = append(edges, pathenum.Edge{From: 0, To: layer(0, i)})
		edges = append(edges, pathenum.Edge{From: layer(depth-1, i), To: pathenum.VertexID(n - 1)})
	}
	for l := 0; l+1 < depth; l++ {
		for i := 0; i < width; i++ {
			for j := 0; j < width; j++ {
				edges = append(edges, pathenum.Edge{From: layer(l, i), To: layer(l+1, j)})
			}
		}
	}
	g, err := pathenum.NewGraph(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := pathenum.NewEngine(g, pathenum.EngineConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	inner := New(engine, nil, Config{}).Handler()
	handlerDone := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		inner.ServeHTTP(w, r)
		if r.URL.Path == "/paths" {
			close(handlerDone)
		}
	}))
	t.Cleanup(ts.Close)

	body := strings.NewReader(`{"s":0,"t":` + strconv.Itoa(n-1) + `,"k":` + strconv.Itoa(depth+1) + `}`)
	resp, err := http.Post(ts.URL+"/paths", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	// Read one line — proof the stream started — then walk away.
	br := bufio.NewReader(resp.Body)
	if _, err := br.ReadString('\n'); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	select {
	case <-handlerDone:
	case <-time.After(30 * time.Second):
		t.Fatal("handler still streaming 30s after client disconnect: enumeration was not cancelled")
	}
	// The server is healthy and the engine still serves.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d after cancelled stream", hr.StatusCode)
	}
}

// TestBatchMalformedBody: a malformed /batch body is a 400 with a JSON
// error — never a buffered 200.
func TestBatchMalformedBody(t *testing.T) {
	ts := testServer(t, nil)
	for _, body := range []string{
		`{"queries":[{"s":0`,
		`not json at all`,
		`{"stream":true,"queries":`,
	} {
		resp, err := http.Post(ts.URL+"/batch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%q: status = %d, want 400", body, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("%q: Content-Type = %q, want application/json", body, ct)
		}
		var e map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("%q: non-JSON error body: %v", body, err)
		}
		resp.Body.Close()
		if e["error"] == "" {
			t.Fatalf("%q: empty error message", body)
		}
	}
}

// TestBatchStreamNDJSON: "stream":true turns /batch into NDJSON with one
// line per query (completion order, indexed back to request positions)
// and a final done line carrying the stats.
func TestBatchStreamNDJSON(t *testing.T) {
	ts := testServer(t, nil)
	body := `{"stream":true,"queries":[
		{"s":0,"t":3,"k":3},
		{"s":99,"t":3,"k":3},
		{"s":0,"t":3,"k":3},
		{"s":3,"t":1,"k":2}]}`
	lines := ndjsonLines(t, ts, "/batch", body)
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 4 queries + done: %v", len(lines), lines)
	}
	last := lines[len(lines)-1]
	if last["done"] != true {
		t.Fatalf("last line is not done: %v", last)
	}
	stats, ok := last["stats"].(map[string]any)
	if !ok {
		t.Fatalf("done line missing stats: %v", last)
	}
	if stats["queries"].(float64) != 4 || stats["invalid"].(float64) != 1 || stats["deduped"].(float64) != 1 {
		t.Fatalf("stats = %v", stats)
	}
	byIndex := map[int]map[string]any{}
	for _, line := range lines[:len(lines)-1] {
		i := int(line["index"].(float64))
		if byIndex[i] != nil {
			t.Fatalf("index %d delivered twice", i)
		}
		byIndex[i] = line
	}
	for i, wantCount := range map[int]float64{0: 2, 2: 2, 3: 1} {
		line := byIndex[i]
		if line == nil {
			t.Fatalf("index %d missing", i)
		}
		if line["count"].(float64) != wantCount || line["completed"] != true {
			t.Fatalf("index %d: %v, want count %v", i, line, wantCount)
		}
	}
	if e, _ := byIndex[1]["error"].(string); e == "" {
		t.Fatalf("index 1 (unknown vertex) must carry an error: %v", byIndex[1])
	}
}

// TestBatchStreamNaiveConflict: stream+naive is a contract error.
func TestBatchStreamNaiveConflict(t *testing.T) {
	ts := testServer(t, nil)
	resp, err := http.Post(ts.URL+"/batch", "application/json",
		strings.NewReader(`{"stream":true,"naive":true,"queries":[{"s":0,"t":3,"k":3}]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
}
