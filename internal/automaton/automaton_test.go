package automaton

import "testing"

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 2, 0); err == nil {
		t.Error("zero states: expected error")
	}
	if _, err := New(2, 0, 0); err == nil {
		t.Error("zero labels: expected error")
	}
	if _, err := New(2, 2, 5); err == nil {
		t.Error("start out of range: expected error")
	}
	d, err := New(3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Start() != 1 || d.NumStates() != 3 || d.NumLabels() != 2 {
		t.Fatalf("accessors: %d %d %d", d.Start(), d.NumStates(), d.NumLabels())
	}
}

func TestTransitions(t *testing.T) {
	d, err := New(2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.AddTransition(0, 1, 1); err != nil {
		t.Fatal(err)
	}
	if got := d.Step(0, 1); got != 1 {
		t.Fatalf("Step(0,1) = %d, want 1", got)
	}
	if got := d.Step(0, 0); got != Invalid {
		t.Fatalf("Step(0,0) = %d, want Invalid", got)
	}
	if got := d.Step(5, 0); got != Invalid {
		t.Fatalf("Step out of range = %d, want Invalid", got)
	}
	if err := d.AddTransition(0, 9, 1); err == nil {
		t.Error("label out of range: expected error")
	}
	if err := d.AddTransition(9, 0, 1); err == nil {
		t.Error("state out of range: expected error")
	}
	if err := d.SetAccepting(9); err == nil {
		t.Error("SetAccepting out of range: expected error")
	}
}

func TestAccepting(t *testing.T) {
	d, err := New(2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Accepting(0) {
		t.Error("no state should accept initially")
	}
	if err := d.SetAccepting(1); err != nil {
		t.Fatal(err)
	}
	if !d.Accepting(1) || d.Accepting(0) || d.Accepting(-1) || d.Accepting(9) {
		t.Error("Accepting misbehaves")
	}
}

func TestExactSequence(t *testing.T) {
	d, err := ExactSequence(3, []Label{0, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		seq  []Label
		want bool
	}{
		{[]Label{0, 2, 1}, true},
		{[]Label{0, 2}, false},       // too short
		{[]Label{0, 2, 1, 0}, false}, // too long (no transition)
		{[]Label{1, 2, 1}, false},    // wrong first action
		{nil, false},
	}
	for _, c := range cases {
		if got := d.Accepts(c.seq); got != c.want {
			t.Errorf("Accepts(%v) = %v, want %v", c.seq, got, c.want)
		}
	}
}

func TestExactSequenceEmpty(t *testing.T) {
	d, err := ExactSequence(2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Accepts(nil) {
		t.Error("empty sequence DFA must accept the empty path")
	}
	if d.Accepts([]Label{0}) {
		t.Error("empty sequence DFA must reject non-empty sequences")
	}
}

func TestAtLeastCount(t *testing.T) {
	d, err := AtLeastCount(3, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		seq  []Label
		want bool
	}{
		{[]Label{1, 1}, true},
		{[]Label{1, 0, 2, 1}, true},
		{[]Label{1, 1, 1}, true}, // saturates
		{[]Label{1}, false},
		{[]Label{0, 2, 0}, false},
		{nil, false},
	}
	for _, c := range cases {
		if got := d.Accepts(c.seq); got != c.want {
			t.Errorf("Accepts(%v) = %v, want %v", c.seq, got, c.want)
		}
	}
	if _, err := AtLeastCount(2, 0, -1); err == nil {
		t.Error("negative count: expected error")
	}
}

func TestAtLeastZero(t *testing.T) {
	d, err := AtLeastCount(2, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Accepts(nil) || !d.Accepts([]Label{1, 1}) {
		t.Error("AtLeastCount(0) must accept everything")
	}
}
