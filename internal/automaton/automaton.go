// Package automaton provides the deterministic finite automaton used by the
// label-sequence constraint extension of Appendix E (Algorithm 8): edge
// labels are actions, and a result path is valid only if the label sequence
// along it drives the automaton from its start state to an accepting state.
package automaton

import "fmt"

// State identifies an automaton state.
type State = int32

// Label identifies an edge label (an "action").
type Label = int32

// Invalid marks a missing transition.
const Invalid State = -1

// DFA is a dense-transition deterministic finite automaton.
type DFA struct {
	numStates int
	numLabels int
	start     State
	accepting []bool
	trans     []State // trans[state*numLabels + label]
}

// New creates a DFA with the given state/label counts and start state.
// All transitions start out Invalid and no state accepts.
func New(numStates, numLabels int, start State) (*DFA, error) {
	if numStates <= 0 || numLabels <= 0 {
		return nil, fmt.Errorf("automaton: need positive state (%d) and label (%d) counts", numStates, numLabels)
	}
	if start < 0 || int(start) >= numStates {
		return nil, fmt.Errorf("automaton: start state %d out of range", start)
	}
	trans := make([]State, numStates*numLabels)
	for i := range trans {
		trans[i] = Invalid
	}
	return &DFA{
		numStates: numStates,
		numLabels: numLabels,
		start:     start,
		accepting: make([]bool, numStates),
		trans:     trans,
	}, nil
}

// Start returns the start state.
func (d *DFA) Start() State { return d.start }

// NumStates returns the state count.
func (d *DFA) NumStates() int { return d.numStates }

// NumLabels returns the label-alphabet size.
func (d *DFA) NumLabels() int { return d.numLabels }

// SetAccepting marks state as accepting.
func (d *DFA) SetAccepting(state State) error {
	if state < 0 || int(state) >= d.numStates {
		return fmt.Errorf("automaton: state %d out of range", state)
	}
	d.accepting[state] = true
	return nil
}

// Accepting reports whether state accepts.
func (d *DFA) Accepting(state State) bool {
	return state >= 0 && int(state) < d.numStates && d.accepting[state]
}

// AddTransition installs trans[from, label] = to.
func (d *DFA) AddTransition(from State, label Label, to State) error {
	if from < 0 || int(from) >= d.numStates || to < 0 || int(to) >= d.numStates {
		return fmt.Errorf("automaton: transition states (%d,%d) out of range", from, to)
	}
	if label < 0 || int(label) >= d.numLabels {
		return fmt.Errorf("automaton: label %d out of range", label)
	}
	d.trans[int(from)*d.numLabels+int(label)] = to
	return nil
}

// Step returns the successor of state under label, or Invalid when the
// action is not allowed (the A[a][l(e)] lookup of Algorithm 8). O(1).
func (d *DFA) Step(state State, label Label) State {
	if state < 0 || int(state) >= d.numStates || label < 0 || int(label) >= d.numLabels {
		return Invalid
	}
	return d.trans[int(state)*d.numLabels+int(label)]
}

// Accepts runs the automaton over a label sequence from the start state.
func (d *DFA) Accepts(labels []Label) bool {
	st := d.start
	for _, l := range labels {
		st = d.Step(st, l)
		if st == Invalid {
			return false
		}
	}
	return d.Accepting(st)
}

// ExactSequence builds a DFA accepting exactly the given label sequence
// (the "write -> mention" pattern of the knowledge-graph motivation).
func ExactSequence(numLabels int, seq []Label) (*DFA, error) {
	d, err := New(len(seq)+1, numLabels, 0)
	if err != nil {
		return nil, err
	}
	for i, l := range seq {
		if err := d.AddTransition(State(i), l, State(i+1)); err != nil {
			return nil, err
		}
	}
	if err := d.SetAccepting(State(len(seq))); err != nil {
		return nil, err
	}
	return d, nil
}

// AtLeastCount builds a DFA over numLabels labels that accepts any sequence
// containing at least m occurrences of the given label (the "at least two
// high-risk countries" pattern of Appendix E). States count occurrences,
// saturating at m.
func AtLeastCount(numLabels int, label Label, m int) (*DFA, error) {
	if m < 0 {
		return nil, fmt.Errorf("automaton: negative count %d", m)
	}
	d, err := New(m+1, numLabels, 0)
	if err != nil {
		return nil, err
	}
	for st := 0; st <= m; st++ {
		for l := 0; l < numLabels; l++ {
			next := st
			if Label(l) == label && st < m {
				next = st + 1
			}
			if err := d.AddTransition(State(st), Label(l), State(next)); err != nil {
				return nil, err
			}
		}
	}
	if err := d.SetAccepting(State(m)); err != nil {
		return nil, err
	}
	return d, nil
}
