// Package batch is the shared-computation batch query subsystem: it plans
// and executes a set of HcPE queries against one graph so that work common
// to several queries is paid once instead of once per query.
//
// PathEnum's per-query index construction is dominated by two bounded BFS
// distance passes — forward from s and backward from t (§4.2, Algorithm 3
// line 1). A batch of queries sharing a source or a target therefore
// repeats identical BFS work, which is exactly the redundancy that batch
// HcPE processing eliminates via common-computation detection (Yuan et
// al., "Batch Hop-Constrained s-t Simple Path Query Processing in Large
// Graphs", 2023). This package implements that idea on top of the core
// executor pipeline:
//
//	Planner    canonicalizes the batch — exact-duplicate queries (same
//	           s, t and k) are answered once and fanned back out — and
//	           groups the remainder by shared source and shared target.
//	Frontier   (internal/core) one shared bounded BFS labeling per group,
//	           reused across every member's index build.
//	Scheduler  orders groups by estimated cost and executes them across
//	           a worker pool, recording per-batch Stats (queries deduped,
//	           BFS passes saved, per-group timings).
//
// The public surface is Engine.ExecuteBatch in the root package;
// Engine.ExecuteAllContext remains the naive independent fan-out and is
// the baseline the batch benchmarks compare against.
package batch

import (
	"time"

	"pathenum/internal/core"
	"pathenum/internal/graph"
)

// GroupKind classifies how a planned group shares computation.
type GroupKind uint8

const (
	// KindSingleton is a group of one query with nothing to share; both
	// BFS passes run per query, exactly like the naive fan-out.
	KindSingleton GroupKind = iota
	// KindSharedSource groups queries with a common source: one shared
	// forward frontier from the hub, one backward pass per member.
	KindSharedSource
	// KindSharedTarget groups queries with a common target: one shared
	// backward frontier to the hub, one forward pass per member.
	KindSharedTarget
)

// String implements fmt.Stringer.
func (k GroupKind) String() string {
	switch k {
	case KindSingleton:
		return "singleton"
	case KindSharedSource:
		return "shared-source"
	case KindSharedTarget:
		return "shared-target"
	default:
		return "unknown"
	}
}

// FrontierProvider serves prebuilt distance frontiers to the scheduler
// and collects the ones it builds — the seam the engine's cross-batch
// frontier cache plugs into. Lookup returns a frontier valid for the
// current graph version with the given origin, direction and bound >= k,
// or nil on a miss; Store deposits a freshly built frontier for later
// batches, with uses reporting how many planned executions of this batch
// reuse it (>= 2 for a planned-shared frontier, 1 for a per-member side)
// so the provider can apply an admission policy — the engine refuses
// once-used low-degree endpoints rather than bloating its LRU, and a
// byte-budgeted cache refuses deposits it has no room for. Store reports
// whether the frontier was actually retained; the scheduler only counts
// refusals (Stats.DepositsRefused) — the batch itself already holds the
// frontier it built.
// Implementations must be safe for concurrent use (the scheduler calls
// from every worker) and are responsible for version invalidation — a
// frontier returned by Lookup is still re-validated by the core executor,
// so a misbehaving provider fails queries rather than corrupting them.
type FrontierProvider interface {
	Lookup(origin graph.VertexID, forward bool, k int) *core.Frontier
	Store(f *core.Frontier, uses int) bool
}

// FrontierSpec names one planned-shared BFS side of a batch: a (origin,
// direction) endpoint that two or more planned executions need, detected
// by the planner's two-sided pass over the (source, target) co-occurrence
// of the unique queries. The scheduler builds each spec at most once
// (single-flight) and serves every user from the result, so a cold batch
// pays one BFS per distinct endpoint — group hubs and second sides alike —
// instead of one per group plus one per member.
type FrontierSpec struct {
	Origin  graph.VertexID
	Forward bool
	// MaxK is the largest hop constraint among the spec's users; the
	// frontier is built to this bound so every user can reuse it.
	MaxK int
	// Uses counts the planned executions that reuse this side (>= 2).
	Uses int
}

// GroupTiming reports how one scheduled group spent its time.
type GroupTiming struct {
	Kind GroupKind
	// Hub is the shared endpoint (source or target); for a singleton it
	// is the query's source.
	Hub graph.VertexID
	// Size is the number of member queries.
	Size int
	// SharedBFS is the time spent building the group's shared frontier
	// (zero for singletons and for cache hits).
	SharedBFS time.Duration
	// CacheHit reports that the group's shared frontier came from the
	// FrontierProvider instead of a BFS pass.
	CacheHit bool
	// Estimate is the cardinality-feedback signal recorded after the
	// group's probe member ran: the probe's preliminary search-space
	// estimate (Equation 5), or the group's static Cost when the probe
	// failed. Remaining members across the whole batch are re-ranked by
	// this value, cheapest first.
	Estimate float64
	// Elapsed is the wall time from group start to the last member done
	// (zero when the batch was cancelled before the group finished).
	Elapsed time.Duration
}

// Stats summarizes one batch execution: what the planner found to share
// and what the scheduler did with it. BFS pass counts are the planner's
// nominal accounting (an oracle infeasibility certificate can still skip
// a counted pass at execution time).
type Stats struct {
	// Queries is the original batch size, duplicates and invalid queries
	// included.
	Queries int
	// Invalid counts queries rejected by validation.
	Invalid int
	// Unique is the number of deduplicated valid queries executed.
	Unique int
	// Deduped counts duplicate queries folded into an already-planned
	// execution (valid - unique).
	Deduped int
	// Groups is the number of scheduled groups, singletons included.
	Groups int
	// SharedSourceGroups / SharedTargetGroups / Singletons break Groups
	// down by kind.
	SharedSourceGroups int
	SharedTargetGroups int
	Singletons         int
	// BFSPassesNaive is what the naive fan-out would run: two passes per
	// valid query, duplicates included.
	BFSPassesNaive int
	// BFSPasses is the plan's nominal pass count under two-sided sharing:
	// one per shared frontier spec (a side two or more unique queries
	// need) plus one per side only a single query needs — at most one BFS
	// per distinct (endpoint, direction) in the batch.
	BFSPasses int
	// BFSPassesSaved = BFSPassesNaive - BFSPasses.
	BFSPassesSaved int
	// BFSPassesRun counts the BFS passes actually executed: frontier
	// builds plus per-member session passes. Equal to BFSPasses with no
	// FrontierProvider; drops toward zero as the provider's cache warms
	// (a fully warm repeat batch runs none), and exceeds BFSPasses only
	// when an opaque predicate (non-nil Options.Predicate with a zero
	// PredicateToken) disables sharing. Session-side passes an oracle
	// infeasibility certificate skips are still counted.
	BFSPassesRun int
	// FrontierCacheHits / FrontierCacheMisses count FrontierProvider
	// lookups during this batch (shared-spec and per-member sides);
	// both stay zero without a provider.
	FrontierCacheHits   int
	FrontierCacheMisses int
	// DepositsRefused counts frontiers this batch built and offered that
	// the provider declined to retain — admission policy or a memory
	// budget out of headroom. The batch itself is unaffected (it holds
	// what it built); later batches just start cold on those endpoints.
	DepositsRefused int
	// SharedFrontiers is the number of planned shared frontier specs
	// (Plan.Shared); TwoSidedFrontiers counts the subset that is not a
	// group's own hub side — the cross-group and second-side sharing the
	// two-sided pass finds beyond single-endpoint grouping.
	SharedFrontiers   int
	TwoSidedFrontiers int
	// SharedBFS is the total time spent building shared frontiers.
	SharedBFS time.Duration
	// Elapsed is the wall time of the whole batch execution.
	Elapsed time.Duration
	// GroupTimings has one entry per scheduled group, in scheduling
	// (estimated-cost) order.
	GroupTimings []GroupTiming
}
