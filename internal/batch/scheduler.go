package batch

import (
	"container/heap"
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"pathenum/internal/core"
	"pathenum/internal/graph"
)

// Scheduler executes a Plan across a bounded worker pool. Sessions come
// from the caller (the engine's pool) via Acquire/Release, so batch
// execution shares the same amortized per-worker buffers as the rest of
// the stack.
type Scheduler struct {
	// Workers bounds concurrent query executions (default 4).
	Workers int
	// Acquire/Release check a session in and out of the caller's pool.
	// Both must be safe for concurrent use.
	Acquire func() *core.Session
	Release func(*core.Session)
	// Frontiers, when non-nil, serves cached frontiers for shared-spec
	// and per-member BFS sides and collects the ones the scheduler builds
	// (the engine's cross-batch cache). With a provider every BFS side is
	// materialized as a core.Frontier — a deposit-on-miss cache — so a
	// repeat batch executes with zero BFS passes (subject to the
	// provider's admission policy; see FrontierProvider.Store).
	Frontiers FrontierProvider
	// OnResult, when non-nil, is invoked exactly once per unique query the
	// moment its slot is decided — a computed Result, a query error, or the
	// batch's cancellation error — concurrently from whichever worker
	// goroutine decided it. This is the streaming delivery seam: consumers
	// flush per-query results as groups complete instead of waiting for
	// Execute to return. The callback must be safe for concurrent use and
	// cheap; it runs on the execution path.
	OnResult func(unique int, res *core.Result, err error)
	// Estimate, when non-nil, overrides the cardinality-feedback signal a
	// group's probe run feeds back into the queue: it receives the probe's
	// query and Result (nil when the probe failed) and returns the value
	// remaining members are ranked by, smallest first. The default is the
	// probe Result's preliminary search-space estimate (Equation 5,
	// Plan.Preliminary), falling back to the group's static Cost. Tests
	// fix this to pin re-rank order; production leaves it nil.
	Estimate func(q core.Query, probe *core.Result) float64
}

// settle records the outcome of one unique query and notifies OnResult.
func (sch *Scheduler) settle(results []*core.Result, errs []error, u int, res *core.Result, err error) {
	results[u] = res
	errs[u] = err
	if sch.OnResult != nil {
		sch.OnResult(u, res, err)
	}
}

// passCounters tracks what the batch actually ran, aggregated across all
// worker goroutines.
type passCounters struct {
	run     atomic.Int64 // BFS passes executed (frontier builds + session passes)
	hits    atomic.Int64 // FrontierProvider lookups served
	misses  atomic.Int64 // FrontierProvider lookups missed
	refused atomic.Int64 // deposits the FrontierProvider declined
}

// frontierKey identifies one BFS side within a batch.
type frontierKey struct {
	origin  graph.VertexID
	forward bool
}

// sharedCell is the single-flight slot for one planned shared frontier.
// The first task needing it builds (or cache-fills) it under once; every
// later user reads the settled fields. A build error leaves f nil and the
// users fall back to their own per-member resolution.
type sharedCell struct {
	once      sync.Once
	spec      FrontierSpec
	f         *core.Frontier
	fromCache bool
	buildNs   int64
}

// sharedPool resolves the plan's shared frontier specs exactly once each.
type sharedPool struct {
	cells   map[frontierKey]*sharedCell
	buildNs atomic.Int64 // total build time across all cells
}

func newSharedPool(specs []FrontierSpec) *sharedPool {
	p := &sharedPool{cells: make(map[frontierKey]*sharedCell, len(specs))}
	for _, spec := range specs {
		p.cells[frontierKey{spec.Origin, spec.Forward}] = &sharedCell{spec: spec}
	}
	return p
}

// resolve returns the shared frontier for (origin, forward), building it
// single-flight on first use: provider lookup first, then a BFS pass at
// the spec's largest bound, deposited back with its planned use count.
// Returns (nil, nil) when the side is not a planned shared spec.
func (p *sharedPool) resolve(sch *Scheduler, g *graph.Graph, origin graph.VertexID, forward bool, opts core.Options, passes *passCounters) (*core.Frontier, *sharedCell) {
	if p == nil {
		return nil, nil
	}
	cell := p.cells[frontierKey{origin, forward}]
	if cell == nil {
		return nil, nil
	}
	cell.once.Do(func() {
		if f := sch.lookup(origin, forward, cell.spec.MaxK, passes); f != nil {
			cell.f, cell.fromCache = f, true
			return
		}
		start := time.Now()
		var f *core.Frontier
		var err error
		if forward {
			f, err = core.NewForwardFrontier(g, origin, cell.spec.MaxK, opts.Predicate, opts.PredicateToken)
		} else {
			f, err = core.NewBackwardFrontier(g, origin, cell.spec.MaxK, opts.Predicate, opts.PredicateToken)
		}
		if err != nil {
			return
		}
		cell.f = f
		cell.buildNs = time.Since(start).Nanoseconds()
		p.buildNs.Add(cell.buildNs)
		passes.run.Add(1)
		if sch.Frontiers != nil && !sch.Frontiers.Store(f, cell.spec.Uses) {
			passes.refused.Add(1)
		}
	})
	return cell.f, cell
}

// task is one unit of queue work: a group's probe (its first member, run
// to harvest the cardinality estimate) or a re-ranked remaining member.
type task struct {
	probe bool
	gi    int     // group index into plan.Groups
	u     int     // unique index (member tasks; probe runs Members[0])
	mi    int     // member index within the group (tie-break)
	pri   float64 // member priority: the group's fed-back estimate
}

// taskHeap orders probes before members (every group gets its estimate
// before the bulk work is ordered), probes by plan order (descending
// static cost), members by ascending estimate — cheapest first for
// time-to-first-result — with a deterministic (group, member) tie-break.
type taskHeap []task

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.probe != b.probe {
		return a.probe
	}
	if a.probe {
		return a.gi < b.gi
	}
	if a.pri != b.pri {
		return a.pri < b.pri
	}
	if a.gi != b.gi {
		return a.gi < b.gi
	}
	return a.mi < b.mi
}
func (h taskHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x any)   { *h = append(*h, x.(task)) }
func (h *taskHeap) Pop() any     { old := *h; n := len(old); t := old[n-1]; *h = old[:n-1]; return t }

// taskQueue is the scheduler's priority work queue. Workers block in pop
// until a task is ready, every task is done (empty heap, nothing in
// flight — only running tasks enqueue new ones), or the queue is
// cancelled.
type taskQueue struct {
	mu        sync.Mutex
	cond      *sync.Cond
	heap      taskHeap
	inflight  int
	cancelled bool
}

func newTaskQueue() *taskQueue {
	q := &taskQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues a task; dropped silently after cancellation (the final
// sweep settles whatever never ran).
func (q *taskQueue) push(t task) {
	q.mu.Lock()
	if !q.cancelled {
		heap.Push(&q.heap, t)
	}
	q.mu.Unlock()
	q.cond.Signal()
}

// pop blocks for the next task; ok=false means the queue is drained or
// cancelled and the worker should exit.
func (q *taskQueue) pop() (task, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.cancelled {
			return task{}, false
		}
		if len(q.heap) > 0 {
			t := heap.Pop(&q.heap).(task)
			q.inflight++
			return t, true
		}
		if q.inflight == 0 {
			return task{}, false
		}
		q.cond.Wait()
	}
}

// done retires a popped task, waking workers parked on an empty heap so
// they can observe drain.
func (q *taskQueue) done() {
	q.mu.Lock()
	q.inflight--
	q.mu.Unlock()
	q.cond.Broadcast()
}

// cancel drains the queue and releases every parked worker.
func (q *taskQueue) cancel() {
	q.mu.Lock()
	q.cancelled = true
	q.heap = nil
	q.mu.Unlock()
	q.cond.Broadcast()
}

// execState carries one Execute call's shared state across workers.
type execState struct {
	sch     *Scheduler
	g       *graph.Graph
	plan    *Plan
	opts    core.Options
	results []*core.Result
	errs    []error
	stats   *Stats
	passes  passCounters
	pool    *sharedPool // nil for opaque predicates or spec-free plans
	queue   *taskQueue
	settled []bool // per unique; written once pre-join, swept post-join

	groupStart []time.Time    // set by the probe before members enqueue
	groupLast  []atomic.Int64 // latest member-done offset ns, per group
}

// Execute runs the plan's work queue across the worker pool with
// fail-fast cancellation mirroring Engine.ExecuteAllContext: once ctx is
// done, members not yet started return ctx.Err() immediately and
// in-flight enumerations stop early.
//
// Scheduling is two-phase per group. Each group's probe task — ordered by
// the planner's static cost, most expensive first — resolves the shared
// frontiers its first member needs (single-flight through the plan's
// two-sided specs, provider first, one BFS at most per distinct
// endpoint), runs that member, and feeds the observed preliminary
// estimate (Equation 5) back into the queue: the remaining members
// re-enter ranked by real predicted cardinality, cheapest first across
// all groups, rather than the static members x maxK proxy. Sharing
// requires an identifiable predicate: when opts.Predicate is non-nil with
// a zero PredicateToken, the shared pool is disabled and every member
// runs independently (correct, no reuse). Results and errors come back
// indexed by plan.Unique (use Plan.Scatter to fan them out to original
// batch positions); the returned Stats carry the planner accounting plus
// wall timings, actual pass counts and cache hit/miss counters.
func (sch *Scheduler) Execute(ctx context.Context, g *graph.Graph, plan *Plan, opts core.Options) ([]*core.Result, []error, *Stats) {
	workers := sch.Workers
	if workers <= 0 {
		workers = 4
	}
	stats := plan.Stats()
	stats.GroupTimings = make([]GroupTiming, len(plan.Groups))
	st := &execState{
		sch:        sch,
		g:          g,
		plan:       plan,
		opts:       opts,
		results:    make([]*core.Result, len(plan.Unique)),
		errs:       make([]error, len(plan.Unique)),
		stats:      stats,
		queue:      newTaskQueue(),
		settled:    make([]bool, len(plan.Unique)),
		groupStart: make([]time.Time, len(plan.Groups)),
		groupLast:  make([]atomic.Int64, len(plan.Groups)),
	}
	if shareable(opts) && len(plan.Shared) > 0 {
		st.pool = newSharedPool(plan.Shared)
	}
	for gi := range plan.Groups {
		grp := &plan.Groups[gi]
		stats.GroupTimings[gi] = GroupTiming{Kind: grp.Kind, Hub: grp.Hub, Size: len(grp.Members)}
		st.queue.push(task{probe: true, gi: gi})
	}

	start := time.Now()
	stop := context.AfterFunc(ctx, st.queue.cancel)
	defer stop()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				t, ok := st.queue.pop()
				if !ok {
					return
				}
				st.run(ctx, t)
				st.queue.done()
				// Yield between tasks so a consumer woken by OnResult can
				// run (and possibly cancel) even with every P busy — the
				// old semaphore handoff parked workers here; a lock-free
				// heap pop never would.
				runtime.Gosched()
			}
		}()
	}
	wg.Wait()

	// Sweep: anything the cancellation drained before it ran settles with
	// the batch's error, preserving the exactly-once OnResult contract.
	if err := ctx.Err(); err != nil {
		for u := range plan.Unique {
			if !st.settled[u] {
				sch.settle(st.results, st.errs, u, nil, err)
			}
		}
	}

	stats.Elapsed = time.Since(start)
	stats.BFSPassesRun = int(st.passes.run.Load())
	stats.FrontierCacheHits = int(st.passes.hits.Load())
	stats.FrontierCacheMisses = int(st.passes.misses.Load())
	stats.DepositsRefused = int(st.passes.refused.Load())
	if st.pool != nil {
		stats.SharedBFS = time.Duration(st.pool.buildNs.Load())
	}
	for gi := range stats.GroupTimings {
		stats.GroupTimings[gi].Elapsed = time.Duration(st.groupLast[gi].Load())
	}
	return st.results, st.errs, stats
}

// run executes one queue task on the calling worker. Tasks popped after
// cancellation settle with ctx.Err() instead of running — the per-task
// check is what makes fail-fast immediate even before the queue's own
// cancel callback drains the heap.
func (st *execState) run(ctx context.Context, t task) {
	if err := ctx.Err(); err != nil {
		if t.probe {
			for _, u := range st.plan.Groups[t.gi].Members {
				st.settled[u] = true
				st.sch.settle(st.results, st.errs, u, nil, err)
			}
			return
		}
		st.settled[t.u] = true
		st.sch.settle(st.results, st.errs, t.u, nil, err)
		return
	}
	if t.probe {
		st.runProbe(ctx, t.gi)
		return
	}
	st.runMember(ctx, t.gi, t.u)
}

// runProbe runs a group's first member, records the group timing facts,
// and enqueues the remaining members ranked by the fed-back estimate.
func (st *execState) runProbe(ctx context.Context, gi int) {
	grp := &st.plan.Groups[gi]
	timing := &st.stats.GroupTimings[gi]
	st.groupStart[gi] = time.Now()

	// Resolve the hub frontier up front so its build is attributed to the
	// group even when the probe's own sides come from elsewhere.
	if grp.Kind != KindSingleton && st.pool != nil {
		if _, cell := st.pool.resolve(st.sch, st.g, grp.Hub, grp.Kind == KindSharedSource, st.opts, &st.passes); cell != nil {
			timing.CacheHit = cell.fromCache
			timing.SharedBFS = time.Duration(cell.buildNs)
		}
	}

	u := grp.Members[0]
	res, err := st.runOne(ctx, st.plan.Unique[u])
	st.settleMember(gi, u, res, err)

	est := grp.Cost
	if st.sch.Estimate != nil {
		est = st.sch.Estimate(st.plan.Unique[u], res)
	} else if res != nil {
		est = res.Plan.Preliminary
	}
	timing.Estimate = est
	for mi, v := range grp.Members[1:] {
		st.queue.push(task{gi: gi, u: v, mi: mi + 1, pri: est})
	}
}

// runMember runs one re-ranked member.
func (st *execState) runMember(ctx context.Context, gi, u int) {
	res, err := st.runOne(ctx, st.plan.Unique[u])
	st.settleMember(gi, u, res, err)
}

// settleMember settles a unique query from the worker that ran it and
// advances the group's last-member-done watermark.
func (st *execState) settleMember(gi, u int, res *core.Result, err error) {
	st.settled[u] = true
	st.sch.settle(st.results, st.errs, u, res, err)
	elapsed := time.Since(st.groupStart[gi]).Nanoseconds()
	last := &st.groupLast[gi]
	for {
		cur := last.Load()
		if elapsed <= cur || last.CompareAndSwap(cur, elapsed) {
			return
		}
	}
}

// shareable reports whether frontiers may be built and cached under opts:
// an opaque predicate (non-nil function, zero token) has no identity to
// key sharing on. See core.PredicateToken.
func shareable(opts core.Options) bool {
	return opts.Predicate == nil || opts.PredicateToken != core.PredicateNone
}

// lookup consults the FrontierProvider, maintaining the hit/miss
// counters. Nil-provider lookups are free and uncounted.
func (sch *Scheduler) lookup(origin graph.VertexID, forward bool, k int, passes *passCounters) *core.Frontier {
	if sch.Frontiers == nil {
		return nil
	}
	if f := sch.Frontiers.Lookup(origin, forward, k); f != nil {
		passes.hits.Add(1)
		return f
	}
	passes.misses.Add(1)
	return nil
}

// runOne executes a single query on a pooled session. Each side resolves
// through the shared pool first (one single-flight BFS per planned shared
// endpoint), then the provider (cache hit, or build + deposit with
// uses=1), and otherwise runs as the session's scratch BFS.
func (st *execState) runOne(ctx context.Context, q core.Query) (*core.Result, error) {
	sch := st.sch
	fwd, _ := st.pool.resolve(sch, st.g, q.S, true, st.opts, &st.passes)
	bwd, _ := st.pool.resolve(sch, st.g, q.T, false, st.opts, &st.passes)
	if sch.Frontiers != nil && shareable(st.opts) {
		if fwd == nil {
			fwd = sch.memberFrontier(st.g, q.S, true, q.K, st.opts, &st.passes)
		}
		if bwd == nil {
			bwd = sch.memberFrontier(st.g, q.T, false, q.K, st.opts, &st.passes)
		}
	}
	// Sides still nil run as scratch BFS passes inside the session.
	if fwd == nil {
		st.passes.run.Add(1)
	}
	if bwd == nil {
		st.passes.run.Add(1)
	}
	sess := sch.Acquire()
	defer sch.Release(sess)
	return sess.RunShared(ctx, q, st.opts, fwd, bwd)
}

// memberFrontier resolves one per-member BFS side through the provider:
// cache hit, or build + deposit. Construction errors (e.g. an endpoint
// out of range) return nil so the session's own validation reports them.
func (sch *Scheduler) memberFrontier(g *graph.Graph, origin graph.VertexID, forward bool, k int, opts core.Options, passes *passCounters) *core.Frontier {
	if f := sch.lookup(origin, forward, k, passes); f != nil {
		return f
	}
	var f *core.Frontier
	var err error
	if forward {
		f, err = core.NewForwardFrontier(g, origin, k, opts.Predicate, opts.PredicateToken)
	} else {
		f, err = core.NewBackwardFrontier(g, origin, k, opts.Predicate, opts.PredicateToken)
	}
	if err != nil {
		return nil
	}
	passes.run.Add(1)
	if !sch.Frontiers.Store(f, 1) {
		passes.refused.Add(1)
	}
	return f
}
