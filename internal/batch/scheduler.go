package batch

import (
	"context"
	"sync"
	"time"

	"pathenum/internal/core"
	"pathenum/internal/graph"
)

// Scheduler executes a Plan across a bounded worker pool. Sessions come
// from the caller (the engine's pool) via Acquire/Release, so batch
// execution shares the same amortized per-worker buffers as the rest of
// the stack.
type Scheduler struct {
	// Workers bounds concurrent query executions (default 4).
	Workers int
	// Acquire/Release check a session in and out of the caller's pool.
	// Both must be safe for concurrent use.
	Acquire func() *core.Session
	Release func(*core.Session)
}

// Execute runs the plan's groups in their scheduling order (descending
// estimated cost) with fail-fast cancellation mirroring
// Engine.ExecuteAllContext: once ctx is done, members not yet started
// return ctx.Err() immediately and in-flight enumerations stop early.
//
// A shared group first builds its frontier on a worker slot, then fans its
// members out across the pool, each member reusing the frontier for one
// side of its index build. Results and errors come back indexed by
// plan.Unique (use Plan.Scatter to fan them out to original batch
// positions); the returned Stats carry the planner accounting plus wall
// timings.
func (sch *Scheduler) Execute(ctx context.Context, g *graph.Graph, plan *Plan, opts core.Options) ([]*core.Result, []error, *Stats) {
	workers := sch.Workers
	if workers <= 0 {
		workers = 4
	}
	results := make([]*core.Result, len(plan.Unique))
	errs := make([]error, len(plan.Unique))
	stats := plan.Stats()
	stats.GroupTimings = make([]GroupTiming, len(plan.Groups))

	start := time.Now()
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
dispatch:
	for gi := range plan.Groups {
		grp := &plan.Groups[gi]
		timing := &stats.GroupTimings[gi]
		*timing = GroupTiming{Kind: grp.Kind, Hub: grp.Hub, Size: len(grp.Members)}
		// The acquire observes ctx so cancellation cannot block behind a
		// slow in-flight group.
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			err := ctx.Err()
			for j := gi; j < len(plan.Groups); j++ {
				for _, u := range plan.Groups[j].Members {
					errs[u] = err
				}
			}
			break dispatch
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			sch.runGroup(ctx, g, plan, grp, timing, opts, sem, results, errs)
		}()
	}
	wg.Wait()

	stats.Elapsed = time.Since(start)
	for _, gt := range stats.GroupTimings {
		stats.SharedBFS += gt.SharedBFS
	}
	return results, errs, stats
}

// runGroup executes one group. It is entered holding one sem slot; the
// slot is released before members fan out (each member acquires its own),
// so a group never occupies more than its fair share of the pool.
func (sch *Scheduler) runGroup(ctx context.Context, g *graph.Graph, plan *Plan, grp *Group, timing *GroupTiming, opts core.Options, sem chan struct{}, results []*core.Result, errs []error) {
	groupStart := time.Now()
	defer func() { timing.Elapsed = time.Since(groupStart) }()

	if grp.Kind == KindSingleton {
		// Nothing to share: run the query on the slot already held.
		u := grp.Members[0]
		results[u], errs[u] = sch.runOne(ctx, plan.Unique[u], opts, nil, nil)
		<-sem
		return
	}

	// Build the shared frontier on the held slot, then release it.
	var fwd, bwd *core.Frontier
	var err error
	bfsStart := time.Now()
	if grp.Kind == KindSharedSource {
		fwd, err = core.NewForwardFrontier(g, grp.Hub, grp.MaxK, opts.Predicate)
	} else {
		bwd, err = core.NewBackwardFrontier(g, grp.Hub, grp.MaxK, opts.Predicate)
	}
	timing.SharedBFS = time.Since(bfsStart)
	<-sem
	if err != nil {
		for _, u := range grp.Members {
			errs[u] = err
		}
		return
	}

	// Fan the members out across the pool; the frontier is immutable and
	// read concurrently by every member.
	var mwg sync.WaitGroup
	for idx, u := range grp.Members {
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			cerr := ctx.Err()
			for _, v := range grp.Members[idx:] {
				errs[v] = cerr
			}
			mwg.Wait()
			return
		}
		mwg.Add(1)
		go func(u int) {
			defer mwg.Done()
			defer func() { <-sem }()
			results[u], errs[u] = sch.runOne(ctx, plan.Unique[u], opts, fwd, bwd)
		}(u)
	}
	mwg.Wait()
}

// runOne executes a single query on a pooled session.
func (sch *Scheduler) runOne(ctx context.Context, q core.Query, opts core.Options, fwd, bwd *core.Frontier) (*core.Result, error) {
	sess := sch.Acquire()
	defer sch.Release(sess)
	return sess.RunShared(ctx, q, opts, fwd, bwd)
}
