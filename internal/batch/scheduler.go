package batch

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"pathenum/internal/core"
	"pathenum/internal/graph"
)

// Scheduler executes a Plan across a bounded worker pool. Sessions come
// from the caller (the engine's pool) via Acquire/Release, so batch
// execution shares the same amortized per-worker buffers as the rest of
// the stack.
type Scheduler struct {
	// Workers bounds concurrent query executions (default 4).
	Workers int
	// Acquire/Release check a session in and out of the caller's pool.
	// Both must be safe for concurrent use.
	Acquire func() *core.Session
	Release func(*core.Session)
	// Frontiers, when non-nil, serves cached frontiers for shared-group
	// and per-member BFS sides and collects the ones the scheduler builds
	// (the engine's cross-batch cache). With a provider every BFS side is
	// materialized as a core.Frontier — a deposit-on-miss cache — so a
	// repeat batch executes with zero BFS passes.
	Frontiers FrontierProvider
	// OnResult, when non-nil, is invoked exactly once per unique query the
	// moment its slot is decided — a computed Result, a query error, or the
	// batch's cancellation error — concurrently from whichever worker
	// goroutine decided it. This is the streaming delivery seam: consumers
	// flush per-query results as groups complete instead of waiting for
	// Execute to return. The callback must be safe for concurrent use and
	// cheap; it runs on the execution path.
	OnResult func(unique int, res *core.Result, err error)
}

// settle records the outcome of one unique query and notifies OnResult.
func (sch *Scheduler) settle(results []*core.Result, errs []error, u int, res *core.Result, err error) {
	results[u] = res
	errs[u] = err
	if sch.OnResult != nil {
		sch.OnResult(u, res, err)
	}
}

// passCounters tracks what the batch actually ran, aggregated across all
// group and member goroutines.
type passCounters struct {
	run    atomic.Int64 // BFS passes executed (frontier builds + session passes)
	hits   atomic.Int64 // FrontierProvider lookups served
	misses atomic.Int64 // FrontierProvider lookups missed
}

// Execute runs the plan's groups in their scheduling order (descending
// estimated cost) with fail-fast cancellation mirroring
// Engine.ExecuteAllContext: once ctx is done, members not yet started
// return ctx.Err() immediately and in-flight enumerations stop early.
//
// A shared group obtains its frontier — from the FrontierProvider when one
// is configured and warm, otherwise by building it on a worker slot — then
// fans its members out across the pool, each member reusing the frontier
// for one side of its index build (and consulting the provider for the
// other). Sharing requires an identifiable predicate: when opts.Predicate
// is non-nil with a zero PredicateToken, groups degrade to independent
// per-member execution (correct, no reuse). Results and errors come back
// indexed by plan.Unique (use Plan.Scatter to fan them out to original
// batch positions); the returned Stats carry the planner accounting plus
// wall timings, actual pass counts and cache hit/miss counters.
func (sch *Scheduler) Execute(ctx context.Context, g *graph.Graph, plan *Plan, opts core.Options) ([]*core.Result, []error, *Stats) {
	workers := sch.Workers
	if workers <= 0 {
		workers = 4
	}
	results := make([]*core.Result, len(plan.Unique))
	errs := make([]error, len(plan.Unique))
	stats := plan.Stats()
	stats.GroupTimings = make([]GroupTiming, len(plan.Groups))
	var passes passCounters

	start := time.Now()
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
dispatch:
	for gi := range plan.Groups {
		grp := &plan.Groups[gi]
		timing := &stats.GroupTimings[gi]
		*timing = GroupTiming{Kind: grp.Kind, Hub: grp.Hub, Size: len(grp.Members)}
		// The acquire observes ctx so cancellation cannot block behind a
		// slow in-flight group.
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			err := ctx.Err()
			for j := gi; j < len(plan.Groups); j++ {
				for _, u := range plan.Groups[j].Members {
					sch.settle(results, errs, u, nil, err)
				}
			}
			break dispatch
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			sch.runGroup(ctx, g, plan, grp, timing, opts, sem, results, errs, &passes)
		}()
	}
	wg.Wait()

	stats.Elapsed = time.Since(start)
	stats.BFSPassesRun = int(passes.run.Load())
	stats.FrontierCacheHits = int(passes.hits.Load())
	stats.FrontierCacheMisses = int(passes.misses.Load())
	for _, gt := range stats.GroupTimings {
		stats.SharedBFS += gt.SharedBFS
	}
	return results, errs, stats
}

// shareable reports whether frontiers may be built and cached under opts:
// an opaque predicate (non-nil function, zero token) has no identity to
// key sharing on. See core.PredicateToken.
func shareable(opts core.Options) bool {
	return opts.Predicate == nil || opts.PredicateToken != core.PredicateNone
}

// runGroup executes one group. It is entered holding one sem slot; the
// slot is released before members fan out (each member acquires its own),
// so a group never occupies more than its fair share of the pool.
func (sch *Scheduler) runGroup(ctx context.Context, g *graph.Graph, plan *Plan, grp *Group, timing *GroupTiming, opts core.Options, sem chan struct{}, results []*core.Result, errs []error, passes *passCounters) {
	groupStart := time.Now()
	defer func() { timing.Elapsed = time.Since(groupStart) }()

	if grp.Kind == KindSingleton {
		// Nothing group-shared: run the query on the slot already held
		// (the provider can still serve either side).
		u := grp.Members[0]
		res, err := sch.runOne(ctx, g, plan.Unique[u], opts, nil, nil, passes)
		sch.settle(results, errs, u, res, err)
		<-sem
		return
	}

	// Obtain the shared frontier — cache, then BFS — on the held slot,
	// then release it.
	var fwd, bwd *core.Frontier
	if shareable(opts) {
		forward := grp.Kind == KindSharedSource
		f := sch.lookup(grp.Hub, forward, grp.MaxK, passes)
		if f != nil {
			timing.CacheHit = true
		} else {
			var err error
			bfsStart := time.Now()
			if forward {
				f, err = core.NewForwardFrontier(g, grp.Hub, grp.MaxK, opts.Predicate, opts.PredicateToken)
			} else {
				f, err = core.NewBackwardFrontier(g, grp.Hub, grp.MaxK, opts.Predicate, opts.PredicateToken)
			}
			timing.SharedBFS = time.Since(bfsStart)
			if err != nil {
				<-sem
				for _, u := range grp.Members {
					sch.settle(results, errs, u, nil, err)
				}
				return
			}
			passes.run.Add(1)
			if sch.Frontiers != nil {
				sch.Frontiers.Store(f)
			}
		}
		if forward {
			fwd = f
		} else {
			bwd = f
		}
	}
	<-sem

	// Fan the members out across the pool; the frontier is immutable and
	// read concurrently by every member.
	var mwg sync.WaitGroup
	for idx, u := range grp.Members {
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			cerr := ctx.Err()
			for _, v := range grp.Members[idx:] {
				sch.settle(results, errs, v, nil, cerr)
			}
			mwg.Wait()
			return
		}
		mwg.Add(1)
		go func(u int) {
			defer mwg.Done()
			defer func() { <-sem }()
			res, err := sch.runOne(ctx, g, plan.Unique[u], opts, fwd, bwd, passes)
			sch.settle(results, errs, u, res, err)
		}(u)
	}
	mwg.Wait()
}

// lookup consults the FrontierProvider, maintaining the hit/miss
// counters. Nil-provider lookups are free and uncounted.
func (sch *Scheduler) lookup(origin graph.VertexID, forward bool, k int, passes *passCounters) *core.Frontier {
	if sch.Frontiers == nil {
		return nil
	}
	if f := sch.Frontiers.Lookup(origin, forward, k); f != nil {
		passes.hits.Add(1)
		return f
	}
	passes.misses.Add(1)
	return nil
}

// runOne executes a single query on a pooled session. Sides not covered
// by a group frontier are served from the provider when possible,
// materialized as frontiers (and deposited) on a provider miss, and left
// to the session's scratch BFS otherwise.
func (sch *Scheduler) runOne(ctx context.Context, g *graph.Graph, q core.Query, opts core.Options, fwd, bwd *core.Frontier, passes *passCounters) (*core.Result, error) {
	if sch.Frontiers != nil && shareable(opts) {
		if fwd == nil {
			fwd = sch.memberFrontier(g, q.S, true, q.K, opts, passes)
		}
		if bwd == nil {
			bwd = sch.memberFrontier(g, q.T, false, q.K, opts, passes)
		}
	}
	// Sides still nil run as scratch BFS passes inside the session.
	if fwd == nil {
		passes.run.Add(1)
	}
	if bwd == nil {
		passes.run.Add(1)
	}
	sess := sch.Acquire()
	defer sch.Release(sess)
	return sess.RunShared(ctx, q, opts, fwd, bwd)
}

// memberFrontier resolves one per-member BFS side through the provider:
// cache hit, or build + deposit. Construction errors (e.g. an endpoint
// out of range) return nil so the session's own validation reports them.
func (sch *Scheduler) memberFrontier(g *graph.Graph, origin graph.VertexID, forward bool, k int, opts core.Options, passes *passCounters) *core.Frontier {
	if f := sch.lookup(origin, forward, k, passes); f != nil {
		return f
	}
	var f *core.Frontier
	var err error
	if forward {
		f, err = core.NewForwardFrontier(g, origin, k, opts.Predicate, opts.PredicateToken)
	} else {
		f, err = core.NewBackwardFrontier(g, origin, k, opts.Predicate, opts.PredicateToken)
	}
	if err != nil {
		return nil
	}
	passes.run.Add(1)
	sch.Frontiers.Store(f)
	return f
}
