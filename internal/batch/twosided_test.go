package batch

import (
	"context"
	"sync"
	"testing"

	"pathenum/internal/core"
	"pathenum/internal/graph"
)

// gridBatch builds the hub-to-hub workload the two-sided pass exists
// for: every query pairs one of nSrc sources with one of nTgt targets,
// so the batch touches only nSrc+nTgt distinct BFS sides.
func gridBatch(nSrc, nTgt, k int) []core.Query {
	var queries []core.Query
	for s := 0; s < nSrc; s++ {
		for t := 0; t < nTgt; t++ {
			queries = append(queries, core.Query{
				S: graph.VertexID(s),
				T: graph.VertexID(nSrc + t),
				K: k,
			})
		}
	}
	return queries
}

// TestPlanTwoSidedGrid: an 8x8 hub grid plans to one BFS side per
// distinct endpoint — 16 shared specs, zero solo sides — instead of the
// 8 + 64 sides one-sided grouping would build.
func TestPlanTwoSidedGrid(t *testing.T) {
	g := testGraph(t)
	queries := gridBatch(8, 8, 4)
	plan := NewPlanner(g).Plan(queries)
	st := plan.Stats()

	// Ties prefer the source side, so the greedy cover commits the eight
	// source buckets.
	if st.SharedSourceGroups != 8 || st.SharedTargetGroups != 0 || st.Singletons != 0 {
		t.Fatalf("group mix = %+v, want 8 shared-source groups", st)
	}
	if len(plan.Shared) != 16 {
		t.Fatalf("Shared = %d specs, want 16 (8 sources + 8 targets)", len(plan.Shared))
	}
	for _, spec := range plan.Shared {
		if spec.Uses != 8 || spec.MaxK != 4 {
			t.Fatalf("spec %+v: want Uses=8 MaxK=4", spec)
		}
	}
	if st.BFSPasses != 16 || st.BFSPassesNaive != 128 || st.BFSPassesSaved != 112 {
		t.Fatalf("BFS passes = naive %d actual %d saved %d, want 128/16/112",
			st.BFSPassesNaive, st.BFSPasses, st.BFSPassesSaved)
	}
	if st.SharedFrontiers != 16 {
		t.Fatalf("SharedFrontiers = %d, want 16", st.SharedFrontiers)
	}
	// The 8 backward target sides are shared across group boundaries —
	// exactly the frontiers one-sided grouping could never share.
	if st.TwoSidedFrontiers != 8 {
		t.Fatalf("TwoSidedFrontiers = %d, want 8", st.TwoSidedFrontiers)
	}
	coverage(t, plan)
}

// TestPlanTwoSidedMaxK: a shared spec is built to the largest bound any
// of its users needs, even across group boundaries.
func TestPlanTwoSidedMaxK(t *testing.T) {
	g := testGraph(t)
	queries := []core.Query{
		// Source group at 1 (k<=4), but target 20 is also needed at k=6
		// by a member of source group 2.
		{S: 1, T: 20, K: 4}, {S: 1, T: 21, K: 3},
		{S: 2, T: 20, K: 6}, {S: 2, T: 22, K: 5},
	}
	plan := NewPlanner(g).Plan(queries)
	var tgt20 *FrontierSpec
	for i := range plan.Shared {
		if spec := &plan.Shared[i]; spec.Origin == 20 && !spec.Forward {
			tgt20 = spec
		}
	}
	if tgt20 == nil {
		t.Fatalf("target side 20 not shared: %+v", plan.Shared)
	}
	if tgt20.Uses != 2 || tgt20.MaxK != 6 {
		t.Fatalf("target-20 spec %+v, want Uses=2 MaxK=6", *tgt20)
	}
}

// mapProvider is a trivial always-admit FrontierProvider for tests.
type mapProvider struct {
	mu sync.Mutex
	m  map[frontierKey]*core.Frontier
}

func newMapProvider() *mapProvider {
	return &mapProvider{m: make(map[frontierKey]*core.Frontier)}
}

func (p *mapProvider) Lookup(origin graph.VertexID, forward bool, k int) *core.Frontier {
	p.mu.Lock()
	defer p.mu.Unlock()
	f := p.m[frontierKey{origin, forward}]
	if f == nil || f.Bound() < k {
		return nil
	}
	return f
}

func (p *mapProvider) Store(f *core.Frontier, uses int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.m[frontierKey{f.Origin(), f.IsForward()}] = f
	return true
}

// TestExecuteTwoSidedDifferential: a cold hub-to-hub batch runs exactly
// one BFS pass per distinct endpoint, a warm repeat runs zero, and both
// agree with the sequential core pipeline on every count.
func TestExecuteTwoSidedDifferential(t *testing.T) {
	g := testGraph(t)
	queries := gridBatch(8, 8, 4)
	plan := NewPlanner(g).Plan(queries)
	ctx := context.Background()

	want := make([]uint64, len(queries))
	for i, q := range queries {
		n, err := core.Count(g, q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = n
	}
	check := func(name string, uniqRes []*core.Result, uniqErrs []error) {
		t.Helper()
		results, errs := plan.Scatter(uniqRes, uniqErrs)
		for i := range queries {
			if errs[i] != nil {
				t.Fatalf("%s query %d: %v", name, i, errs[i])
			}
			if got := results[i].Counters.Results; got != want[i] {
				t.Fatalf("%s query %d: count %d != sequential %d", name, i, got, want[i])
			}
		}
	}

	// Cold, no provider: the acceptance bound — one BFS per endpoint.
	sch := newTestScheduler(g, 3)
	res, errs, stats := sch.Execute(ctx, g, plan, core.Options{})
	check("cold", res, errs)
	if stats.BFSPassesRun != len(plan.Shared) {
		t.Fatalf("cold two-sided BFSPassesRun = %d, want %d (one per distinct endpoint)",
			stats.BFSPassesRun, len(plan.Shared))
	}

	// Cold with an empty provider, then warm: the repeat runs BFS-free.
	sch.Frontiers = newMapProvider()
	res, errs, stats = sch.Execute(ctx, g, plan, core.Options{})
	check("cold+provider", res, errs)
	if stats.BFSPassesRun != len(plan.Shared) {
		t.Fatalf("cold provider run BFSPassesRun = %d, want %d", stats.BFSPassesRun, len(plan.Shared))
	}
	res, errs, stats = sch.Execute(ctx, g, plan, core.Options{})
	check("warm", res, errs)
	if stats.BFSPassesRun != 0 {
		t.Fatalf("warm two-sided BFSPassesRun = %d, want 0", stats.BFSPassesRun)
	}
	if stats.FrontierCacheHits == 0 {
		t.Fatal("warm run recorded no cache hits")
	}
}

// TestExecuteTwoSidedGroupShapes: the differential holds across every
// group shape at once — two-sided grid queries, a plain shared-source
// cluster, a shared-target cluster, duplicates and loners — cold and
// warm.
func TestExecuteTwoSidedGroupShapes(t *testing.T) {
	g := testGraph(t)
	queries := gridBatch(4, 4, 3)
	queries = append(queries,
		// Shared-source cluster off-grid.
		core.Query{S: 30, T: 40, K: 4}, core.Query{S: 30, T: 41, K: 5},
		// Shared-target cluster.
		core.Query{S: 31, T: 45, K: 4}, core.Query{S: 32, T: 45, K: 4},
		// Loner + exact duplicate of a grid query.
		core.Query{S: 33, T: 46, K: 3},
		queries[0],
	)
	plan := NewPlanner(g).Plan(queries)
	st := plan.Stats()
	if st.Deduped != 1 || st.Singletons == 0 || st.SharedSourceGroups == 0 || st.SharedTargetGroups == 0 {
		t.Fatalf("batch lacks a group shape: %+v", st)
	}

	sch := newTestScheduler(g, 2)
	sch.Frontiers = newMapProvider()
	for pass, wantWarm := range []bool{false, true} {
		res, errsU, stats := sch.Execute(context.Background(), g, plan, core.Options{})
		results, errs := plan.Scatter(res, errsU)
		for i, q := range queries {
			if errs[i] != nil {
				t.Fatalf("pass %d query %d: %v", pass, i, errs[i])
			}
			want, err := core.Count(g, q)
			if err != nil {
				t.Fatal(err)
			}
			if got := results[i].Counters.Results; got != want {
				t.Fatalf("pass %d %v: count %d != sequential %d", pass, q, got, want)
			}
		}
		if wantWarm && stats.BFSPassesRun != 0 {
			t.Fatalf("warm mixed batch BFSPassesRun = %d, want 0", stats.BFSPassesRun)
		}
	}
}

// TestExecuteRerankTwoSided: with a fixed Estimate hook and one worker,
// the order OnResult settles members in is fully determined — probes in
// plan (static cost) order, then remaining members cheapest-estimate
// first across groups — and identical run to run.
func TestExecuteRerankTwoSided(t *testing.T) {
	g := testGraph(t)
	// Three shared-source groups of 4; plan order is by static cost.
	var queries []core.Query
	for _, s := range []graph.VertexID{1, 2, 3} {
		for i := 0; i < 4; i++ {
			queries = append(queries, core.Query{S: s, T: graph.VertexID(10 + 3*int(s) + i), K: 4})
		}
	}
	plan := NewPlanner(g).Plan(queries)
	if len(plan.Groups) != 3 {
		t.Fatalf("want 3 groups, got %d", len(plan.Groups))
	}
	// Fixed estimates invert the static order: the group planned last
	// becomes the cheapest.
	est := map[graph.VertexID]float64{}
	for gi, grp := range plan.Groups {
		est[grp.Hub] = float64(len(plan.Groups) - gi)
	}

	capture := func() []int {
		var mu sync.Mutex
		var order []int
		sch := newTestScheduler(g, 1)
		sch.Estimate = func(q core.Query, probe *core.Result) float64 { return est[q.S] }
		sch.OnResult = func(u int, res *core.Result, err error) {
			if err != nil {
				t.Errorf("unique %d: %v", u, err)
			}
			mu.Lock()
			order = append(order, u)
			mu.Unlock()
		}
		sch.Execute(context.Background(), g, plan, core.Options{})
		return order
	}

	order := capture()
	if len(order) != len(plan.Unique) {
		t.Fatalf("settled %d uniques, want %d", len(order), len(plan.Unique))
	}
	// First three settles are the probes, in plan order.
	for gi := 0; gi < 3; gi++ {
		if order[gi] != plan.Groups[gi].Members[0] {
			t.Fatalf("settle %d = unique %d, want group %d probe %d",
				gi, order[gi], gi, plan.Groups[gi].Members[0])
		}
	}
	// Remaining members arrive in ascending fed-back estimate: group 2
	// (est 1), then group 1 (est 2), then group 0 (est 3), members in
	// index order within each.
	var want []int
	for gi := 2; gi >= 0; gi-- {
		want = append(want, plan.Groups[gi].Members[1:]...)
	}
	got := order[3:]
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("re-ranked settle order %v, want %v", got, want)
		}
	}
	// Determinism: a second capture reproduces the order exactly.
	again := capture()
	for i := range order {
		if order[i] != again[i] {
			t.Fatalf("settle order not deterministic: run1 %v run2 %v", order, again)
		}
	}
	// The fed-back estimate is surfaced per group.
	_, _, stats := func() ([]*core.Result, []error, *Stats) {
		sch := newTestScheduler(g, 1)
		sch.Estimate = func(q core.Query, probe *core.Result) float64 { return est[q.S] }
		return sch.Execute(context.Background(), g, plan, core.Options{})
	}()
	for gi, gt := range stats.GroupTimings {
		if gt.Estimate != est[plan.Groups[gi].Hub] {
			t.Fatalf("group %d Estimate = %v, want %v", gi, gt.Estimate, est[plan.Groups[gi].Hub])
		}
	}
}
