package batch

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"pathenum/internal/core"
	"pathenum/internal/gen"
	"pathenum/internal/graph"
)

// newTestScheduler builds a scheduler over a plain sync.Pool of sessions.
func newTestScheduler(g *graph.Graph, workers int) *Scheduler {
	pool := &sync.Pool{New: func() any { return core.NewSession(g, nil) }}
	return &Scheduler{
		Workers: workers,
		Acquire: func() *core.Session { return pool.Get().(*core.Session) },
		Release: func(s *core.Session) { pool.Put(s) },
	}
}

// randomBatch samples a mixed workload: shared-source clusters, shared-
// target clusters, duplicates and loners.
func randomBatch(rng *rand.Rand, n int, count int) []core.Query {
	var queries []core.Query
	v := func() graph.VertexID { return graph.VertexID(rng.Intn(n)) }
	for len(queries) < count {
		k := 2 + rng.Intn(4)
		switch rng.Intn(4) {
		case 0: // shared-source cluster
			s := v()
			for i := 0; i < 3 && len(queries) < count; i++ {
				queries = append(queries, core.Query{S: s, T: v(), K: k})
			}
		case 1: // shared-target cluster
			t := v()
			for i := 0; i < 3 && len(queries) < count; i++ {
				queries = append(queries, core.Query{S: v(), T: t, K: k})
			}
		case 2: // duplicate of an earlier query
			if len(queries) > 0 {
				queries = append(queries, queries[rng.Intn(len(queries))])
			}
		default: // loner
			queries = append(queries, core.Query{S: v(), T: v(), K: k})
		}
	}
	return queries
}

// TestExecuteMatchesSequential: the scheduled shared-computation execution
// must produce exactly the per-query counts of the plain core pipeline on
// random mixed batches (the acceptance cross-check at the subsystem
// level).
func TestExecuteMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	ctx := context.Background()
	for trial := 0; trial < 10; trial++ {
		n := 30 + rng.Intn(40)
		g := gen.BarabasiAlbert(n, 3, rng.Int63())
		queries := randomBatch(rng, n, 20+rng.Intn(20))
		plan := NewPlanner(g).Plan(queries)
		sch := newTestScheduler(g, 1+rng.Intn(4))

		uniqRes, uniqErrs, stats := sch.Execute(ctx, g, plan, core.Options{})
		results, errs := plan.Scatter(uniqRes, uniqErrs)

		for i, q := range queries {
			if q.Validate(g) != nil {
				if errs[i] == nil {
					t.Fatalf("trial %d query %d: invalid query got no error", trial, i)
				}
				continue
			}
			if errs[i] != nil {
				t.Fatalf("trial %d query %d: %v", trial, i, errs[i])
			}
			want, err := core.Count(g, q)
			if err != nil {
				t.Fatal(err)
			}
			if got := results[i].Counters.Results; got != want {
				t.Fatalf("trial %d %v: batch count %d != sequential %d", trial, q, got, want)
			}
		}
		if stats.BFSPasses > stats.BFSPassesNaive {
			t.Fatalf("trial %d: plan runs more BFS passes (%d) than naive (%d)",
				trial, stats.BFSPasses, stats.BFSPassesNaive)
		}
	}
}

// TestExecutePredicateBatch: a constraint-carrying batch (edge predicate)
// agrees with sequential predicate runs.
func TestExecutePredicateBatch(t *testing.T) {
	g := gen.BarabasiAlbert(60, 3, 11)
	pred := func(from, to graph.VertexID) bool { return (int(from)+int(to))%4 != 0 }
	queries := []core.Query{
		{S: 0, T: 10, K: 5}, {S: 0, T: 11, K: 5}, {S: 0, T: 12, K: 4},
		{S: 5, T: 20, K: 5}, {S: 6, T: 20, K: 5},
	}
	plan := NewPlanner(g).Plan(queries)
	sch := newTestScheduler(g, 2)
	// No PredicateToken: the predicate is opaque, so the scheduler must
	// degrade to unshared per-member execution rather than share a
	// frontier whose predicate identity it cannot name.
	opts := core.Options{Predicate: pred}
	uniqRes, uniqErrs, stats := sch.Execute(context.Background(), g, plan, opts)
	if stats.BFSPassesRun != 2*stats.Unique {
		t.Fatalf("opaque predicate must run 2 passes per unique query, ran %d for %d", stats.BFSPassesRun, stats.Unique)
	}
	results, errs := plan.Scatter(uniqRes, uniqErrs)
	for i, q := range queries {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		want, err := core.Run(g, q, core.Options{Predicate: pred})
		if err != nil {
			t.Fatal(err)
		}
		if results[i].Counters.Results != want.Counters.Results {
			t.Fatalf("%v: predicate batch count %d != sequential %d",
				q, results[i].Counters.Results, want.Counters.Results)
		}
	}
}

// TestExecuteCancelledMidway: cancelling during a batch must fail
// not-yet-started members fast with ctx.Err() while in-flight queries stop
// early, and Execute must still return (no deadlock on the pool). The
// cancel fires from the first emitted path, so with one worker it lands
// deterministically while later members are still queued behind the
// semaphore.
func TestExecuteCancelledMidway(t *testing.T) {
	g := gen.BarabasiAlbert(200, 4, 3)
	var queries []core.Query
	for i := 1; i < 64; i++ {
		queries = append(queries, core.Query{S: 0, T: graph.VertexID(i), K: 8})
	}
	plan := NewPlanner(g).Plan(queries)
	sch := newTestScheduler(g, 1)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	opts := core.Options{Emit: func([]graph.VertexID) bool {
		once.Do(cancel)
		return true
	}}
	done := make(chan struct{})
	var errs []error
	go func() {
		defer close(done)
		_, uniqErrs, _ := sch.Execute(ctx, g, plan, opts)
		errs = uniqErrs
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Execute did not return after cancellation")
	}
	cancelled := 0
	for _, err := range errs {
		if errors.Is(err, context.Canceled) {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Fatal("no member observed the cancellation")
	}
}

// TestExecuteStatsTimings: every group reports a timing entry and shared
// groups record their frontier build.
func TestExecuteStatsTimings(t *testing.T) {
	g := gen.BarabasiAlbert(80, 3, 5)
	queries := []core.Query{
		{S: 0, T: 10, K: 5}, {S: 0, T: 11, K: 5}, {S: 0, T: 12, K: 5},
		{S: 40, T: 41, K: 3},
	}
	plan := NewPlanner(g).Plan(queries)
	sch := newTestScheduler(g, 4)
	_, _, stats := sch.Execute(context.Background(), g, plan, core.Options{})
	if len(stats.GroupTimings) != len(plan.Groups) {
		t.Fatalf("GroupTimings = %d entries, want %d", len(stats.GroupTimings), len(plan.Groups))
	}
	for _, gt := range stats.GroupTimings {
		if gt.Size == 0 {
			t.Fatalf("empty timing entry: %+v", gt)
		}
		if gt.Kind == KindSingleton && gt.SharedBFS != 0 {
			t.Fatalf("singleton reports shared BFS time: %+v", gt)
		}
	}
	if stats.Elapsed <= 0 {
		t.Fatal("Elapsed not recorded")
	}
	if stats.BFSPassesSaved != 2 {
		t.Fatalf("BFSPassesSaved = %d, want 2 (group of 3 saves 2)", stats.BFSPassesSaved)
	}
	// Without a FrontierProvider the actual passes match the plan's
	// nominal accounting and no cache counters move.
	if stats.BFSPassesRun != stats.BFSPasses {
		t.Fatalf("BFSPassesRun = %d, want nominal %d", stats.BFSPassesRun, stats.BFSPasses)
	}
	if stats.FrontierCacheHits != 0 || stats.FrontierCacheMisses != 0 {
		t.Fatalf("cache counters moved without a provider: %+v", stats)
	}
}
