package batch

import (
	"math"
	"sort"

	"pathenum/internal/core"
	"pathenum/internal/graph"
)

// Group is one unit of scheduled work: a set of unique queries that share
// a frontier (or a singleton with nothing to share).
type Group struct {
	Kind GroupKind
	// Hub is the shared endpoint: the common source (KindSharedSource),
	// the common target (KindSharedTarget), or the query's source for a
	// singleton.
	Hub graph.VertexID
	// MaxK is the largest hop constraint among the members; the shared
	// frontier is built to this bound so every member can reuse it.
	MaxK int
	// Members indexes into Plan.Unique.
	Members []int
	// Cost is the planner's scheduling estimate — a proxy for the group's
	// enumeration work, not a time prediction: members × maxK, scaled by
	// the hub's degree (log-damped). The scheduler runs expensive groups
	// first so a heavy group is not left to straggle on one worker at the
	// end of the batch (LPT-style makespan heuristic).
	Cost float64
}

// Plan is the output of the Planner: the deduplicated query list, the
// fan-out map back to original batch positions, the shared-computation
// groups, and the two-sided shared-frontier specs.
type Plan struct {
	// Queries is the original batch size.
	Queries int
	// Unique holds the deduplicated valid queries, in first-seen order.
	Unique []core.Query
	// Slots maps each unique query to the original batch positions it
	// answers (always at least one).
	Slots [][]int
	// Groups covers every unique query exactly once, sorted by descending
	// Cost (the scheduling order).
	Groups []Group
	// Shared lists every BFS side (origin, direction) that two or more
	// unique queries need — group hubs and, for hub-to-hub batches, the
	// members' second sides too. The scheduler builds each exactly once
	// and serves all users from the result, in first-seen order over
	// Unique (forward side before backward per query).
	Shared []FrontierSpec

	invalid   []error // per original position; nil when the query is valid
	soloSides int     // BFS sides needed by exactly one unique query
}

// Planner canonicalizes and groups query batches for one graph.
type Planner struct {
	g *graph.Graph
}

// NewPlanner creates a planner over g.
func NewPlanner(g *graph.Graph) *Planner { return &Planner{g: g} }

// Plan canonicalizes the batch: invalid queries are rejected into per-slot
// errors, exact duplicates (same s, t, k) collapse onto one execution, and
// the surviving unique queries are grouped for shared-BFS execution.
//
// Grouping is a bipartite-greedy cover of the (source, target)
// co-occurrence graph: repeatedly commit the endpoint bucket — source or
// target side — holding the most still-unassigned queries (ties prefer the
// source side, then the lower hub id), until no bucket holds two; the
// leftovers are singletons. Greedy max-coverage rather than the (NP-hard)
// optimal cover, but it dominates any single fixed side assignment.
//
// A separate two-sided pass then records every BFS side that two or more
// unique queries need — across group boundaries and including members'
// second sides — as Plan.Shared specs, so a hub-to-hub batch costs one
// frontier per distinct endpoint rather than one per group plus one per
// member.
func (p *Planner) Plan(queries []core.Query) *Plan {
	plan := &Plan{
		Queries: len(queries),
		invalid: make([]error, len(queries)),
	}

	// Pass 1: validate + dedup.
	type key struct {
		s, t graph.VertexID
		k    int
	}
	uniq := make(map[key]int, len(queries))
	for i, q := range queries {
		if err := q.Validate(p.g); err != nil {
			plan.invalid[i] = err
			continue
		}
		ck := key{q.S, q.T, q.K}
		u, ok := uniq[ck]
		if !ok {
			u = len(plan.Unique)
			uniq[ck] = u
			plan.Unique = append(plan.Unique, q)
			plan.Slots = append(plan.Slots, nil)
		}
		plan.Slots[u] = append(plan.Slots[u], i)
	}

	// Passes 2+3: bipartite-greedy grouping. Each round recounts the
	// endpoint buckets over still-unassigned queries and commits the
	// largest one (>= 2 members) as a group; committing a bucket shrinks
	// its members' opposite-side buckets, so the recount is what makes
	// the cover greedy rather than a fixed one-shot assignment. O(rounds
	// x unique) with rounds <= groups — fine at batch sizes.
	assigned := make([]bool, len(plan.Unique))
	remaining := len(plan.Unique)
	for remaining > 0 {
		srcCount := make(map[graph.VertexID]int)
		tgtCount := make(map[graph.VertexID]int)
		for u, q := range plan.Unique {
			if assigned[u] {
				continue
			}
			srcCount[q.S]++
			tgtCount[q.T]++
		}
		// Deterministic argmax: more members wins, ties prefer the source
		// side, then the lower hub id.
		bestN, bestFwd, bestHub := 1, false, graph.VertexID(0)
		better := func(n int, fwd bool, hub graph.VertexID) bool {
			if n != bestN {
				return n > bestN
			}
			if fwd != bestFwd {
				return fwd
			}
			return hub < bestHub
		}
		for u, q := range plan.Unique {
			if assigned[u] {
				continue
			}
			if n := srcCount[q.S]; n > 1 && better(n, true, q.S) {
				bestN, bestFwd, bestHub = n, true, q.S
			}
			if n := tgtCount[q.T]; n > 1 && better(n, false, q.T) {
				bestN, bestFwd, bestHub = n, false, q.T
			}
		}
		if bestN < 2 {
			break
		}
		var members []int
		for u, q := range plan.Unique {
			if assigned[u] {
				continue
			}
			if (bestFwd && q.S == bestHub) || (!bestFwd && q.T == bestHub) {
				members = append(members, u)
				assigned[u] = true
				remaining--
			}
		}
		kind := KindSharedTarget
		if bestFwd {
			kind = KindSharedSource
		}
		plan.Groups = append(plan.Groups, p.shared(kind, bestHub, members, plan.Unique))
	}
	for u, q := range plan.Unique {
		if !assigned[u] {
			plan.Groups = append(plan.Groups, p.singleton(u, q))
		}
	}

	// Scheduling order: most expensive first, with a deterministic
	// tie-break so plans are reproducible.
	sort.SliceStable(plan.Groups, func(i, j int) bool {
		gi, gj := plan.Groups[i], plan.Groups[j]
		if gi.Cost != gj.Cost {
			return gi.Cost > gj.Cost
		}
		if gi.Kind != gj.Kind {
			return gi.Kind > gj.Kind
		}
		return gi.Hub < gj.Hub
	})

	// Pass 4: two-sided sharing. Every unique query needs a forward BFS
	// from its source and a backward BFS to its target; any (origin,
	// direction) needed twice — by a group's members, or across group
	// boundaries — becomes a shared spec built once at the largest bound
	// its users require. Group hub sides always qualify; in a hub-to-hub
	// batch the members' second sides do too.
	type sideKey struct {
		origin  graph.VertexID
		forward bool
	}
	sides := make(map[sideKey]*FrontierSpec, 2*len(plan.Unique))
	var order []sideKey
	record := func(origin graph.VertexID, forward bool, k int) {
		sk := sideKey{origin, forward}
		spec := sides[sk]
		if spec == nil {
			spec = &FrontierSpec{Origin: origin, Forward: forward}
			sides[sk] = spec
			order = append(order, sk)
		}
		spec.Uses++
		if k > spec.MaxK {
			spec.MaxK = k
		}
	}
	for _, q := range plan.Unique {
		record(q.S, true, q.K)
		record(q.T, false, q.K)
	}
	for _, sk := range order {
		spec := sides[sk]
		if spec.Uses >= 2 {
			plan.Shared = append(plan.Shared, *spec)
		} else {
			plan.soloSides++
		}
	}
	return plan
}

func (p *Planner) singleton(u int, q core.Query) Group {
	return Group{
		Kind:    KindSingleton,
		Hub:     q.S,
		MaxK:    q.K,
		Members: []int{u},
		Cost:    groupCost(p.g, q.S, q.K, 1),
	}
}

func (p *Planner) shared(kind GroupKind, hub graph.VertexID, members []int, unique []core.Query) Group {
	if len(members) == 1 {
		return p.singleton(members[0], unique[members[0]])
	}
	maxK := 0
	for _, u := range members {
		if unique[u].K > maxK {
			maxK = unique[u].K
		}
	}
	return Group{
		Kind:    kind,
		Hub:     hub,
		MaxK:    maxK,
		Members: members,
		Cost:    groupCost(p.g, hub, maxK, len(members)),
	}
}

// groupCost is the scheduling proxy documented on Group.Cost.
func groupCost(g *graph.Graph, hub graph.VertexID, maxK, size int) float64 {
	return float64(size*maxK) * (1 + math.Log1p(float64(g.Degree(hub))))
}

// Err returns the validation error recorded for original batch position i
// (nil when the query at i is valid).
func (p *Plan) Err(i int) error { return p.invalid[i] }

// Invalid returns the per-original-position validation errors (nil slots
// are valid queries). Streaming consumers use it to deliver rejections
// before execution starts; the slice is owned by the plan — read only.
func (p *Plan) Invalid() []error { return p.invalid }

// Scatter fans per-unique results back out to original batch positions:
// duplicate queries share the same *core.Result pointer (results must be
// treated as read-only), and invalid positions carry their validation
// error. results and errs must be len(p.Unique), as produced by the
// Scheduler.
func (p *Plan) Scatter(results []*core.Result, errs []error) ([]*core.Result, []error) {
	outRes := make([]*core.Result, p.Queries)
	outErr := make([]error, p.Queries)
	copy(outErr, p.invalid)
	for u, slots := range p.Slots {
		for _, i := range slots {
			outRes[i] = results[u]
			outErr[i] = errs[u]
		}
	}
	return outRes, outErr
}

// Stats seeds the batch Stats with the planner-level accounting: dedup
// counts and the nominal BFS pass arithmetic. The scheduler fills in the
// timing fields.
func (p *Plan) Stats() *Stats {
	st := &Stats{
		Queries: p.Queries,
		Unique:  len(p.Unique),
		Groups:  len(p.Groups),
	}
	valid := 0
	for _, err := range p.invalid {
		if err == nil {
			valid++
		} else {
			st.Invalid++
		}
	}
	st.Deduped = valid - st.Unique
	st.BFSPassesNaive = 2 * valid
	for _, g := range p.Groups {
		switch g.Kind {
		case KindSingleton:
			st.Singletons++
		case KindSharedSource:
			st.SharedSourceGroups++
		case KindSharedTarget:
			st.SharedTargetGroups++
		}
	}
	// Nominal passes under two-sided sharing: one per shared spec plus
	// one per side only a single query needs.
	st.BFSPasses = len(p.Shared) + p.soloSides
	st.BFSPassesSaved = st.BFSPassesNaive - st.BFSPasses
	st.SharedFrontiers = len(p.Shared)
	hubKeys := make(map[FrontierSpec]bool, len(p.Groups))
	for _, g := range p.Groups {
		if g.Kind == KindSingleton {
			continue
		}
		hubKeys[FrontierSpec{Origin: g.Hub, Forward: g.Kind == KindSharedSource}] = true
	}
	for _, spec := range p.Shared {
		if !hubKeys[FrontierSpec{Origin: spec.Origin, Forward: spec.Forward}] {
			st.TwoSidedFrontiers++
		}
	}
	return st
}
