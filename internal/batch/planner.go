package batch

import (
	"math"
	"sort"

	"pathenum/internal/core"
	"pathenum/internal/graph"
)

// Group is one unit of scheduled work: a set of unique queries that share
// a frontier (or a singleton with nothing to share).
type Group struct {
	Kind GroupKind
	// Hub is the shared endpoint: the common source (KindSharedSource),
	// the common target (KindSharedTarget), or the query's source for a
	// singleton.
	Hub graph.VertexID
	// MaxK is the largest hop constraint among the members; the shared
	// frontier is built to this bound so every member can reuse it.
	MaxK int
	// Members indexes into Plan.Unique.
	Members []int
	// Cost is the planner's scheduling estimate — a proxy for the group's
	// enumeration work, not a time prediction: members × maxK, scaled by
	// the hub's degree (log-damped). The scheduler runs expensive groups
	// first so a heavy group is not left to straggle on one worker at the
	// end of the batch (LPT-style makespan heuristic).
	Cost float64
}

// Plan is the output of the Planner: the deduplicated query list, the
// fan-out map back to original batch positions, and the shared-computation
// groups.
type Plan struct {
	// Queries is the original batch size.
	Queries int
	// Unique holds the deduplicated valid queries, in first-seen order.
	Unique []core.Query
	// Slots maps each unique query to the original batch positions it
	// answers (always at least one).
	Slots [][]int
	// Groups covers every unique query exactly once, sorted by descending
	// Cost (the scheduling order).
	Groups []Group

	invalid []error // per original position; nil when the query is valid
}

// Planner canonicalizes and groups query batches for one graph.
type Planner struct {
	g *graph.Graph
}

// NewPlanner creates a planner over g.
func NewPlanner(g *graph.Graph) *Planner { return &Planner{g: g} }

// Plan canonicalizes the batch: invalid queries are rejected into per-slot
// errors, exact duplicates (same s, t, k) collapse onto one execution, and
// the surviving unique queries are grouped for shared-BFS execution.
//
// Grouping is the common-computation detection heuristic: every unique
// query joins its source group or its target group, whichever has more
// potential members (ties prefer the source side), and any group left with
// fewer than two members degenerates to singletons. A query can share only
// one endpoint's BFS — the other side still runs per query — so the
// heuristic maximizes members of large groups rather than solving the
// (NP-hard) optimal cover.
func (p *Planner) Plan(queries []core.Query) *Plan {
	plan := &Plan{
		Queries: len(queries),
		invalid: make([]error, len(queries)),
	}

	// Pass 1: validate + dedup.
	type key struct {
		s, t graph.VertexID
		k    int
	}
	uniq := make(map[key]int, len(queries))
	for i, q := range queries {
		if err := q.Validate(p.g); err != nil {
			plan.invalid[i] = err
			continue
		}
		ck := key{q.S, q.T, q.K}
		u, ok := uniq[ck]
		if !ok {
			u = len(plan.Unique)
			uniq[ck] = u
			plan.Unique = append(plan.Unique, q)
			plan.Slots = append(plan.Slots, nil)
		}
		plan.Slots[u] = append(plan.Slots[u], i)
	}

	// Pass 2: count sharing potential per endpoint over unique queries.
	srcCount := make(map[graph.VertexID]int)
	tgtCount := make(map[graph.VertexID]int)
	for _, q := range plan.Unique {
		srcCount[q.S]++
		tgtCount[q.T]++
	}

	// Pass 3: assign each query to the more promising side.
	srcGroups := make(map[graph.VertexID][]int)
	tgtGroups := make(map[graph.VertexID][]int)
	for u, q := range plan.Unique {
		switch {
		case srcCount[q.S] >= 2 && srcCount[q.S] >= tgtCount[q.T]:
			srcGroups[q.S] = append(srcGroups[q.S], u)
		case tgtCount[q.T] >= 2:
			tgtGroups[q.T] = append(tgtGroups[q.T], u)
		default:
			plan.Groups = append(plan.Groups, p.singleton(u, q))
		}
	}

	// Pass 4: materialize shared groups; assignment can leave a bucket
	// with a single member (its peers chose the other endpoint), which
	// degenerates to a singleton.
	for hub, members := range srcGroups {
		plan.Groups = append(plan.Groups, p.shared(KindSharedSource, hub, members, plan.Unique))
	}
	for hub, members := range tgtGroups {
		plan.Groups = append(plan.Groups, p.shared(KindSharedTarget, hub, members, plan.Unique))
	}

	// Scheduling order: most expensive first, with a deterministic
	// tie-break so plans are reproducible.
	sort.SliceStable(plan.Groups, func(i, j int) bool {
		gi, gj := plan.Groups[i], plan.Groups[j]
		if gi.Cost != gj.Cost {
			return gi.Cost > gj.Cost
		}
		if gi.Kind != gj.Kind {
			return gi.Kind > gj.Kind
		}
		return gi.Hub < gj.Hub
	})
	return plan
}

func (p *Planner) singleton(u int, q core.Query) Group {
	return Group{
		Kind:    KindSingleton,
		Hub:     q.S,
		MaxK:    q.K,
		Members: []int{u},
		Cost:    groupCost(p.g, q.S, q.K, 1),
	}
}

func (p *Planner) shared(kind GroupKind, hub graph.VertexID, members []int, unique []core.Query) Group {
	if len(members) == 1 {
		return p.singleton(members[0], unique[members[0]])
	}
	maxK := 0
	for _, u := range members {
		if unique[u].K > maxK {
			maxK = unique[u].K
		}
	}
	return Group{
		Kind:    kind,
		Hub:     hub,
		MaxK:    maxK,
		Members: members,
		Cost:    groupCost(p.g, hub, maxK, len(members)),
	}
}

// groupCost is the scheduling proxy documented on Group.Cost.
func groupCost(g *graph.Graph, hub graph.VertexID, maxK, size int) float64 {
	return float64(size*maxK) * (1 + math.Log1p(float64(g.Degree(hub))))
}

// Err returns the validation error recorded for original batch position i
// (nil when the query at i is valid).
func (p *Plan) Err(i int) error { return p.invalid[i] }

// Invalid returns the per-original-position validation errors (nil slots
// are valid queries). Streaming consumers use it to deliver rejections
// before execution starts; the slice is owned by the plan — read only.
func (p *Plan) Invalid() []error { return p.invalid }

// Scatter fans per-unique results back out to original batch positions:
// duplicate queries share the same *core.Result pointer (results must be
// treated as read-only), and invalid positions carry their validation
// error. results and errs must be len(p.Unique), as produced by the
// Scheduler.
func (p *Plan) Scatter(results []*core.Result, errs []error) ([]*core.Result, []error) {
	outRes := make([]*core.Result, p.Queries)
	outErr := make([]error, p.Queries)
	copy(outErr, p.invalid)
	for u, slots := range p.Slots {
		for _, i := range slots {
			outRes[i] = results[u]
			outErr[i] = errs[u]
		}
	}
	return outRes, outErr
}

// Stats seeds the batch Stats with the planner-level accounting: dedup
// counts and the nominal BFS pass arithmetic. The scheduler fills in the
// timing fields.
func (p *Plan) Stats() *Stats {
	st := &Stats{
		Queries: p.Queries,
		Unique:  len(p.Unique),
		Groups:  len(p.Groups),
	}
	valid := 0
	for _, err := range p.invalid {
		if err == nil {
			valid++
		} else {
			st.Invalid++
		}
	}
	st.Deduped = valid - st.Unique
	st.BFSPassesNaive = 2 * valid
	for _, g := range p.Groups {
		switch g.Kind {
		case KindSingleton:
			st.Singletons++
			st.BFSPasses += 2
		case KindSharedSource:
			st.SharedSourceGroups++
			st.BFSPasses += 1 + len(g.Members)
		case KindSharedTarget:
			st.SharedTargetGroups++
			st.BFSPasses += 1 + len(g.Members)
		}
	}
	st.BFSPassesSaved = st.BFSPassesNaive - st.BFSPasses
	return st
}
