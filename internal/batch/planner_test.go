package batch

import (
	"testing"

	"pathenum/internal/core"
	"pathenum/internal/gen"
	"pathenum/internal/graph"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	return gen.BarabasiAlbert(50, 3, 7)
}

// coverage asserts the groups partition the unique queries exactly.
func coverage(t *testing.T, plan *Plan) {
	t.Helper()
	seen := make([]int, len(plan.Unique))
	for _, g := range plan.Groups {
		if g.Kind != KindSingleton && len(g.Members) < 2 {
			t.Errorf("shared group %v has %d members", g, len(g.Members))
		}
		for _, u := range g.Members {
			seen[u]++
		}
	}
	for u, c := range seen {
		if c != 1 {
			t.Errorf("unique query %d covered %d times", u, c)
		}
	}
}

func TestPlanDedup(t *testing.T) {
	g := testGraph(t)
	queries := []core.Query{
		{S: 0, T: 9, K: 4},
		{S: 0, T: 9, K: 4}, // exact duplicate
		{S: 0, T: 9, K: 5}, // different k: NOT a duplicate
		{S: 0, T: 9, K: 4}, // another duplicate
	}
	plan := NewPlanner(g).Plan(queries)
	if len(plan.Unique) != 2 {
		t.Fatalf("Unique = %d, want 2", len(plan.Unique))
	}
	if got := plan.Slots[0]; len(got) != 3 {
		t.Fatalf("slots for duplicate = %v, want 3 positions", got)
	}
	st := plan.Stats()
	if st.Deduped != 2 || st.Queries != 4 || st.Unique != 2 {
		t.Fatalf("stats = %+v, want Deduped=2 Unique=2 Queries=4", st)
	}
	coverage(t, plan)
}

func TestPlanGrouping(t *testing.T) {
	g := testGraph(t)
	queries := []core.Query{
		// Three sharing source 1.
		{S: 1, T: 10, K: 4}, {S: 1, T: 11, K: 5}, {S: 1, T: 12, K: 3},
		// Two sharing target 20.
		{S: 2, T: 20, K: 4}, {S: 3, T: 20, K: 4},
		// A loner.
		{S: 30, T: 31, K: 4},
	}
	plan := NewPlanner(g).Plan(queries)
	st := plan.Stats()
	if st.SharedSourceGroups != 1 || st.SharedTargetGroups != 1 || st.Singletons != 1 {
		t.Fatalf("group mix = %+v, want 1 shared-source, 1 shared-target, 1 singleton", st)
	}
	// BFS accounting: naive = 2*6 = 12; plan = (1+3) + (1+2) + 2 = 9.
	if st.BFSPassesNaive != 12 || st.BFSPasses != 9 || st.BFSPassesSaved != 3 {
		t.Fatalf("BFS passes = naive %d actual %d saved %d, want 12/9/3",
			st.BFSPassesNaive, st.BFSPasses, st.BFSPassesSaved)
	}
	// The shared-source group must carry maxK = 5 so every member fits.
	for _, grp := range plan.Groups {
		if grp.Kind == KindSharedSource && grp.MaxK != 5 {
			t.Fatalf("shared-source MaxK = %d, want 5", grp.MaxK)
		}
	}
	coverage(t, plan)
}

// TestPlanDegenerateSharedGroup: when a bucket's peers all choose the
// other endpoint, the leftover single-member bucket must degenerate to a
// singleton rather than pay a useless shared pass.
func TestPlanDegenerateSharedGroup(t *testing.T) {
	g := testGraph(t)
	// srcCount[a]=2, tgtCount[x]=2: (a,x) and (a,y) go to source group a
	// (ties prefer source), leaving (b,x) alone in target bucket x.
	queries := []core.Query{
		{S: 1, T: 10, K: 4}, // (a,x)
		{S: 1, T: 11, K: 4}, // (a,y)
		{S: 2, T: 10, K: 4}, // (b,x)
	}
	plan := NewPlanner(g).Plan(queries)
	st := plan.Stats()
	if st.SharedSourceGroups != 1 || st.SharedTargetGroups != 0 || st.Singletons != 1 {
		t.Fatalf("group mix = %+v, want 1 shared-source + 1 singleton", st)
	}
	coverage(t, plan)
}

func TestPlanInvalidQueries(t *testing.T) {
	g := testGraph(t)
	queries := []core.Query{
		{S: 0, T: 9, K: 4},
		{S: 5, T: 5, K: 4},    // s == t
		{S: 0, T: 9, K: 0},    // k < 1
		{S: 0, T: 9999, K: 4}, // out of range
	}
	plan := NewPlanner(g).Plan(queries)
	if len(plan.Unique) != 1 {
		t.Fatalf("Unique = %d, want 1", len(plan.Unique))
	}
	st := plan.Stats()
	if st.Invalid != 3 {
		t.Fatalf("Invalid = %d, want 3", st.Invalid)
	}
	for i := 1; i <= 3; i++ {
		if plan.Err(i) == nil {
			t.Errorf("position %d: expected validation error", i)
		}
	}
	// Scatter must surface the validation errors in-place.
	res, errs := plan.Scatter([]*core.Result{{}}, []error{nil})
	if res[0] == nil || errs[0] != nil {
		t.Error("valid slot mangled by Scatter")
	}
	for i := 1; i <= 3; i++ {
		if errs[i] == nil || res[i] != nil {
			t.Errorf("invalid slot %d not carried through Scatter", i)
		}
	}
}

// TestPlanCostOrder: groups come back sorted by descending cost so the
// scheduler starts the heaviest work first.
func TestPlanCostOrder(t *testing.T) {
	g := testGraph(t)
	queries := []core.Query{
		{S: 1, T: 10, K: 6}, {S: 1, T: 11, K: 6}, {S: 1, T: 12, K: 6}, {S: 1, T: 13, K: 6},
		{S: 2, T: 20, K: 2}, {S: 3, T: 20, K: 2},
		{S: 30, T: 31, K: 1},
	}
	plan := NewPlanner(g).Plan(queries)
	for i := 1; i < len(plan.Groups); i++ {
		if plan.Groups[i-1].Cost < plan.Groups[i].Cost {
			t.Fatalf("groups not sorted by cost: %v", plan.Groups)
		}
	}
	if plan.Groups[0].Kind != KindSharedSource || len(plan.Groups[0].Members) != 4 {
		t.Fatalf("biggest group should lead: %+v", plan.Groups[0])
	}
}
