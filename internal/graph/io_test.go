package graph

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadEdgeList(t *testing.T) {
	input := `# a comment
% another comment

10 20
20 30
10 30
`
	g, orig, err := ReadEdgeList(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 {
		t.Fatalf("NumVertices = %d, want 3", g.NumVertices())
	}
	if g.NumEdges() != 3 {
		t.Fatalf("NumEdges = %d, want 3", g.NumEdges())
	}
	want := []int64{10, 20, 30}
	for i, w := range want {
		if orig[i] != w {
			t.Errorf("orig[%d] = %d, want %d", i, orig[i], w)
		}
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || !g.HasEdge(0, 2) {
		t.Error("remapped edges missing")
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"1\n",
		"a b\n",
		"1 b\n",
	}
	for _, in := range cases {
		if _, _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("ReadEdgeList(%q): expected error", in)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	g := mustGraph(t, 5, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}, {0, 3}})
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, orig, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip edges: %d vs %d", g2.NumEdges(), g.NumEdges())
	}
	// ReadEdgeList remaps ids in first-appearance order; invert via orig.
	toDense := make(map[int64]VertexID, len(orig))
	for dense, raw := range orig {
		toDense[raw] = VertexID(dense)
	}
	for _, e := range g.Edges() {
		if !g2.HasEdge(toDense[int64(e.From)], toDense[int64(e.To)]) {
			t.Errorf("round trip lost edge %v", e)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	g := mustGraph(t, 4, []Edge{{0, 1}, {1, 2}, {2, 0}, {2, 3}})
	if err := SaveFile(path, g); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("load mismatch: %v vs %v", g2, g)
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.txt")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestGraphString(t *testing.T) {
	g := mustGraph(t, 4, []Edge{{0, 1}, {1, 2}})
	s := g.String()
	if !strings.Contains(s, "|V|=4") || !strings.Contains(s, "|E|=2") {
		t.Errorf("String() = %q", s)
	}
}
