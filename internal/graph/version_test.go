package graph

import (
	"errors"
	"testing"
)

func testGraph(t *testing.T) *Graph {
	t.Helper()
	g, err := NewGraph(5, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestVersionFreshGraph(t *testing.T) {
	a := testGraph(t)
	b := testGraph(t)
	if a.Epoch() != 0 || b.Epoch() != 0 {
		t.Fatalf("fresh graphs must start at epoch 0, got %d and %d", a.Epoch(), b.Epoch())
	}
	if a.Version() == b.Version() {
		t.Fatal("independent graphs must not share a lineage")
	}
	if err := a.Version().ValidFor(a.Version()); err != nil {
		t.Fatalf("a version must be valid for itself: %v", err)
	}
	if err := a.Version().ValidFor(b.Version()); !errors.Is(err, ErrGraphMismatch) {
		t.Fatalf("cross-lineage use must report ErrGraphMismatch, got %v", err)
	}
}

func TestDynamicEpochBumpsOnInsertOnly(t *testing.T) {
	d := NewDynamic(testGraph(t))
	if d.Epoch() != 0 {
		t.Fatalf("fresh dynamic epoch = %d, want 0", d.Epoch())
	}
	if ok, err := d.Insert(0, 3); err != nil || !ok {
		t.Fatalf("Insert(0,3) = %v, %v", ok, err)
	}
	if d.Epoch() != 1 {
		t.Fatalf("epoch after insert = %d, want 1", d.Epoch())
	}
	// No-op insertions — duplicate edge, existing base edge, self-loop —
	// must not bump the epoch: nothing changed, caches stay valid.
	for _, e := range []Edge{{0, 3}, {0, 1}, {2, 2}} {
		if ok, err := d.Insert(e.From, e.To); err != nil || ok {
			t.Fatalf("Insert(%v) = %v, %v, want no-op", e, ok, err)
		}
	}
	if d.Epoch() != 1 {
		t.Fatalf("epoch after no-op inserts = %d, want 1", d.Epoch())
	}
	if _, err := d.Insert(0, 99); err == nil {
		t.Fatal("out-of-range insert must error")
	}
	if d.Epoch() != 1 {
		t.Fatalf("epoch after failed insert = %d, want 1", d.Epoch())
	}
}

func TestSnapshotCarriesVersion(t *testing.T) {
	d := NewDynamic(testGraph(t))
	s0 := d.Snapshot()
	s0b := d.Snapshot()
	if s0.Version() != d.Version() || s0.Version() != s0b.Version() {
		t.Fatal("same-epoch snapshots must share the dynamic's version")
	}
	if err := s0.Version().ValidFor(s0b.Version()); err != nil {
		t.Fatalf("same-epoch snapshots must validate: %v", err)
	}

	if ok, err := d.Insert(4, 0); err != nil || !ok {
		t.Fatalf("Insert = %v, %v", ok, err)
	}
	s1 := d.Snapshot()
	if s1.Epoch() != 1 {
		t.Fatalf("snapshot epoch = %d, want 1", s1.Epoch())
	}
	err := s0.Version().ValidFor(s1.Version())
	if !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale snapshot use must report ErrStaleEpoch, got %v", err)
	}
	// The future direction is just as invalid: an epoch-1 artifact must
	// not serve an epoch-0 view.
	if err := s1.Version().ValidFor(s0.Version()); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("future-epoch use must report ErrStaleEpoch, got %v", err)
	}
}

func TestDynamicLineageIsolation(t *testing.T) {
	base := testGraph(t)
	d1 := NewDynamic(base)
	d2 := NewDynamic(base)
	if _, err := d1.Insert(0, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := d2.Insert(0, 4); err != nil {
		t.Fatal(err)
	}
	// Both dynamics are at epoch 1, but their versions must not collide:
	// a labeling for d1's view is wrong for d2's.
	if d1.Version() == d2.Version() {
		t.Fatal("two dynamics over one base must not share versions")
	}
	if err := d1.Snapshot().Version().ValidFor(d2.Snapshot().Version()); !errors.Is(err, ErrGraphMismatch) {
		t.Fatalf("cross-dynamic use must report ErrGraphMismatch, got %v", err)
	}
	// The base graph keeps its own lineage, distinct from both wrappers.
	if err := base.Version().ValidFor(d1.Snapshot().Version()); !errors.Is(err, ErrGraphMismatch) {
		t.Fatalf("base-vs-snapshot use must report ErrGraphMismatch, got %v", err)
	}
}
