package graph

import "fmt"

// Dynamic is a small insertion-only dynamic graph used by streaming
// workloads (e-commerce fraud detection, Figure 8). It keeps a base CSR
// graph plus per-vertex overflow adjacency for edges inserted after
// construction. Because the PathEnum index is rebuilt per query, queries on
// a Dynamic graph see all insertions immediately — no global index
// maintenance is required (§7.2 "Performance on Dynamic Graphs").
//
// Every successful Insert bumps the graph's epoch, and Snapshot stamps the
// materialized graph with the Dynamic's (lineage, epoch) identity. Derived
// structures built on one snapshot — distance frontiers, the landmark
// oracle — are therefore rejected with graph.ErrStaleEpoch on any snapshot
// taken after further insertions, instead of silently pruning with stale
// labels. A Dynamic starts its own lineage: artifacts built on the base
// graph itself are not valid for its snapshots (and vice versa), which
// keeps two Dynamics wrapping one base from colliding on epoch numbers.
//
// A Dynamic is not safe for concurrent use; the intended topology is one
// writer that inserts, snapshots, and hands the immutable snapshots to
// concurrent readers (e.g. Engine.UpdateGraph).
type Dynamic struct {
	base     *Graph
	extraOut map[VertexID][]VertexID
	extraIn  map[VertexID][]VertexID
	added    int64
	ver      Version
}

// NewDynamic wraps a base graph for incremental insertion.
func NewDynamic(base *Graph) *Dynamic {
	return &Dynamic{
		base:     base,
		extraOut: make(map[VertexID][]VertexID),
		extraIn:  make(map[VertexID][]VertexID),
		ver:      newLineage(),
	}
}

// Epoch returns the number of successful insertions since construction.
func (d *Dynamic) Epoch() uint64 { return d.ver.epoch }

// Version returns the dynamic graph's current (lineage, epoch) identity;
// snapshots carry the version of the moment they were taken.
func (d *Dynamic) Version() Version { return d.ver }

// Insert adds the directed edge (from, to). Duplicate edges and self-loops
// are ignored, matching NewGraph semantics. It reports whether the edge was
// actually added.
func (d *Dynamic) Insert(from, to VertexID) (bool, error) {
	n := int32(d.base.NumVertices())
	if from < 0 || from >= n || to < 0 || to >= n {
		return false, fmt.Errorf("%w: edge (%d,%d) with n=%d", ErrVertexRange, from, to, n)
	}
	if from == to || d.HasEdge(from, to) {
		return false, nil
	}
	d.extraOut[from] = append(d.extraOut[from], to)
	d.extraIn[to] = append(d.extraIn[to], from)
	d.added++
	d.ver.epoch++
	return true, nil
}

// HasEdge reports whether (from, to) exists in the base graph or overflow.
func (d *Dynamic) HasEdge(from, to VertexID) bool {
	if d.base.HasEdge(from, to) {
		return true
	}
	for _, w := range d.extraOut[from] {
		if w == to {
			return true
		}
	}
	return false
}

// NumVertices returns the number of vertices.
func (d *Dynamic) NumVertices() int { return d.base.NumVertices() }

// NumEdges returns the total number of edges including insertions.
func (d *Dynamic) NumEdges() int64 { return d.base.NumEdges() + d.added }

// OutNeighbors returns the out-neighbors of v. When v has overflow edges the
// result is a freshly allocated slice; otherwise it aliases base storage.
func (d *Dynamic) OutNeighbors(v VertexID) []VertexID {
	baseN := d.base.OutNeighbors(v)
	extra := d.extraOut[v]
	if len(extra) == 0 {
		return baseN
	}
	out := make([]VertexID, 0, len(baseN)+len(extra))
	out = append(out, baseN...)
	return append(out, extra...)
}

// InNeighbors returns the in-neighbors of v, analogous to OutNeighbors.
func (d *Dynamic) InNeighbors(v VertexID) []VertexID {
	baseN := d.base.InNeighbors(v)
	extra := d.extraIn[v]
	if len(extra) == 0 {
		return baseN
	}
	out := make([]VertexID, 0, len(baseN)+len(extra))
	out = append(out, baseN...)
	return append(out, extra...)
}

// Snapshot materializes the current state as an immutable Graph stamped
// with the Dynamic's current (lineage, epoch) identity, so two snapshots
// of the same epoch are interchangeable for cached frontiers and oracles
// while any later-epoch snapshot invalidates them. PathEnum queries on
// dynamic workloads run against snapshots; snapshotting is O(E log E) and
// typically amortized across many queries per insertion batch.
func (d *Dynamic) Snapshot() *Graph {
	extra := make([]Edge, 0, d.added)
	for from, tos := range d.extraOut {
		for _, to := range tos {
			extra = append(extra, Edge{From: from, To: to})
		}
	}
	g, err := d.base.WithEdges(extra)
	if err != nil {
		// Cannot happen: Insert validated all endpoints.
		panic(err)
	}
	g.ver = d.ver
	return g
}
