package graph

import "fmt"

// Dynamic is a small insertion-only dynamic graph used by streaming
// workloads (e-commerce fraud detection, Figure 8). It keeps a base CSR
// graph plus per-vertex overflow adjacency for edges inserted after
// construction. Because the PathEnum index is rebuilt per query, queries on
// a Dynamic graph see all insertions immediately — no global index
// maintenance is required (§7.2 "Performance on Dynamic Graphs").
//
// Every successful Insert bumps the graph's epoch, and Snapshot stamps the
// materialized graph with the Dynamic's (lineage, epoch) identity. Derived
// structures built on one snapshot — distance frontiers, the landmark
// oracle — are therefore rejected with graph.ErrStaleEpoch on any snapshot
// taken after further insertions, instead of silently pruning with stale
// labels. A Dynamic starts its own lineage: artifacts built on the base
// graph itself are not valid for its snapshots (and vice versa), which
// keeps two Dynamics wrapping one base from colliding on epoch numbers.
//
// A Dynamic is not safe for concurrent use; the intended topology is one
// writer that inserts, snapshots, and hands the immutable snapshots to
// concurrent readers (e.g. Engine.UpdateGraph).
type Dynamic struct {
	base     *Graph
	extraOut map[VertexID][]VertexID
	extraIn  map[VertexID][]VertexID
	// mergedOut/mergedIn memoize the base+overflow adjacency a vertex
	// with overflow edges returns from Out/InNeighbors, so the
	// enumeration hot loop does not allocate a fresh merged slice per
	// expansion. An entry is dropped by the next Insert touching that
	// vertex and rebuilt on the next lookup. Safe under the single-writer
	// contract: readers run against immutable Snapshots, and the one
	// writer never races its own Insert with its own neighbor lookups.
	mergedOut map[VertexID][]VertexID
	mergedIn  map[VertexID][]VertexID
	// outSet is a per-vertex overflow membership set, built once a
	// vertex's overflow out-degree passes overflowSetThreshold, so
	// hub-targeted insert streams pay O(1) duplicate detection instead of
	// rescanning an ever-growing overflow slice per Insert (quadratic in
	// the stream length).
	outSet map[VertexID]map[VertexID]struct{}
	added  int64
	ver    Version
}

// overflowSetThreshold is the overflow out-degree past which HasEdge
// switches from a linear overflow scan to a membership set. Small
// overflows stay set-free: the scan beats map overhead there.
const overflowSetThreshold = 8

// NewDynamic wraps a base graph for incremental insertion.
func NewDynamic(base *Graph) *Dynamic {
	return &Dynamic{
		base:      base,
		extraOut:  make(map[VertexID][]VertexID),
		extraIn:   make(map[VertexID][]VertexID),
		mergedOut: make(map[VertexID][]VertexID),
		mergedIn:  make(map[VertexID][]VertexID),
		outSet:    make(map[VertexID]map[VertexID]struct{}),
		ver:       newLineage(),
	}
}

// Epoch returns the number of successful insertions since construction.
func (d *Dynamic) Epoch() uint64 { return d.ver.epoch }

// Version returns the dynamic graph's current (lineage, epoch) identity;
// snapshots carry the version of the moment they were taken.
func (d *Dynamic) Version() Version { return d.ver }

// Insert adds the directed edge (from, to). Duplicate edges and self-loops
// are ignored, matching NewGraph semantics. It reports whether the edge was
// actually added.
func (d *Dynamic) Insert(from, to VertexID) (bool, error) {
	n := int32(d.base.NumVertices())
	if from < 0 || from >= n || to < 0 || to >= n {
		return false, fmt.Errorf("%w: edge (%d,%d) with n=%d", ErrVertexRange, from, to, n)
	}
	if from == to || d.HasEdge(from, to) {
		return false, nil
	}
	d.extraOut[from] = append(d.extraOut[from], to)
	d.extraIn[to] = append(d.extraIn[to], from)
	if set, ok := d.outSet[from]; ok {
		set[to] = struct{}{}
	} else if len(d.extraOut[from]) > overflowSetThreshold {
		set = make(map[VertexID]struct{}, 2*overflowSetThreshold)
		for _, w := range d.extraOut[from] {
			set[w] = struct{}{}
		}
		d.outSet[from] = set
	}
	delete(d.mergedOut, from)
	delete(d.mergedIn, to)
	d.added++
	d.ver.epoch++
	return true, nil
}

// HasEdge reports whether (from, to) exists in the base graph or overflow.
func (d *Dynamic) HasEdge(from, to VertexID) bool {
	if d.base.HasEdge(from, to) {
		return true
	}
	if set, ok := d.outSet[from]; ok {
		_, hit := set[to]
		return hit
	}
	for _, w := range d.extraOut[from] {
		if w == to {
			return true
		}
	}
	return false
}

// NumVertices returns the number of vertices.
func (d *Dynamic) NumVertices() int { return d.base.NumVertices() }

// NumEdges returns the total number of edges including insertions.
func (d *Dynamic) NumEdges() int64 { return d.base.NumEdges() + d.added }

// OutNeighbors returns the out-neighbors of v. When v has overflow edges
// the merged base+overflow slice is memoized until the next Insert
// touching v, so repeated expansions of a hot vertex do not allocate;
// otherwise the result aliases base storage. Callers must not mutate the
// returned slice.
func (d *Dynamic) OutNeighbors(v VertexID) []VertexID {
	extra := d.extraOut[v]
	if len(extra) == 0 {
		return d.base.OutNeighbors(v)
	}
	if m, ok := d.mergedOut[v]; ok {
		return m
	}
	baseN := d.base.OutNeighbors(v)
	out := make([]VertexID, 0, len(baseN)+len(extra))
	out = append(out, baseN...)
	out = append(out, extra...)
	d.mergedOut[v] = out
	return out
}

// InNeighbors returns the in-neighbors of v, analogous to OutNeighbors.
func (d *Dynamic) InNeighbors(v VertexID) []VertexID {
	extra := d.extraIn[v]
	if len(extra) == 0 {
		return d.base.InNeighbors(v)
	}
	if m, ok := d.mergedIn[v]; ok {
		return m
	}
	baseN := d.base.InNeighbors(v)
	out := make([]VertexID, 0, len(baseN)+len(extra))
	out = append(out, baseN...)
	out = append(out, extra...)
	d.mergedIn[v] = out
	return out
}

// Snapshot materializes the current state as an immutable Graph stamped
// with the Dynamic's current (lineage, epoch) identity, so two snapshots
// of the same epoch are interchangeable for cached frontiers and oracles
// while any later-epoch snapshot invalidates them. PathEnum queries on
// dynamic workloads run against snapshots; snapshotting is O(E log E) and
// typically amortized across many queries per insertion batch.
func (d *Dynamic) Snapshot() *Graph {
	extra := make([]Edge, 0, d.added)
	for from, tos := range d.extraOut {
		for _, to := range tos {
			extra = append(extra, Edge{From: from, To: to})
		}
	}
	g, err := d.base.WithEdges(extra)
	if err != nil {
		// Cannot happen: Insert validated all endpoints.
		panic(err)
	}
	g.ver = d.ver
	return g
}
