package graph

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func mustGraph(t *testing.T, n int, edges []Edge) *Graph {
	t.Helper()
	g, err := NewGraph(n, edges)
	if err != nil {
		t.Fatalf("NewGraph(%d, %v): %v", n, edges, err)
	}
	return g
}

func TestNewGraphEmpty(t *testing.T) {
	g := mustGraph(t, 0, nil)
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph: got |V|=%d |E|=%d", g.NumVertices(), g.NumEdges())
	}
}

func TestNewGraphNoEdges(t *testing.T) {
	g := mustGraph(t, 5, nil)
	for v := int32(0); v < 5; v++ {
		if d := g.OutDegree(v); d != 0 {
			t.Errorf("OutDegree(%d) = %d, want 0", v, d)
		}
		if d := g.InDegree(v); d != 0 {
			t.Errorf("InDegree(%d) = %d, want 0", v, d)
		}
	}
}

func TestNewGraphBasic(t *testing.T) {
	g := mustGraph(t, 4, []Edge{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 0}})
	if g.NumEdges() != 5 {
		t.Fatalf("NumEdges = %d, want 5", g.NumEdges())
	}
	wantOut := map[int32][]int32{0: {1, 2}, 1: {2}, 2: {3}, 3: {0}}
	for v, want := range wantOut {
		got := g.OutNeighbors(v)
		if len(got) != len(want) {
			t.Fatalf("OutNeighbors(%d) = %v, want %v", v, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("OutNeighbors(%d) = %v, want %v", v, got, want)
			}
		}
	}
	wantIn := map[int32][]int32{0: {3}, 1: {0}, 2: {0, 1}, 3: {2}}
	for v, want := range wantIn {
		got := g.InNeighbors(v)
		if len(got) != len(want) {
			t.Fatalf("InNeighbors(%d) = %v, want %v", v, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("InNeighbors(%d) = %v, want %v", v, got, want)
			}
		}
	}
}

func TestNewGraphDropsSelfLoops(t *testing.T) {
	g := mustGraph(t, 3, []Edge{{0, 0}, {0, 1}, {1, 1}, {2, 2}})
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1 (self-loops dropped)", g.NumEdges())
	}
	if !g.HasEdge(0, 1) {
		t.Fatal("expected edge (0,1)")
	}
}

func TestNewGraphDeduplicates(t *testing.T) {
	g := mustGraph(t, 3, []Edge{{0, 1}, {0, 1}, {0, 1}, {1, 2}})
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
}

func TestNewGraphRejectsOutOfRange(t *testing.T) {
	cases := [][]Edge{
		{{-1, 0}},
		{{0, -1}},
		{{0, 3}},
		{{3, 0}},
	}
	for _, edges := range cases {
		if _, err := NewGraph(3, edges); err == nil {
			t.Errorf("NewGraph(3, %v): expected error", edges)
		}
	}
	if _, err := NewGraph(-1, nil); err == nil {
		t.Error("NewGraph(-1): expected error")
	}
}

func TestHasEdge(t *testing.T) {
	g := mustGraph(t, 4, []Edge{{0, 1}, {0, 3}, {2, 1}})
	tests := []struct {
		from, to int32
		want     bool
	}{
		{0, 1, true}, {0, 3, true}, {2, 1, true},
		{1, 0, false}, {0, 2, false}, {3, 0, false},
	}
	for _, tc := range tests {
		if got := g.HasEdge(tc.from, tc.to); got != tc.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", tc.from, tc.to, got, tc.want)
		}
	}
}

func TestDegrees(t *testing.T) {
	g := mustGraph(t, 3, []Edge{{0, 1}, {0, 2}, {1, 0}})
	if d := g.OutDegree(0); d != 2 {
		t.Errorf("OutDegree(0) = %d, want 2", d)
	}
	if d := g.InDegree(0); d != 1 {
		t.Errorf("InDegree(0) = %d, want 1", d)
	}
	if d := g.Degree(0); d != 3 {
		t.Errorf("Degree(0) = %d, want 3", d)
	}
	if avg := g.AvgDegree(); avg != 1.0 {
		t.Errorf("AvgDegree = %f, want 1.0", avg)
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	in := []Edge{{3, 0}, {0, 1}, {1, 2}, {0, 2}}
	g := mustGraph(t, 4, in)
	got := g.Edges()
	sort.Slice(in, func(i, j int) bool {
		if in[i].From != in[j].From {
			return in[i].From < in[j].From
		}
		return in[i].To < in[j].To
	})
	if len(got) != len(in) {
		t.Fatalf("Edges() returned %d edges, want %d", len(got), len(in))
	}
	for i := range in {
		if got[i] != in[i] {
			t.Fatalf("Edges()[%d] = %v, want %v", i, got[i], in[i])
		}
	}
}

func TestReverse(t *testing.T) {
	g := mustGraph(t, 4, []Edge{{0, 1}, {1, 2}, {2, 3}})
	r := g.Reverse()
	if r.NumEdges() != g.NumEdges() {
		t.Fatalf("Reverse edge count %d != %d", r.NumEdges(), g.NumEdges())
	}
	for _, e := range g.Edges() {
		if !r.HasEdge(e.To, e.From) {
			t.Errorf("reverse missing edge (%d,%d)", e.To, e.From)
		}
	}
}

func TestReverseInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(20)
		var edges []Edge
		for i := 0; i < n*2; i++ {
			edges = append(edges, Edge{From: int32(rng.Intn(n)), To: int32(rng.Intn(n))})
		}
		g, err := NewGraph(n, edges)
		if err != nil {
			t.Fatal(err)
		}
		rr := g.Reverse().Reverse()
		ge, rre := g.Edges(), rr.Edges()
		if len(ge) != len(rre) {
			t.Fatalf("double reverse changed edge count: %d vs %d", len(ge), len(rre))
		}
		for i := range ge {
			if ge[i] != rre[i] {
				t.Fatalf("double reverse changed edges at %d: %v vs %v", i, ge[i], rre[i])
			}
		}
	}
}

func TestWithEdges(t *testing.T) {
	g := mustGraph(t, 4, []Edge{{0, 1}})
	g2, err := g.WithEdges([]Edge{{1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 3 {
		t.Fatalf("WithEdges: NumEdges = %d, want 3", g2.NumEdges())
	}
	// Original is unchanged.
	if g.NumEdges() != 1 {
		t.Fatalf("WithEdges mutated original: NumEdges = %d", g.NumEdges())
	}
	if _, err := g.WithEdges([]Edge{{9, 0}}); err == nil {
		t.Fatal("WithEdges with out-of-range endpoint: expected error")
	}
}

// TestPropertyAdjacencyConsistency checks that out- and in-adjacency encode
// the same edge set on random graphs.
func TestPropertyAdjacencyConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		var edges []Edge
		for i := 0; i < n*3; i++ {
			edges = append(edges, Edge{From: int32(rng.Intn(n)), To: int32(rng.Intn(n))})
		}
		g, err := NewGraph(n, edges)
		if err != nil {
			return false
		}
		var outCount, inCount int64
		for v := int32(0); v < int32(n); v++ {
			outCount += int64(len(g.OutNeighbors(v)))
			inCount += int64(len(g.InNeighbors(v)))
			for _, w := range g.OutNeighbors(v) {
				found := false
				for _, u := range g.InNeighbors(w) {
					if u == v {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return outCount == g.NumEdges() && inCount == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyNeighborsSorted checks the sortedness invariant HasEdge and
// the index construction rely on.
func TestPropertyNeighborsSorted(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		var edges []Edge
		for i := 0; i < n*4; i++ {
			edges = append(edges, Edge{From: int32(rng.Intn(n)), To: int32(rng.Intn(n))})
		}
		g, err := NewGraph(n, edges)
		if err != nil {
			return false
		}
		for v := int32(0); v < int32(n); v++ {
			out := g.OutNeighbors(v)
			if !sort.SliceIsSorted(out, func(i, j int) bool { return out[i] < out[j] }) {
				return false
			}
			in := g.InNeighbors(v)
			if !sort.SliceIsSorted(in, func(i, j int) bool { return in[i] < in[j] }) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
