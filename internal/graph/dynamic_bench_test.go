package graph

import (
	"math/rand"
	"testing"
)

// TestDynamicMergedNeighborCache pins the warm-path behavior of the
// memoized merged adjacency: after an insert, the first lookup merges
// and every later lookup is allocation-free until the next insert to
// that vertex invalidates it.
func TestDynamicMergedNeighborCache(t *testing.T) {
	base := mustGraph(t, 8, []Edge{{0, 1}, {0, 2}, {3, 0}})
	d := NewDynamic(base)
	if _, err := d.Insert(0, 3); err != nil {
		t.Fatal(err)
	}
	d.OutNeighbors(0) // warm the merge
	if allocs := testing.AllocsPerRun(50, func() { d.OutNeighbors(0) }); allocs != 0 {
		t.Fatalf("warm OutNeighbors allocs/op = %v, want 0", allocs)
	}
	if _, err := d.Insert(4, 0); err != nil {
		t.Fatal(err)
	}
	d.InNeighbors(0)
	if allocs := testing.AllocsPerRun(50, func() { d.InNeighbors(0) }); allocs != 0 {
		t.Fatalf("warm InNeighbors allocs/op = %v, want 0", allocs)
	}

	// The next insert touching the vertex invalidates exactly its entry.
	if _, err := d.Insert(0, 5); err != nil {
		t.Fatal(err)
	}
	out := d.OutNeighbors(0)
	if len(out) != 4 {
		t.Fatalf("OutNeighbors(0) after invalidation = %v, want 4 entries", out)
	}
	want := map[VertexID]bool{1: true, 2: true, 3: true, 5: true}
	for _, w := range out {
		if !want[w] {
			t.Fatalf("unexpected out-neighbor %d in %v", w, out)
		}
	}
	// In-neighbors of the *target* were invalidated by the same insert.
	if in := d.InNeighbors(5); len(in) != 1 || in[0] != 0 {
		t.Fatalf("InNeighbors(5) = %v, want [0]", in)
	}
}

// TestDynamicOverflowSetDuplicates pins that duplicate detection stays
// behaviorally identical across the linear-scan -> membership-set
// switchover at overflowSetThreshold.
func TestDynamicOverflowSetDuplicates(t *testing.T) {
	const n = 64
	base := mustGraph(t, n, []Edge{{0, 1}})
	d := NewDynamic(base)
	// Drive vertex 0's overflow well past the threshold, re-offering
	// every edge (base and overflow) as a duplicate along the way.
	for to := VertexID(2); to < 40; to++ {
		added, err := d.Insert(0, to)
		if err != nil || !added {
			t.Fatalf("Insert(0,%d) = %v, %v", to, added, err)
		}
		for dup := VertexID(1); dup <= to; dup++ {
			if added, err := d.Insert(0, dup); err != nil || added {
				t.Fatalf("duplicate Insert(0,%d) = %v, %v", dup, added, err)
			}
		}
	}
	if !d.HasEdge(0, 1) || !d.HasEdge(0, 39) || d.HasEdge(0, 40) {
		t.Fatal("HasEdge wrong after overflow-set switchover")
	}
	if got := len(d.OutNeighbors(0)); got != 39 {
		t.Fatalf("out-degree = %d, want 39", got)
	}
}

// BenchmarkDynamicOutNeighborsWarm measures the enumeration hot loop's
// view of a vertex with overflow edges. Run with -benchmem: the memoized
// merge holds this at 0 allocs/op; before the fix every call allocated
// the merged slice.
func BenchmarkDynamicOutNeighborsWarm(b *testing.B) {
	const n = 1024
	edges := make([]Edge, 0, 4*n)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 4*n; i++ {
		edges = append(edges, Edge{From: int32(rng.Intn(n)), To: int32(rng.Intn(n))})
	}
	base, err := NewGraph(n, edges)
	if err != nil {
		b.Fatal(err)
	}
	d := NewDynamic(base)
	for to := VertexID(0); to < 12; to++ {
		if _, err := d.Insert(5, to); err != nil {
			b.Fatal(err)
		}
	}
	d.OutNeighbors(5)
	b.ReportAllocs()
	b.ResetTimer()
	var sink int
	for i := 0; i < b.N; i++ {
		sink += len(d.OutNeighbors(5))
	}
	_ = sink
}

// BenchmarkDynamicInsertHub measures hub-targeted insert streams: with
// the overflow membership set, duplicate detection is O(1) per insert
// instead of a rescan of the hub's ever-growing overflow slice.
func BenchmarkDynamicInsertHub(b *testing.B) {
	const n = 1 << 16
	base, err := NewGraph(n, []Edge{{0, 1}})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	d := NewDynamic(base)
	for i := 0; i < b.N; i++ {
		to := VertexID(2 + i%(n-2))
		if _, err := d.Insert(0, to); err != nil {
			b.Fatal(err)
		}
	}
}
