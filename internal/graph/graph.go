// Package graph provides the directed-graph substrate used throughout the
// repository: an immutable compressed-sparse-row (CSR) representation with
// both out- and in-adjacency, construction from edge lists, text IO, and a
// small dynamic wrapper for insertion workloads.
//
// Vertices are dense int32 identifiers in [0, NumVertices). Parallel edges
// are collapsed and self-loops are dropped at construction time: the
// hop-constrained s-t path enumeration (HcPE) problem is defined on simple
// directed graphs, and neither parallel edges nor self-loops can appear in a
// simple path result.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// VertexID identifies a vertex. IDs are dense: a graph with n vertices uses
// exactly the IDs 0..n-1.
type VertexID = int32

// Edge is a directed edge From -> To.
type Edge struct {
	From VertexID
	To   VertexID
}

// Graph is an immutable directed graph in CSR form. Both the out-adjacency
// and the in-adjacency are materialized because the PathEnum index performs
// breadth-first searches in both directions and builds a reverse index for
// the backward dynamic program of the join-order optimizer.
type Graph struct {
	numVertices int32
	numEdges    int64
	// ver identifies this graph for derived structures (frontiers,
	// oracles): a fresh lineage at epoch 0 for NewGraph results, the
	// owning Dynamic's (lineage, epoch) for snapshots.
	ver Version

	outOffsets []int64 // len numVertices+1
	outTargets []VertexID

	inOffsets []int64 // len numVertices+1
	inSources []VertexID
}

// ErrVertexRange reports an edge endpoint outside [0, n).
var ErrVertexRange = errors.New("graph: vertex id out of range")

// NewGraph builds a Graph with n vertices from the given edge list.
// Self-loops are dropped and duplicate edges collapsed. Endpoints must lie
// in [0, n).
func NewGraph(n int, edges []Edge) (*Graph, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	if n > 1<<30 {
		return nil, fmt.Errorf("graph: vertex count %d exceeds limit", n)
	}
	for _, e := range edges {
		if e.From < 0 || e.From >= int32(n) || e.To < 0 || e.To >= int32(n) {
			return nil, fmt.Errorf("%w: edge (%d,%d) with n=%d", ErrVertexRange, e.From, e.To, n)
		}
	}
	g := &Graph{numVertices: int32(n), ver: newLineage()}
	g.build(edges)
	return g, nil
}

// build populates the CSR arrays from a (possibly dirty) edge list.
func (g *Graph) build(edges []Edge) {
	n := int(g.numVertices)

	cleaned := make([]Edge, 0, len(edges))
	for _, e := range edges {
		if e.From == e.To {
			continue // self-loop
		}
		cleaned = append(cleaned, e)
	}
	sort.Slice(cleaned, func(i, j int) bool {
		if cleaned[i].From != cleaned[j].From {
			return cleaned[i].From < cleaned[j].From
		}
		return cleaned[i].To < cleaned[j].To
	})
	// Deduplicate in place.
	uniq := cleaned[:0]
	for i, e := range cleaned {
		if i > 0 && e == cleaned[i-1] {
			continue
		}
		uniq = append(uniq, e)
	}
	m := len(uniq)
	g.numEdges = int64(m)

	g.outOffsets = make([]int64, n+1)
	g.outTargets = make([]VertexID, m)
	for _, e := range uniq {
		g.outOffsets[e.From+1]++
	}
	for v := 0; v < n; v++ {
		g.outOffsets[v+1] += g.outOffsets[v]
	}
	for i, e := range uniq {
		g.outTargets[i] = e.To
	}

	g.inOffsets = make([]int64, n+1)
	g.inSources = make([]VertexID, m)
	for _, e := range uniq {
		g.inOffsets[e.To+1]++
	}
	for v := 0; v < n; v++ {
		g.inOffsets[v+1] += g.inOffsets[v]
	}
	cursor := make([]int64, n)
	for v := 0; v < n; v++ {
		cursor[v] = g.inOffsets[v]
	}
	// The From-major scan fills each in-bucket in ascending source order,
	// so InNeighbors stays sorted without a second sort.
	for _, e := range uniq {
		g.inSources[cursor[e.To]] = e.From
		cursor[e.To]++
	}
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return int(g.numVertices) }

// Epoch returns the mutation epoch of the graph's lineage: 0 for a freshly
// built graph, the owning Dynamic's insertion count for a snapshot.
func (g *Graph) Epoch() uint64 { return g.ver.epoch }

// Version returns the graph's (lineage, epoch) identity. Derived
// structures (core.Frontier, the landmark oracle) capture it at build time
// and validate it before every use, so a labeling from an older epoch can
// never silently serve a mutated graph.
func (g *Graph) Version() Version { return g.ver }

// NumEdges returns the number of distinct directed edges.
func (g *Graph) NumEdges() int64 { return g.numEdges }

// OutDegree returns the out-degree of v.
func (g *Graph) OutDegree(v VertexID) int {
	return int(g.outOffsets[v+1] - g.outOffsets[v])
}

// InDegree returns the in-degree of v.
func (g *Graph) InDegree(v VertexID) int {
	return int(g.inOffsets[v+1] - g.inOffsets[v])
}

// Degree returns out-degree + in-degree of v, the degree notion used by the
// paper's workload generator to pick high-degree endpoints.
func (g *Graph) Degree(v VertexID) int { return g.OutDegree(v) + g.InDegree(v) }

// OutNeighbors returns the sorted out-neighbors of v. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) OutNeighbors(v VertexID) []VertexID {
	return g.outTargets[g.outOffsets[v]:g.outOffsets[v+1]]
}

// InNeighbors returns the sorted in-neighbors of v. The returned slice
// aliases internal storage and must not be modified.
func (g *Graph) InNeighbors(v VertexID) []VertexID {
	return g.inSources[g.inOffsets[v]:g.inOffsets[v+1]]
}

// HasEdge reports whether the directed edge (from, to) exists.
func (g *Graph) HasEdge(from, to VertexID) bool {
	nbrs := g.OutNeighbors(from)
	i := sort.Search(len(nbrs), func(i int) bool { return nbrs[i] >= to })
	return i < len(nbrs) && nbrs[i] == to
}

// Edges returns a fresh slice of all edges in (From, To) order.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, g.numEdges)
	for v := int32(0); v < g.numVertices; v++ {
		for _, w := range g.OutNeighbors(v) {
			out = append(out, Edge{From: v, To: w})
		}
	}
	return out
}

// AvgDegree returns the average out-degree.
func (g *Graph) AvgDegree() float64 {
	if g.numVertices == 0 {
		return 0
	}
	return float64(g.numEdges) / float64(g.numVertices)
}

// Reverse returns a new graph with every edge direction flipped.
func (g *Graph) Reverse() *Graph {
	edges := make([]Edge, 0, g.numEdges)
	for v := int32(0); v < g.numVertices; v++ {
		for _, w := range g.OutNeighbors(v) {
			edges = append(edges, Edge{From: w, To: v})
		}
	}
	r, err := NewGraph(int(g.numVertices), edges)
	if err != nil {
		// Cannot happen: endpoints come from a valid graph.
		panic(err)
	}
	return r
}

// WithEdges returns a new graph containing all edges of g plus the given
// extra edges (used by dynamic-graph workloads; construction is O(E log E)).
func (g *Graph) WithEdges(extra []Edge) (*Graph, error) {
	edges := g.Edges()
	edges = append(edges, extra...)
	return NewGraph(int(g.numVertices), edges)
}

// String implements fmt.Stringer with a compact summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph{|V|=%d |E|=%d davg=%.1f}", g.numVertices, g.numEdges, g.AvgDegree())
}
