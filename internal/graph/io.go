package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ReadEdgeList parses the whitespace-separated edge-list format used by
// SNAP-style datasets:
//
//	# comment lines start with '#' or '%'
//	<from> <to>
//
// Vertex ids may be sparse; they are remapped to a dense [0, n) range in
// first-appearance order. The returned slice maps dense id -> original id.
func ReadEdgeList(r io.Reader) (*Graph, []int64, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)

	remap := make(map[int64]VertexID)
	var orig []int64
	dense := func(raw int64) VertexID {
		if id, ok := remap[raw]; ok {
			return id
		}
		id := VertexID(len(orig))
		remap[raw] = id
		orig = append(orig, raw)
		return id
	}

	var edges []Edge
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, nil, fmt.Errorf("graph: line %d: expected 2 fields, got %d", lineNo, len(fields))
		}
		from, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: bad source %q: %v", lineNo, fields[0], err)
		}
		to, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("graph: line %d: bad target %q: %v", lineNo, fields[1], err)
		}
		edges = append(edges, Edge{From: dense(from), To: dense(to)})
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("graph: scan: %w", err)
	}
	g, err := NewGraph(len(orig), edges)
	if err != nil {
		return nil, nil, err
	}
	return g, orig, nil
}

// WriteEdgeList writes the graph in the edge-list format accepted by
// ReadEdgeList, one "<from> <to>" pair per line.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# |V|=%d |E|=%d\n", g.NumVertices(), g.NumEdges())
	buf := make([]byte, 0, 32)
	for v := int32(0); v < g.numVertices; v++ {
		for _, u := range g.OutNeighbors(v) {
			buf = buf[:0]
			buf = strconv.AppendInt(buf, int64(v), 10)
			buf = append(buf, ' ')
			buf = strconv.AppendInt(buf, int64(u), 10)
			buf = append(buf, '\n')
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// LoadFile reads an edge-list graph from path.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, _, err := ReadEdgeList(f)
	return g, err
}

// SaveFile writes g to path in edge-list format.
func SaveFile(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteEdgeList(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
