package graph

import (
	"math/rand"
	"testing"
)

func TestDynamicInsert(t *testing.T) {
	base := mustGraph(t, 4, []Edge{{0, 1}})
	d := NewDynamic(base)

	added, err := d.Insert(1, 2)
	if err != nil || !added {
		t.Fatalf("Insert(1,2) = %v, %v", added, err)
	}
	if !d.HasEdge(1, 2) {
		t.Fatal("inserted edge missing")
	}
	if d.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", d.NumEdges())
	}

	// Duplicate of a base edge.
	added, err = d.Insert(0, 1)
	if err != nil || added {
		t.Fatalf("duplicate base Insert = %v, %v", added, err)
	}
	// Duplicate of an overflow edge.
	added, err = d.Insert(1, 2)
	if err != nil || added {
		t.Fatalf("duplicate overflow Insert = %v, %v", added, err)
	}
	// Self-loop.
	added, err = d.Insert(3, 3)
	if err != nil || added {
		t.Fatalf("self-loop Insert = %v, %v", added, err)
	}
	// Out of range.
	if _, err := d.Insert(0, 99); err == nil {
		t.Fatal("out-of-range Insert: expected error")
	}
}

func TestDynamicNeighbors(t *testing.T) {
	base := mustGraph(t, 4, []Edge{{0, 1}, {0, 2}})
	d := NewDynamic(base)
	if _, err := d.Insert(0, 3); err != nil {
		t.Fatal(err)
	}
	out := d.OutNeighbors(0)
	if len(out) != 3 {
		t.Fatalf("OutNeighbors(0) = %v, want 3 entries", out)
	}
	in := d.InNeighbors(3)
	if len(in) != 1 || in[0] != 0 {
		t.Fatalf("InNeighbors(3) = %v, want [0]", in)
	}
	// Vertices without overflow alias base storage and stay correct.
	if got := d.OutNeighbors(1); len(got) != 0 {
		t.Fatalf("OutNeighbors(1) = %v, want empty", got)
	}
}

func TestDynamicSnapshot(t *testing.T) {
	base := mustGraph(t, 5, []Edge{{0, 1}, {1, 2}})
	d := NewDynamic(base)
	for _, e := range []Edge{{2, 3}, {3, 4}, {4, 0}} {
		if _, err := d.Insert(e.From, e.To); err != nil {
			t.Fatal(err)
		}
	}
	snap := d.Snapshot()
	if snap.NumEdges() != 5 {
		t.Fatalf("snapshot NumEdges = %d, want 5", snap.NumEdges())
	}
	for _, e := range []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}} {
		if !snap.HasEdge(e.From, e.To) {
			t.Errorf("snapshot missing %v", e)
		}
	}
	// The base graph must be untouched.
	if base.NumEdges() != 2 {
		t.Fatalf("snapshot mutated base: NumEdges = %d", base.NumEdges())
	}
}

func TestDynamicMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		n := 5 + rng.Intn(20)
		var initial []Edge
		for i := 0; i < n; i++ {
			initial = append(initial, Edge{From: int32(rng.Intn(n)), To: int32(rng.Intn(n))})
		}
		base, err := NewGraph(n, initial)
		if err != nil {
			t.Fatal(err)
		}
		d := NewDynamic(base)
		all := base.Edges()
		for i := 0; i < n; i++ {
			e := Edge{From: int32(rng.Intn(n)), To: int32(rng.Intn(n))}
			if _, err := d.Insert(e.From, e.To); err != nil {
				t.Fatal(err)
			}
			all = append(all, e)
		}
		want, err := NewGraph(n, all)
		if err != nil {
			t.Fatal(err)
		}
		snap := d.Snapshot()
		if snap.NumEdges() != want.NumEdges() {
			t.Fatalf("trial %d: snapshot |E|=%d, rebuild |E|=%d", trial, snap.NumEdges(), want.NumEdges())
		}
		we, se := want.Edges(), snap.Edges()
		for i := range we {
			if we[i] != se[i] {
				t.Fatalf("trial %d: edge %d differs: %v vs %v", trial, i, se[i], we[i])
			}
		}
	}
}
