package graph

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrStaleEpoch reports that a derived structure (a distance frontier, a
// landmark oracle) was built on an earlier version of a mutating graph and
// can no longer be trusted: edge insertions shrink true distances, so stale
// labelings would silently over-prune. Callers match it with errors.Is and
// choose between rebuilding and failing the request.
var ErrStaleEpoch = errors.New("graph: stale epoch")

// ErrGraphMismatch reports that a derived structure was built on an
// unrelated graph (a different lineage), not merely an older version of the
// same one.
var ErrGraphMismatch = errors.New("graph: built on a different graph")

// lineageCounter hands out process-unique lineage ids; see Version.
var lineageCounter atomic.Uint64

// Version identifies one immutable state of a graph: which logical graph it
// is (the lineage, unique per NewGraph or NewDynamic call) and how many
// mutations that lineage has absorbed (the epoch, bumped by every
// successful Dynamic.Insert). Two graphs with equal versions are
// structurally identical — a Dynamic and its snapshots share a lineage, so
// a labeling built on the snapshot of epoch e serves any epoch-e view of
// that lineage and is rejected, with a typed error, everywhere else.
//
// Version is a small comparable value; derived structures store the version
// of the graph they were built on and validate it with ValidFor before
// every use.
type Version struct {
	lineage uint64
	epoch   uint64
}

// Epoch returns the mutation count of the version's lineage.
func (v Version) Epoch() uint64 { return v.epoch }

// SameLineage reports whether both versions identify states of one
// logical graph, so their epochs are comparable.
func (v Version) SameLineage(o Version) bool { return v.lineage == o.lineage }

// String implements fmt.Stringer.
func (v Version) String() string { return fmt.Sprintf("v%d@%d", v.lineage, v.epoch) }

// ValidFor reports whether a structure built at version v may be used
// against a graph currently at version cur: nil when the versions match, a
// ErrGraphMismatch-wrapped error for an unrelated lineage, and a
// ErrStaleEpoch-wrapped error for the same lineage at a different epoch.
func (v Version) ValidFor(cur Version) error {
	if v == cur {
		return nil
	}
	if v.lineage != cur.lineage {
		return ErrGraphMismatch
	}
	return fmt.Errorf("%w: built at epoch %d, graph is at epoch %d", ErrStaleEpoch, v.epoch, cur.epoch)
}

// Versioned is the version surface shared by Graph and Dynamic: a monotonic
// epoch within a lineage, and the full Version used by derived structures
// for validation.
type Versioned interface {
	// Epoch returns the mutation count: 0 for a freshly built graph,
	// incremented by every successful Dynamic.Insert.
	Epoch() uint64
	// Version returns the full (lineage, epoch) identity.
	Version() Version
}

var (
	_ Versioned = (*Graph)(nil)
	_ Versioned = (*Dynamic)(nil)
)

// newLineage mints the version of a freshly constructed graph.
func newLineage() Version {
	return Version{lineage: lineageCounter.Add(1)}
}
