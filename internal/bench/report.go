package bench

import (
	"runtime"
)

// SchemaVersion identifies the shared machine-readable report schema
// emitted by benchpath -json and cmd/loadpath. Bump it when a field
// changes meaning; downstream tooling (plot scripts, CI artifact
// diffing) keys on this string before parsing rows.
const SchemaVersion = "pathenum-bench/v1"

// RunMeta is the provenance block every machine-readable report
// carries: what ran, on what data, under what runtime. Zero-valued
// fields are elided from the JSON so the block stays readable across
// tools with different knobs.
type RunMeta struct {
	Schema     string   `json:"schema"`
	Datasets   []string `json:"datasets,omitempty"`
	Scale      float64  `json:"scale,omitempty"`
	Queries    int      `json:"queries,omitempty"`
	K          int      `json:"k,omitempty"`
	Seed       int64    `json:"seed,omitempty"`
	Plan       string   `json:"plan,omitempty"`
	Parallel   int      `json:"parallel,omitempty"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	GoVersion  string   `json:"go_version"`
}

// NewRunMeta stamps the schema version and runtime facts. Callers fill
// the workload-specific fields.
func NewRunMeta() RunMeta {
	return RunMeta{
		Schema:     SchemaVersion,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}
}

// Meta describes a benchpath experiment configuration.
func (c Config) Meta() RunMeta {
	c = c.normalized()
	m := NewRunMeta()
	m.Datasets = c.Datasets
	m.Scale = c.Scale
	m.Queries = c.Queries
	m.K = c.K
	m.Seed = c.Seed
	m.Plan = c.Plan
	m.Parallel = c.Parallel
	return m
}
