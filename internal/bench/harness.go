package bench

import (
	"math"
	"sort"
	"time"

	"pathenum/internal/core"
	"pathenum/internal/graph"
	"pathenum/internal/workload"
)

// RunConfig bounds one query-set execution.
type RunConfig struct {
	// K is the hop constraint applied to every query.
	K int
	// TimeLimit bounds each query (the paper uses 120 s; the scaled-down
	// harness defaults to 2 s). Zero means unlimited.
	TimeLimit time.Duration
	// ResponseK is the result count defining response time (paper: 1000).
	ResponseK uint64
}

// normalized applies the defaults.
func (c RunConfig) normalized() RunConfig {
	if c.ResponseK == 0 {
		c.ResponseK = 1000
	}
	if c.K == 0 {
		c.K = 6
	}
	return c
}

// Record is the outcome of a single query execution.
type Record struct {
	Query        core.Query
	PrepareTime  time.Duration
	EnumTime     time.Duration
	ResponseTime time.Duration // time to the first ResponseK results (or full time)
	Results      uint64
	TimedOut     bool
	Counters     core.Counters
	Stats        Stats
}

// TotalTime returns preprocessing plus enumeration.
func (r Record) TotalTime() time.Duration { return r.PrepareTime + r.EnumTime }

// RunOne executes a single query under the config.
func RunOne(a Algo, g *graph.Graph, q core.Query, cfg RunConfig) (Record, error) {
	cfg = cfg.normalized()
	rec := Record{Query: q}

	start := time.Now()
	if err := a.Prepare(g, q); err != nil {
		return rec, err
	}
	rec.PrepareTime = time.Since(start)

	var deadline time.Time
	if cfg.TimeLimit > 0 {
		deadline = start.Add(cfg.TimeLimit)
	}
	// Response time (§7.1): elapsed from query start to the ResponseK-th
	// result, tracked with a counting emit closure.
	responseAt := time.Duration(0)
	seen := uint64(0)
	ctl := core.RunControl{
		Emit: func([]graph.VertexID) bool {
			seen++
			if seen == cfg.ResponseK {
				responseAt = time.Since(start)
			}
			return true
		},
		ShouldStop: func() bool {
			return !deadline.IsZero() && time.Now().After(deadline)
		},
	}
	var ctr core.Counters
	enumStart := time.Now()
	done, err := a.Enumerate(ctl, &ctr)
	if err != nil {
		return rec, err
	}
	rec.EnumTime = time.Since(enumStart)
	rec.Results = ctr.Results
	rec.Counters = ctr
	rec.TimedOut = !done
	if responseAt == 0 {
		// Fewer than ResponseK results: response time is the full query.
		responseAt = rec.TotalTime()
	}
	rec.ResponseTime = responseAt
	if es, ok := a.(ExtraStats); ok {
		rec.Stats = es.LastStats()
	}
	return rec, nil
}

// RunQuerySet executes every query of the set.
func RunQuerySet(a Algo, g *graph.Graph, queries []workload.Query, cfg RunConfig) ([]Record, error) {
	cfg = cfg.normalized()
	out := make([]Record, 0, len(queries))
	for _, wq := range queries {
		rec, err := RunOne(a, g, core.Query{S: wq.S, T: wq.T, K: cfg.K}, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, rec)
	}
	return out, nil
}

// Aggregate summarizes a query set the way §7.1 defines its metrics.
type Aggregate struct {
	Queries          int
	MeanQueryTimeMs  float64 // mean total time; timeouts clamped at the limit
	MeanResponseMs   float64
	Throughput       float64 // mean over queries of results/second
	TimeoutFraction  float64
	TotalResults     uint64
	MeanResults      float64
	MaxResults       uint64
	MeanIndexEdges   float64
	MeanPrepareMs    float64
	MeanEnumMs       float64
	MeanEdgesScanned float64
	MeanInvalid      float64
}

// Summarize aggregates records.
func Summarize(records []Record) Aggregate {
	agg := Aggregate{Queries: len(records)}
	if len(records) == 0 {
		return agg
	}
	var tpSum float64
	for _, r := range records {
		total := r.TotalTime()
		agg.MeanQueryTimeMs += ms(total)
		agg.MeanResponseMs += ms(r.ResponseTime)
		agg.MeanPrepareMs += ms(r.PrepareTime)
		agg.MeanEnumMs += ms(r.EnumTime)
		if total > 0 {
			tpSum += float64(r.Results) / total.Seconds()
		}
		if r.TimedOut {
			agg.TimeoutFraction++
		}
		agg.TotalResults += r.Results
		if r.Results > agg.MaxResults {
			agg.MaxResults = r.Results
		}
		agg.MeanIndexEdges += float64(r.Stats.IndexEdges)
		agg.MeanEdgesScanned += float64(r.Counters.EdgesAccessed)
		agg.MeanInvalid += float64(r.Counters.InvalidPartials)
	}
	n := float64(len(records))
	agg.MeanQueryTimeMs /= n
	agg.MeanResponseMs /= n
	agg.MeanPrepareMs /= n
	agg.MeanEnumMs /= n
	agg.Throughput = tpSum / n
	agg.TimeoutFraction /= n
	agg.MeanResults = float64(agg.TotalResults) / n
	agg.MeanIndexEdges /= n
	agg.MeanEdgesScanned /= n
	agg.MeanInvalid /= n
	return agg
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// Percentile returns the p-quantile (0..1) of the given durations, the
// metric behind the 99.9% latency plot of Figure 8.
func Percentile(durations []time.Duration, p float64) time.Duration {
	if len(durations) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), durations...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	return sorted[idx]
}

// CDF buckets query times into the given boundaries and returns the
// cumulative fraction of queries completed within each (Figure 16).
func CDF(records []Record, boundaries []time.Duration) []float64 {
	out := make([]float64, len(boundaries))
	if len(records) == 0 {
		return out
	}
	for _, r := range records {
		total := r.TotalTime()
		for i, b := range boundaries {
			if total <= b {
				out[i]++
			}
		}
	}
	for i := range out {
		out[i] /= float64(len(records))
	}
	return out
}

// LinearRegression fits y = a + b*x by least squares and returns (a, b),
// the tool behind the Figure 10/11 log-log fits.
func LinearRegression(xs, ys []float64) (intercept, slope float64) {
	n := float64(len(xs))
	if n == 0 || len(xs) != len(ys) {
		return 0, 0
	}
	var sumX, sumY, sumXY, sumXX float64
	for i := range xs {
		sumX += xs[i]
		sumY += ys[i]
		sumXY += xs[i] * ys[i]
		sumXX += xs[i] * xs[i]
	}
	den := n*sumXX - sumX*sumX
	if den == 0 {
		return sumY / n, 0
	}
	slope = (n*sumXY - sumX*sumY) / den
	intercept = (sumY - slope*sumX) / n
	return intercept, slope
}
