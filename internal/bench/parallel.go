package bench

import (
	"context"
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"pathenum/internal/core"
	"pathenum/internal/workload"
)

// ParallelRow reports the intra-query parallel enumeration experiment for
// one (dataset, fan-out) pair: mean time-to-first-path and mean drain time
// over the query set, with the drain speedup against the fan-out-1 row of
// the same dataset. The path count is identical across fan-outs by
// construction — the merge delivers exactly the sequential path set — so a
// divergence here is a correctness bug, not a perf artifact.
type ParallelRow struct {
	Dataset string
	// Fanout is the Options.Parallelism used for the row (1 = sequential
	// baseline).
	Fanout  int
	Queries int
	Paths   uint64

	// FirstMs / TotalMs are the mean time-to-first-path and mean drain
	// time per query; P99FirstMs is the 99th-percentile first-path.
	FirstMs    float64
	TotalMs    float64
	P99FirstMs float64
	// DrainSpeedup is the fan-out-1 TotalMs over this row's TotalMs — the
	// intra-query scaling headline (1.0 for the baseline row itself).
	DrainSpeedup float64
}

// ParallelResult is the parallel-experiment report.
type ParallelResult struct {
	K    int
	Rows []ParallelRow
}

// Parallel measures intra-query parallel enumeration: each sampled query
// is drained through the pull stream sequentially and again at increasing
// fan-outs (Options.Parallelism doubling up to Config.Parallel), recording
// time-to-first-path and drain time per fan-out. The drain speedup is the
// worker-pool scaling claim; the flat first-path column is the latency
// claim — sharding must not tax the first result the streaming API exists
// to deliver.
func Parallel(cfg Config) (*ParallelResult, error) {
	cfg = cfg.normalized()
	fanouts := []int{1}
	for f := 2; f <= cfg.Parallel; f *= 2 {
		fanouts = append(fanouts, f)
	}
	datasets := cfg.Datasets
	if len(datasets) == 0 {
		datasets = []string{"up", "db", "ep", "wt"}
	}
	res := &ParallelResult{K: cfg.K}
	for _, name := range datasets {
		g, err := loadDataset(name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		qs, err := sampleQueries(g, cfg)
		if err != nil {
			if err == workload.ErrNoQueries {
				continue
			}
			return nil, err
		}
		sess := core.NewSession(g, nil)
		var baseline float64
		for _, fanout := range fanouts {
			opts := core.Options{Timeout: cfg.TimeLimit, Parallelism: fanout}
			row := ParallelRow{Dataset: name, Fanout: fanout, Queries: len(qs)}
			var firsts []time.Duration
			var firstSum, totalSum time.Duration
			for _, wq := range qs {
				q := core.Query{S: wq.S, T: wq.T, K: cfg.K}
				start := time.Now()
				first := time.Duration(-1)
				n := uint64(0)
				for _, serr := range sess.StreamWith(context.Background(), q, opts, core.StreamConfig{}) {
					if serr != nil {
						return nil, fmt.Errorf("%s fanout %d %v: %w", name, fanout, q, serr)
					}
					if first < 0 {
						first = time.Since(start)
					}
					n++
				}
				totalSum += time.Since(start)
				row.Paths += n
				if first >= 0 {
					firstSum += first
					firsts = append(firsts, first)
				}
			}
			if len(firsts) > 0 {
				row.FirstMs = ms(firstSum) / float64(len(firsts))
				row.P99FirstMs = ms(Percentile(firsts, 0.99))
			}
			row.TotalMs = ms(totalSum) / float64(len(qs))
			if fanout == 1 {
				baseline = row.TotalMs
			}
			if row.TotalMs > 0 && baseline > 0 {
				row.DrainSpeedup = baseline / row.TotalMs
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// Render formats the parallel experiment report.
func (r *ParallelResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Intra-query parallel enumeration: drain speedup and first-path latency by fan-out (k=%d, unbuffered pull)\n", r.K)
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "dataset\tfanout\tqueries\tpaths\tfirst ms\tp99 first ms\tdrain ms\tspeedup\n")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.3g\t%.3g\t%.3g\t%.2fx\n",
			row.Dataset, row.Fanout, row.Queries, row.Paths,
			row.FirstMs, row.P99FirstMs, row.TotalMs, row.DrainSpeedup)
	}
	w.Flush()
	return b.String()
}
