package bench

import (
	"errors"
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"pathenum/internal/baseline"
	"pathenum/internal/core"
	"pathenum/internal/landmark"
)

// ExtensionsResult is the ablation study for the repository's §7.5-style
// extensions: the landmark distance oracle, the buffer-reusing session, and
// the HPI offline index the paper argues against.
type ExtensionsResult struct {
	Dataset string
	K       int
	Queries int

	OracleBuildMs float64
	OracleBytes   int64

	// Mean per-query totals.
	PlainMs         float64
	SessionMs       float64
	SessionOracleMs float64

	// HPI offline-index costs (zeros when the index blew its cap).
	HPIBuildMs  float64
	HPISegments int64
	HPIBytes    int64
	HPIQueryMs  float64
	HPIBlewCap  bool
}

// Extensions runs the ablation on one dataset at the default k.
func Extensions(cfg Config) (*ExtensionsResult, error) {
	cfg = cfg.normalized()
	dataset := "ep"
	if len(cfg.Datasets) > 0 {
		dataset = cfg.Datasets[0]
	}
	g, queries, err := datasetAndQueries(dataset, cfg)
	if err != nil {
		return nil, err
	}
	res := &ExtensionsResult{Dataset: dataset, K: cfg.K, Queries: len(queries)}

	start := time.Now()
	oracle, err := landmark.Build(g, 8)
	if err != nil {
		return nil, err
	}
	res.OracleBuildMs = ms(time.Since(start))
	res.OracleBytes = oracle.MemoryBytes()

	timeLimit := cfg.TimeLimit
	runAll := func(run func(q core.Query) (time.Duration, error)) (float64, error) {
		var total float64
		for _, wq := range queries {
			d, err := run(core.Query{S: wq.S, T: wq.T, K: cfg.K})
			if err != nil {
				return 0, err
			}
			total += ms(d)
		}
		return total / float64(len(queries)), nil
	}

	if res.PlainMs, err = runAll(func(q core.Query) (time.Duration, error) {
		start := time.Now()
		_, err := core.Run(g, q, core.Options{Timeout: timeLimit})
		return time.Since(start), err
	}); err != nil {
		return nil, err
	}

	sess := core.NewSession(g, nil)
	if res.SessionMs, err = runAll(func(q core.Query) (time.Duration, error) {
		start := time.Now()
		_, err := sess.Run(q, core.Options{Timeout: timeLimit})
		return time.Since(start), err
	}); err != nil {
		return nil, err
	}

	sessOracle := core.NewSession(g, oracle)
	if res.SessionOracleMs, err = runAll(func(q core.Query) (time.Duration, error) {
		start := time.Now()
		_, err := sessOracle.Run(q, core.Options{Timeout: timeLimit})
		return time.Since(start), err
	}); err != nil {
		return nil, err
	}

	// HPI with a modest hot set; the cap makes the blowup observable
	// instead of fatal.
	start = time.Now()
	hpi, err := baseline.NewHPI(g, baseline.HPIConfig{
		KMax:           cfg.K,
		HotCount:       g.NumVertices() / 20,
		MaxStoredPaths: 2_000_000,
	})
	switch {
	case errors.Is(err, baseline.ErrHPIIndexTooLarge):
		res.HPIBlewCap = true
	case err != nil:
		return nil, err
	default:
		res.HPIBuildMs = ms(time.Since(start))
		res.HPISegments = hpi.StoredSegments()
		res.HPIBytes = hpi.MemoryBytes()
		if res.HPIQueryMs, err = runAll(func(q core.Query) (time.Duration, error) {
			if err := hpi.Prepare(g, q); err != nil {
				return 0, err
			}
			deadline := time.Now().Add(timeLimit)
			start := time.Now()
			_, err := hpi.Enumerate(core.RunControl{ShouldStop: func() bool {
				return time.Now().After(deadline)
			}}, nil)
			return time.Since(start), err
		}); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// Render formats the ablation report.
func (r *ExtensionsResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extensions ablation on %s (k=%d, %d queries)\n", r.Dataset, r.K, r.Queries)
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "variant\tmean query ms\tnotes\n")
	fmt.Fprintf(w, "PathEnum (Run)\t%.3g\tper-query allocations\n", r.PlainMs)
	fmt.Fprintf(w, "PathEnum (Session)\t%.3g\tbuffers reused\n", r.SessionMs)
	fmt.Fprintf(w, "PathEnum (Session+Oracle)\t%.3g\toracle build %.3g ms, %d KB\n",
		r.SessionOracleMs, r.OracleBuildMs, r.OracleBytes/1024)
	if r.HPIBlewCap {
		fmt.Fprintf(w, "HPI\t-\toffline index exceeded its cap (the paper's criticism)\n")
	} else {
		fmt.Fprintf(w, "HPI\t%.3g\toffline build %.3g ms, %d segments, %d KB\n",
			r.HPIQueryMs, r.HPIBuildMs, r.HPISegments, r.HPIBytes/1024)
	}
	w.Flush()
	return b.String()
}
