package bench

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"pathenum/internal/graph"
	"pathenum/internal/workload"
)

// Table3Result reproduces Table 3: overall comparison of the five
// algorithms across datasets (query time, throughput, response time).
type Table3Result struct {
	Datasets []string
	Algos    []string
	// Per dataset, per algorithm aggregates.
	Agg map[string]map[string]Aggregate
}

// Table3 runs the overall comparison. Datasets defaults to every registry
// graph except the scalability graph tm (matching the paper's table).
func Table3(cfg Config) (*Table3Result, error) {
	cfg = cfg.normalized()
	datasets := cfg.Datasets
	if len(datasets) == 0 {
		datasets = []string{"up", "db", "gg", "st", "tw", "bk", "tr", "ep", "uk", "wt", "sl", "lj", "da", "ye"}
	}
	res := &Table3Result{Agg: map[string]map[string]Aggregate{}}
	for _, a := range AllAlgos() {
		res.Algos = append(res.Algos, a.Name())
	}
	for _, name := range datasets {
		g, err := loadDataset(name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		queries, err := sampleQueries(g, cfg)
		if err != nil {
			continue // dataset yields no in-range queries at this scale
		}
		res.Datasets = append(res.Datasets, name)
		res.Agg[name] = map[string]Aggregate{}
		for _, algo := range AllAlgos() {
			records, err := RunQuerySet(algo, g, queries, cfg.runConfig(cfg.K))
			if err != nil {
				return nil, fmt.Errorf("table3 %s/%s: %w", name, algo.Name(), err)
			}
			res.Agg[name][algo.Name()] = Summarize(records)
		}
	}
	return res, nil
}

// Render formats the result like the paper's Table 3 (the star marks
// >20% timeouts).
func (r *Table3Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 3: overall comparison (mean per-query metrics)\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "dataset\tmetric")
	for _, a := range r.Algos {
		fmt.Fprintf(w, "\t%s", a)
	}
	fmt.Fprintln(w)
	for _, d := range r.Datasets {
		fmt.Fprintf(w, "%s\tquery time (ms)", d)
		for _, a := range r.Algos {
			agg := r.Agg[d][a]
			star := ""
			if agg.TimeoutFraction > 0.2 {
				star = "*"
			}
			fmt.Fprintf(w, "\t%.3g%s", agg.MeanQueryTimeMs, star)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "%s\tthroughput (res/s)", d)
		for _, a := range r.Algos {
			fmt.Fprintf(w, "\t%.3g", r.Agg[d][a].Throughput)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "%s\tresponse time (ms)", d)
		for _, a := range r.Algos {
			fmt.Fprintf(w, "\t%.3g", r.Agg[d][a].MeanResponseMs)
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	return b.String()
}

// Table4Result reproduces Table 4: the query-time distribution with k
// varied — fraction of fast queries (completed within half the limit, the
// "<60s" analog) and timed-out queries (">120s" analog).
type Table4Result struct {
	Datasets []string
	KRange   []int
	// Fast[dataset][algo][k] and Timeout[dataset][algo][k].
	Fast    map[string]map[string]map[int]float64
	Timeout map[string]map[string]map[int]float64
}

// Table4 runs the distribution study on the paper's two representative
// datasets (ep: heavy, gg: light) for BC-DFS and IDX-DFS.
func Table4(cfg Config) (*Table4Result, error) {
	cfg = cfg.normalized()
	datasets := cfg.Datasets
	if len(datasets) == 0 {
		datasets = []string{"ep", "gg"}
	}
	res := &Table4Result{
		Datasets: datasets,
		KRange:   cfg.KRange,
		Fast:     map[string]map[string]map[int]float64{},
		Timeout:  map[string]map[string]map[int]float64{},
	}
	algos := func() []Algo { return []Algo{Baselines()[0], &IDXDFS{}} }
	for _, name := range datasets {
		g, err := loadDataset(name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		queries, err := sampleQueries(g, cfg)
		if err != nil {
			continue
		}
		res.Fast[name] = map[string]map[int]float64{}
		res.Timeout[name] = map[string]map[int]float64{}
		for _, algo := range algos() {
			res.Fast[name][algo.Name()] = map[int]float64{}
			res.Timeout[name][algo.Name()] = map[int]float64{}
			for _, k := range cfg.KRange {
				records, err := RunQuerySet(algo, g, queries, cfg.runConfig(k))
				if err != nil {
					return nil, err
				}
				fast, timeout := 0, 0
				for _, rec := range records {
					if rec.TimedOut {
						timeout++
					} else if rec.TotalTime() <= cfg.TimeLimit/2 {
						fast++
					}
				}
				n := float64(len(records))
				res.Fast[name][algo.Name()][k] = float64(fast) / n
				res.Timeout[name][algo.Name()][k] = float64(timeout) / n
			}
		}
	}
	return res, nil
}

// Render formats Table 4.
func (r *Table4Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: query time distribution (fast = < limit/2, timeout = hit limit)\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "dataset\talgo\tk\tfast\ttimeout\n")
	for _, d := range r.Datasets {
		for algo := range r.Fast[d] {
			for _, k := range r.KRange {
				fmt.Fprintf(w, "%s\t%s\t%d\t%.3f\t%.3f\n",
					d, algo, k, r.Fast[d][algo][k], r.Timeout[d][algo][k])
			}
		}
	}
	w.Flush()
	return b.String()
}

// Table5Result reproduces Table 5: throughput and response time for short
// (completed) versus long (timed-out) queries on the heavy dataset at the
// largest k.
type Table5Result struct {
	Dataset string
	K       int
	// Per algorithm, the short/long splits.
	ShortThroughput map[string]float64
	LongThroughput  map[string]float64
	ShortResponse   map[string]float64
	LongResponse    map[string]float64
	ShortCount      map[string]int
	LongCount       map[string]int
}

// Table5 runs the outlier-query study (BC-DFS vs IDX-DFS on ep, k = max).
func Table5(cfg Config) (*Table5Result, error) {
	cfg = cfg.normalized()
	dataset := "ep"
	if len(cfg.Datasets) > 0 {
		dataset = cfg.Datasets[0]
	}
	k := cfg.KRange[len(cfg.KRange)-1]
	g, err := loadDataset(dataset, cfg.Scale)
	if err != nil {
		return nil, err
	}
	queries, err := sampleQueries(g, cfg)
	if err != nil {
		return nil, err
	}
	res := &Table5Result{
		Dataset:         dataset,
		K:               k,
		ShortThroughput: map[string]float64{},
		LongThroughput:  map[string]float64{},
		ShortResponse:   map[string]float64{},
		LongResponse:    map[string]float64{},
		ShortCount:      map[string]int{},
		LongCount:       map[string]int{},
	}
	for _, algo := range []Algo{Baselines()[0], &IDXDFS{}} {
		records, err := RunQuerySet(algo, g, queries, cfg.runConfig(k))
		if err != nil {
			return nil, err
		}
		var short, long []Record
		for _, rec := range records {
			if rec.TimedOut {
				long = append(long, rec)
			} else {
				short = append(short, rec)
			}
		}
		sAgg, lAgg := Summarize(short), Summarize(long)
		res.ShortThroughput[algo.Name()] = sAgg.Throughput
		res.LongThroughput[algo.Name()] = lAgg.Throughput
		res.ShortResponse[algo.Name()] = sAgg.MeanResponseMs
		res.LongResponse[algo.Name()] = lAgg.MeanResponseMs
		res.ShortCount[algo.Name()] = len(short)
		res.LongCount[algo.Name()] = len(long)
	}
	return res, nil
}

// Render formats Table 5.
func (r *Table5Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 5: short vs long queries on %s with k=%d\n", r.Dataset, r.K)
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "algo\tn(short)\tn(long)\tthroughput(short)\tthroughput(long)\tresponse ms (short)\tresponse ms (long)\n")
	for algo := range r.ShortThroughput {
		fmt.Fprintf(w, "%s\t%d\t%d\t%.3g\t%.3g\t%.3g\t%.3g\n",
			algo, r.ShortCount[algo], r.LongCount[algo],
			r.ShortThroughput[algo], r.LongThroughput[algo],
			r.ShortResponse[algo], r.LongResponse[algo])
	}
	w.Flush()
	return b.String()
}

// Table6Result reproduces Table 6: average and maximum result counts with
// k varied (starred entries hit the time limit).
type Table6Result struct {
	Datasets []string
	KRange   []int
	Avg      map[string]map[int]float64
	Max      map[string]map[int]uint64
	Starred  map[string]map[int]bool
}

// Table6 counts results per k on the representative datasets with IDX-DFS.
func Table6(cfg Config) (*Table6Result, error) {
	cfg = cfg.normalized()
	datasets := cfg.Datasets
	if len(datasets) == 0 {
		datasets = []string{"ep", "gg"}
	}
	res := &Table6Result{
		Datasets: datasets,
		KRange:   cfg.KRange,
		Avg:      map[string]map[int]float64{},
		Max:      map[string]map[int]uint64{},
		Starred:  map[string]map[int]bool{},
	}
	for _, name := range datasets {
		g, err := loadDataset(name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		queries, err := sampleQueries(g, cfg)
		if err != nil {
			continue
		}
		res.Avg[name] = map[int]float64{}
		res.Max[name] = map[int]uint64{}
		res.Starred[name] = map[int]bool{}
		for _, k := range cfg.KRange {
			records, err := RunQuerySet(&IDXDFS{}, g, queries, cfg.runConfig(k))
			if err != nil {
				return nil, err
			}
			agg := Summarize(records)
			res.Avg[name][k] = agg.MeanResults
			res.Max[name][k] = agg.MaxResults
			res.Starred[name][k] = agg.TimeoutFraction > 0
		}
	}
	return res, nil
}

// Render formats Table 6.
func (r *Table6Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 6: average and maximum number of results (star = time limit hit)\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "dataset\tstat")
	for _, k := range r.KRange {
		fmt.Fprintf(w, "\tk=%d", k)
	}
	fmt.Fprintln(w)
	for _, d := range r.Datasets {
		fmt.Fprintf(w, "%s\tavg", d)
		for _, k := range r.KRange {
			star := ""
			if r.Starred[d][k] {
				star = "*"
			}
			fmt.Fprintf(w, "\t%.3g%s", r.Avg[d][k], star)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "%s\tmax", d)
		for _, k := range r.KRange {
			fmt.Fprintf(w, "\t%d", r.Max[d][k])
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	return b.String()
}

// Table7Result reproduces Table 7: maximum memory for the index and the
// join's materialized partial results with k varied.
type Table7Result struct {
	Datasets   []string
	KRange     []int
	IndexMB    map[string]map[int]float64
	PartialsMB map[string]map[int]float64
}

// Table7 measures memory with IDX-JOIN, whose partial results dominate.
func Table7(cfg Config) (*Table7Result, error) {
	cfg = cfg.normalized()
	datasets := cfg.Datasets
	if len(datasets) == 0 {
		datasets = []string{"ep", "gg"}
	}
	res := &Table7Result{
		Datasets:   datasets,
		KRange:     cfg.KRange,
		IndexMB:    map[string]map[int]float64{},
		PartialsMB: map[string]map[int]float64{},
	}
	for _, name := range datasets {
		g, err := loadDataset(name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		queries, err := sampleQueries(g, cfg)
		if err != nil {
			continue
		}
		res.IndexMB[name] = map[int]float64{}
		res.PartialsMB[name] = map[int]float64{}
		for _, k := range cfg.KRange {
			records, err := RunQuerySet(&IDXJOIN{}, g, queries, cfg.runConfig(k))
			if err != nil {
				return nil, err
			}
			var maxIdx, maxPart int64
			for _, rec := range records {
				if rec.Stats.IndexBytes > maxIdx {
					maxIdx = rec.Stats.IndexBytes
				}
				if rec.Stats.PartialBytes > maxPart {
					maxPart = rec.Stats.PartialBytes
				}
			}
			res.IndexMB[name][k] = float64(maxIdx) / (1 << 20)
			res.PartialsMB[name][k] = float64(maxPart) / (1 << 20)
		}
	}
	return res, nil
}

// Render formats Table 7.
func (r *Table7Result) Render() string {
	var b strings.Builder
	b.WriteString("Table 7: maximum memory consumption (MB)\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "component\tdataset")
	for _, k := range r.KRange {
		fmt.Fprintf(w, "\tk=%d", k)
	}
	fmt.Fprintln(w)
	for _, d := range r.Datasets {
		fmt.Fprintf(w, "index\t%s", d)
		for _, k := range r.KRange {
			fmt.Fprintf(w, "\t%.3f", r.IndexMB[d][k])
		}
		fmt.Fprintln(w)
	}
	for _, d := range r.Datasets {
		fmt.Fprintf(w, "partials\t%s", d)
		for _, k := range r.KRange {
			fmt.Fprintf(w, "\t%.3f", r.PartialsMB[d][k])
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	return b.String()
}

// datasetAndQueries is the shared setup path for single-dataset figures.
func datasetAndQueries(name string, cfg Config) (*graph.Graph, []workload.Query, error) {
	g, err := loadDataset(name, cfg.Scale)
	if err != nil {
		return nil, nil, err
	}
	queries, err := sampleQueries(g, cfg)
	if err != nil {
		return nil, nil, err
	}
	return g, queries, nil
}
