package bench

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"pathenum/internal/batch"
	"pathenum/internal/core"
	"pathenum/internal/workload"
)

// batchWorkers is the pool width both batch variants run at, so the
// comparison isolates shared computation from parallelism.
const batchWorkers = 4

// BatchRow is the per-dataset comparison of the naive independent fan-out
// against the shared-computation batch subsystem on one generated
// shared-endpoint batch.
type BatchRow struct {
	Dataset string
	Queries int
	Unique  int
	Deduped int
	Groups  int

	BFSNaive int
	BFSPlan  int
	BFSSaved int

	NaiveMs  float64
	SharedMs float64
	Speedup  float64
}

// BatchResult is the batch-mode experiment report.
type BatchResult struct {
	K         int
	BatchSize int
	Rows      []BatchRow
}

// Batch compares ExecuteAllContext-style naive fan-out with the batch
// subsystem (planner + shared frontiers + scheduler) on shared-endpoint
// workloads generated per §7.1-style sampling (workload.GenerateBatch),
// one batch per dataset. Both variants run on batchWorkers sessions; the
// shared side additionally reports the planner's accounting.
func Batch(cfg Config) (*BatchResult, error) {
	cfg = cfg.normalized()
	datasets := cfg.Datasets
	if len(datasets) == 0 {
		datasets = []string{"up", "db", "ep", "wt"}
	}
	res := &BatchResult{K: cfg.K, BatchSize: cfg.Queries}
	for _, name := range datasets {
		g, err := loadDataset(name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		bqs, err := workload.GenerateBatch(g, workload.BatchOptions{
			Count:     cfg.Queries,
			K:         cfg.K,
			GroupSize: 8,
			DupFrac:   0.1,
			Seed:      cfg.Seed,
		})
		if err != nil && len(bqs) == 0 {
			continue // dataset yields no in-range batch at this scale
		}
		queries := make([]core.Query, len(bqs))
		for i, q := range bqs {
			queries[i] = core.Query{S: q.S, T: q.T, K: q.K}
		}
		opts := core.Options{Timeout: cfg.TimeLimit}

		pool := &sync.Pool{New: func() any { return core.NewSession(g, nil) }}
		acquire := func() *core.Session { return pool.Get().(*core.Session) }
		release := func(s *core.Session) { pool.Put(s) }
		// Warm the pool so neither variant pays the session allocations
		// (whichever runs first would otherwise eat them for both).
		warm := make([]*core.Session, batchWorkers)
		for i := range warm {
			warm[i] = acquire()
		}
		for _, s := range warm {
			release(s)
		}

		// Naive: every query independent, fanned across the same pool.
		naiveStart := time.Now()
		runNaive(queries, opts, acquire, release)
		naiveMs := ms(time.Since(naiveStart))

		// Shared: plan + schedule with frontier reuse, timed end to end
		// so the planner's cost counts against the speedup it buys.
		sch := &batch.Scheduler{Workers: batchWorkers, Acquire: acquire, Release: release}
		sharedStart := time.Now()
		plan := batch.NewPlanner(g).Plan(queries)
		_, _, stats := sch.Execute(context.Background(), g, plan, opts)
		sharedMs := ms(time.Since(sharedStart))

		row := BatchRow{
			Dataset:  name,
			Queries:  stats.Queries,
			Unique:   stats.Unique,
			Deduped:  stats.Deduped,
			Groups:   stats.Groups,
			BFSNaive: stats.BFSPassesNaive,
			BFSPlan:  stats.BFSPasses,
			BFSSaved: stats.BFSPassesSaved,
			NaiveMs:  naiveMs,
			SharedMs: sharedMs,
		}
		if sharedMs > 0 {
			row.Speedup = naiveMs / sharedMs
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// runNaive executes every query independently across batchWorkers
// sessions — the ExecuteAllContext baseline, reproduced here so the bench
// layer stays below the public engine.
func runNaive(queries []core.Query, opts core.Options, acquire func() *core.Session, release func(*core.Session)) {
	sem := make(chan struct{}, batchWorkers)
	var wg sync.WaitGroup
	for _, q := range queries {
		sem <- struct{}{}
		wg.Add(1)
		go func(q core.Query) {
			defer wg.Done()
			defer func() { <-sem }()
			sess := acquire()
			defer release(sess)
			_, _ = sess.Run(q, opts)
		}(q)
	}
	wg.Wait()
}

// Render formats the batch comparison report.
func (r *BatchResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Batch subsystem: shared-computation planning vs naive fan-out (%d-query batches, k=%d, %d workers)\n",
		r.BatchSize, r.K, batchWorkers)
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "dataset\tqueries\tunique\tdeduped\tgroups\tBFS naive\tBFS plan\tsaved\tnaive ms\tshared ms\tspeedup\n")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.3g\t%.3g\t%.2fx\n",
			row.Dataset, row.Queries, row.Unique, row.Deduped, row.Groups,
			row.BFSNaive, row.BFSPlan, row.BFSSaved, row.NaiveMs, row.SharedMs, row.Speedup)
	}
	w.Flush()
	return b.String()
}
