package bench

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"pathenum/internal/batch"
	"pathenum/internal/cache"
	"pathenum/internal/core"
	"pathenum/internal/graph"
	"pathenum/internal/workload"
)

// CacheRow is the per-dataset report of the cross-batch frontier cache on
// a repeat-hub workload: the same shared-endpoint batch executed twice
// against one scheduler + cache pair.
type CacheRow struct {
	Dataset string
	Queries int
	Unique  int

	// ColdBFS / WarmBFS are the BFS passes actually run by the first and
	// second execution (batch.Stats.BFSPassesRun); the acceptance target
	// is WarmBFS == 0.
	ColdBFS int
	WarmBFS int
	// WarmHits counts frontier-cache hits during the warm call.
	WarmHits int

	ColdMs  float64
	WarmMs  float64
	Speedup float64
}

// CacheResult is the cache-experiment report.
type CacheResult struct {
	K         int
	BatchSize int
	Rows      []CacheRow
}

// cacheProvider adapts a cache.FrontierCache to the scheduler's
// FrontierProvider seam, exactly as the public engine does (reproduced
// here so the bench layer stays below the engine and avoids an import
// cycle with the root package).
type cacheProvider struct {
	c   *cache.FrontierCache
	ver graph.Version
}

func (p *cacheProvider) Lookup(origin graph.VertexID, forward bool, k int) *core.Frontier {
	return p.c.Get(cache.Key{Origin: origin, Forward: forward}, k, p.ver)
}

// Store deposits unconditionally: the bench isolates cache mechanics, so
// no admission policy applies (the engine's provider layers one on).
func (p *cacheProvider) Store(f *core.Frontier, uses int) bool { return p.c.Put(f) }

// Cache measures the cross-batch frontier cache: one generated
// shared-endpoint batch (workload.GenerateBatch) executed twice through
// the batch subsystem with a shared cache. The first call plans, builds
// and deposits every frontier; the second models the repeat hub of the
// dynamic e-commerce scenario (§7.2) — a popular endpoint queried in
// every fraud batch — and should be served entirely from the cache, with
// zero BFS passes run.
func Cache(cfg Config) (*CacheResult, error) {
	cfg = cfg.normalized()
	datasets := cfg.Datasets
	if len(datasets) == 0 {
		datasets = []string{"up", "db", "ep", "wt"}
	}
	res := &CacheResult{K: cfg.K, BatchSize: cfg.Queries}
	for _, name := range datasets {
		g, err := loadDataset(name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		bqs, err := workload.GenerateBatch(g, workload.BatchOptions{
			Count:     cfg.Queries,
			K:         cfg.K,
			GroupSize: 8,
			Seed:      cfg.Seed,
		})
		if err != nil && len(bqs) == 0 {
			continue // dataset yields no in-range batch at this scale
		}
		queries := make([]core.Query, len(bqs))
		for i, q := range bqs {
			queries[i] = core.Query{S: q.S, T: q.T, K: q.K}
		}
		opts := core.Options{Timeout: cfg.TimeLimit}
		ctx := context.Background()

		pool := &sync.Pool{New: func() any { return core.NewSession(g, nil) }}
		// The cache must hold every frontier of the batch for the warm
		// call to run BFS-free (one entry per unique endpoint side).
		sch := &batch.Scheduler{
			Workers:   batchWorkers,
			Acquire:   func() *core.Session { return pool.Get().(*core.Session) },
			Release:   func(s *core.Session) { pool.Put(s) },
			Frontiers: &cacheProvider{c: cache.New(2 * len(queries)), ver: g.Version()},
		}
		plan := batch.NewPlanner(g).Plan(queries)

		coldStart := time.Now()
		_, _, coldStats := sch.Execute(ctx, g, plan, opts)
		coldMs := ms(time.Since(coldStart))

		warmStart := time.Now()
		_, _, warmStats := sch.Execute(ctx, g, plan, opts)
		warmMs := ms(time.Since(warmStart))

		row := CacheRow{
			Dataset:  name,
			Queries:  coldStats.Queries,
			Unique:   coldStats.Unique,
			ColdBFS:  coldStats.BFSPassesRun,
			WarmBFS:  warmStats.BFSPassesRun,
			WarmHits: warmStats.FrontierCacheHits,
			ColdMs:   coldMs,
			WarmMs:   warmMs,
		}
		if warmMs > 0 {
			row.Speedup = coldMs / warmMs
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats the cache experiment report.
func (r *CacheResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Frontier cache: repeat shared-hub batch, cold vs warm call (%d-query batches, k=%d, %d workers)\n",
		r.BatchSize, r.K, batchWorkers)
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "dataset\tqueries\tunique\tBFS cold\tBFS warm\twarm hits\tcold ms\twarm ms\tspeedup\n")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%.3g\t%.3g\t%.2fx\n",
			row.Dataset, row.Queries, row.Unique,
			row.ColdBFS, row.WarmBFS, row.WarmHits, row.ColdMs, row.WarmMs, row.Speedup)
	}
	w.Flush()
	return b.String()
}
