package bench

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"pathenum/internal/batch"
	"pathenum/internal/core"
	"pathenum/internal/graph"
	"pathenum/internal/workload"
)

// BatchTwoSidedRow is the per-dataset report of a cold hub-to-hub batch:
// the acceptance target is BFSRun == Endpoints — one pass per distinct
// endpoint, however the queries cross-pair them.
type BatchTwoSidedRow struct {
	Dataset string
	Queries int
	Unique  int

	// Endpoints is the number of distinct BFS sides the batch touches
	// (distinct sources + distinct targets).
	Endpoints int
	// BFSNaive is the 2-per-query baseline; BFSRun is what the scheduler
	// actually executed cold.
	BFSNaive int
	BFSRun   int
	// Shared/TwoSided are the planner's spec accounting: specs total, and
	// the subset shared across group boundaries (the frontiers one-sided
	// grouping could never share).
	Shared   int
	TwoSided int

	NaiveMs  float64
	SharedMs float64
	Speedup  float64
}

// BatchTwoSidedResult is the two-sided batch experiment report.
type BatchTwoSidedResult struct {
	K         int
	BatchSize int
	Rows      []BatchTwoSidedRow
}

// BatchTwoSided measures the cold two-sided path: a hub-to-hub grid
// batch (workload.GenerateBatch with TwoSided) executed once, no cache,
// against the naive per-query fan-out. Where the one-sided planner would
// build one frontier per group plus one per member, the two-sided plan
// builds exactly one BFS per distinct endpoint.
func BatchTwoSided(cfg Config) (*BatchTwoSidedResult, error) {
	cfg = cfg.normalized()
	datasets := cfg.Datasets
	if len(datasets) == 0 {
		datasets = []string{"up", "db", "ep", "wt"}
	}
	res := &BatchTwoSidedResult{K: cfg.K, BatchSize: cfg.Queries}
	for _, name := range datasets {
		g, err := loadDataset(name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		bqs, err := workload.GenerateBatch(g, workload.BatchOptions{
			Count:     cfg.Queries,
			K:         cfg.K,
			GroupSize: 8,
			TwoSided:  true,
			Seed:      cfg.Seed,
		})
		if err != nil && len(bqs) == 0 {
			continue // dataset yields no two-sided grid at this scale
		}
		queries := make([]core.Query, len(bqs))
		srcs := make(map[graph.VertexID]bool)
		tgts := make(map[graph.VertexID]bool)
		for i, q := range bqs {
			queries[i] = core.Query{S: q.S, T: q.T, K: q.K}
			srcs[q.S] = true
			tgts[q.T] = true
		}
		opts := core.Options{Timeout: cfg.TimeLimit}

		pool := &sync.Pool{New: func() any { return core.NewSession(g, nil) }}
		acquire := func() *core.Session { return pool.Get().(*core.Session) }
		release := func(s *core.Session) { pool.Put(s) }
		warm := make([]*core.Session, batchWorkers)
		for i := range warm {
			warm[i] = acquire()
		}
		for _, s := range warm {
			release(s)
		}

		naiveStart := time.Now()
		runNaive(queries, opts, acquire, release)
		naiveMs := ms(time.Since(naiveStart))

		sch := &batch.Scheduler{Workers: batchWorkers, Acquire: acquire, Release: release}
		sharedStart := time.Now()
		plan := batch.NewPlanner(g).Plan(queries)
		_, _, stats := sch.Execute(context.Background(), g, plan, opts)
		sharedMs := ms(time.Since(sharedStart))

		row := BatchTwoSidedRow{
			Dataset:   name,
			Queries:   stats.Queries,
			Unique:    stats.Unique,
			Endpoints: len(srcs) + len(tgts),
			BFSNaive:  stats.BFSPassesNaive,
			BFSRun:    stats.BFSPassesRun,
			Shared:    stats.SharedFrontiers,
			TwoSided:  stats.TwoSidedFrontiers,
			NaiveMs:   naiveMs,
			SharedMs:  sharedMs,
		}
		if sharedMs > 0 {
			row.Speedup = naiveMs / sharedMs
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats the two-sided batch report.
func (r *BatchTwoSidedResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Two-sided batch: cold hub-to-hub grid, one BFS per distinct endpoint (%d-query batches, k=%d, %d workers)\n",
		r.BatchSize, r.K, batchWorkers)
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "dataset\tqueries\tunique\tendpoints\tBFS naive\tBFS run\tshared\ttwo-sided\tnaive ms\tshared ms\tspeedup\n")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%.3g\t%.3g\t%.2fx\n",
			row.Dataset, row.Queries, row.Unique, row.Endpoints,
			row.BFSNaive, row.BFSRun, row.Shared, row.TwoSided,
			row.NaiveMs, row.SharedMs, row.Speedup)
	}
	w.Flush()
	return b.String()
}
