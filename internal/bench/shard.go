package bench

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"strings"
	"text/tabwriter"
	"time"

	"pathenum"
	"pathenum/internal/shard"
	"pathenum/internal/workload"
)

// ShardRow reports the sharded-engine experiment for one (dataset, P,
// query class) triple: mean time-to-first-path and mean drain time over
// the class's query set through the sharded engine, against the same
// queries through an unsharded engine on the same graph. Overhead is the
// sharded drain over the unsharded drain — the acceptance bar is P=1
// within 10% of 1.0 (the sharding layer costs one classification when it
// routes everything to a single spine), and the cross rows price the
// boundary join against single-image enumeration.
type ShardRow struct {
	Dataset string
	P       int
	// Class is "intra" (endpoints co-owned) or "cross" (endpoints in
	// different shards; absent at P=1).
	Class   string
	Queries int
	Paths   uint64

	FirstMs         float64
	TotalMs         float64
	P99FirstMs      float64
	BaselineFirstMs float64
	BaselineTotalMs float64
	// Overhead is TotalMs / BaselineTotalMs (1.0 = free sharding).
	Overhead float64
}

// ShardResult is the sharded-engine experiment report.
type ShardResult struct {
	K    int
	Rows []ShardRow
}

// shardClassStats is one measured pass over a query class.
type shardClassStats struct {
	firstMs, totalMs, p99Ms float64
	paths                   uint64
}

// drainClass streams every query through stream, timing first path and
// drain per query.
func drainClass(qs []workload.BatchQuery, k int, timeout time.Duration,
	stream func(context.Context, pathenum.Request) iter.Seq2[pathenum.Path, error]) (shardClassStats, error) {
	var out shardClassStats
	// Warm the engine before timing — session-pool and routing state
	// initialize lazily, and at microsecond query scale that cold start
	// would dominate the overhead column.
	for _, wq := range qs[:min(4, len(qs))] {
		req := pathenum.Request{S: wq.S, T: wq.T, K: k, Timeout: timeout}
		for _, serr := range stream(context.Background(), req) {
			if serr != nil {
				return out, fmt.Errorf("warmup %v: %w", wq, serr)
			}
		}
	}
	var firstSum, totalSum time.Duration
	var firsts []time.Duration
	for _, wq := range qs {
		req := pathenum.Request{S: wq.S, T: wq.T, K: k, Timeout: timeout}
		start := time.Now()
		first := time.Duration(-1)
		for _, serr := range stream(context.Background(), req) {
			if serr != nil {
				return out, fmt.Errorf("query %v: %w", wq, serr)
			}
			if first < 0 {
				first = time.Since(start)
			}
			out.paths++
		}
		totalSum += time.Since(start)
		if first >= 0 {
			firstSum += first
			firsts = append(firsts, first)
		}
	}
	if len(firsts) > 0 {
		out.firstMs = ms(firstSum) / float64(len(firsts))
		out.p99Ms = ms(Percentile(firsts, 0.99))
	}
	if len(qs) > 0 {
		out.totalMs = ms(totalSum) / float64(len(qs))
	}
	return out, nil
}

// Shard measures the sharded engine against the unsharded baseline: for
// each dataset and P in {1, 2, 4}, partition-aware query sets (pure
// intra and pure cross per the engine's hashed ownership at that P) run
// through shard.Engine.Stream and through a plain pathenum.Engine on the
// same graph, reporting first-path and drain per class. P=1 prices the
// routing layer itself; the cross rows price the boundary join.
func Shard(cfg Config) (*ShardResult, error) {
	cfg = cfg.normalized()
	datasets := cfg.Datasets
	if len(datasets) == 0 {
		datasets = []string{"up", "db", "ep", "wt"}
	}
	maxDist := 3
	if cfg.K < maxDist {
		maxDist = cfg.K
	}
	res := &ShardResult{K: cfg.K}
	for _, name := range datasets {
		g, err := loadDataset(name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		base, err := pathenum.NewEngine(g, pathenum.EngineConfig{Workers: 4})
		if err != nil {
			return nil, err
		}
		for _, p := range []int{1, 2, 4} {
			eng, err := shard.New(g, p, shard.Config{Engine: pathenum.EngineConfig{Workers: 4}})
			if err != nil {
				return nil, err
			}
			classes := []struct {
				name      string
				crossFrac float64
			}{{"intra", 0}}
			if p > 1 {
				classes = append(classes, struct {
					name      string
					crossFrac float64
				}{"cross", 1})
			}
			for _, class := range classes {
				qs, err := workload.GeneratePartitioned(g, workload.PartitionOptions{
					Count:     cfg.Queries,
					K:         cfg.K,
					Shards:    p,
					Owner:     shard.HashOwner(p),
					CrossFrac: class.crossFrac,
					MaxDist:   maxDist,
					Seed:      cfg.Seed,
				})
				if err != nil {
					if errors.Is(err, workload.ErrNoQueries) {
						continue // class unpopulated at this scale
					}
					return nil, err
				}
				sharded, err := drainClass(qs, cfg.K, cfg.TimeLimit, eng.Stream)
				if err != nil {
					return nil, fmt.Errorf("%s P=%d %s sharded: %w", name, p, class.name, err)
				}
				baseline, err := drainClass(qs, cfg.K, cfg.TimeLimit, base.Stream)
				if err != nil {
					return nil, fmt.Errorf("%s P=%d %s baseline: %w", name, p, class.name, err)
				}
				if sharded.paths != baseline.paths {
					return nil, fmt.Errorf("%s P=%d %s: sharded drained %d paths, baseline %d — differential broken",
						name, p, class.name, sharded.paths, baseline.paths)
				}
				row := ShardRow{
					Dataset: name, P: p, Class: class.name,
					Queries:         len(qs),
					Paths:           sharded.paths,
					FirstMs:         sharded.firstMs,
					TotalMs:         sharded.totalMs,
					P99FirstMs:      sharded.p99Ms,
					BaselineFirstMs: baseline.firstMs,
					BaselineTotalMs: baseline.totalMs,
				}
				if baseline.totalMs > 0 {
					row.Overhead = sharded.totalMs / baseline.totalMs
				}
				res.Rows = append(res.Rows, row)
			}
		}
	}
	return res, nil
}

// Render formats the sharded-engine experiment report.
func (r *ShardResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sharded engine vs unsharded baseline: first-path and drain by shard count and query class (k=%d)\n", r.K)
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "dataset\tP\tclass\tqueries\tpaths\tfirst ms\tp99 first ms\tdrain ms\tbase first ms\tbase drain ms\toverhead\n")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%s\t%d\t%s\t%d\t%d\t%.3g\t%.3g\t%.3g\t%.3g\t%.3g\t%.2fx\n",
			row.Dataset, row.P, row.Class, row.Queries, row.Paths,
			row.FirstMs, row.P99FirstMs, row.TotalMs,
			row.BaselineFirstMs, row.BaselineTotalMs, row.Overhead)
	}
	w.Flush()
	return b.String()
}
