package bench

import (
	"strings"
	"testing"
	"time"

	"pathenum/internal/core"
	"pathenum/internal/gen"
	"pathenum/internal/workload"
)

// tinyConfig keeps every experiment below a second.
func tinyConfig() Config {
	return Config{
		Scale:     0.05,
		Queries:   6,
		K:         4,
		KRange:    []int{3, 4},
		TimeLimit: 250 * time.Millisecond,
		ResponseK: 50,
		Datasets:  []string{"ep", "gg"},
		Seed:      7,
	}
}

func TestRunOneBasic(t *testing.T) {
	g := gen.BarabasiAlbert(200, 5, 3)
	qs, err := workload.Generate(g, workload.Options{Setting: workload.HighHigh, Count: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range AllAlgos() {
		rec, err := RunOne(algo, g, core.Query{S: qs[0].S, T: qs[0].T, K: 4}, RunConfig{K: 4, TimeLimit: time.Second})
		if err != nil {
			t.Fatalf("%s: %v", algo.Name(), err)
		}
		if rec.TimedOut {
			t.Fatalf("%s: tiny query timed out", algo.Name())
		}
		if rec.TotalTime() <= 0 {
			t.Fatalf("%s: non-positive total time", algo.Name())
		}
		if rec.ResponseTime <= 0 {
			t.Fatalf("%s: non-positive response time", algo.Name())
		}
	}
}

// TestAlgosAgreeOnCounts: all five harness algorithms return identical
// result counts per query.
func TestAlgosAgreeOnCounts(t *testing.T) {
	g := gen.BarabasiAlbert(300, 5, 17)
	qs, err := workload.Generate(g, workload.Options{Setting: workload.HighHigh, Count: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cfg := RunConfig{K: 4, TimeLimit: 5 * time.Second}
	for _, wq := range qs {
		q := core.Query{S: wq.S, T: wq.T, K: 4}
		var want uint64
		for i, algo := range AllAlgos() {
			rec, err := RunOne(algo, g, q, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				want = rec.Results
			} else if rec.Results != want {
				t.Fatalf("%s: %d results, want %d (query %v)", algo.Name(), rec.Results, want, q)
			}
		}
	}
}

func TestSummarize(t *testing.T) {
	recs := []Record{
		{PrepareTime: time.Millisecond, EnumTime: time.Millisecond, Results: 100, ResponseTime: time.Millisecond},
		{PrepareTime: 2 * time.Millisecond, EnumTime: 2 * time.Millisecond, Results: 300, TimedOut: true, ResponseTime: 2 * time.Millisecond},
	}
	agg := Summarize(recs)
	if agg.Queries != 2 {
		t.Fatalf("Queries = %d", agg.Queries)
	}
	if agg.MeanQueryTimeMs != 3 {
		t.Fatalf("MeanQueryTimeMs = %f, want 3", agg.MeanQueryTimeMs)
	}
	if agg.TimeoutFraction != 0.5 {
		t.Fatalf("TimeoutFraction = %f", agg.TimeoutFraction)
	}
	if agg.TotalResults != 400 || agg.MaxResults != 300 || agg.MeanResults != 200 {
		t.Fatalf("results aggregation wrong: %+v", agg)
	}
	if Summarize(nil).Queries != 0 {
		t.Fatal("empty summarize must be zero")
	}
}

func TestPercentile(t *testing.T) {
	ds := []time.Duration{5, 1, 3, 2, 4}
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{0, 1}, {0.2, 1}, {0.5, 3}, {0.999, 5}, {1, 5},
	}
	for _, c := range cases {
		if got := Percentile(ds, c.p); got != c.want {
			t.Errorf("Percentile(%.3f) = %d, want %d", c.p, got, c.want)
		}
	}
	if Percentile(nil, 0.5) != 0 {
		t.Error("empty percentile must be 0")
	}
}

func TestCDFMonotone(t *testing.T) {
	recs := []Record{
		{EnumTime: time.Millisecond},
		{EnumTime: 10 * time.Millisecond},
		{EnumTime: 100 * time.Millisecond},
	}
	bounds := []time.Duration{time.Millisecond, 10 * time.Millisecond, time.Second}
	cdf := CDF(recs, bounds)
	prev := 0.0
	for i, f := range cdf {
		if f < prev {
			t.Fatalf("CDF not monotone at %d: %v", i, cdf)
		}
		prev = f
	}
	if cdf[len(cdf)-1] != 1.0 {
		t.Fatalf("CDF must reach 1: %v", cdf)
	}
}

func TestLinearRegression(t *testing.T) {
	// y = 2 + 3x exactly.
	xs := []float64{0, 1, 2, 3}
	ys := []float64{2, 5, 8, 11}
	a, b := LinearRegression(xs, ys)
	if a < 1.99 || a > 2.01 || b < 2.99 || b > 3.01 {
		t.Fatalf("fit = (%f, %f), want (2, 3)", a, b)
	}
	if a, b := LinearRegression(nil, nil); a != 0 || b != 0 {
		t.Fatal("empty regression must be zero")
	}
	// Degenerate x values.
	if _, b := LinearRegression([]float64{1, 1}, []float64{1, 2}); b != 0 {
		t.Fatal("degenerate regression slope must be 0")
	}
}

func TestTable3Small(t *testing.T) {
	res, err := Table3(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Datasets) == 0 {
		t.Fatal("no datasets produced queries")
	}
	if len(res.Algos) != 5 {
		t.Fatalf("algos = %v", res.Algos)
	}
	out := res.Render()
	for _, want := range []string{"Table 3", "IDX-DFS", "PathEnum", "query time"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTable4Small(t *testing.T) {
	res, err := Table4(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	if !strings.Contains(out, "Table 4") {
		t.Fatalf("render:\n%s", out)
	}
	// Fractions must be within [0,1].
	for _, d := range res.Datasets {
		for algo, perK := range res.Fast[d] {
			for k, f := range perK {
				if f < 0 || f > 1 {
					t.Fatalf("%s/%s/k=%d: fast fraction %f", d, algo, k, f)
				}
			}
		}
	}
}

func TestTable5Small(t *testing.T) {
	res, err := Table5(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Render(), "Table 5") {
		t.Fatal("render missing header")
	}
	for algo, n := range res.ShortCount {
		if n+res.LongCount[algo] == 0 {
			t.Fatalf("%s: no queries recorded", algo)
		}
	}
}

func TestTable6Small(t *testing.T) {
	res, err := Table6(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Render(), "Table 6") {
		t.Fatal("render missing header")
	}
	// Result counts must not decrease with k (more budget, more paths).
	for _, d := range res.Datasets {
		if res.Avg[d][4]+1e-9 < res.Avg[d][3] {
			t.Fatalf("%s: avg results decreased with k: %v", d, res.Avg[d])
		}
	}
}

func TestTable7Small(t *testing.T) {
	res, err := Table7(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Render(), "Table 7") {
		t.Fatal("render missing header")
	}
	for _, d := range res.Datasets {
		for _, k := range res.KRange {
			if res.IndexMB[d][k] <= 0 {
				t.Fatalf("%s k=%d: index memory must be positive", d, k)
			}
		}
	}
}

func TestFig6Small(t *testing.T) {
	res, err := Fig6(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Render(), "Figure 6") {
		t.Fatal("render missing header")
	}
	// The headline claim: IDX-DFS accesses fewer edges than BC-DFS.
	for _, d := range res.Datasets {
		for _, k := range res.KRange {
			bc := res.Edges[d]["BC-DFS"][k]
			idx := res.Edges[d]["IDX-DFS"][k]
			if idx > bc {
				t.Fatalf("%s k=%d: IDX-DFS scanned %f edges > BC-DFS %f", d, k, idx, bc)
			}
		}
	}
}

func TestFig7Small(t *testing.T) {
	res, err := Fig7(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Render(), "Figure 7") {
		t.Fatal("render missing header")
	}
}

func TestFig8Small(t *testing.T) {
	cfg := tinyConfig()
	cfg.Queries = 4
	cfg.Datasets = []string{"gg"}
	res, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Render(), "Figure 8") {
		t.Fatal("render missing header")
	}
	if res.Updates == 0 {
		t.Fatal("no updates executed")
	}
}

func TestFig9Small(t *testing.T) {
	res, err := Fig9(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	if !strings.Contains(out, "Figure 9") || !strings.Contains(out, "PathEnum") {
		t.Fatalf("render:\n%s", out)
	}
	if len(res.BushyMs) != res.K-1 {
		t.Fatalf("bushy plans = %d, want %d", len(res.BushyMs), res.K-1)
	}
}

func TestFig10Small(t *testing.T) {
	res, err := Fig10(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Render(), "Figures 10/11") {
		t.Fatal("render missing header")
	}
}

func TestFig12Small(t *testing.T) {
	cfg := tinyConfig()
	cfg.Datasets = []string{"ep"} // stand in for tm at test scale
	cfg.KRange = []int{3, 4}
	res, err := Fig12(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Render(), "Figure 12") {
		t.Fatal("render missing header")
	}
	for _, k := range res.KRange {
		if res.IndexMs[k] < res.BFSMs[k] {
			t.Fatalf("k=%d: index time %f < BFS share %f", k, res.IndexMs[k], res.BFSMs[k])
		}
	}
}

func TestVaryKSmall(t *testing.T) {
	res, err := VaryK(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Render(), "Figures 13/14/15") {
		t.Fatal("render missing header")
	}
}

func TestFig16Small(t *testing.T) {
	res, err := Fig16(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Render(), "Figure 16") {
		t.Fatal("render missing header")
	}
	for _, d := range res.Datasets {
		for algo, cdf := range res.CDF[d] {
			prev := 0.0
			for _, f := range cdf {
				if f < prev {
					t.Fatalf("%s/%s: CDF not monotone: %v", d, algo, cdf)
				}
				prev = f
			}
		}
	}
}

func TestFig17Small(t *testing.T) {
	res, err := Fig17(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Render(), "Figure 17") {
		t.Fatal("render missing header")
	}
}

func TestFig18Small(t *testing.T) {
	res, err := Fig18(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Render(), "Figure 18") {
		t.Fatal("render missing header")
	}
	// The full-fledged estimate is a walk count: it upper-bounds the true
	// result count on every completed series point.
	for _, d := range res.Datasets {
		for k, actual := range res.Actual[d] {
			if full := res.FullFledged[d][k]; full+1e-9 < actual {
				t.Fatalf("%s k=%d: full estimate %f below actual %f", d, k, full, actual)
			}
		}
	}
}

func TestExtensionsSmall(t *testing.T) {
	cfg := tinyConfig()
	res, err := Extensions(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	if !strings.Contains(out, "Extensions ablation") || !strings.Contains(out, "Session") {
		t.Fatalf("render:\n%s", out)
	}
	if res.OracleBuildMs <= 0 || res.OracleBytes <= 0 {
		t.Fatal("oracle stats missing")
	}
	if res.PlainMs <= 0 || res.SessionMs <= 0 || res.SessionOracleMs <= 0 {
		t.Fatal("query-time stats missing")
	}
	if !res.HPIBlewCap && res.HPISegments == 0 {
		t.Fatal("HPI stats missing despite successful build")
	}
}

func TestBatchSmall(t *testing.T) {
	cfg := tinyConfig()
	cfg.Queries = 16
	res, err := Batch(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no datasets produced a batch row")
	}
	out := res.Render()
	if !strings.Contains(out, "Batch subsystem") || !strings.Contains(out, "speedup") {
		t.Fatalf("render:\n%s", out)
	}
	for _, row := range res.Rows {
		if row.BFSPlan > row.BFSNaive {
			t.Fatalf("%s: plan runs more BFS passes (%d) than naive (%d)", row.Dataset, row.BFSPlan, row.BFSNaive)
		}
		if row.NaiveMs <= 0 || row.SharedMs <= 0 {
			t.Fatalf("%s: timings missing: %+v", row.Dataset, row)
		}
	}
}

// TestCacheSmall: the cache experiment's warm call must run zero BFS
// passes — the cross-batch reuse claim the experiment exists to show.
func TestCacheSmall(t *testing.T) {
	cfg := tinyConfig()
	cfg.Queries = 16
	res, err := Cache(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no datasets produced a cache row")
	}
	out := res.Render()
	if !strings.Contains(out, "Frontier cache") || !strings.Contains(out, "BFS warm") {
		t.Fatalf("render:\n%s", out)
	}
	for _, row := range res.Rows {
		if row.ColdBFS == 0 {
			t.Fatalf("%s: cold call reported zero BFS passes", row.Dataset)
		}
		if row.WarmBFS != 0 {
			t.Fatalf("%s: warm call ran %d BFS passes, want 0", row.Dataset, row.WarmBFS)
		}
		if row.WarmHits == 0 {
			t.Fatalf("%s: warm call recorded no cache hits", row.Dataset)
		}
	}
}

// TestShardSmall: the sharded experiment runs, covers both classes at
// P>1, keeps path parity with the baseline (enforced inside Shard), and
// renders.
func TestShardSmall(t *testing.T) {
	cfg := tinyConfig()
	cfg.Datasets = []string{"ep"}
	res, err := Shard(cfg)
	if err != nil {
		t.Fatal(err)
	}
	classes := map[string]bool{}
	for _, row := range res.Rows {
		classes[row.Class] = true
		if row.P == 1 && row.Class != "intra" {
			t.Fatalf("P=1 must be intra-only, got %q", row.Class)
		}
		if row.Queries == 0 {
			t.Fatalf("empty row %+v", row)
		}
	}
	if !classes["intra"] || !classes["cross"] {
		t.Fatalf("classes covered: %v, want intra and cross", classes)
	}
	out := res.Render()
	for _, want := range []string{"overhead", "cross", "intra"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
