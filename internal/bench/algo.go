// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (§7) on the synthetic dataset registry:
// per-query-set runs with time limits, the paper's metrics (query time,
// throughput, response time, 99.9% latency, CDFs, per-phase breakdowns,
// memory), and text renderers for the reports recorded in EXPERIMENTS.md.
package bench

import (
	"time"

	"pathenum/internal/baseline"
	"pathenum/internal/core"
	"pathenum/internal/graph"
)

// Algo is the uniform two-phase algorithm interface: per-query
// preprocessing (index construction / BFS / plan selection) followed by
// enumeration. It matches the query time breakdown of Figure 7.
type Algo interface {
	Name() string
	Prepare(g *graph.Graph, q core.Query) error
	Enumerate(ctl core.RunControl, ctr *core.Counters) (bool, error)
}

// ExtraStats is implemented by algorithms that expose index/materialization
// statistics from their last run (Table 7, Figure 10).
type ExtraStats interface {
	LastStats() Stats
}

// Stats carries optional per-query statistics.
type Stats struct {
	IndexEdges    int64
	IndexVertices int
	IndexBytes    int64
	PartialBytes  int64
	BFSTime       time.Duration // distance-labeling share of Prepare
	OptimizeTime  time.Duration // estimator/plan share of Prepare
}

// IDXDFS runs Algorithm 4 on the light-weight index.
type IDXDFS struct {
	ix    *core.Index
	stats Stats
}

// Name implements Algo.
func (a *IDXDFS) Name() string { return "IDX-DFS" }

// Prepare builds the per-query index.
func (a *IDXDFS) Prepare(g *graph.Graph, q core.Query) error {
	ix, bfsTime, err := buildTimedIndex(g, q)
	if err != nil {
		return err
	}
	a.ix = ix
	a.stats = Stats{
		IndexEdges:    ix.Edges(),
		IndexVertices: ix.NumIndexed(),
		IndexBytes:    ix.MemoryBytes(),
		BFSTime:       bfsTime,
	}
	return nil
}

// Enumerate implements Algo.
func (a *IDXDFS) Enumerate(ctl core.RunControl, ctr *core.Counters) (bool, error) {
	return core.EnumerateDFS(a.ix, ctl, ctr), nil
}

// LastStats implements ExtraStats.
func (a *IDXDFS) LastStats() Stats { return a.stats }

// IDXJOIN runs Algorithm 6 with the cost-optimized cut position.
type IDXJOIN struct {
	ix    *core.Index
	cut   int
	side  core.BuildSide
	stats Stats
}

// Name implements Algo.
func (a *IDXJOIN) Name() string { return "IDX-JOIN" }

// Prepare builds the index and selects the cut with the full estimator.
func (a *IDXJOIN) Prepare(g *graph.Graph, q core.Query) error {
	ix, bfsTime, err := buildTimedIndex(g, q)
	if err != nil {
		return err
	}
	optStart := time.Now()
	est := core.FullEstimate(ix)
	a.ix, a.cut, a.side = ix, est.Cut, est.BuildSideAt(est.Cut)
	a.stats = Stats{
		IndexEdges:    ix.Edges(),
		IndexVertices: ix.NumIndexed(),
		IndexBytes:    ix.MemoryBytes(),
		BFSTime:       bfsTime,
		OptimizeTime:  time.Since(optStart),
	}
	return nil
}

// Enumerate implements Algo, falling back to the DFS when no interior cut
// exists (k < 2).
func (a *IDXJOIN) Enumerate(ctl core.RunControl, ctr *core.Counters) (bool, error) {
	if a.cut == 0 {
		return core.EnumerateDFS(a.ix, ctl, ctr), nil
	}
	var js core.JoinStats
	done, err := core.EnumerateJoinSide(a.ix, a.cut, a.side, ctl, ctr, &js)
	a.stats.PartialBytes = js.PartialBytes
	return done, err
}

// LastStats implements ExtraStats.
func (a *IDXJOIN) LastStats() Stats { return a.stats }

// PathEnum is the full system: index + two-phase optimizer.
type PathEnum struct {
	ix    *core.Index
	plan  core.Plan
	tau   float64
	stats Stats
}

// NewPathEnum creates the full system with the given tau threshold
// (0 = core.DefaultTau).
func NewPathEnum(tau float64) *PathEnum { return &PathEnum{tau: tau} }

// Name implements Algo.
func (a *PathEnum) Name() string { return "PathEnum" }

// Prepare builds the index and runs the two-phase optimizer.
func (a *PathEnum) Prepare(g *graph.Graph, q core.Query) error {
	ix, bfsTime, err := buildTimedIndex(g, q)
	if err != nil {
		return err
	}
	optStart := time.Now()
	a.plan = core.ChoosePlan(ix, a.tau)
	a.ix = ix
	a.stats = Stats{
		IndexEdges:    ix.Edges(),
		IndexVertices: ix.NumIndexed(),
		IndexBytes:    ix.MemoryBytes(),
		BFSTime:       bfsTime,
		OptimizeTime:  time.Since(optStart),
	}
	return nil
}

// Enumerate implements Algo.
func (a *PathEnum) Enumerate(ctl core.RunControl, ctr *core.Counters) (bool, error) {
	if a.plan.Method == core.MethodJoin {
		var js core.JoinStats
		done, err := core.EnumerateJoinSide(a.ix, a.plan.Cut, a.plan.Build, ctl, ctr, &js)
		a.stats.PartialBytes = js.PartialBytes
		return done, err
	}
	return core.EnumerateDFS(a.ix, ctl, ctr), nil
}

// LastStats implements ExtraStats.
func (a *PathEnum) LastStats() Stats { return a.stats }

// buildTimedIndex builds the index and reports the BFS share of the build.
func buildTimedIndex(g *graph.Graph, q core.Query) (*core.Index, time.Duration, error) {
	ix, timings, err := core.BuildIndexTimed(g, q)
	if err != nil {
		return nil, 0, err
	}
	return ix, timings.BFS, nil
}

// Baselines returns the paper's competitor set in Table-3 order.
func Baselines() []Algo {
	return []Algo{&baseline.BCDFS{}, &baseline.BCJoin{}}
}

// AllAlgos returns the five Table-3 algorithms in column order.
func AllAlgos() []Algo {
	return []Algo{&baseline.BCDFS{}, &baseline.BCJoin{}, &IDXDFS{}, &IDXJOIN{}, NewPathEnum(0)}
}

// ExtendedAlgos additionally includes the dominated baselines (§7.1 notes
// Peng et al. already showed BC-* beats them by orders of magnitude).
func ExtendedAlgos() []Algo {
	return append(AllAlgos(), &baseline.GenericDFS{}, &baseline.TDFS{}, &baseline.Yen{})
}
