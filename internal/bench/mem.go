package bench

import (
	"context"
	"fmt"
	"strings"
	"text/tabwriter"

	"pathenum"
	"pathenum/internal/core"
)

// memWorkers is the engine worker count for the memory experiment — small
// enough that the mandatory per-worker scratch charge leaves headroom for
// the cache and build classes at laptop-scale budgets.
const memWorkers = 4

// MemRow reports one (dataset, budget point) pair of the memory-budget
// experiment: the sampled workload executed through a budgeted engine,
// with the ledger polled after every query for the peak. Paths must equal
// the unbudgeted baseline's — the budget changes residency and plans,
// never answers — and PeakBytes must stay within EffectiveBytes; either
// violation is a hard experiment error, not a report column.
type MemRow struct {
	Dataset string
	// Budget labels the sweep point: "unbudgeted", "generous", "tight" or
	// "pathological".
	Budget string
	// RequestedBytes is the configured MemoryBudgetBytes (0 = unlimited);
	// EffectiveBytes is the engine's floor-adjusted limit (the mandatory
	// session scratch can raise a pathological request).
	RequestedBytes int64
	EffectiveBytes int64
	Queries        int
	Paths          uint64

	// PeakBytes is the highest MemStats.UsedBytes observed across the run
	// (0 for the unbudgeted engine, which keeps no ledger).
	PeakBytes int64
	// PeakCacheBytes is the highest resident frontier-cache charge seen.
	PeakCacheBytes int64
	// JoinFallbacks counts join-planned queries demoted to DFS by build
	// admission; CacheRejected counts frontier deposits the byte bound or
	// ledger refused.
	JoinFallbacks uint64
	CacheRejected uint64
}

// MemResult is the memory-budget experiment report.
type MemResult struct {
	K    int
	Rows []MemRow
}

// memRun executes qs through eng, polling the ledger per query. It
// returns the per-query path counts alongside the row skeleton.
func memRun(eng *pathenum.Engine, qs []pathenum.Query, opts pathenum.Options) ([]uint64, MemRow, error) {
	row := MemRow{Queries: len(qs)}
	counts := make([]uint64, len(qs))
	ctx := context.Background()
	for i, q := range qs {
		res, err := eng.ExecuteWith(ctx, q, opts)
		if err != nil {
			return nil, row, fmt.Errorf("query %d %v: %w", i, q, err)
		}
		counts[i] = res.Counters.Results
		row.Paths += res.Counters.Results
		ms := eng.MemStats()
		if ms.UsedBytes > row.PeakBytes {
			row.PeakBytes = ms.UsedBytes
		}
		if ms.CacheBytes > row.PeakCacheBytes {
			row.PeakCacheBytes = ms.CacheBytes
		}
		row.JoinFallbacks = ms.JoinFallbacks
		row.CacheRejected = ms.CacheRejected
	}
	return counts, row, nil
}

// Mem sweeps the engine memory budget: per dataset, the same sampled
// workload runs unbudgeted and then under budgets from comfortable to
// pathological (1 byte — floored by the engine at the mandatory session
// scratch, leaving nothing for cache or build sides). The experiment
// hard-errors if any budgeted run's per-query path counts diverge from
// the unbudgeted baseline, or if the polled ledger ever exceeds the
// effective budget — those are the correctness claims of the budget
// subsystem (degrade residency and plans, never answers), so a report
// that merely printed them could pass silently broken.
func Mem(cfg Config) (*MemResult, error) {
	cfg = cfg.normalized()
	datasets := cfg.Datasets
	if len(datasets) == 0 {
		datasets = []string{"up", "db", "ep", "wt"}
	}
	res := &MemResult{K: cfg.K}
	opts := pathenum.Options{Timeout: cfg.TimeLimit}
	for _, name := range datasets {
		g, err := loadDataset(name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		wqs, err := sampleQueries(g, cfg)
		if err != nil {
			continue // dataset yields no in-range workload at this scale
		}
		qs := make([]pathenum.Query, len(wqs))
		for i, wq := range wqs {
			qs[i] = pathenum.Query{S: wq.S, T: wq.T, K: cfg.K}
		}

		// The scratch floor anchors the sweep: "tight" leaves only a
		// sliver past the mandatory charge, "generous" leaves room for
		// real cache residency, "pathological" requests a single byte.
		scratch := int64(memWorkers) * core.SessionScratchBytes(g.NumVertices())
		budgets := []struct {
			label string
			bytes int64
		}{
			{"unbudgeted", 0},
			{"generous", 4 * scratch},
			{"tight", scratch + scratch/16 + 1},
			{"pathological", 1},
		}

		var baseline []uint64
		for _, b := range budgets {
			eng, err := pathenum.NewEngine(g, pathenum.EngineConfig{
				Workers:           memWorkers,
				MemoryBudgetBytes: b.bytes,
			})
			if err != nil {
				return nil, err
			}
			counts, row, err := memRun(eng, qs, opts)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", name, b.label, err)
			}
			row.Dataset, row.Budget, row.RequestedBytes = name, b.label, b.bytes
			row.EffectiveBytes = eng.MemStats().BudgetBytes
			if baseline == nil {
				baseline = counts
			} else {
				for i := range counts {
					if counts[i] != baseline[i] {
						return nil, fmt.Errorf(
							"%s %s: query %d %v returned %d paths, unbudgeted baseline %d — budget changed answers",
							name, b.label, i, qs[i], counts[i], baseline[i])
					}
				}
				if row.PeakBytes > row.EffectiveBytes {
					return nil, fmt.Errorf(
						"%s %s: peak ledger %d bytes exceeds effective budget %d",
						name, b.label, row.PeakBytes, row.EffectiveBytes)
				}
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// Render formats the memory-budget experiment report.
func (r *MemResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Memory budget sweep: identical answers under shrinking byte budgets (k=%d, %d workers)\n", r.K, memWorkers)
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "dataset\tbudget\trequested\teffective\tqueries\tpaths\tpeak bytes\tpeak cache\tjoin fallbacks\tdeposits rejected\n")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			row.Dataset, row.Budget, row.RequestedBytes, row.EffectiveBytes,
			row.Queries, row.Paths, row.PeakBytes, row.PeakCacheBytes,
			row.JoinFallbacks, row.CacheRejected)
	}
	w.Flush()
	return b.String()
}
