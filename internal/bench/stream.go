package bench

import (
	"context"
	"fmt"
	"strings"
	"text/tabwriter"
	"time"

	"pathenum/internal/core"
	"pathenum/internal/workload"
)

// StreamRow reports the streaming-delivery experiment for one dataset:
// time-to-first-path of a pull stream against the total enumeration time,
// aggregated over the query set. The ratio is the real-time headline — how
// much sooner a streaming consumer starts seeing results than a
// materialize-everything caller.
type StreamRow struct {
	Dataset string
	// Plan is the requested plan mode ("auto", "dfs" or "join");
	// JoinPlanned / DFSPlanned count the plans actually executed, so a
	// forced join that fell back to DFS (k < 2) and an auto run's mix are
	// both visible in the JSON report.
	Plan        string
	JoinPlanned int
	DFSPlanned  int
	Queries     int
	Paths       uint64 // total results across the query set

	// FirstMs / TotalMs are the mean time-to-first-path and mean total
	// enumeration time per query (queries with no results count toward
	// TotalMs only).
	FirstMs float64
	TotalMs float64
	// P99FirstMs is the 99th-percentile time-to-first-path.
	P99FirstMs float64
	// Speedup is mean total over mean first — the factor by which
	// streaming beats materialization to the first result.
	Speedup float64
}

// StreamResult is the stream-experiment report.
type StreamResult struct {
	K    int
	Plan string
	Rows []StreamRow
}

// planMethod maps Config.Plan to the enumeration method override.
func planMethod(plan string) (core.Method, string, error) {
	switch plan {
	case "", "auto":
		return core.MethodAuto, "auto", nil
	case "dfs":
		return core.MethodDFS, "dfs", nil
	case "join":
		return core.MethodJoin, "join", nil
	default:
		return 0, "", fmt.Errorf("bench: unknown plan %q (auto, dfs or join)", plan)
	}
}

// Stream measures incremental path delivery (core's pull-based stream —
// the machinery behind the public Engine.Stream): for each sampled query
// it pulls exactly one path from an unbuffered stream, recording the
// time-to-first-path, then drains the rest for the total. PathEnum's
// real-time claim is precisely that the first number stays flat while the
// second grows with the result set. Config.Plan forces the plan: "join"
// exercises the tuple-at-a-time join (first path after one half-side
// build), "dfs" the index DFS, "auto" the optimizer's choice; each row
// reports the plan kinds actually executed.
func Stream(cfg Config) (*StreamResult, error) {
	cfg = cfg.normalized()
	method, planName, err := planMethod(cfg.Plan)
	if err != nil {
		return nil, err
	}
	datasets := cfg.Datasets
	if len(datasets) == 0 {
		datasets = []string{"up", "db", "ep", "wt"}
	}
	res := &StreamResult{K: cfg.K, Plan: planName}
	for _, name := range datasets {
		g, err := loadDataset(name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		qs, err := sampleQueries(g, cfg)
		if err != nil {
			if err == workload.ErrNoQueries {
				continue
			}
			return nil, err
		}
		sess := core.NewSession(g, nil)
		opts := core.Options{Timeout: cfg.TimeLimit, Method: method}
		row := StreamRow{Dataset: name, Plan: planName, Queries: len(qs)}
		sc := core.StreamConfig{OnResult: func(r *core.Result) {
			if r.Plan.Method == core.MethodJoin {
				row.JoinPlanned++
			} else {
				row.DFSPlanned++
			}
		}}
		var firsts []time.Duration
		var firstSum, totalSum time.Duration
		for _, wq := range qs {
			q := core.Query{S: wq.S, T: wq.T, K: cfg.K}
			start := time.Now()
			first := time.Duration(-1)
			n := uint64(0)
			for _, serr := range sess.StreamWith(context.Background(), q, opts, sc) {
				if serr != nil {
					return nil, fmt.Errorf("%s %v: %w", name, q, serr)
				}
				if first < 0 {
					first = time.Since(start)
				}
				n++
			}
			totalSum += time.Since(start)
			row.Paths += n
			if first >= 0 {
				firstSum += first
				firsts = append(firsts, first)
			}
		}
		if len(firsts) > 0 {
			row.FirstMs = ms(firstSum) / float64(len(firsts))
			row.P99FirstMs = ms(Percentile(firsts, 0.99))
		}
		row.TotalMs = ms(totalSum) / float64(len(qs))
		if row.FirstMs > 0 {
			row.Speedup = row.TotalMs / row.FirstMs
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats the stream experiment report.
func (r *StreamResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Streaming delivery: time-to-first-path vs full enumeration (k=%d, plan=%s, unbuffered pull)\n", r.K, r.Plan)
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "dataset\tqueries\tjoin/dfs\tpaths\tfirst ms\tp99 first ms\ttotal ms\ttotal/first\n")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%s\t%d\t%d/%d\t%d\t%.3g\t%.3g\t%.3g\t%.1fx\n",
			row.Dataset, row.Queries, row.JoinPlanned, row.DFSPlanned, row.Paths,
			row.FirstMs, row.P99FirstMs, row.TotalMs, row.Speedup)
	}
	w.Flush()
	return b.String()
}
