package bench

import (
	"fmt"
	"math"
	"strings"
	"text/tabwriter"
	"time"

	"pathenum/internal/baseline"
	"pathenum/internal/core"
	"pathenum/internal/graph"
	"pathenum/internal/workload"
)

// Fig6Result reproduces Figure 6: the detailed enumeration metrics
// (#edges accessed, #invalid partial results, #results) of BC-DFS versus
// IDX-DFS with k varied.
type Fig6Result struct {
	Datasets []string
	KRange   []int
	// Metric[dataset][algo][k].
	Edges   map[string]map[string]map[int]float64
	Invalid map[string]map[string]map[int]float64
	Results map[string]map[string]map[int]float64
}

// Fig6 runs the detailed-metric comparison.
func Fig6(cfg Config) (*Fig6Result, error) {
	cfg = cfg.normalized()
	datasets := cfg.Datasets
	if len(datasets) == 0 {
		datasets = []string{"ep", "gg"}
	}
	res := &Fig6Result{
		Datasets: datasets,
		KRange:   cfg.KRange,
		Edges:    map[string]map[string]map[int]float64{},
		Invalid:  map[string]map[string]map[int]float64{},
		Results:  map[string]map[string]map[int]float64{},
	}
	for _, name := range datasets {
		g, queries, err := datasetAndQueries(name, cfg)
		if err != nil {
			continue
		}
		res.Edges[name] = map[string]map[int]float64{}
		res.Invalid[name] = map[string]map[int]float64{}
		res.Results[name] = map[string]map[int]float64{}
		for _, algo := range []Algo{&baseline.BCDFS{}, &IDXDFS{}} {
			res.Edges[name][algo.Name()] = map[int]float64{}
			res.Invalid[name][algo.Name()] = map[int]float64{}
			res.Results[name][algo.Name()] = map[int]float64{}
			for _, k := range cfg.KRange {
				records, err := RunQuerySet(algo, g, queries, cfg.runConfig(k))
				if err != nil {
					return nil, err
				}
				agg := Summarize(records)
				res.Edges[name][algo.Name()][k] = agg.MeanEdgesScanned
				res.Invalid[name][algo.Name()][k] = agg.MeanInvalid
				res.Results[name][algo.Name()][k] = agg.MeanResults
			}
		}
	}
	return res, nil
}

// Render formats Figure 6 as a table of series.
func (r *Fig6Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 6: detailed metrics with k varied (means per query)\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "dataset\talgo\tmetric")
	for _, k := range r.KRange {
		fmt.Fprintf(w, "\tk=%d", k)
	}
	fmt.Fprintln(w)
	for _, d := range r.Datasets {
		for algo := range r.Edges[d] {
			for _, m := range []struct {
				name string
				vals map[int]float64
			}{
				{"#edges", r.Edges[d][algo]},
				{"#invalid", r.Invalid[d][algo]},
				{"#results", r.Results[d][algo]},
			} {
				fmt.Fprintf(w, "%s\t%s\t%s", d, algo, m.name)
				for _, k := range r.KRange {
					fmt.Fprintf(w, "\t%.3g", m.vals[k])
				}
				fmt.Fprintln(w)
			}
		}
	}
	w.Flush()
	return b.String()
}

// Fig7Result reproduces Figure 7: the query-time breakdown (preprocessing
// vs enumeration) of BC-DFS versus IDX-DFS with k varied.
type Fig7Result struct {
	Datasets []string
	KRange   []int
	// Ms[dataset][algo][phase][k] with phase "prep" or "enum".
	Ms map[string]map[string]map[string]map[int]float64
}

// Fig7 runs the breakdown study.
func Fig7(cfg Config) (*Fig7Result, error) {
	cfg = cfg.normalized()
	datasets := cfg.Datasets
	if len(datasets) == 0 {
		datasets = []string{"ep", "gg"}
	}
	res := &Fig7Result{Datasets: datasets, KRange: cfg.KRange, Ms: map[string]map[string]map[string]map[int]float64{}}
	for _, name := range datasets {
		g, queries, err := datasetAndQueries(name, cfg)
		if err != nil {
			continue
		}
		res.Ms[name] = map[string]map[string]map[int]float64{}
		for _, algo := range []Algo{&baseline.BCDFS{}, &IDXDFS{}} {
			res.Ms[name][algo.Name()] = map[string]map[int]float64{
				"prep": {}, "enum": {},
			}
			for _, k := range cfg.KRange {
				records, err := RunQuerySet(algo, g, queries, cfg.runConfig(k))
				if err != nil {
					return nil, err
				}
				agg := Summarize(records)
				res.Ms[name][algo.Name()]["prep"][k] = agg.MeanPrepareMs
				res.Ms[name][algo.Name()]["enum"][k] = agg.MeanEnumMs
			}
		}
	}
	return res, nil
}

// Render formats Figure 7.
func (r *Fig7Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 7: query time breakdown (ms)\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "dataset\talgo\tphase")
	for _, k := range r.KRange {
		fmt.Fprintf(w, "\tk=%d", k)
	}
	fmt.Fprintln(w)
	for _, d := range r.Datasets {
		for algo, phases := range r.Ms[d] {
			for _, phase := range []string{"prep", "enum"} {
				fmt.Fprintf(w, "%s\t%s\t%s", d, algo, phase)
				for _, k := range r.KRange {
					fmt.Fprintf(w, "\t%.3g", phases[phase][k])
				}
				fmt.Fprintln(w)
			}
		}
	}
	w.Flush()
	return b.String()
}

// Fig8Result reproduces Figure 8: tail response latency on dynamic graphs
// where 10% of edges arrive as updates, each triggering a query.
type Fig8Result struct {
	Datasets []string
	KRange   []int
	// LatencyMs[dataset][algo][k] = 99.9th percentile response time.
	LatencyMs map[string]map[string]map[int]float64
	Updates   int
}

// Fig8 runs the dynamic-graph latency study: edges are removed from the
// graph, re-inserted one at a time, and each insertion triggers the
// enumeration query between its endpoints.
func Fig8(cfg Config) (*Fig8Result, error) {
	cfg = cfg.normalized()
	datasets := cfg.Datasets
	if len(datasets) == 0 {
		datasets = []string{"ep", "gg"}
	}
	res := &Fig8Result{
		Datasets:  datasets,
		KRange:    cfg.KRange,
		LatencyMs: map[string]map[string]map[int]float64{},
	}
	for _, name := range datasets {
		full, err := loadDataset(name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		// Deterministically pick ~10% of edges as the update stream,
		// capped at the query budget.
		all := full.Edges()
		stride := 10
		var updates []graph.Edge
		for i := 0; i < len(all) && len(updates) < cfg.Queries; i += stride {
			updates = append(updates, all[i])
		}
		removed := map[graph.Edge]bool{}
		for _, e := range updates {
			removed[e] = true
		}
		var baseEdges []graph.Edge
		for _, e := range all {
			if !removed[e] {
				baseEdges = append(baseEdges, e)
			}
		}
		base, err := graph.NewGraph(full.NumVertices(), baseEdges)
		if err != nil {
			return nil, err
		}
		res.Updates = len(updates)
		res.LatencyMs[name] = map[string]map[int]float64{}
		for _, algo := range []Algo{&baseline.BCDFS{}, &IDXDFS{}} {
			res.LatencyMs[name][algo.Name()] = map[int]float64{}
			for _, k := range cfg.KRange {
				dyn := graph.NewDynamic(base)
				var latencies []time.Duration
				for _, e := range updates {
					if _, err := dyn.Insert(e.From, e.To); err != nil {
						return nil, err
					}
					snap := dyn.Snapshot()
					// The query triggered by edge (v,v'): q(v', v, k).
					q := core.Query{S: e.To, T: e.From, K: k}
					if q.S == q.T {
						continue
					}
					rec, err := RunOne(algo, snap, q, cfg.runConfig(k))
					if err != nil {
						return nil, err
					}
					latencies = append(latencies, rec.ResponseTime)
				}
				res.LatencyMs[name][algo.Name()][k] = ms(Percentile(latencies, 0.999))
			}
		}
	}
	return res, nil
}

// Render formats Figure 8.
func (r *Fig8Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8: 99.9%% response latency on dynamic graphs (%d updates)\n", r.Updates)
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "dataset\talgo")
	for _, k := range r.KRange {
		fmt.Fprintf(w, "\tk=%d", k)
	}
	fmt.Fprintln(w)
	for _, d := range r.Datasets {
		for algo, vals := range r.LatencyMs[d] {
			fmt.Fprintf(w, "%s\t%s", d, algo)
			for _, k := range r.KRange {
				fmt.Fprintf(w, "\t%.3g", vals[k])
			}
			fmt.Fprintln(w)
		}
	}
	w.Flush()
	return b.String()
}

// Fig9Result reproduces Figure 9: the spectrum analysis of join plans for
// one query — the left-deep plan (IDX-DFS), every bushy plan (one per cut
// position), the optimizer's own pick, and the optimization time.
type Fig9Result struct {
	Dataset      string
	K            int
	Query        core.Query
	LeftDeepMs   float64
	BushyMs      map[int]float64 // cut position -> enumeration ms
	OptimizeMs   float64
	ChosenMethod string
	ChosenCut    int
	PathEnumMs   float64 // optimization + chosen-plan enumeration
}

// Fig9 runs the spectrum analysis on the heaviest query of the set.
func Fig9(cfg Config) (*Fig9Result, error) {
	cfg = cfg.normalized()
	dataset := "ep"
	if len(cfg.Datasets) > 0 {
		dataset = cfg.Datasets[0]
	}
	g, queries, err := datasetAndQueries(dataset, cfg)
	if err != nil {
		return nil, err
	}
	// Pick the query with the largest preliminary estimate.
	var best core.Query
	bestEst := -1.0
	for _, wq := range queries {
		q := core.Query{S: wq.S, T: wq.T, K: cfg.K}
		ix, err := core.BuildIndex(g, q)
		if err != nil {
			return nil, err
		}
		if est := core.PreliminaryEstimate(ix); est > bestEst {
			bestEst, best = est, q
		}
	}
	res := &Fig9Result{Dataset: dataset, K: cfg.K, Query: best, BushyMs: map[int]float64{}}

	ix, err := core.BuildIndex(g, best)
	if err != nil {
		return nil, err
	}
	deadline := time.Now().Add(cfg.TimeLimit)
	stop := func() bool { return time.Now().After(deadline) }

	start := time.Now()
	core.EnumerateDFS(ix, core.RunControl{ShouldStop: stop}, &core.Counters{})
	res.LeftDeepMs = ms(time.Since(start))

	// Resolve the build side per cut outside the timed region so BushyMs
	// measures enumeration, not the estimator DP.
	fullEst := core.FullEstimate(ix)
	for cut := 1; cut < cfg.K; cut++ {
		side := fullEst.BuildSideAt(cut)
		deadline = time.Now().Add(cfg.TimeLimit)
		start = time.Now()
		if _, err := core.EnumerateJoinSide(ix, cut, side, core.RunControl{ShouldStop: stop}, &core.Counters{}, nil); err != nil {
			return nil, err
		}
		res.BushyMs[cut] = ms(time.Since(start))
	}

	start = time.Now()
	plan := core.ChoosePlan(ix, 0)
	res.OptimizeMs = ms(time.Since(start))
	res.ChosenMethod = plan.Method.String()
	res.ChosenCut = plan.Cut
	switch plan.Method {
	case core.MethodJoin:
		res.PathEnumMs = res.OptimizeMs + res.BushyMs[plan.Cut]
	default:
		res.PathEnumMs = res.OptimizeMs + res.LeftDeepMs
	}
	return res, nil
}

// Render formats Figure 9.
func (r *Fig9Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9: plan spectrum on %s, %v\n", r.Dataset, r.Query)
	fmt.Fprintf(&b, "  left-deep (IDX-DFS): %.3g ms\n", r.LeftDeepMs)
	for cut := 1; cut < r.K; cut++ {
		fmt.Fprintf(&b, "  bushy cut=%d: %.3g ms\n", cut, r.BushyMs[cut])
	}
	fmt.Fprintf(&b, "  optimization: %.3g ms\n", r.OptimizeMs)
	fmt.Fprintf(&b, "  PathEnum: %s (cut=%d) total %.3g ms\n", r.ChosenMethod, r.ChosenCut, r.PathEnumMs)
	return b.String()
}

// Fig10Result reproduces Figures 10 and 11: the log-log relationship of
// enumeration time against index size and against result count.
type Fig10Result struct {
	Dataset string
	K       int
	// Points: per completed query.
	LogIndexSize []float64
	LogResults   []float64
	LogEnumTime  []float64
	// Fits: log(enumTime) = a + b*log(x).
	IndexSlope, IndexIntercept   float64
	ResultSlope, ResultIntercept float64
}

// Fig10 collects the regression study with IDX-DFS.
func Fig10(cfg Config) (*Fig10Result, error) {
	cfg = cfg.normalized()
	dataset := "ep"
	if len(cfg.Datasets) > 0 {
		dataset = cfg.Datasets[0]
	}
	g, queries, err := datasetAndQueries(dataset, cfg)
	if err != nil {
		return nil, err
	}
	records, err := RunQuerySet(&IDXDFS{}, g, queries, cfg.runConfig(cfg.K))
	if err != nil {
		return nil, err
	}
	res := &Fig10Result{Dataset: dataset, K: cfg.K}
	for _, rec := range records {
		if rec.Stats.IndexEdges <= 0 || rec.Results == 0 || rec.EnumTime <= 0 {
			continue
		}
		res.LogIndexSize = append(res.LogIndexSize, math.Log(float64(rec.Stats.IndexEdges)))
		res.LogResults = append(res.LogResults, math.Log(float64(rec.Results)))
		res.LogEnumTime = append(res.LogEnumTime, math.Log(ms(rec.EnumTime)))
	}
	res.IndexIntercept, res.IndexSlope = LinearRegression(res.LogIndexSize, res.LogEnumTime)
	res.ResultIntercept, res.ResultSlope = LinearRegression(res.LogResults, res.LogEnumTime)
	return res, nil
}

// Render formats Figures 10/11.
func (r *Fig10Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figures 10/11: enumeration-time regressions on %s (k=%d, %d points)\n",
		r.Dataset, r.K, len(r.LogEnumTime))
	fmt.Fprintf(&b, "  log(time) ~ %.3f + %.3f * log(index size)\n", r.IndexIntercept, r.IndexSlope)
	fmt.Fprintf(&b, "  log(time) ~ %.3f + %.3f * log(#results)\n", r.ResultIntercept, r.ResultSlope)
	return b.String()
}

// Fig12Result reproduces Figure 12: per-technique execution time and
// throughput on the billion-edge-class graph (tm), k varied.
type Fig12Result struct {
	Dataset string
	KRange  []int
	// Per k: phase times in ms and throughput per algorithm.
	BFSMs       map[int]float64
	IndexMs     map[int]float64
	OptimizeMs  map[int]float64
	DFSMs       map[int]float64
	JoinMs      map[int]float64
	ThroughputD map[int]float64 // IDX-DFS
	ThroughputJ map[int]float64 // IDX-JOIN
}

// Fig12 runs the scalability study on the tm-like dataset.
func Fig12(cfg Config) (*Fig12Result, error) {
	cfg = cfg.normalized()
	dataset := "tm"
	if len(cfg.Datasets) > 0 {
		dataset = cfg.Datasets[0]
	}
	if len(cfg.KRange) == 0 || cfg.KRange[0] == 3 && len(cfg.KRange) == 6 {
		cfg.KRange = []int{3, 4, 5, 6} // the paper's Figure 12 range
	}
	g, queries, err := datasetAndQueries(dataset, cfg)
	if err != nil {
		return nil, err
	}
	res := &Fig12Result{
		Dataset: dataset, KRange: cfg.KRange,
		BFSMs: map[int]float64{}, IndexMs: map[int]float64{}, OptimizeMs: map[int]float64{},
		DFSMs: map[int]float64{}, JoinMs: map[int]float64{},
		ThroughputD: map[int]float64{}, ThroughputJ: map[int]float64{},
	}
	// One representative query keeps the giant-graph run tractable.
	wq := queries[0]
	for _, k := range cfg.KRange {
		q := core.Query{S: wq.S, T: wq.T, K: k}
		ix, timings, err := core.BuildIndexTimed(g, q)
		if err != nil {
			return nil, err
		}
		res.BFSMs[k] = ms(timings.BFS)
		res.IndexMs[k] = ms(timings.Total)

		start := time.Now()
		est := core.FullEstimate(ix)
		res.OptimizeMs[k] = ms(time.Since(start))

		deadline := time.Now().Add(cfg.TimeLimit)
		stop := func() bool { return time.Now().After(deadline) }
		var dfsCtr core.Counters
		start = time.Now()
		core.EnumerateDFS(ix, core.RunControl{ShouldStop: stop}, &dfsCtr)
		dfsTime := time.Since(start)
		res.DFSMs[k] = ms(dfsTime)
		if dfsTime > 0 {
			res.ThroughputD[k] = float64(dfsCtr.Results) / dfsTime.Seconds()
		}

		if est.Cut > 0 {
			deadline = time.Now().Add(cfg.TimeLimit)
			var joinCtr core.Counters
			start = time.Now()
			if _, err := core.EnumerateJoinSide(ix, est.Cut, est.BuildSideAt(est.Cut), core.RunControl{ShouldStop: stop}, &joinCtr, nil); err != nil {
				return nil, err
			}
			joinTime := time.Since(start)
			res.JoinMs[k] = ms(joinTime)
			if joinTime > 0 {
				res.ThroughputJ[k] = float64(joinCtr.Results) / joinTime.Seconds()
			}
		}
	}
	return res, nil
}

// Render formats Figure 12.
func (r *Fig12Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 12: scalability on %s\n", r.Dataset)
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "k\tBFS ms\tindex ms\toptimize ms\tDFS ms\tJOIN ms\tthroughput DFS\tthroughput JOIN\n")
	for _, k := range r.KRange {
		fmt.Fprintf(w, "%d\t%.3g\t%.3g\t%.3g\t%.3g\t%.3g\t%.3g\t%.3g\n",
			k, r.BFSMs[k], r.IndexMs[k], r.OptimizeMs[k], r.DFSMs[k], r.JoinMs[k],
			r.ThroughputD[k], r.ThroughputJ[k])
	}
	w.Flush()
	return b.String()
}

// VaryKResult reproduces Figures 13-15: query time, throughput and
// response time for all five algorithms with k varied.
type VaryKResult struct {
	Datasets []string
	KRange   []int
	Algos    []string
	// Agg[dataset][algo][k].
	Agg map[string]map[string]map[int]Aggregate
}

// VaryK runs the k sweep for Figures 13, 14 and 15.
func VaryK(cfg Config) (*VaryKResult, error) {
	cfg = cfg.normalized()
	datasets := cfg.Datasets
	if len(datasets) == 0 {
		datasets = []string{"ep", "gg"}
	}
	res := &VaryKResult{Datasets: datasets, KRange: cfg.KRange, Agg: map[string]map[string]map[int]Aggregate{}}
	for _, a := range AllAlgos() {
		res.Algos = append(res.Algos, a.Name())
	}
	for _, name := range datasets {
		g, queries, err := datasetAndQueries(name, cfg)
		if err != nil {
			continue
		}
		res.Agg[name] = map[string]map[int]Aggregate{}
		for _, algo := range AllAlgos() {
			res.Agg[name][algo.Name()] = map[int]Aggregate{}
			for _, k := range cfg.KRange {
				records, err := RunQuerySet(algo, g, queries, cfg.runConfig(k))
				if err != nil {
					return nil, err
				}
				res.Agg[name][algo.Name()][k] = Summarize(records)
			}
		}
	}
	return res, nil
}

// Render formats Figures 13-15.
func (r *VaryKResult) Render() string {
	var b strings.Builder
	b.WriteString("Figures 13/14/15: query time, throughput and response time with k varied\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "dataset\talgo\tmetric")
	for _, k := range r.KRange {
		fmt.Fprintf(w, "\tk=%d", k)
	}
	fmt.Fprintln(w)
	for _, d := range r.Datasets {
		for _, algo := range r.Algos {
			perK := r.Agg[d][algo]
			fmt.Fprintf(w, "%s\t%s\tquery ms", d, algo)
			for _, k := range r.KRange {
				fmt.Fprintf(w, "\t%.3g", perK[k].MeanQueryTimeMs)
			}
			fmt.Fprintln(w)
			fmt.Fprintf(w, "%s\t%s\tthroughput", d, algo)
			for _, k := range r.KRange {
				fmt.Fprintf(w, "\t%.3g", perK[k].Throughput)
			}
			fmt.Fprintln(w)
			fmt.Fprintf(w, "%s\t%s\tresponse ms", d, algo)
			for _, k := range r.KRange {
				fmt.Fprintf(w, "\t%.3g", perK[k].MeanResponseMs)
			}
			fmt.Fprintln(w)
		}
	}
	w.Flush()
	return b.String()
}

// Fig16Result reproduces Figure 16: the cumulative distribution of
// per-query time for all five algorithms.
type Fig16Result struct {
	Datasets   []string
	Boundaries []time.Duration
	// CDF[dataset][algo][i] = fraction of queries within Boundaries[i].
	CDF map[string]map[string][]float64
}

// Fig16 collects the query-time CDFs at the default k.
func Fig16(cfg Config) (*Fig16Result, error) {
	cfg = cfg.normalized()
	datasets := cfg.Datasets
	if len(datasets) == 0 {
		datasets = []string{"ep", "gg"}
	}
	// Log-spaced boundaries from 10us to the time limit.
	var boundaries []time.Duration
	for d := 10 * time.Microsecond; d <= cfg.TimeLimit; d *= 4 {
		boundaries = append(boundaries, d)
	}
	boundaries = append(boundaries, cfg.TimeLimit)
	res := &Fig16Result{Datasets: datasets, Boundaries: boundaries, CDF: map[string]map[string][]float64{}}
	for _, name := range datasets {
		g, queries, err := datasetAndQueries(name, cfg)
		if err != nil {
			continue
		}
		res.CDF[name] = map[string][]float64{}
		for _, algo := range AllAlgos() {
			records, err := RunQuerySet(algo, g, queries, cfg.runConfig(cfg.K))
			if err != nil {
				return nil, err
			}
			res.CDF[name][algo.Name()] = CDF(records, boundaries)
		}
	}
	return res, nil
}

// Render formats Figure 16.
func (r *Fig16Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 16: cumulative distribution of query time\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "dataset\talgo")
	for _, bd := range r.Boundaries {
		fmt.Fprintf(w, "\t<=%v", bd)
	}
	fmt.Fprintln(w)
	for _, d := range r.Datasets {
		for algo, cdf := range r.CDF[d] {
			fmt.Fprintf(w, "%s\t%s", d, algo)
			for _, f := range cdf {
				fmt.Fprintf(w, "\t%.2f", f)
			}
			fmt.Fprintln(w)
		}
	}
	w.Flush()
	return b.String()
}

// Fig17Result reproduces Figure 17: mean per-technique execution time
// (BFS, index construction, optimization, DFS, JOIN) with k varied.
type Fig17Result struct {
	Datasets []string
	KRange   []int
	// Ms[dataset][technique][k].
	Ms map[string]map[string]map[int]float64
}

// Fig17 measures each individual technique.
func Fig17(cfg Config) (*Fig17Result, error) {
	cfg = cfg.normalized()
	datasets := cfg.Datasets
	if len(datasets) == 0 {
		datasets = []string{"ep", "gg"}
	}
	res := &Fig17Result{Datasets: datasets, KRange: cfg.KRange, Ms: map[string]map[string]map[int]float64{}}
	for _, name := range datasets {
		g, queries, err := datasetAndQueries(name, cfg)
		if err != nil {
			continue
		}
		res.Ms[name] = map[string]map[int]float64{
			"bfs": {}, "index": {}, "optimize": {}, "dfs": {}, "join": {},
		}
		for _, k := range cfg.KRange {
			var bfsMs, indexMs, optMs, dfsMs, joinMs float64
			n := 0
			for _, wq := range queries {
				q := core.Query{S: wq.S, T: wq.T, K: k}
				ix, timings, err := core.BuildIndexTimed(g, q)
				if err != nil {
					return nil, err
				}
				start := time.Now()
				est := core.FullEstimate(ix)
				optMs += ms(time.Since(start))
				bfsMs += ms(timings.BFS)
				indexMs += ms(timings.Total)

				deadline := time.Now().Add(cfg.TimeLimit)
				stop := func() bool { return time.Now().After(deadline) }
				start = time.Now()
				core.EnumerateDFS(ix, core.RunControl{ShouldStop: stop}, &core.Counters{})
				dfsMs += ms(time.Since(start))
				if est.Cut > 0 {
					deadline = time.Now().Add(cfg.TimeLimit)
					start = time.Now()
					if _, err := core.EnumerateJoinSide(ix, est.Cut, est.BuildSideAt(est.Cut), core.RunControl{ShouldStop: stop}, &core.Counters{}, nil); err != nil {
						return nil, err
					}
					joinMs += ms(time.Since(start))
				}
				n++
			}
			fn := float64(n)
			res.Ms[name]["bfs"][k] = bfsMs / fn
			res.Ms[name]["index"][k] = indexMs / fn
			res.Ms[name]["optimize"][k] = optMs / fn
			res.Ms[name]["dfs"][k] = dfsMs / fn
			res.Ms[name]["join"][k] = joinMs / fn
		}
	}
	return res, nil
}

// Render formats Figure 17.
func (r *Fig17Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 17: per-technique execution time (ms)\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "dataset\ttechnique")
	for _, k := range r.KRange {
		fmt.Fprintf(w, "\tk=%d", k)
	}
	fmt.Fprintln(w)
	for _, d := range r.Datasets {
		for _, tech := range []string{"bfs", "index", "optimize", "dfs", "join"} {
			fmt.Fprintf(w, "%s\t%s", d, tech)
			for _, k := range r.KRange {
				fmt.Fprintf(w, "\t%.3g", r.Ms[d][tech][k])
			}
			fmt.Fprintln(w)
		}
	}
	w.Flush()
	return b.String()
}

// Fig18Result reproduces Figure 18: estimated versus actual cardinality
// for both estimators with k varied.
type Fig18Result struct {
	Datasets []string
	KRange   []int
	// Per dataset and k: geometric means across queries.
	Actual      map[string]map[int]float64
	FullFledged map[string]map[int]float64
	Preliminary map[string]map[int]float64
}

// Fig18 compares the estimators against true result counts.
func Fig18(cfg Config) (*Fig18Result, error) {
	cfg = cfg.normalized()
	datasets := cfg.Datasets
	if len(datasets) == 0 {
		datasets = []string{"ep", "gg"}
	}
	res := &Fig18Result{
		Datasets: datasets, KRange: cfg.KRange,
		Actual:      map[string]map[int]float64{},
		FullFledged: map[string]map[int]float64{},
		Preliminary: map[string]map[int]float64{},
	}
	for _, name := range datasets {
		g, queries, err := datasetAndQueries(name, cfg)
		if err != nil {
			continue
		}
		res.Actual[name] = map[int]float64{}
		res.FullFledged[name] = map[int]float64{}
		res.Preliminary[name] = map[int]float64{}
		for _, k := range cfg.KRange {
			var actual, full, prelim float64
			n := 0
			for _, wq := range queries {
				q := core.Query{S: wq.S, T: wq.T, K: k}
				ix, err := core.BuildIndex(g, q)
				if err != nil {
					return nil, err
				}
				est := core.FullEstimate(ix)
				deadline := time.Now().Add(cfg.TimeLimit)
				var ctr core.Counters
				done := core.EnumerateDFS(ix, core.RunControl{ShouldStop: func() bool {
					return time.Now().After(deadline)
				}}, &ctr)
				if !done {
					continue // cannot compare against a truncated count
				}
				actual += float64(ctr.Results)
				full += float64(est.Walks)
				prelim += core.PreliminaryEstimate(ix)
				n++
			}
			if n == 0 {
				continue
			}
			fn := float64(n)
			res.Actual[name][k] = actual / fn
			res.FullFledged[name][k] = full / fn
			res.Preliminary[name][k] = prelim / fn
		}
	}
	return res, nil
}

// Render formats Figure 18.
func (r *Fig18Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 18: cardinality estimation vs actual (means over completed queries)\n")
	w := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "dataset\tseries")
	for _, k := range r.KRange {
		fmt.Fprintf(w, "\tk=%d", k)
	}
	fmt.Fprintln(w)
	for _, d := range r.Datasets {
		for _, series := range []struct {
			name string
			vals map[int]float64
		}{
			{"#results", r.Actual[d]},
			{"full-fledged", r.FullFledged[d]},
			{"preliminary", r.Preliminary[d]},
		} {
			fmt.Fprintf(w, "%s\t%s", d, series.name)
			for _, k := range r.KRange {
				fmt.Fprintf(w, "\t%.3g", series.vals[k])
			}
			fmt.Fprintln(w)
		}
	}
	w.Flush()
	return b.String()
}

var _ = workload.Query{} // used via datasetAndQueries signatures
