package bench

import (
	"fmt"
	"time"

	"pathenum/internal/gen"
	"pathenum/internal/graph"
	"pathenum/internal/workload"
)

// Config scales an experiment. The defaults reproduce the paper's setup at
// laptop scale; bench_test.go shrinks them further for testing.B runs.
type Config struct {
	// Scale multiplies registry dataset sizes (1.0 = registry defaults).
	Scale float64
	// Queries per query set (the paper uses 1000).
	Queries int
	// K is the default hop constraint (the paper reports k=6).
	K int
	// KRange is the sweep used by the varying-k experiments (paper: 3..8).
	KRange []int
	// TimeLimit bounds each query (paper: 120 s).
	TimeLimit time.Duration
	// ResponseK defines response time (paper: first 1000 results).
	ResponseK uint64
	// Datasets restricts the experiment to these registry names.
	Datasets []string
	// Setting selects the workload query setting (paper default: V'xV').
	Setting workload.Setting
	// Seed drives workload sampling.
	Seed int64
	// Plan forces the enumeration plan for experiments that honor it
	// (currently Stream): "auto" (or empty) runs the two-phase optimizer,
	// "dfs" forces IDX-DFS, "join" forces the tuple-at-a-time IDX-JOIN.
	Plan string
	// Parallel is the maximum intra-query fan-out swept by the Parallel
	// experiment (Options.Parallelism doubling 1, 2, ... up to this; 0
	// defaults to 4).
	Parallel int
}

// DefaultConfig returns the full-size laptop configuration used by
// cmd/benchpath.
func DefaultConfig() Config {
	return Config{
		Scale:     1.0,
		Queries:   100,
		K:         6,
		KRange:    []int{3, 4, 5, 6, 7, 8},
		TimeLimit: 2 * time.Second,
		ResponseK: 1000,
		Setting:   workload.HighHigh,
		Seed:      42,
	}
}

// normalized fills defaults.
func (c Config) normalized() Config {
	if c.Scale <= 0 {
		c.Scale = 1.0
	}
	if c.Queries <= 0 {
		c.Queries = 100
	}
	if c.K <= 0 {
		c.K = 6
	}
	if len(c.KRange) == 0 {
		c.KRange = []int{3, 4, 5, 6, 7, 8}
	}
	if c.TimeLimit <= 0 {
		c.TimeLimit = 2 * time.Second
	}
	if c.ResponseK == 0 {
		c.ResponseK = 1000
	}
	if c.Parallel <= 0 {
		c.Parallel = 4
	}
	return c
}

// runConfig derives the per-query bounds for hop constraint k.
func (c Config) runConfig(k int) RunConfig {
	return RunConfig{K: k, TimeLimit: c.TimeLimit, ResponseK: c.ResponseK}
}

// loadDataset builds one scaled registry dataset.
func loadDataset(name string, scale float64) (*graph.Graph, error) {
	d, err := gen.Lookup(name)
	if err != nil {
		return nil, err
	}
	return d.Scale(scale).Build(), nil
}

// sampleQueries draws the query set; when the sampler cannot fill the
// requested count within the distance bound it returns what it found, as
// long as at least one query exists.
func sampleQueries(g *graph.Graph, cfg Config) ([]workload.Query, error) {
	qs, err := workload.Generate(g, workload.Options{
		Setting: cfg.Setting,
		Count:   cfg.Queries,
		Seed:    cfg.Seed,
	})
	if err != nil && len(qs) == 0 {
		return nil, fmt.Errorf("bench: no usable queries: %w", err)
	}
	return qs, nil
}
