package pathenum

import (
	"context"
	"fmt"
	"sync"

	"pathenum/internal/batch"
	"pathenum/internal/core"
	"pathenum/internal/landmark"
)

// DistanceOracle is the global offline index of §7.5: lower bounds on
// directed distances that prune per-query index construction and answer
// infeasible queries without any BFS. Build it once per (static) graph
// with BuildOracle and pass it via Options.Oracle or EngineConfig.
type DistanceOracle = core.DistanceOracle

// BuildOracle constructs a landmark distance oracle over g with the given
// number of landmarks (0 picks a default). Construction costs two full BFS
// passes per landmark. The oracle is only valid for the exact graph it was
// built on: rebuild after edge insertions.
func BuildOracle(g *Graph, numLandmarks int) (DistanceOracle, error) {
	return landmark.Build(g, numLandmarks)
}

// EngineConfig configures a concurrent query engine.
type EngineConfig struct {
	// Workers is the number of concurrent query executors (default 4).
	Workers int
	// Oracle optionally accelerates every query (see BuildOracle).
	Oracle DistanceOracle
	// Options are the per-query defaults (Method, Tau, Limit, Timeout).
	Options Options
}

// Engine executes HcPE queries concurrently against one immutable graph.
// PathEnum's state is per query (the index is built per query), so queries
// parallelize without coordination — the online scenario of §1. Each worker
// reuses a core.Session, so the O(|V|) per-query buffers are allocated once
// per worker rather than once per query. The zero Engine is not usable;
// create one with NewEngine.
type Engine struct {
	g        *Graph
	cfg      EngineConfig
	workers  int
	sessions sync.Pool
}

// NewEngine creates an engine over g.
func NewEngine(g *Graph, cfg EngineConfig) (*Engine, error) {
	if g == nil {
		return nil, fmt.Errorf("pathenum: engine needs a graph")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 4
	}
	e := &Engine{g: g, cfg: cfg, workers: workers}
	e.sessions.New = func() any { return core.NewSession(g, cfg.Oracle) }
	return e, nil
}

// Graph returns the engine's graph.
func (e *Engine) Graph() *Graph { return e.g }

// Execute runs one query with the engine defaults (synchronously).
func (e *Engine) Execute(q Query) (*Result, error) {
	return e.ExecuteWith(context.Background(), q, Options{})
}

// ExecuteWith runs one query on a pooled session, merging per-call option
// overrides with the engine defaults (see MergeOptions) and observing ctx:
// cancellation or a context deadline stops enumeration early with
// Result.Completed == false. This is the entry point services should use —
// e.g. an HTTP handler passing the request context gets session buffer
// reuse, the engine oracle and client-disconnect cancellation in one call.
func (e *Engine) ExecuteWith(ctx context.Context, q Query, opts Options) (*Result, error) {
	sess := e.sessions.Get().(*core.Session)
	defer e.sessions.Put(sess)
	return sess.RunContext(ctx, q, e.MergeOptions(opts))
}

// MergeOptions overlays per-call overrides on the engine's default Options:
// any zero-valued field of opts falls back to the corresponding
// EngineConfig.Options field.
//
// The flip side: a zero value can never override a non-zero default. A
// per-call Auto inherits the default Method (Auto is the zero value), a
// per-call Limit/Timeout of 0 cannot lift a default limit/timeout, and a
// nil Emit/Predicate/Oracle cannot clear a default one. Engines intended
// to serve unrestricted per-call traffic should keep those defaults zero
// and let callers opt in per call.
func (e *Engine) MergeOptions(opts Options) Options {
	def := e.cfg.Options
	if opts.Method == Auto {
		opts.Method = def.Method
	}
	if opts.Tau == 0 {
		opts.Tau = def.Tau
	}
	if opts.Limit == 0 {
		opts.Limit = def.Limit
	}
	if opts.Timeout == 0 {
		opts.Timeout = def.Timeout
	}
	if opts.Emit == nil {
		opts.Emit = def.Emit
	}
	if opts.Predicate == nil {
		opts.Predicate = def.Predicate
	}
	if opts.Oracle == nil {
		opts.Oracle = def.Oracle
	}
	return opts
}

// ExecuteAll runs the queries across the worker pool and returns results
// in input order. The per-result error slot is set for invalid queries;
// valid ones always produce a Result.
func (e *Engine) ExecuteAll(queries []Query) ([]*Result, []error) {
	return e.ExecuteAllContext(context.Background(), queries, Options{})
}

// ExecuteAllContext runs the queries across the worker pool with shared
// per-call option overrides, observing ctx with fail-fast cancellation:
// once ctx is done, queries not yet started return ctx.Err() immediately
// and in-flight enumerations stop early. Results come back in input order;
// per-query validation errors fill their slot without aborting the batch.
//
// opts.Emit, if set, may be invoked concurrently from multiple workers and
// does not identify the originating query; batch callers normally leave it
// nil and read counts from the Results.
func (e *Engine) ExecuteAllContext(ctx context.Context, queries []Query, opts Options) ([]*Result, []error) {
	results := make([]*Result, len(queries))
	errs := make([]error, len(queries))
	var wg sync.WaitGroup
	sem := make(chan struct{}, e.workers)
dispatch:
	for i, q := range queries {
		// The acquire must observe ctx alongside the semaphore: with the
		// pool full, a bare channel send would block cancellation behind a
		// slow in-flight query instead of failing the rest of the batch
		// fast.
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			for j := i; j < len(queries); j++ {
				errs[j] = ctx.Err()
			}
			break dispatch
		}
		wg.Add(1)
		go func(i int, q Query) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i], errs[i] = e.ExecuteWith(ctx, q, opts)
		}(i, q)
	}
	wg.Wait()
	return results, errs
}

// BatchStats reports what the batch planner found to share and what the
// scheduler did with it: queries deduped, BFS passes saved vs the naive
// fan-out, and per-group timings. See internal/batch.Stats.
type BatchStats = batch.Stats

// ExecuteBatch runs the queries through the shared-computation batch
// subsystem (internal/batch): exact-duplicate queries are answered once
// and fanned back out, queries sharing a source or target reuse one
// shared BFS frontier for that side of their index build, and the
// resulting groups execute across the worker pool in estimated-cost
// order. Results come back in input order with ExecuteAllContext's
// fail-fast cancellation semantics; the naive independent fan-out remains
// available as ExecuteAllContext.
//
// Two semantic differences from ExecuteAllContext follow from sharing:
// duplicate queries receive the same *Result pointer (treat Results as
// read-only), and opts.Emit — already concurrent and unattributed in
// batch execution — fires once per unique query, not once per duplicate.
func (e *Engine) ExecuteBatch(ctx context.Context, queries []Query, opts Options) ([]*Result, []error, *BatchStats) {
	merged := e.MergeOptions(opts)
	plan := batch.NewPlanner(e.g).Plan(queries)
	sch := &batch.Scheduler{
		Workers: e.workers,
		Acquire: func() *core.Session { return e.sessions.Get().(*core.Session) },
		Release: func(s *core.Session) { e.sessions.Put(s) },
	}
	uniqRes, uniqErrs, stats := sch.Execute(ctx, e.g, plan, merged)
	results, errs := plan.Scatter(uniqRes, uniqErrs)
	return results, errs, stats
}

// CountAll returns per-query path counts in input order; the first query
// error aborts the batch.
func (e *Engine) CountAll(queries []Query) ([]uint64, error) {
	results, errs := e.ExecuteAll(queries)
	counts := make([]uint64, len(queries))
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("pathenum: query %d (%v): %w", i, queries[i], err)
		}
		counts[i] = results[i].Counters.Results
	}
	return counts, nil
}
