package pathenum

import (
	"fmt"
	"sync"

	"pathenum/internal/core"
	"pathenum/internal/landmark"
)

// DistanceOracle is the global offline index of §7.5: lower bounds on
// directed distances that prune per-query index construction and answer
// infeasible queries without any BFS. Build it once per (static) graph
// with BuildOracle and pass it via Options.Oracle or EngineConfig.
type DistanceOracle = core.DistanceOracle

// BuildOracle constructs a landmark distance oracle over g with the given
// number of landmarks (0 picks a default). Construction costs two full BFS
// passes per landmark. The oracle is only valid for the exact graph it was
// built on: rebuild after edge insertions.
func BuildOracle(g *Graph, numLandmarks int) (DistanceOracle, error) {
	return landmark.Build(g, numLandmarks)
}

// EngineConfig configures a concurrent query engine.
type EngineConfig struct {
	// Workers is the number of concurrent query executors (default 4).
	Workers int
	// Oracle optionally accelerates every query (see BuildOracle).
	Oracle DistanceOracle
	// Options are the per-query defaults (Method, Tau, Limit, Timeout).
	Options Options
}

// Engine executes HcPE queries concurrently against one immutable graph.
// PathEnum's state is per query (the index is built per query), so queries
// parallelize without coordination — the online scenario of §1. Each worker
// reuses a core.Session, so the O(|V|) per-query buffers are allocated once
// per worker rather than once per query. The zero Engine is not usable;
// create one with NewEngine.
type Engine struct {
	g        *Graph
	cfg      EngineConfig
	workers  int
	sessions sync.Pool
}

// NewEngine creates an engine over g.
func NewEngine(g *Graph, cfg EngineConfig) (*Engine, error) {
	if g == nil {
		return nil, fmt.Errorf("pathenum: engine needs a graph")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 4
	}
	e := &Engine{g: g, cfg: cfg, workers: workers}
	e.sessions.New = func() any { return core.NewSession(g, cfg.Oracle) }
	return e, nil
}

// Graph returns the engine's graph.
func (e *Engine) Graph() *Graph { return e.g }

// Execute runs one query with the engine defaults (synchronously).
func (e *Engine) Execute(q Query) (*Result, error) {
	sess := e.sessions.Get().(*core.Session)
	defer e.sessions.Put(sess)
	return sess.Run(q, e.cfg.Options)
}

// ExecuteAll runs the queries across the worker pool and returns results
// in input order. The per-result error slot is set for invalid queries;
// valid ones always produce a Result.
func (e *Engine) ExecuteAll(queries []Query) ([]*Result, []error) {
	results := make([]*Result, len(queries))
	errs := make([]error, len(queries))
	var wg sync.WaitGroup
	sem := make(chan struct{}, e.workers)
	for i, q := range queries {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, q Query) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i], errs[i] = e.Execute(q)
		}(i, q)
	}
	wg.Wait()
	return results, errs
}

// CountAll returns per-query path counts in input order; the first query
// error aborts the batch.
func (e *Engine) CountAll(queries []Query) ([]uint64, error) {
	results, errs := e.ExecuteAll(queries)
	counts := make([]uint64, len(queries))
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("pathenum: query %d (%v): %w", i, queries[i], err)
		}
		counts[i] = results[i].Counters.Results
	}
	return counts, nil
}
