package pathenum

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pathenum/internal/batch"
	"pathenum/internal/cache"
	"pathenum/internal/core"
	"pathenum/internal/graph"
	"pathenum/internal/landmark"
	"pathenum/internal/mem"
)

// DistanceOracle is the global offline index of §7.5: lower bounds on
// directed distances that prune per-query index construction and answer
// infeasible queries without any BFS. Build it once per graph version
// with BuildOracle and pass it via Options.Oracle or EngineConfig.
type DistanceOracle = core.DistanceOracle

// BuildOracle constructs a landmark distance oracle over g with the given
// number of landmarks (0 picks a default). Construction costs two full BFS
// passes per landmark. The oracle captures g's version and is enforced to
// it: after edge insertions (a later-epoch snapshot), execution rejects it
// with ErrStaleEpoch instead of silently over-pruning — rebuild it and
// re-install with Engine.SetOracle.
func BuildOracle(g *Graph, numLandmarks int) (DistanceOracle, error) {
	return landmark.Build(g, numLandmarks)
}

// DefaultFrontierCacheSize is the frontier-cache entry bound used when
// EngineConfig.FrontierCache is 0. Each entry holds one O(|V|) distance
// labeling (4 bytes per vertex), so the entry count alone does not bound
// resident bytes — set EngineConfig.MemoryBudgetBytes on large graphs
// and the cache becomes byte-bounded (half the budget), evicting and
// refusing deposits instead of growing with the graph.
const DefaultFrontierCacheSize = cache.DefaultCapacity

// FrontierCacheStats snapshots the engine's frontier-cache counters:
// hits, misses, capacity evictions, lazy epoch invalidations, occupancy
// and resident bytes.
type FrontierCacheStats = cache.Stats

// EngineConfig configures a concurrent query engine.
type EngineConfig struct {
	// Workers is the number of concurrent query executors (default 4).
	Workers int
	// Oracle optionally accelerates every query (see BuildOracle). A
	// version-aware oracle must match the engine's graph.
	Oracle DistanceOracle
	// Options are the per-query defaults (Method, Tau, Limit, Timeout).
	Options Options
	// FrontierCache bounds the cross-batch frontier cache in entries:
	// 0 uses DefaultFrontierCacheSize, negative disables caching. The
	// cache serves repeat endpoints — a hot fraud hub queried in every
	// batch — with zero BFS passes; see internal/cache.
	FrontierCache int
	// CacheAdmitDegree gates frontier deposits: a frontier built on a
	// cache miss is deposited only when the endpoint's degree
	// (out-degree of S for the forward side, in-degree of T for the
	// backward side) is at least this threshold, so only hub-grade
	// endpoints — the ones likely to repeat — pay the deposit's O(|V|)
	// allocation. The check applies to single queries and to batch
	// per-member sides alike; a batch side the planner proved shared
	// (two or more members need it) is admitted regardless of degree —
	// reuse within the batch is already evidence. 0 uses
	// DefaultCacheAdmitDegree; negative restricts deposits to
	// planner-proved shared frontiers only.
	CacheAdmitDegree int
	// SnapshotEvery amortizes the engine write path: Engine.Insert
	// publishes a fresh immutable snapshot (an O(E log E) rebuild) only
	// after this many applied insertions, with Flush forcing the
	// remainder out. 0 or 1 publishes on every insert — queries observe
	// each write immediately; larger values trade read freshness (reads
	// lag by at most SnapshotEvery-1 edges until the next publish) for
	// write throughput.
	SnapshotEvery int
	// Metrics, when non-nil, is the registry the engine registers its
	// series on — share one registry between the engine and an HTTP
	// front end so a single /metrics scrape covers both. Nil creates a
	// private registry, readable via Engine.Metrics.
	Metrics *MetricsRegistry
	// MemoryBudgetBytes, when positive, bounds the engine's accounted
	// resident memory: frontier-cache entries, pooled per-session scratch
	// and join build sides all charge one shared byte ledger. The cache
	// is additionally capped at half the budget and evicts/refuses
	// deposits on bytes; a join whose estimator-predicted build side does
	// not fit the remaining headroom degrades to the pinned-equal DFS
	// plan (Result.MemFallback) instead of materializing; per-worker
	// session scratch (core.SessionScratchBytes per session) is charged
	// unconditionally — the engine floors the effective budget at that
	// requirement, so a pathologically small budget serves correctly with
	// every optional consumer degraded. 0 disables budgeting (unlimited).
	// Observable via Engine.MemStats and the pathenum_mem_* gauges.
	MemoryBudgetBytes int64
	// OracleLandmarks, when positive, keeps oracle pruning available on a
	// mutating graph: every published snapshot schedules a distance-oracle
	// rebuild with this many landmarks on a single-flight background
	// worker. The snapshot serves immediately — publishing inserts never
	// block on the O(landmarks x BFS) rebuild — and queries run unpruned
	// (stale oracle dropped, epoch-checked) until the fresh oracle lands;
	// WaitOracle blocks until it does, and OracleLag reports how long the
	// engine has been serving degraded. Rapid publishes coalesce: a
	// rebuild superseded by a newer snapshot is discarded, not installed.
	// When 0, a version-aware oracle is simply dropped at the first
	// publish that invalidates it (queries keep working, unpruned, until
	// SetOracle re-installs one).
	OracleLandmarks int
}

// DefaultCacheAdmitDegree is the single-query deposit admission threshold
// used when EngineConfig.CacheAdmitDegree is 0: endpoints with degree
// below it are served without depositing, keeping cold-traffic queries on
// the allocation-free scratch path.
const DefaultCacheAdmitDegree = 16

// Engine executes HcPE queries concurrently against one immutable graph
// version at a time. PathEnum's state is per query (the index is built per
// query), so queries parallelize without coordination — the online
// scenario of §1. Each worker reuses a core.Session, so the O(|V|)
// per-query buffers are allocated once per worker rather than once per
// query.
//
// The engine owns two cross-query structures keyed by graph version: the
// optional distance oracle and the frontier cache (an LRU of shared BFS
// labelings consulted by every surface and deposited behind a
// degree-based admission check — single queries and batch per-member
// sides alike, with planner-proved shared frontiers admitted on their
// batch reuse alone). Dynamic workloads advance the engine either through
// the engine-owned write path (Insert/Flush: the engine owns the Dynamic,
// amortizes snapshotting per SnapshotEvery and refreshes the oracle per
// OracleLandmarks on a background single-flight worker) or with
// caller-built snapshots via UpdateGraph; both bump the graph epoch, so
// cached frontiers invalidate lazily on lookup — no sweep — and a stale
// oracle is rebuilt in the background or dropped rather than consulted.
//
// The zero Engine is not usable; create one with NewEngine.
type Engine struct {
	cfg     EngineConfig
	workers int
	cache   *cache.FrontierCache // nil when disabled
	budget  *mem.Budget          // nil when MemoryBudgetBytes is 0

	// mu guards the mutable graph view: the current graph, the oracles
	// valid for it (the engine-level one and the per-query default in
	// defaults.Oracle), and the session pool bound to them. UpdateGraph
	// and SetOracle swap the pieces together; queries capture a
	// consistent view under RLock and finish on it even if the engine
	// advances mid-flight.
	mu       sync.RWMutex
	g        *Graph
	oracle   DistanceOracle
	defaults Options
	sessions *sync.Pool
	// scratchBytes is the session scratch currently charged to the budget
	// (workers x core.SessionScratchBytes of the serving graph), written
	// under mu by graph swaps so the charge follows the graph size.
	scratchBytes int64

	// wmu serializes the engine-owned write path (Insert/Flush) and
	// guards the Dynamic plus the count of insertions not yet published
	// as a snapshot. Lock order: wmu before mu, never the reverse.
	wmu     sync.Mutex
	dyn     *Dynamic
	pending int

	// Worker-pool occupancy gauges (see PoolStats): queries currently
	// executing through the single-query entry points, and the parallel
	// enumeration shards those queries have fanned out.
	inFlight atomic.Int64
	inShards atomic.Int64

	// metrics holds the pre-resolved observability handles (see
	// metrics.go). oldestPendingNs is the unix-nano timestamp of the
	// oldest insertion not yet published as a snapshot (0 when none) —
	// written under wmu, read lock-free by the insert-lag gauge.
	metrics         *engineMetrics
	oldestPendingNs atomic.Int64

	// Background oracle rebuild state (OracleLandmarks > 0). rebuildMu
	// guards the target/active/done fields; the single-flight rebuild
	// loop drains rebuildTarget until nil, so rapid publishes coalesce
	// onto the newest snapshot. degradedSinceNs is the unix-nano
	// timestamp since which the engine has been serving without a fresh
	// oracle (0 when not degraded) — read lock-free by the
	// oracle-lag gauge. Lock order: rebuildMu is a leaf — never held
	// while taking wmu or mu.
	rebuildMu     sync.Mutex
	rebuildTarget *Graph
	rebuildActive bool
	rebuildDone   chan struct{}
	degradedSince atomic.Int64
}

// NewEngine creates an engine over g.
func NewEngine(g *Graph, cfg EngineConfig) (*Engine, error) {
	if g == nil {
		return nil, fmt.Errorf("pathenum: engine needs a graph")
	}
	if err := validateOracleFor(cfg.Oracle, g); err != nil {
		return nil, err
	}
	if err := validateOracleFor(cfg.Options.Oracle, g); err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 4
	}
	// The budget's effective limit is floored at the mandatory session
	// scratch (one set of O(|V|) buffers per worker) — the engine cannot
	// serve without it, so a budget below that floor runs at the floor
	// with every optional consumer (cache deposits, join build sides)
	// starved rather than failing construction.
	var budget *mem.Budget
	var scratchBytes int64
	if cfg.MemoryBudgetBytes > 0 {
		scratchBytes = int64(workers) * core.SessionScratchBytes(g.NumVertices())
		limit := cfg.MemoryBudgetBytes
		if limit < scratchBytes {
			limit = scratchBytes
		}
		budget = mem.New(limit)
		budget.Must(mem.ClassScratch, scratchBytes)
	}
	e := &Engine{
		cfg:          cfg,
		workers:      workers,
		budget:       budget,
		scratchBytes: scratchBytes,
		g:            g,
		oracle:       cfg.Oracle,
		defaults:     cfg.Options,
		sessions:     newSessionPool(g, cfg.Oracle, budget),
	}
	if cfg.FrontierCache >= 0 {
		// Budget split: the cache may hold at most half the budget, and
		// every resident byte is charged to the shared ledger too, so
		// scratch and build sides squeeze it further under pressure.
		e.cache = cache.NewBudgeted(cfg.FrontierCache, budget.Limit()/2, budget)
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = NewMetricsRegistry()
	}
	e.metrics = newEngineMetrics(reg, e)
	if cfg.OracleLandmarks > 0 && e.oracle == nil {
		// Continuous pruning was requested but no oracle was supplied:
		// build the first one in the background too, so construction cost
		// never sits on the caller's startup path.
		e.scheduleRebuild(g)
	}
	return e, nil
}

func newSessionPool(g *Graph, oracle DistanceOracle, budget *mem.Budget) *sync.Pool {
	return &sync.Pool{New: func() any { return core.NewSessionBudget(g, oracle, budget) }}
}

// validateOracleFor rejects a version-aware oracle that does not match g.
func validateOracleFor(oracle DistanceOracle, g *Graph) error {
	if v, ok := oracle.(core.GraphValidator); ok {
		if err := v.ValidFor(g); err != nil {
			return fmt.Errorf("pathenum: oracle does not match engine graph: %w", err)
		}
	}
	return nil
}

// view captures a consistent (graph, oracle, session pool) triple.
func (e *Engine) view() (*Graph, DistanceOracle, *sync.Pool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.g, e.oracle, e.sessions
}

// Graph returns the engine's current graph.
func (e *Engine) Graph() *Graph {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.g
}

// Epoch returns the epoch of the engine's current graph — the mutation
// count of its lineage (see graph.Versioned).
func (e *Engine) Epoch() uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.g.Epoch()
}

// UpdateGraph swaps the engine to g — typically a fresh Dynamic snapshot
// after insertions. Sessions rebind to the new graph (in-flight queries
// finish on the view they captured); cached frontiers are not swept —
// they invalidate lazily, by version, on their next lookup. An installed
// oracle that is version-aware and no longer valid for g — the
// engine-level one or the per-query default in EngineConfig.Options —
// is dropped: queries keep working without pruning, and SetOracle
// re-installs a rebuilt one. Safe for concurrent use with queries;
// UpdateGraph calls themselves should come from one writer (the owner
// of the Dynamic).
func (e *Engine) UpdateGraph(g *Graph) error {
	if g == nil {
		return fmt.Errorf("pathenum: UpdateGraph needs a graph")
	}
	e.wmu.Lock()
	defer e.wmu.Unlock()
	// An externally supplied graph supersedes the engine-owned write
	// path: the Dynamic (and any unpublished insertions) no longer
	// describe the serving graph, so the next Insert re-wraps the new
	// one.
	e.dyn = nil
	e.pending = 0
	e.oldestPendingNs.Store(0)
	e.installGraph(g, nil, false)
	if e.cfg.OracleLandmarks > 0 {
		e.scheduleRebuild(g)
	}
	return nil
}

// installGraph swaps the serving view to g in one critical section. With
// replaceOracle, the engine-level oracle becomes oracle (pre-built for g
// by the write path); otherwise a version-aware engine oracle no longer
// valid for g is dropped. The per-query default oracle always follows the
// drop-stale rule — it is caller-owned and cannot be rebuilt here.
// In-flight queries finish on the view they captured; cached frontiers
// invalidate lazily, by version, on their next lookup.
func (e *Engine) installGraph(g *Graph, oracle DistanceOracle, replaceOracle bool) {
	dropStale := func(o DistanceOracle) DistanceOracle {
		if v, ok := o.(core.GraphValidator); ok && v.ValidFor(g) != nil {
			return nil
		}
		return o
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.g = g
	if replaceOracle {
		e.oracle = oracle
	} else {
		e.oracle = dropStale(e.oracle)
	}
	e.defaults.Oracle = dropStale(e.defaults.Oracle)
	e.sessions = newSessionPool(g, e.oracle, e.budget)
	// Re-account the mandatory scratch charge to the new graph's size.
	// If the graph grew past what the configured budget anticipated, usage
	// may exceed the limit (Budget.Must semantics): the engine keeps
	// serving with cache deposits and join builds starved until the
	// pressure clears.
	if e.budget != nil {
		newScratch := int64(e.workers) * core.SessionScratchBytes(g.NumVertices())
		e.budget.Release(mem.ClassScratch, e.scratchBytes)
		e.budget.Must(mem.ClassScratch, newScratch)
		e.scratchBytes = newScratch
	}
}

// Insert adds the directed edge (from, to) through the engine-owned write
// path, making streaming-while-updating a first-class scenario: the
// engine lazily wraps its current graph in a Dynamic on the first call,
// every applied insertion bumps the graph epoch, and a fresh immutable
// snapshot is published per EngineConfig.SnapshotEvery (every insert by
// default; see Flush). Publishing swaps the serving view exactly like
// UpdateGraph — in-flight queries and streams finish on the snapshot they
// captured, cached frontiers from earlier epochs invalidate lazily (a
// stale frontier handed to execution is rejected with ErrStaleEpoch, never
// silently used), and the oracle is rebuilt when
// EngineConfig.OracleLandmarks is set, dropped otherwise.
//
// Duplicate edges and self-loops are ignored and reported false, matching
// Dynamic.Insert. Insert is safe for concurrent use with queries, streams
// and other Inserts; writes are serialized internally.
func (e *Engine) Insert(from, to VertexID) (bool, error) {
	e.wmu.Lock()
	defer e.wmu.Unlock()
	if e.dyn == nil {
		e.dyn = NewDynamic(e.Graph())
	}
	added, err := e.dyn.Insert(from, to)
	if err != nil || !added {
		return added, err
	}
	e.metrics.inserts.Inc()
	if e.pending == 0 {
		e.oldestPendingNs.Store(time.Now().UnixNano())
	}
	e.pending++
	every := e.cfg.SnapshotEvery
	if every < 1 {
		every = 1
	}
	if e.pending >= every {
		return true, e.publishLocked()
	}
	return true, nil
}

// Flush publishes any insertions still buffered by SnapshotEvery
// amortization as a fresh serving snapshot. A no-op when nothing is
// pending.
func (e *Engine) Flush() error {
	e.wmu.Lock()
	defer e.wmu.Unlock()
	if e.dyn == nil || e.pending == 0 {
		return nil
	}
	return e.publishLocked()
}

// PendingWrites reports insertions applied to the engine's Dynamic but
// not yet visible to queries (always 0 unless SnapshotEvery > 1).
func (e *Engine) PendingWrites() int {
	e.wmu.Lock()
	defer e.wmu.Unlock()
	return e.pending
}

// publishLocked materializes the Dynamic's current state and swaps the
// serving view immediately. Caller holds e.wmu. With OracleLandmarks set
// the oracle rebuild (two BFS passes per landmark) no longer sits on this
// path: the snapshot serves right away — a version-aware oracle for the
// previous graph is dropped by installGraph — and a single-flight
// background worker rebuilds the oracle for the new snapshot, installing
// it via the SetOracle path only if the snapshot is still the serving
// graph when the build finishes.
func (e *Engine) publishLocked() error {
	snap := e.dyn.Snapshot()
	e.pending = 0
	if oldest := e.oldestPendingNs.Swap(0); oldest != 0 {
		e.metrics.publishLag.Observe(time.Since(time.Unix(0, oldest)))
	}
	e.metrics.publishes.Inc()
	e.installGraph(snap, nil, false)
	if e.cfg.OracleLandmarks > 0 {
		e.scheduleRebuild(snap)
	}
	return nil
}

// scheduleRebuild hands snap to the background oracle rebuild worker,
// starting one if none is running. Only the newest target survives: a
// worker mid-build on an older snapshot picks this one up next and the
// superseded result is discarded at install time.
func (e *Engine) scheduleRebuild(snap *Graph) {
	e.rebuildMu.Lock()
	e.rebuildTarget = snap
	if e.degradedSince.Load() == 0 {
		e.degradedSince.Store(time.Now().UnixNano())
	}
	if !e.rebuildActive {
		e.rebuildActive = true
		e.rebuildDone = make(chan struct{})
		go e.rebuildLoop(e.rebuildDone)
	}
	e.rebuildMu.Unlock()
}

// rebuildLoop is the single-flight background oracle worker: it drains
// rebuildTarget — always building against the newest scheduled snapshot —
// and installs each finished oracle only while its snapshot is still the
// serving graph (pointer identity), so coalesced publishes never regress
// the oracle to an older epoch. The engine is degraded (serving unpruned)
// from the first schedule until an install lands on the serving graph.
func (e *Engine) rebuildLoop(done chan struct{}) {
	for {
		e.rebuildMu.Lock()
		target := e.rebuildTarget
		e.rebuildTarget = nil
		if target == nil {
			e.rebuildActive = false
			e.rebuildMu.Unlock()
			close(done)
			return
		}
		e.rebuildMu.Unlock()

		start := time.Now()
		oracle, err := landmark.Build(target, e.cfg.OracleLandmarks)
		if err != nil {
			// Build failures leave the engine unpruned but serving; the
			// next publish schedules a fresh attempt.
			continue
		}
		e.metrics.observeOracleRebuild(time.Since(start))
		e.mu.Lock()
		if e.g == target {
			e.oracle = oracle
			e.sessions = newSessionPool(e.g, oracle, e.budget)
			e.degradedSince.Store(0)
		}
		e.mu.Unlock()
	}
}

// WaitOracle blocks until the background oracle rebuild queue is idle (or
// ctx is done) — after it returns nil, the most recently published
// snapshot's oracle has been installed unless a newer publish raced in.
// Returns immediately when no rebuild is pending; tests and benchmarks
// use it to observe the asynchronous rebuild deterministically.
func (e *Engine) WaitOracle(ctx context.Context) error {
	for {
		e.rebuildMu.Lock()
		active, done := e.rebuildActive, e.rebuildDone
		e.rebuildMu.Unlock()
		if !active {
			return nil
		}
		select {
		case <-done:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// OracleLag reports how long the engine has been serving without a fresh
// oracle while OracleLandmarks expects one — 0 when the oracle is
// current. A non-zero lag means queries run unpruned (correct, slower);
// it is exported as the pathenum_oracle_lag_seconds gauge and noted in
// the server's /readyz body.
func (e *Engine) OracleLag() time.Duration {
	since := e.degradedSince.Load()
	if since == 0 {
		return 0
	}
	return time.Since(time.Unix(0, since))
}

// Oracle returns the engine's currently installed distance oracle (nil
// when none is installed or the last graph update dropped a stale one).
func (e *Engine) Oracle() DistanceOracle {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.oracle
}

// SetOracle installs (or, with nil, removes) the engine's distance
// oracle. A version-aware oracle must match the engine's current graph.
func (e *Engine) SetOracle(oracle DistanceOracle) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := validateOracleFor(oracle, e.g); err != nil {
		return err
	}
	e.oracle = oracle
	e.sessions = newSessionPool(e.g, oracle, e.budget)
	if oracle != nil {
		e.degradedSince.Store(0)
	}
	return nil
}

// CacheStats snapshots the frontier-cache counters (the zero value when
// caching is disabled).
func (e *Engine) CacheStats() FrontierCacheStats {
	if e.cache == nil {
		return FrontierCacheStats{}
	}
	return e.cache.Stats()
}

// MemStats snapshots the engine's memory-budget ledger. The zero value
// (BudgetBytes 0) means the engine runs unbudgeted. UsedBytes is the sum
// of the per-class gauges and — join fallbacks aside — never exceeds
// BudgetBytes; a graph swap onto a larger graph can push the mandatory
// scratch charge past the configured budget (see
// EngineConfig.MemoryBudgetBytes), which shows up here as
// UsedBytes > BudgetBytes with cache and build starved to zero.
type MemStats struct {
	// BudgetBytes is the effective limit: the configured
	// MemoryBudgetBytes floored at the mandatory session scratch.
	BudgetBytes int64
	// UsedBytes is the bytes currently charged across all classes.
	UsedBytes int64
	// CacheBytes / ScratchBytes / BuildBytes split UsedBytes by consumer:
	// resident frontier-cache labelings, pooled per-session scratch, and
	// join build sides currently materialized.
	CacheBytes   int64
	ScratchBytes int64
	BuildBytes   int64
	// JoinFallbacks counts join-planned runs demoted to DFS because the
	// predicted build side did not fit the remaining budget.
	JoinFallbacks uint64
	// CacheRejected counts frontier deposits refused by the byte bound or
	// the shared ledger.
	CacheRejected uint64
}

// MemStats returns the engine's current memory accounting (see MemStats).
func (e *Engine) MemStats() MemStats {
	ms := MemStats{
		BudgetBytes:  e.budget.Limit(),
		UsedBytes:    e.budget.Used(),
		CacheBytes:   e.budget.ClassBytes(mem.ClassCache),
		ScratchBytes: e.budget.ClassBytes(mem.ClassScratch),
		BuildBytes:   e.budget.ClassBytes(mem.ClassBuild),
	}
	if e.metrics != nil {
		ms.JoinFallbacks = e.metrics.memFallbacks.Value()
	}
	if e.cache != nil {
		ms.CacheRejected = e.cache.Stats().Rejected
	}
	return ms
}

// WarmEndpoint names one frontier to precompute for WarmCache: the BFS
// origin, the direction (a forward frontier serves queries with S ==
// Origin, a backward one queries with T == Origin) and the hop bound to
// label to — a warmed bound serves every query with k <= K on that side.
type WarmEndpoint struct {
	Origin  VertexID
	Forward bool
	K       int
}

// WarmCache precomputes frontier labelings for the given endpoints and
// deposits them in the frontier cache, returning how many were admitted.
// This is the operator-intent warm path — a service that knows its hot
// hubs (yesterday's top endpoints, a fraud ring under live
// investigation) loads them before traffic arrives instead of paying
// cold BFS passes on the first queries. Deposits bypass the degree-based
// admission gate (explicitly named endpoints are their own evidence) but
// remain subject to the cache's byte bound and the engine budget: a
// warm set larger than the bound admits only what fits (LRU order, last
// deposit wins). Endpoints are warmed against the current graph version;
// ctx cancels the remaining work. With caching disabled it returns 0.
func (e *Engine) WarmCache(ctx context.Context, endpoints []WarmEndpoint) (int, error) {
	if e.cache == nil {
		return 0, nil
	}
	g, _, _ := e.view()
	warmed := 0
	for _, ep := range endpoints {
		if err := ctx.Err(); err != nil {
			return warmed, err
		}
		k := ep.K
		if k <= 0 {
			return warmed, fmt.Errorf("pathenum: WarmCache endpoint %v needs K > 0", ep)
		}
		var f *core.Frontier
		var err error
		if ep.Forward {
			f, err = core.NewForwardFrontier(g, ep.Origin, k, nil, core.PredicateNone)
		} else {
			f, err = core.NewBackwardFrontier(g, ep.Origin, k, nil, core.PredicateNone)
		}
		if err != nil {
			return warmed, fmt.Errorf("pathenum: WarmCache endpoint %v: %w", ep, err)
		}
		if e.cache.Put(f) {
			warmed++
		}
	}
	return warmed, nil
}

// Execute runs one query with the engine defaults (synchronously).
func (e *Engine) Execute(q Query) (*Result, error) {
	return e.ExecuteWith(context.Background(), q, Options{})
}

// ExecuteWith runs one query on a pooled session, merging per-call option
// overrides with the engine defaults (see MergeOptions) and observing ctx:
// cancellation or a context deadline stops enumeration early with
// Result.Completed == false. Like Engine.Stream — the two are callback and
// pull consumers of the same request spine — single queries are served
// from the frontier cache when it holds a matching labeling (a hub warmed
// by an earlier batch or query costs one BFS pass instead of two), and on
// a miss they deposit the labeling they build when the endpoint passes the
// degree-based admission check (EngineConfig.CacheAdmitDegree), so hot
// hubs warm the cache without waiting for a batch. This is the entry point
// services should use — e.g. an HTTP handler passing the request context
// gets session buffer reuse, the engine oracle and client-disconnect
// cancellation in one call.
func (e *Engine) ExecuteWith(ctx context.Context, q Query, opts Options) (*Result, error) {
	e.metrics.requests[opExecute].Inc()
	start := time.Now()
	g, oracle, pool := e.view()
	merged := e.MergeOptions(opts)
	// Time-to-first-path piggybacks on the caller's Emit when one is set
	// (the per-path seam already exists; one branch is added to it).
	// Emit-less runs only count paths — there is no delivery to time.
	var firstPath time.Duration
	if userEmit := merged.Emit; userEmit != nil {
		merged.Emit = func(p []VertexID) bool {
			if firstPath == 0 {
				firstPath = time.Since(start)
			}
			return userEmit(p)
		}
	}
	defer e.track(merged.Parallelism)()
	fwd, bwd := e.frontiers(ctx, g, oracle, q, merged)
	sess := pool.Get().(*core.Session)
	defer pool.Put(sess)
	res, err := sess.RunShared(ctx, q, merged, fwd, bwd)
	e.metrics.finish(opExecute, res, err, start, firstPath)
	return res, err
}

// frontiers resolves the frontier-cache sides of a single query: consult
// for both sides, and on a miss whose endpoint passes the degree-based
// admission check, build the shareable labeling and deposit it for later
// queries and batches. The build replaces that side's scratch BFS, so on
// an oracle-less engine admission costs one O(|V|) allocation, not an
// extra pass; with an oracle installed the deposit build costs more than
// the oracle-pruned scratch pass it replaces — shareable labelings cannot
// bake in per-query pruning — an investment the admission check bets will
// amortize across repeat queries on that hub. Opaque predicates
// (non-nil with a zero token) and invalid queries skip the cache, and no
// deposit is built for runs that will not enumerate: a context already
// done, a stale oracle (the run fails with ErrStaleEpoch) or an oracle
// lower bound proving the query infeasible (the run's zero-BFS fast
// path). engineOracle is the engine-level oracle captured with g.
func (e *Engine) frontiers(ctx context.Context, g *Graph, engineOracle DistanceOracle, q Query, opts Options) (fwd, bwd *core.Frontier) {
	if e.cache == nil || (opts.Predicate != nil && opts.PredicateToken == core.PredicateNone) {
		return nil, nil
	}
	if q.Validate(g) != nil {
		return nil, nil // let the session report the error
	}
	ver := g.Version()
	fwd = e.cache.Get(cache.Key{Origin: q.S, Forward: true, Pred: opts.PredicateToken}, q.K, ver)
	bwd = e.cache.Get(cache.Key{Origin: q.T, Forward: false, Pred: opts.PredicateToken}, q.K, ver)
	admit := e.admitDegree()
	if admit < 0 || (fwd != nil && bwd != nil) || ctx.Err() != nil {
		return fwd, bwd
	}
	oracle := opts.Oracle
	if oracle == nil {
		oracle = engineOracle
	}
	if oracle != nil {
		if v, ok := oracle.(core.GraphValidator); ok && v.ValidFor(g) != nil {
			return fwd, bwd // the run fails on the stale oracle; build nothing
		}
		if lb := oracle.LowerBound(q.S, q.T); lb < 0 || int(lb) > q.K {
			return fwd, bwd // infeasible: the run's fast path does zero BFS
		}
	}
	if fwd == nil && g.OutDegree(q.S) >= admit {
		if f, err := core.NewForwardFrontier(g, q.S, q.K, opts.Predicate, opts.PredicateToken); err == nil {
			e.cache.Put(f)
			fwd = f
		}
	}
	if bwd == nil && g.InDegree(q.T) >= admit {
		if f, err := core.NewBackwardFrontier(g, q.T, q.K, opts.Predicate, opts.PredicateToken); err == nil {
			e.cache.Put(f)
			bwd = f
		}
	}
	return fwd, bwd
}

// MergeOptions overlays per-call overrides on the engine's default Options:
// any zero-valued field of opts falls back to the corresponding
// EngineConfig.Options field. Predicate and PredicateToken travel as a
// pair: a per-call Predicate keeps its own token (possibly zero = opaque),
// a nil per-call Predicate inherits both from the defaults.
//
// The flip side: a zero value can never override a non-zero default. A
// per-call Auto inherits the default Method (Auto is the zero value), a
// per-call Limit/Timeout of 0 cannot lift a default limit/timeout, and a
// nil Emit/Predicate/Oracle cannot clear a default one. Engines intended
// to serve unrestricted per-call traffic should keep those defaults zero
// and let callers opt in per call.
func (e *Engine) MergeOptions(opts Options) Options {
	e.mu.RLock()
	def := e.defaults
	e.mu.RUnlock()
	if opts.Method == Auto {
		opts.Method = def.Method
	}
	if opts.Tau == 0 {
		opts.Tau = def.Tau
	}
	if opts.Limit == 0 {
		opts.Limit = def.Limit
	}
	if opts.Timeout == 0 {
		opts.Timeout = def.Timeout
	}
	if opts.Emit == nil {
		opts.Emit = def.Emit
	}
	if opts.Predicate == nil {
		opts.Predicate = def.Predicate
		opts.PredicateToken = def.PredicateToken
	}
	if opts.Oracle == nil {
		opts.Oracle = def.Oracle
	}
	if opts.Parallelism == 0 {
		opts.Parallelism = def.Parallelism
	}
	// Intra-query fan-out is capped at the engine's worker count: a
	// request cannot commandeer more goroutines than the pool is sized
	// for, whatever it asks.
	if opts.Parallelism > e.workers {
		opts.Parallelism = e.workers
	}
	return opts
}

// PoolStats snapshots the engine's worker-pool occupancy: the configured
// worker count, the queries currently executing through the single-query
// entry points (ExecuteWith, Engine.Stream and the ExecuteAll fan-outs
// riding on them) and the intra-query parallel enumeration shards those
// queries have fanned out (Options.Parallelism > 1 counts its full merged
// fan-out for the duration of the run). ExecuteBatch's scheduler manages
// its own workers and is not reflected in the query gauge.
type PoolStats struct {
	// Workers is EngineConfig.Workers after defaulting.
	Workers int
	// InFlightQueries is the number of single-query executions currently
	// running.
	InFlightQueries int
	// InFlightShards is the number of parallel enumeration shards
	// currently fanned out by those queries.
	InFlightShards int
}

// Utilization reports InFlightQueries against the worker count as a
// 0..1+ ratio (parallel shards can push effective demand past 1).
func (s PoolStats) Utilization() float64 {
	if s.Workers <= 0 {
		return 0
	}
	load := s.InFlightQueries
	if s.InFlightShards > load {
		load = s.InFlightShards
	}
	return float64(load) / float64(s.Workers)
}

// PoolStats returns the engine's current worker-pool occupancy gauges.
func (e *Engine) PoolStats() PoolStats {
	return PoolStats{
		Workers:         e.workers,
		InFlightQueries: int(e.inFlight.Load()),
		InFlightShards:  int(e.inShards.Load()),
	}
}

// track registers one in-flight query (and its parallel fan-out, when
// parallelism > 1) with the pool gauges; the returned release must run
// exactly once when the query settles.
func (e *Engine) track(parallelism int) func() {
	e.inFlight.Add(1)
	var shards int64
	if parallelism > 1 {
		shards = int64(parallelism)
		e.inShards.Add(shards)
	}
	return func() {
		e.inFlight.Add(-1)
		if shards != 0 {
			e.inShards.Add(-shards)
		}
	}
}

// ExecuteAll runs the queries across the worker pool and returns results
// in input order. The per-result error slot is set for invalid queries;
// valid ones always produce a Result.
func (e *Engine) ExecuteAll(queries []Query) ([]*Result, []error) {
	return e.ExecuteAllContext(context.Background(), queries, Options{})
}

// ExecuteAllContext runs the queries across the worker pool with shared
// per-call option overrides, observing ctx with fail-fast cancellation:
// once ctx is done, queries not yet started return ctx.Err() immediately
// and in-flight enumerations stop early. Results come back in input order;
// per-query validation errors fill their slot without aborting the batch.
//
// opts.Emit, if set, may be invoked concurrently from multiple workers and
// does not identify the originating query; batch callers normally leave it
// nil and read counts from the Results.
func (e *Engine) ExecuteAllContext(ctx context.Context, queries []Query, opts Options) ([]*Result, []error) {
	results := make([]*Result, len(queries))
	errs := make([]error, len(queries))
	var wg sync.WaitGroup
	sem := make(chan struct{}, e.workers)
dispatch:
	for i, q := range queries {
		// The acquire must observe ctx alongside the semaphore: with the
		// pool full, a bare channel send would block cancellation behind a
		// slow in-flight query instead of failing the rest of the batch
		// fast.
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			for j := i; j < len(queries); j++ {
				errs[j] = ctx.Err()
			}
			break dispatch
		}
		wg.Add(1)
		go func(i int, q Query) {
			defer wg.Done()
			defer func() { <-sem }()
			results[i], errs[i] = e.ExecuteWith(ctx, q, opts)
		}(i, q)
	}
	wg.Wait()
	return results, errs
}

// BatchStats reports what the batch planner found to share and what the
// scheduler did with it: queries deduped, BFS passes saved vs the naive
// fan-out, frontier-cache hits and per-group timings. See
// internal/batch.Stats.
type BatchStats = batch.Stats

// frontierCacheProvider adapts the engine cache to the batch scheduler's
// FrontierProvider seam, pinning the graph version and predicate token of
// one batch execution. Deposits follow the same degree-based admission
// policy as single queries (EngineConfig.CacheAdmitDegree), except that a
// frontier the planner proved shared — two or more members of this batch
// use it — is admitted on that evidence alone.
type frontierCacheProvider struct {
	c     *cache.FrontierCache
	g     *Graph
	ver   graph.Version
	tok   core.PredicateToken
	admit int
}

func (p *frontierCacheProvider) Lookup(origin VertexID, forward bool, k int) *core.Frontier {
	return p.c.Get(cache.Key{Origin: origin, Forward: forward, Pred: p.tok}, k, p.ver)
}

func (p *frontierCacheProvider) Store(f *core.Frontier, uses int) bool {
	if uses < 2 {
		if p.admit < 0 {
			return false
		}
		deg := p.g.OutDegree(f.Origin())
		if !f.IsForward() {
			deg = p.g.InDegree(f.Origin())
		}
		if deg < p.admit {
			return false
		}
	}
	return p.c.Put(f)
}

// ExecuteBatch runs the queries through the shared-computation batch
// subsystem (internal/batch): exact-duplicate queries are answered once
// and fanned back out, queries sharing a source or target reuse one
// shared BFS frontier for that side of their index build, and the
// resulting groups execute across the worker pool in estimated-cost
// order. With the frontier cache enabled the scheduler consults it before
// building any frontier and deposits what it builds, so a repeat batch
// over the same hubs executes with zero BFS passes
// (BatchStats.BFSPassesRun and the cache hit counters make this visible).
// Results come back in input order with ExecuteAllContext's fail-fast
// cancellation semantics; the naive independent fan-out remains available
// as ExecuteAllContext.
//
// Two semantic differences from ExecuteAllContext follow from sharing:
// duplicate queries receive the same *Result pointer (treat Results as
// read-only), and opts.Emit — already concurrent and unattributed in
// batch execution — fires once per unique query, not once per duplicate.
func (e *Engine) ExecuteBatch(ctx context.Context, queries []Query, opts Options) ([]*Result, []error, *BatchStats) {
	e.metrics.requests[opBatch].Inc()
	e.metrics.batchQueries.Add(uint64(len(queries)))
	start := time.Now()
	g, _, pool := e.view()
	merged := e.MergeOptions(opts)
	sch := e.newScheduler(g, pool, merged)
	plan := batch.NewPlanner(g).Plan(queries)
	uniqRes, uniqErrs, stats := sch.Execute(ctx, g, plan, merged)
	// Batch runs bypass ExecuteWith, so their stage timings fold in here —
	// once per unique execution, not per duplicate.
	for _, res := range uniqRes {
		e.metrics.observeRun(res)
	}
	e.metrics.latency[opBatch].Observe(time.Since(start))
	results, errs := plan.Scatter(uniqRes, uniqErrs)
	return results, errs, stats
}

// newScheduler builds a batch scheduler over the captured (graph, pool)
// view, wiring the frontier cache in when the predicate is identifiable.
// Shared by the materializing ExecuteBatch and the streaming StreamBatch.
func (e *Engine) newScheduler(g *Graph, pool *sync.Pool, merged Options) *batch.Scheduler {
	sch := &batch.Scheduler{
		Workers: e.workers,
		Acquire: func() *core.Session { return pool.Get().(*core.Session) },
		Release: func(s *core.Session) { pool.Put(s) },
	}
	if e.cache != nil && (merged.Predicate == nil || merged.PredicateToken != core.PredicateNone) {
		sch.Frontiers = &frontierCacheProvider{
			c: e.cache, g: g, ver: g.Version(), tok: merged.PredicateToken,
			admit: e.admitDegree(),
		}
	}
	return sch
}

// admitDegree resolves EngineConfig.CacheAdmitDegree with its default.
func (e *Engine) admitDegree() int {
	admit := e.cfg.CacheAdmitDegree
	if admit == 0 {
		admit = DefaultCacheAdmitDegree
	}
	return admit
}

// CountAll returns per-query path counts in input order; the first query
// error aborts the batch.
func (e *Engine) CountAll(queries []Query) ([]uint64, error) {
	results, errs := e.ExecuteAll(queries)
	counts := make([]uint64, len(queries))
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("pathenum: query %d (%v): %w", i, queries[i], err)
		}
		counts[i] = results[i].Counters.Results
	}
	return counts, nil
}
