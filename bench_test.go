// Benchmarks regenerating every table and figure of the paper's evaluation
// (one BenchmarkTableN / BenchmarkFigN per experiment; Fig10 covers Figure
// 11 and Fig13 covers Figures 14/15, exactly as in the paper's shared
// plots), plus micro-benchmarks of the individual techniques and ablation
// benches for the design choices called out in DESIGN.md.
//
// The experiment benches run the same harness as cmd/benchpath at a scale
// chosen so a single iteration stays in the hundreds of milliseconds; use
// cmd/benchpath for full-size runs.
//
// This file lives in the external test package: internal/bench now
// imports the root package (the shard experiment constructs engines), so
// an in-package test file importing internal/bench would cycle.
package pathenum_test

import (
	"context"
	"testing"
	"time"

	"pathenum"
	"pathenum/internal/baseline"
	"pathenum/internal/bench"
	"pathenum/internal/core"
	"pathenum/internal/gen"
	"pathenum/internal/workload"
)

// benchConfig is the scaled-down experiment configuration for testing.B.
func benchConfig() bench.Config {
	return bench.Config{
		Scale:     0.15,
		Queries:   10,
		K:         5,
		KRange:    []int{3, 4, 5},
		TimeLimit: 300 * time.Millisecond,
		ResponseK: 1000,
		Datasets:  []string{"ep", "gg"},
		Seed:      42,
	}
}

func runExperiment[T any](b *testing.B, fn func(bench.Config) (T, error)) {
	b.Helper()
	cfg := benchConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fn(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3Overall(b *testing.B) {
	runExperiment(b, func(c bench.Config) (*bench.Table3Result, error) { return bench.Table3(c) })
}

func BenchmarkTable4TimeDistribution(b *testing.B) {
	runExperiment(b, func(c bench.Config) (*bench.Table4Result, error) { return bench.Table4(c) })
}

func BenchmarkTable5OutlierQueries(b *testing.B) {
	runExperiment(b, func(c bench.Config) (*bench.Table5Result, error) { return bench.Table5(c) })
}

func BenchmarkTable6ResultCounts(b *testing.B) {
	runExperiment(b, func(c bench.Config) (*bench.Table6Result, error) { return bench.Table6(c) })
}

func BenchmarkTable7Memory(b *testing.B) {
	runExperiment(b, func(c bench.Config) (*bench.Table7Result, error) { return bench.Table7(c) })
}

func BenchmarkFig6DetailedMetrics(b *testing.B) {
	runExperiment(b, func(c bench.Config) (*bench.Fig6Result, error) { return bench.Fig6(c) })
}

func BenchmarkFig7Breakdown(b *testing.B) {
	runExperiment(b, func(c bench.Config) (*bench.Fig7Result, error) { return bench.Fig7(c) })
}

func BenchmarkFig8DynamicLatency(b *testing.B) {
	runExperiment(b, func(c bench.Config) (*bench.Fig8Result, error) {
		c.Queries = 5
		c.Datasets = []string{"gg"}
		return bench.Fig8(c)
	})
}

func BenchmarkFig9Spectrum(b *testing.B) {
	runExperiment(b, func(c bench.Config) (*bench.Fig9Result, error) { return bench.Fig9(c) })
}

func BenchmarkFig10Regression(b *testing.B) {
	runExperiment(b, func(c bench.Config) (*bench.Fig10Result, error) { return bench.Fig10(c) })
}

func BenchmarkFig12Scalability(b *testing.B) {
	runExperiment(b, func(c bench.Config) (*bench.Fig12Result, error) {
		// tm is the scalability graph; shrink it for testing.B.
		c.Scale = 0.02
		c.Datasets = []string{"tm"}
		c.KRange = []int{3, 4, 5}
		return bench.Fig12(c)
	})
}

func BenchmarkFig13VaryK(b *testing.B) {
	runExperiment(b, func(c bench.Config) (*bench.VaryKResult, error) { return bench.VaryK(c) })
}

func BenchmarkFig16CDF(b *testing.B) {
	runExperiment(b, func(c bench.Config) (*bench.Fig16Result, error) { return bench.Fig16(c) })
}

func BenchmarkFig17Techniques(b *testing.B) {
	runExperiment(b, func(c bench.Config) (*bench.Fig17Result, error) { return bench.Fig17(c) })
}

func BenchmarkFig18Cardinality(b *testing.B) {
	runExperiment(b, func(c bench.Config) (*bench.Fig18Result, error) { return bench.Fig18(c) })
}

// --- Micro-benchmarks of the individual techniques -----------------------

// benchGraphAndQuery builds a standard heavy workload: an ep-like social
// graph and one high-degree query pair.
func benchGraphAndQuery(b *testing.B, k int) (*pathenum.Graph, core.Query) {
	b.Helper()
	d, err := gen.Lookup("ep")
	if err != nil {
		b.Fatal(err)
	}
	g := d.Scale(0.25).Build()
	qs, err := workload.Generate(g, workload.Options{Setting: workload.HighHigh, Count: 1, Seed: 9})
	if err != nil {
		b.Fatal(err)
	}
	return g, core.Query{S: qs[0].S, T: qs[0].T, K: k}
}

func BenchmarkIndexBuild(b *testing.B) {
	g, q := benchGraphAndQuery(b, 6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildIndex(g, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPreliminaryEstimate(b *testing.B) {
	g, q := benchGraphAndQuery(b, 6)
	ix, err := core.BuildIndex(g, q)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.PreliminaryEstimate(ix)
	}
}

func BenchmarkFullEstimate(b *testing.B) {
	g, q := benchGraphAndQuery(b, 6)
	ix, err := core.BuildIndex(g, q)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.FullEstimate(ix)
	}
}

func BenchmarkEnumerateDFS(b *testing.B) {
	g, q := benchGraphAndQuery(b, 4)
	ix, err := core.BuildIndex(g, q)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var ctr core.Counters
		core.EnumerateDFS(ix, core.RunControl{}, &ctr)
	}
}

func BenchmarkEnumerateJoin(b *testing.B) {
	g, q := benchGraphAndQuery(b, 4)
	ix, err := core.BuildIndex(g, q)
	if err != nil {
		b.Fatal(err)
	}
	est := core.FullEstimate(ix)
	if est.Cut == 0 {
		b.Skip("no interior cut")
	}
	// Resolve the build side from the estimate already in hand so the
	// timed loop measures the join, not a per-iteration estimator DP.
	side := est.BuildSideAt(est.Cut)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var ctr core.Counters
		if _, err := core.EnumerateJoinSide(ix, est.Cut, side, core.RunControl{}, &ctr, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations ------------------------------------------------------------

// BenchmarkAblationAlgorithms compares the full algorithm set on one heavy
// query, the per-query view behind Table 3.
func BenchmarkAblationAlgorithms(b *testing.B) {
	g, q := benchGraphAndQuery(b, 4)
	algos := map[string]func() (uint64, error){
		"IDX-DFS": func() (uint64, error) {
			ix, err := core.BuildIndex(g, q)
			if err != nil {
				return 0, err
			}
			var ctr core.Counters
			core.EnumerateDFS(ix, core.RunControl{}, &ctr)
			return ctr.Results, nil
		},
		"PathEnum": func() (uint64, error) {
			res, err := core.Run(g, q, core.Options{})
			if err != nil {
				return 0, err
			}
			return res.Counters.Results, nil
		},
		"BC-DFS": func() (uint64, error) {
			a := &baseline.BCDFS{}
			if err := a.Prepare(g, q); err != nil {
				return 0, err
			}
			var ctr core.Counters
			if _, err := a.Enumerate(core.RunControl{}, &ctr); err != nil {
				return 0, err
			}
			return ctr.Results, nil
		},
		"DFS-BASE": func() (uint64, error) {
			a := &baseline.GenericDFS{}
			if err := a.Prepare(g, q); err != nil {
				return 0, err
			}
			var ctr core.Counters
			if _, err := a.Enumerate(core.RunControl{}, &ctr); err != nil {
				return 0, err
			}
			return ctr.Results, nil
		},
	}
	for name, fn := range algos {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := fn(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationTau studies the optimizer threshold: tau=0 always pays
// for the full estimator, huge tau never does (DESIGN.md §5 ablation).
func BenchmarkAblationTau(b *testing.B) {
	g, q := benchGraphAndQuery(b, 5)
	for _, tc := range []struct {
		name string
		tau  float64
	}{
		{"tau=1", 1},
		{"tau=default", core.DefaultTau},
		{"tau=1e18", 1e18},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Run(g, q, core.Options{Tau: tc.tau}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationCutPosition sweeps the join cut, the choice Algorithm 5
// optimizes.
func BenchmarkAblationCutPosition(b *testing.B) {
	g, q := benchGraphAndQuery(b, 4)
	ix, err := core.BuildIndex(g, q)
	if err != nil {
		b.Fatal(err)
	}
	est := core.FullEstimate(ix) // resolve sides outside the timed loops
	for cut := 1; cut < q.K; cut++ {
		side := est.BuildSideAt(cut)
		b.Run(string(rune('0'+cut)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var ctr core.Counters
				if _, err := core.EnumerateJoinSide(ix, cut, side, core.RunControl{}, &ctr, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStopperOverhead quantifies the cancellation-check cost on one
// fixed heavy enumeration. The unbounded run carries a nil ShouldStop hook
// (no polling at all); the timeout and context runs pay the amortized
// ctx.Err/time.Now check every ~1024 expansion events — the delta between
// the three is the whole cost of the cancellation story.
func BenchmarkStopperOverhead(b *testing.B) {
	g, q := benchGraphAndQuery(b, 4)
	b.Run("unbounded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Run(g, q, core.Options{Method: core.MethodDFS}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("timeout", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.Run(g, q, core.Options{Method: core.MethodDFS, Timeout: time.Hour}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("context", func(b *testing.B) {
		ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
		defer cancel()
		for i := 0; i < b.N; i++ {
			if _, err := core.RunContext(ctx, g, q, core.Options{Method: core.MethodDFS}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPublicAPI measures the end-to-end public entry point.
func BenchmarkPublicAPI(b *testing.B) {
	g, q := benchGraphAndQuery(b, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pathenum.Enumerate(g, q, pathenum.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
