// Benchmarks for the cross-batch frontier cache: a repeat shared-hub
// batch against a cold engine vs a warm one, plus the single-query hot
// path. CI uploads these (BENCH_cache.json) alongside the batch numbers
// for the perf trajectory.
package pathenum

import (
	"context"
	"testing"

	"pathenum/internal/gen"
)

// BenchmarkCacheRepeatHubBatch measures the cache's reason to exist: the
// same shared-hub batch executed again and again (a popular account
// screened in every fraud batch). The warm sub-benchmark pins the
// acceptance property — zero BFS passes run — via the stats counters.
func BenchmarkCacheRepeatHubBatch(b *testing.B) {
	g := gen.BarabasiAlbert(20000, 4, 42)
	queries := repeatHubBatch(g, 0, 64, 4, 7)
	ctx := context.Background()

	b.Run("cold", func(b *testing.B) {
		// A fresh engine per iteration: every batch plans, builds and
		// deposits its frontiers.
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			e, err := NewEngine(g, EngineConfig{Workers: 4, FrontierCache: 2 * len(queries), CacheAdmitDegree: 1})
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			_, _, stats := e.ExecuteBatch(ctx, queries, Options{})
			if stats.BFSPassesRun == 0 {
				b.Fatal("cold batch cannot run zero BFS passes")
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		e, err := NewEngine(g, EngineConfig{Workers: 4, FrontierCache: 2 * len(queries), CacheAdmitDegree: 1})
		if err != nil {
			b.Fatal(err)
		}
		if _, errs, _ := e.ExecuteBatch(ctx, queries, Options{}); errs[0] != nil {
			b.Fatal(errs[0])
		}
		var run, hits int
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, _, stats := e.ExecuteBatch(ctx, queries, Options{})
			run, hits = stats.BFSPassesRun, stats.FrontierCacheHits
		}
		b.ReportMetric(float64(run), "bfs-passes-run")
		b.ReportMetric(float64(hits), "cache-hits")
		if run != 0 {
			b.Fatalf("warm repeat batch ran %d BFS passes, want 0", run)
		}
	})
}

// BenchmarkCacheSingleQueryWarm measures the single-query path against a
// warmed cache: ExecuteWith serves the hub side from the cache and runs
// one scratch BFS instead of two.
func BenchmarkCacheSingleQueryWarm(b *testing.B) {
	g := gen.BarabasiAlbert(20000, 4, 42)
	queries := repeatHubBatch(g, 0, 64, 4, 7)
	ctx := context.Background()

	cold, err := NewEngine(g, EngineConfig{Workers: 4, FrontierCache: -1})
	if err != nil {
		b.Fatal(err)
	}
	warm, err := NewEngine(g, EngineConfig{Workers: 4, FrontierCache: 2 * len(queries), CacheAdmitDegree: 1})
	if err != nil {
		b.Fatal(err)
	}
	if _, errs, _ := warm.ExecuteBatch(ctx, queries, Options{}); errs[0] != nil {
		b.Fatal(errs[0])
	}
	q := queries[0]

	b.Run("nocache", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := cold.ExecuteWith(ctx, q, Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		before := warm.CacheStats().Hits
		for i := 0; i < b.N; i++ {
			if _, err := warm.ExecuteWith(ctx, q, Options{}); err != nil {
				b.Fatal(err)
			}
		}
		if warm.CacheStats().Hits == before {
			b.Fatal("warm single query never hit the cache")
		}
	})
}
