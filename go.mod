module pathenum

go 1.23
