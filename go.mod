module pathenum

go 1.22
