package pathenum

import (
	"context"
	"iter"
	"sync"
	"time"

	"pathenum/internal/batch"
	"pathenum/internal/core"
)

// Path is one result path, s to t inclusive. Paths delivered by a stream
// are fresh slices owned by the consumer — unlike the Options.Emit
// callback's reused buffer, a streamed path stays valid after the
// iteration advances.
type Path = []VertexID

// Request is the streaming-first query surface: one value bundling the
// query endpoints, the per-request options and the constraint extensions
// that the older entry points spread across (Query, Options, Constraints)
// parameter triples. The zero value of every field is "inherit or off";
// a Request is ready as soon as S, T and K are set.
//
//	for path, err := range engine.Stream(ctx, pathenum.Request{S: s, T: t, K: 6}) {
//		if err != nil { ... }
//		send(path)
//	}
type Request struct {
	// S, T, K are the query q(s,t,k): enumerate all simple paths from S
	// to T with at most K edges.
	S VertexID
	T VertexID
	K int

	// Method selects the algorithm; Auto (the zero value) enables the
	// cost-based optimizer. Ignored by constrained requests, which always
	// run the constrained index DFS.
	Method Method
	// Tau overrides the optimizer's preliminary-estimate threshold
	// (0 = DefaultTau).
	Tau float64
	// Limit stops enumeration after this many results when positive.
	Limit uint64
	// Timeout bounds the whole run when positive; the stream ends early
	// with the partial delivery (no error — see Engine.Stream).
	Timeout time.Duration
	// Predicate restricts the query to edges satisfying it; nil admits
	// all edges. PredicateToken declares its identity for frontier
	// sharing and caching (see PredicateToken); a non-nil Predicate with
	// a zero token is opaque — executed correctly, excluded from reuse.
	Predicate      EdgePredicate
	PredicateToken PredicateToken
	// Oracle overrides the engine/default distance oracle for this
	// request.
	Oracle DistanceOracle
	// Parallelism fans this one query's enumeration phase across up to
	// this many goroutines (0 or 1 = sequential): the join's probe walks
	// or the DFS's first-hop subtrees shard across workers and merge back
	// into the single delivery stream, with Limit enforced at the merge —
	// n results means n total, not n per shard — and identical counters
	// on completed runs. The engine caps the value at its worker count;
	// constrained requests ignore it (the constrained DFS is sequential).
	// See Options.Parallelism.
	Parallelism int

	// Accumulate and Sequence are the Appendix-E constraint extensions.
	// Setting either routes the request through the constrained index
	// DFS (the pipeline behind EnumerateConstrained); Predicate applies
	// there too.
	Accumulate *Accumulator
	Sequence   *SequenceConstraint

	// Buffer selects the stream delivery mode. 0 (the default) streams
	// synchronously: enumeration runs in the consumer's goroutine and is
	// suspended between pulls, so an unhurried consumer applies perfect
	// backpressure and pays no buffering. A positive Buffer lets a
	// producer goroutine run up to Buffer paths ahead — bounded
	// pipelining for consumers with per-item latency such as a network
	// write.
	Buffer int
	// OnResult, when non-nil, receives the final Result (counts, plan,
	// timings, Completed) exactly once after enumeration finishes — the
	// streaming replacement for the return value of ExecuteWith. With
	// Buffer > 0 it may be called from the producer goroutine.
	OnResult func(*Result)
}

// NewRequest makes a Request for q with every option inheriting.
func NewRequest(q Query) Request { return Request{S: q.S, T: q.T, K: q.K} }

// Query returns the request's (s, t, k) triple.
func (r Request) Query() Query { return Query{S: r.S, T: r.T, K: r.K} }

// constrained reports whether the request needs the constrained DFS
// pipeline.
func (r Request) constrained() bool { return r.Accumulate != nil || r.Sequence != nil }

// options lowers the request to the per-call option overrides understood
// by the executor spine (Emit stays nil: the stream's yield is the emit).
func (r Request) options() Options {
	return Options{
		Method:         r.Method,
		Tau:            r.Tau,
		Limit:          r.Limit,
		Timeout:        r.Timeout,
		Predicate:      r.Predicate,
		PredicateToken: r.PredicateToken,
		Oracle:         r.Oracle,
		Parallelism:    r.Parallelism,
	}
}

// streamConfig lowers the request's delivery knobs.
func (r Request) streamConfig() core.StreamConfig {
	return core.StreamConfig{Buffer: r.Buffer, OnResult: r.OnResult}
}

// Stream executes req on g and delivers result paths incrementally as a
// Go 1.23 range-over-func iterator — the engine-less counterpart of
// Engine.Stream (which adds session reuse, the frontier cache and the
// engine oracle; prefer it for repeated queries). See Engine.Stream for
// the iteration contract.
func Stream(ctx context.Context, g *Graph, req Request) iter.Seq2[Path, error] {
	// Building the stream runs nothing (both constructors are lazy), so
	// it happens here rather than inside the iterator: under iter.Pull2
	// the iterator runs the whole enumeration on a fresh coroutine stack
	// that grows by copying, and every local this frame would pin there
	// makes that growth more likely.
	if req.constrained() {
		cons := Constraints{Predicate: req.Predicate, Accumulate: req.Accumulate, Sequence: req.Sequence}
		return core.StreamConstrained(ctx, g, req.Query(), cons, req.options(), req.streamConfig())
	}
	return core.NewSession(g, nil).StreamWith(ctx, req.Query(), req.options(), req.streamConfig())
}

// Stream executes one query and delivers its result paths incrementally:
// the first paths of a heavy query reach the consumer in milliseconds,
// while enumeration of the rest is still running — the paper's real-time
// claim surfaced as an API. The iterator is lazy (nothing runs until the
// first pull) and single-use.
//
// Iteration contract:
//
//   - Each iteration yields one Path (a fresh slice the consumer owns) or
//     a terminal error — an invalid query, a stale oracle, a bad
//     constraint — after which the stream ends. A successful stream
//     yields no error at all; there is no trailing sentinel.
//   - Breaking out of the loop stops the enumeration immediately and
//     releases the session; so does cancelling ctx or exceeding
//     req.Timeout mid-iteration, which end the stream early *without* an
//     error — exactly like EnumerateContext, the partial delivery is the
//     answer, and req.OnResult reports Completed == false. A context
//     already cancelled before the first pull never starts the run and
//     surfaces its error as the terminal yield instead (mirroring
//     RunContext's entry check).
//   - req.OnResult, when set, receives the final Result (counts, plan,
//     timings) exactly once after enumeration finishes — the streaming
//     replacement for the return value of ExecuteWith. With Buffer > 0
//     it may be called from the producer goroutine.
//
// The request merges with the engine defaults field-by-field exactly as
// ExecuteWith merges Options (see MergeOptions); the engine's default
// Emit does not apply to streams. Streams consult the frontier cache and
// deposit behind the same admission check as ExecuteWith, and run on a
// pooled session captured for the duration of the iteration. A stream
// captures the serving graph at its first pull and finishes on it even if
// Insert or UpdateGraph advances the engine mid-flight.
func (e *Engine) Stream(ctx context.Context, req Request) iter.Seq2[Path, error] {
	return func(yield func(Path, error) bool) {
		// This frame hosts the whole enumeration — under iter.Pull2 that
		// is a fresh coroutine stack that grows by copying, so the
		// per-request setup (and its several hundred bytes of Options/
		// StreamConfig locals) lives out of line in startStream and only
		// the lease comes back.
		seq, lease := e.startStream(ctx, req)
		defer lease.end()
		for p, err := range seq {
			if err != nil {
				// Terminal errors end the stream without a Result, so the
				// Observer seam never fires for them; count them here.
				e.metrics.errors[opStream].Inc()
			}
			if !yield(p, err) {
				return
			}
		}
	}
}

// streamLease is what an engine stream must give back when its iteration
// ends: the load-tracking slot and, for unconstrained runs, the pooled
// session. A value, not a deferred closure pair, so ending a stream
// allocates nothing.
type streamLease struct {
	release func()
	pool    *sync.Pool
	sess    *core.Session
}

func (l *streamLease) end() {
	if l.pool != nil {
		l.pool.Put(l.sess)
	}
	l.release()
}

// startStream performs an engine stream's first-pull setup: the metrics
// entry, the option merge, load tracking, and frontier/session
// acquisition. Called lazily from the iterator (nothing may run before
// the first pull), but kept out of its frame — see Engine.Stream.
func (e *Engine) startStream(ctx context.Context, req Request) (iter.Seq2[Path, error], streamLease) {
	e.metrics.requests[opStream].Inc()
	start := time.Now()
	merged := e.MergeOptions(req.options())
	merged.Emit = nil // the yield is the emit; a default Emit must not fire
	sc := req.streamConfig()
	// The finish record rides the core Observer seam: a persistent
	// hook (no per-request closure) fired exactly once after
	// enumeration settles, abandoned streams included, with TTFP and
	// total anchored at Began so they cover the engine's own dispatch.
	sc.Began = start
	sc.Observer = &e.metrics.streamObs
	par := merged.Parallelism
	if req.constrained() {
		par = 0 // the constrained DFS runs sequentially
	}
	lease := streamLease{release: e.track(par)}
	if req.constrained() {
		cons := Constraints{Predicate: merged.Predicate, Accumulate: req.Accumulate, Sequence: req.Sequence}
		return core.StreamConstrained(ctx, e.Graph(), req.Query(), cons, merged, sc), lease
	}
	g, oracle, pool := e.view()
	sc.Fwd, sc.Bwd = e.frontiers(ctx, g, oracle, req.Query(), merged)
	lease.pool = pool
	lease.sess = pool.Get().(*core.Session)
	return lease.sess.StreamWith(ctx, req.Query(), merged, sc), lease
}

// BatchItem is one delivery of a streaming batch execution: the result (or
// error) of the query at original batch position Index, flushed as soon as
// its group completes. The final item of a stream that ran to the end
// carries the batch statistics instead (Index == -1, Stats != nil); a
// stream abandoned early never delivers it.
type BatchItem struct {
	// Index is the original batch position, or -1 for the final stats
	// item.
	Index int
	// Result is the query's result; duplicate queries share one pointer
	// (read-only), exactly as in ExecuteBatch.
	Result *Result
	// Err is the query's validation or cancellation error; Result is nil
	// when it is set.
	Err error
	// Stats is non-nil only on the final item: the full BatchStats of the
	// execution.
	Stats *BatchStats
}

// StreamBatch is the streaming variant of ExecuteBatch: the same
// shared-computation planning and fail-fast cancellation, but per-query
// results are delivered incrementally as their groups complete instead of
// buffered into one slice — a heavy batch starts answering after its
// first group, not after its slowest. Items arrive in completion order,
// not input order; Index maps each back to its batch position, invalid
// queries are delivered first, and duplicates are fanned out as their
// unique execution settles. Breaking out of the loop cancels the
// remaining work (queries not yet started are abandoned, in-flight
// enumerations stop early) and waits for the scheduler to wind down, so
// sessions are never leaked. The final item carries the BatchStats — see
// BatchItem.
func (e *Engine) StreamBatch(ctx context.Context, queries []Query, opts Options) iter.Seq[BatchItem] {
	return func(yield func(BatchItem) bool) {
		e.metrics.requests[opStreamBatch].Inc()
		e.metrics.batchQueries.Add(uint64(len(queries)))
		start := time.Now()
		// Duration covers first pull to iterator exit, abandoned streams
		// included — the consumer's drain is part of a streaming batch.
		defer func() {
			e.metrics.latency[opStreamBatch].Observe(time.Since(start))
		}()
		g, _, pool := e.view()
		merged := e.MergeOptions(opts)
		plan := batch.NewPlanner(g).Plan(queries)
		for i, err := range plan.Invalid() {
			if err != nil && !yield(BatchItem{Index: i, Err: err}) {
				return
			}
		}

		ctx, cancel := context.WithCancel(ctx)
		defer cancel()
		type settled struct {
			u   int
			res *Result
			err error
		}
		// Full-size buffer: the scheduler never blocks on a slow consumer,
		// so a stalled client cannot hold worker slots hostage — the
		// consumer-side flush is the only thing that lags.
		ch := make(chan settled, len(plan.Unique))
		sch := e.newScheduler(g, pool, merged)
		sch.OnResult = func(u int, res *core.Result, err error) {
			ch <- settled{u: u, res: res, err: err}
		}
		var stats *BatchStats
		go func() {
			defer close(ch)
			_, _, stats = sch.Execute(ctx, g, plan, merged)
		}()
		// On early exit, cancel the execution and drain until the
		// scheduler has fully wound down (close of ch) before returning.
		defer func() {
			cancel()
			for range ch { //nolint:revive // drain until the scheduler exits
			}
		}()
		for s := range ch {
			e.metrics.observeRun(s.res) // once per unique execution, nil-safe
			for _, i := range plan.Slots[s.u] {
				if !yield(BatchItem{Index: i, Result: s.res, Err: s.err}) {
					return
				}
			}
		}
		// stats was written before close(ch); the range observing the
		// close orders the read after it.
		yield(BatchItem{Index: -1, Stats: stats})
	}
}
