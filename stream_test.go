package pathenum

import (
	"context"
	"errors"
	"iter"
	"sort"
	"strings"
	"testing"

	"pathenum/internal/core"
	"pathenum/internal/gen"
)

// layeredTestGraph builds s -> (width full layers) -> t with width^depth
// simple paths — the large-result shape where streaming matters.
func layeredTestGraph(t *testing.T, width, depth int) (*Graph, Query) {
	t.Helper()
	n := 2 + width*depth
	var edges []Edge
	layer := func(l, i int) VertexID { return VertexID(1 + l*width + i) }
	for i := 0; i < width; i++ {
		edges = append(edges, Edge{From: 0, To: layer(0, i)})
		edges = append(edges, Edge{From: layer(depth-1, i), To: VertexID(n - 1)})
	}
	for l := 0; l+1 < depth; l++ {
		for i := 0; i < width; i++ {
			for j := 0; j < width; j++ {
				edges = append(edges, Edge{From: layer(l, i), To: layer(l+1, j)})
			}
		}
	}
	g, err := NewGraph(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g, Query{S: 0, T: VertexID(n - 1), K: depth + 1}
}

func keyOfPath(p Path) string {
	var sb strings.Builder
	for i, v := range p {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(itoaInt(int(v)))
	}
	return sb.String()
}

// TestEngineStreamMatchesEnumerate: the streamed path set is identical to
// the legacy Enumerate Emit delivery and to Paths, across random queries —
// the redesign is additive, not a behavior change.
func TestEngineStreamMatchesEnumerate(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 61)
	e, err := NewEngine(g, EngineConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	queries := repeatHubBatch(g, 0, 6, 4, 19)
	for _, q := range queries {
		var want []string
		if _, err := Enumerate(g, q, Options{Emit: func(p []VertexID) bool {
			want = append(want, keyOfPath(p))
			return true
		}}); err != nil {
			t.Fatal(err)
		}
		sort.Strings(want)

		var got []string
		for p, serr := range e.Stream(context.Background(), NewRequest(q)) {
			if serr != nil {
				t.Fatal(serr)
			}
			got = append(got, keyOfPath(p))
		}
		sort.Strings(got)
		if len(got) != len(want) {
			t.Fatalf("%v: stream %d paths, Enumerate %d", q, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%v: path %d: stream %q, Enumerate %q", q, i, got[i], want[i])
			}
		}

		paths, err := Paths(g, q, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(paths) != len(want) {
			t.Fatalf("%v: Paths %d, Enumerate %d", q, len(paths), len(want))
		}
	}
}

// TestEngineStreamFirstPathBeforeCompletion is the acceptance criterion:
// a blocked consumer (unbuffered pull) observes the first path of a
// large-result query before enumeration completes.
func TestEngineStreamFirstPathBeforeCompletion(t *testing.T) {
	g, q := layeredTestGraph(t, 4, 4) // 256 paths
	e, err := NewEngine(g, EngineConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	req := NewRequest(q)
	done := false
	req.OnResult = func(*Result) { done = true }
	next, stop := iter.Pull2(e.Stream(context.Background(), req))
	defer stop()
	p, serr, ok := next()
	if !ok || serr != nil {
		t.Fatalf("first pull: ok=%v err=%v", ok, serr)
	}
	if len(p) != q.K+1 || p[0] != q.S || p[len(p)-1] != q.T {
		t.Fatalf("first path %v malformed", p)
	}
	if done {
		t.Fatal("enumeration completed before the consumer pulled more than one path")
	}
	count := 1
	for {
		_, serr, ok := next()
		if !ok {
			break
		}
		if serr != nil {
			t.Fatal(serr)
		}
		count++
	}
	if count != 256 || !done {
		t.Fatalf("drained %d paths (done=%v), want 256", count, done)
	}
}

// TestEngineStreamBufferedAndLimit: the buffered mode and Limit compose
// through the public Request surface.
func TestEngineStreamBufferedAndLimit(t *testing.T) {
	g, q := layeredTestGraph(t, 4, 3)
	e, err := NewEngine(g, EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	req := NewRequest(q)
	req.Buffer = 8
	req.Limit = 10
	var res *Result
	req.OnResult = func(r *Result) { res = r }
	got := 0
	for _, serr := range e.Stream(context.Background(), req) {
		if serr != nil {
			t.Fatal(serr)
		}
		got++
	}
	if got != 10 {
		t.Fatalf("streamed %d paths, want limit 10", got)
	}
	if res == nil || res.Completed {
		t.Fatalf("limit-stopped stream: res=%+v, want partial result", res)
	}
}

// TestEngineStreamError: an invalid request yields its error through the
// stream, once.
func TestEngineStreamError(t *testing.T) {
	g, _ := layeredTestGraph(t, 2, 2)
	e, err := NewEngine(g, EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, serr := range e.Stream(context.Background(), Request{S: 1, T: 1, K: 3}) {
		n++
		if serr == nil {
			t.Fatal("invalid request streamed a path")
		}
		if !errors.Is(serr, core.ErrSameEndpoints) {
			t.Fatalf("err = %v, want ErrSameEndpoints", serr)
		}
	}
	if n != 1 {
		t.Fatalf("%d iterations, want exactly one error", n)
	}
}

// TestEngineStreamConstrained: a Request with constraints routes through
// the constrained DFS and matches EnumerateConstrained.
func TestEngineStreamConstrained(t *testing.T) {
	g, q := layeredTestGraph(t, 3, 3)
	e, err := NewEngine(g, EngineConfig{})
	if err != nil {
		t.Fatal(err)
	}
	pred := func(u, v VertexID) bool { return !(u == 0 && v == 1) }
	cons := Constraints{Predicate: pred}
	var want []string
	if _, err := EnumerateConstrained(g, q, cons, RunControl{Emit: func(p []VertexID) bool {
		want = append(want, keyOfPath(p))
		return true
	}}); err != nil {
		t.Fatal(err)
	}
	sort.Strings(want)

	req := NewRequest(q)
	req.Predicate = pred
	req.Sequence = nil
	req.Accumulate = &Accumulator{
		Value:    func(from, to VertexID) float64 { return 0 },
		Combine:  func(a, b float64) float64 { return a + b },
		Identity: 0,
		Accept:   func(total float64) bool { return true },
	}
	var got []string
	for p, serr := range e.Stream(context.Background(), req) {
		if serr != nil {
			t.Fatal(serr)
		}
		got = append(got, keyOfPath(p))
	}
	sort.Strings(got)
	if len(got) != len(want) {
		t.Fatalf("constrained stream %d paths, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("path %d: %q vs %q", i, got[i], want[i])
		}
	}
}

// TestPackageStream: the engine-less Stream mirrors Paths, including the
// constrained route.
func TestPackageStream(t *testing.T) {
	g, q := layeredTestGraph(t, 3, 2)
	want, err := Paths(g, q, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := 0
	for p, serr := range Stream(context.Background(), g, NewRequest(q)) {
		if serr != nil {
			t.Fatal(serr)
		}
		if len(p) == 0 {
			t.Fatal("empty path")
		}
		got++
	}
	if got != len(want) {
		t.Fatalf("package stream %d paths, want %d", got, len(want))
	}
}

// TestStreamBatchMatchesExecuteBatch: every batch position is delivered
// exactly once with the same counts as the materializing ExecuteBatch,
// invalid positions carry errors, and the final item carries the stats.
func TestStreamBatchMatchesExecuteBatch(t *testing.T) {
	g := gen.BarabasiAlbert(300, 3, 67)
	e, err := NewEngine(g, EngineConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	queries := repeatHubBatch(g, 0, 12, 4, 23)
	queries = append(queries, queries[0])              // duplicate
	queries = append(queries, Query{S: 5, T: 5, K: 3}) // invalid

	wantRes, wantErrs, _ := e.ExecuteBatch(context.Background(), queries, Options{})

	seen := make(map[int]int, len(queries))
	var stats *BatchStats
	sawStatsLast := false
	for item := range e.StreamBatch(context.Background(), queries, Options{}) {
		if item.Index == -1 {
			if item.Stats == nil {
				t.Fatal("final item without stats")
			}
			stats = item.Stats
			sawStatsLast = true
			continue
		}
		if sawStatsLast {
			t.Fatal("stats item was not last")
		}
		seen[item.Index]++
		if wantErrs[item.Index] != nil {
			if item.Err == nil {
				t.Fatalf("index %d: want error %v, got result", item.Index, wantErrs[item.Index])
			}
			continue
		}
		if item.Err != nil {
			t.Fatalf("index %d: %v", item.Index, item.Err)
		}
		if item.Result.Counters.Results != wantRes[item.Index].Counters.Results {
			t.Fatalf("index %d: streamed count %d, batch count %d",
				item.Index, item.Result.Counters.Results, wantRes[item.Index].Counters.Results)
		}
	}
	if stats == nil {
		t.Fatal("stream ended without a stats item")
	}
	if len(seen) != len(queries) {
		t.Fatalf("delivered %d of %d positions", len(seen), len(queries))
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("position %d delivered %d times", i, n)
		}
	}
	if stats.Queries != len(queries) || stats.Deduped == 0 || stats.Invalid != 1 {
		t.Fatalf("stats = %+v, want %d queries, >=1 deduped, 1 invalid", stats, len(queries))
	}
}

// TestStreamBatchEarlyBreak: abandoning the stream cancels the remaining
// work without leaking sessions — the engine keeps serving afterwards.
func TestStreamBatchEarlyBreak(t *testing.T) {
	g := gen.BarabasiAlbert(300, 3, 71)
	e, err := NewEngine(g, EngineConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	queries := repeatHubBatch(g, 0, 24, 4, 29)
	got := 0
	for item := range e.StreamBatch(context.Background(), queries, Options{}) {
		if item.Index >= 0 && item.Err == nil {
			got++
		}
		if got == 3 {
			break
		}
	}
	if got != 3 {
		t.Fatalf("consumed %d items before break, want 3", got)
	}
	// The scheduler has fully wound down; the engine serves normally.
	if _, err := e.ExecuteWith(context.Background(), queries[0], Options{}); err != nil {
		t.Fatalf("engine unusable after abandoned batch stream: %v", err)
	}
}

// TestStreamBatchCancellation: a cancelled context fail-fasts the stream —
// every position is still delivered (with ctx errors for the abandoned
// ones) and the stats item closes the stream.
func TestStreamBatchCancellation(t *testing.T) {
	g := gen.BarabasiAlbert(300, 3, 73)
	e, err := NewEngine(g, EngineConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	queries := repeatHubBatch(g, 0, 16, 5, 31)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	delivered, ctxErrs := 0, 0
	sawStats := false
	for item := range e.StreamBatch(ctx, queries, Options{}) {
		if item.Index == -1 {
			sawStats = true
			continue
		}
		delivered++
		if errors.Is(item.Err, context.Canceled) {
			ctxErrs++
		}
		cancel() // cancel after the first delivery
	}
	if delivered != len(queries) {
		t.Fatalf("delivered %d of %d positions", delivered, len(queries))
	}
	if ctxErrs == 0 {
		t.Fatal("no position carried the cancellation error")
	}
	if !sawStats {
		t.Fatal("cancelled stream must still close with the stats item")
	}
}
