package pathenum

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"pathenum/internal/gen"
)

// repeatHubBatch is the workload the frontier cache exists for: every
// batch queries the same high-degree hub, half as the source and half as
// the target (vertex 0 of the Barabási–Albert generator attracts edges,
// so the target side is where most paths live).
func repeatHubBatch(g *Graph, hub VertexID, count, k int, seed int64) []Query {
	rng := rand.New(rand.NewSource(seed))
	n := g.NumVertices()
	queries := make([]Query, 0, count)
	for len(queries) < count {
		v := VertexID(rng.Intn(n))
		// Skip partners isolated in the direction their side's BFS needs:
		// a zero-degree endpoint is refused by any deposit admission
		// threshold, which would break the warm-zero-pass pins.
		if v == hub || g.OutDegree(v) == 0 || g.InDegree(v) == 0 {
			continue
		}
		if len(queries)%2 == 0 {
			queries = append(queries, Query{S: hub, T: v, K: k})
		} else {
			queries = append(queries, Query{S: v, T: hub, K: k})
		}
	}
	return queries
}

// TestExecuteBatchWarmCacheZeroBFS is the acceptance criterion: the second
// execution of a repeat-hub batch must be served entirely from the
// frontier cache — zero BFS passes run, visible through the stats
// counters — while reporting the same per-query counts.
func TestExecuteBatchWarmCacheZeroBFS(t *testing.T) {
	g := gen.BarabasiAlbert(400, 3, 9)
	// CacheAdmitDegree 1 admits the low-degree partner endpoints too —
	// this test pins full warm service, not admission policy (covered by
	// TestBatchDepositAdmission).
	e, err := NewEngine(g, EngineConfig{Workers: 4, CacheAdmitDegree: 1})
	if err != nil {
		t.Fatal(err)
	}
	queries := repeatHubBatch(g, 0, 24, 4, 5)

	cold, coldErrs, coldStats := e.ExecuteBatch(context.Background(), queries, Options{})
	for i := range queries {
		if coldErrs[i] != nil {
			t.Fatal(coldErrs[i])
		}
	}
	if coldStats.BFSPassesRun == 0 {
		t.Fatal("cold batch cannot run zero BFS passes")
	}

	warm, warmErrs, warmStats := e.ExecuteBatch(context.Background(), queries, Options{})
	for i := range queries {
		if warmErrs[i] != nil {
			t.Fatal(warmErrs[i])
		}
		if warm[i].Counters.Results != cold[i].Counters.Results {
			t.Fatalf("%v: warm count %d != cold %d", queries[i], warm[i].Counters.Results, cold[i].Counters.Results)
		}
	}
	if warmStats.BFSPassesRun != 0 {
		t.Fatalf("warm repeat batch ran %d BFS passes, want 0 (stats: %+v)", warmStats.BFSPassesRun, warmStats)
	}
	if warmStats.FrontierCacheHits == 0 || warmStats.FrontierCacheMisses != 0 {
		t.Fatalf("warm cache counters: hits=%d misses=%d", warmStats.FrontierCacheHits, warmStats.FrontierCacheMisses)
	}
	if cs := e.CacheStats(); cs.Hits == 0 || cs.Entries == 0 {
		t.Fatalf("engine cache stats: %+v", cs)
	}
}

// collectBatchPaths materializes the full sorted path set of a batch via
// the concurrent Emit hook.
func collectBatchPaths(t *testing.T, e *Engine, queries []Query) []string {
	t.Helper()
	var mu sync.Mutex
	var paths []string
	opts := Options{Emit: func(p []VertexID) bool {
		var b strings.Builder
		for i, v := range p {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(itoaInt(int(v)))
		}
		mu.Lock()
		paths = append(paths, b.String())
		mu.Unlock()
		return true
	}}
	_, errs, _ := e.ExecuteBatch(context.Background(), queries, opts)
	for i := range queries {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
	}
	sort.Strings(paths)
	return paths
}

func itoaInt(v int) string {
	if v == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// TestBatchCacheHitPathSetEquality: the paths emitted by a cache-hit
// execution must be exactly those of a cold build and of a cache-disabled
// engine (the satellite correctness check: relaxation soundness end to
// end).
func TestBatchCacheHitPathSetEquality(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 17)
	queries := repeatHubBatch(g, 0, 12, 4, 3)

	noCache, err := NewEngine(g, EngineConfig{Workers: 3, FrontierCache: -1})
	if err != nil {
		t.Fatal(err)
	}
	cached, err := NewEngine(g, EngineConfig{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}

	want := collectBatchPaths(t, noCache, queries)
	cold := collectBatchPaths(t, cached, queries)
	warm := collectBatchPaths(t, cached, queries)
	if st := cached.CacheStats(); st.Hits == 0 {
		t.Fatalf("warm pass did not hit the cache: %+v", st)
	}
	if len(want) == 0 {
		t.Fatal("workload produced no paths; test is vacuous")
	}
	for name, got := range map[string][]string{"cold": cold, "warm": warm} {
		if len(got) != len(want) {
			t.Fatalf("%s path count %d != uncached %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s path[%d] = %q, want %q", name, i, got[i], want[i])
			}
		}
	}
}

// TestBatchTwoSidedPathSetEquality: a hub-to-hub grid batch — every query
// sharing both its source and its target with other queries — must emit
// exactly the paths of a cache-disabled engine, cold and warm, and the
// warm repeat must run zero BFS passes.
func TestBatchTwoSidedPathSetEquality(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 61)
	var queries []Query
	for s := VertexID(0); s < 4; s++ {
		for tgt := VertexID(4); tgt < 8; tgt++ {
			queries = append(queries, Query{S: s, T: tgt, K: 4})
		}
	}

	noCache, err := NewEngine(g, EngineConfig{Workers: 3, FrontierCache: -1})
	if err != nil {
		t.Fatal(err)
	}
	cached, err := NewEngine(g, EngineConfig{Workers: 3, CacheAdmitDegree: 1})
	if err != nil {
		t.Fatal(err)
	}

	want := collectBatchPaths(t, noCache, queries)
	cold := collectBatchPaths(t, cached, queries)
	warm := collectBatchPaths(t, cached, queries)
	if len(want) == 0 {
		t.Fatal("grid workload produced no paths; test is vacuous")
	}
	for name, got := range map[string][]string{"cold": cold, "warm": warm} {
		if len(got) != len(want) {
			t.Fatalf("%s path count %d != uncached %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s path[%d] = %q, want %q", name, i, got[i], want[i])
			}
		}
	}
	// The warm stats repeat pin: every side of the grid was deposited.
	_, errs, stats := cached.ExecuteBatch(context.Background(), queries, Options{})
	for i := range queries {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
	}
	if stats.BFSPassesRun != 0 {
		t.Fatalf("warm two-sided batch ran %d passes, want 0", stats.BFSPassesRun)
	}
	if stats.SharedFrontiers != 8 || stats.TwoSidedFrontiers != 4 {
		t.Fatalf("grid sharing stats = %d shared / %d two-sided, want 8/4", stats.SharedFrontiers, stats.TwoSidedFrontiers)
	}
}

// TestBatchDepositAdmission: under the default admission threshold a
// fringe-to-hub batch deposits only the planner-proved shared hub side;
// the fringe member sides are refused, so the warm repeat still rebuilds
// them while the hub side hits.
func TestBatchDepositAdmission(t *testing.T) {
	g := gen.BarabasiAlbert(400, 3, 9)
	hub := VertexID(2) // the biggest attachment hub of this seed
	if g.InDegree(hub) < DefaultCacheAdmitDegree {
		t.Fatalf("hub in-degree %d below the default admission threshold; premise broken", g.InDegree(hub))
	}
	// Fringe partners: able to source a path but below the admission
	// threshold on both sides, so their forward frontiers are refused.
	var queries []Query
	for v := VertexID(1); v < VertexID(g.NumVertices()) && len(queries) < 8; v++ {
		if g.OutDegree(v) >= 1 && g.OutDegree(v) < DefaultCacheAdmitDegree &&
			g.InDegree(v) < DefaultCacheAdmitDegree {
			queries = append(queries, Query{S: v, T: hub, K: 4})
		}
	}
	if len(queries) < 4 {
		t.Fatalf("only %d fringe partners found", len(queries))
	}

	// Default admission (CacheAdmitDegree 0 -> DefaultCacheAdmitDegree).
	e, err := NewEngine(g, EngineConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, errs, cold := e.ExecuteBatch(context.Background(), queries, Options{})
	for i := range queries {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
	}
	if cold.BFSPassesRun == 0 {
		t.Fatal("cold batch cannot run zero passes")
	}
	// Only the shared hub side (uses >= 2, admitted regardless of degree)
	// may land in the cache.
	if cs := e.CacheStats(); cs.Entries != 1 {
		t.Fatalf("admission deposited %d entries, want 1 (the hub side)", cs.Entries)
	}

	_, errs, warm := e.ExecuteBatch(context.Background(), queries, Options{})
	for i := range queries {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
	}
	if warm.FrontierCacheHits == 0 {
		t.Fatal("warm repeat did not hit the deposited hub side")
	}
	// The refused fringe sides run again: one backward pass per unique.
	if warm.BFSPassesRun != warm.Unique {
		t.Fatalf("warm repeat ran %d passes, want %d (one refused fringe side per unique)", warm.BFSPassesRun, warm.Unique)
	}
	if cs := e.CacheStats(); cs.Entries != 1 {
		t.Fatalf("warm repeat changed the entry count to %d", cs.Entries)
	}
}

// TestSingleQueryServedFromWarmCache: a single ExecuteWith on a hub warmed
// by a batch must hit the cache (and agree with a plain Enumerate).
func TestSingleQueryServedFromWarmCache(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 21)
	e, err := NewEngine(g, EngineConfig{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	queries := repeatHubBatch(g, 0, 8, 4, 11)
	if _, errs, _ := e.ExecuteBatch(context.Background(), queries, Options{}); errs[0] != nil {
		t.Fatal(errs[0])
	}
	before := e.CacheStats().Hits

	q := queries[0]
	res, err := e.ExecuteWith(context.Background(), q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Enumerate(g, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Results != want.Counters.Results {
		t.Fatalf("cached single query count %d != Enumerate %d", res.Counters.Results, want.Counters.Results)
	}
	if e.CacheStats().Hits <= before {
		t.Fatal("single query did not consult the warm cache")
	}
}

// TestUpdateGraphInvalidatesLazily: after an epoch bump the warm cache
// must not serve stale frontiers — the next batch reruns its BFS, counts
// reflect the inserted edge, and the invalidation counter moves. The
// rebuilt entries then serve the new epoch with zero passes again.
func TestUpdateGraphInvalidatesLazily(t *testing.T) {
	d := NewDynamic(gen.BarabasiAlbert(300, 3, 29))
	snap0 := d.Snapshot()
	// CacheAdmitDegree 1: the warm-zero precondition needs the low-degree
	// partner endpoints cached too.
	e, err := NewEngine(snap0, EngineConfig{Workers: 4, CacheAdmitDegree: 1})
	if err != nil {
		t.Fatal(err)
	}
	queries := repeatHubBatch(snap0, 0, 16, 4, 13)
	if _, errs, _ := e.ExecuteBatch(context.Background(), queries, Options{}); errs[0] != nil {
		t.Fatal(errs[0])
	}
	if _, _, warm := e.ExecuteBatch(context.Background(), queries, Options{}); warm.BFSPassesRun != 0 {
		t.Fatalf("precondition: warm batch ran %d passes", warm.BFSPassesRun)
	}

	// Insert an edge into the hub's 2-hop neighborhood and advance.
	inserted := false
	for to := VertexID(1); to < 40 && !inserted; to++ {
		ok, ierr := d.Insert(0, to)
		if ierr != nil {
			t.Fatal(ierr)
		}
		inserted = ok
	}
	if !inserted {
		t.Fatal("could not insert a fresh hub edge")
	}
	if err := e.UpdateGraph(d.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if e.Epoch() != 1 {
		t.Fatalf("engine epoch = %d, want 1", e.Epoch())
	}

	results, errs, stats := e.ExecuteBatch(context.Background(), queries, Options{})
	for i := range queries {
		if errs[i] != nil {
			t.Fatalf("post-update query %d: %v", i, errs[i])
		}
		want, werr := Enumerate(e.Graph(), queries[i], Options{})
		if werr != nil {
			t.Fatal(werr)
		}
		if results[i].Counters.Results != want.Counters.Results {
			t.Fatalf("%v: post-update count %d != fresh Enumerate %d",
				queries[i], results[i].Counters.Results, want.Counters.Results)
		}
	}
	if stats.BFSPassesRun == 0 {
		t.Fatal("post-update batch cannot be served from the stale cache")
	}
	if cs := e.CacheStats(); cs.Invalidations == 0 {
		t.Fatalf("no lazy invalidations recorded: %+v", cs)
	}
	if _, _, rewarm := e.ExecuteBatch(context.Background(), queries, Options{}); rewarm.BFSPassesRun != 0 {
		t.Fatalf("re-warmed batch ran %d passes, want 0", rewarm.BFSPassesRun)
	}
}

// TestUpdateGraphDropsStaleOracle: advancing the engine past the oracle's
// epoch must drop the oracle (queries keep working, unpruned) — and
// SetOracle must refuse a stale oracle outright while accepting a rebuilt
// one.
func TestUpdateGraphDropsStaleOracle(t *testing.T) {
	d := NewDynamic(gen.BarabasiAlbert(200, 3, 33))
	snap0 := d.Snapshot()
	oracle, err := BuildOracle(snap0, 4)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(snap0, EngineConfig{Workers: 2, Oracle: oracle})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{S: 0, T: 9, K: 4}
	if _, err := e.Execute(q); err != nil {
		t.Fatal(err)
	}

	if ok, ierr := d.Insert(0, 150); ierr != nil || !ok {
		t.Fatalf("Insert = %v, %v", ok, ierr)
	}
	snap1 := d.Snapshot()

	// A stale oracle passed explicitly must surface the typed error.
	if _, err := Enumerate(snap1, q, Options{Oracle: oracle}); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale oracle on new snapshot: got %v, want ErrStaleEpoch", err)
	}
	// NewEngine must refuse the mismatch too.
	if _, err := NewEngine(snap1, EngineConfig{Oracle: oracle}); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("NewEngine with stale oracle: got %v, want ErrStaleEpoch", err)
	}

	if err := e.UpdateGraph(snap1); err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(q)
	if err != nil {
		t.Fatalf("query after oracle drop: %v", err)
	}
	want, err := Enumerate(snap1, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Results != want.Counters.Results {
		t.Fatalf("post-drop count %d != %d", res.Counters.Results, want.Counters.Results)
	}

	if err := e.SetOracle(oracle); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("SetOracle with stale oracle: got %v, want ErrStaleEpoch", err)
	}
	rebuilt, err := BuildOracle(snap1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.SetOracle(rebuilt); err != nil {
		t.Fatal(err)
	}
	res2, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Counters.Results != want.Counters.Results {
		t.Fatalf("rebuilt-oracle count %d != %d", res2.Counters.Results, want.Counters.Results)
	}
}

// TestUpdateGraphDropsStaleDefaultOracle: an oracle installed as the
// per-query default (EngineConfig.Options.Oracle) is version-enforced
// like the engine-level one — NewEngine refuses a mismatch and
// UpdateGraph drops it instead of letting every merged query fail with
// ErrStaleEpoch.
func TestUpdateGraphDropsStaleDefaultOracle(t *testing.T) {
	d := NewDynamic(gen.BarabasiAlbert(200, 3, 37))
	snap0 := d.Snapshot()
	oracle, err := BuildOracle(snap0, 4)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(snap0, EngineConfig{Workers: 2, Options: Options{Oracle: oracle}})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{S: 0, T: 9, K: 4}
	if _, err := e.Execute(q); err != nil {
		t.Fatal(err)
	}

	if ok, ierr := d.Insert(0, 150); ierr != nil || !ok {
		t.Fatalf("Insert = %v, %v", ok, ierr)
	}
	snap1 := d.Snapshot()
	if _, err := NewEngine(snap1, EngineConfig{Options: Options{Oracle: oracle}}); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("NewEngine with stale default oracle: got %v, want ErrStaleEpoch", err)
	}
	if err := e.UpdateGraph(snap1); err != nil {
		t.Fatal(err)
	}
	res, err := e.Execute(q)
	if err != nil {
		t.Fatalf("query after default-oracle drop: %v", err)
	}
	want, err := Enumerate(snap1, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Results != want.Counters.Results {
		t.Fatalf("post-drop count %d != %d", res.Counters.Results, want.Counters.Results)
	}
}

// TestConcurrentCacheReadersVsInsert runs concurrent batch/single readers
// against a writer performing Dynamic.Insert + UpdateGraph — the
// satellite -race coverage. Readers must never observe an error: each
// captures a consistent (graph, sessions, cache-version) view, and stale
// cache entries are invalidated rather than served.
func TestConcurrentCacheReadersVsInsert(t *testing.T) {
	d := NewDynamic(gen.BarabasiAlbert(150, 3, 41))
	e, err := NewEngine(d.Snapshot(), EngineConfig{Workers: 4, FrontierCache: 16})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Writer: the single owner of the Dynamic.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(77))
		for i := 0; i < 40; i++ {
			from := VertexID(rng.Intn(150))
			to := VertexID(rng.Intn(150))
			if _, err := d.Insert(from, to); err != nil {
				t.Error(err)
				break
			}
			if err := e.UpdateGraph(d.Snapshot()); err != nil {
				t.Error(err)
				break
			}
		}
		close(stop)
	}()

	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				queries := repeatHubBatch(e.Graph(), VertexID(rng.Intn(8)), 6, 3, rng.Int63())
				if w == 0 {
					q := queries[0]
					if _, err := e.ExecuteWith(context.Background(), q, Options{}); err != nil {
						t.Errorf("single query: %v", err)
						return
					}
					continue
				}
				_, errs, _ := e.ExecuteBatch(context.Background(), queries, Options{})
				for i, qerr := range errs {
					if qerr != nil {
						t.Errorf("batch query %v: %v", queries[i], qerr)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestExecuteBatchOpaquePredicate: a predicate without a token is opaque —
// no sharing, no caching — but must still produce correct results; the
// same predicate with a token shares and caches.
func TestExecuteBatchOpaquePredicate(t *testing.T) {
	g := gen.BarabasiAlbert(150, 3, 55)
	pred := func(from, to VertexID) bool { return (int(from)+int(to))%3 != 0 }
	queries := repeatHubBatch(g, 0, 10, 4, 19)

	// CacheAdmitDegree 1: the warm-zero check needs the low-degree partner
	// endpoints cached too.
	e, err := NewEngine(g, EngineConfig{Workers: 3, CacheAdmitDegree: 1})
	if err != nil {
		t.Fatal(err)
	}
	check := func(opts Options) *BatchStats {
		t.Helper()
		results, errs, stats := e.ExecuteBatch(context.Background(), queries, opts)
		for i, q := range queries {
			if errs[i] != nil {
				t.Fatal(errs[i])
			}
			want, werr := Enumerate(g, q, Options{Predicate: pred})
			if werr != nil {
				t.Fatal(werr)
			}
			if results[i].Counters.Results != want.Counters.Results {
				t.Fatalf("%v: count %d != %d", q, results[i].Counters.Results, want.Counters.Results)
			}
		}
		return stats
	}

	opaque := check(Options{Predicate: pred})
	if opaque.FrontierCacheHits != 0 || opaque.FrontierCacheMisses != 0 {
		t.Fatalf("opaque predicate consulted the cache: %+v", opaque)
	}
	if opaque.BFSPassesRun != 2*opaque.Unique {
		t.Fatalf("opaque predicate shared frontiers: ran %d passes for %d unique", opaque.BFSPassesRun, opaque.Unique)
	}

	tokenized := check(Options{Predicate: pred, PredicateToken: 42})
	if tokenized.BFSPassesRun >= 2*tokenized.Unique {
		t.Fatalf("tokenized predicate did not share: ran %d passes for %d unique", tokenized.BFSPassesRun, tokenized.Unique)
	}
	warm := check(Options{Predicate: pred, PredicateToken: 42})
	if warm.BFSPassesRun != 0 {
		t.Fatalf("warm tokenized batch ran %d passes, want 0", warm.BFSPassesRun)
	}
}

// TestSingleQueryDepositsWithAdmission is the cache-symmetry fix: single
// queries now deposit the frontiers they build, but only when the
// endpoint passes the degree-based admission check — hub endpoints warm
// the cache for later queries and batches, cold endpoints stay on the
// allocation-free scratch path.
func TestSingleQueryDepositsWithAdmission(t *testing.T) {
	g := gen.BarabasiAlbert(300, 3, 91)
	hub := VertexID(0) // preferential attachment: highest degree
	// A fringe vertex: out- and in-degree both below any hub threshold.
	fringe := VertexID(-1)
	for v := VertexID(1); v < VertexID(g.NumVertices()); v++ {
		if v != hub && g.OutDegree(v) <= 3 && g.InDegree(v) <= 3 && g.OutDegree(v) > 0 {
			fringe = v
			break
		}
	}
	if fringe < 0 {
		t.Fatal("no fringe vertex found")
	}
	if g.OutDegree(hub) < 8 {
		t.Fatalf("hub degree %d too low for the test premise", g.OutDegree(hub))
	}

	e, err := NewEngine(g, EngineConfig{Workers: 2, CacheAdmitDegree: 8})
	if err != nil {
		t.Fatal(err)
	}
	hubQ := Query{S: hub, T: fringe, K: 4}
	want, err := Enumerate(g, hubQ, Options{})
	if err != nil {
		t.Fatal(err)
	}

	// Cold hub query: misses, then deposits the forward (hub) side.
	res, err := e.ExecuteWith(context.Background(), hubQ, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Results != want.Counters.Results {
		t.Fatalf("deposited run count %d != Enumerate %d", res.Counters.Results, want.Counters.Results)
	}
	cs := e.CacheStats()
	if cs.Entries == 0 {
		t.Fatalf("single hub query did not deposit: %+v", cs)
	}
	if cs.Hits != 0 {
		t.Fatalf("cold query reported hits: %+v", cs)
	}

	// Repeat: the hub side is served from the cache.
	if _, err := e.ExecuteWith(context.Background(), hubQ, Options{}); err != nil {
		t.Fatal(err)
	}
	if after := e.CacheStats(); after.Hits == 0 {
		t.Fatalf("repeat hub query missed the deposited frontier: %+v", after)
	}

	// Streams share the same consult/deposit spine.
	before := e.CacheStats().Hits
	for _, serr := range e.Stream(context.Background(), NewRequest(hubQ)) {
		if serr != nil {
			t.Fatal(serr)
		}
	}
	if after := e.CacheStats(); after.Hits <= before {
		t.Fatalf("stream did not consult the cache: %+v", after)
	}

	// A fringe-to-fringe query is refused admission: no new entries.
	var fringe2 VertexID = -1
	for v := fringe + 1; v < VertexID(g.NumVertices()); v++ {
		if v != hub && g.OutDegree(v) <= 3 && g.InDegree(v) <= 3 {
			fringe2 = v
			break
		}
	}
	if fringe2 < 0 {
		t.Fatal("no second fringe vertex found")
	}
	entriesBefore := e.CacheStats().Entries
	if _, err := e.ExecuteWith(context.Background(), Query{S: fringe, T: fringe2, K: 3}, Options{}); err != nil {
		t.Fatal(err)
	}
	if entriesAfter := e.CacheStats().Entries; entriesAfter != entriesBefore {
		t.Fatalf("fringe query deposited despite admission: %d -> %d entries", entriesBefore, entriesAfter)
	}

	// CacheAdmitDegree < 0 disables single-query deposits entirely.
	off, err := NewEngine(g, EngineConfig{CacheAdmitDegree: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := off.ExecuteWith(context.Background(), hubQ, Options{}); err != nil {
		t.Fatal(err)
	}
	if cs := off.CacheStats(); cs.Entries != 0 {
		t.Fatalf("deposit-disabled engine cached %d entries", cs.Entries)
	}
}
