package pathenum

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"pathenum/internal/gen"
)

// TestInsertRebuildDegradedWindow pins the background-rebuild contract
// end to end: a publishing insert installs the snapshot immediately and
// leaves for the rebuild worker; queries inside the degraded window run
// unpruned but produce exactly the path set of the post-rebuild (and of
// a plain uncached) engine.
func TestInsertRebuildDegradedWindow(t *testing.T) {
	g := gen.BarabasiAlbert(2000, 4, 101)
	e, err := NewEngine(g, EngineConfig{Workers: 2, OracleLandmarks: 8, CacheAdmitDegree: 1})
	if err != nil {
		t.Fatal(err)
	}
	// NewEngine scheduled the initial build; reach steady state first.
	if err := e.WaitOracle(context.Background()); err != nil {
		t.Fatal(err)
	}
	if e.Oracle() == nil {
		t.Fatal("initial background build did not install an oracle")
	}
	if lag := e.OracleLag(); lag != 0 {
		t.Fatalf("steady-state oracle lag = %v, want 0", lag)
	}

	added, err := e.Insert(0, 1999)
	if err != nil {
		t.Fatal(err)
	}
	if !added {
		t.Fatal("probe edge already present; pick another")
	}
	// The publish must not have blocked on the rebuild: the serving
	// snapshot is fresh while the oracle is still the worker's problem.
	if e.Epoch() != 1 {
		t.Fatalf("epoch = %d immediately after insert, want 1", e.Epoch())
	}
	if e.Oracle() != nil {
		t.Fatal("oracle present immediately after publish — did the insert rebuild inline?")
	}
	if lag := e.OracleLag(); lag <= 0 {
		t.Fatalf("degraded window reports lag %v, want > 0", lag)
	}

	queries := []Query{
		{S: 0, T: 1999, K: 3}, {S: 0, T: 7, K: 4},
		{S: 1, T: 9, K: 4}, {S: 3, T: 11, K: 4},
	}
	degraded := collectBatchPaths(t, e, queries)

	if err := e.WaitOracle(context.Background()); err != nil {
		t.Fatal(err)
	}
	if e.Oracle() == nil {
		t.Fatal("rebuild never landed")
	}
	if lag := e.OracleLag(); lag != 0 {
		t.Fatalf("post-rebuild oracle lag = %v, want 0", lag)
	}
	rebuilt := collectBatchPaths(t, e, queries)

	plain, err := NewEngine(e.Graph(), EngineConfig{Workers: 2, FrontierCache: -1})
	if err != nil {
		t.Fatal(err)
	}
	want := collectBatchPaths(t, plain, queries)
	if len(want) == 0 {
		t.Fatal("workload produced no paths; test is vacuous")
	}
	for name, got := range map[string][]string{"degraded": degraded, "rebuilt": rebuilt} {
		if len(got) != len(want) {
			t.Fatalf("%s path count %d != plain %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s path[%d] = %q, want %q", name, i, got[i], want[i])
			}
		}
	}
}

// TestInsertRebuildCoalesces: a burst of publishing inserts must not
// queue one rebuild each — the worker coalesces to the newest snapshot
// and WaitOracle lands on an oracle for the serving epoch.
func TestInsertRebuildCoalesces(t *testing.T) {
	g := gen.BarabasiAlbert(500, 3, 103)
	e, err := NewEngine(g, EngineConfig{Workers: 2, OracleLandmarks: 4})
	if err != nil {
		t.Fatal(err)
	}
	for to := VertexID(1); to <= 40; to++ {
		if _, err := e.Insert(0, to); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.WaitOracle(context.Background()); err != nil {
		t.Fatal(err)
	}
	oracle := e.Oracle()
	if oracle == nil {
		t.Fatal("no oracle after the burst settled")
	}
	// The installed oracle serves the newest epoch: a pruned query runs
	// without ErrStaleEpoch and matches an unpruned run.
	q := Query{S: 0, T: 9, K: 4}
	res, err := e.ExecuteWith(context.Background(), q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Enumerate(e.Graph(), q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Results != want.Counters.Results {
		t.Fatalf("post-burst count %d != fresh %d", res.Counters.Results, want.Counters.Results)
	}
}

// TestInsertRebuildWaitCancel: WaitOracle respects its context while a
// rebuild is outstanding.
func TestInsertRebuildWaitCancel(t *testing.T) {
	g := gen.BarabasiAlbert(3000, 4, 107)
	e, err := NewEngine(g, EngineConfig{OracleLandmarks: 16})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := e.WaitOracle(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("WaitOracle with cancelled ctx = %v, want context.Canceled", err)
	}
	// An unconstrained wait still succeeds afterwards.
	if err := e.WaitOracle(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestStreamWhileInsertRebuild is the Insert-vs-stream race with the
// background rebuild worker live (run under -race in CI): readers stream
// while a writer publishes inserts that each schedule a rebuild. Results
// inside any degraded window must be indistinguishable — every path
// well-formed, no stale-epoch leaks — and the post-quiesce state matches
// a fresh enumeration.
func TestStreamWhileInsertRebuild(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 83)
	e, err := NewEngine(g, EngineConfig{Workers: 4, OracleLandmarks: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{S: 0, T: 7, K: 4}
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	var wg sync.WaitGroup
	go func() {
		defer close(writerDone)
		rng := rand.New(rand.NewSource(19))
		for i := 0; i < 150; i++ {
			select {
			case <-stop:
				return
			default:
			}
			from := VertexID(rng.Intn(200))
			to := VertexID(rng.Intn(200))
			if _, err := e.Insert(from, to); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for r := 0; r < 6; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				req := NewRequest(q)
				if r%2 == 1 {
					req.Buffer = 4
				}
				for p, serr := range e.Stream(context.Background(), req) {
					if serr != nil {
						if errors.Is(serr, ErrStaleEpoch) {
							t.Errorf("reader %d: stale epoch leaked during rebuild window: %v", r, serr)
						} else {
							t.Errorf("reader %d: %v", r, serr)
						}
						return
					}
					if len(p) < 2 || p[0] != q.S || p[len(p)-1] != q.T {
						t.Errorf("reader %d: malformed path %v", r, p)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	close(stop)
	<-writerDone
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := e.WaitOracle(context.Background()); err != nil {
		t.Fatal(err)
	}
	res, err := e.ExecuteWith(context.Background(), q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Enumerate(e.Graph(), q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Results != want.Counters.Results {
		t.Fatalf("post-quiesce count %d != fresh %d", res.Counters.Results, want.Counters.Results)
	}
}

// BenchmarkInsertPublish measures the publishing-insert critical path.
// The acceptance point: with background rebuilds (OracleLandmarks > 0)
// the per-insert latency must track the no-oracle baseline, not the
// inline-rebuild one — oracle construction is off the write path.
func BenchmarkInsertPublish(b *testing.B) {
	const n = 5000
	bench := func(b *testing.B, cfg EngineConfig, inline bool) {
		g := gen.BarabasiAlbert(n, 4, 211)
		e, err := NewEngine(g, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if cfg.OracleLandmarks > 0 {
			if err := e.WaitOracle(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
		rng := rand.New(rand.NewSource(7))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for {
				from := VertexID(rng.Intn(n))
				to := VertexID(rng.Intn(n))
				added, err := e.Insert(from, to)
				if err != nil {
					b.Fatal(err)
				}
				if added {
					break
				}
			}
			if inline {
				oracle, err := BuildOracle(e.Graph(), 8)
				if err != nil {
					b.Fatal(err)
				}
				if err := e.SetOracle(oracle); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		// Drain the worker outside the timer so one run's backlog cannot
		// leak into the next sub-benchmark's measurements.
		if cfg.OracleLandmarks > 0 {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := e.WaitOracle(ctx); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("no-oracle", func(b *testing.B) {
		bench(b, EngineConfig{}, false)
	})
	b.Run("rebuild-async", func(b *testing.B) {
		bench(b, EngineConfig{OracleLandmarks: 8}, false)
	})
	b.Run("rebuild-inline", func(b *testing.B) {
		bench(b, EngineConfig{}, true)
	})
}
