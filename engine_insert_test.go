package pathenum

import (
	"context"
	"errors"
	"sync"
	"testing"

	"pathenum/internal/gen"
)

// insertTestEngine builds an engine over the diamond 0 -> {1,2} -> 3.
func insertTestEngine(t *testing.T, cfg EngineConfig) *Engine {
	t.Helper()
	g, err := NewGraph(4, []Edge{
		{From: 0, To: 1}, {From: 0, To: 2},
		{From: 1, To: 3}, {From: 2, To: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func countVia(t *testing.T, e *Engine, q Query) uint64 {
	t.Helper()
	res, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	return res.Counters.Results
}

// TestEngineInsertVisibleImmediately: with the default write policy every
// applied insert publishes a snapshot, so the very next query sees the
// edge and the serving epoch advances.
func TestEngineInsertVisibleImmediately(t *testing.T) {
	e := insertTestEngine(t, EngineConfig{})
	q := Query{S: 0, T: 3, K: 3}
	if n := countVia(t, e, q); n != 2 {
		t.Fatalf("pre-insert count %d, want 2", n)
	}

	added, err := e.Insert(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !added {
		t.Fatal("insert of a fresh edge reported not added")
	}
	if n := countVia(t, e, q); n != 3 {
		t.Fatalf("post-insert count %d, want 3 (0-1-2-3 now exists)", n)
	}
	if e.Epoch() != 1 {
		t.Fatalf("epoch %d, want 1", e.Epoch())
	}
	if e.PendingWrites() != 0 {
		t.Fatalf("pending %d, want 0", e.PendingWrites())
	}

	// Duplicate and self-loop inserts are no-ops; out-of-range errors.
	if added, err := e.Insert(1, 2); err != nil || added {
		t.Fatalf("duplicate insert: added=%v err=%v", added, err)
	}
	if added, err := e.Insert(2, 2); err != nil || added {
		t.Fatalf("self-loop insert: added=%v err=%v", added, err)
	}
	if _, err := e.Insert(0, 99); err == nil {
		t.Fatal("out-of-range insert must error")
	}
	if e.Epoch() != 1 {
		t.Fatalf("no-op inserts moved the epoch to %d", e.Epoch())
	}
}

// TestEngineInsertAmortized: SnapshotEvery batches publishes — reads lag
// until the batch fills or Flush forces the remainder out.
func TestEngineInsertAmortized(t *testing.T) {
	e := insertTestEngine(t, EngineConfig{SnapshotEvery: 3})
	q := Query{S: 0, T: 3, K: 3}

	if _, err := e.Insert(1, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Insert(3, 1); err != nil {
		t.Fatal(err)
	}
	if n := countVia(t, e, q); n != 2 {
		t.Fatalf("count %d before the batch filled, want 2 (reads lag)", n)
	}
	if p := e.PendingWrites(); p != 2 {
		t.Fatalf("pending %d, want 2", p)
	}

	// Third applied insert fills the batch and publishes all three.
	if _, err := e.Insert(2, 1); err != nil {
		t.Fatal(err)
	}
	if p := e.PendingWrites(); p != 0 {
		t.Fatalf("pending %d after publish, want 0", p)
	}
	if n := countVia(t, e, q); n != 4 {
		t.Fatalf("post-publish count %d, want 4 (0-1-2-3 and 0-2-1-3)", n)
	}
	if e.Epoch() != 3 {
		t.Fatalf("epoch %d, want 3 (one per applied insert)", e.Epoch())
	}

	// A lone insert stays buffered until Flush.
	if _, err := e.Insert(3, 2); err != nil {
		t.Fatal(err)
	}
	if p := e.PendingWrites(); p != 1 {
		t.Fatalf("pending %d, want 1", p)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if p := e.PendingWrites(); p != 0 {
		t.Fatalf("pending %d after Flush, want 0", p)
	}
	if e.Epoch() != 4 {
		t.Fatalf("epoch %d after Flush, want 4", e.Epoch())
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err) // idempotent
	}
}

// TestEngineInsertOracleLifecycle: without OracleLandmarks a publish drops
// the now-stale oracle; with it, every publish installs a rebuilt oracle
// valid for the new snapshot. Either way a stale oracle passed per-call is
// rejected with ErrStaleEpoch rather than consulted.
func TestEngineInsertOracleLifecycle(t *testing.T) {
	g := gen.BarabasiAlbert(150, 3, 77)
	oracle, err := BuildOracle(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	drop, err := NewEngine(g, EngineConfig{Oracle: oracle})
	if err != nil {
		t.Fatal(err)
	}
	if drop.Oracle() == nil {
		t.Fatal("configured oracle not installed")
	}
	if _, err := drop.Insert(0, 149); err != nil {
		t.Fatal(err)
	}
	if drop.Oracle() != nil {
		t.Fatal("publish must drop an invalidated oracle when OracleLandmarks is 0")
	}

	refresh, err := NewEngine(g, EngineConfig{Oracle: oracle, OracleLandmarks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := refresh.Insert(0, 149); err != nil {
		t.Fatal(err)
	}
	// The rebuild runs on the background worker now — the publish itself
	// never blocks on it. WaitOracle observes the fresh install.
	if err := refresh.WaitOracle(context.Background()); err != nil {
		t.Fatal(err)
	}
	if refresh.Oracle() == nil {
		t.Fatal("publish must rebuild the oracle when OracleLandmarks > 0")
	}
	if lag := refresh.OracleLag(); lag != 0 {
		t.Fatalf("oracle lag = %v after rebuild landed, want 0", lag)
	}
	q := Query{S: 0, T: 9, K: 4}
	if _, err := refresh.ExecuteWith(context.Background(), q, Options{}); err != nil {
		t.Fatalf("query with refreshed oracle: %v", err)
	}

	// Epoch enforcement: an oracle built on the post-insert snapshot goes
	// stale after the next insert and is rejected, not consulted.
	stale, err := BuildOracle(refresh.Graph(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := refresh.Insert(1, 148); err != nil {
		t.Fatal(err)
	}
	if _, err := refresh.ExecuteWith(context.Background(), q, Options{Oracle: stale}); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale per-call oracle: err = %v, want ErrStaleEpoch", err)
	}
}

// TestEngineInsertInvalidatesFrontierCache: frontiers cached before an
// insert must not serve the new epoch — the engine's lazy invalidation
// carries over to the write path.
func TestEngineInsertInvalidatesFrontierCache(t *testing.T) {
	g := gen.BarabasiAlbert(300, 3, 79)
	// CacheAdmitDegree 1: the warm-zero precondition needs the low-degree
	// partner endpoints cached too.
	e, err := NewEngine(g, EngineConfig{Workers: 2, CacheAdmitDegree: 1})
	if err != nil {
		t.Fatal(err)
	}
	queries := repeatHubBatch(g, 0, 8, 4, 37)
	if _, errs, _ := e.ExecuteBatch(context.Background(), queries, Options{}); errs[0] != nil {
		t.Fatal(errs[0])
	}
	if _, _, warm := e.ExecuteBatch(context.Background(), queries, Options{}); warm.BFSPassesRun != 0 {
		t.Fatalf("precondition: warm batch ran %d passes", warm.BFSPassesRun)
	}

	// First applied insert wins; hub 0 is densely connected, so probe.
	inserted := false
	for to := VertexID(1); to < 60 && !inserted; to++ {
		ok, ierr := e.Insert(0, to)
		if ierr != nil {
			t.Fatal(ierr)
		}
		inserted = ok
	}
	if !inserted {
		t.Fatal("could not apply a fresh hub edge")
	}

	results, errs, stats := e.ExecuteBatch(context.Background(), queries, Options{})
	if stats.BFSPassesRun == 0 {
		t.Fatal("post-insert batch cannot be served from the pre-insert cache")
	}
	for i := range queries {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		want, werr := Enumerate(e.Graph(), queries[i], Options{})
		if werr != nil {
			t.Fatal(werr)
		}
		if results[i].Counters.Results != want.Counters.Results {
			t.Fatalf("%v: post-insert count %d != fresh %d", queries[i], results[i].Counters.Results, want.Counters.Results)
		}
	}
}

// TestUpdateGraphResetsWritePath: an external UpdateGraph supersedes the
// engine-owned Dynamic; the next Insert wraps the new graph.
func TestUpdateGraphResetsWritePath(t *testing.T) {
	e := insertTestEngine(t, EngineConfig{SnapshotEvery: 10})
	if _, err := e.Insert(1, 2); err != nil {
		t.Fatal(err)
	}
	if p := e.PendingWrites(); p != 1 {
		t.Fatalf("pending %d, want 1", p)
	}
	fresh, err := NewGraph(4, []Edge{{From: 0, To: 1}, {From: 1, To: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.UpdateGraph(fresh); err != nil {
		t.Fatal(err)
	}
	if p := e.PendingWrites(); p != 0 {
		t.Fatalf("UpdateGraph must discard pending writes, got %d", p)
	}
	// The buffered (1,2) edge is gone with the old Dynamic.
	if n := countVia(t, e, Query{S: 0, T: 3, K: 3}); n != 1 {
		t.Fatalf("count %d on the fresh graph, want 1", n)
	}
	if _, err := e.Insert(0, 3); err != nil {
		t.Fatal(err)
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := countVia(t, e, Query{S: 0, T: 3, K: 3}); n != 2 {
		t.Fatalf("count %d after re-wrapped insert, want 2", n)
	}
}

// TestStreamJoinWhileInsert mirrors TestStreamWhileInsert on the
// join-planned streaming path, run under -race in CI: concurrent streams
// force Method Join (the tuple-at-a-time enumerator with its build-side
// materialization and lazy probe), capture a snapshot at first pull and
// must finish on it while Insert/Flush publish new epochs. The
// ErrStaleEpoch discipline has to hold invisibly on this path — stale
// frontiers and oracles are rejected inside the engine against the
// captured view, never surfaced to the consumer — so any yielded error
// (stale-epoch above all) fails the test, and every delivered path must
// be well-formed for the snapshot its stream ran on.
func TestStreamJoinWhileInsert(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 91)
	e, err := NewEngine(g, EngineConfig{Workers: 4, SnapshotEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{S: 0, T: 7, K: 4}
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	var wg sync.WaitGroup
	go func() {
		defer close(writerDone)
		to := VertexID(1)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := e.Insert(0, to); err != nil {
				t.Error(err)
				return
			}
			if to%16 == 0 {
				if err := e.Flush(); err != nil {
					t.Error(err)
					return
				}
			}
			to++
			if to == 200 {
				return
			}
		}
	}()
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				req := NewRequest(q)
				req.Method = Join
				if r%2 == 1 {
					req.Buffer = 4
				}
				var res *Result
				req.OnResult = func(rr *Result) { res = rr }
				for p, serr := range e.Stream(context.Background(), req) {
					if serr != nil {
						if errors.Is(serr, ErrStaleEpoch) {
							t.Errorf("reader %d: stale epoch leaked to the join stream: %v", r, serr)
						} else {
							t.Errorf("reader %d: %v", r, serr)
						}
						return
					}
					if len(p) < 2 || p[0] != q.S || p[len(p)-1] != q.T {
						t.Errorf("reader %d: malformed path %v", r, p)
						return
					}
				}
				if res != nil && res.Plan.Method == Join && res.Counters.Results > 0 && res.JoinStats.BuildTuples == 0 {
					t.Errorf("reader %d: join-planned run with results but no build tuples: %+v", r, res.JoinStats)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(stop)
	<-writerDone
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestStreamWhileInsert is the streaming-while-updating acceptance
// scenario, run under -race in CI: concurrent streams capture a snapshot
// and finish on it while Insert advances the engine. Every streamed path
// must be valid for *some* published epoch — no torn reads, no stale
// labels served silently.
func TestStreamWhileInsert(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 83)
	e, err := NewEngine(g, EngineConfig{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	q := Query{S: 0, T: 7, K: 4}
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	var wg sync.WaitGroup
	go func() {
		defer close(writerDone)
		to := VertexID(1)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := e.Insert(0, to); err != nil {
				t.Error(err)
				return
			}
			to++
			if to == 200 {
				return
			}
		}
	}()
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				req := NewRequest(q)
				if r%2 == 1 {
					req.Buffer = 4
				}
				for p, serr := range e.Stream(context.Background(), req) {
					if serr != nil {
						t.Errorf("reader %d: %v", r, serr)
						return
					}
					if len(p) < 2 || p[0] != q.S || p[len(p)-1] != q.T {
						t.Errorf("reader %d: malformed path %v", r, p)
						return
					}
				}
			}
		}(r)
	}
	wg.Wait()
	close(stop)
	<-writerDone
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
}
