// Command pathenum runs a hop-constrained s-t path enumeration query on an
// edge-list graph file.
//
// Usage:
//
//	pathenum -graph g.txt -s 0 -t 42 -k 6 [-method auto|dfs|join] [-limit N] [-timeout 2s] [-print]
//
// The graph file contains "<from> <to>" pairs, one per line, with '#' or
// '%' comments. Vertex ids are remapped to a dense range; -s and -t refer
// to the original ids.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"pathenum"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "edge-list graph file (required)")
		srcID     = flag.Int64("s", -1, "source vertex (original id, required)")
		dstID     = flag.Int64("t", -1, "target vertex (original id, required)")
		k         = flag.Int("k", 6, "hop constraint")
		method    = flag.String("method", "auto", "enumeration method: auto, dfs or join")
		limit     = flag.Uint64("limit", 0, "stop after this many results (0 = all)")
		timeout   = flag.Duration("timeout", 0, "per-query time limit (0 = none)")
		print     = flag.Bool("print", false, "print each path")
		verbose   = flag.Bool("v", false, "print plan and timing details")
	)
	flag.Parse()
	if err := run(*graphPath, *srcID, *dstID, *k, *method, *limit, *timeout, *print, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "pathenum:", err)
		os.Exit(1)
	}
}

func run(graphPath string, srcID, dstID int64, k int, method string, limit uint64, timeout time.Duration, print, verbose bool) error {
	if graphPath == "" {
		return fmt.Errorf("-graph is required")
	}
	if srcID < 0 || dstID < 0 {
		return fmt.Errorf("-s and -t are required")
	}
	f, err := os.Open(graphPath)
	if err != nil {
		return err
	}
	g, orig, err := pathenum.ReadGraph(f)
	f.Close()
	if err != nil {
		return err
	}
	toDense := make(map[int64]pathenum.VertexID, len(orig))
	for dense, raw := range orig {
		toDense[raw] = pathenum.VertexID(dense)
	}
	s, ok := toDense[srcID]
	if !ok {
		return fmt.Errorf("source %d not in graph", srcID)
	}
	t, ok := toDense[dstID]
	if !ok {
		return fmt.Errorf("target %d not in graph", dstID)
	}

	var m pathenum.Method
	switch method {
	case "auto":
		m = pathenum.Auto
	case "dfs":
		m = pathenum.DFS
	case "join":
		m = pathenum.Join
	default:
		return fmt.Errorf("unknown method %q", method)
	}

	opts := pathenum.Options{Method: m, Limit: limit, Timeout: timeout}
	if print {
		opts.Emit = func(p []pathenum.VertexID) bool {
			for i, v := range p {
				if i > 0 {
					fmt.Print(" -> ")
				}
				fmt.Print(orig[v])
			}
			fmt.Println()
			return true
		}
	}
	// Ctrl-C cancels a runaway enumeration but still reports the partial
	// counts gathered so far.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	res, err := pathenum.EnumerateContext(ctx, g, pathenum.Query{S: s, T: t, K: k}, opts)
	if err != nil {
		return err
	}
	fmt.Printf("%d paths from %d to %d within %d hops (%s)\n",
		res.Counters.Results, srcID, dstID, k, res.Plan.Method)
	if !res.Completed {
		fmt.Println("note: enumeration stopped early (limit, timeout or interrupt)")
	}
	if verbose {
		fmt.Printf("graph: %v\n", g)
		fmt.Printf("index: %d vertices, %d edges, %.2f KB\n",
			res.IndexVertices, res.IndexEdges, float64(res.IndexBytes)/1024)
		fmt.Printf("plan: %s (cut=%d, preliminary estimate %.3g)\n",
			res.Plan.Method, res.Plan.Cut, res.Plan.Preliminary)
		fmt.Printf("timings: build=%v optimize=%v enumerate=%v total=%v\n",
			res.Timings.Build, res.Timings.Optimize, res.Timings.Enumerate, res.Timings.Total())
		fmt.Printf("counters: edges=%d invalid=%d\n",
			res.Counters.EdgesAccessed, res.Counters.InvalidPartials)
	}
	return nil
}
