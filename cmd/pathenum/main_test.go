package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func writeGraph(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "g.txt")
	// Diamond with original ids 10,11,12,13.
	content := "# test graph\n10 11\n10 12\n11 13\n12 13\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunBasic(t *testing.T) {
	path := writeGraph(t)
	for _, method := range []string{"auto", "dfs", "join"} {
		if err := run(path, 10, 13, 3, method, 0, 0, false, true); err != nil {
			t.Fatalf("method %s: %v", method, err)
		}
	}
}

func TestRunWithPrintAndLimit(t *testing.T) {
	path := writeGraph(t)
	if err := run(path, 10, 13, 3, "auto", 1, time.Second, true, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	path := writeGraph(t)
	cases := []struct {
		name string
		fn   func() error
	}{
		{"missing graph flag", func() error { return run("", 10, 13, 3, "auto", 0, 0, false, false) }},
		{"missing endpoints", func() error { return run(path, -1, 13, 3, "auto", 0, 0, false, false) }},
		{"unknown file", func() error { return run("/nonexistent", 10, 13, 3, "auto", 0, 0, false, false) }},
		{"unknown source", func() error { return run(path, 999, 13, 3, "auto", 0, 0, false, false) }},
		{"unknown target", func() error { return run(path, 10, 999, 3, "auto", 0, 0, false, false) }},
		{"bad method", func() error { return run(path, 10, 13, 3, "bogus", 0, 0, false, false) }},
		{"bad k", func() error { return run(path, 10, 13, 0, "auto", 0, 0, false, false) }},
	}
	for _, tc := range cases {
		if err := tc.fn(); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}
