// Command genpath generates the synthetic benchmark graphs of the dataset
// registry (or custom graphs from the generator families) and writes them
// as edge-list files, optionally with a shared-endpoint batch query set —
// the workload of the batch query subsystem.
//
// Usage:
//
//	genpath -dataset ep -out ep.txt            # registry dataset
//	genpath -dataset ep -scale 0.5 -out ep.txt # scaled down
//	genpath -family ba -n 10000 -davg 8 -out g.txt
//	genpath -list                              # list registry datasets
//
//	# graph plus a 64-query batch of shared-source/shared-target clusters
//	# (one "s t k" line per query, 20% exact duplicates):
//	genpath -family ba -n 10000 -out g.txt \
//	        -batch 64 -batchout q.txt -batchk 6 -batchgroup 8 -batchdup 0.2
//
//	# hub-to-hub grid: 8 source hubs x 8 target hubs, every query shares
//	# both its source and its target with other queries in the batch:
//	genpath -family ba -n 10000 -out g.txt \
//	        -batch 64 -batchout q.txt -batchk 6 -two-sided
//
//	# partition-aware set for the sharded engine: endpoints classified by
//	# the engine's hashed ownership at P=4, 30% cross-shard queries:
//	genpath -family ba -n 10000 -out g.txt \
//	        -batch 64 -batchout q.txt -batchk 6 -partition 4 -cross-frac 0.3
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"pathenum/internal/gen"
	"pathenum/internal/graph"
	"pathenum/internal/workload"
)

func main() {
	var (
		dataset    = flag.String("dataset", "", "registry dataset name (see -list)")
		scale      = flag.Float64("scale", 1.0, "scale factor for the registry dataset")
		family     = flag.String("family", "", "custom generator: er, ba, power, layered, grid")
		n          = flag.Int("n", 1000, "custom: vertex count (or width for layered)")
		davg       = flag.Float64("davg", 8, "custom: average degree (er/ba/power)")
		layers     = flag.Int("layers", 4, "custom: layer count (layered) or columns (grid)")
		seed       = flag.Int64("seed", 1, "random seed")
		out        = flag.String("out", "", "output file (required unless -list)")
		list       = flag.Bool("list", false, "list registry datasets and exit")
		batch      = flag.Int("batch", 0, "also generate this many shared-endpoint batch queries")
		batchOut   = flag.String("batchout", "", "batch query output file (required with -batch)")
		batchK     = flag.Int("batchk", 6, "batch: hop constraint per query")
		batchGroup = flag.Int("batchgroup", 8, "batch: queries per shared-endpoint cluster")
		batchDup   = flag.Float64("batchdup", 0, "batch: fraction of exact-duplicate queries")
		twoSided   = flag.Bool("two-sided", false, "batch: hub-to-hub grid (every query shares both endpoints)")
		partition  = flag.Int("partition", 0, "batch: classify endpoints by this shard count and control the intra/cross mix")
		crossFrac  = flag.Float64("cross-frac", 0.5, "batch: fraction of cross-shard queries (with -partition)")
	)
	flag.Parse()

	if *list {
		fmt.Println("name  paper |V|  paper |E|  davg  type")
		for _, d := range gen.Registry {
			fmt.Printf("%-4s  %-9s  %-9s  %-5.1f %s\n", d.Name, d.PaperV, d.PaperE, d.AvgDeg, d.Type)
		}
		return
	}
	g, err := run(*dataset, *scale, *family, *n, *davg, *layers, *seed, *out)
	if err == nil && *batch > 0 {
		if *partition > 0 {
			err = runPartition(g, *batch, *batchK, *partition, *crossFrac, *seed, *batchOut)
		} else {
			err = runBatch(g, *batch, *batchK, *batchGroup, *batchDup, *twoSided, *seed, *batchOut)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "genpath:", err)
		os.Exit(1)
	}
}

func run(dataset string, scale float64, family string, n int, davg float64, layers int, seed int64, out string) (*graph.Graph, error) {
	if out == "" {
		return nil, fmt.Errorf("-out is required")
	}
	var g *graph.Graph
	switch {
	case dataset != "":
		d, err := gen.Lookup(dataset)
		if err != nil {
			return nil, err
		}
		g = d.Scale(scale).Build()
	case family != "":
		switch family {
		case "er":
			g = gen.ErdosRenyi(n, int(float64(n)*davg), seed)
		case "ba":
			g = gen.BarabasiAlbert(n, int(davg+0.5), seed)
		case "power":
			g = gen.PowerLawConfig(n, davg, 2.2, seed)
		case "layered":
			g = gen.Layered(n, layers)
		case "grid":
			g = gen.Grid(n, layers)
		default:
			return nil, fmt.Errorf("unknown family %q", family)
		}
	default:
		return nil, fmt.Errorf("one of -dataset or -family is required")
	}
	if err := graph.SaveFile(out, g); err != nil {
		return nil, err
	}
	fmt.Printf("wrote %v to %s\n", g, out)
	return g, nil
}

// runBatch generates a shared-endpoint batch query set over g and writes
// one "s t k" line per query — the input format of benchpath's batch mode
// and of scripted POST /batch clients.
func runBatch(g *graph.Graph, count, k, groupSize int, dupFrac float64, twoSided bool, seed int64, out string) error {
	if out == "" {
		return fmt.Errorf("-batchout is required with -batch")
	}
	queries, err := workload.GenerateBatch(g, workload.BatchOptions{
		Count:     count,
		K:         k,
		GroupSize: groupSize,
		DupFrac:   dupFrac,
		TwoSided:  twoSided,
		Seed:      seed,
	})
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, q := range queries {
		fmt.Fprintf(w, "%d %d %d\n", q.S, q.T, q.K)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d batch queries to %s\n", len(queries), out)
	return nil
}

// runPartition generates a partition-aware query set — endpoints
// classified by the sharded engine's hashed ownership at the given shard
// count, with the requested cross-shard fraction — and writes the same
// "s t k" line format as runBatch, so sharded benchmarks replay a
// reproducible routing mix.
func runPartition(g *graph.Graph, count, k, shards int, crossFrac float64, seed int64, out string) error {
	if out == "" {
		return fmt.Errorf("-batchout is required with -batch")
	}
	queries, err := workload.GeneratePartitioned(g, workload.PartitionOptions{
		Count:     count,
		K:         k,
		Shards:    shards,
		CrossFrac: crossFrac,
		Seed:      seed,
	})
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, q := range queries {
		fmt.Fprintf(w, "%d %d %d\n", q.S, q.T, q.K)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %d partitioned queries (%d shards, %.0f%% cross) to %s\n",
		len(queries), shards, crossFrac*100, out)
	return nil
}
