// Command genpath generates the synthetic benchmark graphs of the dataset
// registry (or custom graphs from the generator families) and writes them
// as edge-list files.
//
// Usage:
//
//	genpath -dataset ep -out ep.txt            # registry dataset
//	genpath -dataset ep -scale 0.5 -out ep.txt # scaled down
//	genpath -family ba -n 10000 -davg 8 -out g.txt
//	genpath -list                              # list registry datasets
package main

import (
	"flag"
	"fmt"
	"os"

	"pathenum/internal/gen"
	"pathenum/internal/graph"
)

func main() {
	var (
		dataset = flag.String("dataset", "", "registry dataset name (see -list)")
		scale   = flag.Float64("scale", 1.0, "scale factor for the registry dataset")
		family  = flag.String("family", "", "custom generator: er, ba, power, layered, grid")
		n       = flag.Int("n", 1000, "custom: vertex count (or width for layered)")
		davg    = flag.Float64("davg", 8, "custom: average degree (er/ba/power)")
		layers  = flag.Int("layers", 4, "custom: layer count (layered) or columns (grid)")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("out", "", "output file (required unless -list)")
		list    = flag.Bool("list", false, "list registry datasets and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("name  paper |V|  paper |E|  davg  type")
		for _, d := range gen.Registry {
			fmt.Printf("%-4s  %-9s  %-9s  %-5.1f %s\n", d.Name, d.PaperV, d.PaperE, d.AvgDeg, d.Type)
		}
		return
	}
	if err := run(*dataset, *scale, *family, *n, *davg, *layers, *seed, *out); err != nil {
		fmt.Fprintln(os.Stderr, "genpath:", err)
		os.Exit(1)
	}
}

func run(dataset string, scale float64, family string, n int, davg float64, layers int, seed int64, out string) error {
	if out == "" {
		return fmt.Errorf("-out is required")
	}
	var g *graph.Graph
	switch {
	case dataset != "":
		d, err := gen.Lookup(dataset)
		if err != nil {
			return err
		}
		g = d.Scale(scale).Build()
	case family != "":
		switch family {
		case "er":
			g = gen.ErdosRenyi(n, int(float64(n)*davg), seed)
		case "ba":
			g = gen.BarabasiAlbert(n, int(davg+0.5), seed)
		case "power":
			g = gen.PowerLawConfig(n, davg, 2.2, seed)
		case "layered":
			g = gen.Layered(n, layers)
		case "grid":
			g = gen.Grid(n, layers)
		default:
			return fmt.Errorf("unknown family %q", family)
		}
	default:
		return fmt.Errorf("one of -dataset or -family is required")
	}
	if err := graph.SaveFile(out, g); err != nil {
		return err
	}
	fmt.Printf("wrote %v to %s\n", g, out)
	return nil
}
