package main

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"pathenum/internal/graph"
	"pathenum/internal/shard"
)

func TestRunDataset(t *testing.T) {
	out := filepath.Join(t.TempDir(), "ep.txt")
	if _, err := run("ep", 0.05, "", 0, 0, 0, 1, out); err != nil {
		t.Fatal(err)
	}
	g, err := graph.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() == 0 || g.NumEdges() == 0 {
		t.Fatalf("generated graph is empty: %v", g)
	}
}

func TestRunFamilies(t *testing.T) {
	for _, family := range []string{"er", "ba", "power", "layered", "grid"} {
		out := filepath.Join(t.TempDir(), family+".txt")
		if _, err := run("", 1, family, 20, 4, 3, 7, out); err != nil {
			t.Fatalf("%s: %v", family, err)
		}
		g, err := graph.LoadFile(out)
		if err != nil {
			t.Fatalf("%s: %v", family, err)
		}
		if g.NumEdges() == 0 {
			t.Fatalf("%s: empty graph", family)
		}
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name string
		fn   func() error
	}{
		{"no output", func() error { _, err := run("ep", 1, "", 0, 0, 0, 1, ""); return err }},
		{"no source", func() error { _, err := run("", 1, "", 10, 4, 2, 1, filepath.Join(dir, "x.txt")); return err }},
		{"bad dataset", func() error { _, err := run("nope", 1, "", 0, 0, 0, 1, filepath.Join(dir, "x.txt")); return err }},
		{"bad family", func() error { _, err := run("", 1, "nope", 10, 4, 2, 1, filepath.Join(dir, "x.txt")); return err }},
		{"unwritable", func() error { _, err := run("ep", 0.05, "", 0, 0, 0, 1, "/nonexistent-dir/x.txt"); return err }},
	}
	for _, tc := range cases {
		if err := tc.fn(); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

// TestRunBatch: the -batch mode writes a parseable "s t k" query set with
// shared endpoints over the generated graph.
func TestRunBatch(t *testing.T) {
	dir := t.TempDir()
	gOut := filepath.Join(dir, "g.txt")
	qOut := filepath.Join(dir, "q.txt")
	g, err := run("", 1, "ba", 300, 4, 0, 11, gOut)
	if err != nil {
		t.Fatal(err)
	}
	if err := runBatch(g, 32, 5, 6, 0.2, false, 11, qOut); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(qOut)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	n := graph.VertexID(g.NumVertices())
	srcCount := make(map[graph.VertexID]int)
	tgtCount := make(map[graph.VertexID]int)
	lines := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var s, tt graph.VertexID
		var k int
		if _, err := fmt.Sscanf(sc.Text(), "%d %d %d", &s, &tt, &k); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		if s < 0 || s >= n || tt < 0 || tt >= n || s == tt || k != 5 {
			t.Fatalf("invalid batch query %q", sc.Text())
		}
		srcCount[s]++
		tgtCount[tt]++
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines != 32 {
		t.Fatalf("got %d batch queries, want 32", lines)
	}
	shared := 0
	for _, c := range srcCount {
		if c >= 2 {
			shared++
		}
	}
	for _, c := range tgtCount {
		if c >= 2 {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("batch has no shared endpoints to plan for")
	}
}

func TestRunBatchErrors(t *testing.T) {
	dir := t.TempDir()
	g, err := run("", 1, "ba", 100, 4, 0, 3, filepath.Join(dir, "g.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if err := runBatch(g, 8, 5, 4, 0, false, 3, ""); err == nil {
		t.Error("missing -batchout: expected error")
	}
	if err := runBatch(g, 8, 0, 4, 0, false, 3, filepath.Join(dir, "q.txt")); err == nil {
		t.Error("k=0: expected error")
	}
	if err := runBatch(g, 8, 5, 4, 0, false, 3, "/nonexistent-dir/q.txt"); err == nil {
		t.Error("unwritable: expected error")
	}
}

func TestRunPartition(t *testing.T) {
	dir := t.TempDir()
	g, err := run("", 1, "ba", 800, 5, 0, 7, filepath.Join(dir, "g.txt"))
	if err != nil {
		t.Fatal(err)
	}
	qfile := filepath.Join(dir, "q.txt")
	if err := runPartition(g, 32, 5, 4, 0.25, 7, qfile); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(qfile)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	owner := shard.HashOwner(4)
	lines, cross := 0, 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var s, tt, k int
		if _, err := fmt.Sscanf(sc.Text(), "%d %d %d", &s, &tt, &k); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		if k != 5 || s == tt {
			t.Fatalf("bad query line %q", sc.Text())
		}
		if owner(graph.VertexID(s)) != owner(graph.VertexID(tt)) {
			cross++
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines != 32 {
		t.Fatalf("got %d partitioned queries, want 32", lines)
	}
	if cross != 8 {
		t.Fatalf("got %d cross-shard queries, want 8 (25%% of 32)", cross)
	}
	if err := runPartition(g, 8, 5, 0, 0.5, 7, qfile); err == nil {
		t.Error("shards=0: expected error")
	}
	if err := runPartition(g, 8, 5, 2, 0.5, 7, ""); err == nil {
		t.Error("missing -batchout: expected error")
	}
}
