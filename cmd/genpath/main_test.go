package main

import (
	"path/filepath"
	"testing"

	"pathenum/internal/graph"
)

func TestRunDataset(t *testing.T) {
	out := filepath.Join(t.TempDir(), "ep.txt")
	if err := run("ep", 0.05, "", 0, 0, 0, 1, out); err != nil {
		t.Fatal(err)
	}
	g, err := graph.LoadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() == 0 || g.NumEdges() == 0 {
		t.Fatalf("generated graph is empty: %v", g)
	}
}

func TestRunFamilies(t *testing.T) {
	for _, family := range []string{"er", "ba", "power", "layered", "grid"} {
		out := filepath.Join(t.TempDir(), family+".txt")
		if err := run("", 1, family, 20, 4, 3, 7, out); err != nil {
			t.Fatalf("%s: %v", family, err)
		}
		g, err := graph.LoadFile(out)
		if err != nil {
			t.Fatalf("%s: %v", family, err)
		}
		if g.NumEdges() == 0 {
			t.Fatalf("%s: empty graph", family)
		}
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name string
		fn   func() error
	}{
		{"no output", func() error { return run("ep", 1, "", 0, 0, 0, 1, "") }},
		{"no source", func() error { return run("", 1, "", 10, 4, 2, 1, filepath.Join(dir, "x.txt")) }},
		{"bad dataset", func() error { return run("nope", 1, "", 0, 0, 0, 1, filepath.Join(dir, "x.txt")) }},
		{"bad family", func() error { return run("", 1, "nope", 10, 4, 2, 1, filepath.Join(dir, "x.txt")) }},
		{"unwritable", func() error { return run("ep", 0.05, "", 0, 0, 0, 1, "/nonexistent-dir/x.txt") }},
	}
	for _, tc := range cases {
		if err := tc.fn(); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}
