package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"pathenum"
)

// queryRequest is the JSON body of POST /query.
type queryRequest struct {
	S       int64  `json:"s"`
	T       int64  `json:"t"`
	K       int    `json:"k"`
	Method  string `json:"method,omitempty"`  // auto | dfs | join
	Limit   uint64 `json:"limit,omitempty"`   // cap on enumerated results
	Paths   bool   `json:"paths,omitempty"`   // include path vertex lists
	Timeout string `json:"timeout,omitempty"` // e.g. "500ms"
}

// queryResponse is the JSON reply.
type queryResponse struct {
	Count     uint64    `json:"count"`
	Completed bool      `json:"completed"`
	Plan      string    `json:"plan"`
	Cut       int       `json:"cut,omitempty"`
	Millis    float64   `json:"ms"`
	Paths     [][]int64 `json:"paths,omitempty"`
}

// server wires the engine behind an HTTP API. All handlers are safe for
// concurrent use: query state is per request.
type server struct {
	engine *pathenum.Engine
	// orig maps dense ids back to the input file's ids (nil = identity).
	orig    []int64
	toDense map[int64]pathenum.VertexID
	// maxPaths caps the number of materialized paths per response.
	maxPaths uint64
}

func newServer(engine *pathenum.Engine, orig []int64) *server {
	s := &server{engine: engine, orig: orig, maxPaths: 1000}
	if orig != nil {
		s.toDense = make(map[int64]pathenum.VertexID, len(orig))
		for dense, raw := range orig {
			s.toDense[raw] = pathenum.VertexID(dense)
		}
	}
	return s
}

func (s *server) dense(raw int64) (pathenum.VertexID, bool) {
	if s.toDense == nil {
		n := int64(s.engine.Graph().NumVertices())
		if raw < 0 || raw >= n {
			return 0, false
		}
		return pathenum.VertexID(raw), true
	}
	v, ok := s.toDense[raw]
	return v, ok
}

func (s *server) raw(dense pathenum.VertexID) int64 {
	if s.orig == nil {
		return int64(dense)
	}
	return s.orig[dense]
}

// handler builds the route table.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /stats", s.handleStats)
	return mux
}

func (s *server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	fmt.Fprintln(w, "ok")
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	g := s.engine.Graph()
	writeJSON(w, http.StatusOK, map[string]any{
		"vertices":  g.NumVertices(),
		"edges":     g.NumEdges(),
		"avgDegree": g.AvgDegree(),
	})
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	src, ok := s.dense(req.S)
	if !ok {
		httpError(w, http.StatusBadRequest, "unknown source vertex %d", req.S)
		return
	}
	dst, ok := s.dense(req.T)
	if !ok {
		httpError(w, http.StatusBadRequest, "unknown target vertex %d", req.T)
		return
	}
	opts := pathenum.Options{Limit: req.Limit}
	switch req.Method {
	case "", "auto":
		opts.Method = pathenum.Auto
	case "dfs":
		opts.Method = pathenum.DFS
	case "join":
		opts.Method = pathenum.Join
	default:
		httpError(w, http.StatusBadRequest, "unknown method %q", req.Method)
		return
	}
	if req.Timeout != "" {
		d, err := time.ParseDuration(req.Timeout)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad timeout: %v", err)
			return
		}
		opts.Timeout = d
	}

	var paths [][]int64
	if req.Paths {
		cap := req.Limit
		if cap == 0 || cap > s.maxPaths {
			cap = s.maxPaths
		}
		opts.Emit = func(p []pathenum.VertexID) bool {
			if uint64(len(paths)) < cap {
				out := make([]int64, len(p))
				for i, v := range p {
					out[i] = s.raw(v)
				}
				paths = append(paths, out)
			}
			return true
		}
	}

	start := time.Now()
	res, err := runQuery(s.engine, pathenum.Query{S: src, T: dst, K: req.K}, opts)
	if err != nil {
		httpError(w, http.StatusBadRequest, "query failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, queryResponse{
		Count:     res.Counters.Results,
		Completed: res.Completed,
		Plan:      res.Plan.Method.String(),
		Cut:       res.Plan.Cut,
		Millis:    float64(time.Since(start)) / float64(time.Millisecond),
		Paths:     paths,
	})
}

// runQuery merges per-request options with the engine defaults. The engine
// API takes defaults at construction; per-request emit/limit/method come
// from the request, so issue the query directly against the engine graph.
func runQuery(e *pathenum.Engine, q pathenum.Query, opts pathenum.Options) (*pathenum.Result, error) {
	return pathenum.Enumerate(e.Graph(), q, opts)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
